//! The fault plane's determinism contract, pinned end to end.
//!
//! Three guarantees, in order of how expensive they are to regain once
//! lost:
//!
//! 1. `--faults none` is the pre-fault-plane simulator bit for bit: the
//!    smoke manifest digest stays at its historical golden value at any
//!    shard count (no new rng draws anywhere on the fault-free path).
//! 2. A fault scenario is itself shard-count-invariant: episode
//!    trajectories derive from `(seed, entity)` alone, so chaos-smoke
//!    produces identical manifests — digest *and* robustness section —
//!    at 1 and 4 shards.
//! 3. The chaos-smoke digest matches the committed expectation in
//!    `crates/bench/FAULT_SMOKE_DIGEST`, the same value the CI
//!    fault-smoke step greps for. Re-baseline both together, never one.

use rpclens_bench::{run_at_sharded_faults, run_configured};
use rpclens_core::figs::fig23;
use rpclens_fleet::driver::{FleetRun, SimScale};
use rpclens_fleet::faults::FaultScenario;
use rpclens_fleet::telemetry::{manifest_for_run, slo_findings, DEFAULT_TAIL_TOLERANCE};
use rpclens_obs::{Severity, SloConfig};

/// Golden digest of the fault-free smoke manifest; must match the value
/// pinned in `telemetry_determinism.rs`.
const SMOKE_GOLDEN_DIGEST: u64 = 4965560232275073350;

/// Committed chaos-smoke digest expectation, shared with the CI
/// fault-smoke gate.
fn fault_smoke_digest() -> u64 {
    include_str!("../FAULT_SMOKE_DIGEST")
        .trim()
        .parse()
        .expect("FAULT_SMOKE_DIGEST holds one u64")
}

/// Committed incident-smoke digest expectation, shared with the CI
/// incident-smoke gate.
fn incident_smoke_digest() -> u64 {
    include_str!("../INCIDENT_SMOKE_DIGEST")
        .trim()
        .parse()
        .expect("INCIDENT_SMOKE_DIGEST holds one u64")
}

fn smoke_run(faults: FaultScenario, shards: usize) -> FleetRun {
    run_at_sharded_faults(SimScale::smoke(), Some(shards), faults)
}

#[test]
fn faults_none_preserves_the_golden_digest() {
    for shards in [1usize, 4] {
        let run = smoke_run(FaultScenario::none(), shards);
        let manifest = manifest_for_run(&run);
        assert_eq!(
            manifest.digest(),
            SMOKE_GOLDEN_DIGEST,
            "--faults none drifted from the golden smoke digest at shards={shards}"
        );
        assert!(
            manifest.robustness.is_none(),
            "fault-free manifests must not carry a robustness section"
        );
    }
}

#[test]
fn chaos_smoke_is_bit_identical_across_shard_counts() {
    let one = manifest_for_run(&smoke_run(FaultScenario::chaos_smoke(), 1));
    let four = manifest_for_run(&smoke_run(FaultScenario::chaos_smoke(), 4));
    // The digested deterministic section and the (undigested but still
    // deterministic) robustness section must both match exactly.
    assert_eq!(
        one.digest(),
        four.digest(),
        "chaos-smoke deterministic sections diverge across shard counts"
    );
    assert_eq!(one.deterministic, four.deterministic);
    assert_eq!(
        one.robustness, four.robustness,
        "chaos-smoke robustness sections diverge across shard counts"
    );
    // Faults actually fired: the scenario is not a silent no-op.
    let r = one
        .robustness
        .as_ref()
        .expect("chaos-smoke carries robustness");
    assert_eq!(r.scenario, "chaos-smoke");
    assert!(r.retries_issued > 0, "no retries executed");
    assert!(r.failovers > 0, "no failovers executed");
    assert!(r.causal_unavailable > 0, "no causal unavailability");
    assert!(r.deadline_exceeded > 0, "no deadline expirations");
    // And the scenario digest differs from the fault-free golden one.
    assert_ne!(one.digest(), SMOKE_GOLDEN_DIGEST);
}

#[test]
fn chaos_smoke_digest_matches_committed_expectation() {
    let manifest = manifest_for_run(&smoke_run(FaultScenario::chaos_smoke(), 1));
    assert_eq!(
        manifest.digest(),
        fault_smoke_digest(),
        "chaos-smoke digest drifted from crates/bench/FAULT_SMOKE_DIGEST; \
         if the drift is intentional, re-baseline the file and the CI gate together"
    );
}

#[test]
fn incident_smoke_is_bit_identical_across_shards_and_threads() {
    // The incident plane draws shared cross-entity trajectories and the
    // control plane reacts to them on window boundaries — neither may
    // observe anything a shard computed, so the full (shards, threads)
    // matrix must agree with the committed expectation in
    // `crates/bench/INCIDENT_SMOKE_DIGEST` (the CI incident-smoke gate
    // greps for the same value; re-baseline both together, never one).
    let expected = incident_smoke_digest();
    let mut reference: Option<rpclens_obs::RunManifest> = None;
    for shards in [1usize, 4] {
        for threads in [1usize, 4] {
            let run = run_configured(
                SimScale::smoke(),
                Some(shards),
                Some(threads),
                FaultScenario::incident_smoke(),
            );
            let manifest = manifest_for_run(&run);
            assert_eq!(
                manifest.digest(),
                expected,
                "incident-smoke digest drifted from crates/bench/INCIDENT_SMOKE_DIGEST \
                 at shards={shards} threads={threads}; if the drift is intentional, \
                 re-baseline the file and the CI gate together"
            );
            match &reference {
                None => reference = Some(manifest),
                Some(first) => {
                    assert_eq!(first.deterministic, manifest.deterministic);
                    assert_eq!(
                        first.robustness, manifest.robustness,
                        "incident/controller tables diverge at shards={shards} threads={threads}"
                    );
                }
            }
        }
    }
    // The scenario actually struck: every incident kind has a blast
    // radius, and the controllers actually acted.
    let r = reference
        .as_ref()
        .and_then(|m| m.robustness.as_ref())
        .expect("incident-smoke carries robustness");
    assert_eq!(r.incidents.len(), 3, "{:?}", r.incidents);
    assert!(
        r.incidents
            .iter()
            .all(|&(_, struck, eps)| struck > 0 && eps > 0),
        "{:?}",
        r.incidents
    );
    let controller = |name: &str| {
        r.controllers
            .iter()
            .find(|(n, _)| n == name)
            .unwrap_or_else(|| panic!("missing controller row {name}: {:?}", r.controllers))
            .1
    };
    assert!(controller("autoscaler_scaled_windows") > 0);
    assert!(controller("admission_offered") > 0);
    assert_eq!(
        controller("admission_admitted")
            + controller("admission_shed")
            + controller("admission_abandoned"),
        controller("admission_offered"),
        "bounded admission must conserve offered calls"
    );
}

#[test]
fn closed_loop_controllers_reduce_steady_state_shedding() {
    // `incident-open-loop` is `incident-smoke` minus the control plane:
    // the same seeded incident schedule strikes the same entities at the
    // same times, but nothing reacts. The closed loop must turn fewer
    // calls away — capacity absorbs the overload fronts the open loop
    // can only shed against.
    let open = smoke_run(FaultScenario::incident_open_loop(), 1);
    let closed = smoke_run(FaultScenario::incident_smoke(), 1);
    let open_sheds = open.telemetry.counters.resilience.load_sheds;
    let closed_turned_away = closed.telemetry.counters.resilience.load_sheds
        + closed.telemetry.counters.control.admission_abandoned;
    assert!(open_sheds > 0, "open loop never shed under incidents");
    let open_rate = open_sheds as f64 / open.total_spans as f64;
    let closed_rate = closed_turned_away as f64 / closed.total_spans as f64;
    assert!(
        closed_rate < open_rate,
        "closed-loop turn-away rate {closed_rate:.5} must beat open-loop {open_rate:.5} \
         ({closed_turned_away}/{} vs {open_sheds}/{})",
        closed.total_spans,
        open.total_spans
    );
}

#[test]
fn chaos_smoke_reconciles_with_fig23() {
    let run = smoke_run(FaultScenario::chaos_smoke(), 1);
    let fig = fig23::compute(&run);
    let checks = fig23::causal_checks(&fig);
    assert!(checks.all_passed(), "{checks}");
}

#[test]
fn overload_collapse_storm_is_clamped_by_the_retry_budget() {
    let run = smoke_run(FaultScenario::overload_collapse(), 1);
    let manifest = manifest_for_run(&run);
    let r = manifest.robustness.as_ref().expect("robustness section");
    assert!(r.load_sheds > 0, "overload never shed load");
    assert!(
        r.retries_denied > 0,
        "the retry budget never denied a retry under collapse"
    );
    // The retry-storm detector must report the amplification as clamped
    // (Info), not a storm: the token-bucket budget is doing its job.
    let findings = slo_findings(&run, None, &SloConfig::default(), DEFAULT_TAIL_TOLERANCE);
    let overall = findings
        .iter()
        .find(|f| f.detector == "retry-storm" && f.subject == "overall")
        .expect("retry-storm overall finding");
    assert_eq!(overall.severity, Severity::Info, "{overall:?}");
    assert!(
        overall.detail.contains("budget clamped"),
        "{}",
        overall.detail
    );
}
