/root/repo/target/debug/deps/fleet_bench-e561d79f2950059c.d: crates/bench/benches/fleet_bench.rs Cargo.toml

/root/repo/target/debug/deps/libfleet_bench-e561d79f2950059c.rmeta: crates/bench/benches/fleet_bench.rs Cargo.toml

crates/bench/benches/fleet_bench.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
