//! Persistence round-trip: a real fleet run's trace store survives
//! export/import bit-exactly, and the characterization analyses produce
//! identical results on the imported store.

use rpclens::core::figs::{fig02, fig11};
use rpclens::prelude::*;
use rpclens::trace::export::{export, import};

#[test]
fn fleet_traces_roundtrip_and_reanalyse_identically() {
    let run = run_fleet(FleetConfig::at_scale(SimScale {
        name: "export-test",
        total_methods: 320,
        roots: 4_000,
        duration: SimDuration::from_hours(24),
        trace_sample_rate: 1,
        profiler_sample_cap: 10_000,
        seed: 5,
    }));

    let bytes = export(&run.store);
    // Compact: well under 100 bytes per span.
    assert!(
        bytes.len() < run.store.total_spans() * 100,
        "{} bytes for {} spans",
        bytes.len(),
        run.store.total_spans()
    );
    let imported = import(&bytes).expect("valid export");
    assert_eq!(imported.len(), run.store.len());
    assert_eq!(imported.total_spans(), run.store.total_spans());
    for (a, b) in run.store.traces().iter().zip(imported.traces()) {
        assert_eq!(a.root_start, b.root_start);
        assert_eq!(a.spans, b.spans);
    }

    // Analyses over the imported store match the originals exactly.
    let query = MethodQuery::default();
    for (method, _) in query.eligible_methods(&run.store) {
        let a = query.latency_samples(&run.store, method);
        let b = query.latency_samples(&imported, method);
        assert_eq!(a, b, "method {method:?} samples differ after roundtrip");
    }
    // Figure-level comparison via a run whose store is the imported one.
    let fig_a = fig02::compute(&run);
    let fig_b_rows = {
        // Rebuild a run view with the imported store.
        let mut run2 = run;
        run2.store = imported;
        let fig = fig02::compute(&run2);
        let tax = fig11::compute(&run2);
        assert!(!tax.heatmap.is_empty());
        fig.heatmap.rows
    };
    assert_eq!(fig_a.heatmap.len(), fig_b_rows.len());
    for (ra, rb) in fig_a.heatmap.rows.iter().zip(&fig_b_rows) {
        assert_eq!(ra.method, rb.method);
        assert_eq!(ra.summary.p50, rb.summary.p50);
        assert_eq!(ra.summary.p99, rb.summary.p99);
    }
}
