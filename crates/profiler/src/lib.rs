//! A fleet-wide sampling CPU profiler (GWP-like).
//!
//! The paper uses continuous fleet profiling to attribute CPU cycles to
//! the RPC *cycle tax* categories (Fig. 20), to per-method normalized
//! cycle distributions (Fig. 21), and to wasted cycles by error type
//! (Fig. 23). This crate implements the accounting:
//!
//! - [`CycleProfiler`] aggregates cycles by [`CycleCategory`] fleet-wide
//!   and per service.
//! - Per-method call costs are recorded as *normalized cycles*: cycles
//!   divided by the machine's relative speed, mirroring how the paper
//!   normalizes across CPU generations.
//! - [`ErrorAccounting`] tracks error counts and wasted cycles per
//!   [`ErrorKind`].

use rpclens_rpcstack::cost::{CycleCategory, CycleCost};
use rpclens_rpcstack::error::ErrorKind;
use std::collections::{BinaryHeap, HashMap};

/// Derives the deterministic reservoir tag for one recorded sample from
/// coordinates that identify it globally — in the fleet driver, the root
/// RPC's global sequence number and the span's index within its trace.
///
/// The tag is a pure function of its inputs (a SplitMix64-style mix), so
/// the same sample gets the same tag no matter which shard simulates it;
/// the per-method reservoir keeps the `cap` samples with the *smallest*
/// tags, making sharded merge exactly equal to a single-pass run.
pub fn sample_tag(root_seq: u64, span_index: u32) -> u64 {
    let mut z = root_seq
        .wrapping_mul(0x9E37_79B9_7F4A_7C15)
        .wrapping_add(u64::from(span_index).wrapping_mul(0xD1B5_4A32_D192_ED03));
    z ^= z >> 30;
    z = z.wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z ^= z >> 27;
    z = z.wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^= z >> 31;
    z
}

/// A bounded per-method sample reservoir: keeps the `cap` samples with
/// the smallest `(tag, value)` keys ever offered.
///
/// Bottom-k selection under a total order is order-insensitive, so
/// inserting a stream's samples one at a time, in any order, or merging
/// per-shard reservoirs, all yield the identical sample multiset —
/// unlike the previous first-`cap`-wins truncation, which biased capped
/// methods toward early (low-sequence) samples.
#[derive(Debug, Default)]
struct MethodReservoir {
    /// Max-heap of `(tag, value_bits)`: the largest retained key sits on
    /// top, ready to be evicted by any smaller offer.
    entries: BinaryHeap<(u64, u64)>,
}

impl MethodReservoir {
    fn offer(&mut self, cap: usize, tag: u64, value: f64) {
        let key = (tag, value.to_bits());
        if self.entries.len() < cap {
            self.entries.push(key);
        } else if let Some(&top) = self.entries.peek() {
            if key < top {
                self.entries.pop();
                self.entries.push(key);
            }
        }
    }

    fn len(&self) -> usize {
        self.entries.len()
    }

    /// Retained samples in ascending key order (deterministic).
    fn samples(&self) -> Vec<f64> {
        let mut keys: Vec<(u64, u64)> = self.entries.iter().copied().collect();
        keys.sort_unstable();
        keys.into_iter()
            .map(|(_, bits)| f64::from_bits(bits))
            .collect()
    }
}

/// Sampling fleet profiler.
///
/// `sample_rate` controls down-sampling: one in `sample_rate` recordings
/// is kept, with its weight scaled back up, matching how a production
/// profiler samples a small fraction of cycles. At rate 1 the accounting
/// is exact.
#[derive(Debug)]
pub struct CycleProfiler {
    /// Fleet-wide cycles, indexed by [`CycleCategory::index`].
    by_category: [u128; 8],
    /// Per-service cycles, indexed by service id (lazily grown).
    by_service: Vec<u128>,
    /// Per-method normalized-cycle sample reservoirs, indexed by method
    /// id (lazily grown).
    per_method: Vec<MethodReservoir>,
    /// Cap on retained per-method samples (deterministic bottom-k
    /// reservoir; see [`sample_tag`]).
    per_method_cap: usize,
    total: u128,
}

impl Default for CycleProfiler {
    fn default() -> Self {
        Self::new()
    }
}

impl CycleProfiler {
    /// Creates a profiler retaining up to 10,000 per-method samples.
    pub fn new() -> Self {
        CycleProfiler {
            by_category: [0; 8],
            by_service: Vec::new(),
            per_method: Vec::new(),
            per_method_cap: 10_000,
            total: 0,
        }
    }

    /// Sets the per-method sample retention cap.
    pub fn with_per_method_cap(mut self, cap: usize) -> Self {
        self.per_method_cap = cap;
        self
    }

    /// Records the cycle cost of one RPC executed by `service`/`method`
    /// on a machine with relative `speed`. `tag` is the sample's
    /// deterministic reservoir tag (see [`sample_tag`]); above the
    /// retention cap, the samples with the smallest tags win, which is a
    /// uniform, shard-invariant subsample of the method's call stream.
    pub fn record(&mut self, service: u16, method: u32, cost: &CycleCost, speed: f64, tag: u64) {
        let call_total = self.add_cost(service, cost);
        let idx = method as usize;
        if idx >= self.per_method.len() {
            self.per_method
                .resize_with(idx + 1, MethodReservoir::default);
        }
        // Normalized cycles: what this call would cost on the baseline
        // CPU generation.
        self.per_method[idx].offer(
            self.per_method_cap,
            tag,
            call_total as f64 / speed.max(1e-6),
        );
    }

    /// Records stack cycles a service burned acting as a *client* (no
    /// per-method sample — Fig. 21 measures server-side method cost).
    pub fn record_client_side(&mut self, service: u16, cost: &CycleCost) {
        self.add_cost(service, cost);
    }

    /// Adds one cost to the category and service tables; returns the
    /// call's total cycles.
    fn add_cost(&mut self, service: u16, cost: &CycleCost) -> u128 {
        let mut call_total = 0u128;
        for (slot, &cycles) in self.by_category.iter_mut().zip(cost.as_array()) {
            *slot += cycles as u128;
            call_total += cycles as u128;
        }
        let s = service as usize;
        if s >= self.by_service.len() {
            self.by_service.resize(s + 1, 0);
        }
        self.by_service[s] += call_total;
        self.total += call_total;
        call_total
    }

    /// Total cycles recorded.
    pub fn total_cycles(&self) -> u128 {
        self.total
    }

    /// Cycles recorded for one category.
    pub fn category_cycles(&self, cat: CycleCategory) -> u128 {
        self.by_category[cat.index()]
    }

    /// Fraction of all cycles in one category, or 0 if nothing recorded.
    pub fn category_fraction(&self, cat: CycleCategory) -> f64 {
        if self.total == 0 {
            return 0.0;
        }
        self.category_cycles(cat) as f64 / self.total as f64
    }

    /// The RPC cycle tax: fraction of all cycles outside the application
    /// category (the paper's 7.1%).
    pub fn tax_fraction(&self) -> f64 {
        if self.total == 0 {
            return 0.0;
        }
        let tax: u128 = CycleCategory::ALL
            .iter()
            .filter(|c| c.is_tax())
            .map(|&c| self.category_cycles(c))
            .sum();
        tax as f64 / self.total as f64
    }

    /// Cycles attributed to one service.
    pub fn service_cycles(&self, service: u16) -> u128 {
        self.by_service.get(service as usize).copied().unwrap_or(0)
    }

    /// All services with nonzero recorded cycles, in ascending id order.
    pub fn services(&self) -> impl Iterator<Item = (u16, u128)> + '_ {
        self.by_service
            .iter()
            .enumerate()
            .filter(|&(_, &c)| c > 0)
            .map(|(s, &c)| (s as u16, c))
    }

    /// Per-method normalized-cycle samples, in ascending reservoir-key
    /// order (a deterministic, shard-invariant ordering).
    pub fn method_samples(&self, method: u32) -> Vec<f64> {
        self.per_method
            .get(method as usize)
            .map(MethodReservoir::samples)
            .unwrap_or_default()
    }

    /// Methods with at least `min` (and at least one) samples, in
    /// ascending id order.
    pub fn methods_with_samples(&self, min: usize) -> Vec<u32> {
        self.per_method
            .iter()
            .enumerate()
            .filter(|(_, v)| !v.entries.is_empty() && v.len() >= min)
            .map(|(m, _)| m as u32)
            .collect()
    }

    /// Merges another profiler into this one.
    pub fn merge(&mut self, other: CycleProfiler) {
        for (a, b) in self.by_category.iter_mut().zip(other.by_category) {
            *a += b;
        }
        if other.by_service.len() > self.by_service.len() {
            self.by_service.resize(other.by_service.len(), 0);
        }
        for (a, &b) in self.by_service.iter_mut().zip(&other.by_service) {
            *a += b;
        }
        if other.per_method.len() > self.per_method.len() {
            self.per_method
                .resize_with(other.per_method.len(), MethodReservoir::default);
        }
        for (slot, reservoir) in self.per_method.iter_mut().zip(other.per_method) {
            for (tag, bits) in reservoir.entries {
                slot.offer(self.per_method_cap, tag, f64::from_bits(bits));
            }
        }
        self.total += other.total;
    }
}

/// Error counts and wasted cycles per error kind (Fig. 23).
#[derive(Debug, Default)]
pub struct ErrorAccounting {
    counts: HashMap<ErrorKind, u64>,
    wasted_cycles: HashMap<ErrorKind, u128>,
    total_rpcs: u64,
}

impl ErrorAccounting {
    /// Creates empty accounting.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one completed RPC (success or failure).
    pub fn record_rpc(&mut self) {
        self.total_rpcs += 1;
    }

    /// Records one failed RPC with the cycles it wasted.
    pub fn record_error(&mut self, kind: ErrorKind, wasted_cycles: u64) {
        *self.counts.entry(kind).or_insert(0) += 1;
        *self.wasted_cycles.entry(kind).or_insert(0) += wasted_cycles as u128;
    }

    /// Total RPCs observed.
    pub fn total_rpcs(&self) -> u64 {
        self.total_rpcs
    }

    /// Total errors observed.
    pub fn total_errors(&self) -> u64 {
        self.counts.values().sum()
    }

    /// Fleet error rate.
    pub fn error_rate(&self) -> f64 {
        if self.total_rpcs == 0 {
            return 0.0;
        }
        self.total_errors() as f64 / self.total_rpcs as f64
    }

    /// This kind's share of all errors, by count.
    pub fn count_share(&self, kind: ErrorKind) -> f64 {
        let total = self.total_errors();
        if total == 0 {
            return 0.0;
        }
        self.counts.get(&kind).copied().unwrap_or(0) as f64 / total as f64
    }

    /// This kind's share of all wasted cycles.
    pub fn cycle_share(&self, kind: ErrorKind) -> f64 {
        let total: u128 = self.wasted_cycles.values().sum();
        if total == 0 {
            return 0.0;
        }
        self.wasted_cycles.get(&kind).copied().unwrap_or(0) as f64 / total as f64
    }

    /// This kind's error count.
    pub fn count(&self, kind: ErrorKind) -> u64 {
        self.counts.get(&kind).copied().unwrap_or(0)
    }

    /// This kind's raw wasted cycles (work-fraction weighted at record
    /// time), for breakdowns that need absolute magnitudes rather than
    /// shares — e.g. the exported run manifest's robustness section.
    pub fn wasted_cycles(&self, kind: ErrorKind) -> u128 {
        self.wasted_cycles.get(&kind).copied().unwrap_or(0)
    }

    /// All kinds with at least one error, sorted by count descending.
    pub fn kinds_by_count(&self) -> Vec<(ErrorKind, u64)> {
        let mut out: Vec<_> = self.counts.iter().map(|(&k, &c)| (k, c)).collect();
        out.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
        out
    }

    /// Merges another accounting into this one.
    ///
    /// All state is additive integer counts, so folding per-shard
    /// accountings yields exactly what a single-threaded run records,
    /// regardless of fold order.
    pub fn merge(&mut self, other: &ErrorAccounting) {
        for (&kind, &count) in &other.counts {
            *self.counts.entry(kind).or_insert(0) += count;
        }
        for (&kind, &cycles) in &other.wasted_cycles {
            *self.wasted_cycles.entry(kind).or_insert(0) += cycles;
        }
        self.total_rpcs += other.total_rpcs;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cost(app: u64, compress: u64, ser: u64) -> CycleCost {
        let mut c = CycleCost::new();
        c.add(CycleCategory::Application, app);
        c.add(CycleCategory::Compression, compress);
        c.add(CycleCategory::Serialization, ser);
        c
    }

    #[test]
    fn category_fractions_sum_correctly() {
        let mut p = CycleProfiler::new();
        p.record(1, 10, &cost(9000, 700, 300), 1.0, sample_tag(0, 0));
        assert_eq!(p.total_cycles(), 10_000);
        assert!((p.category_fraction(CycleCategory::Application) - 0.9).abs() < 1e-12);
        assert!((p.category_fraction(CycleCategory::Compression) - 0.07).abs() < 1e-12);
        assert!((p.tax_fraction() - 0.1).abs() < 1e-12);
    }

    #[test]
    fn empty_profiler_reports_zero() {
        let p = CycleProfiler::new();
        assert_eq!(p.total_cycles(), 0);
        assert_eq!(p.tax_fraction(), 0.0);
        assert_eq!(p.category_fraction(CycleCategory::Networking), 0.0);
        assert!(p.method_samples(1).is_empty());
    }

    #[test]
    fn per_service_attribution() {
        let mut p = CycleProfiler::new();
        p.record(1, 10, &cost(100, 0, 0), 1.0, sample_tag(0, 0));
        p.record(1, 11, &cost(200, 0, 0), 1.0, sample_tag(0, 1));
        p.record(2, 20, &cost(700, 0, 0), 1.0, sample_tag(0, 2));
        assert_eq!(p.service_cycles(1), 300);
        assert_eq!(p.service_cycles(2), 700);
        assert_eq!(p.service_cycles(3), 0);
        assert_eq!(p.services().count(), 2);
    }

    #[test]
    fn normalized_cycles_divide_by_speed() {
        let mut p = CycleProfiler::new();
        p.record(1, 5, &cost(1000, 0, 0), 2.0, sample_tag(3, 1));
        assert_eq!(p.method_samples(5), vec![500.0]);
    }

    #[test]
    fn per_method_cap_is_enforced() {
        let mut p = CycleProfiler::new().with_per_method_cap(10);
        for i in 0..100 {
            p.record(1, 7, &cost(10, 0, 0), 1.0, sample_tag(i, 0));
        }
        assert_eq!(p.method_samples(7).len(), 10);
        // Fleet totals still count everything.
        assert_eq!(p.total_cycles(), 1000);
    }

    #[test]
    fn merge_adds_everything() {
        let mut a = CycleProfiler::new();
        a.record(1, 1, &cost(100, 10, 0), 1.0, sample_tag(0, 0));
        let mut b = CycleProfiler::new();
        b.record(1, 1, &cost(200, 0, 20), 1.0, sample_tag(1, 0));
        b.record(2, 2, &cost(50, 0, 0), 1.0, sample_tag(1, 1));
        a.merge(b);
        assert_eq!(a.total_cycles(), 380);
        assert_eq!(a.service_cycles(1), 330);
        assert_eq!(a.method_samples(1).len(), 2);
        assert_eq!(a.methods_with_samples(1), vec![1, 2]);
    }

    #[test]
    fn capped_reservoir_keeps_smallest_tags() {
        let mut p = CycleProfiler::new().with_per_method_cap(3);
        // Offer tags in descending order; the reservoir must keep the
        // three smallest regardless of arrival order.
        for tag in (0..10u64).rev() {
            p.record(1, 7, &cost(100 + tag, 0, 0), 1.0, tag);
        }
        let samples = p.method_samples(7);
        assert_eq!(samples, vec![100.0, 101.0, 102.0]);
    }

    #[test]
    fn sharded_merge_equals_single_pass_under_cap() {
        // 200 samples, cap 16: a 2-way sharded run (even/odd split) must
        // retain exactly the same sample multiset as a single pass.
        let cap = 16;
        let mut single = CycleProfiler::new().with_per_method_cap(cap);
        let mut shard_a = CycleProfiler::new().with_per_method_cap(cap);
        let mut shard_b = CycleProfiler::new().with_per_method_cap(cap);
        for seq in 0..200u64 {
            let c = cost(1000 + seq * 3, seq % 5, 0);
            let tag = sample_tag(seq, 0);
            single.record(1, 42, &c, 1.0, tag);
            if seq % 2 == 0 {
                shard_a.record(1, 42, &c, 1.0, tag);
            } else {
                shard_b.record(1, 42, &c, 1.0, tag);
            }
        }
        let mut merged = CycleProfiler::new().with_per_method_cap(cap);
        merged.merge(shard_a);
        merged.merge(shard_b);
        assert_eq!(merged.method_samples(42), single.method_samples(42));
        assert_eq!(merged.total_cycles(), single.total_cycles());
    }

    #[test]
    fn sample_tag_is_pure_and_spreads() {
        assert_eq!(sample_tag(7, 3), sample_tag(7, 3));
        assert_ne!(sample_tag(7, 3), sample_tag(7, 4));
        assert_ne!(sample_tag(7, 3), sample_tag(8, 3));
        // Sequential inputs should not produce sequential tags.
        let a = sample_tag(1, 0);
        let b = sample_tag(2, 0);
        assert!(a.abs_diff(b) > 1 << 32);
    }

    #[test]
    fn error_accounting_shares() {
        let mut e = ErrorAccounting::new();
        for _ in 0..1000 {
            e.record_rpc();
        }
        for _ in 0..9 {
            e.record_error(ErrorKind::Cancelled, 1000);
        }
        e.record_error(ErrorKind::EntityNotFound, 100);
        assert_eq!(e.total_errors(), 10);
        assert!((e.error_rate() - 0.01).abs() < 1e-12);
        assert!((e.count_share(ErrorKind::Cancelled) - 0.9).abs() < 1e-12);
        // Cancelled wastes disproportionately many cycles.
        assert!(e.cycle_share(ErrorKind::Cancelled) > 0.98);
        assert_eq!(e.kinds_by_count()[0].0, ErrorKind::Cancelled);
        assert_eq!(e.count_share(ErrorKind::Internal), 0.0);
    }

    #[test]
    fn empty_error_accounting_is_zero() {
        let e = ErrorAccounting::new();
        assert_eq!(e.error_rate(), 0.0);
        assert_eq!(e.cycle_share(ErrorKind::Cancelled), 0.0);
        assert!(e.kinds_by_count().is_empty());
    }

    #[test]
    fn error_accounting_merge_equals_single_pass() {
        let mut single = ErrorAccounting::new();
        let mut shards = vec![ErrorAccounting::new(), ErrorAccounting::new()];
        for i in 0..100u64 {
            let shard = &mut shards[(i >= 60) as usize];
            single.record_rpc();
            shard.record_rpc();
            if i % 10 == 0 {
                let kind = if i % 20 == 0 {
                    ErrorKind::Cancelled
                } else {
                    ErrorKind::EntityNotFound
                };
                single.record_error(kind, i * 7);
                shard.record_error(kind, i * 7);
            }
        }
        let mut merged = ErrorAccounting::new();
        for shard in &shards {
            merged.merge(shard);
        }
        assert_eq!(merged.total_rpcs(), single.total_rpcs());
        assert_eq!(merged.total_errors(), single.total_errors());
        assert_eq!(merged.kinds_by_count(), single.kinds_by_count());
        for kind in [ErrorKind::Cancelled, ErrorKind::EntityNotFound] {
            assert_eq!(merged.cycle_share(kind), single.cycle_share(kind));
        }
    }
}
