/root/repo/target/debug/deps/rpclens_simcore-3934e5eaf1c5a8a3.d: crates/simcore/src/lib.rs crates/simcore/src/alias.rs crates/simcore/src/dist.rs crates/simcore/src/event.rs crates/simcore/src/hist.rs crates/simcore/src/rng.rs crates/simcore/src/stats.rs crates/simcore/src/streaming.rs crates/simcore/src/time.rs crates/simcore/src/zipf.rs Cargo.toml

/root/repo/target/debug/deps/librpclens_simcore-3934e5eaf1c5a8a3.rmeta: crates/simcore/src/lib.rs crates/simcore/src/alias.rs crates/simcore/src/dist.rs crates/simcore/src/event.rs crates/simcore/src/hist.rs crates/simcore/src/rng.rs crates/simcore/src/stats.rs crates/simcore/src/streaming.rs crates/simcore/src/time.rs crates/simcore/src/zipf.rs Cargo.toml

crates/simcore/src/lib.rs:
crates/simcore/src/alias.rs:
crates/simcore/src/dist.rs:
crates/simcore/src/event.rs:
crates/simcore/src/hist.rs:
crates/simcore/src/rng.rs:
crates/simcore/src/stats.rs:
crates/simcore/src/streaming.rs:
crates/simcore/src/time.rs:
crates/simcore/src/zipf.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
