//! Query layer: selection, counter rates, and grouped aggregation.

use crate::metric::{Labels, MetricValue};
use crate::store::{Series, TimeSeriesDb};
use rpclens_simcore::time::SimTime;
use std::collections::BTreeMap;

/// A label predicate for selecting series.
#[derive(Debug, Clone, Default)]
pub struct LabelFilter {
    required: Vec<(String, String)>,
}

impl LabelFilter {
    /// Matches every series.
    pub fn any() -> Self {
        Self::default()
    }

    /// Adds an exact-match requirement.
    pub fn eq(mut self, key: &str, value: &str) -> Self {
        self.required.push((key.to_string(), value.to_string()));
        self
    }

    /// Whether a label set satisfies the filter.
    pub fn matches(&self, labels: &Labels) -> bool {
        self.required
            .iter()
            .all(|(k, v)| labels.get(k) == Some(v.as_str()))
    }
}

/// Query operations over a [`TimeSeriesDb`].
#[derive(Debug)]
pub struct QueryEngine<'a> {
    db: &'a TimeSeriesDb,
}

impl<'a> QueryEngine<'a> {
    /// Creates a query engine over a database.
    pub fn new(db: &'a TimeSeriesDb) -> Self {
        QueryEngine { db }
    }

    /// Selects all series of `metric` matching `filter`.
    pub fn select(&self, metric: &str, filter: &LabelFilter) -> Vec<(&'a Labels, &'a Series)> {
        let mut out: Vec<_> = self
            .db
            .series_of(metric)
            .filter(|(l, _)| filter.matches(l))
            .collect();
        out.sort_by(|a, b| a.0.cmp(b.0));
        out
    }

    /// Converts a cumulative counter series to per-second rates between
    /// consecutive points. Counter resets (decreases) yield a zero rate.
    pub fn rate(series: &Series) -> Vec<(SimTime, f64)> {
        let mut out = Vec::new();
        let mut prev: Option<(SimTime, u64)> = None;
        for (t, v) in series.points() {
            if let MetricValue::Counter(c) = v {
                if let Some((pt, pc)) = prev {
                    let dt = t.since(pt).as_secs_f64();
                    if dt > 0.0 {
                        let delta = c.saturating_sub(pc);
                        out.push((*t, delta as f64 / dt));
                    }
                }
                prev = Some((*t, *c));
            }
        }
        out
    }

    /// Extracts gauge values as `(time, value)` pairs.
    pub fn gauges(series: &Series) -> Vec<(SimTime, f64)> {
        series
            .points()
            .iter()
            .filter_map(|(t, v)| v.as_gauge().map(|g| (*t, g)))
            .collect()
    }

    /// Groups selected series by one label key and sums gauge values per
    /// timestamp within each group.
    pub fn group_sum(
        &self,
        metric: &str,
        filter: &LabelFilter,
        group_key: &str,
    ) -> BTreeMap<String, BTreeMap<SimTime, f64>> {
        let mut out: BTreeMap<String, BTreeMap<SimTime, f64>> = BTreeMap::new();
        for (labels, series) in self.select(metric, filter) {
            let group = labels.get(group_key).unwrap_or("<none>").to_string();
            let entry = out.entry(group).or_default();
            for (t, v) in series.points() {
                let x = match v {
                    MetricValue::Gauge(g) => *g,
                    MetricValue::Counter(c) => *c as f64,
                    MetricValue::Distribution(h) => h.mean().unwrap_or(0.0),
                };
                *entry.entry(*t).or_insert(0.0) += x;
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metric::MetricDescriptor;
    use rpclens_simcore::time::SimDuration;

    fn mins(m: u64) -> SimTime {
        SimTime::ZERO + SimDuration::from_mins(m)
    }

    fn db_with_counters() -> TimeSeriesDb {
        let mut d = TimeSeriesDb::new(SimDuration::from_mins(30));
        d.register(MetricDescriptor::counter(
            "rps",
            SimDuration::from_hours(100),
        ))
        .unwrap();
        d.register(MetricDescriptor::gauge(
            "util",
            SimDuration::from_hours(100),
        ))
        .unwrap();
        for cluster in ["a", "b"] {
            let labels = Labels::from_pairs([("cluster", cluster), ("service", "disk")]);
            for i in 0..4u64 {
                d.write(
                    "rps",
                    labels.clone(),
                    mins(i * 30),
                    MetricValue::Counter(i * 1800 * if cluster == "a" { 1 } else { 2 }),
                )
                .unwrap();
                d.write(
                    "util",
                    labels.clone(),
                    mins(i * 30),
                    MetricValue::Gauge(0.1 * i as f64),
                )
                .unwrap();
            }
        }
        d
    }

    #[test]
    fn select_filters_by_label() {
        let d = db_with_counters();
        let q = QueryEngine::new(&d);
        assert_eq!(q.select("rps", &LabelFilter::any()).len(), 2);
        assert_eq!(
            q.select("rps", &LabelFilter::any().eq("cluster", "a"))
                .len(),
            1
        );
        assert_eq!(
            q.select("rps", &LabelFilter::any().eq("cluster", "zzz"))
                .len(),
            0
        );
        assert_eq!(
            q.select(
                "rps",
                &LabelFilter::any().eq("cluster", "a").eq("service", "disk")
            )
            .len(),
            1
        );
    }

    #[test]
    fn rate_computes_per_second_deltas() {
        let d = db_with_counters();
        let q = QueryEngine::new(&d);
        let labels = Labels::from_pairs([("cluster", "a"), ("service", "disk")]);
        let series = q.select("rps", &LabelFilter::any().eq("cluster", "a"));
        assert_eq!(series.len(), 1);
        let rates = QueryEngine::rate(series[0].1);
        // Counter grows 1800 per 30 minutes = 1/sec.
        assert_eq!(rates.len(), 3);
        for (_, r) in &rates {
            assert!((r - 1.0).abs() < 1e-9, "rate {r}");
        }
        let _ = labels;
    }

    #[test]
    fn rate_handles_counter_reset() {
        let mut d = TimeSeriesDb::new(SimDuration::from_mins(30));
        d.register(MetricDescriptor::counter("c", SimDuration::from_hours(10)))
            .unwrap();
        d.write("c", Labels::empty(), mins(0), MetricValue::Counter(100))
            .unwrap();
        d.write("c", Labels::empty(), mins(30), MetricValue::Counter(10))
            .unwrap();
        let s = d.series("c", &Labels::empty()).unwrap();
        let rates = QueryEngine::rate(s);
        assert_eq!(rates.len(), 1);
        assert_eq!(rates[0].1, 0.0);
    }

    #[test]
    fn group_sum_aggregates_across_series() {
        let d = db_with_counters();
        let q = QueryEngine::new(&d);
        let grouped = q.group_sum("util", &LabelFilter::any(), "service");
        assert_eq!(grouped.len(), 1);
        let disk = &grouped["disk"];
        // Both clusters contribute 0.1*i at each timestamp.
        assert!((disk[&mins(30)] - 0.2).abs() < 1e-12);
        assert!((disk[&mins(90)] - 0.6).abs() < 1e-12);
    }

    #[test]
    fn group_sum_with_missing_key_buckets_to_none() {
        let d = db_with_counters();
        let q = QueryEngine::new(&d);
        let grouped = q.group_sum("util", &LabelFilter::any(), "nonexistent");
        assert_eq!(grouped.len(), 1);
        assert!(grouped.contains_key("<none>"));
    }

    #[test]
    fn gauges_extract_values() {
        let d = db_with_counters();
        let q = QueryEngine::new(&d);
        let series = q.select("util", &LabelFilter::any().eq("cluster", "b"));
        let gs = QueryEngine::gauges(series[0].1);
        assert_eq!(gs.len(), 4);
        assert_eq!(gs[2].1, 0.2);
    }
}
