//! Markov-modulated congestion on network paths.
//!
//! The paper finds that although WAN congestion is often considered solved,
//! "network latency from congestion has a significant impact on the tail"
//! (§5.1). We model each path as alternating between a *calm* and a
//! *congested* state with exponentially distributed holding times. Calm
//! paths add small exponential queueing jitter; congested paths add
//! Pareto-tailed excess delay. Because state persists over time, tail
//! latency arrives in bursts — matching the episodic congestion the paper
//! describes rather than i.i.d. noise.

use rpclens_simcore::dist::{BoundedPareto, Exponential, Sample};
use rpclens_simcore::rng::Prng;
use rpclens_simcore::time::{SimDuration, SimTime};

/// Congestion state of a single path.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CongestionState {
    /// Normal operation: small queueing jitter only.
    Calm,
    /// Congestion episode: heavy-tailed excess delay.
    Congested,
}

/// Parameters of the congestion process for one path class.
#[derive(Debug, Clone, Copy)]
pub struct CongestionParams {
    /// Mean duration of calm periods.
    pub calm_mean: SimDuration,
    /// Mean duration of congestion episodes.
    pub congested_mean: SimDuration,
    /// Mean queueing jitter while calm.
    pub calm_jitter_mean: SimDuration,
    /// Minimum excess delay while congested.
    pub congested_min: SimDuration,
    /// Maximum excess delay while congested.
    pub congested_max: SimDuration,
    /// Pareto tail index of congested excess delay (smaller = heavier).
    pub alpha: f64,
}

impl CongestionParams {
    /// Typical parameters for an intra-datacenter fabric path.
    pub fn fabric() -> Self {
        CongestionParams {
            calm_mean: SimDuration::from_secs(30),
            congested_mean: SimDuration::from_millis(400),
            calm_jitter_mean: SimDuration::from_micros(10),
            congested_min: SimDuration::from_micros(200),
            congested_max: SimDuration::from_millis(60),
            alpha: 1.1,
        }
    }

    /// Typical parameters for a WAN path; episodes are rarer but longer
    /// and add much larger excess delay.
    pub fn wan() -> Self {
        CongestionParams {
            calm_mean: SimDuration::from_secs(120),
            congested_mean: SimDuration::from_secs(2),
            calm_jitter_mean: SimDuration::from_micros(150),
            congested_min: SimDuration::from_millis(2),
            congested_max: SimDuration::from_millis(900),
            alpha: 0.9,
        }
    }

    /// Long-run fraction of time the path resides in its busy
    /// (congested) state: `congested_mean / (calm_mean + congested_mean)`
    /// — the alternating-renewal duty cycle the empirical
    /// `congestion_fraction_matches_duty_cycle` test converges to.
    pub fn congested_duty_cycle(&self) -> f64 {
        let calm = self.calm_mean.as_secs_f64();
        let busy = self.congested_mean.as_secs_f64();
        busy / (calm + busy)
    }

    /// Mean excess delay while congested, in seconds: the expectation of
    /// the truncated `Pareto(congested_min, congested_max, alpha)` draw
    /// [`CongestionProcess::queueing_delay`] samples in the busy state.
    pub fn congested_mean_excess_secs(&self) -> f64 {
        let l = self.congested_min.as_secs_f64().max(1e-9);
        let h = self.congested_max.as_secs_f64();
        let a = self.alpha;
        // Normalisation of the truncated tail.
        let c = 1.0 - (l / h).powf(a);
        if (a - 1.0).abs() < 1e-9 {
            // alpha = 1 limit of the closed form below.
            l * (h / l).ln() / c
        } else {
            a * l.powf(a) / c * (h.powf(1.0 - a) - l.powf(1.0 - a)) / (1.0 - a)
        }
    }
}

/// The lazily-evolved congestion process for one path.
///
/// State transitions are computed on demand when the path is queried, so
/// paths that carry no traffic cost nothing.
///
/// # Determinism contract
///
/// The process's own generator is reserved for the state *trajectory*:
/// it is consumed exactly one draw per state flip, strictly in trajectory
/// order, and the flip instants are remembered. That makes
/// [`CongestionProcess::state_at`] a pure function of `(construction
/// seed, now)` — independent of who queries the path, how often, in what
/// order (queries may jump backwards in time, within the retention
/// window below), or from which simulation shard. Per-message jitter is
/// sampled from the caller's generator in
/// [`CongestionProcess::queueing_delay`], so concurrent callers never
/// perturb each other's delays either.
///
/// Remembering the trajectory costs one [`SimTime`] per flip, and the
/// process keeps only a sliding *retention window* of recent flips
/// resident: once the stored tail exceeds [`PRUNE_TRIGGER_LEN`] entries,
/// intervals ending more than [`RETENTION`] behind the trajectory
/// frontier are discarded (their generator draws were consumed in
/// trajectory order, so the retained tail — and every answer within it —
/// is bit-identical to the never-pruned trajectory). That caps resident
/// state at a few KB per path regardless of how long the simulation
/// runs, instead of growing linearly with simulated time; with thousands
/// of active cluster-pair paths per shard, this is what keeps a
/// simulated day (or ten) of fleet traffic memory-bounded.
///
/// The price is a bounded look-behind: queries may still jump backwards,
/// but only within [`RETENTION`] of the furthest instant ever queried.
/// The fleet driver processes roots in arrival order and traces span at
/// most seconds, so its look-behind is minutes at worst — orders of
/// magnitude inside the window. A query below the retained horizon
/// panics (loudly, rather than silently misreporting a state).
#[derive(Debug, Clone)]
pub struct CongestionProcess {
    params: CongestionParams,
    /// `flip_ends[i]` is the instant global interval `pruned + i` ends.
    /// Global interval `g` covers `[end(g-1), end(g))` (interval 0
    /// starts at `SimTime::ZERO`) and is calm exactly when `g` is even.
    /// Only the tail of the trajectory inside the retention window is
    /// stored; older entries are discarded once their draws are burned.
    flip_ends: Vec<SimTime>,
    /// Number of leading intervals discarded below the retention
    /// horizon. Keeps global interval numbering (and hence calm/congested
    /// parity) stable across pruning.
    pruned: usize,
    /// End instant of the last pruned interval: the stored trajectory
    /// now begins at this instant. Queries below it panic.
    pruned_end: SimTime,
    /// Local (post-pruning) interval index of the last `state_at` answer.
    /// A lookup hint only: queries are near-monotone in practice, so the
    /// containing interval is usually this one or the next, and the
    /// binary search over the stored tail can be skipped. Never affects
    /// the result.
    cursor: usize,
    rng: Prng,
    calm_hold: Exponential,
    congested_hold: Exponential,
    calm_jitter: Exponential,
    congested_excess: BoundedPareto,
}

/// How far behind the trajectory frontier past intervals stay queryable.
///
/// Two simulated hours: the fleet driver's look-behind is bounded by one
/// trace's wall time (seconds) plus shard boundary skew (zero — chunks
/// are contiguous), so this margin is ~3 orders of magnitude of slack.
const RETENTION: SimDuration = SimDuration::from_hours(2);

/// Stored-tail length above which a pruning pass runs.
///
/// 512 entries exceed the flips a [`RETENTION`] window typically holds
/// for the built-in parameter sets (~475 for fabric, ~118 for WAN), so a
/// pass usually drops a bounded batch; `drain` keeps the allocation, so
/// this also caps each path's vector at ~1,024 capacity (8 KB) for good.
const PRUNE_TRIGGER_LEN: usize = 512;

impl CongestionProcess {
    /// Creates a process with its own random stream.
    ///
    /// # Panics
    ///
    /// Panics if the parameters are degenerate (zero means or an empty
    /// excess-delay range); the built-in parameter sets are always valid.
    pub fn new(params: CongestionParams, rng: Prng) -> Self {
        let calm_hold = Exponential::from_mean(params.calm_mean.as_secs_f64())
            .expect("calm mean must be positive");
        let congested_hold = Exponential::from_mean(params.congested_mean.as_secs_f64())
            .expect("congested mean must be positive");
        let calm_jitter = Exponential::from_mean(params.calm_jitter_mean.as_secs_f64())
            .expect("jitter mean must be positive");
        let congested_excess = BoundedPareto::new(
            params.congested_min.as_secs_f64().max(1e-9),
            params.congested_max.as_secs_f64(),
            params.alpha,
        )
        .expect("excess delay range must be non-empty");
        let mut process = CongestionProcess {
            params,
            flip_ends: Vec::new(),
            pruned: 0,
            pruned_end: SimTime::ZERO,
            cursor: 0,
            rng,
            calm_hold,
            congested_hold,
            calm_jitter,
            congested_excess,
        };
        // Sample the first calm period so the process does not flip at t=0.
        let first = process.calm_hold.sample(&mut process.rng);
        process
            .flip_ends
            .push(SimTime::ZERO + SimDuration::from_secs_f64(first.max(1e-6)));
        process
    }

    /// Extends the trajectory to cover `now` and returns the state of the
    /// interval containing it.
    ///
    /// Queries may arrive in any order within the retention window:
    /// extending only appends flips (one generator draw each, in
    /// trajectory order), and a query below the frontier is answered from
    /// the remembered flip instants, so the result depends on `now`
    /// alone.
    ///
    /// # Panics
    ///
    /// Panics if `now` falls below the retained horizon — more than
    /// [`RETENTION`] behind the furthest instant the trajectory was ever
    /// extended to. Callers with near-monotone query patterns (every
    /// user in this workspace) can never trip this.
    pub fn state_at(&mut self, now: SimTime) -> CongestionState {
        while *self.flip_ends.last().expect("trajectory is never empty") <= now {
            // The global interval being appended; even indices are calm.
            let next = self.pruned + self.flip_ends.len();
            let hold = if next.is_multiple_of(2) {
                self.calm_hold.sample(&mut self.rng)
            } else {
                self.congested_hold.sample(&mut self.rng)
            };
            let end = *self.flip_ends.last().expect("trajectory is never empty")
                + SimDuration::from_secs_f64(hold.max(1e-6));
            self.flip_ends.push(end);
        }
        if self.flip_ends.len() > PRUNE_TRIGGER_LEN {
            self.prune();
        }
        assert!(
            now >= self.pruned_end,
            "congestion query at {now} below the retained horizon {} \
             (queries may look back at most {RETENTION} behind the frontier)",
            self.pruned_end,
        );
        // Interval `i` (local) contains `now` iff it starts at or before
        // `now` and ends after it; a local interval's start is the
        // previous stored end, or `pruned_end` for the first one. Try the
        // cursor hint (last answer, then its successor) before
        // binary-searching the stored tail; all three branches compute
        // the same index.
        let c = self.cursor;
        let i = if c < self.flip_ends.len()
            && now < self.flip_ends[c]
            && (if c == 0 {
                self.pruned_end <= now
            } else {
                self.flip_ends[c - 1] <= now
            }) {
            c
        } else if c + 1 < self.flip_ends.len()
            && now < self.flip_ends[c + 1]
            && self.flip_ends[c] <= now
        {
            c + 1
        } else {
            self.flip_ends.partition_point(|&end| end <= now)
        };
        self.cursor = i;
        // Parity is over the *global* interval index.
        if (self.pruned + i).is_multiple_of(2) {
            CongestionState::Calm
        } else {
            CongestionState::Congested
        }
    }

    /// Discards stored intervals ending at or before `frontier -
    /// RETENTION`, keeping global numbering via the pruned-prefix count.
    ///
    /// Pure bookkeeping: every discarded interval's generator draw was
    /// already consumed in trajectory order, so answers inside the
    /// retained window are unchanged.
    fn prune(&mut self) {
        let frontier = *self.flip_ends.last().expect("trajectory is never empty");
        let horizon = SimTime::from_nanos(frontier.as_nanos().saturating_sub(RETENTION.as_nanos()));
        // Keep at least one interval so the trajectory stays non-empty.
        let cut = self
            .flip_ends
            .partition_point(|&end| end <= horizon)
            .min(self.flip_ends.len() - 1);
        if cut == 0 {
            return;
        }
        self.pruned_end = self.flip_ends[cut - 1];
        self.flip_ends.drain(..cut);
        self.pruned += cut;
        self.cursor = self.cursor.saturating_sub(cut);
    }

    /// Samples the queueing delay this path adds to a message sent at
    /// `now`, drawing the jitter from `rng`.
    ///
    /// The path's internal generator only advances the state trajectory
    /// (see the type-level determinism contract); the per-message jitter
    /// comes from the caller so that two callers sharing a path draw from
    /// their own independent streams.
    pub fn queueing_delay(&mut self, now: SimTime, rng: &mut Prng) -> SimDuration {
        match self.state_at(now) {
            CongestionState::Calm => SimDuration::from_secs_f64(self.calm_jitter.sample(rng)),
            CongestionState::Congested => {
                SimDuration::from_secs_f64(self.congested_excess.sample(rng))
            }
        }
    }

    /// The parameters this process was built with.
    pub fn params(&self) -> &CongestionParams {
        &self.params
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn process(params: CongestionParams, seed: u64) -> CongestionProcess {
        CongestionProcess::new(params, Prng::seed_from(seed))
    }

    #[test]
    fn calm_delays_are_small_congested_are_larger() {
        let mut p = process(CongestionParams::fabric(), 1);
        let mut rng = Prng::seed_from(11);
        // Walk time forward and bucket delays by observed state.
        let mut calm_max = SimDuration::ZERO;
        let mut congested_min = SimDuration::from_secs(999);
        let mut saw_congestion = false;
        for i in 0..200_000u64 {
            let now = SimTime::from_nanos(i * 1_000_000); // 1 ms steps.
            let state = p.state_at(now);
            let d = p.queueing_delay(now, &mut rng);
            match state {
                CongestionState::Calm => calm_max = calm_max.max(d),
                CongestionState::Congested => {
                    saw_congestion = true;
                    congested_min = congested_min.min(d);
                }
            }
        }
        assert!(saw_congestion, "no congestion episode in 200 s");
        // Congested delays start above the configured minimum, which is
        // itself well above the calm mean.
        assert!(congested_min.as_nanos() >= 200_000, "{congested_min}");
    }

    #[test]
    fn episodes_are_bursty_not_iid() {
        let mut p = process(CongestionParams::fabric(), 2);
        // Sample states on a fine grid; consecutive samples should agree
        // far more often than independent coin flips would.
        let mut same = 0u32;
        let mut total = 0u32;
        let mut prev = p.state_at(SimTime::ZERO);
        for i in 1..100_000u64 {
            let s = p.state_at(SimTime::from_nanos(i * 100_000)); // 0.1 ms.
            if s == prev {
                same += 1;
            }
            total += 1;
            prev = s;
        }
        assert!(same as f64 / total as f64 > 0.99, "state flips too often");
    }

    #[test]
    fn congestion_fraction_matches_duty_cycle() {
        let params = CongestionParams::fabric();
        let mut p = process(params, 3);
        let mut congested = 0u64;
        let n = 3_000_000u64;
        for i in 0..n {
            // 1 ms grid over 3000 s ≫ calm_mean, so the empirical duty
            // cycle should approach congested/(calm+congested) ≈ 1.3%.
            if p.state_at(SimTime::from_nanos(i * 1_000_000)) == CongestionState::Congested {
                congested += 1;
            }
        }
        let frac = congested as f64 / n as f64;
        let expected = 0.4 / 30.4;
        assert!(
            (frac - expected).abs() < expected,
            "duty cycle {frac}, expected ~{expected}"
        );
    }

    #[test]
    fn mean_excess_matches_empirical_sample_mean() {
        // The analytic truncated-Pareto mean must agree with what the
        // process actually samples in the busy state — this is the number
        // the fault plane's derived brownout excess is built on.
        for (params, seed) in [
            (CongestionParams::wan(), 8),
            (CongestionParams::fabric(), 9),
        ] {
            let excess = BoundedPareto::new(
                params.congested_min.as_secs_f64(),
                params.congested_max.as_secs_f64(),
                params.alpha,
            )
            .unwrap();
            let mut rng = Prng::seed_from(seed);
            let n = 400_000;
            let sum: f64 = (0..n).map(|_| excess.sample(&mut rng)).sum();
            let empirical = sum / n as f64;
            let analytic = params.congested_mean_excess_secs();
            assert!(
                (empirical - analytic).abs() / analytic < 0.05,
                "empirical {empirical} vs analytic {analytic}"
            );
        }
    }

    #[test]
    fn duty_cycle_accessor_matches_hand_computation() {
        let p = CongestionParams::fabric();
        let expected = 0.4 / 30.4;
        assert!((p.congested_duty_cycle() - expected).abs() < 1e-12);
        let w = CongestionParams::wan();
        assert!((w.congested_duty_cycle() - 2.0 / 122.0).abs() < 1e-12);
    }

    #[test]
    fn congested_delays_respect_bounds() {
        let params = CongestionParams::wan();
        let mut p = process(params, 4);
        let mut rng = Prng::seed_from(44);
        for i in 0..500_000u64 {
            let now = SimTime::from_nanos(i * 1_000_000);
            let d = p.queueing_delay(now, &mut rng);
            assert!(d <= SimDuration::from_millis(901), "delay {d} too large");
        }
    }

    #[test]
    fn deterministic_per_seed() {
        let mut a = process(CongestionParams::wan(), 5);
        let mut b = process(CongestionParams::wan(), 5);
        let mut ra = Prng::seed_from(55);
        let mut rb = Prng::seed_from(55);
        for i in 0..10_000u64 {
            let now = SimTime::from_nanos(i * 10_000_000);
            assert_eq!(
                a.queueing_delay(now, &mut ra),
                b.queueing_delay(now, &mut rb)
            );
        }
    }

    #[test]
    fn trajectory_is_independent_of_query_pattern() {
        // Two copies of a process driven on completely different query
        // patterns — one message-heavy and monotone, one advanced in a
        // single jump and then queried *backwards* — must agree on the
        // state at every instant, because the trajectory consumes
        // generator draws only at state flips, in trajectory order, and
        // past intervals stay queryable. This is the property the sharded
        // fleet driver leans on: shards interleave path queries in
        // arbitrary time order yet must sample identical congestion.
        let mut dense = process(CongestionParams::fabric(), 9);
        let mut sparse = process(CongestionParams::fabric(), 9);
        let mut jitter_rng = Prng::seed_from(99);
        let mut recorded = Vec::new();
        for i in 0..400_000u64 {
            let now = SimTime::from_nanos(i * 250_000); // 0.25 ms grid to 100 s.
            recorded.push(dense.state_at(now));
            // The dense copy also burns caller jitter draws; that must not
            // affect its trajectory.
            dense.queueing_delay(now, &mut jitter_rng);
        }
        sparse.state_at(SimTime::from_nanos(100_000_000_000)); // one jump.
        for i in (0..400_000u64).rev() {
            let now = SimTime::from_nanos(i * 250_000);
            assert_eq!(
                recorded[i as usize],
                sparse.state_at(now),
                "diverged at {now}"
            );
        }
    }

    #[test]
    fn cursor_hint_matches_partition_point() {
        // Drive the process with a query pattern hostile to the cursor
        // (large forward and backward jumps); after every answer, the
        // chosen interval must equal the full binary search's.
        let mut p = process(CongestionParams::fabric(), 7);
        let mut mix = 0x243F_6A88_85A3_08D3u64;
        for _ in 0..50_000 {
            mix = mix
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            let now = SimTime::from_nanos(mix % 200_000_000_000); // 0..200 s.
            let state = p.state_at(now);
            let i = p.flip_ends.partition_point(|&end| end <= now);
            assert_eq!(p.cursor, i, "hint diverged at {now}");
            assert_eq!(state == CongestionState::Calm, i % 2 == 0);
        }
    }

    #[test]
    fn time_can_jump_far_ahead() {
        let mut p = process(CongestionParams::fabric(), 6);
        // Jumping hours ahead must terminate and yield a valid state.
        let s = p.state_at(SimTime::from_nanos(3_600_000_000_000 * 24));
        assert!(matches!(
            s,
            CongestionState::Calm | CongestionState::Congested
        ));
    }

    #[test]
    fn resident_trajectory_stays_bounded_over_a_simulated_week() {
        // Without retention pruning a fabric path stores ~5,700 flips per
        // simulated day; a monotone week-long walk must stay near the
        // prune trigger instead of growing linearly with simulated time.
        let mut p = process(CongestionParams::fabric(), 21);
        let week_ns = 7 * 24 * 3_600_000_000_000u64;
        let mut peak = 0usize;
        for i in 0..7 * 24 * 4u64 {
            // One query per simulated quarter hour.
            p.state_at(SimTime::from_nanos(i * (week_ns / (7 * 24 * 4))));
            peak = peak.max(p.flip_ends.len());
        }
        assert!(
            peak <= PRUNE_TRIGGER_LEN + 128,
            "stored tail peaked at {peak} entries"
        );
        assert!(p.pruned > 10_000, "only {} intervals pruned", p.pruned);
    }

    #[test]
    fn pruned_process_agrees_with_unpruned_inside_the_window() {
        // Same seed, two query patterns: one advanced day-by-day (which
        // prunes), one queried only at the comparison instants after a
        // single jump. Every answer inside the retention window must
        // match — pruning is pure bookkeeping over already-drawn flips.
        let mut walked = process(CongestionParams::fabric(), 22);
        let mut jumped = process(CongestionParams::fabric(), 22);
        let day_ns = 24 * 3_600_000_000_000u64;
        for i in 0..24 * 60u64 {
            walked.state_at(SimTime::from_nanos(i * day_ns / (24 * 60)));
        }
        assert!(walked.pruned > 0, "walk never pruned");
        jumped.state_at(SimTime::from_nanos(day_ns));
        // Compare across the last simulated hour (well inside retention).
        for i in 0..600u64 {
            let now = SimTime::from_nanos(day_ns - i * 6_000_000_000);
            assert_eq!(walked.state_at(now), jumped.state_at(now), "at {now}");
        }
    }

    #[test]
    #[should_panic(expected = "below the retained horizon")]
    fn query_below_the_retained_horizon_panics() {
        let mut p = process(CongestionParams::fabric(), 23);
        // Advance a simulated day (prunes everything older than the
        // retention window), then look back to the epoch.
        p.state_at(SimTime::from_nanos(24 * 3_600_000_000_000));
        p.state_at(SimTime::ZERO);
    }
}
