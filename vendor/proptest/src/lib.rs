//! Offline stand-in for the `proptest` crate.
//!
//! Implements the slice of the proptest API the rpclens workspace uses —
//! the `proptest!` macro, range and collection strategies, `any::<T>()`,
//! and the `prop_assert*`/`prop_assume!` macros — as a small, fully
//! deterministic harness with no external dependencies, so property tests
//! keep running in a network-isolated build environment.
//!
//! Differences from real proptest, by design:
//!
//! - no shrinking: a failing case panics with its seed index, and re-runs
//!   reproduce it exactly (the generator is seeded from the test path);
//! - a fixed case count (default 64, `PROPTEST_CASES` overrides);
//! - strategies are plain values sampled eagerly, not lazy trees.

/// Deterministic generation state for one test case.
pub mod test_runner {
    /// SplitMix64-based generator used to produce test inputs.
    #[derive(Debug, Clone)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        /// Creates a generator for case `case` of the test named `name`.
        ///
        /// The seed depends only on the test path and case index, so every
        /// run generates the same inputs in the same order.
        pub fn deterministic(name: &str, case: u64) -> Self {
            let mut h = 0xcbf2_9ce4_8422_2325u64;
            for b in name.bytes() {
                h ^= b as u64;
                h = h.wrapping_mul(0x1000_0000_01b3);
            }
            TestRng {
                state: h ^ case.wrapping_mul(0x9E37_79B9_7F4A_7C15),
            }
        }

        /// Next raw 64-bit output.
        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }

        /// Uniform value in `[0, bound)`.
        pub fn below(&mut self, bound: u64) -> u64 {
            assert!(bound > 0, "below(0)");
            // Multiply-shift bounded sampling; bias is irrelevant for a
            // test-input generator.
            ((self.next_u64() as u128 * bound as u128) >> 64) as u64
        }

        /// Uniform `f64` in `[0, 1)`.
        pub fn unit_f64(&mut self) -> f64 {
            (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
        }
    }

    /// Number of cases each `proptest!` test runs.
    pub fn cases() -> u64 {
        std::env::var("PROPTEST_CASES")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(64)
    }
}

/// Value-generation strategies.
pub mod strategy {
    use crate::test_runner::TestRng;
    use std::ops::{Range, RangeInclusive};

    /// A source of generated values.
    pub trait Strategy {
        /// The generated type.
        type Value;
        /// Samples one value.
        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        /// Maps generated values through `f` (the real proptest
        /// combinator of the same name; no shrinking here, so it is a
        /// plain post-generation transform).
        fn prop_map<T, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> T,
        {
            Map { strategy: self, f }
        }
    }

    /// The strategy returned by [`Strategy::prop_map`].
    #[derive(Debug)]
    pub struct Map<S, F> {
        strategy: S,
        f: F,
    }

    impl<S, T, F> Strategy for Map<S, F>
    where
        S: Strategy,
        F: Fn(S::Value) -> T,
    {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            (self.f)(self.strategy.generate(rng))
        }
    }

    macro_rules! impl_int_ranges {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range");
                    let span = (self.end as i128 - self.start as i128) as u64;
                    (self.start as i128 + rng.below(span) as i128) as $t
                }
            }
            impl Strategy for RangeInclusive<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    let (lo, hi) = (*self.start(), *self.end());
                    assert!(lo <= hi, "empty range");
                    let span = (hi as i128 - lo as i128) as u128 + 1;
                    (lo as i128 + ((rng.next_u64() as u128 * span) >> 64) as i128) as $t
                }
            }
        )*};
    }

    impl_int_ranges!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Strategy for Range<f64> {
        type Value = f64;
        fn generate(&self, rng: &mut TestRng) -> f64 {
            self.start + rng.unit_f64() * (self.end - self.start)
        }
    }

    impl Strategy for RangeInclusive<f64> {
        type Value = f64;
        fn generate(&self, rng: &mut TestRng) -> f64 {
            // Occasionally emit the exact endpoints; they are the
            // interesting boundary cases an inclusive range advertises.
            match rng.below(32) {
                0 => *self.start(),
                1 => *self.end(),
                _ => *self.start() + rng.unit_f64() * (*self.end() - *self.start()),
            }
        }
    }

    impl Strategy for Range<f32> {
        type Value = f32;
        fn generate(&self, rng: &mut TestRng) -> f32 {
            self.start + rng.unit_f64() as f32 * (self.end - self.start)
        }
    }

    macro_rules! impl_tuples {
        ($(($($n:ident . $i:tt),+)),+) => {$(
            impl<$($n: Strategy),+> Strategy for ($($n,)+) {
                type Value = ($($n::Value,)+);
                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    ($(self.$i.generate(rng),)+)
                }
            }
        )+};
    }

    impl_tuples!(
        (A.0),
        (A.0, B.1),
        (A.0, B.1, C.2),
        (A.0, B.1, C.2, D.3),
        (A.0, B.1, C.2, D.3, E.4),
        (A.0, B.1, C.2, D.3, E.4, F.5)
    );

    /// A strategy that always yields a clone of one value.
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn generate(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }
}

/// `any::<T>()` support.
pub mod arbitrary {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use std::marker::PhantomData;

    /// Types with a canonical full-domain generator.
    pub trait Arbitrary {
        /// Samples one value from the type's full domain.
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    macro_rules! impl_arbitrary_int {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn arbitrary(rng: &mut TestRng) -> $t {
                    // Mix raw values with boundary cases, which real
                    // proptest weighs heavily via shrinking.
                    match rng.below(16) {
                        0 => 0 as $t,
                        1 => <$t>::MAX,
                        2 => <$t>::MIN,
                        _ => rng.next_u64() as $t,
                    }
                }
            }
        )*};
    }

    impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }

    impl Arbitrary for f64 {
        fn arbitrary(rng: &mut TestRng) -> f64 {
            match rng.below(16) {
                0 => 0.0,
                1 => -1.0,
                2 => 1.0,
                _ => (rng.unit_f64() - 0.5) * 2e9,
            }
        }
    }

    /// The strategy returned by [`any`].
    #[derive(Debug)]
    pub struct Any<T>(PhantomData<T>);

    impl<T: Arbitrary> Strategy for Any<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            T::arbitrary(rng)
        }
    }

    /// A full-domain strategy for `T`.
    pub fn any<T: Arbitrary>() -> Any<T> {
        Any(PhantomData)
    }
}

/// Collection strategies.
pub mod collection {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use std::ops::{Range, RangeInclusive};

    /// An inclusive-exclusive bound on generated collection sizes.
    #[derive(Debug, Clone, Copy)]
    pub struct SizeRange {
        lo: usize,
        hi: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { lo: n, hi: n + 1 }
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            SizeRange {
                lo: r.start,
                hi: r.end,
            }
        }
    }

    impl From<RangeInclusive<usize>> for SizeRange {
        fn from(r: RangeInclusive<usize>) -> Self {
            SizeRange {
                lo: *r.start(),
                hi: *r.end() + 1,
            }
        }
    }

    /// The strategy returned by [`vec`].
    #[derive(Debug)]
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            assert!(self.size.lo < self.size.hi, "empty size range");
            let span = (self.size.hi - self.size.lo) as u64;
            let n = self.size.lo + rng.below(span.max(1)) as usize;
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }

    /// A strategy for vectors whose elements come from `element` and whose
    /// length falls in `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }
}

/// The common imports every proptest test pulls in.
pub mod prelude {
    pub use crate::arbitrary::{any, Arbitrary};
    pub use crate::strategy::{Just, Map, Strategy};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest};
}

/// Declares deterministic property tests.
///
/// Each `#[test] fn name(arg in strategy, other: Type) { ... }` item
/// expands to a normal test that runs the body for
/// [`test_runner::cases`] generated inputs.
#[macro_export]
macro_rules! proptest {
    () => {};
    ($(#[$meta:meta])* fn $name:ident($($params:tt)*) $body:block $($rest:tt)*) => {
        $(#[$meta])*
        fn $name() {
            let cases = $crate::test_runner::cases();
            for __case in 0..cases {
                let mut __proptest_rng = $crate::test_runner::TestRng::deterministic(
                    concat!(module_path!(), "::", stringify!($name)),
                    __case,
                );
                let mut __one_case = || {
                    $crate::__proptest_bind!(__proptest_rng; $($params)*; $body)
                };
                __one_case();
            }
        }
        $crate::proptest! { $($rest)* }
    };
}

/// Internal argument-binding muncher for [`proptest!`].
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_bind {
    ($rng:ident; ; $body:block) => { $body };
    ($rng:ident; $arg:ident : $ty:ty, $($rest:tt)*) => {{
        let $arg = <$ty as $crate::arbitrary::Arbitrary>::arbitrary(&mut $rng);
        $crate::__proptest_bind!($rng; $($rest)*)
    }};
    ($rng:ident; $arg:ident : $ty:ty; $body:block) => {{
        let $arg = <$ty as $crate::arbitrary::Arbitrary>::arbitrary(&mut $rng);
        $body
    }};
    ($rng:ident; $pat:pat in $strat:expr, $($rest:tt)*) => {{
        let $pat = $crate::strategy::Strategy::generate(&($strat), &mut $rng);
        $crate::__proptest_bind!($rng; $($rest)*)
    }};
    ($rng:ident; $pat:pat in $strat:expr; $body:block) => {{
        let $pat = $crate::strategy::Strategy::generate(&($strat), &mut $rng);
        $body
    }};
}

/// Asserts a condition inside a property test.
#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { assert!($($tt)*) };
}

/// Asserts equality inside a property test.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { assert_eq!($($tt)*) };
}

/// Asserts inequality inside a property test.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($tt:tt)*) => { assert_ne!($($tt)*) };
}

/// Skips the current case when its inputs do not satisfy a precondition.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            return;
        }
    };
}

#[cfg(test)]
mod tests {
    use crate::strategy::Strategy as _;

    proptest! {
        #[test]
        fn ranges_stay_in_bounds(x in 10u64..20, y in -5i32..5, f in 0.25f64..0.75) {
            prop_assert!((10..20).contains(&x));
            prop_assert!((-5..5).contains(&y));
            prop_assert!((0.25..0.75).contains(&f));
        }

        #[test]
        fn typed_args_generate(seed: u64, flag: bool) {
            let _ = (seed, flag);
        }

        #[test]
        fn vectors_respect_size(v in crate::collection::vec(0u64..100, 3..7)) {
            prop_assert!(v.len() >= 3 && v.len() < 7);
            prop_assert!(v.iter().all(|&x| x < 100));
        }

        #[test]
        fn tuples_and_assume(pair in (0u64..10, 0u64..10)) {
            prop_assume!(pair.0 != pair.1);
            prop_assert_ne!(pair.0, pair.1);
        }

        #[test]
        fn prop_map_transforms(doubled in (1u64..50).prop_map(|x| x * 2)) {
            prop_assert!(doubled % 2 == 0);
            prop_assert!((2..100).contains(&doubled));
        }
    }

    #[test]
    fn deterministic_across_runs() {
        use crate::strategy::Strategy;
        let mut a = crate::test_runner::TestRng::deterministic("t", 3);
        let mut b = crate::test_runner::TestRng::deterministic("t", 3);
        let s = 0u64..1000;
        for _ in 0..100 {
            assert_eq!(s.generate(&mut a), s.generate(&mut b));
        }
    }
}
