//! Deadline budgets and propagation.
//!
//! Stubby-style RPC systems attach an absolute deadline to every call;
//! each nested hop inherits what remains after the parent's elapsed time
//! and a propagation safety margin. The paper observes the consequences
//! — `Deadline exceeded` is one of its Fig. 23 error classes and hedging
//! policies key off expected latencies — and motivates deadline-aware
//! scheduling as future work. This module implements the budget algebra
//! used for such studies.

use rpclens_simcore::time::{SimDuration, SimTime};
use serde::{Deserialize, Serialize};

/// A deadline budget carried by one call.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Deadline {
    /// Absolute expiry instant.
    pub expires_at: SimTime,
}

impl Deadline {
    /// A deadline `budget` from `now`.
    pub fn after(now: SimTime, budget: SimDuration) -> Deadline {
        Deadline {
            expires_at: now + budget,
        }
    }

    /// The remaining budget at `now` (zero if expired).
    pub fn remaining(&self, now: SimTime) -> SimDuration {
        self.expires_at.since(now)
    }

    /// Whether the deadline has expired at `now`.
    pub fn expired(&self, now: SimTime) -> bool {
        now >= self.expires_at
    }

    /// Derives the deadline a child call should carry: the parent's
    /// remainder shrunk by `margin` (time reserved for the response to
    /// travel back and be processed).
    ///
    /// Returns `None` when nothing would remain — the caller should fail
    /// fast with `DeadlineExceeded` instead of issuing a doomed child.
    pub fn propagate(&self, now: SimTime, margin: SimDuration) -> Option<Deadline> {
        let remaining = self.remaining(now);
        if remaining <= margin {
            return None;
        }
        Some(Deadline {
            expires_at: now + SimDuration::from_nanos(remaining.as_nanos() - margin.as_nanos()),
        })
    }
}

/// Per-method deadline policy: how a server decides the budget for calls
/// it originates.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DeadlinePolicy {
    /// Default budget for root calls.
    pub root_budget: SimDuration,
    /// Margin reserved per hop when propagating.
    pub hop_margin: SimDuration,
    /// Minimum budget worth issuing a call with; below this, fail fast.
    pub min_budget: SimDuration,
}

impl Default for DeadlinePolicy {
    fn default() -> Self {
        DeadlinePolicy {
            root_budget: SimDuration::from_secs(10),
            hop_margin: SimDuration::from_millis(2),
            min_budget: SimDuration::from_micros(500),
        }
    }
}

impl DeadlinePolicy {
    /// The deadline for a root call issued at `now`.
    pub fn root(&self, now: SimTime) -> Deadline {
        Deadline::after(now, self.root_budget)
    }

    /// The deadline for a child call at `now` under `parent`, or `None`
    /// if the remaining budget is below the useful minimum.
    pub fn child(&self, parent: Deadline, now: SimTime) -> Option<Deadline> {
        let child = parent.propagate(now, self.hop_margin)?;
        (child.remaining(now) >= self.min_budget).then_some(child)
    }

    /// How many sequential hops a fresh root budget can traverse before
    /// the budget dips below `min_budget`, assuming each hop consumes
    /// `per_hop` of wall time plus the propagation margin.
    pub fn max_depth(&self, per_hop: SimDuration) -> u32 {
        let mut now = SimTime::ZERO;
        let mut deadline = self.root(now);
        let mut depth = 0;
        loop {
            now += per_hop;
            match self.child(deadline, now) {
                Some(d) => {
                    deadline = d;
                    depth += 1;
                }
                None => return depth,
            }
            if depth > 10_000 {
                return depth; // Defensive bound for degenerate inputs.
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(ms: u64) -> SimTime {
        SimTime::ZERO + SimDuration::from_millis(ms)
    }

    #[test]
    fn remaining_counts_down_and_expires() {
        let d = Deadline::after(t(0), SimDuration::from_millis(100));
        assert_eq!(d.remaining(t(0)), SimDuration::from_millis(100));
        assert_eq!(d.remaining(t(60)), SimDuration::from_millis(40));
        assert!(!d.expired(t(99)));
        assert!(d.expired(t(100)));
        assert_eq!(d.remaining(t(150)), SimDuration::ZERO);
    }

    #[test]
    fn propagation_shrinks_by_margin() {
        let d = Deadline::after(t(0), SimDuration::from_millis(100));
        let child = d.propagate(t(10), SimDuration::from_millis(5)).unwrap();
        // 90 ms remained; the child gets 85 ms.
        assert_eq!(child.remaining(t(10)), SimDuration::from_millis(85));
    }

    #[test]
    fn propagation_fails_when_margin_exceeds_remainder() {
        let d = Deadline::after(t(0), SimDuration::from_millis(10));
        assert!(d.propagate(t(9), SimDuration::from_millis(5)).is_none());
        assert!(d.propagate(t(20), SimDuration::from_millis(1)).is_none());
    }

    #[test]
    fn policy_fails_fast_below_min_budget() {
        let p = DeadlinePolicy {
            root_budget: SimDuration::from_millis(10),
            hop_margin: SimDuration::from_millis(2),
            min_budget: SimDuration::from_millis(5),
        };
        let root = p.root(t(0));
        // At t=2ms: 8ms remain, child gets 6ms >= min 5ms.
        assert!(p.child(root, t(2)).is_some());
        // At t=4ms: 6ms remain, child gets 4ms < min 5ms.
        assert!(p.child(root, t(4)).is_none());
    }

    #[test]
    fn budgets_monotonically_shrink_down_a_chain() {
        let p = DeadlinePolicy::default();
        let mut now = t(0);
        let mut d = p.root(now);
        let mut last = d.remaining(now);
        for _ in 0..20 {
            now += SimDuration::from_millis(3);
            d = p.child(d, now).expect("budget lasts 20 shallow hops");
            let r = d.remaining(now);
            assert!(r < last);
            last = r;
        }
    }

    #[test]
    fn max_depth_matches_hand_computation() {
        let p = DeadlinePolicy {
            root_budget: SimDuration::from_millis(20),
            hop_margin: SimDuration::from_millis(2),
            min_budget: SimDuration::from_millis(1),
        };
        // Each hop: 3 ms wall + 2 ms margin = 5 ms of budget; 20 ms
        // affords hops while remaining - margin >= 1 ms.
        let depth = p.max_depth(SimDuration::from_millis(3));
        assert_eq!(depth, 3);
        // A zero-cost chain is bounded only by the margins.
        let free = p.max_depth(SimDuration::ZERO);
        assert!((9..=10).contains(&free), "depth {free}");
    }

    #[test]
    fn default_policy_supports_paper_scale_depths() {
        // Trees in the study reach depth ~10-19; the default budget must
        // not strangle them at millisecond hop costs.
        let p = DeadlinePolicy::default();
        assert!(p.max_depth(SimDuration::from_millis(5)) >= 19);
    }
}
