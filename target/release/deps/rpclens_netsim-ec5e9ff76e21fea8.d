/root/repo/target/release/deps/rpclens_netsim-ec5e9ff76e21fea8.d: crates/netsim/src/lib.rs crates/netsim/src/congestion.rs crates/netsim/src/geo.rs crates/netsim/src/latency.rs crates/netsim/src/topology.rs

/root/repo/target/release/deps/rpclens_netsim-ec5e9ff76e21fea8: crates/netsim/src/lib.rs crates/netsim/src/congestion.rs crates/netsim/src/geo.rs crates/netsim/src/latency.rs crates/netsim/src/topology.rs

crates/netsim/src/lib.rs:
crates/netsim/src/congestion.rs:
crates/netsim/src/geo.rs:
crates/netsim/src/latency.rs:
crates/netsim/src/topology.rs:
