/root/repo/target/debug/deps/rpclens_rpcstack-c9198c75f1a67d1a.d: crates/rpcstack/src/lib.rs crates/rpcstack/src/codec.rs crates/rpcstack/src/component.rs crates/rpcstack/src/cost.rs crates/rpcstack/src/deadline.rs crates/rpcstack/src/error.rs crates/rpcstack/src/hedging.rs crates/rpcstack/src/loadbalancer.rs crates/rpcstack/src/queue.rs crates/rpcstack/src/retry.rs Cargo.toml

/root/repo/target/debug/deps/librpclens_rpcstack-c9198c75f1a67d1a.rmeta: crates/rpcstack/src/lib.rs crates/rpcstack/src/codec.rs crates/rpcstack/src/component.rs crates/rpcstack/src/cost.rs crates/rpcstack/src/deadline.rs crates/rpcstack/src/error.rs crates/rpcstack/src/hedging.rs crates/rpcstack/src/loadbalancer.rs crates/rpcstack/src/queue.rs crates/rpcstack/src/retry.rs Cargo.toml

crates/rpcstack/src/lib.rs:
crates/rpcstack/src/codec.rs:
crates/rpcstack/src/component.rs:
crates/rpcstack/src/cost.rs:
crates/rpcstack/src/deadline.rs:
crates/rpcstack/src/error.rs:
crates/rpcstack/src/hedging.rs:
crates/rpcstack/src/loadbalancer.rs:
crates/rpcstack/src/queue.rs:
crates/rpcstack/src/retry.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
