//! A log-bucketed high-dynamic-range histogram.
//!
//! Latencies in the study span six orders of magnitude (hundreds of
//! nanoseconds of stack time to multi-second tail RPCs), so fixed-width
//! buckets are useless. This histogram uses log-linear bucketing in the
//! style of HdrHistogram: exact counts below 64, then 32 sub-buckets per
//! octave, giving a worst-case relative quantile error of ~1.6% across the
//! full `u64` range with at most 1,920 buckets.

use serde::{Deserialize, Serialize};

/// Number of low-order values recorded exactly.
const LINEAR_LIMIT: u64 = 64;
/// Sub-buckets per octave above the linear range (half of `LINEAR_LIMIT`).
const SUB_PER_OCTAVE: usize = 32;

/// A mergeable, log-bucketed histogram of `u64` values.
///
/// # Examples
///
/// ```
/// use rpclens_simcore::hist::LogHistogram;
///
/// let mut h = LogHistogram::new();
/// for v in 1..=1000u64 {
///     h.record(v);
/// }
/// let p50 = h.quantile(0.5).unwrap();
/// assert!((480..=520).contains(&p50), "p50 {p50}");
/// assert_eq!(h.count(), 1000);
/// ```
/// Note on construction: [`LogHistogram::new`] seeds `min` with
/// `u64::MAX` (the fold identity), while the derived [`Default`] zeroes
/// every field, so a default-constructed histogram reports `min = 0`
/// once anything is recorded. The difference long predates this note and
/// is pinned by the golden run digests (`root_latency.min_us` flows from
/// a default-constructed histogram), so it must not be "fixed" without
/// re-baselining every digest. Prefer `new()` in new code.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct LogHistogram {
    counts: Vec<u64>,
    count: u64,
    sum: u128,
    min: u64,
    max: u64,
}

/// Branchless log-linear bucket index.
///
/// One closed-form expression covers the whole `u64` range: clamping the
/// magnitude at 5 makes the linear region (`v < 64`, where the bucket is
/// `v` itself) fall out of the same `(octave << 5) + top6` arithmetic as
/// the log region, so the hot record path compiles to a handful of ALU
/// ops with no data-dependent branch. `v | 1` keeps `leading_zeros`
/// defined at `v = 0` without changing any magnitude at or above the
/// linear limit. Equivalence with the branchy reference formulation is
/// pinned over the full `u64` range by a proptest below.
fn bucket_index(v: u64) -> usize {
    let msb = 63 - (v | 1).leading_zeros() as usize;
    let m = if msb > 5 { msb } else { 5 }; // max() — compiles to cmov.
    (m << 5) + ((v >> (m - 5)) as usize) - 160
}

fn bucket_midpoint(index: usize) -> u64 {
    if index < LINEAR_LIMIT as usize {
        return index as u64;
    }
    let k = index - LINEAR_LIMIT as usize;
    let octave = (k / SUB_PER_OCTAVE) as u32;
    let sub = (k % SUB_PER_OCTAVE + SUB_PER_OCTAVE) as u64;
    // Bucket spans [sub << (octave+1), (sub+1) << (octave+1)); return its
    // midpoint, saturating near the top of the range.
    let lo = sub << (octave + 1);
    let width = 1u64 << (octave + 1);
    lo.saturating_add(width / 2)
}

impl LogHistogram {
    /// Creates an empty histogram.
    pub fn new() -> Self {
        LogHistogram {
            counts: Vec::new(),
            count: 0,
            sum: 0,
            min: u64::MAX,
            max: 0,
        }
    }

    /// Records one value.
    pub fn record(&mut self, v: u64) {
        self.record_n(v, 1);
    }

    /// Records `n` occurrences of value `v`.
    pub fn record_n(&mut self, v: u64, n: u64) {
        if n == 0 {
            return;
        }
        let idx = bucket_index(v);
        if idx >= self.counts.len() {
            // Cold: grows at most ~64 times over a histogram's life.
            self.counts.resize(idx + 1, 0);
        }
        // The value-dependent branch lives in `bucket_index` (closed
        // form, no branch); the updates below are unconditional folds —
        // `min`/`max` compile to cmov, not data-dependent jumps.
        self.counts[idx] += n;
        self.count += n;
        self.sum += v as u128 * n as u128;
        self.min = self.min.min(v);
        self.max = self.max.max(v);
    }

    /// Total number of recorded values.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Whether nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// Exact minimum recorded value, or `None` if empty.
    pub fn min(&self) -> Option<u64> {
        (self.count > 0).then_some(self.min)
    }

    /// Exact maximum recorded value, or `None` if empty.
    pub fn max(&self) -> Option<u64> {
        (self.count > 0).then_some(self.max)
    }

    /// Exact mean of recorded values, or `None` if empty.
    pub fn mean(&self) -> Option<f64> {
        (self.count > 0).then(|| self.sum as f64 / self.count as f64)
    }

    /// Sum of all recorded values.
    pub fn sum(&self) -> u128 {
        self.sum
    }

    /// The value at quantile `q` in `[0, 1]`, approximated at bucket
    /// resolution (~1.6% relative error), or `None` if the histogram is
    /// empty.
    ///
    /// # Panics
    ///
    /// Panics if `q` is not within `[0, 1]`.
    pub fn quantile(&self, q: f64) -> Option<u64> {
        assert!(
            (0.0..=1.0).contains(&q),
            "quantile must be in [0,1], got {q}"
        );
        if self.count == 0 {
            return None;
        }
        if q <= 0.0 {
            return Some(self.min);
        }
        if q >= 1.0 {
            return Some(self.max);
        }
        let target = (q * self.count as f64).ceil().max(1.0) as u64;
        let mut acc = 0u64;
        for (idx, &c) in self.counts.iter().enumerate() {
            acc += c;
            if acc >= target {
                // Clamp to the exact extremes so quantiles never step
                // outside the recorded range.
                return Some(bucket_midpoint(idx).clamp(self.min, self.max));
            }
        }
        Some(self.max)
    }

    /// Merges another histogram into this one.
    pub fn merge(&mut self, other: &LogHistogram) {
        // One whole-histogram guard (empty merges are rare and the
        // branch predicts perfectly); it also keeps a default-constructed
        // empty `other` (whose `min` is 0, see the type-level note) from
        // dragging a real minimum down to zero.
        if other.count == 0 {
            return;
        }
        if other.counts.len() > self.counts.len() {
            self.counts.resize(other.counts.len(), 0);
        }
        // Element-wise add over a pair of equal-stride slices with no
        // per-bucket condition or bounds check: the autovectorizer turns
        // this into wide integer adds.
        for (a, &b) in self.counts.iter_mut().zip(&other.counts) {
            *a += b;
        }
        self.count += other.count;
        self.sum += other.sum;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }

    /// Iterates over `(bucket_midpoint, count)` pairs for non-empty buckets.
    pub fn iter_buckets(&self) -> impl Iterator<Item = (u64, u64)> + '_ {
        self.counts
            .iter()
            .enumerate()
            .filter(|(_, &c)| c > 0)
            .map(|(i, &c)| (bucket_midpoint(i), c))
    }

    /// Extracts an approximate CDF as `(value, cumulative_fraction)` points,
    /// one per non-empty bucket.
    pub fn cdf_points(&self) -> Vec<(u64, f64)> {
        let mut acc = 0u64;
        self.iter_buckets()
            .map(|(v, c)| {
                acc += c;
                (v, acc as f64 / self.count as f64)
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    /// The original branchy formulation of [`bucket_index`], kept as the
    /// reference the branchless kernel is checked against: exact buckets
    /// below the linear limit, then `SUB_PER_OCTAVE` log-linear
    /// sub-buckets per octave.
    fn bucket_index_reference(v: u64) -> usize {
        if v < LINEAR_LIMIT {
            return v as usize;
        }
        let msb = 63 - v.leading_zeros() as u64; // >= 6 here.
        let shift = msb - 5;
        let top6 = (v >> shift) as usize; // In [32, 63].
        LINEAR_LIMIT as usize + (msb as usize - 6) * SUB_PER_OCTAVE + (top6 - SUB_PER_OCTAVE)
    }

    #[test]
    fn branchless_bucket_index_matches_reference_at_edges() {
        // Every boundary the closed form has to get right: zero, the
        // linear limit and its neighbours, every power of two and its
        // neighbours, and the top of the range.
        let mut cases = vec![0u64, 1, 2, 63, 64, 65, u64::MAX, u64::MAX - 1];
        for p in 1..64 {
            let b = 1u64 << p;
            cases.extend([b - 1, b, b + 1]);
        }
        for v in cases {
            assert_eq!(
                bucket_index(v),
                bucket_index_reference(v),
                "bucket_index diverged at {v}"
            );
        }
    }

    #[test]
    fn small_values_are_exact() {
        let mut h = LogHistogram::new();
        for v in 0..LINEAR_LIMIT {
            h.record(v);
        }
        assert_eq!(h.count(), LINEAR_LIMIT);
        assert_eq!(h.min(), Some(0));
        assert_eq!(h.max(), Some(63));
        // Every small value occupies its own bucket.
        assert_eq!(h.iter_buckets().count(), LINEAR_LIMIT as usize);
    }

    #[test]
    fn empty_histogram_yields_none() {
        let h = LogHistogram::new();
        assert!(h.is_empty());
        assert_eq!(h.quantile(0.5), None);
        assert_eq!(h.min(), None);
        assert_eq!(h.max(), None);
        assert_eq!(h.mean(), None);
    }

    #[test]
    fn quantile_extremes_are_exact() {
        let mut h = LogHistogram::new();
        h.record(17);
        h.record(1_000_003);
        assert_eq!(h.quantile(0.0), Some(17));
        assert_eq!(h.quantile(1.0), Some(1_000_003));
    }

    #[test]
    fn mean_is_exact() {
        let mut h = LogHistogram::new();
        h.record_n(100, 3);
        h.record_n(1000, 1);
        assert_eq!(h.mean(), Some(325.0));
        assert_eq!(h.sum(), 1300);
    }

    #[test]
    fn quantiles_have_bounded_relative_error() {
        let mut h = LogHistogram::new();
        for i in 0..100_000u64 {
            // A deterministic spread over several octaves.
            h.record(1 + i * 13 % 1_000_000);
        }
        let mut values: Vec<u64> = (0..100_000u64).map(|i| 1 + i * 13 % 1_000_000).collect();
        values.sort_unstable();
        for &q in &[0.01, 0.1, 0.5, 0.9, 0.99, 0.999] {
            let exact = values[((values.len() - 1) as f64 * q) as usize] as f64;
            let approx = h.quantile(q).unwrap() as f64;
            let rel = (approx - exact).abs() / exact.max(1.0);
            assert!(rel < 0.04, "q={q}: exact {exact} approx {approx} rel {rel}");
        }
    }

    #[test]
    fn merge_equals_combined_recording() {
        let mut a = LogHistogram::new();
        let mut b = LogHistogram::new();
        let mut combined = LogHistogram::new();
        for i in 0..1000u64 {
            let v = i * i % 77_777;
            if i % 2 == 0 {
                a.record(v);
            } else {
                b.record(v);
            }
            combined.record(v);
        }
        a.merge(&b);
        assert_eq!(a.count(), combined.count());
        assert_eq!(a.sum(), combined.sum());
        assert_eq!(a.min(), combined.min());
        assert_eq!(a.max(), combined.max());
        for &q in &[0.1, 0.5, 0.9] {
            assert_eq!(a.quantile(q), combined.quantile(q));
        }
    }

    #[test]
    fn record_n_zero_is_noop() {
        let mut h = LogHistogram::new();
        h.record_n(5, 0);
        assert!(h.is_empty());
    }

    #[test]
    fn cdf_points_are_monotone_and_end_at_one() {
        let mut h = LogHistogram::new();
        for v in [1u64, 10, 100, 1000, 10_000] {
            h.record_n(v, 10);
        }
        let cdf = h.cdf_points();
        assert!(cdf.windows(2).all(|w| w[0].0 < w[1].0 && w[0].1 < w[1].1));
        assert!((cdf.last().unwrap().1 - 1.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "quantile")]
    fn out_of_range_quantile_panics() {
        let mut h = LogHistogram::new();
        h.record(1);
        let _ = h.quantile(1.5);
    }

    #[test]
    fn handles_extreme_values() {
        let mut h = LogHistogram::new();
        h.record(0);
        h.record(u64::MAX);
        assert_eq!(h.count(), 2);
        assert_eq!(h.min(), Some(0));
        assert_eq!(h.max(), Some(u64::MAX));
        assert!(h.quantile(0.9).is_some());
    }

    proptest! {
        #[test]
        fn branchless_bucket_index_matches_reference(v: u64) {
            // Full-u64-range equivalence of the branchless kernel with
            // the branchy reference: the two must agree on every input,
            // not just in-distribution latencies.
            prop_assert_eq!(bucket_index(v), bucket_index_reference(v));
        }

        #[test]
        fn record_n_zero_preserves_extremes(v: u64, w: u64) {
            // The masked (branch-free) extreme update must treat n = 0 as
            // a strict no-op both on an empty histogram and after real
            // records.
            let mut h = LogHistogram::new();
            h.record_n(v, 0);
            prop_assert!(h.is_empty());
            prop_assert_eq!(h.min(), None);
            prop_assert_eq!(h.max(), None);
            h.record(w);
            h.record_n(v, 0);
            prop_assert_eq!(h.min(), Some(w));
            prop_assert_eq!(h.max(), Some(w));
            prop_assert_eq!(h.count(), 1);
        }

        #[test]
        fn merge_with_empty_is_identity_in_both_directions(
            values in proptest::collection::vec(any::<u64>(), 0..50),
        ) {
            // The guard-free merge relies on the empty histogram's fields
            // being fold identities; check both merge directions against
            // the untouched original, over full-range values.
            let mut h = LogHistogram::new();
            for &v in &values {
                h.record(v);
            }
            let mut merged = h.clone();
            merged.merge(&LogHistogram::default());
            prop_assert_eq!(merged.count(), h.count());
            prop_assert_eq!(merged.sum(), h.sum());
            prop_assert_eq!(merged.min(), h.min());
            prop_assert_eq!(merged.max(), h.max());
            prop_assert_eq!(merged.cdf_points(), h.cdf_points());
            let mut seeded = LogHistogram::new();
            seeded.merge(&h);
            prop_assert_eq!(seeded.count(), h.count());
            prop_assert_eq!(seeded.min(), h.min());
            prop_assert_eq!(seeded.max(), h.max());
            prop_assert_eq!(seeded.cdf_points(), h.cdf_points());
        }

        #[test]
        fn bucket_index_is_monotone_nondecreasing(a: u64, b: u64) {
            let (lo, hi) = if a <= b { (a, b) } else { (b, a) };
            prop_assert!(bucket_index(lo) <= bucket_index(hi));
        }

        #[test]
        fn bucket_midpoint_is_within_relative_error(v in 1u64..u64::MAX / 2) {
            let mid = bucket_midpoint(bucket_index(v));
            let rel = (mid as f64 - v as f64).abs() / v as f64;
            prop_assert!(rel <= 1.0 / 32.0 + 1e-9, "v={v} mid={mid} rel={rel}");
        }

        #[test]
        fn sharded_merge_is_bit_identical_to_single_pass(
            values in proptest::collection::vec(0u64..1_000_000_000, 1..200),
            shards in 1usize..8,
        ) {
            // The parallel fleet driver records per-shard histograms and
            // folds them in shard order; bucket counts are integers, so the
            // merged histogram must equal single-pass recording EXACTLY —
            // this is part of the determinism contract.
            let mut single = LogHistogram::new();
            for &v in &values {
                single.record(v);
            }
            let chunk = values.len().div_ceil(shards);
            let mut merged = LogHistogram::new();
            for part in values.chunks(chunk) {
                let mut local = LogHistogram::new();
                for &v in part {
                    local.record(v);
                }
                merged.merge(&local);
            }
            prop_assert_eq!(merged.count(), single.count());
            prop_assert_eq!(merged.sum(), single.sum());
            prop_assert_eq!(merged.min(), single.min());
            prop_assert_eq!(merged.max(), single.max());
            for q in [0.01, 0.25, 0.5, 0.75, 0.99] {
                prop_assert_eq!(merged.quantile(q), single.quantile(q));
            }
            prop_assert_eq!(merged.cdf_points(), single.cdf_points());
        }

        #[test]
        fn quantile_between_min_and_max(values in proptest::collection::vec(0u64..1_000_000_000, 1..100), q in 0.0f64..=1.0) {
            let mut h = LogHistogram::new();
            for &v in &values {
                h.record(v);
            }
            let got = h.quantile(q).unwrap();
            prop_assert!(got >= h.min().unwrap());
            prop_assert!(got <= h.max().unwrap());
        }
    }
}
