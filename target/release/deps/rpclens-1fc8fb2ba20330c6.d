/root/repo/target/release/deps/rpclens-1fc8fb2ba20330c6.d: src/lib.rs

/root/repo/target/release/deps/rpclens-1fc8fb2ba20330c6: src/lib.rs

src/lib.rs:
