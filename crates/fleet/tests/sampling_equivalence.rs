//! Trace sampling must be a pure *retention* decision.
//!
//! The paper's aggregate statistics (popularity, cycle accounting, error
//! rates, wire congestion) are computed over every simulated span, while
//! the trace store holds only the head-sampled subset. Raising
//! `trace_sample_rate` therefore may change what is *kept*, never what is
//! *simulated*: every aggregate counter must be bit-identical to a
//! rate-1 run, and the stored traces must be exactly the sampled subset
//! of the rate-1 store.

use rpclens_fleet::driver::{run_fleet, FleetConfig, FleetRun, SimScale};
use rpclens_simcore::time::SimDuration;
use rpclens_trace::collector::TraceCollector;

fn run_at_rate(rate: u64) -> FleetRun {
    let scale = SimScale {
        name: "sampling-equivalence",
        total_methods: 320,
        roots: 4_000,
        duration: SimDuration::from_hours(24),
        trace_sample_rate: rate,
        profiler_sample_cap: 10_000,
        seed: 11,
    };
    run_fleet(FleetConfig::at_scale(scale))
}

#[test]
fn sampling_rate_changes_retention_only() {
    let baseline = run_at_rate(1);
    assert_eq!(
        baseline.store.len() as u64,
        baseline.telemetry.counters.traces_sampled,
        "rate 1 keeps every trace"
    );

    for rate in [2, 3, 7] {
        let sampled = run_at_rate(rate);

        // Every aggregate derived from simulation is identical.
        assert_eq!(sampled.total_spans, baseline.total_spans, "rate {rate}");
        assert_eq!(sampled.method_calls, baseline.method_calls, "rate {rate}");
        assert_eq!(sampled.method_bytes, baseline.method_bytes, "rate {rate}");
        assert_eq!(
            sampled.errors.total_rpcs(),
            baseline.errors.total_rpcs(),
            "rate {rate}"
        );
        assert_eq!(
            sampled.errors.kinds_by_count(),
            baseline.errors.kinds_by_count(),
            "rate {rate}"
        );
        assert_eq!(
            sampled.profiler.total_cycles(),
            baseline.profiler.total_cycles(),
            "rate {rate}"
        );

        // Self-telemetry counters match except the retention counter.
        let (a, b) = (&sampled.telemetry.counters, &baseline.telemetry.counters);
        assert_eq!(a.roots, b.roots, "rate {rate}");
        assert_eq!(a.spans, b.spans, "rate {rate}");
        assert_eq!(a.errors_injected, b.errors_injected, "rate {rate}");
        assert_eq!(a.hedges_issued, b.hedges_issued, "rate {rate}");
        assert_eq!(a.max_depth, b.max_depth, "rate {rate}");
        assert_eq!(a.queue, b.queue, "rate {rate}");
        assert_eq!(a.wire, b.wire, "rate {rate}");
        assert_eq!(
            a.root_latency_us.count(),
            b.root_latency_us.count(),
            "rate {rate}"
        );
        assert!(
            a.traces_sampled < b.traces_sampled,
            "rate {rate} must retain fewer traces ({} vs {})",
            a.traces_sampled,
            b.traces_sampled
        );

        // The store holds exactly the sampled subset of the rate-1 store,
        // span for span: shards fold in root-sequence order, so trace i of
        // the baseline store is root i, and the collector's decision is a
        // pure function of that sequence number.
        let collector = TraceCollector::new(rate);
        let expected: Vec<_> = baseline
            .store
            .traces()
            .iter()
            .enumerate()
            .filter(|(seq, _)| collector.should_sample(*seq as u64))
            .map(|(_, t)| t)
            .collect();
        assert_eq!(sampled.store.len(), expected.len(), "rate {rate}");
        for (got, want) in sampled.store.traces().iter().zip(expected) {
            assert_eq!(got.spans, want.spans, "rate {rate}");
        }
    }
}
