//! Fig. 12: per-method network-wire + RPC-processing/stack latency.
//!
//! Paper anchors: P99 network latency is ≤ 115 ms for the fastest half of
//! methods; the fastest 1% / 10% of methods have P99s of 6 / 19 ms; the
//! slowest 10% exceed 271 ms and the slowest 1% exceed 826 ms —
//! significantly above the ~200 ms max WAN RTT, implicating stack and
//! congestion, not just distance.

use crate::check::ExpectationSet;
use crate::common::{component_sum_secs, paper_query, MethodHeatmap};
use crate::render::{fmt_secs, sketch_cdf, TextTable};
use rpclens_fleet::driver::FleetRun;
use rpclens_rpcstack::component::LatencyComponent;

/// Components included in this figure: wire + processing, both ways.
pub const WIRE_AND_STACK: [LatencyComponent; 4] = [
    LatencyComponent::RequestNetworkWire,
    LatencyComponent::ResponseNetworkWire,
    LatencyComponent::RequestProcessing,
    LatencyComponent::ResponseProcessing,
];

/// The computed figure.
#[derive(Debug)]
pub struct Fig12 {
    /// Per-method wire+stack latency quantiles, sorted by median.
    pub heatmap: MethodHeatmap,
}

/// Computes the figure.
pub fn compute(run: &FleetRun) -> Fig12 {
    let query = paper_query();
    Fig12 {
        heatmap: MethodHeatmap::build(run, &query, |_, s| component_sum_secs(s, &WIRE_AND_STACK)),
    }
}

/// Renders the figure.
pub fn render(fig: &Fig12) -> String {
    let hm = &fig.heatmap;
    let mut t = TextTable::new(&["method#", "P50", "P90", "P99"]);
    let step = (hm.len() / 15).max(1);
    for (i, row) in hm.rows.iter().enumerate().step_by(step) {
        t.row(vec![
            i.to_string(),
            fmt_secs(row.summary.p50),
            fmt_secs(row.summary.p90),
            fmt_secs(row.summary.p99),
        ]);
    }
    format!(
        "Fig. 12 — Per-method network wire + RPC/stack latency ({} methods)\n{}\nCDF of per-method P99:\n{}",
        hm.len(),
        t.render(),
        sketch_cdf(&hm.across_methods(0.99), fmt_secs),
    )
}

/// Paper-vs-measured checks.
pub fn checks(fig: &Fig12) -> ExpectationSet {
    let hm = &fig.heatmap;
    let mut s = ExpectationSet::new();
    s.add(
        "fig12.fast_half_p99",
        "P99 <= 115 ms for the fastest half of methods",
        hm.quantile_of_quantiles(0.99, 0.5).unwrap_or(f64::NAN),
        0.0,
        0.115,
    );
    s.add(
        "fig12.fastest_decile_p99",
        "fastest 10% of methods have P99 around 19 ms",
        hm.quantile_of_quantiles(0.99, 0.1).unwrap_or(f64::NAN),
        0.0,
        0.05,
    );
    s.add(
        "fig12.slowest_decile_p99",
        "slowest 10% of methods have P99 >= 271 ms (we accept >= 20 ms)",
        hm.quantile_of_quantiles(0.99, 0.9).unwrap_or(f64::NAN),
        0.02,
        f64::INFINITY,
    );
    // Medians are microseconds for same-cluster traffic.
    s.add(
        "fig12.median_sub_ms",
        "median wire+stack stays sub-millisecond for most methods",
        hm.fraction_where(0.5, |v| v < 2e-3),
        0.5,
        1.0,
    );
    s
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::common::testrun::shared;

    #[test]
    fn checks_pass_on_test_run() {
        let fig = compute(shared());
        let c = checks(&fig);
        assert!(c.all_passed(), "{c}");
    }

    #[test]
    fn wire_stack_is_below_total_latency() {
        let run = shared();
        let query = paper_query();
        let totals = MethodHeatmap::build(run, &query, |_, s| s.total_latency().as_secs_f64());
        let fig = compute(run);
        // Spot-check: for matching methods, the wire+stack median never
        // exceeds the total median.
        for row in fig.heatmap.rows.iter().take(50) {
            if let Some(t) = totals.rows.iter().find(|r| r.method == row.method) {
                assert!(row.summary.p50 <= t.summary.p50 + 1e-9);
            }
        }
    }
}
