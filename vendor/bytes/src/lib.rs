//! Offline stand-in for the `bytes` crate.
//!
//! Implements the subset of the `bytes` API the rpclens workspace uses
//! (`Bytes`, `BytesMut`, and the `Buf`/`BufMut` traits) on top of plain
//! `Vec<u8>`. Semantics match the real crate for this subset: big-endian
//! integer accessors, `freeze`, slicing via `Deref`, and cursor-style
//! reads on `&[u8]`. Zero-copy reference counting is intentionally not
//! reproduced — `Bytes` here owns its storage.

use std::ops::{Deref, Index};

/// An immutable byte buffer (owning, Vec-backed).
#[derive(Debug, Clone, Default, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Bytes {
    data: Vec<u8>,
}

impl Bytes {
    /// Creates an empty buffer.
    pub fn new() -> Self {
        Bytes { data: Vec::new() }
    }

    /// Copies a slice into a new buffer.
    pub fn copy_from_slice(data: &[u8]) -> Self {
        Bytes {
            data: data.to_vec(),
        }
    }

    /// Length in bytes.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Whether the buffer is empty.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Returns a sub-range copy.
    pub fn slice(&self, range: std::ops::Range<usize>) -> Bytes {
        Bytes {
            data: self.data[range].to_vec(),
        }
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(data: Vec<u8>) -> Self {
        Bytes { data }
    }
}

impl From<&[u8]> for Bytes {
    fn from(data: &[u8]) -> Self {
        Bytes::copy_from_slice(data)
    }
}

impl From<&str> for Bytes {
    fn from(data: &str) -> Self {
        Bytes::copy_from_slice(data.as_bytes())
    }
}

impl Deref for Bytes {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.data
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        &self.data
    }
}

impl IntoIterator for Bytes {
    type Item = u8;
    type IntoIter = std::vec::IntoIter<u8>;
    fn into_iter(self) -> Self::IntoIter {
        self.data.into_iter()
    }
}

/// A mutable, growable byte buffer.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct BytesMut {
    data: Vec<u8>,
}

impl BytesMut {
    /// Creates an empty buffer.
    pub fn new() -> Self {
        BytesMut { data: Vec::new() }
    }

    /// Creates an empty buffer with reserved capacity.
    pub fn with_capacity(cap: usize) -> Self {
        BytesMut {
            data: Vec::with_capacity(cap),
        }
    }

    /// Length in bytes.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Whether the buffer is empty.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Reserves additional capacity.
    pub fn reserve(&mut self, additional: usize) {
        self.data.reserve(additional);
    }

    /// Appends a slice.
    pub fn extend_from_slice(&mut self, s: &[u8]) {
        self.data.extend_from_slice(s);
    }

    /// Converts into an immutable [`Bytes`].
    pub fn freeze(self) -> Bytes {
        Bytes { data: self.data }
    }
}

impl Deref for BytesMut {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.data
    }
}

impl AsRef<[u8]> for BytesMut {
    fn as_ref(&self) -> &[u8] {
        &self.data
    }
}

impl Index<std::ops::RangeFull> for BytesMut {
    type Output = [u8];
    fn index(&self, _: std::ops::RangeFull) -> &[u8] {
        &self.data
    }
}

/// Cursor-style big-endian reads over a byte source.
pub trait Buf {
    /// Bytes remaining to read.
    fn remaining(&self) -> usize;
    /// The current unread slice.
    fn chunk(&self) -> &[u8];
    /// Skips `cnt` bytes.
    fn advance(&mut self, cnt: usize);

    /// Whether any bytes remain.
    fn has_remaining(&self) -> bool {
        self.remaining() > 0
    }

    /// Reads one byte.
    fn get_u8(&mut self) -> u8 {
        let v = self.chunk()[0];
        self.advance(1);
        v
    }

    /// Reads a big-endian `u16`.
    fn get_u16(&mut self) -> u16 {
        let mut b = [0u8; 2];
        self.copy_to_slice(&mut b);
        u16::from_be_bytes(b)
    }

    /// Reads a big-endian `u32`.
    fn get_u32(&mut self) -> u32 {
        let mut b = [0u8; 4];
        self.copy_to_slice(&mut b);
        u32::from_be_bytes(b)
    }

    /// Reads a big-endian `u64`.
    fn get_u64(&mut self) -> u64 {
        let mut b = [0u8; 8];
        self.copy_to_slice(&mut b);
        u64::from_be_bytes(b)
    }

    /// Copies bytes into `dst`, advancing past them.
    fn copy_to_slice(&mut self, dst: &mut [u8]) {
        assert!(self.remaining() >= dst.len(), "buffer underflow");
        dst.copy_from_slice(&self.chunk()[..dst.len()]);
        self.advance(dst.len());
    }
}

impl Buf for &[u8] {
    fn remaining(&self) -> usize {
        self.len()
    }

    fn chunk(&self) -> &[u8] {
        self
    }

    fn advance(&mut self, cnt: usize) {
        assert!(cnt <= self.len(), "advance past end");
        *self = &self[cnt..];
    }
}

impl Buf for Bytes {
    fn remaining(&self) -> usize {
        self.data.len()
    }

    fn chunk(&self) -> &[u8] {
        &self.data
    }

    fn advance(&mut self, cnt: usize) {
        assert!(cnt <= self.data.len(), "advance past end");
        self.data.drain(..cnt);
    }
}

/// Big-endian appends to a growable byte sink.
pub trait BufMut {
    /// Appends a slice.
    fn put_slice(&mut self, s: &[u8]);

    /// Appends one byte.
    fn put_u8(&mut self, v: u8) {
        self.put_slice(&[v]);
    }

    /// Appends a big-endian `u16`.
    fn put_u16(&mut self, v: u16) {
        self.put_slice(&v.to_be_bytes());
    }

    /// Appends a big-endian `u32`.
    fn put_u32(&mut self, v: u32) {
        self.put_slice(&v.to_be_bytes());
    }

    /// Appends a big-endian `u64`.
    fn put_u64(&mut self, v: u64) {
        self.put_slice(&v.to_be_bytes());
    }
}

impl BufMut for BytesMut {
    fn put_slice(&mut self, s: &[u8]) {
        self.data.extend_from_slice(s);
    }
}

impl BufMut for Vec<u8> {
    fn put_slice(&mut self, s: &[u8]) {
        self.extend_from_slice(s);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_ints_big_endian() {
        let mut buf = BytesMut::new();
        buf.put_u8(7);
        buf.put_u16(0x0102);
        buf.put_u32(0xDEADBEEF);
        buf.put_u64(0x0123_4567_89AB_CDEF);
        let frozen = buf.freeze();
        let mut slice: &[u8] = &frozen;
        assert_eq!(slice.get_u8(), 7);
        assert_eq!(slice.get_u16(), 0x0102);
        assert_eq!(slice.get_u32(), 0xDEADBEEF);
        assert_eq!(slice.get_u64(), 0x0123_4567_89AB_CDEF);
        assert_eq!(slice.remaining(), 0);
    }

    #[test]
    fn advance_and_copy() {
        let b = Bytes::copy_from_slice(&[1, 2, 3, 4, 5]);
        let mut s: &[u8] = &b;
        s.advance(2);
        let mut out = [0u8; 2];
        s.copy_to_slice(&mut out);
        assert_eq!(out, [3, 4]);
        assert_eq!(s.remaining(), 1);
    }
}
