//! The time-series store.
//!
//! Each `(metric, labels)` pair owns one [`Series`] of timestamped points.
//! Writes are aligned down to the metric's sampling window and retention
//! is enforced lazily at write time, the way a streaming monitoring
//! database ages out old data.

use crate::metric::{Labels, MetricDescriptor, MetricKind, MetricValue};
use rpclens_simcore::time::{SimDuration, SimTime};
use std::collections::HashMap;

/// One time series: aligned, time-ordered points.
#[derive(Debug, Clone, Default)]
pub struct Series {
    points: Vec<(SimTime, MetricValue)>,
}

impl Series {
    /// Builds a series from an already time-ordered point vector.
    ///
    /// This is the wholesale counterpart to streaming points in one at a
    /// time: the fleet driver's streaming window sink accumulates each
    /// cumulative series as a plain `Vec` while shards run, then hands
    /// the finished vector over without re-pushing every point.
    ///
    /// # Panics
    ///
    /// Panics (debug) if the points are not strictly ascending in time.
    pub fn from_points(points: Vec<(SimTime, MetricValue)>) -> Self {
        debug_assert!(
            points.windows(2).all(|p| p[0].0 < p[1].0),
            "points must be strictly ascending in time"
        );
        Series { points }
    }

    /// The points, oldest first.
    pub fn points(&self) -> &[(SimTime, MetricValue)] {
        &self.points
    }

    /// Number of points.
    pub fn len(&self) -> usize {
        self.points.len()
    }

    /// Whether the series has no points.
    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }

    /// The most recent point.
    pub fn latest(&self) -> Option<&(SimTime, MetricValue)> {
        self.points.last()
    }

    fn push(&mut self, at: SimTime, value: MetricValue) {
        // Overwrite if the window already has a point (last write wins).
        if let Some(last) = self.points.last_mut() {
            if last.0 == at {
                last.1 = value;
                return;
            }
        }
        debug_assert!(
            self.points.last().map(|(t, _)| *t < at).unwrap_or(true),
            "points must be written in time order"
        );
        self.points.push((at, value));
    }

    fn enforce_retention(&mut self, now: SimTime, retention: SimDuration) {
        let cutoff_ns = now.as_nanos().saturating_sub(retention.as_nanos());
        let cutoff = SimTime::from_nanos(cutoff_ns);
        let keep_from = self.points.partition_point(|(t, _)| *t < cutoff);
        if keep_from > 0 {
            self.points.drain(..keep_from);
        }
    }
}

/// The database: registered metrics and their series.
#[derive(Debug, Default)]
pub struct TimeSeriesDb {
    metrics: HashMap<String, MetricDescriptor>,
    series: HashMap<(String, Labels), Series>,
    sample_period: SimDuration,
}

impl TimeSeriesDb {
    /// Creates a database sampling on the given period.
    ///
    /// # Panics
    ///
    /// Panics if the period is zero.
    pub fn new(sample_period: SimDuration) -> Self {
        assert!(
            sample_period.as_nanos() > 0,
            "sample period must be positive"
        );
        TimeSeriesDb {
            metrics: HashMap::new(),
            series: HashMap::new(),
            sample_period,
        }
    }

    /// The sampling period.
    pub fn sample_period(&self) -> SimDuration {
        self.sample_period
    }

    /// Registers a metric. Re-registering with identical descriptor is a
    /// no-op.
    ///
    /// # Errors
    ///
    /// Returns an error if the name is already registered with a
    /// different kind or retention.
    pub fn register(&mut self, desc: MetricDescriptor) -> Result<(), String> {
        if let Some(existing) = self.metrics.get(&desc.name) {
            if existing != &desc {
                return Err(format!(
                    "metric {} already registered differently",
                    desc.name
                ));
            }
            return Ok(());
        }
        self.metrics.insert(desc.name.clone(), desc);
        Ok(())
    }

    /// The descriptor of a metric, if registered.
    pub fn descriptor(&self, name: &str) -> Option<&MetricDescriptor> {
        self.metrics.get(name)
    }

    /// Writes one sample, aligning `at` down to the sampling window and
    /// enforcing retention.
    ///
    /// # Errors
    ///
    /// Returns an error if the metric is unregistered or the value kind
    /// does not match the descriptor.
    pub fn write(
        &mut self,
        name: &str,
        labels: Labels,
        at: SimTime,
        value: MetricValue,
    ) -> Result<(), String> {
        let desc = self
            .metrics
            .get(name)
            .ok_or_else(|| format!("metric {name} not registered"))?;
        if desc.kind != value.kind() {
            return Err(format!(
                "metric {name} is {:?}, got {:?}",
                desc.kind,
                value.kind()
            ));
        }
        let aligned = at.align_down(self.sample_period);
        let retention = desc.retention;
        let series = self.series.entry((name.to_string(), labels)).or_default();
        series.push(aligned, value);
        series.enforce_retention(aligned, retention);
        Ok(())
    }

    /// Streams one cumulative counter series from per-window deltas.
    ///
    /// The driver's end-of-run flush writes its window grids as
    /// cumulative counters (the Monarch idiom `QueryEngine::rate`
    /// expects): point *k* carries the running sum of all deltas up to
    /// and including window *k*. Going through [`TimeSeriesDb::write`]
    /// costs a metric lookup and a label clone per point; this helper
    /// resolves the series once and streams every `(window_index,
    /// delta)` pair into it. Point times are `window_index *
    /// sample_period` — aligned by construction — and the pairs must
    /// arrive in ascending window order, which an index scan over a
    /// dense delta grid produces naturally. Pairs with a zero delta
    /// still emit a point (callers that want skip-zero semantics filter
    /// before streaming). An empty iterator writes nothing and does not
    /// create the series.
    ///
    /// # Errors
    ///
    /// Returns an error if the metric is unregistered or is not a
    /// counter.
    pub fn write_cumulative(
        &mut self,
        name: &str,
        labels: Labels,
        windows: impl IntoIterator<Item = (usize, u64)>,
    ) -> Result<(), String> {
        let desc = self
            .metrics
            .get(name)
            .ok_or_else(|| format!("metric {name} not registered"))?;
        if desc.kind != MetricKind::Counter {
            return Err(format!(
                "metric {name} is {:?}, cumulative writes need a counter",
                desc.kind
            ));
        }
        let retention = desc.retention;
        let period_ns = self.sample_period.as_nanos();
        let mut windows = windows.into_iter();
        let Some(first) = windows.next() else {
            return Ok(());
        };
        let series = self.series.entry((name.to_string(), labels)).or_default();
        let mut cum = 0u64;
        let mut last = SimTime::ZERO;
        for (w, delta) in std::iter::once(first).chain(windows) {
            cum += delta;
            last = SimTime::from_nanos(w as u64 * period_ns);
            series.push(last, MetricValue::Counter(cum));
        }
        // Retention once at the newest point: for a monotone time
        // sequence this drains exactly what per-point enforcement would.
        series.enforce_retention(last, retention);
        Ok(())
    }

    /// Installs a fully built series under `(name, labels)`.
    ///
    /// The streaming flush path builds each cumulative series' point
    /// vector incrementally while shards run, then installs the finished
    /// vector here — one map insertion per series instead of per-point
    /// entry lookups. Retention is enforced once at the newest point,
    /// which for a monotone time sequence drains exactly what per-point
    /// enforcement would (the [`TimeSeriesDb::write_cumulative`] rule).
    /// Installing an empty series is a no-op and does not create the
    /// series, matching `write_cumulative` on an empty iterator.
    ///
    /// # Errors
    ///
    /// Returns an error if the metric is unregistered, any point's kind
    /// does not match the descriptor, or the series already exists —
    /// installation is whole-series replacement-free by design; merging
    /// belongs to [`TimeSeriesDb::merge`].
    pub fn install_series(
        &mut self,
        name: &str,
        labels: Labels,
        mut series: Series,
    ) -> Result<(), String> {
        let desc = self
            .metrics
            .get(name)
            .ok_or_else(|| format!("metric {name} not registered"))?;
        if let Some((_, v)) = series.points.iter().find(|(_, v)| v.kind() != desc.kind) {
            return Err(format!(
                "metric {name} is {:?}, got {:?}",
                desc.kind,
                v.kind()
            ));
        }
        let Some(&(newest, _)) = series.points.last() else {
            return Ok(());
        };
        series.enforce_retention(newest, desc.retention);
        let key = (name.to_string(), labels);
        if self.series.contains_key(&key) {
            return Err(format!("series {name}{} already exists", key.1));
        }
        self.series.insert(key, series);
        Ok(())
    }

    /// Reads one series.
    pub fn series(&self, name: &str, labels: &Labels) -> Option<&Series> {
        self.series.get(&(name.to_string(), labels.clone()))
    }

    /// Iterates all `(labels, series)` of one metric.
    pub fn series_of<'a>(
        &'a self,
        name: &str,
    ) -> impl Iterator<Item = (&'a Labels, &'a Series)> + 'a {
        let name = name.to_string();
        self.series
            .iter()
            .filter(move |((n, _), _)| *n == name)
            .map(|((_, l), s)| (l, s))
    }

    /// Number of live series.
    pub fn num_series(&self) -> usize {
        self.series.len()
    }

    /// Merges another database into this one (the shard-fold operation).
    ///
    /// Metric registrations are unioned; registering the same name with a
    /// different descriptor is an error, as in [`TimeSeriesDb::register`].
    /// Series with the same `(metric, labels)` key have their points
    /// merge-sorted by timestamp. Where both sides hold a point in the
    /// same window, the values combine by kind:
    ///
    /// - **Counter**: summed — each shard observed a disjoint share of
    ///   the events, so cumulative readings add;
    /// - **Distribution**: histogram-merged, which is exact;
    /// - **Gauge**: `other`'s value wins (last-write-wins, matching the
    ///   single-db overwrite rule). Shard-partitioned gauge writes should
    ///   be disjoint or identical across shards; the fleet driver instead
    ///   computes gauges post-merge from merged exact state.
    ///
    /// # Errors
    ///
    /// Returns an error on conflicting metric registration or on sample
    /// period mismatch; `self` is left unchanged in that case.
    pub fn merge(&mut self, other: TimeSeriesDb) -> Result<(), String> {
        if self.sample_period != other.sample_period {
            return Err(format!(
                "sample period mismatch: {} vs {}",
                self.sample_period, other.sample_period
            ));
        }
        for desc in other.metrics.values() {
            if let Some(existing) = self.metrics.get(&desc.name) {
                if existing != desc {
                    return Err(format!(
                        "metric {} already registered differently",
                        desc.name
                    ));
                }
            }
        }
        for desc in other.metrics.into_values() {
            self.metrics.entry(desc.name.clone()).or_insert(desc);
        }
        for (key, incoming) in other.series {
            match self.series.entry(key) {
                std::collections::hash_map::Entry::Vacant(slot) => {
                    slot.insert(incoming);
                }
                std::collections::hash_map::Entry::Occupied(mut slot) => {
                    let existing = std::mem::take(slot.get_mut());
                    slot.get_mut().points = merge_points(existing.points, incoming.points);
                }
            }
        }
        Ok(())
    }

    /// Downsamples a series' gauge values to a coarser window by
    /// averaging; counters take the last value of each window.
    ///
    /// # Panics
    ///
    /// Panics if `window` is smaller than the sampling period.
    pub fn downsample(&self, series: &Series, window: SimDuration) -> Vec<(SimTime, f64)> {
        assert!(
            window.as_nanos() >= self.sample_period.as_nanos(),
            "downsample window smaller than sample period"
        );
        let mut out: Vec<(SimTime, f64)> = Vec::new();
        let mut bucket_start: Option<SimTime> = None;
        let mut acc = 0.0;
        let mut n = 0u64;
        let mut last_counter = 0.0;
        for (t, v) in series.points() {
            let aligned = t.align_down(window);
            if bucket_start != Some(aligned) {
                if let Some(b) = bucket_start {
                    out.push((b, if n > 0 { acc / n as f64 } else { last_counter }));
                }
                bucket_start = Some(aligned);
                acc = 0.0;
                n = 0;
            }
            match v {
                MetricValue::Gauge(g) => {
                    acc += g;
                    n += 1;
                }
                MetricValue::Counter(c) => {
                    last_counter = *c as f64;
                }
                MetricValue::Distribution(h) => {
                    if let Some(m) = h.mean() {
                        acc += m;
                        n += 1;
                    }
                }
            }
        }
        if let Some(b) = bucket_start {
            out.push((b, if n > 0 { acc / n as f64 } else { last_counter }));
        }
        out
    }
}

/// Merge-sorts two time-ordered point vectors, combining same-window
/// values by kind (counters sum, distributions merge, gauges take `b`).
fn merge_points(
    a: Vec<(SimTime, MetricValue)>,
    b: Vec<(SimTime, MetricValue)>,
) -> Vec<(SimTime, MetricValue)> {
    let mut out = Vec::with_capacity(a.len() + b.len());
    let mut ai = a.into_iter().peekable();
    let mut bi = b.into_iter().peekable();
    while let (Some((ta, _)), Some((tb, _))) = (ai.peek(), bi.peek()) {
        match ta.cmp(tb) {
            std::cmp::Ordering::Less => out.push(ai.next().expect("peeked")),
            std::cmp::Ordering::Greater => out.push(bi.next().expect("peeked")),
            std::cmp::Ordering::Equal => {
                let (t, va) = ai.next().expect("peeked");
                let (_, vb) = bi.next().expect("peeked");
                let combined = match (va, vb) {
                    (MetricValue::Counter(x), MetricValue::Counter(y)) => {
                        MetricValue::Counter(x + y)
                    }
                    (MetricValue::Distribution(mut h), MetricValue::Distribution(g)) => {
                        h.merge(&g);
                        MetricValue::Distribution(h)
                    }
                    // Gauges (and any kind mismatch, which registration
                    // rules already exclude): last write wins.
                    (_, vb) => vb,
                };
                out.push((t, combined));
            }
        }
    }
    out.extend(ai);
    out.extend(bi);
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use rpclens_simcore::hist::LogHistogram;

    fn db() -> TimeSeriesDb {
        TimeSeriesDb::new(SimDuration::from_mins(30))
    }

    fn mins(m: u64) -> SimTime {
        SimTime::ZERO + SimDuration::from_mins(m)
    }

    #[test]
    fn register_then_write_and_read() {
        let mut d = db();
        d.register(MetricDescriptor::gauge("cpu", SimDuration::from_hours(24)))
            .unwrap();
        d.write("cpu", Labels::empty(), mins(31), MetricValue::Gauge(0.5))
            .unwrap();
        let s = d.series("cpu", &Labels::empty()).unwrap();
        assert_eq!(s.len(), 1);
        // Aligned down to the 30-minute boundary.
        assert_eq!(s.points()[0].0, mins(30));
        assert_eq!(s.latest().unwrap().1.as_gauge(), Some(0.5));
    }

    #[test]
    fn write_cumulative_matches_per_point_writes() {
        // The streaming flush must produce byte-identical series to the
        // write-per-point loop it replaced in the driver.
        let deltas: Vec<u64> = vec![3, 0, 7, 0, 0, 11, 2];
        let retention = SimDuration::from_hours(24);
        let mut streamed = db();
        streamed
            .register(MetricDescriptor::counter("c", retention))
            .unwrap();
        streamed
            .write_cumulative(
                "c",
                Labels::empty(),
                deltas.iter().enumerate().map(|(w, &d)| (w, d)),
            )
            .unwrap();
        let mut looped = db();
        looped
            .register(MetricDescriptor::counter("c", retention))
            .unwrap();
        let mut cum = 0u64;
        for (w, &d) in deltas.iter().enumerate() {
            cum += d;
            let at = SimTime::from_nanos(w as u64 * SimDuration::from_mins(30).as_nanos());
            looped
                .write("c", Labels::empty(), at, MetricValue::Counter(cum))
                .unwrap();
        }
        let a = streamed.series("c", &Labels::empty()).unwrap();
        let b = looped.series("c", &Labels::empty()).unwrap();
        assert_eq!(a.len(), b.len());
        for (pa, pb) in a.points().iter().zip(b.points()) {
            assert_eq!(pa.0, pb.0);
            assert_eq!(pa.1.as_counter(), pb.1.as_counter());
        }
        // Every listed window emitted a point, including zero deltas.
        assert_eq!(a.len(), deltas.len());
        assert_eq!(a.latest().unwrap().1.as_counter(), Some(23));
    }

    #[test]
    fn write_cumulative_skip_zero_filter_and_empty_iterator() {
        let mut d = db();
        d.register(MetricDescriptor::counter("c", SimDuration::from_hours(24)))
            .unwrap();
        // Skip-zero semantics live in the caller's filter.
        let deltas: Vec<u64> = vec![0, 5, 0, 2];
        d.write_cumulative(
            "c",
            Labels::empty(),
            deltas
                .iter()
                .enumerate()
                .filter(|(_, &d)| d != 0)
                .map(|(w, &d)| (w, d)),
        )
        .unwrap();
        let s = d.series("c", &Labels::empty()).unwrap();
        assert_eq!(s.len(), 2);
        assert_eq!(s.points()[0].0, mins(30));
        assert_eq!(s.points()[0].1.as_counter(), Some(5));
        assert_eq!(s.points()[1].0, mins(90));
        assert_eq!(s.points()[1].1.as_counter(), Some(7));
        // An empty stream writes nothing and creates no series.
        d.write_cumulative(
            "c",
            Labels::from_pairs([("svc", "idle")]),
            std::iter::empty(),
        )
        .unwrap();
        assert!(d
            .series("c", &Labels::from_pairs([("svc", "idle")]))
            .is_none());
    }

    #[test]
    fn write_cumulative_rejects_gauges_and_unregistered() {
        let mut d = db();
        assert!(d
            .write_cumulative("nope", Labels::empty(), [(0usize, 1u64)])
            .is_err());
        d.register(MetricDescriptor::gauge("g", SimDuration::from_hours(1)))
            .unwrap();
        assert!(d
            .write_cumulative("g", Labels::empty(), [(0usize, 1u64)])
            .is_err());
    }

    #[test]
    fn install_series_matches_write_cumulative() {
        let retention = SimDuration::from_hours(24);
        let deltas: Vec<u64> = vec![3, 0, 7, 11];
        let period_ns = SimDuration::from_mins(30).as_nanos();
        let mut streamed = db();
        streamed
            .register(MetricDescriptor::counter("c", retention))
            .unwrap();
        streamed
            .write_cumulative(
                "c",
                Labels::empty(),
                deltas.iter().enumerate().map(|(w, &d)| (w, d)),
            )
            .unwrap();
        let mut installed = db();
        installed
            .register(MetricDescriptor::counter("c", retention))
            .unwrap();
        let mut cum = 0;
        let points: Vec<(SimTime, MetricValue)> = deltas
            .iter()
            .enumerate()
            .map(|(w, &d)| {
                cum += d;
                (
                    SimTime::from_nanos(w as u64 * period_ns),
                    MetricValue::Counter(cum),
                )
            })
            .collect();
        installed
            .install_series("c", Labels::empty(), Series::from_points(points))
            .unwrap();
        let a = streamed.series("c", &Labels::empty()).unwrap();
        let b = installed.series("c", &Labels::empty()).unwrap();
        assert_eq!(a.len(), b.len());
        for (pa, pb) in a.points().iter().zip(b.points()) {
            assert_eq!(pa.0, pb.0);
            assert_eq!(pa.1.as_counter(), pb.1.as_counter());
        }
    }

    #[test]
    fn install_series_enforces_retention_and_rejects_misuse() {
        let mut d = db();
        d.register(MetricDescriptor::counter("c", SimDuration::from_hours(2)))
            .unwrap();
        // Unregistered metric and kind mismatch both fail.
        assert!(d
            .install_series(
                "nope",
                Labels::empty(),
                Series::from_points(vec![(mins(0), MetricValue::Counter(1))]),
            )
            .is_err());
        assert!(d
            .install_series(
                "c",
                Labels::empty(),
                Series::from_points(vec![(mins(0), MetricValue::Gauge(1.0))]),
            )
            .is_err());
        // Empty install is a no-op that creates nothing.
        d.install_series("c", Labels::empty(), Series::default())
            .unwrap();
        assert!(d.series("c", &Labels::empty()).is_none());
        // Retention is enforced at the newest point: with 2h retention
        // and points every 30 minutes out to t=270min, points before
        // t=150min are dropped.
        let points: Vec<(SimTime, MetricValue)> = (0..10u64)
            .map(|i| (mins(i * 30), MetricValue::Counter(i + 1)))
            .collect();
        d.install_series("c", Labels::empty(), Series::from_points(points.clone()))
            .unwrap();
        let s = d.series("c", &Labels::empty()).unwrap();
        assert!(s.points().iter().all(|(t, _)| *t >= mins(150)));
        assert_eq!(s.len(), 5);
        // Installing over an existing series is rejected.
        assert!(d
            .install_series("c", Labels::empty(), Series::from_points(points))
            .is_err());
    }

    #[test]
    fn unregistered_or_mismatched_writes_fail() {
        let mut d = db();
        assert!(d
            .write("nope", Labels::empty(), mins(0), MetricValue::Gauge(1.0))
            .is_err());
        d.register(MetricDescriptor::counter("c", SimDuration::from_hours(1)))
            .unwrap();
        assert!(d
            .write("c", Labels::empty(), mins(0), MetricValue::Gauge(1.0))
            .is_err());
        assert!(d
            .write("c", Labels::empty(), mins(0), MetricValue::Counter(1))
            .is_ok());
    }

    #[test]
    fn conflicting_registration_fails() {
        let mut d = db();
        d.register(MetricDescriptor::gauge("m", SimDuration::from_hours(1)))
            .unwrap();
        assert!(d
            .register(MetricDescriptor::gauge("m", SimDuration::from_hours(1)))
            .is_ok());
        assert!(d
            .register(MetricDescriptor::counter("m", SimDuration::from_hours(1)))
            .is_err());
    }

    #[test]
    fn same_window_write_overwrites() {
        let mut d = db();
        d.register(MetricDescriptor::gauge("g", SimDuration::from_hours(1)))
            .unwrap();
        d.write("g", Labels::empty(), mins(5), MetricValue::Gauge(1.0))
            .unwrap();
        d.write("g", Labels::empty(), mins(20), MetricValue::Gauge(2.0))
            .unwrap();
        let s = d.series("g", &Labels::empty()).unwrap();
        assert_eq!(s.len(), 1);
        assert_eq!(s.latest().unwrap().1.as_gauge(), Some(2.0));
    }

    #[test]
    fn retention_drops_old_points() {
        let mut d = db();
        d.register(MetricDescriptor::gauge("g", SimDuration::from_hours(2)))
            .unwrap();
        for i in 0..10u64 {
            d.write(
                "g",
                Labels::empty(),
                mins(i * 30),
                MetricValue::Gauge(i as f64),
            )
            .unwrap();
        }
        let s = d.series("g", &Labels::empty()).unwrap();
        // At t=270min with 120min retention, points before 150min are gone.
        assert!(s.points().iter().all(|(t, _)| *t >= mins(150)));
        assert_eq!(s.len(), 5);
    }

    #[test]
    fn series_are_keyed_by_labels() {
        let mut d = db();
        d.register(MetricDescriptor::gauge("g", SimDuration::from_hours(24)))
            .unwrap();
        let a = Labels::from_pairs([("cluster", "1")]);
        let b = Labels::from_pairs([("cluster", "2")]);
        d.write("g", a.clone(), mins(0), MetricValue::Gauge(1.0))
            .unwrap();
        d.write("g", b.clone(), mins(0), MetricValue::Gauge(2.0))
            .unwrap();
        assert_eq!(d.num_series(), 2);
        assert_eq!(d.series_of("g").count(), 2);
        assert_eq!(
            d.series("g", &a).unwrap().latest().unwrap().1.as_gauge(),
            Some(1.0)
        );
    }

    #[test]
    fn distribution_points_round_trip() {
        let mut d = db();
        d.register(MetricDescriptor::distribution(
            "lat",
            SimDuration::from_hours(24),
        ))
        .unwrap();
        let mut h = LogHistogram::new();
        for v in [100u64, 200, 300] {
            h.record(v);
        }
        d.write(
            "lat",
            Labels::empty(),
            mins(0),
            MetricValue::Distribution(h),
        )
        .unwrap();
        let s = d.series("lat", &Labels::empty()).unwrap();
        let got = s.points()[0].1.as_distribution().unwrap();
        assert_eq!(got.count(), 3);
        assert_eq!(got.mean(), Some(200.0));
    }

    #[test]
    fn merge_unions_registrations_and_interleaves_series() {
        let mut a = db();
        let mut b = db();
        for d in [&mut a, &mut b] {
            d.register(MetricDescriptor::counter(
                "rpcs",
                SimDuration::from_hours(24),
            ))
            .unwrap();
            d.register(MetricDescriptor::gauge("cpu", SimDuration::from_hours(24)))
                .unwrap();
        }
        b.register(MetricDescriptor::gauge("mem", SimDuration::from_hours(24)))
            .unwrap();
        // Counters in the same window sum; disjoint windows interleave.
        a.write("rpcs", Labels::empty(), mins(0), MetricValue::Counter(10))
            .unwrap();
        a.write("rpcs", Labels::empty(), mins(60), MetricValue::Counter(25))
            .unwrap();
        b.write("rpcs", Labels::empty(), mins(0), MetricValue::Counter(7))
            .unwrap();
        b.write("rpcs", Labels::empty(), mins(30), MetricValue::Counter(12))
            .unwrap();
        b.write("cpu", Labels::empty(), mins(0), MetricValue::Gauge(0.25))
            .unwrap();
        b.write("mem", Labels::empty(), mins(0), MetricValue::Gauge(0.5))
            .unwrap();
        a.merge(b).unwrap();
        let rpcs = a.series("rpcs", &Labels::empty()).unwrap();
        let readings: Vec<(SimTime, Option<u64>)> = rpcs
            .points()
            .iter()
            .map(|(t, v)| (*t, v.as_counter()))
            .collect();
        assert_eq!(
            readings,
            vec![
                (mins(0), Some(17)),
                (mins(30), Some(12)),
                (mins(60), Some(25)),
            ]
        );
        assert!(a.descriptor("mem").is_some());
        assert_eq!(
            a.series("cpu", &Labels::empty())
                .unwrap()
                .latest()
                .unwrap()
                .1
                .as_gauge(),
            Some(0.25)
        );
    }

    #[test]
    fn merge_rejects_conflicting_registration_or_period() {
        let mut a = db();
        let mut b = db();
        a.register(MetricDescriptor::gauge("m", SimDuration::from_hours(1)))
            .unwrap();
        b.register(MetricDescriptor::counter("m", SimDuration::from_hours(1)))
            .unwrap();
        assert!(a.merge(b).is_err());
        let c = TimeSeriesDb::new(SimDuration::from_mins(5));
        assert!(a.merge(c).is_err());
    }

    #[test]
    fn merge_of_distributions_is_exact() {
        let mut a = db();
        let mut b = db();
        for d in [&mut a, &mut b] {
            d.register(MetricDescriptor::distribution(
                "lat",
                SimDuration::from_hours(24),
            ))
            .unwrap();
        }
        let mut ha = LogHistogram::new();
        let mut hb = LogHistogram::new();
        for v in 0..100u64 {
            if v % 2 == 0 {
                ha.record(v * 11);
            } else {
                hb.record(v * 11);
            }
        }
        a.write(
            "lat",
            Labels::empty(),
            mins(0),
            MetricValue::Distribution(ha),
        )
        .unwrap();
        b.write(
            "lat",
            Labels::empty(),
            mins(0),
            MetricValue::Distribution(hb),
        )
        .unwrap();
        a.merge(b).unwrap();
        let merged = a.series("lat", &Labels::empty()).unwrap().points()[0]
            .1
            .as_distribution()
            .unwrap()
            .clone();
        let mut single = LogHistogram::new();
        for v in 0..100u64 {
            single.record(v * 11);
        }
        assert_eq!(merged.count(), single.count());
        assert_eq!(merged.sum(), single.sum());
        assert_eq!(merged.cdf_points(), single.cdf_points());
    }

    #[test]
    fn downsample_averages_gauges() {
        let mut d = db();
        d.register(MetricDescriptor::gauge("g", SimDuration::from_hours(48)))
            .unwrap();
        for i in 0..8u64 {
            d.write(
                "g",
                Labels::empty(),
                mins(i * 30),
                MetricValue::Gauge(i as f64),
            )
            .unwrap();
        }
        let s = d.series("g", &Labels::empty()).unwrap().clone();
        let coarse = d.downsample(&s, SimDuration::from_hours(2));
        // 8 points at 30-minute cadence = 2 buckets of 4.
        assert_eq!(coarse.len(), 2);
        assert_eq!(coarse[0].1, 1.5);
        assert_eq!(coarse[1].1, 5.5);
    }
}
