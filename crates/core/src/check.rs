//! Paper-vs-measured expectation checks.
//!
//! Absolute numbers cannot be expected to match a production fleet, but
//! the *shapes* — who wins, by roughly what factor, where crossovers fall
//! — should. Each figure emits [`Expectation`]s with generous bands; the
//! repro harness prints them and EXPERIMENTS.md records them.

use serde::{Deserialize, Serialize};
use std::fmt;

/// One paper-vs-measured comparison.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Expectation {
    /// Short id, e.g. `fig2.p99_ge_1ms`.
    pub id: String,
    /// What the paper reports.
    pub paper: String,
    /// The measured value.
    pub measured: f64,
    /// Accepted band (inclusive).
    pub band: (f64, f64),
}

impl Expectation {
    /// Creates an expectation.
    pub fn new(id: &str, paper: &str, measured: f64, lo: f64, hi: f64) -> Self {
        Expectation {
            id: id.to_string(),
            paper: paper.to_string(),
            measured,
            band: (lo, hi),
        }
    }

    /// Whether the measured value falls in the band.
    pub fn passed(&self) -> bool {
        self.measured.is_finite() && self.measured >= self.band.0 && self.measured <= self.band.1
    }
}

impl fmt::Display for Expectation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "[{}] {}: measured {:.4} (band {:.4}..{:.4}) — paper: {}",
            if self.passed() { "PASS" } else { "MISS" },
            self.id,
            self.measured,
            self.band.0,
            self.band.1,
            self.paper
        )
    }
}

/// A collection of expectations for one figure or table.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct ExpectationSet {
    /// The expectations, in declaration order.
    pub items: Vec<Expectation>,
}

impl ExpectationSet {
    /// Creates an empty set.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds an expectation.
    pub fn push(&mut self, e: Expectation) {
        self.items.push(e);
    }

    /// Convenience: add by parts.
    pub fn add(&mut self, id: &str, paper: &str, measured: f64, lo: f64, hi: f64) {
        self.push(Expectation::new(id, paper, measured, lo, hi));
    }

    /// Number of passing expectations.
    pub fn passed(&self) -> usize {
        self.items.iter().filter(|e| e.passed()).count()
    }

    /// Whether all expectations pass.
    pub fn all_passed(&self) -> bool {
        self.passed() == self.items.len()
    }

    /// The ids of failing expectations.
    pub fn failures(&self) -> Vec<&str> {
        self.items
            .iter()
            .filter(|e| !e.passed())
            .map(|e| e.id.as_str())
            .collect()
    }

    /// Merges another set into this one.
    pub fn extend(&mut self, other: ExpectationSet) {
        self.items.extend(other.items);
    }
}

impl fmt::Display for ExpectationSet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for e in &self.items {
            writeln!(f, "{e}")?;
        }
        write!(f, "{}/{} checks passed", self.passed(), self.items.len())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pass_and_fail_detection() {
        let ok = Expectation::new("x", "p", 0.5, 0.4, 0.6);
        assert!(ok.passed());
        let low = Expectation::new("x", "p", 0.3, 0.4, 0.6);
        assert!(!low.passed());
        let nan = Expectation::new("x", "p", f64::NAN, 0.0, 1.0);
        assert!(!nan.passed());
        // Band edges are inclusive.
        assert!(Expectation::new("x", "p", 0.4, 0.4, 0.6).passed());
        assert!(Expectation::new("x", "p", 0.6, 0.4, 0.6).passed());
    }

    #[test]
    fn set_aggregation() {
        let mut s = ExpectationSet::new();
        s.add("a", "p", 1.0, 0.0, 2.0);
        s.add("b", "p", 5.0, 0.0, 2.0);
        assert_eq!(s.passed(), 1);
        assert!(!s.all_passed());
        assert_eq!(s.failures(), vec!["b"]);
        let mut t = ExpectationSet::new();
        t.add("c", "p", 1.0, 0.0, 2.0);
        s.extend(t);
        assert_eq!(s.items.len(), 3);
        assert_eq!(s.passed(), 2);
    }

    #[test]
    fn display_includes_verdict() {
        let e = Expectation::new("fig.x", "paper says y", 0.5, 0.4, 0.6);
        let text = e.to_string();
        assert!(text.contains("PASS"));
        assert!(text.contains("fig.x"));
        let mut s = ExpectationSet::new();
        s.push(e);
        assert!(s.to_string().contains("1/1 checks passed"));
    }
}
