//! Ablation studies for the design choices DESIGN.md calls out.
//!
//! Each ablation runs the fleet twice — mechanism on vs off — at the same
//! seed and compares the metric that mechanism exists to move:
//!
//! - **hedging**: the tail (P99) latency of hedged storage methods. The
//!   paper attributes the Cancelled error class to hedging (§4.4); the
//!   ablation shows what that wasted work buys.
//! - **congestion**: the P99 of the network-wire components. The paper
//!   finds congestion still bites the WAN tail (§5.1).
//! - **reserved cores**: KV-Store's latency coupling to machine
//!   utilization (§3.3.4: reserved cores sever the coupling).

use rpclens_fleet::driver::{run_fleet, FleetConfig, FleetRun, SimScale};
use rpclens_fleet::faults::FaultScenario;
use rpclens_rpcstack::component::LatencyComponent;
use rpclens_simcore::stats::{percentile, sorted_finite};
use rpclens_trace::query::MethodQuery;
use rpclens_trace::span::MethodId;

/// The available ablations.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Ablation {
    /// Request hedging on/off.
    Hedging,
    /// Network congestion on/off.
    Congestion,
    /// Reserved-core isolation on/off.
    ReservedCores,
}

impl Ablation {
    /// All ablations.
    pub const ALL: [Ablation; 3] = [
        Ablation::Hedging,
        Ablation::Congestion,
        Ablation::ReservedCores,
    ];

    /// CLI name.
    pub fn name(self) -> &'static str {
        match self {
            Ablation::Hedging => "hedging",
            Ablation::Congestion => "congestion",
            Ablation::ReservedCores => "reserved-cores",
        }
    }

    /// Parses a CLI name.
    pub fn parse(name: &str) -> Option<Ablation> {
        Ablation::ALL
            .iter()
            .copied()
            .find(|a| a.name() == name.to_lowercase())
    }
}

/// Result of one ablation: the metric with the mechanism on and off, and
/// a human description.
#[derive(Debug, Clone)]
pub struct AblationResult {
    /// Which ablation ran.
    pub ablation: Ablation,
    /// Metric description (what the numbers are).
    pub metric: &'static str,
    /// Metric with the mechanism enabled.
    pub with_mechanism: f64,
    /// Metric with the mechanism disabled.
    pub without_mechanism: f64,
}

impl AblationResult {
    /// Ratio without/with: > 1 means the mechanism was helping.
    pub fn improvement(&self) -> f64 {
        self.without_mechanism / self.with_mechanism.max(1e-12)
    }
}

fn config(scale: &SimScale) -> FleetConfig {
    FleetConfig::at_scale(scale.clone())
}

/// One arm of the retry-budget ablation: the resilience counters that
/// the token bucket exists to move.
#[derive(Debug, Clone, Copy)]
pub struct RetryArm {
    /// Retry attempts actually issued.
    pub retries_issued: u64,
    /// Retry attempts denied by the budget (always 0 with the budget off).
    pub retries_denied: u64,
    /// `NoResource` errors shed by overloaded queues.
    pub load_sheds: u64,
    /// Total executed attempts (spans), retries included.
    pub total_spans: u64,
}

impl RetryArm {
    fn of(run: &FleetRun) -> RetryArm {
        let r = &run.telemetry.counters.resilience;
        RetryArm {
            retries_issued: r.retries_issued,
            retries_denied: r.retries_denied,
            load_sheds: r.load_sheds,
            total_spans: run.total_spans,
        }
    }

    /// Retry amplification: executed attempts per attempt that would have
    /// run had no retry fired. 1.0 means no amplification; 1.25 means the
    /// retry loop added 25% extra work on top of the base load.
    pub fn amplification(&self) -> f64 {
        let base = self.total_spans.saturating_sub(self.retries_issued).max(1);
        self.total_spans as f64 / base as f64
    }
}

/// Result of the retry-budget ablation: the same fault scenario run with
/// the [`RetryBudget`] token bucket on and off.
///
/// [`RetryBudget`]: rpclens_rpcstack::retry::RetryBudget
#[derive(Debug, Clone, Copy)]
pub struct RetryBudgetAblation {
    /// The fault scenario both arms ran under.
    pub scenario: &'static str,
    /// Counters with the budget enforcing its ratio.
    pub with_budget: RetryArm,
    /// Counters with retries bounded only by `max_attempts`.
    pub without_budget: RetryArm,
}

/// Runs the retry-budget ablation: the given fault scenario at the given
/// scale, once with the per-trace retry budget enforcing its ratio and
/// once with the budget disabled (retries bounded only by the backoff
/// policy's `max_attempts`). The gap between the two amplification
/// factors is the storm the budget is clamping.
pub fn run_retry_budget_ablation(scale: &SimScale, faults: FaultScenario) -> RetryBudgetAblation {
    let mut on_cfg = config(scale);
    on_cfg.faults = faults;
    let on = run_fleet(on_cfg);
    let mut off_cfg = config(scale);
    off_cfg.faults = faults;
    off_cfg.retry_budget_enabled = false;
    let off = run_fleet(off_cfg);
    RetryBudgetAblation {
        scenario: faults.name,
        with_budget: RetryArm::of(&on),
        without_budget: RetryArm::of(&off),
    }
}

/// Renders the retry-budget ablation as the table `repro --ablate
/// retry-budget` prints.
pub fn render_retry_budget(r: &RetryBudgetAblation) -> String {
    use std::fmt::Write as _;
    let mut out = String::new();
    let _ = writeln!(out, "retry-budget ablation under `{}`:", r.scenario);
    let _ = writeln!(out, "{:>24}  {:>14}  {:>14}", "", "budget on", "budget off");
    let row = |out: &mut String, label: &str, on: u64, off: u64| {
        let _ = writeln!(out, "{label:>24}  {on:>14}  {off:>14}");
    };
    row(
        &mut out,
        "retries issued",
        r.with_budget.retries_issued,
        r.without_budget.retries_issued,
    );
    row(
        &mut out,
        "retries denied",
        r.with_budget.retries_denied,
        r.without_budget.retries_denied,
    );
    row(
        &mut out,
        "load sheds",
        r.with_budget.load_sheds,
        r.without_budget.load_sheds,
    );
    row(
        &mut out,
        "total attempts",
        r.with_budget.total_spans,
        r.without_budget.total_spans,
    );
    let _ = writeln!(
        out,
        "{:>24}  {:>14.4}  {:>14.4}",
        "retry amplification",
        r.with_budget.amplification(),
        r.without_budget.amplification()
    );
    out
}

/// Hedged storage methods' P99 latency, seconds.
fn hedged_tail(run: &FleetRun) -> f64 {
    let query = MethodQuery::default();
    let mut samples = Vec::new();
    for m in run.catalog.methods() {
        if !m.hedge.enabled {
            continue;
        }
        if let Some(mut s) = query.latency_samples(&run.store, m.id) {
            samples.append(&mut s);
        }
    }
    let sorted = sorted_finite(samples);
    percentile(&sorted, 0.99).unwrap_or(f64::NAN)
}

/// P99 of the summed network-wire components over *same-cluster* spans,
/// seconds. Restricting to same-cluster paths isolates congestion: their
/// propagation floor is microseconds, so any millisecond tail is pure
/// in-network queueing.
fn network_tail(run: &FleetRun) -> f64 {
    let mut samples = Vec::new();
    for trace in run.store.traces() {
        for span in &trace.spans {
            if span.is_ok() && span.client_cluster == span.server_cluster {
                samples.push(
                    span.component(LatencyComponent::RequestNetworkWire)
                        .as_secs_f64()
                        + span
                            .component(LatencyComponent::ResponseNetworkWire)
                            .as_secs_f64(),
                );
            }
        }
    }
    let sorted = sorted_finite(samples);
    percentile(&sorted, 0.99).unwrap_or(f64::NAN)
}

/// KV-Store's server-side latency rise from the coolest to the hottest
/// utilization quartile: mean(server latency | util in top quartile) over
/// mean(server latency | util in bottom quartile), minus one. Server-side
/// components only, so the co-located callers' diurnal client queues do
/// not confound the measurement (same isolation as Fig. 17's panels).
fn kv_util_coupling(run: &FleetRun) -> f64 {
    let kv = match run.catalog.service_by_name("KVStore") {
        Some(s) => s.id,
        None => return f64::NAN,
    };
    let methods: Vec<MethodId> = run
        .catalog
        .methods()
        .iter()
        .filter(|m| m.service == kv)
        .map(|m| m.id)
        .collect();
    let mut pairs: Vec<(f64, f64)> = Vec::new();
    for m in methods {
        run.store.for_each_span(m, |trace, span| {
            if !span.is_ok() {
                return;
            }
            if let Some(site) = run.site(kv, span.server_cluster) {
                let at = trace.root_start + span.start_offset();
                let server_side = [
                    LatencyComponent::ServerRecvQueue,
                    LatencyComponent::ServerApplication,
                    LatencyComponent::ServerSendQueue,
                    LatencyComponent::ResponseProcessing,
                ]
                .iter()
                .map(|&c| span.component(c).as_secs_f64())
                .sum::<f64>();
                pairs.push((site.load.sample(at).cpu_util, server_side));
            }
        });
    }
    if pairs.len() < 200 {
        return f64::NAN;
    }
    let utils = sorted_finite(pairs.iter().map(|p| p.0).collect());
    let q1 = percentile(&utils, 0.25).unwrap_or(f64::NAN);
    let q3 = percentile(&utils, 0.75).unwrap_or(f64::NAN);
    let mean_of = |pred: &dyn Fn(f64) -> bool| -> f64 {
        let v: Vec<f64> = pairs
            .iter()
            .filter(|(u, _)| pred(*u))
            .map(|(_, l)| *l)
            .collect();
        v.iter().sum::<f64>() / v.len().max(1) as f64
    };
    let cool = mean_of(&|u| u <= q1);
    let hot = mean_of(&|u| u >= q3);
    (hot / cool.max(1e-12) - 1.0).abs()
}

/// Runs one ablation at the given scale.
pub fn run_ablation(ablation: Ablation, scale: &SimScale) -> AblationResult {
    match ablation {
        Ablation::Hedging => {
            let on = run_fleet(config(scale));
            let mut cfg = config(scale);
            cfg.hedging_enabled = false;
            let off = run_fleet(cfg);
            AblationResult {
                ablation,
                metric: "P99 latency of hedged storage methods (s)",
                with_mechanism: hedged_tail(&on),
                without_mechanism: hedged_tail(&off),
            }
        }
        Ablation::Congestion => {
            let on = run_fleet(config(scale));
            let mut cfg = config(scale);
            cfg.net.congestion_enabled = false;
            let off = run_fleet(cfg);
            // Here the "mechanism" is congestion itself: with it on, the
            // tail is worse, so improvement() < 1 documents its cost.
            AblationResult {
                ablation,
                metric: "fleet P99 network-wire latency (s)",
                with_mechanism: network_tail(&on),
                without_mechanism: network_tail(&off),
            }
        }
        Ablation::ReservedCores => {
            let on = run_fleet(config(scale));
            let mut cfg = config(scale);
            cfg.reserved_cores_enabled = false;
            let off = run_fleet(cfg);
            AblationResult {
                ablation,
                metric: "KV-Store server-side latency rise, hot vs cool utilization quartile",
                with_mechanism: kv_util_coupling(&on),
                without_mechanism: kv_util_coupling(&off),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rpclens_simcore::time::SimDuration;

    fn scale() -> SimScale {
        SimScale {
            name: "ablation-test",
            total_methods: 400,
            roots: 15_000,
            duration: SimDuration::from_hours(24),
            trace_sample_rate: 1,
            profiler_sample_cap: 10_000,
            seed: 21,
        }
    }

    #[test]
    fn hedging_reduces_hedged_method_tail() {
        let r = run_ablation(Ablation::Hedging, &scale());
        assert!(r.with_mechanism.is_finite() && r.without_mechanism.is_finite());
        // Turning hedging off must not make the tail better; it usually
        // makes it noticeably worse.
        assert!(
            r.improvement() > 1.02,
            "hedging off/on tail ratio {:.3} (with {:.4}s, without {:.4}s)",
            r.improvement(),
            r.with_mechanism,
            r.without_mechanism
        );
    }

    #[test]
    fn congestion_inflates_the_network_tail() {
        let r = run_ablation(Ablation::Congestion, &scale());
        // Without congestion, the network P99 collapses toward wire
        // latency.
        assert!(
            r.improvement() < 0.9,
            "congestion off/on tail ratio {:.3}",
            r.improvement()
        );
    }

    #[test]
    fn retry_budget_clamps_overload_amplification() {
        let r = run_retry_budget_ablation(&scale(), FaultScenario::overload_collapse());
        // The budget denied retries the unbudgeted arm went on to issue.
        assert!(r.with_budget.retries_denied > 0, "{r:?}");
        assert_eq!(r.without_budget.retries_denied, 0, "{r:?}");
        assert!(
            r.without_budget.retries_issued > r.with_budget.retries_issued,
            "{r:?}"
        );
        // And the storm it clamps is visible in the amplification gap.
        assert!(
            r.without_budget.amplification() > r.with_budget.amplification(),
            "amplification with {:.4} vs without {:.4}",
            r.with_budget.amplification(),
            r.without_budget.amplification()
        );
    }

    #[test]
    fn reserved_cores_decouple_kv_from_utilization() {
        let r = run_ablation(Ablation::ReservedCores, &scale());
        assert!(
            r.without_mechanism > r.with_mechanism,
            "coupling with reservation {:.3} vs without {:.3}",
            r.with_mechanism,
            r.without_mechanism
        );
    }
}
