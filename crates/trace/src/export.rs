//! Compact binary export/import of trace stores.
//!
//! Dapper persists sampled traces to a repository for offline analysis;
//! this module gives [`TraceStore`] the same property with a versioned,
//! checksummed binary format built on the workspace's own framing
//! primitives, so a fleet run's traces can be captured once and re-analysed
//! without re-simulating.
//!
//! Layout (all integers little-endian unless varint):
//!
//! ```text
//! magic "RLTR" | version u8 | trace_count varint
//!   per trace: root_start u64 | span_count varint | spans...
//!     per span: method u32 | service u16 | parent u32 | client u16 |
//!               server u16 | start_ticks u32 | components [u32; 9] |
//!               req u32 | resp u32 | kilocycles u32 | flags u8 | error u8
//! crc32 over everything above | u32
//! ```

use crate::collector::TraceStore;
use crate::span::{MethodId, ServiceId, SpanBuilder, SpanRecord, TraceData};
use bytes::{Buf, BufMut, BytesMut};
use rpclens_netsim::topology::ClusterId;
use rpclens_rpcstack::codec::{crc32, get_varint, put_varint, DecodeError};
use rpclens_rpcstack::component::LatencyComponent;
use rpclens_rpcstack::error::ErrorKind;
use rpclens_simcore::time::SimTime;

/// Export format magic.
pub const MAGIC: &[u8; 4] = b"RLTR";
/// Export format version.
pub const VERSION: u8 = 1;

fn error_to_byte(e: Option<ErrorKind>) -> u8 {
    match e {
        None => 0,
        Some(kind) => {
            1 + ErrorKind::ALL
                .iter()
                .position(|&k| k == kind)
                .expect("kind in ALL") as u8
        }
    }
}

fn byte_to_error(b: u8) -> Result<Option<ErrorKind>, DecodeError> {
    match b {
        0 => Ok(None),
        n if (n as usize) <= ErrorKind::ALL.len() => Ok(Some(ErrorKind::ALL[n as usize - 1])),
        _ => Err(DecodeError::Truncated),
    }
}

/// Serializes a trace store to bytes.
pub fn export(store: &TraceStore) -> Vec<u8> {
    let mut buf = BytesMut::with_capacity(64 + store.total_spans() * 64);
    buf.put_slice(MAGIC);
    buf.put_u8(VERSION);
    put_varint(&mut buf, store.len() as u64);
    for trace in store.traces() {
        buf.put_u64(trace.root_start.as_nanos());
        put_varint(&mut buf, trace.len() as u64);
        for span in &trace.spans {
            buf.put_u32(span.method.0);
            buf.put_u16(span.service.0);
            buf.put_u32(span.parent);
            buf.put_u16(span.client_cluster.0);
            buf.put_u16(span.server_cluster.0);
            // Re-quantize through the public accessors (ticks are private
            // to the span module; 100 ns resolution survives roundtrip).
            buf.put_u32((span.start_offset().as_nanos() / 100) as u32);
            for c in LatencyComponent::ALL {
                buf.put_u32((span.component(c).as_nanos() / 100) as u32);
            }
            buf.put_u32(span.request_bytes);
            buf.put_u32(span.response_bytes);
            buf.put_u32(span.kilocycles);
            let flags = (span.hedged as u8) | ((span.detached as u8) << 1);
            buf.put_u8(flags);
            buf.put_u8(error_to_byte(span.error));
        }
    }
    let crc = crc32(&buf);
    buf.put_u32(crc);
    buf.to_vec()
}

/// Deserializes a trace store from bytes.
///
/// # Errors
///
/// Returns a [`DecodeError`] on truncation, bad magic/version, or a CRC
/// mismatch.
pub fn import(mut input: &[u8]) -> Result<TraceStore, DecodeError> {
    let full = input;
    if input.len() < 9 {
        return Err(DecodeError::Truncated);
    }
    // Verify the trailer before parsing the body.
    let body_len = full.len() - 4;
    let expected = u32::from_be_bytes(
        full[body_len..]
            .try_into()
            .map_err(|_| DecodeError::Truncated)?,
    );
    let actual = crc32(&full[..body_len]);
    if expected != actual {
        return Err(DecodeError::BadChecksum { expected, actual });
    }

    let mut magic = [0u8; 4];
    input.copy_to_slice(&mut magic);
    if &magic != MAGIC {
        return Err(DecodeError::BadMagic);
    }
    let version = input.get_u8();
    if version != VERSION {
        return Err(DecodeError::BadVersion(version));
    }
    let trace_count = get_varint(&mut input)?;
    let mut store = TraceStore::new();
    for _ in 0..trace_count {
        if input.remaining() < 8 {
            return Err(DecodeError::Truncated);
        }
        let root_start = SimTime::from_nanos(input.get_u64());
        let span_count = get_varint(&mut input)?;
        let mut spans = Vec::with_capacity(span_count as usize);
        for _ in 0..span_count {
            // Fixed-size span body: 4+2+4+2+2+4 + 36 + 4+4+4 + 1+1 = 68.
            if input.remaining() < 68 {
                return Err(DecodeError::Truncated);
            }
            let method = MethodId(input.get_u32());
            let service = ServiceId(input.get_u16());
            let parent = input.get_u32();
            let client = ClusterId(input.get_u16());
            let server = ClusterId(input.get_u16());
            let start_ticks = input.get_u32();
            let mut breakdown = rpclens_rpcstack::component::LatencyBreakdown::new();
            for c in LatencyComponent::ALL {
                let ticks = input.get_u32();
                breakdown.set(
                    c,
                    rpclens_simcore::time::SimDuration::from_nanos(ticks as u64 * 100),
                );
            }
            let req = input.get_u32();
            let resp = input.get_u32();
            let kilocycles = input.get_u32();
            let flags = input.get_u8();
            let error = byte_to_error(input.get_u8())?;
            let mut builder = SpanBuilder::new(method, service, client, server)
                .parent(parent)
                .start_offset(rpclens_simcore::time::SimDuration::from_nanos(
                    start_ticks as u64 * 100,
                ))
                .breakdown(breakdown)
                .sizes(req as u64, resp as u64)
                .cycles(kilocycles as u64 * 1000)
                .hedged(flags & 1 != 0)
                .detached(flags & 2 != 0);
            if let Some(kind) = error {
                builder = builder.error(kind);
            }
            let span: SpanRecord = builder.build();
            spans.push(span);
        }
        if spans.is_empty() {
            return Err(DecodeError::Truncated);
        }
        store.add(TraceData::new(root_start, spans));
    }
    Ok(store)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rpclens_rpcstack::component::LatencyBreakdown;
    use rpclens_simcore::rng::Prng;
    use rpclens_simcore::time::SimDuration;

    fn random_store(seed: u64, traces: usize) -> TraceStore {
        let mut rng = Prng::seed_from(seed);
        let mut store = TraceStore::new();
        for t in 0..traces {
            let n = 1 + rng.index(20);
            let spans: Vec<SpanRecord> = (0..n)
                .map(|i| {
                    let mut b = LatencyBreakdown::new();
                    b.set(
                        LatencyComponent::ServerApplication,
                        SimDuration::from_nanos(rng.next_below(1_000_000_000) / 100 * 100),
                    );
                    b.set(
                        LatencyComponent::RequestNetworkWire,
                        SimDuration::from_nanos(rng.next_below(10_000_000) / 100 * 100),
                    );
                    let mut builder = SpanBuilder::new(
                        MethodId(rng.next_below(1000) as u32),
                        ServiceId(rng.next_below(40) as u16),
                        ClusterId(rng.next_below(48) as u16),
                        ClusterId(rng.next_below(48) as u16),
                    )
                    .breakdown(b)
                    .sizes(rng.next_below(1 << 20), rng.next_below(1 << 20))
                    .cycles(rng.next_below(1 << 30) / 1000 * 1000)
                    .start_offset(SimDuration::from_nanos(
                        rng.next_below(60_000_000_000) / 100 * 100,
                    ))
                    .hedged(rng.chance(0.05))
                    .detached(rng.chance(0.05));
                    if i > 0 {
                        builder = builder.parent(rng.index(i) as u32);
                    }
                    if rng.chance(0.1) {
                        builder = builder.error(*rng.choose(&ErrorKind::ALL));
                    }
                    builder.build()
                })
                .collect();
            store.add(TraceData::new(
                SimTime::from_nanos(t as u64 * 1_000_000),
                spans,
            ));
        }
        store
    }

    #[test]
    fn roundtrip_preserves_every_span() {
        let store = random_store(1, 200);
        let bytes = export(&store);
        let back = import(&bytes).expect("valid export");
        assert_eq!(back.len(), store.len());
        assert_eq!(back.total_spans(), store.total_spans());
        for (a, b) in store.traces().iter().zip(back.traces()) {
            assert_eq!(a.root_start, b.root_start);
            assert_eq!(a.spans, b.spans);
        }
    }

    #[test]
    fn empty_store_roundtrips() {
        let store = TraceStore::new();
        let bytes = export(&store);
        let back = import(&bytes).expect("valid export");
        assert_eq!(back.len(), 0);
    }

    #[test]
    fn corruption_is_detected() {
        let store = random_store(2, 20);
        let mut bytes = export(&store);
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0x40;
        match import(&bytes) {
            Err(DecodeError::BadChecksum { .. }) => {}
            other => panic!("expected checksum failure, got {other:?}"),
        }
    }

    #[test]
    fn truncation_is_detected() {
        let store = random_store(3, 20);
        let bytes = export(&store);
        for cut in [0usize, 4, 8, bytes.len() / 2, bytes.len() - 1] {
            assert!(import(&bytes[..cut]).is_err(), "cut {cut} accepted");
        }
    }

    #[test]
    fn wrong_magic_and_version_rejected() {
        let store = random_store(4, 5);
        let reject_with = |mutate: fn(&mut Vec<u8>)| {
            let mut bytes = export(&store);
            mutate(&mut bytes);
            // Re-seal the CRC so only the intended field is wrong.
            let body = bytes.len() - 4;
            let crc = crc32(&bytes[..body]);
            let crc_bytes = crc.to_be_bytes();
            bytes[body..].copy_from_slice(&crc_bytes);
            import(&bytes)
        };
        assert!(matches!(
            reject_with(|b| b[0] = b'X'),
            Err(DecodeError::BadMagic)
        ));
        assert!(matches!(
            reject_with(|b| b[4] = 9),
            Err(DecodeError::BadVersion(9))
        ));
    }

    #[test]
    fn export_is_compact() {
        // ~70 bytes per span plus headers: far below a naive text dump.
        let store = random_store(5, 100);
        let bytes = export(&store);
        let per_span = bytes.len() as f64 / store.total_spans() as f64;
        assert!(per_span < 90.0, "{per_span:.1} bytes/span");
    }
}
