/root/repo/target/debug/deps/rpclens_rpcstack-ac76f4261e902955.d: crates/rpcstack/src/lib.rs crates/rpcstack/src/codec.rs crates/rpcstack/src/component.rs crates/rpcstack/src/cost.rs crates/rpcstack/src/deadline.rs crates/rpcstack/src/error.rs crates/rpcstack/src/hedging.rs crates/rpcstack/src/loadbalancer.rs crates/rpcstack/src/queue.rs crates/rpcstack/src/retry.rs Cargo.toml

/root/repo/target/debug/deps/librpclens_rpcstack-ac76f4261e902955.rmeta: crates/rpcstack/src/lib.rs crates/rpcstack/src/codec.rs crates/rpcstack/src/component.rs crates/rpcstack/src/cost.rs crates/rpcstack/src/deadline.rs crates/rpcstack/src/error.rs crates/rpcstack/src/hedging.rs crates/rpcstack/src/loadbalancer.rs crates/rpcstack/src/queue.rs crates/rpcstack/src/retry.rs Cargo.toml

crates/rpcstack/src/lib.rs:
crates/rpcstack/src/codec.rs:
crates/rpcstack/src/component.rs:
crates/rpcstack/src/cost.rs:
crates/rpcstack/src/deadline.rs:
crates/rpcstack/src/error.rs:
crates/rpcstack/src/hedging.rs:
crates/rpcstack/src/loadbalancer.rs:
crates/rpcstack/src/queue.rs:
crates/rpcstack/src/retry.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
