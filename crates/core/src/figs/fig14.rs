//! Fig. 14: CDF of RPC completion-time breakdown for the eight studied
//! services (intra-cluster calls only).
//!
//! For each Table 1 service, spans are sorted by total latency and
//! bucketed into percentile bins; each bin holds the average
//! per-component latency of its spans, reproducing the stacked-CDF
//! panels. Paper anchors: each service has one dominant component —
//! application-heavy {Bigtable, Network Disk, F1, ML Inference, Spanner},
//! queueing-heavy {SSD cache, Video Metadata}, stack-heavy {KV-Store} —
//! and P95 latency is 1.86–10.6x the median.

use crate::check::ExpectationSet;
use crate::render::{fmt_secs, TextTable};
use rpclens_fleet::driver::FleetRun;
use rpclens_rpcstack::component::{LatencyComponent, TaxGroup};
use rpclens_trace::query::MethodQuery;
use rpclens_trace::span::MethodId;

/// The dominant-latency category of a service in this figure.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Dominance {
    /// Server application time dominates.
    Application,
    /// Queueing dominates the tax and rivals the application.
    Queueing,
    /// RPC processing + stack dominates the tax and rivals the
    /// application.
    Stack,
    /// Network wire dominates (cross-cluster heavy; not expected for the
    /// intra-cluster panels).
    Network,
}

/// One service's breakdown curve.
#[derive(Debug)]
pub struct ServiceBreakdown {
    /// Service name (Table 1 server).
    pub name: &'static str,
    /// The pinned method measured.
    pub method: MethodId,
    /// Percentile bins 0..100 (step 5): average component seconds per bin
    /// in lifecycle order.
    pub bins: Vec<[f64; 9]>,
    /// Median completion time, seconds.
    pub p50: f64,
    /// P95 completion time, seconds.
    pub p95: f64,
    /// The measured dominance class.
    pub dominance: Dominance,
}

/// The computed figure.
#[derive(Debug)]
pub struct Fig14 {
    /// One breakdown per Table 1 service.
    pub services: Vec<ServiceBreakdown>,
}

/// Computes the figure.
pub fn compute(run: &FleetRun) -> Fig14 {
    let query = MethodQuery {
        intra_cluster_only: true,
        min_samples: 50,
        ..MethodQuery::default()
    };
    let mut services = Vec::new();
    for entry in run.catalog.table1() {
        let mut rows: Vec<(f64, [f64; 9])> = Vec::new();
        run.store.for_each_span(entry.method, |_, span| {
            if !query.accepts(span) {
                return;
            }
            let mut comps = [0.0f64; 9];
            for (i, c) in LatencyComponent::ALL.iter().enumerate() {
                comps[i] = span.component(*c).as_secs_f64();
            }
            rows.push((span.total_latency().as_secs_f64(), comps));
        });
        if rows.len() < 50 {
            continue;
        }
        rows.sort_by(|a, b| a.0.partial_cmp(&b.0).expect("finite"));
        let n = rows.len();
        let mut bins = Vec::new();
        for b in 0..20 {
            let lo = n * b / 20;
            let hi = (n * (b + 1) / 20).max(lo + 1).min(n);
            let mut avg = [0.0f64; 9];
            for (_, comps) in &rows[lo..hi] {
                for i in 0..9 {
                    avg[i] += comps[i];
                }
            }
            for v in &mut avg {
                *v /= (hi - lo) as f64;
            }
            bins.push(avg);
        }
        let p50 = rows[n / 2].0;
        let p95 = rows[n * 95 / 100].0;
        // Dominance: the single largest mean component, as the paper
        // classifies ("based on the dominant component").
        let mut mean_comp = [0.0f64; 9];
        for (_, comps) in &rows {
            for i in 0..9 {
                mean_comp[i] += comps[i];
            }
        }
        let mut argmax = 0;
        for i in 1..9 {
            if mean_comp[i] > mean_comp[argmax] {
                argmax = i;
            }
        }
        let dominance = match LatencyComponent::ALL[argmax].tax_group() {
            None => Dominance::Application,
            Some(TaxGroup::Queue) => Dominance::Queueing,
            Some(TaxGroup::Processing) => Dominance::Stack,
            Some(TaxGroup::Network) => Dominance::Network,
        };
        services.push(ServiceBreakdown {
            name: entry.server,
            method: entry.method,
            bins,
            p50,
            p95,
            dominance,
        });
    }
    Fig14 { services }
}

/// Renders the figure.
pub fn render(fig: &Fig14) -> String {
    let mut t = TextTable::new(&["service", "P50", "P95", "P95/P50", "dominant"]);
    for s in &fig.services {
        t.row(vec![
            s.name.to_string(),
            fmt_secs(s.p50),
            fmt_secs(s.p95),
            format!("{:.2}x", s.p95 / s.p50.max(1e-12)),
            format!("{:?}", s.dominance),
        ]);
    }
    format!(
        "Fig. 14 — Intra-cluster completion-time breakdown per service\n{}",
        t.render()
    )
}

/// Paper-vs-measured checks.
pub fn checks(fig: &Fig14) -> ExpectationSet {
    let mut s = ExpectationSet::new();
    s.add(
        "fig14.service_count",
        "all eight Table 1 services have enough intra-cluster samples",
        fig.services.len() as f64,
        6.0,
        8.0,
    );
    let dominance_of = |name: &str| {
        fig.services
            .iter()
            .find(|x| x.name == name)
            .map(|x| x.dominance)
    };
    for app_heavy in ["Bigtable", "F1", "ML Inference"] {
        if let Some(d) = dominance_of(app_heavy) {
            s.add(
                &format!("fig14.{}_app_heavy", app_heavy.replace(' ', "_")),
                "application-processing-heavy per the paper",
                (d == Dominance::Application) as u8 as f64,
                1.0,
                1.0,
            );
        }
    }
    if let Some(d) = dominance_of("SSD cache") {
        s.add(
            "fig14.ssd_queueing_heavy",
            "SSD cache is queueing-heavy",
            (d == Dominance::Queueing) as u8 as f64,
            1.0,
            1.0,
        );
    }
    if let Some(d) = dominance_of("KV-Store") {
        s.add(
            "fig14.kv_stack_heavy",
            "KV-Store is RPC-stack-heavy",
            (d == Dominance::Stack) as u8 as f64,
            1.0,
            1.0,
        );
    }
    // P95/median spread band: the paper reports 1.86-10.6x.
    for svc in &fig.services {
        s.add(
            &format!("fig14.{}_tail_spread", svc.name.replace(' ', "_")),
            "P95 is 1.86-10.6x the median",
            svc.p95 / svc.p50.max(1e-12),
            1.3,
            40.0,
        );
    }
    s
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::common::testrun::shared;

    #[test]
    fn checks_pass_on_test_run() {
        let fig = compute(shared());
        let c = checks(&fig);
        assert!(c.all_passed(), "{c}");
    }

    #[test]
    fn bins_are_monotone_in_total() {
        let fig = compute(shared());
        for svc in &fig.services {
            let totals: Vec<f64> = svc.bins.iter().map(|b| b.iter().sum()).collect();
            // Later percentile bins hold slower RPCs on average.
            assert!(
                totals.first().unwrap() <= totals.last().unwrap(),
                "{}: {totals:?}",
                svc.name
            );
        }
    }

    #[test]
    fn f1_has_the_widest_spread() {
        // The paper singles out F1 (10.6x) because one method serves
        // queries of wildly varying complexity.
        let fig = compute(shared());
        let spread = |name: &str| {
            fig.services
                .iter()
                .find(|s| s.name == name)
                .map(|s| s.p95 / s.p50)
                .unwrap_or(0.0)
        };
        assert!(spread("F1") > spread("Network Disk"));
    }
}
