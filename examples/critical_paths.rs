//! Critical-path analysis: which methods actually gate completion?
//!
//! A CRISP-style walk over sampled traces (the §6-motivated extension):
//! for each trace, find the chain of spans that determined the root's
//! completion time, then compare per-method *criticality* (share of
//! critical-path time) against raw popularity (share of calls). The two
//! rankings disagree — the paper's point that optimization targets depend
//! on the objective.
//!
//! ```text
//! cargo run --release --example critical_paths
//! ```

use rpclens::prelude::*;
use rpclens::trace::critical_path::CriticalityReport;

fn main() {
    let run = run_fleet(FleetConfig::at_scale(SimScale::smoke()));
    let report = CriticalityReport::compute(run.store.traces());
    println!(
        "analysed {} traces ({} spans)\n",
        report.traces(),
        run.store.total_spans()
    );

    let total_calls: u64 = run.method_calls.iter().sum();
    println!(
        "{:<34} {:>12} {:>12}",
        "method", "criticality", "call share"
    );
    for (method, _) in report.ranked().into_iter().take(15) {
        let spec = run.catalog.method(method);
        let svc = run.catalog.service(spec.service);
        println!(
            "{:<34} {:>11.2}% {:>11.2}%",
            format!("{}.{}", svc.name, spec.name),
            report.criticality(method) * 100.0,
            run.method_calls[method.0 as usize] as f64 / total_calls.max(1) as f64 * 100.0
        );
    }
    println!(
        "\nHigh-criticality methods are where latency optimization pays;\n\
         high-popularity methods are where CPU optimization pays — and the\n\
         lists differ, exactly the paper's \"not all RPCs are the same\"."
    );
}
