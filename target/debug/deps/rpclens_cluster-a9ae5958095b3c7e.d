/root/repo/target/debug/deps/rpclens_cluster-a9ae5958095b3c7e.d: crates/cluster/src/lib.rs crates/cluster/src/accounting.rs crates/cluster/src/exogenous.rs crates/cluster/src/machine.rs crates/cluster/src/mgk.rs crates/cluster/src/pool.rs Cargo.toml

/root/repo/target/debug/deps/librpclens_cluster-a9ae5958095b3c7e.rmeta: crates/cluster/src/lib.rs crates/cluster/src/accounting.rs crates/cluster/src/exogenous.rs crates/cluster/src/machine.rs crates/cluster/src/mgk.rs crates/cluster/src/pool.rs Cargo.toml

crates/cluster/src/lib.rs:
crates/cluster/src/accounting.rs:
crates/cluster/src/exogenous.rs:
crates/cluster/src/machine.rs:
crates/cluster/src/mgk.rs:
crates/cluster/src/pool.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
