//! Runtime observability plane for the simulator itself.
//!
//! The workspace already reproduces the paper's three *measurement
//! substrates* — Monarch-like time series (`rpclens-tsdb`), Dapper-like
//! traces (`rpclens-trace`), and GWP-like cycle profiles
//! (`rpclens-profiler`) — but those observe the *simulated fleet*. This
//! crate observes the *simulator*: what the sharded driver did, how long
//! each phase took, what each shard processed, and whether the run's
//! service-level behaviour regressed against a previous run.
//!
//! Three parts, mirroring the production observability stack the paper's
//! methodology leans on:
//!
//! - [`telemetry`] — structured, shard-local counters and phase timers.
//!   Counters are a pure function of the master seed and are folded in
//!   shard-id order; wall-clock measurements are kept separate and
//!   explicitly labeled non-deterministic.
//! - [`manifest`] — a versioned JSON run manifest ([`manifest::RunManifest`])
//!   with a `deterministic` section that is byte-identical at any shard
//!   count and a `runtime` section carrying wall-clock and
//!   execution-shape fields.
//! - [`detect`] — SLO/anomaly detectors over per-window metric streams:
//!   error-budget burn (optionally correlated with network congestion
//!   episodes), tail-latency regression against a baseline manifest,
//!   retry-storm amplification, and metastable-overload collapse.
//!
//! The determinism contract of `docs/ARCHITECTURE.md` extends to this
//! crate: everything outside the manifest's `runtime` section must be
//! reproducible bit-for-bit from the master seed alone. The in-tree test
//! `crates/bench/tests/telemetry_determinism.rs` enforces it.
//!
//! [`json`] is the self-contained JSON layer both directions go through;
//! the vendored `serde` is a no-op stub (see `docs/KNOWN_ISSUES.md`), so
//! the manifest format is written and parsed here, deterministically.

#![warn(missing_docs)]

pub mod detect;
pub mod json;
pub mod manifest;
pub mod telemetry;

pub use detect::{
    error_budget_burn, metastable_overload, retry_storm, tail_regression, Finding,
    OverloadDetectorConfig, RetryStormConfig, Severity, SloConfig, WindowSample,
};
pub use manifest::{LatencyQuantiles, RobustnessSection, RunManifest, MANIFEST_SCHEMA_VERSION};
pub use telemetry::{
    PhaseTimings, QueueTelemetry, ResilienceTelemetry, RunTelemetry, ShardCounters, WireTelemetry,
};
