//! Critical-path analysis of RPC trees (CRISP-style).
//!
//! The paper's related work (§6) highlights CRISP, Uber's tool for
//! finding the critical path through large RPC call graphs, as a
//! motivated direction — tail latency can only be reduced by shortening
//! the path that actually gated completion. This module computes, for a
//! sampled trace, the chain of spans that determined the root's
//! completion time, and aggregates per-method *criticality*: how much
//! wall time each method contributed to critical paths.
//!
//! The driver records, per span, its start offset and per-component
//! latencies; a child gates its parent when the child's completion is the
//! latest among the parent's blocking children (fire-and-forget spans
//! never gate).

use crate::span::{MethodId, TraceData};
use rpclens_simcore::time::SimDuration;
use std::collections::HashMap;

/// One hop on a critical path.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CriticalHop {
    /// Span index within the trace.
    pub span: u32,
    /// The method invoked.
    pub method: MethodId,
    /// Wall time this hop contributed exclusively (its completion time
    /// minus the completion of the child that gated it, i.e. its own
    /// non-overlapped share).
    pub exclusive: SimDuration,
}

/// The critical path of one trace.
#[derive(Debug, Clone)]
pub struct CriticalPath {
    /// Hops from the root down to the gating leaf.
    pub hops: Vec<CriticalHop>,
    /// Total root completion time.
    pub total: SimDuration,
}

impl CriticalPath {
    /// Computes the critical path of a trace.
    ///
    /// Walks from the root: at each span, the next hop is the blocking
    /// child whose `start_offset + total_latency` is the latest; the walk
    /// stops when no blocking child exists.
    pub fn compute(trace: &TraceData) -> CriticalPath {
        // Index children per parent.
        let mut children: HashMap<u32, Vec<u32>> = HashMap::new();
        for (i, span) in trace.spans.iter().enumerate().skip(1) {
            if span.is_root() || span.detached {
                continue;
            }
            children.entry(span.parent).or_default().push(i as u32);
        }
        let end_of = |i: u32| {
            let s = &trace.spans[i as usize];
            s.start_offset() + s.total_latency()
        };
        let mut hops = Vec::new();
        let mut current = 0u32;
        // Effective ends are clamped to be non-increasing along the path
        // so the exclusive times always telescope to the root's total,
        // even on hand-built traces where a child nominally outlives its
        // parent.
        let mut ceiling = end_of(0);
        loop {
            let gating_child = children
                .get(&current)
                .and_then(|kids| kids.iter().copied().max_by_key(|&k| end_of(k)));
            let own_end = end_of(current).min(ceiling);
            let child_end = gating_child
                .map(|c| end_of(c).min(own_end))
                .unwrap_or(SimDuration::ZERO);
            // Exclusive time: whatever of this span's span-of-control was
            // not overlapped by the gating child.
            let exclusive =
                SimDuration::from_nanos(own_end.as_nanos().saturating_sub(child_end.as_nanos()));
            hops.push(CriticalHop {
                span: current,
                method: trace.spans[current as usize].method,
                exclusive,
            });
            ceiling = child_end;
            match gating_child {
                Some(c) => current = c,
                None => break,
            }
        }
        CriticalPath {
            total: end_of(0),
            hops,
        }
    }

    /// Path depth (number of hops).
    pub fn len(&self) -> usize {
        self.hops.len()
    }

    /// Whether the path is empty (never true post-construction).
    pub fn is_empty(&self) -> bool {
        self.hops.is_empty()
    }

    /// The exclusive times sum to the root's completion time.
    pub fn exclusive_sum(&self) -> SimDuration {
        self.hops.iter().map(|h| h.exclusive).sum()
    }
}

/// Per-method criticality aggregated over many traces.
#[derive(Debug, Default)]
pub struct CriticalityReport {
    /// Method -> (times on a critical path, total exclusive seconds).
    by_method: HashMap<MethodId, (u64, f64)>,
    /// Total critical-path seconds across traces.
    total_secs: f64,
    /// Number of traces analysed.
    traces: u64,
}

impl CriticalityReport {
    /// Builds a report over an iterator of traces.
    pub fn compute<'a, I: IntoIterator<Item = &'a TraceData>>(traces: I) -> CriticalityReport {
        let mut report = CriticalityReport::default();
        for trace in traces {
            let path = CriticalPath::compute(trace);
            for hop in &path.hops {
                let entry = report.by_method.entry(hop.method).or_insert((0, 0.0));
                entry.0 += 1;
                entry.1 += hop.exclusive.as_secs_f64();
            }
            report.total_secs += path.total.as_secs_f64();
            report.traces += 1;
        }
        report
    }

    /// The fraction of all critical-path time attributable to `method`.
    pub fn criticality(&self, method: MethodId) -> f64 {
        if self.total_secs <= 0.0 {
            return 0.0;
        }
        self.by_method
            .get(&method)
            .map(|(_, secs)| secs / self.total_secs)
            .unwrap_or(0.0)
    }

    /// Methods ranked by critical-path time, descending.
    pub fn ranked(&self) -> Vec<(MethodId, f64)> {
        let mut out: Vec<(MethodId, f64)> = self
            .by_method
            .iter()
            .map(|(&m, &(_, secs))| (m, secs))
            .collect();
        out.sort_by(|a, b| b.1.partial_cmp(&a.1).expect("finite").then(a.0.cmp(&b.0)));
        out
    }

    /// Number of traces analysed.
    pub fn traces(&self) -> u64 {
        self.traces
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::span::{ServiceId, SpanBuilder, SpanRecord};
    use rpclens_netsim::topology::ClusterId;
    use rpclens_rpcstack::component::{LatencyBreakdown, LatencyComponent};
    use rpclens_simcore::time::SimTime;

    fn span(
        method: u32,
        parent: Option<u32>,
        start_us: u64,
        app_us: u64,
        detached: bool,
    ) -> SpanRecord {
        let mut b = LatencyBreakdown::new();
        b.set(
            LatencyComponent::ServerApplication,
            SimDuration::from_micros(app_us),
        );
        let builder = SpanBuilder::new(MethodId(method), ServiceId(0), ClusterId(0), ClusterId(0))
            .start_offset(SimDuration::from_micros(start_us))
            .breakdown(b)
            .detached(detached);
        match parent {
            Some(p) => builder.parent(p),
            None => builder,
        }
        .build()
    }

    #[test]
    fn single_span_path_is_the_root() {
        let t = TraceData::new(SimTime::ZERO, vec![span(1, None, 0, 1000, false)]);
        let p = CriticalPath::compute(&t);
        assert_eq!(p.len(), 1);
        assert_eq!(p.hops[0].method, MethodId(1));
        assert_eq!(p.total, SimDuration::from_micros(1000));
        assert_eq!(p.exclusive_sum(), p.total);
    }

    #[test]
    fn slowest_child_gates() {
        // Root 0..5000us with two children: fast (100..600) and slow
        // (100..4100).
        let t = TraceData::new(
            SimTime::ZERO,
            vec![
                span(1, None, 0, 5000, false),
                span(2, Some(0), 100, 500, false),
                span(3, Some(0), 100, 4000, false),
            ],
        );
        let p = CriticalPath::compute(&t);
        let methods: Vec<u32> = p.hops.iter().map(|h| h.method.0).collect();
        assert_eq!(methods, vec![1, 3]);
        // Exclusive shares: child 3 covers 4100us of the root's 5000us.
        assert_eq!(p.hops[1].exclusive, SimDuration::from_micros(4100));
        assert_eq!(p.hops[0].exclusive, SimDuration::from_micros(900));
        assert_eq!(p.exclusive_sum(), p.total);
    }

    #[test]
    fn detached_children_never_gate() {
        // The detached child ends long after the root; the path must
        // ignore it.
        let t = TraceData::new(
            SimTime::ZERO,
            vec![
                span(1, None, 0, 1000, false),
                span(2, Some(0), 100, 50_000, true),
            ],
        );
        let p = CriticalPath::compute(&t);
        assert_eq!(p.len(), 1);
        assert_eq!(p.total, SimDuration::from_micros(1000));
    }

    #[test]
    fn deep_chain_is_followed() {
        let t = TraceData::new(
            SimTime::ZERO,
            vec![
                span(1, None, 0, 4000, false),
                span(2, Some(0), 100, 3000, false),
                span(3, Some(1), 200, 2000, false),
                span(4, Some(2), 300, 1000, false),
            ],
        );
        let p = CriticalPath::compute(&t);
        assert_eq!(p.len(), 4);
        assert_eq!(
            p.hops.iter().map(|h| h.method.0).collect::<Vec<_>>(),
            vec![1, 2, 3, 4]
        );
        assert_eq!(p.exclusive_sum(), p.total);
    }

    #[test]
    fn report_aggregates_criticality() {
        let traces: Vec<TraceData> = (0..10)
            .map(|_| {
                TraceData::new(
                    SimTime::ZERO,
                    vec![
                        span(1, None, 0, 5000, false),
                        span(2, Some(0), 100, 500, false),
                        span(3, Some(0), 100, 4000, false),
                    ],
                )
            })
            .collect();
        let report = CriticalityReport::compute(traces.iter());
        assert_eq!(report.traces(), 10);
        // Method 3 carries 4100/5000 of every path.
        assert!((report.criticality(MethodId(3)) - 0.82).abs() < 1e-9);
        assert!((report.criticality(MethodId(1)) - 0.18).abs() < 1e-9);
        assert_eq!(report.criticality(MethodId(2)), 0.0);
        let ranked = report.ranked();
        assert_eq!(ranked[0].0, MethodId(3));
    }

    #[test]
    fn exclusive_times_partition_the_total_on_random_trees() {
        use rpclens_simcore::rng::Prng;
        let mut rng = Prng::seed_from(3);
        for _ in 0..50 {
            let n = 2 + rng.index(40);
            let mut spans = vec![span(0, None, 0, 50_000, false)];
            for i in 1..n {
                let parent = rng.index(i) as u32;
                let pstart = spans[parent as usize].start_offset().as_micros_f64() as u64;
                spans.push(span(
                    i as u32,
                    Some(parent),
                    pstart + 10 + rng.next_below(100),
                    rng.next_below(20_000),
                    false,
                ));
            }
            let t = TraceData::new(SimTime::ZERO, spans);
            let p = CriticalPath::compute(&t);
            assert_eq!(p.exclusive_sum(), p.total, "exclusive times partition");
            // Path length is bounded by the tree size.
            assert!(p.len() <= n);
        }
    }
}
