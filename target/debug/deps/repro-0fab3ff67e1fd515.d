/root/repo/target/debug/deps/repro-0fab3ff67e1fd515.d: crates/bench/src/bin/repro.rs Cargo.toml

/root/repo/target/debug/deps/librepro-0fab3ff67e1fd515.rmeta: crates/bench/src/bin/repro.rs Cargo.toml

crates/bench/src/bin/repro.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
