//! Cluster and machine model for the fleet simulator.
//!
//! RPC servers in the study run as replicated tasks on shared machines, and
//! the paper shows (Figs. 17–18, Table 2) that *exogenous* machine state —
//! CPU utilization, memory bandwidth, long scheduler wakeups, and cycles
//! per instruction — drives much of the latency variation between and
//! within clusters. This crate models:
//!
//! - [`exogenous`]: deterministic diurnal processes for the four exogenous
//!   variables of Table 2, queryable at any simulated instant.
//! - [`machine`]: a machine whose execution speed and scheduler wakeup
//!   latency are coupled to its exogenous state.
//! - [`pool`]: an exact FIFO M/G/k worker pool producing server queueing
//!   delay.
//! - [`accounting`]: windowed CPU usage accounting for the load-balancing
//!   analysis (Fig. 22).
//! - [`site`]: dense `(u16, u16)`-keyed lookup tables so the driver's
//!   per-span site access is one vector index instead of a hash probe.
//! - [`faults`]: trajectory-stored failure episodes (crash/restart churn,
//!   drains, partitions, overload surges) queryable at any instant, the
//!   substrate of the fleet driver's fault-injection plane.

pub mod accounting;
pub mod exogenous;
pub mod faults;
pub mod machine;
pub mod mgk;
pub mod pool;
pub mod site;

/// Convenience re-exports of the most commonly used cluster types.
pub mod prelude {
    pub use crate::{
        accounting::UsageAccumulator,
        exogenous::{ExogenousProfile, ExogenousVars},
        faults::{EpisodeParams, EpisodeProcess},
        machine::{Machine, MachineConfig, MachineId},
        mgk::{erlang_c, QueueModel},
        pool::WorkerPool,
        site::DensePairMap,
    };
}
