/root/repo/target/release/deps/rpclens_trace-fd3f7574fb5cd053.d: crates/trace/src/lib.rs crates/trace/src/collector.rs crates/trace/src/critical_path.rs crates/trace/src/export.rs crates/trace/src/query.rs crates/trace/src/span.rs crates/trace/src/tree.rs

/root/repo/target/release/deps/rpclens_trace-fd3f7574fb5cd053: crates/trace/src/lib.rs crates/trace/src/collector.rs crates/trace/src/critical_path.rs crates/trace/src/export.rs crates/trace/src/query.rs crates/trace/src/span.rs crates/trace/src/tree.rs

crates/trace/src/lib.rs:
crates/trace/src/collector.rs:
crates/trace/src/critical_path.rs:
crates/trace/src/export.rs:
crates/trace/src/query.rs:
crates/trace/src/span.rs:
crates/trace/src/tree.rs:
