//! Driver root-throughput benchmark: the tracked perf baseline.
//!
//! Measures end-to-end roots/sec of `run_fleet` (catalog + workload
//! generation + tree expansion + merge + TSDB flush) across the scale
//! presets, in two execution shapes per preset:
//!
//! - `{preset}_1shard` — the canonical sequential number (1 shard,
//!   1 thread) that `BENCH_driver.json` tracks release over release;
//! - `{preset}_{N}thread` — N worker-pool threads over one-shard-per-core
//!   (or N shards if the host has fewer cores), the multi-core scaling
//!   point. On a single-core host this measures pool overhead, not
//!   speedup; `docs/PERFORMANCE.md` explains how to read both cases.
//!
//! Every configuration is bit-identical in output at any (shards,
//! threads), so this bench measures pure wall-clock cost.
//!
//! Environment knobs:
//!
//! - `DRIVER_BENCH_PRESET=smoke|default|paper|fleet|both|all` restricts
//!   the preset list (`both` = smoke+default, the pre-`fleet` default;
//!   CI's non-gating job uses `smoke`). Preset names resolve through
//!   `rpclens_bench::scale_by_name`, the same table the `repro` binary
//!   parses `--scale` with.
//! - `DRIVER_BENCH_THREADS=1,4,8` overrides the thread counts measured
//!   per preset (default: {2,4,8} for the `paper` preset — the tracked
//!   multi-core scaling curve — and the host's core count elsewhere,
//!   when more than one).
//!
//! Refreshing the committed baseline (see README "Benchmarks"):
//!
//! ```text
//! cargo bench -p rpclens-bench --bench driver_throughput -- \
//!     --bench-json /tmp/driver_bench.json
//! ```
//!
//! then fold the emitted array into the `current` section of
//! `BENCH_driver.json`. The `baseline` section is the pre-optimization
//! reference and is only rewritten when a PR intentionally re-baselines.

use criterion::{black_box, criterion_group, criterion_main, Criterion, Throughput};
use rpclens_bench::scale_by_name;
use rpclens_fleet::driver::{run_fleet, FleetConfig, SimScale};

/// Presets to measure; see the module docs for the env contract. Single
/// preset names go through [`scale_by_name`] — the one preset table the
/// `repro` binary shares — so the two frontends cannot drift.
fn presets() -> Vec<SimScale> {
    match std::env::var("DRIVER_BENCH_PRESET").as_deref() {
        Ok("all") => ["smoke", "default", "paper", "fleet"]
            .iter()
            .map(|name| scale_by_name(name).expect("known preset"))
            .collect(),
        Ok(name) => match scale_by_name(name) {
            Some(scale) => vec![scale],
            // Unknown names (and the explicit `both`) fall back to the
            // historical smoke+default pair.
            None => vec![SimScale::smoke(), SimScale::default_scale()],
        },
        Err(_) => vec![SimScale::smoke(), SimScale::default_scale()],
    }
}

/// Thread counts to measure beyond the sequential baseline.
///
/// The `paper` preset always measures the {2,4,8} curve — the tracked
/// multi-thread scaling entries in `BENCH_driver.json` — while other
/// presets default to the host's core count.
fn thread_counts(preset: &str, cores: usize) -> Vec<usize> {
    if let Ok(spec) = std::env::var("DRIVER_BENCH_THREADS") {
        return spec
            .split(',')
            .filter_map(|s| s.trim().parse().ok())
            .filter(|&t| t > 0)
            .collect();
    }
    if preset == "paper" {
        vec![2, 4, 8]
    } else if cores > 1 {
        vec![cores]
    } else {
        Vec::new()
    }
}

fn bench_driver_throughput(c: &mut Criterion) {
    let cores = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    let mut g = c.benchmark_group("driver_throughput");
    g.sample_size(10);
    for scale in presets() {
        g.throughput(Throughput::Elements(scale.roots));
        // The canonical single-shard, single-thread number (the tracked
        // baseline) ...
        g.bench_function(format!("{}_1shard", scale.name), |b| {
            b.iter(|| {
                let mut config = FleetConfig::at_scale(scale.clone());
                config.shards = 1;
                config.threads = 1;
                black_box(run_fleet(config))
            })
        });
        // ... plus the worker-pool configurations: N threads over
        // one-shard-per-core (at least N shards so every thread has
        // work to claim).
        for threads in thread_counts(scale.name, cores) {
            let shards = cores.max(threads);
            g.bench_function(format!("{}_{}thread", scale.name, threads), |b| {
                b.iter(|| {
                    let mut config = FleetConfig::at_scale(scale.clone());
                    config.shards = shards;
                    config.threads = threads;
                    black_box(run_fleet(config))
                })
            });
        }
    }
    g.finish();
}

criterion_group!(benches, bench_driver_throughput);
criterion_main!(benches);
