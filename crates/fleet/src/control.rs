//! The closed-loop control plane: deterministic controllers evaluated on
//! window boundaries.
//!
//! Under the open-loop fault plane the fleet never fights back — overload
//! fronts shed until the episode ends on its own. This module adds the
//! three reactions production fleets mount, each a *pure function of the
//! seed and the incident trajectories* so that every simulation shard
//! reconstructs the identical controller timeline (shards run
//! independently and merge; a controller that reacted to per-shard
//! observed counters would break the bit-identical-at-any-shard-count
//! contract):
//!
//! - **Autoscaler** ([`AutoscalerSpec`]): per-cluster capacity, stepped
//!   up after sustained overload at consecutive window boundaries and
//!   decayed back when the condition clears. Capacity divides the
//!   effective overload factor, feeding back into utilization and
//!   shedding.
//! - **Load-balancer weight shift** (`lb_shift`): paths whose region
//!   pair is cut or browned out at the window boundary are steered away
//!   from, through the same placement re-pick as retry failover
//!   (`Avoid`).
//! - **Bounded admission queues** ([`AdmissionSpec`]): while a site is
//!   overloaded, admission replaces the ambient shed rule — waits past
//!   the shed bound are rejected (`NoResource`), waits past the caller's
//!   patience are abandoned (`Aborted`), and the pool's utilization is
//!   capped at `util_cap` (the queue is bounded, so it cannot saturate).
//!   Every offered call resolves to exactly one verdict; the
//!   conservation proptest pins `admitted + shed + abandoned == offered`.
//!
//! Controller decisions are sampled at window boundaries (the TSDB
//! sample period) and held for the whole window, mirroring how real
//! control loops act on aggregated telemetry rather than per-request
//! state. See `docs/ROBUSTNESS.md` for the closed- vs open-loop
//! comparison.

use crate::faults::FaultScenario;
use crate::incident::{IncidentPlane, IncidentSpec};
use rpclens_simcore::time::{SimDuration, SimTime};
use std::collections::HashMap;

/// Autoscaler configuration: capacity added under sustained overload.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AutoscalerSpec {
    /// Consecutive overloaded window boundaries before scaling starts
    /// (clamped to at least 1).
    pub sustain_windows: u32,
    /// Capacity factor added per sustained window (and removed per calm
    /// window while above 1.0).
    pub step: f64,
    /// Ceiling on the capacity factor (must be at least 1.0).
    pub max_factor: f64,
}

/// Bounded admission queue configuration for overloaded sites.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AdmissionSpec {
    /// Queue waits beyond this bound are rejected at admission
    /// (`NoResource`).
    pub shed_wait: SimDuration,
    /// Waits beyond the caller's patience are abandoned (`Aborted`).
    /// Should exceed `shed_wait`; abandonment takes precedence.
    pub abandon_wait: SimDuration,
    /// Utilization cap the bounded queue enforces on the pool (the
    /// shed/abandoned fraction never reaches the workers).
    pub util_cap: f64,
}

/// Which controllers a scenario runs.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ControlSpec {
    /// Autoscaler reacting to sustained incident overload.
    pub autoscaler: Option<AutoscalerSpec>,
    /// Load-balancer weight shift away from cut/browned-out region
    /// pairs.
    pub lb_shift: bool,
    /// Bounded admission queues on overloaded sites.
    pub admission: Option<AdmissionSpec>,
}

/// One capacity update: `prev` is the factor of the previous window,
/// `streak` the number of consecutive overloaded boundaries including the
/// current one. Pure, so the autoscaler-monotonicity proptest can drive
/// it with arbitrary condition sequences.
pub fn step_capacity(spec: &AutoscalerSpec, prev: f64, streak: u32) -> f64 {
    if streak >= spec.sustain_windows.max(1) {
        (prev + spec.step).min(spec.max_factor.max(1.0))
    } else {
        (prev - spec.step).max(1.0)
    }
}

/// The verdict of one admission decision.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AdmissionVerdict {
    /// The call enters the bounded queue and is served.
    Admitted,
    /// The queue bound rejects the call at admission (`NoResource`).
    Shed,
    /// The caller's patience expires while queued (`Aborted`).
    Abandoned,
}

/// Classifies one offered call by its sampled queue wait. Pure, total:
/// every offered call gets exactly one verdict.
pub fn admission_verdict(spec: &AdmissionSpec, queue_wait: SimDuration) -> AdmissionVerdict {
    if queue_wait > spec.abandon_wait {
        AdmissionVerdict::Abandoned
    } else if queue_wait > spec.shed_wait {
        AdmissionVerdict::Shed
    } else {
        AdmissionVerdict::Admitted
    }
}

/// Running conservation tally over admission verdicts.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct AdmissionTally {
    /// Calls offered to the bounded queue.
    pub offered: u64,
    /// Calls admitted and served.
    pub admitted: u64,
    /// Calls rejected at admission.
    pub shed: u64,
    /// Calls abandoned while queued.
    pub abandoned: u64,
}

impl AdmissionTally {
    /// Records one verdict.
    pub fn record(&mut self, verdict: AdmissionVerdict) {
        self.offered += 1;
        match verdict {
            AdmissionVerdict::Admitted => self.admitted += 1,
            AdmissionVerdict::Shed => self.shed += 1,
            AdmissionVerdict::Abandoned => self.abandoned += 1,
        }
    }

    /// The conservation law every tally must satisfy.
    pub fn conserves(&self) -> bool {
        self.admitted + self.shed + self.abandoned == self.offered
    }
}

/// Per-cluster autoscaler state: the capacity factor of every window
/// evaluated so far, extended lazily and deterministically.
#[derive(Debug, Default)]
struct CapacityTimeline {
    factors: Vec<f64>,
    streak: u32,
}

/// The per-shard control plane.
///
/// Owns a *private* copy of the incident plane: controller decisions
/// read incident trajectories (which are pure functions of the seed), so
/// the controller timeline is identical in every shard no matter which
/// calls each shard simulates. Queries never consume caller draws.
#[derive(Debug)]
pub struct ControlPlane {
    spec: ControlSpec,
    window_ns: u64,
    incidents: Option<IncidentPlane>,
    capacity: HashMap<u16, CapacityTimeline>,
}

impl ControlPlane {
    /// Materialises a scenario's control spec. Returns `None` when the
    /// scenario runs no controllers, so the driver's hot path gates on
    /// plane presence alone.
    pub fn new(
        scenario: &FaultScenario,
        seed: u64,
        region_of: Vec<u16>,
        window: SimDuration,
    ) -> Option<Self> {
        let spec = scenario.control?;
        let incidents = scenario
            .incidents
            .as_ref()
            .and_then(|i| IncidentPlane::new(i, seed, region_of));
        Some(ControlPlane {
            spec,
            window_ns: window.as_nanos().max(1),
            incidents,
            capacity: HashMap::new(),
        })
    }

    /// Builds directly from parts (used by the timeline renderer and
    /// tests).
    pub fn from_parts(
        spec: ControlSpec,
        incidents: Option<&IncidentSpec>,
        seed: u64,
        region_of: Vec<u16>,
        window: SimDuration,
    ) -> Self {
        ControlPlane {
            spec,
            window_ns: window.as_nanos().max(1),
            incidents: incidents.and_then(|i| IncidentPlane::new(i, seed, region_of)),
            capacity: HashMap::new(),
        }
    }

    /// The admission-queue configuration, if one runs.
    pub fn admission(&self) -> Option<AdmissionSpec> {
        self.spec.admission
    }

    /// The window index containing `now`.
    fn window_of(&self, now: SimTime) -> usize {
        (now.as_nanos() / self.window_ns) as usize
    }

    /// The boundary instant opening window `w`.
    fn boundary(&self, w: usize) -> SimTime {
        SimTime::from_nanos(w as u64 * self.window_ns)
    }

    /// The autoscaler's capacity factor for `cluster` during the window
    /// containing `now` (1.0 when no autoscaler runs). Lazily extends the
    /// per-cluster timeline: window `w`'s factor is a fold of the
    /// overload condition at boundaries `0..=w`, so it is identical in
    /// every shard regardless of query order.
    pub fn capacity_factor(&mut self, cluster: u16, now: SimTime) -> f64 {
        let Some(spec) = self.spec.autoscaler else {
            return 1.0;
        };
        let w = self.window_of(now);
        let Some(incidents) = self.incidents.as_mut() else {
            return 1.0;
        };
        let timeline = self.capacity.entry(cluster).or_default();
        while timeline.factors.len() <= w {
            let b = timeline.factors.len();
            let boundary = SimTime::from_nanos(b as u64 * self.window_ns);
            let overloaded = incidents.overload_factor(cluster, boundary).is_some();
            timeline.streak = if overloaded { timeline.streak + 1 } else { 0 };
            let prev = timeline.factors.last().copied().unwrap_or(1.0);
            timeline
                .factors
                .push(step_capacity(&spec, prev, timeline.streak));
        }
        timeline.factors[w]
    }

    /// Whether the load balancer steers away from the `a`–`b` path during
    /// the window containing `now`: true when the weight-shift controller
    /// runs and the region pair was cut or browned out at the window's
    /// opening boundary. `wan` is the caller-computed path class.
    pub fn path_degraded(&mut self, a: u16, b: u16, wan: bool, now: SimTime) -> bool {
        if !self.spec.lb_shift {
            return false;
        }
        let boundary = self.boundary(self.window_of(now));
        let Some(incidents) = self.incidents.as_mut() else {
            return false;
        };
        incidents.partition_state(a, b, wan, boundary) != crate::faults::PartitionState::Connected
    }

    /// Autoscaler activity over `[0, duration)`: `(cluster-windows above
    /// baseline capacity, peak capacity factor in permille)`. Evaluates
    /// every cluster's timeline to the end of the run.
    pub fn autoscaler_activity(&mut self, n_clusters: u16, duration: SimDuration) -> (u64, u64) {
        let end = SimTime::from_nanos(duration.as_nanos().saturating_sub(1));
        let mut scaled_windows = 0u64;
        let mut peak = 1.0f64;
        for c in 0..n_clusters {
            self.capacity_factor(c, end);
            if let Some(t) = self.capacity.get(&c) {
                scaled_windows += t.factors.iter().filter(|&&f| f > 1.0).count() as u64;
                peak = t.factors.iter().copied().fold(peak, f64::max);
            }
        }
        (scaled_windows, (peak * 1000.0).round() as u64)
    }

    /// Renders the controller timeline: one line per window with the
    /// clusters holding added capacity and the degraded region pairs the
    /// balancer avoids. Windows with no controller activity are elided.
    pub fn render_timeline(&mut self, n_clusters: u16, duration: SimDuration) -> String {
        use std::fmt::Write as _;
        let windows = (duration.as_nanos() / self.window_ns) as usize;
        let mut out = String::new();
        let _ = writeln!(
            out,
            "controller timeline ({} windows of {:.0} s):",
            windows,
            self.window_ns as f64 / 1e9
        );
        let mut active_windows = 0usize;
        for w in 0..windows {
            let mid = self.boundary(w);
            let mut scaled: Vec<(u16, f64)> = (0..n_clusters)
                .map(|c| (c, self.capacity_factor(c, mid)))
                .filter(|&(_, f)| f > 1.0)
                .collect();
            scaled.sort_by_key(|&(c, _)| c);
            let mut degraded: Vec<(u16, u16)> = Vec::new();
            for a in 0..n_clusters {
                for b in a + 1..n_clusters {
                    if self.path_degraded(a, b, true, mid) {
                        degraded.push((a, b));
                    }
                }
            }
            if scaled.is_empty() && degraded.is_empty() {
                continue;
            }
            active_windows += 1;
            let _ = write!(out, "  w{w:>3}:");
            if !scaled.is_empty() {
                let caps: Vec<String> =
                    scaled.iter().map(|(c, f)| format!("c{c}x{f:.2}")).collect();
                let _ = write!(out, " capacity[{}]", caps.join(" "));
            }
            if !degraded.is_empty() {
                // Degraded pairs are region-keyed; report the count and
                // the first few cluster pairs as representatives.
                let pairs: Vec<String> = degraded
                    .iter()
                    .take(4)
                    .map(|(a, b)| format!("{a}-{b}"))
                    .collect();
                let _ = write!(
                    out,
                    " avoid[{} pairs: {}…]",
                    degraded.len(),
                    pairs.join(" ")
                );
            }
            let _ = writeln!(out);
        }
        let _ = writeln!(out, "  {active_windows} windows with controller activity");
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::faults::{EpisodeSpec, OverloadSpec};
    use proptest::prelude::*;
    use rpclens_cluster::faults::EpisodeParams;

    fn autoscaler() -> AutoscalerSpec {
        AutoscalerSpec {
            sustain_windows: 2,
            step: 0.25,
            max_factor: 2.5,
        }
    }

    fn admission() -> AdmissionSpec {
        AdmissionSpec {
            shed_wait: SimDuration::from_millis(15),
            abandon_wait: SimDuration::from_millis(60),
            util_cap: 0.96,
        }
    }

    fn incident_spec() -> IncidentSpec {
        IncidentSpec {
            drain: None,
            surge_factor: 1.0,
            wan_cut: None,
            front: Some(OverloadSpec {
                episodes: EpisodeSpec {
                    eligible: 1.0,
                    params: EpisodeParams {
                        up_mean: SimDuration::from_hours(4),
                        down_mean: SimDuration::from_hours(2),
                    },
                },
                util_factor: 2.0,
                shed_wait: SimDuration::from_millis(15),
            }),
        }
    }

    fn plane() -> ControlPlane {
        ControlPlane::from_parts(
            ControlSpec {
                autoscaler: Some(autoscaler()),
                lb_shift: true,
                admission: Some(admission()),
            },
            Some(&incident_spec()),
            7,
            vec![0, 0, 1, 1],
            SimDuration::from_secs(1_800),
        )
    }

    #[test]
    fn capacity_rises_under_sustained_overload_and_decays_after() {
        let mut p = plane();
        let day = SimDuration::from_hours(24);
        let windows = (day.as_nanos() / p.window_ns) as usize;
        let mut factors = Vec::new();
        for w in 0..windows {
            factors.push(p.capacity_factor(0, SimTime::from_nanos(w as u64 * p.window_ns)));
        }
        assert!(factors.iter().all(|&f| (1.0..=2.5).contains(&f)));
        // With a 2 h mean front over 24 h, capacity must have moved.
        assert!(
            factors.iter().any(|&f| f > 1.0),
            "autoscaler never scaled: {factors:?}"
        );
        // Somewhere the factor decays again (front ends).
        assert!(
            factors.windows(2).any(|w| w[1] < w[0]),
            "capacity never decayed: {factors:?}"
        );
    }

    #[test]
    fn capacity_timeline_is_query_order_independent() {
        let mut fwd = plane();
        let mut rev = plane();
        let day = SimDuration::from_hours(24);
        let windows = (day.as_nanos() / fwd.window_ns) as usize;
        let recorded: Vec<f64> = (0..windows)
            .map(|w| fwd.capacity_factor(1, SimTime::from_nanos(w as u64 * fwd.window_ns)))
            .collect();
        for w in (0..windows).rev() {
            assert_eq!(
                rev.capacity_factor(1, SimTime::from_nanos(w as u64 * rev.window_ns)),
                recorded[w],
                "window {w}"
            );
        }
    }

    #[test]
    fn no_autoscaler_means_unit_capacity() {
        let mut p = ControlPlane::from_parts(
            ControlSpec {
                autoscaler: None,
                lb_shift: false,
                admission: None,
            },
            Some(&incident_spec()),
            7,
            vec![0, 0, 1, 1],
            SimDuration::from_secs(1_800),
        );
        for w in 0..48u64 {
            assert_eq!(
                p.capacity_factor(0, SimTime::from_nanos(w * 1_800_000_000_000)),
                1.0
            );
        }
    }

    #[test]
    fn admission_verdicts_follow_the_two_thresholds() {
        let spec = admission();
        assert_eq!(
            admission_verdict(&spec, SimDuration::from_millis(1)),
            AdmissionVerdict::Admitted
        );
        assert_eq!(
            admission_verdict(&spec, SimDuration::from_millis(30)),
            AdmissionVerdict::Shed
        );
        assert_eq!(
            admission_verdict(&spec, SimDuration::from_millis(90)),
            AdmissionVerdict::Abandoned
        );
    }

    #[test]
    fn timeline_render_reports_activity() {
        let mut p = plane();
        let text = p.render_timeline(4, SimDuration::from_hours(24));
        assert!(text.contains("controller timeline"));
        assert!(text.contains("windows with controller activity"));
    }

    proptest! {
        /// Satellite: admission-queue conservation — every offered call
        /// resolves to exactly one of admitted/shed/abandoned.
        #[test]
        fn admission_conserves_offered_calls(
            shed_ms in 1u64..200,
            patience_extra_ms in 0u64..500,
            waits in proptest::collection::vec(0u64..1_000_000, 1..400),
        ) {
            let spec = AdmissionSpec {
                shed_wait: SimDuration::from_millis(shed_ms),
                abandon_wait: SimDuration::from_millis(shed_ms + patience_extra_ms),
                util_cap: 0.96,
            };
            let mut tally = AdmissionTally::default();
            for w in &waits {
                tally.record(admission_verdict(&spec, SimDuration::from_micros(*w)));
            }
            prop_assert_eq!(tally.offered, waits.len() as u64);
            prop_assert!(tally.conserves());
        }

        /// Satellite: autoscaler monotonicity — capacity never leaves
        /// `[1, max_factor]`, and within any run of consecutive
        /// overloaded boundaries past the sustain threshold the factor
        /// is non-decreasing.
        #[test]
        fn autoscaler_is_monotone_under_sustained_overload(
            sustain in 1u32..5,
            step in 0.05f64..1.0,
            max_factor in 1.0f64..4.0,
            conditions in proptest::collection::vec(any::<bool>(), 1..200),
        ) {
            let spec = AutoscalerSpec { sustain_windows: sustain, step, max_factor };
            let mut prev = 1.0f64;
            let mut streak = 0u32;
            let mut factors = Vec::with_capacity(conditions.len());
            for &overloaded in &conditions {
                streak = if overloaded { streak + 1 } else { 0 };
                prev = step_capacity(&spec, prev, streak);
                factors.push((prev, streak));
            }
            for &(f, _) in &factors {
                prop_assert!((1.0..=max_factor.max(1.0)).contains(&f), "factor {} out of band", f);
            }
            for pair in factors.windows(2) {
                let (f0, _) = pair[0];
                let (f1, s1) = pair[1];
                if s1 > sustain {
                    // Both this boundary and the previous were past the
                    // sustain threshold: capacity must not decrease.
                    prop_assert!(f1 >= f0, "capacity fell {} -> {} during sustained overload", f0, f1);
                }
            }
        }
    }
}
