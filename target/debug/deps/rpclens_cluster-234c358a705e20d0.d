/root/repo/target/debug/deps/rpclens_cluster-234c358a705e20d0.d: crates/cluster/src/lib.rs crates/cluster/src/accounting.rs crates/cluster/src/exogenous.rs crates/cluster/src/machine.rs crates/cluster/src/mgk.rs crates/cluster/src/pool.rs

/root/repo/target/debug/deps/librpclens_cluster-234c358a705e20d0.rmeta: crates/cluster/src/lib.rs crates/cluster/src/accounting.rs crates/cluster/src/exogenous.rs crates/cluster/src/machine.rs crates/cluster/src/mgk.rs crates/cluster/src/pool.rs

crates/cluster/src/lib.rs:
crates/cluster/src/accounting.rs:
crates/cluster/src/exogenous.rs:
crates/cluster/src/machine.rs:
crates/cluster/src/mgk.rs:
crates/cluster/src/pool.rs:
