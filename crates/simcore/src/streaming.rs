//! Constant-memory streaming estimators.
//!
//! The monitoring pipeline cannot keep every sample: a production metrics
//! agent exports quantiles from bounded state. This module provides the
//! two classic tools — the P² quantile estimator (Jain & Chlamtac, 1985)
//! and reservoir sampling (Vitter's Algorithm R) — both deterministic
//! given their inputs, so monitoring output is reproducible.

use crate::rng::Prng;

/// The P² (piecewise-parabolic) streaming quantile estimator.
///
/// Tracks one quantile with five markers and O(1) work per observation;
/// error is typically well under 1% of the distribution's scale for
/// unimodal inputs.
///
/// # Examples
///
/// ```
/// use rpclens_simcore::streaming::P2Quantile;
///
/// let mut p95 = P2Quantile::new(0.95).unwrap();
/// for i in 1..=10_000 {
///     p95.observe(i as f64);
/// }
/// let est = p95.estimate().unwrap();
/// assert!((est - 9_500.0).abs() < 100.0, "estimate {est}");
/// ```
#[derive(Debug, Clone)]
pub struct P2Quantile {
    q: f64,
    /// Marker heights.
    heights: [f64; 5],
    /// Marker positions (1-based counts).
    positions: [f64; 5],
    /// Desired marker positions.
    desired: [f64; 5],
    /// Desired position increments per observation.
    increments: [f64; 5],
    /// Observations seen.
    count: u64,
    /// The first five observations, collected before initialisation.
    warmup: Vec<f64>,
}

impl P2Quantile {
    /// Creates an estimator for quantile `q`.
    ///
    /// # Errors
    ///
    /// Returns an error unless `0 < q < 1`.
    pub fn new(q: f64) -> Result<Self, &'static str> {
        if !(q > 0.0 && q < 1.0) {
            return Err("quantile must be in (0, 1)");
        }
        Ok(P2Quantile {
            q,
            heights: [0.0; 5],
            positions: [1.0, 2.0, 3.0, 4.0, 5.0],
            desired: [1.0, 1.0 + 2.0 * q, 1.0 + 4.0 * q, 3.0 + 2.0 * q, 5.0],
            increments: [0.0, q / 2.0, q, (1.0 + q) / 2.0, 1.0],
            count: 0,
            warmup: Vec::with_capacity(5),
        })
    }

    /// The tracked quantile level.
    pub fn q(&self) -> f64 {
        self.q
    }

    /// Number of observations seen.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Feeds one observation.
    pub fn observe(&mut self, x: f64) {
        if !x.is_finite() {
            return;
        }
        self.count += 1;
        if self.warmup.len() < 5 {
            self.warmup.push(x);
            if self.warmup.len() == 5 {
                self.warmup
                    .sort_by(|a, b| a.partial_cmp(b).expect("finite"));
                for (h, &w) in self.heights.iter_mut().zip(self.warmup.iter()) {
                    *h = w;
                }
            }
            return;
        }

        // 1. Find the cell containing x, adjusting extremes.
        let k = if x < self.heights[0] {
            self.heights[0] = x;
            0
        } else if x >= self.heights[4] {
            self.heights[4] = x;
            3
        } else {
            let mut k = 0;
            for i in 0..4 {
                if x >= self.heights[i] && x < self.heights[i + 1] {
                    k = i;
                    break;
                }
            }
            k
        };

        // 2. Shift positions above the cell; advance desired positions.
        for i in (k + 1)..5 {
            self.positions[i] += 1.0;
        }
        for i in 0..5 {
            self.desired[i] += self.increments[i];
        }

        // 3. Adjust interior markers with the parabolic formula, falling
        // back to linear when the parabola would break monotonicity.
        for i in 1..4 {
            let d = self.desired[i] - self.positions[i];
            let can_right = self.positions[i + 1] - self.positions[i] > 1.0;
            let can_left = self.positions[i - 1] - self.positions[i] < -1.0;
            if (d >= 1.0 && can_right) || (d <= -1.0 && can_left) {
                let s = d.signum();
                let parabolic = self.parabolic(i, s);
                if self.heights[i - 1] < parabolic && parabolic < self.heights[i + 1] {
                    self.heights[i] = parabolic;
                } else {
                    self.heights[i] = self.linear(i, s);
                }
                self.positions[i] += s;
            }
        }
    }

    fn parabolic(&self, i: usize, s: f64) -> f64 {
        let (qm, q0, qp) = (self.heights[i - 1], self.heights[i], self.heights[i + 1]);
        let (nm, n0, np) = (
            self.positions[i - 1],
            self.positions[i],
            self.positions[i + 1],
        );
        q0 + s / (np - nm)
            * ((n0 - nm + s) * (qp - q0) / (np - n0) + (np - n0 - s) * (q0 - qm) / (n0 - nm))
    }

    fn linear(&self, i: usize, s: f64) -> f64 {
        let j = (i as f64 + s) as usize;
        self.heights[i]
            + s * (self.heights[j] - self.heights[i]) / (self.positions[j] - self.positions[i])
    }

    /// The current estimate, or `None` before five observations.
    pub fn estimate(&self) -> Option<f64> {
        if self.count == 0 {
            return None;
        }
        if self.warmup.len() < 5 {
            // Exact small-sample quantile.
            let mut sorted = self.warmup.clone();
            sorted.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
            let idx = ((sorted.len() - 1) as f64 * self.q).round() as usize;
            return sorted.get(idx).copied();
        }
        Some(self.heights[2])
    }
}

/// Fixed-size uniform reservoir sample (Algorithm R).
///
/// # Examples
///
/// ```
/// use rpclens_simcore::streaming::Reservoir;
/// use rpclens_simcore::rng::Prng;
///
/// let mut rng = Prng::seed_from(1);
/// let mut r = Reservoir::new(100);
/// for i in 0..100_000u64 {
///     r.observe(i as f64, &mut rng);
/// }
/// assert_eq!(r.samples().len(), 100);
/// ```
#[derive(Debug, Clone)]
pub struct Reservoir {
    capacity: usize,
    samples: Vec<f64>,
    seen: u64,
}

impl Reservoir {
    /// Creates a reservoir holding up to `capacity` samples.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "reservoir needs capacity");
        Reservoir {
            capacity,
            samples: Vec::with_capacity(capacity),
            seen: 0,
        }
    }

    /// Feeds one observation.
    pub fn observe(&mut self, x: f64, rng: &mut Prng) {
        self.seen += 1;
        if self.samples.len() < self.capacity {
            self.samples.push(x);
        } else {
            let j = rng.next_below(self.seen) as usize;
            if j < self.capacity {
                self.samples[j] = x;
            }
        }
    }

    /// The retained samples (unordered).
    pub fn samples(&self) -> &[f64] {
        &self.samples
    }

    /// Total observations fed.
    pub fn seen(&self) -> u64 {
        self.seen
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dist::{LogNormal, Sample};
    use crate::stats::{percentile, sorted_finite};
    use proptest::prelude::*;

    #[test]
    fn rejects_degenerate_quantiles() {
        assert!(P2Quantile::new(0.0).is_err());
        assert!(P2Quantile::new(1.0).is_err());
        assert!(P2Quantile::new(0.5).is_ok());
    }

    #[test]
    fn small_samples_are_exact_ish() {
        let mut p = P2Quantile::new(0.5).unwrap();
        assert_eq!(p.estimate(), None);
        p.observe(10.0);
        p.observe(20.0);
        p.observe(30.0);
        let est = p.estimate().unwrap();
        assert_eq!(est, 20.0);
        assert_eq!(p.count(), 3);
    }

    #[test]
    fn median_of_uniform_stream() {
        let mut p = P2Quantile::new(0.5).unwrap();
        let mut rng = Prng::seed_from(1);
        for _ in 0..100_000 {
            p.observe(rng.next_f64());
        }
        let est = p.estimate().unwrap();
        assert!((est - 0.5).abs() < 0.01, "median {est}");
    }

    #[test]
    fn p99_of_lognormal_stream_matches_exact() {
        let d = LogNormal::from_median_sigma(1000.0, 1.0).unwrap();
        let mut rng = Prng::seed_from(2);
        let mut p = P2Quantile::new(0.99).unwrap();
        let mut all = Vec::new();
        for _ in 0..200_000 {
            let x = d.sample(&mut rng);
            p.observe(x);
            all.push(x);
        }
        let exact = percentile(&sorted_finite(all), 0.99).unwrap();
        let est = p.estimate().unwrap();
        assert!(
            (est - exact).abs() / exact < 0.08,
            "P2 {est} vs exact {exact}"
        );
    }

    #[test]
    fn non_finite_observations_are_ignored() {
        let mut p = P2Quantile::new(0.5).unwrap();
        for x in [1.0, f64::NAN, 2.0, f64::INFINITY, 3.0] {
            p.observe(x);
        }
        assert_eq!(p.count(), 3);
        assert_eq!(p.estimate(), Some(2.0));
    }

    #[test]
    fn reservoir_is_uniform() {
        // Feed 0..10_000; the mean of retained samples should approach
        // the stream mean.
        let mut rng = Prng::seed_from(3);
        let mut means = Vec::new();
        for seed in 0..50u64 {
            let mut r = Reservoir::new(64);
            let mut local = Prng::seed_from(seed);
            for i in 0..10_000u64 {
                r.observe(i as f64, &mut local);
            }
            means.push(r.samples().iter().sum::<f64>() / 64.0);
            let _ = &mut rng;
        }
        let grand = means.iter().sum::<f64>() / means.len() as f64;
        assert!((grand - 4999.5).abs() < 300.0, "grand mean {grand}");
    }

    #[test]
    fn reservoir_counts_and_caps() {
        let mut rng = Prng::seed_from(4);
        let mut r = Reservoir::new(10);
        for i in 0..5u64 {
            r.observe(i as f64, &mut rng);
        }
        assert_eq!(r.samples().len(), 5);
        for i in 0..100u64 {
            r.observe(i as f64, &mut rng);
        }
        assert_eq!(r.samples().len(), 10);
        assert_eq!(r.seen(), 105);
    }

    #[test]
    #[should_panic(expected = "capacity")]
    fn zero_capacity_panics() {
        let _ = Reservoir::new(0);
    }

    proptest! {
        #[test]
        fn p2_estimate_stays_within_observed_range(
            values in proptest::collection::vec(-1e6f64..1e6, 6..300),
            q in 0.05f64..0.95,
        ) {
            let mut p = P2Quantile::new(q).unwrap();
            for &v in &values {
                p.observe(v);
            }
            let est = p.estimate().unwrap();
            let lo = values.iter().cloned().fold(f64::MAX, f64::min);
            let hi = values.iter().cloned().fold(f64::MIN, f64::max);
            prop_assert!(est >= lo - 1e-9 && est <= hi + 1e-9, "{est} not in [{lo}, {hi}]");
        }

        #[test]
        fn markers_stay_sorted(values in proptest::collection::vec(0.0f64..1e3, 10..500)) {
            let mut p = P2Quantile::new(0.9).unwrap();
            for &v in &values {
                p.observe(v);
            }
            // Internal invariant: marker heights are non-decreasing.
            for w in p.heights.windows(2) {
                prop_assert!(w[0] <= w[1] + 1e-9);
            }
        }
    }
}
