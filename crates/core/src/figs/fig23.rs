//! Fig. 23: relative percentage of RPC error types.
//!
//! Paper anchors: 1.9% of all RPCs error. "Cancelled" (mostly hedging) is
//! 45% of errors by count but 55% of wasted cycles; "entity not found"
//! is ~20% of both; the remainder spreads over resource, permission,
//! deadline, and availability classes.

use crate::check::ExpectationSet;
use crate::render::{fmt_pct, TextTable};
use rpclens_fleet::driver::FleetRun;
use rpclens_rpcstack::error::ErrorKind;

/// The computed figure.
#[derive(Debug)]
pub struct Fig23 {
    /// Fleet error rate.
    pub error_rate: f64,
    /// `(kind, count share, cycle share)` sorted by count share.
    pub kinds: Vec<(ErrorKind, f64, f64)>,
}

/// Computes the figure from the error accounting.
pub fn compute(run: &FleetRun) -> Fig23 {
    let kinds = run
        .errors
        .kinds_by_count()
        .into_iter()
        .map(|(k, _)| (k, run.errors.count_share(k), run.errors.cycle_share(k)))
        .collect();
    Fig23 {
        error_rate: run.errors.error_rate(),
        kinds,
    }
}

/// Renders the figure.
pub fn render(fig: &Fig23) -> String {
    let mut t = TextTable::new(&["error", "count share", "wasted-cycle share"]);
    for (k, c, cy) in &fig.kinds {
        t.row(vec![k.label().to_string(), fmt_pct(*c), fmt_pct(*cy)]);
    }
    format!(
        "Fig. 23 — RPC error types (fleet error rate {})\n{}",
        fmt_pct(fig.error_rate),
        t.render()
    )
}

/// Paper-vs-measured checks.
pub fn checks(fig: &Fig23) -> ExpectationSet {
    let mut s = ExpectationSet::new();
    s.add(
        "fig23.error_rate",
        "1.9% of all RPCs result in errors",
        fig.error_rate,
        0.008,
        0.035,
    );
    let share = |kind: ErrorKind| {
        fig.kinds
            .iter()
            .find(|(k, _, _)| *k == kind)
            .map(|(_, c, cy)| (*c, *cy))
            .unwrap_or((0.0, 0.0))
    };
    let (cancel_count, cancel_cycles) = share(ErrorKind::Cancelled);
    s.add(
        "fig23.cancelled_count",
        "Cancelled is 45% of errors by count",
        cancel_count,
        0.3,
        0.6,
    );
    s.add(
        "fig23.cancelled_cycles",
        "Cancelled is 55% of wasted cycles (out-sized cost)",
        cancel_cycles,
        0.35,
        0.8,
    );
    s.add(
        "fig23.cancelled_outsized",
        "cancellations cost more cycles per error than average",
        cancel_cycles / cancel_count.max(1e-9),
        1.0,
        f64::INFINITY,
    );
    let (nf_count, _) = share(ErrorKind::EntityNotFound);
    s.add(
        "fig23.entity_not_found",
        "entity-not-found is ~20% of errors",
        nf_count,
        0.1,
        0.35,
    );
    // Cancelled is the most common class.
    s.add(
        "fig23.cancelled_leads",
        "Cancelled is the most common error type",
        (fig.kinds.first().map(|(k, _, _)| *k) == Some(ErrorKind::Cancelled)) as u8 as f64,
        1.0,
        1.0,
    );
    s
}

/// Reconciliation checks for a *causal* fault-scenario run.
///
/// Under a fault scenario the mechanical classes (`Unavailable`,
/// `NoResource`, `DeadlineExceeded`) come from failure episodes and the
/// executed resilience loop rather than a static draw, and only the
/// semantic residual is still drawn statistically. These checks assert
/// the aggregate taxonomy still reconciles with Fig. 23: same anchors,
/// wider bands (the tolerance documented in `docs/KNOWN_ISSUES.md`),
/// because episode exposure varies with seed and scenario.
pub fn causal_checks(fig: &Fig23) -> ExpectationSet {
    let mut s = ExpectationSet::new();
    s.add(
        "fig23.causal.error_rate",
        "fleet error rate stays near the 1.9% anchor under causal faults",
        fig.error_rate,
        0.008,
        0.045,
    );
    let share = |kind: ErrorKind| {
        fig.kinds
            .iter()
            .find(|(k, _, _)| *k == kind)
            .map(|(_, c, cy)| (*c, *cy))
            .unwrap_or((0.0, 0.0))
    };
    s.add(
        "fig23.causal.cancelled_leads",
        "Cancelled is still the most common error type",
        (fig.kinds.first().map(|(k, _, _)| *k) == Some(ErrorKind::Cancelled)) as u8 as f64,
        1.0,
        1.0,
    );
    s.add(
        "fig23.causal.unavailable_present",
        "Unavailable errors now have causal origins (crash/drain/partition)",
        share(ErrorKind::Unavailable).0,
        0.0005,
        0.45,
    );
    s.add(
        "fig23.causal.entity_not_found",
        "entity-not-found (residual semantic class) stays near ~20%",
        share(ErrorKind::EntityNotFound).0,
        0.05,
        0.4,
    );
    s.add(
        "fig23.causal.cancelled_outsized",
        "cancellations still cost more cycles per error than average",
        share(ErrorKind::Cancelled).1 / share(ErrorKind::Cancelled).0.max(1e-9),
        1.0,
        f64::INFINITY,
    );
    s
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::common::testrun::shared;

    #[test]
    fn checks_pass_on_test_run() {
        let fig = compute(shared());
        let c = checks(&fig);
        assert!(c.all_passed(), "{c}");
    }

    #[test]
    fn shares_sum_to_one() {
        let fig = compute(shared());
        let counts: f64 = fig.kinds.iter().map(|(_, c, _)| c).sum();
        let cycles: f64 = fig.kinds.iter().map(|(_, _, cy)| cy).sum();
        assert!((counts - 1.0).abs() < 1e-9, "count shares sum {counts}");
        assert!((cycles - 1.0).abs() < 1e-9, "cycle shares sum {cycles}");
    }

    #[test]
    fn all_injected_kinds_appear() {
        let fig = compute(shared());
        // All eight error kinds should occur at fleet scale.
        assert!(fig.kinds.len() >= 7, "{} kinds", fig.kinds.len());
    }
}
