/root/repo/target/release/deps/rpclens_profiler-37b6a972c496653f.d: crates/profiler/src/lib.rs

/root/repo/target/release/deps/rpclens_profiler-37b6a972c496653f: crates/profiler/src/lib.rs

crates/profiler/src/lib.rs:
