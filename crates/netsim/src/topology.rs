//! Fleet topology: regions, datacenters, and clusters.
//!
//! The unit of placement in the study is the *cluster* (a set of co-located
//! machines sharing a fabric); clusters live in datacenters, datacenters in
//! geographic regions. [`PathClass`] captures the distance classes used by
//! Fig. 19 (same datacenter / different datacenter in the same country /
//! different continents).

use crate::geo::GeoPoint;
use rpclens_simcore::rng::Prng;
use serde::{Deserialize, Serialize};

/// Identifier of a geographic region.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct RegionId(pub u16);

/// Identifier of a datacenter.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct DatacenterId(pub u16);

/// Identifier of a cluster.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct ClusterId(pub u16);

/// Continent a region belongs to (used for [`PathClass`] classification).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum Continent {
    /// North America.
    NorthAmerica,
    /// South America.
    SouthAmerica,
    /// Europe.
    Europe,
    /// Asia.
    Asia,
    /// Oceania.
    Oceania,
}

/// The distance class of a network path between two clusters.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum PathClass {
    /// Client and server in the same cluster.
    SameCluster,
    /// Different clusters in the same datacenter.
    SameDatacenter,
    /// Different datacenters in the same region (the paper's "same
    /// country" bucket).
    SameRegion,
    /// Different regions on the same continent.
    SameContinent,
    /// Different continents.
    InterContinent,
}

impl PathClass {
    /// Human-readable label matching the groups in Fig. 19.
    pub fn label(self) -> &'static str {
        match self {
            PathClass::SameCluster => "same cluster",
            PathClass::SameDatacenter => "same datacenter",
            PathClass::SameRegion => "different DC, same country",
            PathClass::SameContinent => "same continent",
            PathClass::InterContinent => "different continents",
        }
    }

    /// Whether the path leaves the datacenter and rides the WAN.
    ///
    /// WAN paths are the ones exposed to partition and brownout episodes
    /// in the fault-injection plane; intra-datacenter fabric failures are
    /// modelled as machine/task churn instead.
    pub fn is_wan(self) -> bool {
        !matches!(self, PathClass::SameCluster | PathClass::SameDatacenter)
    }
}

/// A geographic region hosting one or more datacenters.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Region {
    /// This region's identifier.
    pub id: RegionId,
    /// Short name, e.g. `us-central`.
    pub name: String,
    /// Continent the region is on.
    pub continent: Continent,
    /// Geographic center of the region.
    pub location: GeoPoint,
}

/// A datacenter within a region.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Datacenter {
    /// This datacenter's identifier.
    pub id: DatacenterId,
    /// Region that hosts this datacenter.
    pub region: RegionId,
    /// Precise location (region center plus local offset).
    pub location: GeoPoint,
}

/// A cluster of machines within a datacenter.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Cluster {
    /// This cluster's identifier.
    pub id: ClusterId,
    /// Datacenter that hosts this cluster.
    pub datacenter: DatacenterId,
    /// Region that hosts this cluster (denormalised for fast lookups).
    pub region: RegionId,
    /// Continent (denormalised).
    pub continent: Continent,
    /// Location (shared with the datacenter).
    pub location: GeoPoint,
}

/// A specification for building one region of the synthetic world.
#[derive(Debug, Clone)]
pub struct RegionSpec {
    /// Region name.
    pub name: &'static str,
    /// Continent.
    pub continent: Continent,
    /// Region center.
    pub location: GeoPoint,
    /// Number of datacenters to place in the region.
    pub datacenters: usize,
    /// Number of clusters per datacenter.
    pub clusters_per_dc: usize,
}

/// The full fleet topology.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Topology {
    regions: Vec<Region>,
    datacenters: Vec<Datacenter>,
    clusters: Vec<Cluster>,
}

impl Topology {
    /// Builds a topology from region specifications.
    ///
    /// Datacenters are scattered deterministically (seeded by `seed`)
    /// within ~300 km of the region center, mimicking metro-area siting.
    ///
    /// # Panics
    ///
    /// Panics if `specs` is empty or any spec asks for zero datacenters or
    /// clusters.
    pub fn build(specs: &[RegionSpec], seed: u64) -> Self {
        assert!(!specs.is_empty(), "topology needs at least one region");
        let mut rng = Prng::seed_from(seed).stream(0x7090);
        let mut regions = Vec::new();
        let mut datacenters = Vec::new();
        let mut clusters = Vec::new();
        for (ri, spec) in specs.iter().enumerate() {
            assert!(
                spec.datacenters > 0 && spec.clusters_per_dc > 0,
                "region {} must have datacenters and clusters",
                spec.name
            );
            let region_id = RegionId(ri as u16);
            regions.push(Region {
                id: region_id,
                name: spec.name.to_string(),
                continent: spec.continent,
                location: spec.location,
            });
            for _ in 0..spec.datacenters {
                let dc_id = DatacenterId(datacenters.len() as u16);
                // Roughly +/-2.5 degrees of scatter (~280 km).
                let dlat = (rng.next_f64() - 0.5) * 5.0;
                let dlon = (rng.next_f64() - 0.5) * 5.0;
                let loc = GeoPoint::new(
                    (spec.location.lat + dlat).clamp(-89.0, 89.0),
                    spec.location.lon + dlon,
                );
                datacenters.push(Datacenter {
                    id: dc_id,
                    region: region_id,
                    location: loc,
                });
                for _ in 0..spec.clusters_per_dc {
                    let cluster_id = ClusterId(clusters.len() as u16);
                    clusters.push(Cluster {
                        id: cluster_id,
                        datacenter: dc_id,
                        region: region_id,
                        continent: spec.continent,
                        location: loc,
                    });
                }
            }
        }
        Topology {
            regions,
            datacenters,
            clusters,
        }
    }

    /// Builds the default synthetic world: six regions on four continents,
    /// 48 clusters total — enough spread to exercise every [`PathClass`]
    /// with WAN RTTs up to the ~200 ms the paper reports.
    pub fn default_world(seed: u64) -> Self {
        Self::build(&default_region_specs(), seed)
    }

    /// All cluster ids, in id order.
    pub fn cluster_ids(&self) -> Vec<ClusterId> {
        self.clusters.iter().map(|c| c.id).collect()
    }

    /// Number of clusters.
    pub fn num_clusters(&self) -> usize {
        self.clusters.len()
    }

    /// Number of datacenters.
    pub fn num_datacenters(&self) -> usize {
        self.datacenters.len()
    }

    /// Number of regions.
    pub fn num_regions(&self) -> usize {
        self.regions.len()
    }

    /// Looks up a cluster.
    ///
    /// # Panics
    ///
    /// Panics if the id is out of range.
    pub fn cluster(&self, id: ClusterId) -> &Cluster {
        &self.clusters[id.0 as usize]
    }

    /// Looks up a datacenter.
    ///
    /// # Panics
    ///
    /// Panics if the id is out of range.
    pub fn datacenter(&self, id: DatacenterId) -> &Datacenter {
        &self.datacenters[id.0 as usize]
    }

    /// Looks up a region.
    ///
    /// # Panics
    ///
    /// Panics if the id is out of range.
    pub fn region(&self, id: RegionId) -> &Region {
        &self.regions[id.0 as usize]
    }

    /// Iterates over all clusters.
    pub fn clusters(&self) -> impl Iterator<Item = &Cluster> {
        self.clusters.iter()
    }

    /// Classifies the path between two clusters.
    pub fn path_class(&self, a: ClusterId, b: ClusterId) -> PathClass {
        if a == b {
            return PathClass::SameCluster;
        }
        let ca = self.cluster(a);
        let cb = self.cluster(b);
        if ca.datacenter == cb.datacenter {
            PathClass::SameDatacenter
        } else if ca.region == cb.region {
            PathClass::SameRegion
        } else if ca.continent == cb.continent {
            PathClass::SameContinent
        } else {
            PathClass::InterContinent
        }
    }

    /// Great-circle distance between two clusters' datacenters, km.
    pub fn distance_km(&self, a: ClusterId, b: ClusterId) -> f64 {
        self.cluster(a)
            .location
            .distance_km(&self.cluster(b).location)
    }
}

/// The region layout used by [`Topology::default_world`].
pub fn default_region_specs() -> Vec<RegionSpec> {
    vec![
        RegionSpec {
            name: "us-east",
            continent: Continent::NorthAmerica,
            location: GeoPoint::new(37.5, -77.4),
            datacenters: 3,
            clusters_per_dc: 4,
        },
        RegionSpec {
            name: "us-central",
            continent: Continent::NorthAmerica,
            location: GeoPoint::new(41.3, -95.9),
            datacenters: 3,
            clusters_per_dc: 4,
        },
        RegionSpec {
            name: "us-west",
            continent: Continent::NorthAmerica,
            location: GeoPoint::new(45.6, -121.2),
            datacenters: 2,
            clusters_per_dc: 4,
        },
        RegionSpec {
            name: "europe-west",
            continent: Continent::Europe,
            location: GeoPoint::new(50.4, 3.8),
            datacenters: 2,
            clusters_per_dc: 4,
        },
        RegionSpec {
            name: "asia-east",
            continent: Continent::Asia,
            location: GeoPoint::new(24.1, 120.7),
            datacenters: 1,
            clusters_per_dc: 4,
        },
        RegionSpec {
            name: "southamerica-east",
            continent: Continent::SouthAmerica,
            location: GeoPoint::new(-23.5, -46.6),
            datacenters: 1,
            clusters_per_dc: 4,
        },
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_world_has_expected_shape() {
        let t = Topology::default_world(1);
        assert_eq!(t.num_regions(), 6);
        assert_eq!(t.num_datacenters(), 12);
        assert_eq!(t.num_clusters(), 48);
        assert_eq!(t.cluster_ids().len(), 48);
    }

    #[test]
    fn build_is_deterministic_per_seed() {
        let a = Topology::default_world(9);
        let b = Topology::default_world(9);
        let c = Topology::default_world(10);
        for id in a.cluster_ids() {
            assert_eq!(a.cluster(id).location, b.cluster(id).location);
        }
        // A different seed must move at least one datacenter.
        assert!(a
            .cluster_ids()
            .iter()
            .any(|&id| a.cluster(id).location != c.cluster(id).location));
    }

    #[test]
    fn path_class_covers_all_variants() {
        let t = Topology::default_world(2);
        let ids = t.cluster_ids();
        let mut seen = std::collections::BTreeSet::new();
        for &a in &ids {
            for &b in &ids {
                seen.insert(t.path_class(a, b));
            }
        }
        assert!(seen.contains(&PathClass::SameCluster));
        assert!(seen.contains(&PathClass::SameDatacenter));
        assert!(seen.contains(&PathClass::SameRegion));
        assert!(seen.contains(&PathClass::SameContinent));
        assert!(seen.contains(&PathClass::InterContinent));
    }

    #[test]
    fn path_class_is_symmetric() {
        let t = Topology::default_world(3);
        let ids = t.cluster_ids();
        for &a in &ids {
            for &b in &ids {
                assert_eq!(t.path_class(a, b), t.path_class(b, a));
            }
        }
    }

    #[test]
    fn same_datacenter_clusters_share_location() {
        let t = Topology::default_world(4);
        for c in t.clusters() {
            let dc = t.datacenter(c.datacenter);
            assert_eq!(c.location, dc.location);
            assert_eq!(c.region, dc.region);
        }
    }

    #[test]
    fn intercontinental_distances_are_large() {
        let t = Topology::default_world(5);
        let ids = t.cluster_ids();
        for &a in &ids {
            for &b in &ids {
                match t.path_class(a, b) {
                    PathClass::InterContinent => {
                        assert!(t.distance_km(a, b) > 4_000.0)
                    }
                    PathClass::SameDatacenter | PathClass::SameCluster => {
                        assert!(t.distance_km(a, b) < 1.0)
                    }
                    _ => {}
                }
            }
        }
    }

    #[test]
    #[should_panic(expected = "at least one region")]
    fn empty_specs_panic() {
        let _ = Topology::build(&[], 0);
    }

    #[test]
    fn labels_are_stable() {
        assert_eq!(PathClass::SameRegion.label(), "different DC, same country");
        assert_eq!(PathClass::InterContinent.label(), "different continents");
    }

    #[test]
    fn wan_classes_leave_the_datacenter() {
        assert!(!PathClass::SameCluster.is_wan());
        assert!(!PathClass::SameDatacenter.is_wan());
        assert!(PathClass::SameRegion.is_wan());
        assert!(PathClass::SameContinent.is_wan());
        assert!(PathClass::InterContinent.is_wan());
    }
}
