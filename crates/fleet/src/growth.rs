//! The 700-day fleet growth model (Fig. 1).
//!
//! Fig. 1 plots fleet-wide RPCs-per-second divided by CPU cycles consumed,
//! normalized to the first day, over 700 days: a ~30%/year compounding
//! rise (64% total) from (a) cheaper per-RPC stacks and (b) microservice
//! decomposition shrinking the work behind each RPC — on top of weekly
//! seasonality and noise. The model generates both underlying counters so
//! the figure is produced by the same TSDB query a production system
//! would run.

use rpclens_simcore::rng::SplitMix64;
use rpclens_simcore::time::{SimDuration, SimTime};
use rpclens_tsdb::metric::{Labels, MetricDescriptor, MetricValue};
use rpclens_tsdb::store::TimeSeriesDb;

/// Growth model parameters.
#[derive(Debug, Clone)]
pub struct GrowthConfig {
    /// Days to generate (the paper observes 700).
    pub days: u32,
    /// Initial fleet RPC rate, RPS.
    pub base_rps: f64,
    /// Initial fleet CPU consumption, cycles per second.
    pub base_cps: f64,
    /// Annual growth rate of RPC volume (compound).
    pub rps_annual_growth: f64,
    /// Annual growth rate of CPU consumption (compound) — slower than
    /// RPC growth, which is the paper's headline.
    pub cps_annual_growth: f64,
    /// Weekly seasonality amplitude (weekends are quieter).
    pub weekly_amp: f64,
    /// Day-to-day noise amplitude.
    pub noise: f64,
    /// Seed.
    pub seed: u64,
}

impl Default for GrowthConfig {
    fn default() -> Self {
        GrowthConfig {
            days: 700,
            base_rps: 1.0e9,
            base_cps: 5.0e14,
            // RPS/CPU must grow ~30%/yr: split the ratio between RPC
            // volume growing fast and cycles growing slower.
            rps_annual_growth: 0.55,
            cps_annual_growth: 0.192, // (1.55/1.192 - 1) ≈ 30%.
            weekly_amp: 0.06,
            noise: 0.015,
            seed: 0x640,
        }
    }
}

/// The generated series and the derived Fig. 1 curve.
#[derive(Debug)]
pub struct GrowthModel {
    config: GrowthConfig,
}

impl GrowthModel {
    /// Creates a model.
    pub fn new(config: GrowthConfig) -> Self {
        GrowthModel { config }
    }

    fn day_noise(&self, day: u32, stream: u64) -> f64 {
        let mut sm = SplitMix64::new(self.config.seed ^ stream.wrapping_mul(0x9E37) ^ day as u64);
        (sm.next_u64() >> 11) as f64 / (1u64 << 53) as f64 * 2.0 - 1.0
    }

    /// Fleet RPS on `day`.
    pub fn rps(&self, day: u32) -> f64 {
        let years = day as f64 / 365.25;
        let trend = self.config.base_rps * (1.0 + self.config.rps_annual_growth).powf(years);
        let weekly =
            1.0 + self.config.weekly_amp * (std::f64::consts::TAU * day as f64 / 7.0).sin();
        let noise = 1.0 + self.config.noise * self.day_noise(day, 1);
        trend * weekly * noise
    }

    /// Fleet cycles per second on `day`.
    pub fn cps(&self, day: u32) -> f64 {
        let years = day as f64 / 365.25;
        let trend = self.config.base_cps * (1.0 + self.config.cps_annual_growth).powf(years);
        let weekly =
            1.0 + self.config.weekly_amp * 0.8 * (std::f64::consts::TAU * day as f64 / 7.0).sin();
        let noise = 1.0 + self.config.noise * self.day_noise(day, 2);
        trend * weekly * noise
    }

    /// Writes daily counters into a TSDB (cumulative counts, as a real
    /// metric pipeline exports them).
    ///
    /// # Panics
    ///
    /// Panics if the metrics are already registered differently.
    pub fn populate(&self, db: &mut TimeSeriesDb) {
        let retention = SimDuration::from_hours(24 * 700);
        db.register(MetricDescriptor::counter("fleet/rpc/total", retention))
            .expect("fresh metric");
        db.register(MetricDescriptor::counter("fleet/cpu/cycles", retention))
            .expect("fresh metric");
        let day = SimDuration::from_hours(24);
        let mut rpc_total = 0u64;
        let mut cycle_total = 0u64;
        for d in 0..self.config.days {
            rpc_total = rpc_total.saturating_add((self.rps(d) * 86_400.0) as u64);
            cycle_total = cycle_total.saturating_add((self.cps(d) * 86_400.0 / 1e6) as u64);
            let at = SimTime::ZERO + SimDuration::from_nanos(d as u64 * day.as_nanos());
            db.write(
                "fleet/rpc/total",
                Labels::empty(),
                at,
                MetricValue::Counter(rpc_total),
            )
            .expect("registered");
            // Cycles stored in mega-cycles to stay inside u64.
            db.write(
                "fleet/cpu/cycles",
                Labels::empty(),
                at,
                MetricValue::Counter(cycle_total),
            )
            .expect("registered");
        }
    }

    /// The Fig. 1 series: daily RPS/CPU normalized to day 0.
    pub fn normalized_ratio_series(&self) -> Vec<(u32, f64)> {
        let base = self.rps(0) / self.cps(0);
        (0..self.config.days)
            .map(|d| (d, (self.rps(d) / self.cps(d)) / base))
            .collect()
    }

    /// The configuration.
    pub fn config(&self) -> &GrowthConfig {
        &self.config
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ratio_grows_about_64_percent_over_700_days() {
        let m = GrowthModel::new(GrowthConfig::default());
        let series = m.normalized_ratio_series();
        assert_eq!(series.len(), 700);
        let last = series.last().unwrap().1;
        // Paper: 64% total growth over the window. Allow noise slack.
        assert!((1.5..1.8).contains(&last), "final ratio {last}");
    }

    #[test]
    fn annual_rate_is_about_30_percent() {
        let m = GrowthModel::new(GrowthConfig {
            noise: 0.0,
            weekly_amp: 0.0,
            ..GrowthConfig::default()
        });
        let series = m.normalized_ratio_series();
        let y1 = series[365].1;
        assert!((1.27..1.33).contains(&y1), "year-1 ratio {y1}");
    }

    #[test]
    fn weekly_seasonality_is_visible() {
        let m = GrowthModel::new(GrowthConfig {
            noise: 0.0,
            ..GrowthConfig::default()
        });
        // Within one week, RPS must oscillate.
        let values: Vec<f64> = (0..7).map(|d| m.rps(d)).collect();
        let min = values.iter().cloned().fold(f64::MAX, f64::min);
        let max = values.iter().cloned().fold(f64::MIN, f64::max);
        assert!(max / min > 1.05, "no weekly swing: {values:?}");
    }

    #[test]
    fn deterministic_per_seed() {
        let a = GrowthModel::new(GrowthConfig::default());
        let b = GrowthModel::new(GrowthConfig::default());
        for d in [0, 100, 350, 699] {
            assert_eq!(a.rps(d), b.rps(d));
            assert_eq!(a.cps(d), b.cps(d));
        }
    }

    #[test]
    fn populate_writes_monotone_counters() {
        let m = GrowthModel::new(GrowthConfig {
            days: 30,
            ..GrowthConfig::default()
        });
        let mut db = TimeSeriesDb::new(SimDuration::from_hours(24));
        m.populate(&mut db);
        let series = db
            .series("fleet/rpc/total", &Labels::empty())
            .expect("series exists");
        assert_eq!(series.len(), 30);
        let counters: Vec<u64> = series
            .points()
            .iter()
            .map(|(_, v)| v.as_counter().unwrap())
            .collect();
        assert!(counters.windows(2).all(|w| w[0] < w[1]));
    }

    #[test]
    fn tsdb_rate_reconstructs_rps_within_noise() {
        let m = GrowthModel::new(GrowthConfig {
            days: 10,
            noise: 0.0,
            weekly_amp: 0.0,
            ..GrowthConfig::default()
        });
        let mut db = TimeSeriesDb::new(SimDuration::from_hours(24));
        m.populate(&mut db);
        let series = db.series("fleet/rpc/total", &Labels::empty()).unwrap();
        let rates = rpclens_tsdb::query::QueryEngine::rate(series);
        for (i, (_, r)) in rates.iter().enumerate() {
            let expected = m.rps(i as u32 + 1);
            assert!(
                (r - expected).abs() / expected < 0.01,
                "day {i}: rate {r} vs rps {expected}"
            );
        }
    }
}
