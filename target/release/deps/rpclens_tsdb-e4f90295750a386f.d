/root/repo/target/release/deps/rpclens_tsdb-e4f90295750a386f.d: crates/tsdb/src/lib.rs crates/tsdb/src/metric.rs crates/tsdb/src/query.rs crates/tsdb/src/store.rs

/root/repo/target/release/deps/librpclens_tsdb-e4f90295750a386f.rlib: crates/tsdb/src/lib.rs crates/tsdb/src/metric.rs crates/tsdb/src/query.rs crates/tsdb/src/store.rs

/root/repo/target/release/deps/librpclens_tsdb-e4f90295750a386f.rmeta: crates/tsdb/src/lib.rs crates/tsdb/src/metric.rs crates/tsdb/src/query.rs crates/tsdb/src/store.rs

crates/tsdb/src/lib.rs:
crates/tsdb/src/metric.rs:
crates/tsdb/src/query.rs:
crates/tsdb/src/store.rs:
