/root/repo/target/debug/deps/rpclens_fleet-900878bd5e10199c.d: crates/fleet/src/lib.rs crates/fleet/src/baselines.rs crates/fleet/src/catalog.rs crates/fleet/src/driver.rs crates/fleet/src/growth.rs crates/fleet/src/workload.rs

/root/repo/target/debug/deps/rpclens_fleet-900878bd5e10199c: crates/fleet/src/lib.rs crates/fleet/src/baselines.rs crates/fleet/src/catalog.rs crates/fleet/src/driver.rs crates/fleet/src/growth.rs crates/fleet/src/workload.rs

crates/fleet/src/lib.rs:
crates/fleet/src/baselines.rs:
crates/fleet/src/catalog.rs:
crates/fleet/src/driver.rs:
crates/fleet/src/growth.rs:
crates/fleet/src/workload.rs:
