/root/repo/target/debug/deps/rpclens-0e4b47f813a0444b.d: src/lib.rs Cargo.toml

/root/repo/target/debug/deps/librpclens-0e4b47f813a0444b.rmeta: src/lib.rs Cargo.toml

src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
