//! Cross-crate integration: a full simulation exercises every substrate,
//! and the artifacts they produce must agree with each other.

use rpclens::prelude::*;
use rpclens::rpcstack::component::LatencyComponent;
use rpclens::trace::span::ROOT_PARENT;
use std::sync::OnceLock;

fn shared() -> &'static FleetRun {
    static RUN: OnceLock<FleetRun> = OnceLock::new();
    RUN.get_or_init(|| {
        run_fleet(FleetConfig::at_scale(SimScale {
            name: "integration",
            total_methods: 500,
            roots: 12_000,
            duration: SimDuration::from_hours(24),
            trace_sample_rate: 1,
            profiler_sample_cap: 10_000,
            seed: 99,
        }))
    })
}

#[test]
fn every_substrate_sees_traffic() {
    let run = shared();
    // Tracer.
    assert!(run.store.len() > 10_000);
    assert!(run.store.total_spans() > 30_000);
    // Profiler.
    assert!(run.profiler.total_cycles() > 0);
    assert!(!run.profiler.methods_with_samples(100).is_empty());
    // Error accounting.
    assert!(run.errors.total_errors() > 0);
    // Monitoring database.
    assert!(run.tsdb.num_series() > 10);
    // Deployment.
    assert!(!run.sites.is_empty());
}

#[test]
fn span_counts_agree_across_substrates() {
    let run = shared();
    // Every simulated span is counted once in the popularity counters
    // (sampling rate 1 stores everything).
    assert_eq!(run.total_calls(), run.total_spans);
    assert_eq!(run.store.total_spans() as u64, run.total_spans);
    // Error accounting saw every RPC.
    assert_eq!(run.errors.total_rpcs(), run.total_spans);
    // Stored error spans track the accounting closely. They can differ
    // slightly: a hedge loser that had *also* drawn an injected error is
    // two error events in the accounting (the injected error plus the
    // cancellation) but one failed span.
    let span_errors: u64 = run
        .store
        .traces()
        .iter()
        .flat_map(|t| t.spans.iter())
        .filter(|s| !s.is_ok())
        .count() as u64;
    let total = run.errors.total_errors();
    assert!(
        span_errors <= total && span_errors as f64 >= total as f64 * 0.95,
        "span errors {span_errors} vs accounted {total}"
    );
}

#[test]
fn traces_are_structurally_sound() {
    let run = shared();
    for trace in run.store.traces().iter().take(2_000) {
        assert!(!trace.spans.is_empty());
        assert!(trace.spans[0].is_root());
        for (i, span) in trace.spans.iter().enumerate().skip(1) {
            if span.parent != ROOT_PARENT {
                assert!((span.parent as usize) < i, "parent precedes child");
            }
        }
        // Every span's components are self-consistent.
        for span in &trace.spans {
            let total = span.total_latency();
            let sum: SimDuration = LatencyComponent::ALL
                .iter()
                .map(|&c| span.component(c))
                .sum();
            assert_eq!(total, sum);
        }
    }
}

#[test]
fn server_clusters_are_deployed_clusters() {
    let run = shared();
    for trace in run.store.traces().iter().take(2_000) {
        for span in &trace.spans {
            let svc = run.catalog.method(span.method).service;
            assert!(
                run.catalog
                    .service(svc)
                    .clusters
                    .contains(&span.server_cluster),
                "span served from an undeployed cluster"
            );
            assert!(run.site(svc, span.server_cluster).is_some());
        }
    }
}

#[test]
fn method_ids_are_dense_and_consistent() {
    let run = shared();
    assert_eq!(run.method_calls.len(), run.catalog.num_methods());
    for trace in run.store.traces().iter().take(500) {
        for span in &trace.spans {
            let spec = run.catalog.method(span.method);
            assert_eq!(spec.id, span.method);
            assert_eq!(spec.service, span.service);
        }
    }
}

#[test]
fn tsdb_counters_cover_the_simulated_day() {
    let run = shared();
    let q = QueryEngine::new(&run.tsdb);
    let series = q.select("rpc/server/count", &LabelFilter::any());
    assert!(!series.is_empty());
    let total_windows: usize = series.iter().map(|(_, s)| s.len()).sum();
    // 48 half-hour windows per day; popular services fill most of them.
    let max_windows = series.iter().map(|(_, s)| s.len()).max().expect("series");
    assert!(max_windows >= 40, "only {max_windows} windows");
    assert!(total_windows > 100);
}

#[test]
fn identical_seeds_reproduce_identical_runs() {
    let scale = SimScale {
        name: "determinism",
        total_methods: 320,
        roots: 1_500,
        duration: SimDuration::from_hours(24),
        trace_sample_rate: 1,
        profiler_sample_cap: 10_000,
        seed: 1234,
    };
    let a = run_fleet(FleetConfig::at_scale(scale.clone()));
    let b = run_fleet(FleetConfig::at_scale(scale));
    assert_eq!(a.total_spans, b.total_spans);
    assert_eq!(a.method_calls, b.method_calls);
    assert_eq!(a.profiler.total_cycles(), b.profiler.total_cycles());
    assert_eq!(a.errors.total_errors(), b.errors.total_errors());
    for (ta, tb) in a.store.traces().iter().zip(b.store.traces()) {
        assert_eq!(ta.spans, tb.spans);
    }
}

#[test]
fn different_seeds_produce_different_fleets() {
    let mut scale = SimScale {
        name: "seeds",
        total_methods: 320,
        roots: 1_500,
        duration: SimDuration::from_hours(24),
        trace_sample_rate: 1,
        profiler_sample_cap: 10_000,
        seed: 1,
    };
    let a = run_fleet(FleetConfig::at_scale(scale.clone()));
    scale.seed = 2;
    let b = run_fleet(FleetConfig::at_scale(scale));
    assert_ne!(a.method_calls, b.method_calls);
}
