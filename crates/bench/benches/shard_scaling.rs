//! Shard-scaling benchmark: the same fleet run at 1, 2, 4, and 8 shards.
//!
//! Every configuration produces bit-identical output (enforced by the
//! `shard_determinism` test), so this bench measures pure wall-clock
//! scaling of the parallel driver. The README's speedup table is
//! generated from these numbers.

use criterion::{black_box, criterion_group, criterion_main, Criterion, Throughput};
use rpclens_fleet::driver::{run_fleet, FleetConfig, SimScale};
use rpclens_simcore::time::SimDuration;

fn bench_shard_scaling(c: &mut Criterion) {
    let scale = SimScale {
        name: "scaling",
        total_methods: 320,
        roots: 8_000,
        duration: SimDuration::from_hours(24),
        trace_sample_rate: 1,
        profiler_sample_cap: 10_000,
        seed: 6,
    };
    let mut g = c.benchmark_group("shard_scaling");
    g.sample_size(10);
    g.throughput(Throughput::Elements(scale.roots));
    for shards in [1usize, 2, 4, 8] {
        g.bench_function(format!("8k_roots_{shards}_shards"), |b| {
            b.iter(|| {
                let mut config = FleetConfig::at_scale(scale.clone());
                config.shards = shards;
                black_box(run_fleet(config))
            })
        });
    }
    g.finish();
}

criterion_group!(benches, bench_shard_scaling);
criterion_main!(benches);
