/root/repo/target/release/deps/rpclens_tsdb-2c1e5fb03992d6cd.d: crates/tsdb/src/lib.rs crates/tsdb/src/metric.rs crates/tsdb/src/query.rs crates/tsdb/src/store.rs

/root/repo/target/release/deps/rpclens_tsdb-2c1e5fb03992d6cd: crates/tsdb/src/lib.rs crates/tsdb/src/metric.rs crates/tsdb/src/query.rs crates/tsdb/src/store.rs

crates/tsdb/src/lib.rs:
crates/tsdb/src/metric.rs:
crates/tsdb/src/query.rs:
crates/tsdb/src/store.rs:
