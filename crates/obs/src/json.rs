//! A small, deterministic JSON value model with writer and parser.
//!
//! The vendored `serde` is a compile-only stub, so the manifest format
//! serializes through this module instead. Two properties matter more
//! here than generality:
//!
//! - **Deterministic output.** Objects preserve insertion order (they are
//!   vectors of pairs, not maps), integers print as exact digits, and
//!   floats print via Rust's shortest-roundtrip formatting — so the same
//!   value always renders to the same bytes on every platform.
//! - **Lossless counters.** Cycle totals exceed `2^53` at paper scale, so
//!   integers are carried as `u128`/`i128`, never through `f64`.

use std::fmt::Write as _;

/// A JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A non-negative integer (printed as exact digits).
    Uint(u128),
    /// A negative integer.
    Int(i128),
    /// A finite float (non-finite values render as `null`).
    Float(f64),
    /// A string.
    Str(String),
    /// An array.
    Array(Vec<Json>),
    /// An object; insertion order is preserved and significant for the
    /// byte-identical determinism contract.
    Object(Vec<(String, Json)>),
}

impl Json {
    /// Builds an object from `(key, value)` pairs.
    pub fn obj<I: IntoIterator<Item = (&'static str, Json)>>(pairs: I) -> Json {
        Json::Object(pairs.into_iter().map(|(k, v)| (k.to_string(), v)).collect())
    }

    /// Looks up a key in an object.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Object(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The value as a `u64`, if it is a non-negative integer that fits.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::Uint(u) => u64::try_from(*u).ok(),
            _ => None,
        }
    }

    /// The value as a `u128`, if it is a non-negative integer.
    pub fn as_u128(&self) -> Option<u128> {
        match self {
            Json::Uint(u) => Some(*u),
            _ => None,
        }
    }

    /// The value as an `f64` (integers convert; precision may be lost
    /// above `2^53`, which is why counters should be read via
    /// [`Json::as_u128`]).
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Uint(u) => Some(*u as f64),
            Json::Int(i) => Some(*i as f64),
            Json::Float(f) => Some(*f),
            _ => None,
        }
    }

    /// The value as a string slice.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s.as_str()),
            _ => None,
        }
    }

    /// The value as an array slice.
    pub fn as_array(&self) -> Option<&[Json]> {
        match self {
            Json::Array(items) => Some(items.as_slice()),
            _ => None,
        }
    }

    /// Renders the value as pretty-printed JSON with 2-space indents and
    /// a trailing newline. Deterministic: same value, same bytes.
    pub fn to_pretty(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, 0);
        out.push('\n');
        out
    }

    fn write(&self, out: &mut String, indent: usize) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Uint(u) => {
                let _ = write!(out, "{u}");
            }
            Json::Int(i) => {
                let _ = write!(out, "{i}");
            }
            Json::Float(f) => {
                if f.is_finite() {
                    // `{:?}` is the shortest representation that round-trips,
                    // and always includes a `.` or exponent for floats.
                    let _ = write!(out, "{f:?}");
                } else {
                    out.push_str("null");
                }
            }
            Json::Str(s) => write_escaped(out, s),
            Json::Array(items) => {
                if items.is_empty() {
                    out.push_str("[]");
                    return;
                }
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push('\n');
                    push_indent(out, indent + 1);
                    item.write(out, indent + 1);
                }
                out.push('\n');
                push_indent(out, indent);
                out.push(']');
            }
            Json::Object(pairs) => {
                if pairs.is_empty() {
                    out.push_str("{}");
                    return;
                }
                out.push('{');
                for (i, (k, v)) in pairs.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push('\n');
                    push_indent(out, indent + 1);
                    write_escaped(out, k);
                    out.push_str(": ");
                    v.write(out, indent + 1);
                }
                out.push('\n');
                push_indent(out, indent);
                out.push('}');
            }
        }
    }
}

fn push_indent(out: &mut String, levels: usize) {
    for _ in 0..levels {
        out.push_str("  ");
    }
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// A parse failure with byte offset and message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// Byte offset where parsing failed.
    pub at: usize,
    /// What went wrong.
    pub message: String,
}

impl std::fmt::Display for ParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "json parse error at byte {}: {}", self.at, self.message)
    }
}

impl std::error::Error for ParseError {}

/// Maximum container nesting the parser accepts. The parser recurses
/// per `[`/`{` level, so unbounded nesting from a hostile document
/// would overflow the stack; 512 is far beyond any artifact this
/// workspace writes (manifests nest < 10 deep) while staying well
/// inside default thread stacks.
pub const MAX_DEPTH: usize = 512;

/// Parses a JSON document (trailing whitespace allowed, nothing else).
///
/// # Errors
///
/// Returns a [`ParseError`] on malformed input, trailing garbage, or
/// nesting deeper than [`MAX_DEPTH`].
pub fn parse(input: &str) -> Result<Json, ParseError> {
    let bytes = input.as_bytes();
    let mut pos = 0usize;
    let value = parse_value(bytes, &mut pos, 0)?;
    skip_ws(bytes, &mut pos);
    if pos != bytes.len() {
        return Err(err(pos, "trailing characters"));
    }
    Ok(value)
}

fn err(at: usize, message: &str) -> ParseError {
    ParseError {
        at,
        message: message.to_string(),
    }
}

fn skip_ws(bytes: &[u8], pos: &mut usize) {
    while *pos < bytes.len() && matches!(bytes[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn expect(bytes: &[u8], pos: &mut usize, b: u8) -> Result<(), ParseError> {
    if *pos < bytes.len() && bytes[*pos] == b {
        *pos += 1;
        Ok(())
    } else {
        Err(err(*pos, &format!("expected '{}'", b as char)))
    }
}

fn parse_value(bytes: &[u8], pos: &mut usize, depth: usize) -> Result<Json, ParseError> {
    skip_ws(bytes, pos);
    match bytes.get(*pos) {
        None => Err(err(*pos, "unexpected end of input")),
        Some(b'n') => parse_literal(bytes, pos, "null", Json::Null),
        Some(b't') => parse_literal(bytes, pos, "true", Json::Bool(true)),
        Some(b'f') => parse_literal(bytes, pos, "false", Json::Bool(false)),
        Some(b'"') => parse_string(bytes, pos).map(Json::Str),
        Some(b'[' | b'{') if depth >= MAX_DEPTH => Err(err(*pos, "nesting exceeds maximum depth")),
        Some(b'[') => parse_array(bytes, pos, depth),
        Some(b'{') => parse_object(bytes, pos, depth),
        Some(b'-' | b'0'..=b'9') => parse_number(bytes, pos),
        Some(&c) => Err(err(*pos, &format!("unexpected character '{}'", c as char))),
    }
}

fn parse_literal(
    bytes: &[u8],
    pos: &mut usize,
    literal: &str,
    value: Json,
) -> Result<Json, ParseError> {
    if bytes[*pos..].starts_with(literal.as_bytes()) {
        *pos += literal.len();
        Ok(value)
    } else {
        Err(err(*pos, &format!("expected '{literal}'")))
    }
}

fn parse_string(bytes: &[u8], pos: &mut usize) -> Result<String, ParseError> {
    expect(bytes, pos, b'"')?;
    let mut out = String::new();
    loop {
        match bytes.get(*pos) {
            None => return Err(err(*pos, "unterminated string")),
            Some(b'"') => {
                *pos += 1;
                return Ok(out);
            }
            Some(b'\\') => {
                *pos += 1;
                match bytes.get(*pos) {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'n') => out.push('\n'),
                    Some(b'r') => out.push('\r'),
                    Some(b't') => out.push('\t'),
                    Some(b'b') => out.push('\u{8}'),
                    Some(b'f') => out.push('\u{c}'),
                    Some(b'u') => {
                        let hex = bytes
                            .get(*pos + 1..*pos + 5)
                            .ok_or_else(|| err(*pos, "truncated \\u escape"))?;
                        let hex = std::str::from_utf8(hex)
                            .map_err(|_| err(*pos, "non-ascii \\u escape"))?;
                        let code = u32::from_str_radix(hex, 16)
                            .map_err(|_| err(*pos, "bad \\u escape"))?;
                        // Surrogates are not paired; the writer never emits
                        // them, so reject rather than mis-decode.
                        let c = char::from_u32(code)
                            .ok_or_else(|| err(*pos, "\\u escape is not a scalar value"))?;
                        out.push(c);
                        *pos += 4;
                    }
                    _ => return Err(err(*pos, "bad escape")),
                }
                *pos += 1;
            }
            Some(_) => {
                // Consume one UTF-8 scalar (input is a &str, so slicing on
                // char boundaries is safe via chars()).
                let rest = std::str::from_utf8(&bytes[*pos..]).map_err(|_| err(*pos, "utf8"))?;
                let c = rest.chars().next().expect("non-empty");
                out.push(c);
                *pos += c.len_utf8();
            }
        }
    }
}

fn parse_number(bytes: &[u8], pos: &mut usize) -> Result<Json, ParseError> {
    let start = *pos;
    if bytes.get(*pos) == Some(&b'-') {
        *pos += 1;
    }
    while *pos < bytes.len() && bytes[*pos].is_ascii_digit() {
        *pos += 1;
    }
    let mut is_float = false;
    if bytes.get(*pos) == Some(&b'.') {
        is_float = true;
        *pos += 1;
        while *pos < bytes.len() && bytes[*pos].is_ascii_digit() {
            *pos += 1;
        }
    }
    if matches!(bytes.get(*pos), Some(b'e' | b'E')) {
        is_float = true;
        *pos += 1;
        if matches!(bytes.get(*pos), Some(b'+' | b'-')) {
            *pos += 1;
        }
        while *pos < bytes.len() && bytes[*pos].is_ascii_digit() {
            *pos += 1;
        }
    }
    let text = std::str::from_utf8(&bytes[start..*pos]).expect("ascii");
    if text.is_empty() || text == "-" {
        return Err(err(start, "malformed number"));
    }
    if !is_float {
        if let Some(stripped) = text.strip_prefix('-') {
            if let Ok(i) = stripped.parse::<i128>() {
                return Ok(Json::Int(-i));
            }
        } else if let Ok(u) = text.parse::<u128>() {
            return Ok(Json::Uint(u));
        }
    }
    text.parse::<f64>()
        .map(Json::Float)
        .map_err(|_| err(start, "malformed number"))
}

fn parse_array(bytes: &[u8], pos: &mut usize, depth: usize) -> Result<Json, ParseError> {
    expect(bytes, pos, b'[')?;
    let mut items = Vec::new();
    skip_ws(bytes, pos);
    if bytes.get(*pos) == Some(&b']') {
        *pos += 1;
        return Ok(Json::Array(items));
    }
    loop {
        items.push(parse_value(bytes, pos, depth + 1)?);
        skip_ws(bytes, pos);
        match bytes.get(*pos) {
            Some(b',') => {
                *pos += 1;
            }
            Some(b']') => {
                *pos += 1;
                return Ok(Json::Array(items));
            }
            _ => return Err(err(*pos, "expected ',' or ']'")),
        }
    }
}

fn parse_object(bytes: &[u8], pos: &mut usize, depth: usize) -> Result<Json, ParseError> {
    expect(bytes, pos, b'{')?;
    let mut pairs = Vec::new();
    skip_ws(bytes, pos);
    if bytes.get(*pos) == Some(&b'}') {
        *pos += 1;
        return Ok(Json::Object(pairs));
    }
    loop {
        skip_ws(bytes, pos);
        let key = parse_string(bytes, pos)?;
        skip_ws(bytes, pos);
        expect(bytes, pos, b':')?;
        let value = parse_value(bytes, pos, depth + 1)?;
        pairs.push((key, value));
        skip_ws(bytes, pos);
        match bytes.get(*pos) {
            Some(b',') => {
                *pos += 1;
            }
            Some(b'}') => {
                *pos += 1;
                return Ok(Json::Object(pairs));
            }
            _ => return Err(err(*pos, "expected ',' or '}'")),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_preserves_structure_and_order() {
        let value = Json::obj([
            ("b_second_key_first", Json::Uint(1)),
            (
                "a_first_key_second",
                Json::obj([("nested", Json::Bool(true))]),
            ),
            (
                "list",
                Json::Array(vec![
                    Json::Null,
                    Json::Int(-3),
                    Json::Float(0.25),
                    Json::Str("hi \"there\"\n".to_string()),
                ]),
            ),
            ("big", Json::Uint(u128::from(u64::MAX) * 7)),
        ]);
        let text = value.to_pretty();
        let back = parse(&text).expect("own output parses");
        assert_eq!(back, value);
        // Determinism: rendering the parse renders the same bytes.
        assert_eq!(back.to_pretty(), text);
    }

    #[test]
    fn big_integers_do_not_lose_precision() {
        let n = 170_141_183_460_469_231_731u128; // > 2^64
        let text = Json::Uint(n).to_pretty();
        assert_eq!(parse(&text).unwrap().as_u128(), Some(n));
    }

    #[test]
    fn accessors_navigate_objects() {
        let v = parse(r#"{"a": {"b": [1, 2.5, "x"]}, "n": -4}"#).unwrap();
        let arr = v.get("a").unwrap().get("b").unwrap().as_array().unwrap();
        assert_eq!(arr[0].as_u64(), Some(1));
        assert_eq!(arr[1].as_f64(), Some(2.5));
        assert_eq!(arr[2].as_str(), Some("x"));
        assert_eq!(v.get("n").unwrap().as_f64(), Some(-4.0));
        assert_eq!(v.get("missing"), None);
    }

    #[test]
    fn malformed_inputs_are_rejected() {
        for bad in [
            "",
            "{",
            "[1,",
            "{\"a\" 1}",
            "tru",
            "01x",
            "\"unterminated",
            "1 2",
            "{\"a\":}",
        ] {
            assert!(parse(bad).is_err(), "accepted {bad:?}");
        }
    }

    #[test]
    fn escapes_roundtrip() {
        let s = "tab\t newline\n quote\" backslash\\ control\u{1} unicode\u{263a}";
        let text = Json::Str(s.to_string()).to_pretty();
        assert_eq!(parse(&text).unwrap().as_str(), Some(s));
    }

    #[test]
    fn nonfinite_floats_render_null() {
        assert_eq!(Json::Float(f64::NAN).to_pretty(), "null\n");
        assert_eq!(Json::Float(f64::INFINITY).to_pretty(), "null\n");
    }

    #[test]
    fn unicode_escapes_decode_and_surrogates_are_rejected() {
        assert_eq!(parse(r#""A""#).unwrap().as_str(), Some("A"));
        assert_eq!(parse(r#""☺""#).unwrap().as_str(), Some("\u{263a}"));
        // Lone surrogates are not Unicode scalar values; mis-decoding
        // them would poison every consumer downstream.
        assert!(parse(r#""\ud800""#).is_err());
        assert!(parse(r#""\udfff""#).is_err());
        // Truncated and non-hex escapes.
        assert!(parse(r#""\u00""#).is_err());
        assert!(parse(r#""\uzzzz""#).is_err());
        assert!(parse(r#""\x41""#).is_err(), "unknown escape letter");
    }

    #[test]
    fn integer_extremes_parse_exactly() {
        let max = u128::MAX.to_string();
        assert_eq!(parse(&max).unwrap().as_u128(), Some(u128::MAX));
        let min_exact = (i128::MIN + 1).to_string();
        assert_eq!(parse(&min_exact).unwrap(), Json::Int(i128::MIN + 1));
        // The parser negates after parsing the magnitude, so i128::MIN
        // itself (magnitude i128::MAX + 1) falls back to float — the
        // writer never emits it; this pins the asymmetry.
        assert!(matches!(
            parse(&i128::MIN.to_string()).unwrap(),
            Json::Float(_)
        ));
        // One past u128::MAX no longer fits an integer; the parser
        // falls back to a lossy float rather than rejecting — the
        // writer never emits such a number, this pins the behaviour.
        let over = format!("{}0", u128::MAX);
        assert!(matches!(parse(&over).unwrap(), Json::Float(_)));
    }

    #[test]
    fn deep_nesting_is_bounded_not_a_stack_overflow() {
        let nest = |n: usize| format!("{}1{}", "[".repeat(n), "]".repeat(n));
        // Well under the cap: parses fine.
        assert!(parse(&nest(400)).is_ok());
        // Past the cap: a graceful error, not a crash. 100k levels
        // would overflow the stack without the depth guard.
        let e = parse(&nest(MAX_DEPTH + 1)).unwrap_err();
        assert!(e.message.contains("depth"), "got: {e}");
        assert!(parse(&nest(100_000)).is_err());
        // Objects count against the same budget.
        let deep_obj = format!(
            "{}1{}",
            "{\"k\":".repeat(MAX_DEPTH + 1),
            "}".repeat(MAX_DEPTH + 1)
        );
        assert!(parse(&deep_obj).is_err());
    }

    #[test]
    fn trailing_garbage_is_rejected() {
        for bad in ["1 2", "{} []", "null,", "[1] x", "\"a\" \"b\"", "{}{}"] {
            assert!(parse(bad).is_err(), "accepted {bad:?}");
        }
        // Trailing whitespace alone stays legal.
        assert!(parse("{} \n\t ").is_ok());
    }

    #[test]
    fn number_lookalikes_are_rejected() {
        for bad in ["inf", "Infinity", "NaN", "+1", "-", ".5", "0x10", "1e"] {
            assert!(parse(bad).is_err(), "accepted {bad:?}");
        }
        // Standard exponent forms still parse (as floats).
        assert!(matches!(parse("1e3").unwrap(), Json::Float(_)));
        assert!(matches!(parse("-2.5e-2").unwrap(), Json::Float(_)));
    }
}
