/root/repo/target/debug/deps/rpclens_simcore-4967d3fb2db97082.d: crates/simcore/src/lib.rs crates/simcore/src/alias.rs crates/simcore/src/dist.rs crates/simcore/src/event.rs crates/simcore/src/hist.rs crates/simcore/src/rng.rs crates/simcore/src/stats.rs crates/simcore/src/streaming.rs crates/simcore/src/time.rs crates/simcore/src/zipf.rs

/root/repo/target/debug/deps/librpclens_simcore-4967d3fb2db97082.rmeta: crates/simcore/src/lib.rs crates/simcore/src/alias.rs crates/simcore/src/dist.rs crates/simcore/src/event.rs crates/simcore/src/hist.rs crates/simcore/src/rng.rs crates/simcore/src/stats.rs crates/simcore/src/streaming.rs crates/simcore/src/time.rs crates/simcore/src/zipf.rs

crates/simcore/src/lib.rs:
crates/simcore/src/alias.rs:
crates/simcore/src/dist.rs:
crates/simcore/src/event.rs:
crates/simcore/src/hist.rs:
crates/simcore/src/rng.rs:
crates/simcore/src/stats.rs:
crates/simcore/src/streaming.rs:
crates/simcore/src/time.rs:
crates/simcore/src/zipf.rs:
