/root/repo/target/debug/deps/simcore_bench-19fe1074de01a668.d: crates/bench/benches/simcore_bench.rs Cargo.toml

/root/repo/target/debug/deps/libsimcore_bench-19fe1074de01a668.rmeta: crates/bench/benches/simcore_bench.rs Cargo.toml

crates/bench/benches/simcore_bench.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
