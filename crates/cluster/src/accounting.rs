//! Windowed CPU usage accounting.
//!
//! Fig. 22 of the paper compares, per service, the ratio of used CPU to
//! the allocated CPU limit across clusters and across machines within a
//! cluster. [`UsageAccumulator`] collects busy time in fixed windows so
//! that ratio can be computed for any aggregation level.

use rpclens_simcore::time::{SimDuration, SimTime};

/// Accumulates CPU busy-time into fixed windows against an allocation.
///
/// # Examples
///
/// ```
/// use rpclens_cluster::accounting::UsageAccumulator;
/// use rpclens_simcore::time::{SimDuration, SimTime};
///
/// let mut acc = UsageAccumulator::new(SimDuration::from_secs(60), 2.0);
/// acc.record(SimTime::from_nanos(5_000_000_000), SimDuration::from_secs(30));
/// // 30 busy core-seconds against 2 cores * 60 s = 25% usage.
/// assert!((acc.window_usage_ratio(0).unwrap() - 0.25).abs() < 1e-12);
/// ```
#[derive(Debug, Clone)]
pub struct UsageAccumulator {
    window: SimDuration,
    /// Allocated CPU limit in cores.
    limit_cores: f64,
    /// Busy core-nanoseconds per window.
    busy_ns: Vec<u128>,
}

impl UsageAccumulator {
    /// Creates an accumulator with the given window size and core limit.
    ///
    /// # Panics
    ///
    /// Panics if the window is zero or the limit is not positive.
    pub fn new(window: SimDuration, limit_cores: f64) -> Self {
        assert!(window.as_nanos() > 0, "window must be positive");
        assert!(
            limit_cores.is_finite() && limit_cores > 0.0,
            "limit must be positive"
        );
        UsageAccumulator {
            window,
            limit_cores,
            busy_ns: Vec::new(),
        }
    }

    /// Records `busy` core-time starting at `at` (attributed to the window
    /// containing `at`).
    pub fn record(&mut self, at: SimTime, busy: SimDuration) {
        let idx = (at.as_nanos() / self.window.as_nanos()) as usize;
        if idx >= self.busy_ns.len() {
            self.busy_ns.resize(idx + 1, 0);
        }
        self.busy_ns[idx] += busy.as_nanos() as u128;
    }

    /// Usage ratio (used / limit) for window `idx`, or `None` if `idx` is
    /// beyond the last window that saw a recording.
    pub fn window_usage_ratio(&self, idx: usize) -> Option<f64> {
        let busy = *self.busy_ns.get(idx)?;
        let capacity = self.limit_cores * self.window.as_nanos() as f64;
        Some(busy as f64 / capacity)
    }

    /// Mean usage ratio across windows `0..=last_window`, counting empty
    /// windows as zero usage.
    pub fn mean_usage_ratio(&self, last_window: usize) -> f64 {
        let n = last_window + 1;
        let total: u128 = self.busy_ns.iter().take(n).sum();
        let capacity = self.limit_cores * self.window.as_nanos() as f64 * n as f64;
        total as f64 / capacity
    }

    /// The configured CPU limit, in cores.
    pub fn limit_cores(&self) -> f64 {
        self.limit_cores
    }

    /// The accounting window size.
    pub fn window(&self) -> SimDuration {
        self.window
    }

    /// Number of windows that have data.
    pub fn windows_recorded(&self) -> usize {
        self.busy_ns.len()
    }

    /// Total busy core-time recorded.
    pub fn total_busy(&self) -> SimDuration {
        let total: u128 = self.busy_ns.iter().sum();
        SimDuration::from_nanos(total.min(u64::MAX as u128) as u64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn usage_lands_in_the_right_window() {
        let mut acc = UsageAccumulator::new(SimDuration::from_secs(10), 1.0);
        acc.record(SimTime::from_nanos(0), SimDuration::from_secs(1));
        acc.record(
            SimTime::ZERO + SimDuration::from_secs(25),
            SimDuration::from_secs(2),
        );
        assert!((acc.window_usage_ratio(0).unwrap() - 0.1).abs() < 1e-12);
        assert_eq!(acc.window_usage_ratio(1), Some(0.0));
        assert!((acc.window_usage_ratio(2).unwrap() - 0.2).abs() < 1e-12);
        assert_eq!(acc.window_usage_ratio(3), None);
        assert_eq!(acc.windows_recorded(), 3);
    }

    #[test]
    fn mean_counts_empty_windows() {
        let mut acc = UsageAccumulator::new(SimDuration::from_secs(10), 1.0);
        acc.record(SimTime::ZERO, SimDuration::from_secs(10));
        // Windows 0..=3: one full window of 4 -> 25%.
        assert!((acc.mean_usage_ratio(3) - 0.25).abs() < 1e-12);
    }

    #[test]
    fn ratio_can_exceed_one_on_overload() {
        // Usage beyond the allocation (bursting) must be representable;
        // Fig. 22 shows tail utilization approaching and hitting limits.
        let mut acc = UsageAccumulator::new(SimDuration::from_secs(1), 0.5);
        acc.record(SimTime::ZERO, SimDuration::from_secs(1));
        assert!((acc.window_usage_ratio(0).unwrap() - 2.0).abs() < 1e-12);
    }

    #[test]
    fn total_busy_sums_all_windows() {
        let mut acc = UsageAccumulator::new(SimDuration::from_secs(1), 1.0);
        for i in 0..5u64 {
            acc.record(
                SimTime::ZERO + SimDuration::from_secs(i),
                SimDuration::from_millis(100),
            );
        }
        assert_eq!(acc.total_busy(), SimDuration::from_millis(500));
    }

    #[test]
    #[should_panic(expected = "limit must be positive")]
    fn bad_limit_panics() {
        let _ = UsageAccumulator::new(SimDuration::from_secs(1), 0.0);
    }

    proptest! {
        #[test]
        fn mean_equals_total_over_capacity(
            recs in proptest::collection::vec((0u64..100_000_000_000, 0u64..1_000_000_000), 1..50),
        ) {
            let window = SimDuration::from_secs(10);
            let mut acc = UsageAccumulator::new(window, 4.0);
            let mut total = 0u128;
            let mut max_idx = 0usize;
            for &(at, busy) in &recs {
                acc.record(SimTime::from_nanos(at), SimDuration::from_nanos(busy));
                total += busy as u128;
                max_idx = max_idx.max((at / window.as_nanos()) as usize);
            }
            let mean = acc.mean_usage_ratio(max_idx);
            let capacity = 4.0 * window.as_nanos() as f64 * (max_idx + 1) as f64;
            prop_assert!((mean - total as f64 / capacity).abs() < 1e-9);
        }
    }
}
