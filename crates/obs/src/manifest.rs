//! Versioned JSON run manifests.
//!
//! A manifest is the durable record of one fleet run. It has up to three
//! top-level sections:
//!
//! - `deterministic` — integers only, a pure function of the master seed.
//!   The rendered bytes of this section are **identical for any shard
//!   count** (enforced by `crates/bench/tests/telemetry_determinism.rs`),
//!   so a manifest doubles as a regression baseline: if the deterministic
//!   bytes differ between two runs with the same seed and scale, the
//!   simulation changed.
//! - `robustness` — present only when a fault scenario was active: the
//!   scenario name, executed-resilience counters (retries, failovers,
//!   causal errors), and the per-error-kind count/wasted-cycle table
//!   behind the Fig. 23 breakdown. Deterministic too, but kept *outside*
//!   [`RunManifest::digest`] so fault-free runs keep their historical
//!   golden digests byte-for-byte.
//! - `runtime` — wall-clock phase timings and per-shard execution shape.
//!   Explicitly non-deterministic; excluded from comparisons.
//!
//! The `deterministic` section carries a trailing FNV-1a `digest` over
//! its own rendered bytes (computed before the digest field is appended),
//! so two manifests can be compared by one integer.
//!
//! Schema evolution: bump [`MANIFEST_SCHEMA_VERSION`] whenever a field is
//! added, removed, or changes meaning. Readers reject other versions
//! rather than guessing.

use crate::json::{self, Json};
use crate::telemetry::{QueueTelemetry, RunTelemetry, WireTelemetry};

/// Current manifest schema version. Bump on any field change.
///
/// History: v1 carried `deterministic` + `runtime`; v2 added the optional
/// `robustness` section for fault-scenario runs; v3 added the optional
/// `incidents` and `controllers` tables inside `robustness` for runs
/// with a correlated-incident layer and closed-loop control plane.
pub const MANIFEST_SCHEMA_VERSION: u32 = 3;

/// Root-latency summary as integer microsecond quantiles (from the
/// driver's `LogHistogram`; ~1.6% bucket resolution).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct LatencyQuantiles {
    /// Number of recorded latencies.
    pub count: u64,
    /// Sum of recorded latencies, microseconds.
    pub sum_us: u128,
    /// Minimum, microseconds.
    pub min_us: u64,
    /// Median, microseconds.
    pub p50_us: u64,
    /// 90th percentile, microseconds.
    pub p90_us: u64,
    /// 99th percentile, microseconds.
    pub p99_us: u64,
    /// 99.9th percentile, microseconds.
    pub p999_us: u64,
    /// Maximum, microseconds.
    pub max_us: u64,
}

impl LatencyQuantiles {
    /// Extracts quantiles from a histogram of microsecond values.
    pub fn from_histogram(h: &rpclens_simcore::hist::LogHistogram) -> Self {
        LatencyQuantiles {
            count: h.count(),
            sum_us: h.sum(),
            min_us: h.min().unwrap_or(0),
            p50_us: h.quantile(0.5).unwrap_or(0),
            p90_us: h.quantile(0.9).unwrap_or(0),
            p99_us: h.quantile(0.99).unwrap_or(0),
            p999_us: h.quantile(0.999).unwrap_or(0),
            max_us: h.max().unwrap_or(0),
        }
    }
}

/// The shard-count-invariant section of a manifest. Integers only.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct DeterministicSection {
    /// Master seed the run derived everything from.
    pub seed: u64,
    /// Scale preset name (`smoke`, `default`, `paper`, ...).
    pub scale: String,
    /// Methods in the generated catalog.
    pub total_methods: u64,
    /// Workload roots simulated.
    pub roots: u64,
    /// Spans (RPC calls) simulated, including hedges.
    pub spans: u64,
    /// Roots admitted by the trace sampler.
    pub traces_sampled: u64,
    /// Spans retained in the trace store (budget-capped).
    pub trace_stored_spans: u64,
    /// Total injected errors across all kinds.
    pub errors_total: u64,
    /// Injected errors per kind, in fixed kind order.
    pub errors_by_kind: Vec<(String, u64)>,
    /// Hedge (backup) requests issued.
    pub hedges_issued: u64,
    /// Deepest call tree observed.
    pub max_depth: u64,
    /// Queue-model telemetry.
    pub queue: QueueTelemetry,
    /// Wire congestion telemetry.
    pub wire: WireTelemetry,
    /// End-to-end root latency summary, microseconds.
    pub root_latency: LatencyQuantiles,
    /// Total cycles attributed by the profiler.
    pub cycles_total: u128,
    /// Cycles per category, in fixed category order.
    pub cycles_by_category: Vec<(String, u128)>,
    /// RPC cycle tax in parts-per-million of total cycles (integer so
    /// the section stays float-free).
    pub tax_ppm: u64,
}

/// Wall-clock and execution-shape section. **Not deterministic.**
#[derive(Debug, Clone, Default)]
pub struct RuntimeSection {
    /// Shards the run used.
    pub shards: usize,
    /// Worker-pool threads the shards executed on. `0` when parsing a
    /// manifest written before the pool existed (schema unchanged:
    /// `runtime` fields are additive and never digested).
    pub threads: usize,
    /// Per-shard `(shard, roots, spans, wall_ms)` rows.
    pub per_shard: Vec<(usize, u64, u64, f64)>,
    /// `(phase, wall_ms)` rows in execution order.
    pub phases: Vec<(String, f64)>,
    /// Total wall-clock milliseconds across phases.
    pub total_wall_ms: f64,
}

/// Fault-scenario section: executed-resilience counters and the
/// per-error-kind breakdown. Present only when a fault scenario was
/// active; deterministic but excluded from [`RunManifest::digest`] so
/// fault-free golden digests are stable across schema growth.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct RobustnessSection {
    /// Fault scenario preset name (`chaos-smoke`, `partition`, ...).
    pub scenario: String,
    /// Retry attempts issued by the client resilience loop.
    pub retries_issued: u64,
    /// Retry attempts denied by the retry-budget token bucket.
    pub retries_denied: u64,
    /// Retries redirected to a different replica or cluster.
    pub failovers: u64,
    /// `Unavailable` errors with a causal origin (crash/drain/blackout).
    pub causal_unavailable: u64,
    /// `NoResource` errors from load-shedding queues under overload.
    pub load_sheds: u64,
    /// `DeadlineExceeded` errors from latency crossing a deadline.
    pub deadline_exceeded: u64,
    /// Per-error-kind `(kind, count, wasted_cycles)` rows in fixed kind
    /// order — the Fig. 23 error-class/wasted-work breakdown.
    pub errors: Vec<(String, u64, u128)>,
    /// Correlated-incident rows `(kind, entities_struck, episodes)` in
    /// fixed kind order (`drain`, `wan-cut`, `front`). Empty for runs
    /// without an incident layer; omitted from the rendered JSON then
    /// (schema v3).
    pub incidents: Vec<(String, u64, u64)>,
    /// Controller activity rows `(controller, value)` in fixed order —
    /// autoscaler scaled windows / peak capacity, load-balancer shifts,
    /// admission-queue verdict counts. Empty for open-loop runs; omitted
    /// from the rendered JSON then (schema v3).
    pub controllers: Vec<(String, u64)>,
}

/// A versioned run manifest; see the module docs for the layout.
#[derive(Debug, Clone, Default)]
pub struct RunManifest {
    /// Schema version; readers reject mismatches.
    pub schema_version: u32,
    /// Shard-count-invariant counters.
    pub deterministic: DeterministicSection,
    /// Fault-scenario resilience counters; `None` for fault-free runs.
    pub robustness: Option<RobustnessSection>,
    /// Wall-clock execution shape.
    pub runtime: RuntimeSection,
}

/// FNV-1a over bytes; the manifest digest primitive.
pub fn fnv1a(bytes: &[u8]) -> u64 {
    let mut hash = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

fn named_u64s<'a>(pairs: impl IntoIterator<Item = &'a (String, u64)>) -> Json {
    Json::Object(
        pairs
            .into_iter()
            .map(|(k, v)| (k.clone(), Json::Uint(u128::from(*v))))
            .collect(),
    )
}

fn named_u128s<'a>(pairs: impl IntoIterator<Item = &'a (String, u128)>) -> Json {
    Json::Object(
        pairs
            .into_iter()
            .map(|(k, v)| (k.clone(), Json::Uint(*v)))
            .collect(),
    )
}

impl RunManifest {
    /// Builds a manifest from run telemetry plus the fields only the
    /// caller knows (seed/scale identity, store/profiler rollups).
    #[allow(clippy::too_many_arguments)]
    pub fn from_telemetry(
        telemetry: &RunTelemetry,
        seed: u64,
        scale: &str,
        total_methods: u64,
        trace_stored_spans: u64,
        errors_by_kind: Vec<(String, u64)>,
        cycles_by_category: Vec<(String, u128)>,
        tax_ppm: u64,
    ) -> Self {
        let c = &telemetry.counters;
        let deterministic = DeterministicSection {
            seed,
            scale: scale.to_string(),
            total_methods,
            roots: c.roots,
            spans: c.spans,
            traces_sampled: c.traces_sampled,
            trace_stored_spans,
            errors_total: errors_by_kind.iter().map(|(_, n)| n).sum(),
            errors_by_kind,
            hedges_issued: c.hedges_issued,
            max_depth: c.max_depth,
            queue: c.queue.clone(),
            wire: c.wire.clone(),
            root_latency: LatencyQuantiles::from_histogram(&c.root_latency_us),
            cycles_total: cycles_by_category.iter().map(|(_, n)| n).sum(),
            cycles_by_category,
            tax_ppm,
        };
        let runtime = RuntimeSection {
            shards: telemetry.shards_used,
            threads: telemetry.threads_used,
            per_shard: telemetry
                .per_shard
                .iter()
                .map(|s| (s.shard, s.roots, s.spans, s.wall_ms))
                .collect(),
            phases: telemetry.phases.phases().to_vec(),
            total_wall_ms: telemetry.phases.total_ms(),
        };
        RunManifest {
            schema_version: MANIFEST_SCHEMA_VERSION,
            deterministic,
            robustness: None,
            runtime,
        }
    }

    /// Renders the `robustness` section as a JSON value. The v3
    /// `incidents` and `controllers` tables are appended only when
    /// non-empty, so fault-only (v2-shaped) manifests keep rendering
    /// byte-identically.
    fn robustness_json(r: &RobustnessSection) -> Json {
        let mut body = Json::obj([
            ("scenario", Json::Str(r.scenario.clone())),
            ("retries_issued", Json::Uint(u128::from(r.retries_issued))),
            ("retries_denied", Json::Uint(u128::from(r.retries_denied))),
            ("failovers", Json::Uint(u128::from(r.failovers))),
            (
                "causal_unavailable",
                Json::Uint(u128::from(r.causal_unavailable)),
            ),
            ("load_sheds", Json::Uint(u128::from(r.load_sheds))),
            (
                "deadline_exceeded",
                Json::Uint(u128::from(r.deadline_exceeded)),
            ),
            (
                "errors",
                Json::Array(
                    r.errors
                        .iter()
                        .map(|(kind, count, wasted)| {
                            Json::obj([
                                ("kind", Json::Str(kind.clone())),
                                ("count", Json::Uint(u128::from(*count))),
                                ("wasted_cycles", Json::Uint(*wasted)),
                            ])
                        })
                        .collect(),
                ),
            ),
        ]);
        let Json::Object(pairs) = &mut body else {
            unreachable!("robustness body is an object");
        };
        if !r.incidents.is_empty() {
            pairs.push((
                "incidents".to_string(),
                Json::Array(
                    r.incidents
                        .iter()
                        .map(|(kind, struck, episodes)| {
                            Json::obj([
                                ("kind", Json::Str(kind.clone())),
                                ("entities_struck", Json::Uint(u128::from(*struck))),
                                ("episodes", Json::Uint(u128::from(*episodes))),
                            ])
                        })
                        .collect(),
                ),
            ));
        }
        if !r.controllers.is_empty() {
            pairs.push((
                "controllers".to_string(),
                Json::Array(
                    r.controllers
                        .iter()
                        .map(|(name, value)| {
                            Json::obj([
                                ("controller", Json::Str(name.clone())),
                                ("value", Json::Uint(u128::from(*value))),
                            ])
                        })
                        .collect(),
                ),
            ));
        }
        body
    }

    /// Renders the `deterministic` section (without the digest field) as
    /// a JSON value. Field order is fixed; this is the byte-compared
    /// surface of the determinism contract.
    fn deterministic_body(&self) -> Json {
        let d = &self.deterministic;
        Json::obj([
            ("seed", Json::Uint(u128::from(d.seed))),
            ("scale", Json::Str(d.scale.clone())),
            ("total_methods", Json::Uint(u128::from(d.total_methods))),
            ("roots", Json::Uint(u128::from(d.roots))),
            ("spans", Json::Uint(u128::from(d.spans))),
            ("traces_sampled", Json::Uint(u128::from(d.traces_sampled))),
            (
                "trace_stored_spans",
                Json::Uint(u128::from(d.trace_stored_spans)),
            ),
            ("errors_total", Json::Uint(u128::from(d.errors_total))),
            ("errors_by_kind", named_u64s(&d.errors_by_kind)),
            ("hedges_issued", Json::Uint(u128::from(d.hedges_issued))),
            ("max_depth", Json::Uint(u128::from(d.max_depth))),
            (
                "queue",
                Json::obj([
                    ("samples", Json::Uint(u128::from(d.queue.samples))),
                    ("waits", Json::Uint(u128::from(d.queue.waits))),
                    ("total_wait_ns", Json::Uint(d.queue.total_wait_ns)),
                    ("max_wait_ns", Json::Uint(u128::from(d.queue.max_wait_ns))),
                ]),
            ),
            (
                "wire",
                Json::obj([
                    ("samples", Json::Uint(u128::from(d.wire.samples))),
                    ("congested", Json::Uint(u128::from(d.wire.congested))),
                ]),
            ),
            (
                "root_latency",
                Json::obj([
                    ("count", Json::Uint(u128::from(d.root_latency.count))),
                    ("sum_us", Json::Uint(d.root_latency.sum_us)),
                    ("min_us", Json::Uint(u128::from(d.root_latency.min_us))),
                    ("p50_us", Json::Uint(u128::from(d.root_latency.p50_us))),
                    ("p90_us", Json::Uint(u128::from(d.root_latency.p90_us))),
                    ("p99_us", Json::Uint(u128::from(d.root_latency.p99_us))),
                    ("p999_us", Json::Uint(u128::from(d.root_latency.p999_us))),
                    ("max_us", Json::Uint(u128::from(d.root_latency.max_us))),
                ]),
            ),
            ("cycles_total", Json::Uint(d.cycles_total)),
            ("cycles_by_category", named_u128s(&d.cycles_by_category)),
            ("tax_ppm", Json::Uint(u128::from(d.tax_ppm))),
        ])
    }

    /// The FNV-1a digest of the rendered deterministic section. Equal
    /// digests ⇒ equal deterministic behaviour.
    pub fn digest(&self) -> u64 {
        fnv1a(self.deterministic_body().to_pretty().as_bytes())
    }

    /// Renders only the deterministic section (digest included) — the
    /// exact bytes the shard-invariance test compares.
    pub fn deterministic_json(&self) -> String {
        let mut body = self.deterministic_body();
        let digest = self.digest();
        if let Json::Object(pairs) = &mut body {
            pairs.push(("digest".to_string(), Json::Uint(u128::from(digest))));
        }
        body.to_pretty()
    }

    /// Renders the complete manifest, both sections, as pretty JSON.
    pub fn to_json_string(&self) -> String {
        let mut deterministic = self.deterministic_body();
        let digest = self.digest();
        if let Json::Object(pairs) = &mut deterministic {
            pairs.push(("digest".to_string(), Json::Uint(u128::from(digest))));
        }
        let r = &self.runtime;
        let mut sections: Vec<(String, Json)> = vec![
            (
                "schema_version".to_string(),
                Json::Uint(u128::from(self.schema_version)),
            ),
            ("deterministic".to_string(), deterministic),
        ];
        if let Some(rb) = &self.robustness {
            sections.push(("robustness".to_string(), Self::robustness_json(rb)));
        }
        sections.push((
            "runtime".to_string(),
            Json::obj([
                ("shards", Json::Uint(r.shards as u128)),
                ("threads", Json::Uint(r.threads as u128)),
                (
                    "per_shard",
                    Json::Array(
                        r.per_shard
                            .iter()
                            .map(|&(shard, roots, spans, wall_ms)| {
                                Json::obj([
                                    ("shard", Json::Uint(shard as u128)),
                                    ("roots", Json::Uint(u128::from(roots))),
                                    ("spans", Json::Uint(u128::from(spans))),
                                    ("wall_ms", Json::Float(wall_ms)),
                                ])
                            })
                            .collect(),
                    ),
                ),
                (
                    "phases",
                    Json::Array(
                        r.phases
                            .iter()
                            .map(|(name, ms)| {
                                Json::obj([
                                    ("phase", Json::Str(name.clone())),
                                    ("wall_ms", Json::Float(*ms)),
                                ])
                            })
                            .collect(),
                    ),
                ),
                ("total_wall_ms", Json::Float(r.total_wall_ms)),
            ]),
        ));
        Json::Object(sections).to_pretty()
    }

    /// Parses a manifest previously written by [`RunManifest::to_json_string`].
    ///
    /// # Errors
    ///
    /// Returns a message on malformed JSON, a schema-version mismatch, or
    /// a digest that does not match the deterministic fields.
    pub fn parse(text: &str) -> Result<RunManifest, String> {
        let root = json::parse(text).map_err(|e| e.to_string())?;
        let version = root
            .get("schema_version")
            .and_then(Json::as_u64)
            .ok_or("missing schema_version")?;
        // Older versions are strict subsets of newer ones: v1 lacks the
        // `robustness` section, v2 lacks its `incidents`/`controllers`
        // tables. All parse identically with the absent parts defaulted.
        if !(1..=u64::from(MANIFEST_SCHEMA_VERSION)).contains(&version) {
            return Err(format!(
                "unsupported manifest schema version {version} (expected {MANIFEST_SCHEMA_VERSION})"
            ));
        }
        let det = root.get("deterministic").ok_or("missing deterministic")?;
        let need_u64 = |section: &Json, key: &str| -> Result<u64, String> {
            section
                .get(key)
                .and_then(Json::as_u64)
                .ok_or_else(|| format!("missing or non-integer field '{key}'"))
        };
        let need_u128 = |section: &Json, key: &str| -> Result<u128, String> {
            section
                .get(key)
                .and_then(Json::as_u128)
                .ok_or_else(|| format!("missing or non-integer field '{key}'"))
        };
        let queue = det.get("queue").ok_or("missing queue")?;
        let wire = det.get("wire").ok_or("missing wire")?;
        let lat = det.get("root_latency").ok_or("missing root_latency")?;
        let pairs_u64 = |key: &str| -> Result<Vec<(String, u64)>, String> {
            match det.get(key) {
                Some(Json::Object(pairs)) => pairs
                    .iter()
                    .map(|(k, v)| {
                        v.as_u64()
                            .map(|n| (k.clone(), n))
                            .ok_or_else(|| format!("non-integer value in '{key}'"))
                    })
                    .collect(),
                _ => Err(format!("missing object '{key}'")),
            }
        };
        let pairs_u128 = |key: &str| -> Result<Vec<(String, u128)>, String> {
            match det.get(key) {
                Some(Json::Object(pairs)) => pairs
                    .iter()
                    .map(|(k, v)| {
                        v.as_u128()
                            .map(|n| (k.clone(), n))
                            .ok_or_else(|| format!("non-integer value in '{key}'"))
                    })
                    .collect(),
                _ => Err(format!("missing object '{key}'")),
            }
        };
        let deterministic = DeterministicSection {
            seed: need_u64(det, "seed")?,
            scale: det
                .get("scale")
                .and_then(Json::as_str)
                .ok_or("missing scale")?
                .to_string(),
            total_methods: need_u64(det, "total_methods")?,
            roots: need_u64(det, "roots")?,
            spans: need_u64(det, "spans")?,
            traces_sampled: need_u64(det, "traces_sampled")?,
            trace_stored_spans: need_u64(det, "trace_stored_spans")?,
            errors_total: need_u64(det, "errors_total")?,
            errors_by_kind: pairs_u64("errors_by_kind")?,
            hedges_issued: need_u64(det, "hedges_issued")?,
            max_depth: need_u64(det, "max_depth")?,
            queue: QueueTelemetry {
                samples: need_u64(queue, "samples")?,
                waits: need_u64(queue, "waits")?,
                total_wait_ns: need_u128(queue, "total_wait_ns")?,
                max_wait_ns: need_u64(queue, "max_wait_ns")?,
            },
            wire: WireTelemetry {
                samples: need_u64(wire, "samples")?,
                congested: need_u64(wire, "congested")?,
            },
            root_latency: LatencyQuantiles {
                count: need_u64(lat, "count")?,
                sum_us: need_u128(lat, "sum_us")?,
                min_us: need_u64(lat, "min_us")?,
                p50_us: need_u64(lat, "p50_us")?,
                p90_us: need_u64(lat, "p90_us")?,
                p99_us: need_u64(lat, "p99_us")?,
                p999_us: need_u64(lat, "p999_us")?,
                max_us: need_u64(lat, "max_us")?,
            },
            cycles_total: need_u128(det, "cycles_total")?,
            cycles_by_category: pairs_u128("cycles_by_category")?,
            tax_ppm: need_u64(det, "tax_ppm")?,
        };
        let robustness = match root.get("robustness") {
            Some(rb) => Some(RobustnessSection {
                scenario: rb
                    .get("scenario")
                    .and_then(Json::as_str)
                    .ok_or("missing robustness scenario")?
                    .to_string(),
                retries_issued: need_u64(rb, "retries_issued")?,
                retries_denied: need_u64(rb, "retries_denied")?,
                failovers: need_u64(rb, "failovers")?,
                causal_unavailable: need_u64(rb, "causal_unavailable")?,
                load_sheds: need_u64(rb, "load_sheds")?,
                deadline_exceeded: need_u64(rb, "deadline_exceeded")?,
                errors: rb
                    .get("errors")
                    .and_then(Json::as_array)
                    .ok_or("missing robustness errors")?
                    .iter()
                    .map(|row| {
                        Some((
                            row.get("kind")?.as_str()?.to_string(),
                            row.get("count")?.as_u64()?,
                            row.get("wasted_cycles")?.as_u128()?,
                        ))
                    })
                    .collect::<Option<Vec<_>>>()
                    .ok_or("malformed robustness errors row")?,
                incidents: rb
                    .get("incidents")
                    .and_then(Json::as_array)
                    .unwrap_or(&[])
                    .iter()
                    .map(|row| {
                        Some((
                            row.get("kind")?.as_str()?.to_string(),
                            row.get("entities_struck")?.as_u64()?,
                            row.get("episodes")?.as_u64()?,
                        ))
                    })
                    .collect::<Option<Vec<_>>>()
                    .ok_or("malformed robustness incidents row")?,
                controllers: rb
                    .get("controllers")
                    .and_then(Json::as_array)
                    .unwrap_or(&[])
                    .iter()
                    .map(|row| {
                        Some((
                            row.get("controller")?.as_str()?.to_string(),
                            row.get("value")?.as_u64()?,
                        ))
                    })
                    .collect::<Option<Vec<_>>>()
                    .ok_or("malformed robustness controllers row")?,
            }),
            None => None,
        };
        let runtime = match root.get("runtime") {
            Some(rt) => RuntimeSection {
                shards: rt.get("shards").and_then(Json::as_u64).unwrap_or(0) as usize,
                threads: rt.get("threads").and_then(Json::as_u64).unwrap_or(0) as usize,
                per_shard: rt
                    .get("per_shard")
                    .and_then(Json::as_array)
                    .unwrap_or(&[])
                    .iter()
                    .filter_map(|row| {
                        Some((
                            row.get("shard")?.as_u64()? as usize,
                            row.get("roots")?.as_u64()?,
                            row.get("spans")?.as_u64()?,
                            row.get("wall_ms")?.as_f64()?,
                        ))
                    })
                    .collect(),
                phases: rt
                    .get("phases")
                    .and_then(Json::as_array)
                    .unwrap_or(&[])
                    .iter()
                    .filter_map(|row| {
                        Some((
                            row.get("phase")?.as_str()?.to_string(),
                            row.get("wall_ms")?.as_f64()?,
                        ))
                    })
                    .collect(),
                total_wall_ms: rt
                    .get("total_wall_ms")
                    .and_then(Json::as_f64)
                    .unwrap_or(0.0),
            },
            None => RuntimeSection::default(),
        };
        let manifest = RunManifest {
            schema_version: version as u32,
            deterministic,
            robustness,
            runtime,
        };
        if let Some(stored) = det.get("digest").and_then(Json::as_u64) {
            let recomputed = manifest.digest();
            if stored != recomputed {
                return Err(format!(
                    "manifest digest mismatch: stored {stored}, recomputed {recomputed} \
                     (deterministic fields were edited or the file is corrupt)"
                ));
            }
        }
        Ok(manifest)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::telemetry::{PhaseTimings, RunTelemetry, ShardCounters, ShardReport};

    fn sample_manifest() -> RunManifest {
        let mut counters = ShardCounters::new();
        counters.roots = 1000;
        counters.spans = 8200;
        counters.traces_sampled = 31;
        counters.errors_injected = 12;
        counters.hedges_issued = 7;
        counters.max_depth = 5;
        for i in 0..1000u64 {
            counters.root_latency_us.record(50 + i * 3 % 9000);
            counters.queue.record((i % 4) * 250);
            counters.wire.record(i % 17 == 0);
        }
        let telemetry = RunTelemetry {
            counters,
            per_shard: vec![
                ShardReport {
                    shard: 0,
                    roots: 500,
                    spans: 4100,
                    wall_ms: 1.5,
                },
                ShardReport {
                    shard: 1,
                    roots: 500,
                    spans: 4100,
                    wall_ms: 1.75,
                },
            ],
            phases: {
                let mut p = PhaseTimings::new();
                p.record("generate", 0.5);
                p.record("simulate", 3.25);
                p.record("merge", 0.125);
                p
            },
            shards_used: 2,
            threads_used: 2,
        };
        RunManifest::from_telemetry(
            &telemetry,
            42,
            "smoke",
            320,
            900,
            vec![
                ("deadline".to_string(), 6),
                ("transport".to_string(), 4),
                ("cancelled".to_string(), 2),
            ],
            vec![
                ("app".to_string(), 900_000_000_000u128),
                ("serialization".to_string(), 120_000_000_000u128),
                ("compression".to_string(), 80_000_000_000u128),
            ],
            181_818,
        )
    }

    #[test]
    fn roundtrips_through_json() {
        let m = sample_manifest();
        let text = m.to_json_string();
        let back = RunManifest::parse(&text).expect("parse own output");
        assert_eq!(back.deterministic, m.deterministic);
        assert_eq!(back.runtime.shards, 2);
        assert_eq!(back.runtime.threads, 2);
        assert_eq!(back.runtime.per_shard.len(), 2);
        assert_eq!(back.runtime.phases.len(), 3);
        // Re-render of the parse is byte-identical.
        assert_eq!(back.to_json_string(), text);
    }

    #[test]
    fn deterministic_section_excludes_runtime() {
        let m = sample_manifest();
        let det = m.deterministic_json();
        assert!(!det.contains("wall_ms"), "wall clock leaked: {det}");
        assert!(!det.contains("per_shard"));
        assert!(!det.contains("shards"));
        assert!(!det.contains("threads"));
        assert!(det.contains("\"digest\""));
    }

    #[test]
    fn runtime_changes_do_not_move_the_digest() {
        let mut a = sample_manifest();
        let d0 = a.digest();
        a.runtime.per_shard.clear();
        a.runtime.phases.clear();
        a.runtime.shards = 8;
        a.runtime.threads = 8;
        a.runtime.total_wall_ms = 99.0;
        assert_eq!(a.digest(), d0);
        assert_eq!(
            a.deterministic_json(),
            sample_manifest().deterministic_json()
        );
    }

    #[test]
    fn tampered_deterministic_fields_fail_digest_check() {
        let m = sample_manifest();
        let text = m.to_json_string();
        let tampered = text.replacen("\"roots\": 1000", "\"roots\": 1001", 1);
        assert_ne!(tampered, text, "replacement must hit");
        let e = RunManifest::parse(&tampered).unwrap_err();
        assert!(e.contains("digest mismatch"), "{e}");
    }

    #[test]
    fn wrong_schema_version_is_rejected() {
        let m = sample_manifest();
        let text =
            m.to_json_string()
                .replacen("\"schema_version\": 3", "\"schema_version\": 999", 1);
        let e = RunManifest::parse(&text).unwrap_err();
        assert!(e.contains("schema version"), "{e}");
    }

    #[test]
    fn v1_manifests_still_parse() {
        let m = sample_manifest();
        let text = m
            .to_json_string()
            .replacen("\"schema_version\": 3", "\"schema_version\": 1", 1);
        let back = RunManifest::parse(&text).expect("v1 parses");
        assert_eq!(back.deterministic, m.deterministic);
        assert!(back.robustness.is_none());
    }

    #[test]
    fn v2_manifests_still_parse() {
        // A v2 manifest: robustness section present but without the v3
        // incidents/controllers tables (which v2 writers never emitted).
        let mut m = sample_manifest();
        let mut rb = sample_robustness();
        rb.incidents.clear();
        rb.controllers.clear();
        m.robustness = Some(rb);
        let text = m
            .to_json_string()
            .replacen("\"schema_version\": 3", "\"schema_version\": 2", 1);
        let back = RunManifest::parse(&text).expect("v2 parses");
        assert_eq!(back.deterministic, m.deterministic);
        let rb = back.robustness.expect("robustness kept");
        assert_eq!(rb.scenario, "chaos-smoke");
        assert!(rb.incidents.is_empty());
        assert!(rb.controllers.is_empty());
    }

    fn sample_robustness() -> RobustnessSection {
        RobustnessSection {
            scenario: "chaos-smoke".to_string(),
            retries_issued: 40,
            retries_denied: 3,
            failovers: 25,
            causal_unavailable: 18,
            load_sheds: 9,
            deadline_exceeded: 11,
            errors: vec![
                ("unavailable".to_string(), 18, 5_000_000u128),
                ("no_resource".to_string(), 9, 2_000_000u128),
            ],
            incidents: vec![
                ("drain".to_string(), 3, 14),
                ("wan-cut".to_string(), 6, 9),
                ("front".to_string(), 12, 21),
            ],
            controllers: vec![
                ("autoscaler_scaled_windows".to_string(), 37),
                ("lb_shifts".to_string(), 120),
                ("admission_shed".to_string(), 44),
            ],
        }
    }

    #[test]
    fn robustness_section_roundtrips_and_leaves_digest_alone() {
        let mut m = sample_manifest();
        let d0 = m.digest();
        m.robustness = Some(sample_robustness());
        assert_eq!(m.digest(), d0, "robustness must not move the digest");
        let text = m.to_json_string();
        assert!(text.contains("\"robustness\""));
        assert!(text.contains("\"incidents\""));
        assert!(text.contains("\"controllers\""));
        let back = RunManifest::parse(&text).expect("parse own output");
        assert_eq!(back.robustness, m.robustness);
        assert_eq!(back.to_json_string(), text);
    }

    #[test]
    fn empty_incident_and_controller_tables_are_omitted() {
        let mut m = sample_manifest();
        let mut rb = sample_robustness();
        rb.incidents.clear();
        rb.controllers.clear();
        m.robustness = Some(rb);
        let text = m.to_json_string();
        assert!(!text.contains("\"incidents\""));
        assert!(!text.contains("\"controllers\""));
        let back = RunManifest::parse(&text).expect("parse own output");
        assert_eq!(back.robustness, m.robustness);
    }

    #[test]
    fn fault_free_manifests_omit_robustness() {
        let m = sample_manifest();
        assert!(!m.to_json_string().contains("robustness"));
    }

    #[test]
    fn errors_total_and_cycles_total_are_sums() {
        let m = sample_manifest();
        assert_eq!(m.deterministic.errors_total, 12);
        assert_eq!(m.deterministic.cycles_total, 1_100_000_000_000u128);
    }
}
