//! The what-if tail engine behind Fig. 15.
//!
//! The paper asks, for each service and each latency component: if this
//! component of every P95-tail RPC were replaced by the *method median*
//! value of that component, what percentage of those tail RPCs would drop
//! below the original P95 threshold (i.e. become non-tail)?

use rpclens_rpcstack::component::{LatencyBreakdown, LatencyComponent};
use rpclens_simcore::stats::{percentile, sorted_finite};
use rpclens_simcore::time::SimDuration;

/// Result of a what-if analysis over one span population.
#[derive(Debug, Clone)]
pub struct WhatIfResult {
    /// The original P95 latency threshold, seconds.
    pub p95_secs: f64,
    /// Number of tail spans analysed.
    pub tail_count: usize,
    /// Per component: fraction of tail spans cured (in lifecycle order).
    pub cured_fraction: [f64; 9],
}

impl WhatIfResult {
    /// The cured fraction for one component.
    pub fn cured(&self, c: LatencyComponent) -> f64 {
        let idx = LatencyComponent::ALL
            .iter()
            .position(|&x| x == c)
            .expect("component in ALL");
        self.cured_fraction[idx]
    }

    /// The component whose median-substitution cures the most tail RPCs.
    pub fn dominant(&self) -> LatencyComponent {
        let mut best = 0;
        for i in 1..9 {
            if self.cured_fraction[i] > self.cured_fraction[best] {
                best = i;
            }
        }
        LatencyComponent::ALL[best]
    }
}

/// Runs the what-if analysis on a set of per-span breakdowns.
///
/// Returns `None` if there are too few spans for a stable P95 (< 100).
pub fn what_if_p95(breakdowns: &[LatencyBreakdown]) -> Option<WhatIfResult> {
    if breakdowns.len() < 100 {
        return None;
    }
    let totals = sorted_finite(breakdowns.iter().map(|b| b.total().as_secs_f64()).collect());
    let p95 = percentile(&totals, 0.95)?;

    // Component medians over the whole population.
    let mut medians = [0.0f64; 9];
    for (i, &c) in LatencyComponent::ALL.iter().enumerate() {
        let vals = sorted_finite(breakdowns.iter().map(|b| b.get(c).as_secs_f64()).collect());
        medians[i] = percentile(&vals, 0.5)?;
    }

    // For each tail span, test each single-component substitution.
    let tail: Vec<&LatencyBreakdown> = breakdowns
        .iter()
        .filter(|b| b.total().as_secs_f64() > p95)
        .collect();
    if tail.is_empty() {
        return None;
    }
    let mut cured = [0usize; 9];
    for b in &tail {
        for (i, &c) in LatencyComponent::ALL.iter().enumerate() {
            let substituted = b.with_component(c, SimDuration::from_secs_f64(medians[i]));
            if substituted.total().as_secs_f64() <= p95 {
                cured[i] += 1;
            }
        }
    }
    let mut cured_fraction = [0.0f64; 9];
    for i in 0..9 {
        cured_fraction[i] = cured[i] as f64 / tail.len() as f64;
    }
    Some(WhatIfResult {
        p95_secs: p95,
        tail_count: tail.len(),
        cured_fraction,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use rpclens_simcore::rng::Prng;

    fn breakdown(app_us: f64, queue_us: f64) -> LatencyBreakdown {
        let mut b = LatencyBreakdown::new();
        b.set(
            LatencyComponent::ServerApplication,
            SimDuration::from_micros_f64(app_us),
        );
        b.set(
            LatencyComponent::ServerRecvQueue,
            SimDuration::from_micros_f64(queue_us),
        );
        b
    }

    #[test]
    fn too_few_spans_yield_none() {
        let pop: Vec<LatencyBreakdown> = (0..50).map(|_| breakdown(100.0, 1.0)).collect();
        assert!(what_if_p95(&pop).is_none());
    }

    #[test]
    fn queue_dominated_tail_is_cured_by_queue_substitution() {
        // 95% of spans: 1 ms app, tiny queue. 5%: same app, huge queue.
        let mut rng = Prng::seed_from(1);
        let pop: Vec<LatencyBreakdown> = (0..2000)
            .map(|i| {
                let queue = if i % 20 == 0 { 50_000.0 } else { 10.0 };
                let app = 1000.0 + rng.next_f64() * 100.0;
                breakdown(app, queue)
            })
            .collect();
        let r = what_if_p95(&pop).unwrap();
        assert_eq!(r.dominant(), LatencyComponent::ServerRecvQueue);
        assert!(r.cured(LatencyComponent::ServerRecvQueue) > 0.9);
        assert!(r.cured(LatencyComponent::ServerApplication) < 0.2);
    }

    #[test]
    fn app_dominated_tail_is_cured_by_app_substitution() {
        let mut rng = Prng::seed_from(2);
        let pop: Vec<LatencyBreakdown> = (0..2000)
            .map(|i| {
                let app = if i % 15 == 0 { 100_000.0 } else { 1000.0 };
                breakdown(app + rng.next_f64() * 10.0, 100.0)
            })
            .collect();
        let r = what_if_p95(&pop).unwrap();
        assert_eq!(r.dominant(), LatencyComponent::ServerApplication);
        assert!(r.cured(LatencyComponent::ServerApplication) > 0.9);
    }

    #[test]
    fn cured_fractions_are_probabilities() {
        let mut rng = Prng::seed_from(3);
        let pop: Vec<LatencyBreakdown> = (0..1000)
            .map(|_| breakdown(rng.next_f64() * 10_000.0, rng.next_f64() * 10_000.0))
            .collect();
        let r = what_if_p95(&pop).unwrap();
        for f in r.cured_fraction {
            assert!((0.0..=1.0).contains(&f));
        }
        assert!(r.tail_count >= 40 && r.tail_count <= 60, "{}", r.tail_count);
        assert!(r.p95_secs > 0.0);
    }

    #[test]
    fn substituting_an_already_small_component_cures_nothing() {
        // Tail comes from app; the network component is always zero, so
        // substituting it changes nothing.
        let pop: Vec<LatencyBreakdown> = (0..1000)
            .map(|i| breakdown(if i % 25 == 0 { 50_000.0 } else { 500.0 }, 1.0))
            .collect();
        let r = what_if_p95(&pop).unwrap();
        assert_eq!(r.cured(LatencyComponent::RequestNetworkWire), 0.0);
    }
}
