//! Table 2: the exogenous variables and their observed fleet ranges.

use crate::check::ExpectationSet;
use crate::render::TextTable;
use rpclens_fleet::driver::FleetRun;
use rpclens_simcore::time::{SimDuration, SimTime};

/// One variable's definition and observed range.
#[derive(Debug)]
pub struct VariableRow {
    /// Variable name (Table 2).
    pub name: &'static str,
    /// Description (Table 2).
    pub description: &'static str,
    /// Minimum day-average observed across sites.
    pub min: f64,
    /// Maximum day-average observed across sites.
    pub max: f64,
}

/// The computed table.
#[derive(Debug)]
pub struct Table2 {
    /// The four variables.
    pub rows: Vec<VariableRow>,
}

/// Computes observed ranges across all deployment sites.
pub fn compute(run: &FleetRun) -> Table2 {
    let day = SimDuration::from_hours(24);
    let mut ranges = [[f64::MAX, f64::MIN]; 4];
    for site in run.sites.values() {
        let v = site.load.window_average(SimTime::ZERO, day);
        let vals = [v.cpu_util * 100.0, v.mem_bw_gbps, v.long_wakeup_rate, v.cpi];
        for (r, val) in ranges.iter_mut().zip(vals) {
            r[0] = r[0].min(val);
            r[1] = r[1].max(val);
        }
    }
    let defs = [
        ("CPU util", "% CPU utilized"),
        ("Memory BW", "Total memory bandwidth utilized (GB/s)"),
        (
            "Long wakeup rate",
            "Fraction of scheduling events longer than 50 us",
        ),
        ("Cycles per Inst.", "CPU's cycles per instruction"),
    ];
    Table2 {
        rows: defs
            .iter()
            .zip(ranges)
            .map(|(&(name, description), r)| VariableRow {
                name,
                description,
                min: r[0],
                max: r[1],
            })
            .collect(),
    }
}

/// Renders the table.
pub fn render(t2: &Table2) -> String {
    let mut t = TextTable::new(&["variable", "description", "observed range"]);
    for r in &t2.rows {
        t.row(vec![
            r.name.to_string(),
            r.description.to_string(),
            format!("{:.3} .. {:.3}", r.min, r.max),
        ]);
    }
    format!("Table 2 — Exogenous variables\n{}", t.render())
}

/// Checks the observed ranges are physically sensible.
pub fn checks(t2: &Table2) -> ExpectationSet {
    let mut s = ExpectationSet::new();
    let row = |name: &str| t2.rows.iter().find(|r| r.name == name).expect("row");
    let cpu = row("CPU util");
    s.add(
        "table2.cpu_min",
        "CPU util spans a wide range",
        cpu.min,
        0.0,
        50.0,
    );
    s.add("table2.cpu_max", "hot sites run high", cpu.max, 50.0, 100.0);
    let bw = row("Memory BW");
    s.add(
        "table2.membw",
        "memory bandwidth in tens of GB/s",
        bw.max,
        30.0,
        130.0,
    );
    let wk = row("Long wakeup rate");
    s.add(
        "table2.wakeup",
        "long-wakeup rate is a small fraction",
        wk.max,
        0.001,
        0.2,
    );
    let cpi = row("Cycles per Inst.");
    s.add("table2.cpi", "CPI near 1-2", cpi.max, 0.9, 2.5);
    s
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::common::testrun::shared;

    #[test]
    fn checks_pass_on_test_run() {
        let t2 = compute(shared());
        let c = checks(&t2);
        assert!(c.all_passed(), "{c}");
    }

    #[test]
    fn four_variables_with_ranges() {
        let t2 = compute(shared());
        assert_eq!(t2.rows.len(), 4);
        for r in &t2.rows {
            assert!(r.min <= r.max, "{}: {} > {}", r.name, r.min, r.max);
        }
        assert!(render(&t2).contains("Long wakeup rate"));
    }
}
