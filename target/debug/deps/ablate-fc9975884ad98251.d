/root/repo/target/debug/deps/ablate-fc9975884ad98251.d: crates/bench/src/bin/ablate.rs

/root/repo/target/debug/deps/ablate-fc9975884ad98251: crates/bench/src/bin/ablate.rs

crates/bench/src/bin/ablate.rs:
