//! Shared plumbing for the benchmark harness, the `repro` binary, and
//! the `ablate` binary.

pub mod ablation;
pub mod inspect;
pub mod wire;
pub mod wiretrace;

use rpclens_core::check::ExpectationSet;
use rpclens_fleet::driver::{run_fleet, FleetConfig, FleetRun, SimScale};
use rpclens_fleet::faults::FaultScenario;
use rpclens_fleet::growth::GrowthConfig;

/// Every regenerable artifact.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Artifact {
    /// Fig. 1 (growth model; no fleet run needed).
    Fig1,
    /// Fig. 2.
    Fig2,
    /// Fig. 3.
    Fig3,
    /// Fig. 4.
    Fig4,
    /// Fig. 5.
    Fig5,
    /// Fig. 6.
    Fig6,
    /// Fig. 7.
    Fig7,
    /// Fig. 8.
    Fig8,
    /// Fig. 10.
    Fig10,
    /// Fig. 11.
    Fig11,
    /// Fig. 12.
    Fig12,
    /// Fig. 13.
    Fig13,
    /// Fig. 14.
    Fig14,
    /// Fig. 15.
    Fig15,
    /// Fig. 16.
    Fig16,
    /// Fig. 17.
    Fig17,
    /// Fig. 18.
    Fig18,
    /// Fig. 19.
    Fig19,
    /// Fig. 20.
    Fig20,
    /// Fig. 21.
    Fig21,
    /// Fig. 22.
    Fig22,
    /// Fig. 23.
    Fig23,
    /// Table 1.
    Table1,
    /// Table 2.
    Table2,
    /// §2.4 comparison.
    Compare,
}

impl Artifact {
    /// All artifacts in paper order.
    pub const ALL: [Artifact; 25] = [
        Artifact::Fig1,
        Artifact::Fig2,
        Artifact::Fig3,
        Artifact::Fig4,
        Artifact::Fig5,
        Artifact::Fig6,
        Artifact::Fig7,
        Artifact::Fig8,
        Artifact::Fig10,
        Artifact::Fig11,
        Artifact::Fig12,
        Artifact::Fig13,
        Artifact::Fig14,
        Artifact::Fig15,
        Artifact::Fig16,
        Artifact::Fig17,
        Artifact::Fig18,
        Artifact::Fig19,
        Artifact::Fig20,
        Artifact::Fig21,
        Artifact::Fig22,
        Artifact::Fig23,
        Artifact::Table1,
        Artifact::Table2,
        Artifact::Compare,
    ];

    /// Parses a CLI name like `fig12`, `table1`, or `compare`.
    pub fn parse(name: &str) -> Option<Artifact> {
        let name = name.to_lowercase();
        Artifact::ALL.iter().copied().find(|a| a.name() == name)
    }

    /// The CLI name.
    pub fn name(self) -> &'static str {
        match self {
            Artifact::Fig1 => "fig1",
            Artifact::Fig2 => "fig2",
            Artifact::Fig3 => "fig3",
            Artifact::Fig4 => "fig4",
            Artifact::Fig5 => "fig5",
            Artifact::Fig6 => "fig6",
            Artifact::Fig7 => "fig7",
            Artifact::Fig8 => "fig8",
            Artifact::Fig10 => "fig10",
            Artifact::Fig11 => "fig11",
            Artifact::Fig12 => "fig12",
            Artifact::Fig13 => "fig13",
            Artifact::Fig14 => "fig14",
            Artifact::Fig15 => "fig15",
            Artifact::Fig16 => "fig16",
            Artifact::Fig17 => "fig17",
            Artifact::Fig18 => "fig18",
            Artifact::Fig19 => "fig19",
            Artifact::Fig20 => "fig20",
            Artifact::Fig21 => "fig21",
            Artifact::Fig22 => "fig22",
            Artifact::Fig23 => "fig23",
            Artifact::Table1 => "table1",
            Artifact::Table2 => "table2",
            Artifact::Compare => "compare",
        }
    }

    /// Whether the artifact needs a fleet simulation (Fig. 1 does not).
    pub fn needs_run(self) -> bool {
        self != Artifact::Fig1
    }
}

/// Renders one artifact and returns `(text, checks)`.
pub fn produce(artifact: Artifact, run: Option<&FleetRun>) -> (String, ExpectationSet) {
    use rpclens_core::figs as f;
    match artifact {
        Artifact::Fig1 => {
            let fig = f::fig01::compute(&GrowthConfig::default());
            (f::fig01::render(&fig), f::fig01::checks(&fig))
        }
        other => {
            let run = run.expect("artifact needs a fleet run");
            match other {
                Artifact::Fig2 => {
                    let fig = f::fig02::compute(run);
                    (f::fig02::render(&fig), f::fig02::checks(&fig))
                }
                Artifact::Fig3 => {
                    let fig = f::fig03::compute(run);
                    (f::fig03::render(&fig), f::fig03::checks(&fig))
                }
                Artifact::Fig4 => {
                    let fig = f::fig04::compute(run);
                    (f::fig04::render(&fig), f::fig04::checks(&fig))
                }
                Artifact::Fig5 => {
                    let fig = f::fig05::compute(run);
                    (f::fig05::render(&fig), f::fig05::checks(&fig))
                }
                Artifact::Fig6 => {
                    let fig = f::fig06::compute(run);
                    (f::fig06::render(&fig), f::fig06::checks(&fig))
                }
                Artifact::Fig7 => {
                    let fig = f::fig07::compute(run);
                    (f::fig07::render(&fig), f::fig07::checks(&fig))
                }
                Artifact::Fig8 => {
                    let fig = f::fig08::compute(run);
                    (f::fig08::render(&fig), f::fig08::checks(&fig))
                }
                Artifact::Fig10 => {
                    let fig = f::fig10::compute(run);
                    (f::fig10::render(&fig), f::fig10::checks(&fig))
                }
                Artifact::Fig11 => {
                    let fig = f::fig11::compute(run);
                    (f::fig11::render(&fig), f::fig11::checks(&fig))
                }
                Artifact::Fig12 => {
                    let fig = f::fig12::compute(run);
                    (f::fig12::render(&fig), f::fig12::checks(&fig))
                }
                Artifact::Fig13 => {
                    let fig = f::fig13::compute(run);
                    (f::fig13::render(&fig), f::fig13::checks(&fig))
                }
                Artifact::Fig14 => {
                    let fig = f::fig14::compute(run);
                    (f::fig14::render(&fig), f::fig14::checks(&fig))
                }
                Artifact::Fig15 => {
                    let fig = f::fig15::compute(run);
                    (f::fig15::render(&fig), f::fig15::checks(&fig))
                }
                Artifact::Fig16 => {
                    let fig = f::fig16::compute(run);
                    (f::fig16::render(&fig), f::fig16::checks(&fig))
                }
                Artifact::Fig17 => {
                    let fig = f::fig17::compute(run);
                    (f::fig17::render(&fig), f::fig17::checks(&fig))
                }
                Artifact::Fig18 => match f::fig18::compute(run) {
                    Some(fig) => (f::fig18::render(&fig), f::fig18::checks(&fig)),
                    None => (
                        "Fig. 18 — not enough Bigtable clusters at this scale\n".to_string(),
                        ExpectationSet::new(),
                    ),
                },
                Artifact::Fig19 => {
                    let fig = f::fig19::compute(run);
                    (f::fig19::render(&fig), f::fig19::checks(&fig))
                }
                Artifact::Fig20 => {
                    let fig = f::fig20::compute(run);
                    (f::fig20::render(&fig), f::fig20::checks(&fig))
                }
                Artifact::Fig21 => {
                    let fig = f::fig21::compute(run);
                    (f::fig21::render(&fig), f::fig21::checks(&fig))
                }
                Artifact::Fig22 => {
                    let fig = f::fig22::compute(run);
                    (f::fig22::render(&fig), f::fig22::checks(&fig))
                }
                Artifact::Fig23 => {
                    let fig = f::fig23::compute(run);
                    (f::fig23::render(&fig), f::fig23::checks(&fig))
                }
                Artifact::Table1 => (f::table1::render(run), f::table1::checks(run)),
                Artifact::Table2 => {
                    let t = f::table2::compute(run);
                    (f::table2::render(&t), f::table2::checks(&t))
                }
                Artifact::Compare => {
                    let c = f::compare::compute(run);
                    (f::compare::render(&c), f::compare::checks(&c))
                }
                Artifact::Fig1 => unreachable!("handled above"),
            }
        }
    }
}

/// Resolves a scale preset by CLI name.
pub fn scale_by_name(name: &str) -> Option<SimScale> {
    match name {
        "smoke" => Some(SimScale::smoke()),
        "default" => Some(SimScale::default_scale()),
        "paper" => Some(SimScale::paper()),
        "fleet" => Some(SimScale::fleet()),
        _ => None,
    }
}

/// Peak resident set size of this process in bytes, if the platform
/// exposes it.
///
/// Reads `VmHWM` from `/proc/self/status` (Linux). The high-water mark
/// is monotone over the process lifetime, so callers gating on it must
/// run the workload under test in a dedicated process (the
/// `bench-ceiling rss` subcommand does exactly that); within one
/// process, later measurements can only report the max of everything
/// that ran before them. Returns `None` where procfs is unavailable —
/// callers treat that as "cannot measure", never as a failure.
pub fn peak_rss_bytes() -> Option<u64> {
    let status = std::fs::read_to_string("/proc/self/status").ok()?;
    let line = status.lines().find(|l| l.starts_with("VmHWM:"))?;
    let kb: u64 = line.split_whitespace().nth(1)?.parse().ok()?;
    Some(kb * 1024)
}

/// Runs the fleet at a scale preset.
pub fn run_at(scale: SimScale) -> FleetRun {
    run_fleet(FleetConfig::at_scale(scale))
}

/// Runs the fleet at a scale preset with an explicit shard count.
///
/// `None` keeps the default (one shard per available core). Output is
/// bit-identical regardless of the shard count.
pub fn run_at_sharded(scale: SimScale, shards: Option<usize>) -> FleetRun {
    run_at_sharded_faults(scale, shards, FaultScenario::none())
}

/// Runs the fleet at a scale preset with an explicit shard count and
/// fault scenario. `FaultScenario::none()` reproduces [`run_at_sharded`]
/// bit for bit; any other scenario is still shard-count-invariant.
pub fn run_at_sharded_faults(
    scale: SimScale,
    shards: Option<usize>,
    faults: FaultScenario,
) -> FleetRun {
    run_configured(scale, shards, None, faults)
}

/// Runs the fleet with every execution knob explicit: shard count,
/// worker-pool thread count, and fault scenario.
///
/// `None` keeps the respective default (one shard and one thread per
/// available core). Both knobs are pure wall-clock controls — output is
/// bit-identical at any (shards, threads) combination, which
/// `tests/pool_determinism.rs` pins against the golden digests.
pub fn run_configured(
    scale: SimScale,
    shards: Option<usize>,
    threads: Option<usize>,
    faults: FaultScenario,
) -> FleetRun {
    run_configured_opts(scale, shards, threads, faults, false)
}

/// [`run_configured`] plus the progress switch: when `progress` is set
/// the driver reports per-shard completion on stderr (roots/s, spans/s,
/// wall clock). Progress output never feeds an artifact, so digests are
/// unaffected.
pub fn run_configured_opts(
    scale: SimScale,
    shards: Option<usize>,
    threads: Option<usize>,
    faults: FaultScenario,
    progress: bool,
) -> FleetRun {
    let mut config = FleetConfig::at_scale(scale).with_faults(faults);
    if let Some(shards) = shards {
        config.shards = shards;
    }
    if let Some(threads) = threads {
        config.threads = threads;
    }
    config.progress = progress;
    run_fleet(config)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn artifact_names_roundtrip() {
        for a in Artifact::ALL {
            assert_eq!(Artifact::parse(a.name()), Some(a));
        }
        assert_eq!(Artifact::parse("FIG12"), Some(Artifact::Fig12));
        assert_eq!(Artifact::parse("fig9"), None);
        assert_eq!(Artifact::parse("nope"), None);
    }

    #[test]
    fn fig1_needs_no_run() {
        assert!(!Artifact::Fig1.needs_run());
        assert!(Artifact::Fig2.needs_run());
        let (text, checks) = produce(Artifact::Fig1, None);
        assert!(text.contains("Fig. 1"));
        assert!(checks.all_passed(), "{checks}");
    }

    #[test]
    fn scales_resolve() {
        assert_eq!(scale_by_name("smoke").unwrap().name, "smoke");
        assert_eq!(scale_by_name("default").unwrap().name, "default");
        assert_eq!(scale_by_name("paper").unwrap().name, "paper");
        let fleet = scale_by_name("fleet").unwrap();
        assert_eq!(fleet.name, "fleet");
        assert!(
            fleet.roots >= 2_000_000,
            "fleet preset is millions of roots"
        );
        assert!(
            fleet.trace_sample_rate > 1,
            "fleet preset must head-sample traces to bound memory"
        );
        assert!(scale_by_name("x").is_none());
    }

    #[test]
    fn peak_rss_reads_plausibly() {
        // On Linux the high-water mark must be positive and at least the
        // current heap footprint's order of magnitude; elsewhere the
        // helper reports "cannot measure" rather than failing.
        if let Some(bytes) = peak_rss_bytes() {
            assert!(bytes > 1024 * 1024, "VmHWM under 1 MiB: {bytes}");
        }
    }
}
