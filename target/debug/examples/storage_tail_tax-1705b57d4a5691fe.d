/root/repo/target/debug/examples/storage_tail_tax-1705b57d4a5691fe.d: examples/storage_tail_tax.rs Cargo.toml

/root/repo/target/debug/examples/libstorage_tail_tax-1705b57d4a5691fe.rmeta: examples/storage_tail_tax.rs Cargo.toml

examples/storage_tail_tax.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
