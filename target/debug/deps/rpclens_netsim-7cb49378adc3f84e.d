/root/repo/target/debug/deps/rpclens_netsim-7cb49378adc3f84e.d: crates/netsim/src/lib.rs crates/netsim/src/congestion.rs crates/netsim/src/geo.rs crates/netsim/src/latency.rs crates/netsim/src/topology.rs Cargo.toml

/root/repo/target/debug/deps/librpclens_netsim-7cb49378adc3f84e.rmeta: crates/netsim/src/lib.rs crates/netsim/src/congestion.rs crates/netsim/src/geo.rs crates/netsim/src/latency.rs crates/netsim/src/topology.rs Cargo.toml

crates/netsim/src/lib.rs:
crates/netsim/src/congestion.rs:
crates/netsim/src/geo.rs:
crates/netsim/src/latency.rs:
crates/netsim/src/topology.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
