/root/repo/target/debug/deps/rpclens_trace-dee8b3a7ab21b0eb.d: crates/trace/src/lib.rs crates/trace/src/collector.rs crates/trace/src/critical_path.rs crates/trace/src/export.rs crates/trace/src/query.rs crates/trace/src/span.rs crates/trace/src/tree.rs

/root/repo/target/debug/deps/rpclens_trace-dee8b3a7ab21b0eb: crates/trace/src/lib.rs crates/trace/src/collector.rs crates/trace/src/critical_path.rs crates/trace/src/export.rs crates/trace/src/query.rs crates/trace/src/span.rs crates/trace/src/tree.rs

crates/trace/src/lib.rs:
crates/trace/src/collector.rs:
crates/trace/src/critical_path.rs:
crates/trace/src/export.rs:
crates/trace/src/query.rs:
crates/trace/src/span.rs:
crates/trace/src/tree.rs:
