/root/repo/target/debug/deps/rpclens-f1d347871d834a48.d: src/lib.rs

/root/repo/target/debug/deps/librpclens-f1d347871d834a48.rlib: src/lib.rs

/root/repo/target/debug/deps/librpclens-f1d347871d834a48.rmeta: src/lib.rs

src/lib.rs:
