/root/repo/target/release/deps/ablate-72039f1f87cd464d.d: crates/bench/src/bin/ablate.rs

/root/repo/target/release/deps/ablate-72039f1f87cd464d: crates/bench/src/bin/ablate.rs

crates/bench/src/bin/ablate.rs:
