//! Fig. 6: per-method request size.
//!
//! Paper anchors: the smallest RPC is a single cache line (64 B); half of
//! methods have median requests under 1530 B; P90 request sizes are
//! ~11.8 KB and P99 ~196 KB — small bodies with a heavy tail.

use crate::check::ExpectationSet;
use crate::common::{paper_query, MethodHeatmap};
use crate::render::{fmt_bytes, sketch_cdf, TextTable};
use rpclens_fleet::driver::FleetRun;
use rpclens_simcore::stats::percentile;

/// The computed figure.
#[derive(Debug)]
pub struct Fig06 {
    /// Per-method request-size quantiles (bytes), sorted by median.
    pub requests: MethodHeatmap,
    /// Per-method response-size quantiles (bytes), sorted by median.
    pub responses: MethodHeatmap,
}

/// Computes the figure.
pub fn compute(run: &FleetRun) -> Fig06 {
    let query = paper_query();
    Fig06 {
        requests: MethodHeatmap::build(run, &query, |_, s| s.request_bytes as f64),
        responses: MethodHeatmap::build(run, &query, |_, s| s.response_bytes as f64),
    }
}

/// Renders the figure.
pub fn render(fig: &Fig06) -> String {
    let hm = &fig.requests;
    let mut t = TextTable::new(&["method#", "P10", "P50", "P90", "P99"]);
    let step = (hm.len() / 15).max(1);
    for (i, row) in hm.rows.iter().enumerate().step_by(step) {
        t.row(vec![
            i.to_string(),
            fmt_bytes(row.summary.p10),
            fmt_bytes(row.summary.p50),
            fmt_bytes(row.summary.p90),
            fmt_bytes(row.summary.p99),
        ]);
    }
    format!(
        "Fig. 6 — Per-method request size ({} methods)\n{}\nCDF of per-method median request sizes:\n{}",
        hm.len(),
        t.render(),
        sketch_cdf(&hm.across_methods(0.5), fmt_bytes),
    )
}

/// Paper-vs-measured checks.
pub fn checks(fig: &Fig06) -> ExpectationSet {
    let mut s = ExpectationSet::new();
    let req_medians = fig.requests.across_methods(0.5);
    let resp_medians = fig.responses.across_methods(0.5);
    s.add(
        "fig6.smallest_request",
        "the smallest RPC is a single cache line (64 B)",
        req_medians.first().copied().unwrap_or(f64::NAN),
        64.0,
        512.0,
    );
    s.add(
        "fig6.median_request",
        "half of methods have median requests under 1530 B",
        percentile(&req_medians, 0.5).unwrap_or(f64::NAN),
        128.0,
        4096.0,
    );
    s.add(
        "fig6.median_response",
        "half of methods have median responses under 315 B",
        percentile(&resp_medians, 0.5).unwrap_or(f64::NAN),
        64.0,
        2048.0,
    );
    // Heavy tails: per-method P99 is an order of magnitude above the
    // median for a large fraction of methods.
    let heavy = fig
        .requests
        .rows
        .iter()
        .filter(|r| r.summary.p99 > r.summary.p50 * 8.0)
        .count() as f64
        / fig.requests.rows.len().max(1) as f64;
    s.add(
        "fig6.heavy_tail",
        "P99 sizes are an order of magnitude above medians",
        heavy,
        0.3,
        1.0,
    );
    // The P99 of per-method P99 requests reaches deep into the KB-MB
    // range (paper: 196 KB).
    let p99p99 = fig
        .requests
        .quantile_of_quantiles(0.99, 0.99)
        .unwrap_or(f64::NAN);
    s.add(
        "fig6.p99_tail_bytes",
        "P99 requests reach ~196 KB",
        p99p99,
        20.0 * 1024.0,
        4.0 * 1024.0 * 1024.0,
    );
    s
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::common::testrun::shared;

    #[test]
    fn checks_pass_on_test_run() {
        let fig = compute(shared());
        let c = checks(&fig);
        assert!(c.all_passed(), "{c}");
    }

    #[test]
    fn sizes_respect_global_clamps() {
        let fig = compute(shared());
        for r in &fig.requests.rows {
            assert!(r.summary.p01 >= 64.0);
            assert!(r.summary.p99 <= 4.0 * 1024.0 * 1024.0);
        }
    }

    #[test]
    fn network_disk_write_requests_are_32kb_scale() {
        let run = shared();
        let fig = compute(run);
        let disk = run.catalog.service_by_name("NetworkDisk").unwrap().id;
        let write = run
            .catalog
            .methods()
            .iter()
            .find(|m| m.service == disk && m.name == "Write")
            .unwrap()
            .id;
        let row = fig
            .requests
            .rows
            .iter()
            .find(|r| r.method == write)
            .expect("Write is eligible");
        assert!(
            (8.0 * 1024.0..128.0 * 1024.0).contains(&row.summary.p50),
            "Write median {}",
            row.summary.p50
        );
    }
}
