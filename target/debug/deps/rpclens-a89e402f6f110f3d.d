/root/repo/target/debug/deps/rpclens-a89e402f6f110f3d.d: src/lib.rs Cargo.toml

/root/repo/target/debug/deps/librpclens-a89e402f6f110f3d.rmeta: src/lib.rs Cargo.toml

src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
