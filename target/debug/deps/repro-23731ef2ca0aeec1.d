/root/repo/target/debug/deps/repro-23731ef2ca0aeec1.d: crates/bench/src/bin/repro.rs

/root/repo/target/debug/deps/repro-23731ef2ca0aeec1: crates/bench/src/bin/repro.rs

crates/bench/src/bin/repro.rs:
