//! Golden frame-bytes fixture for the wire format.
//!
//! Encodes a fixed set of requests and responses (with deterministic
//! bodies from [`rpclens_rpcwire::payload`]) and compares the exact
//! datagram bytes against `tests/data/golden_frames.txt`. Any change to
//! the codec layout, the envelope, the compressor, or the payload
//! generator shows up here as a byte-level diff — which is the point:
//! the wire format is a compatibility surface, and drift must be a
//! deliberate, reviewed act (regenerate with
//! `REGEN_WIRE_GOLDEN=1 cargo test -p rpclens-rpcwire --test golden_frames`).

use rpclens_rpcwire::message::{self, Message, Status, TraceContext};
use rpclens_rpcwire::payload;
use rpclens_simcore::rng::Prng;
use std::fmt::Write as _;

const FIXTURE: &str = concat!(env!("CARGO_MANIFEST_DIR"), "/tests/data/golden_frames.txt");

/// The fixed datagrams the fixture pins, as `(name, bytes)`.
fn golden_datagrams() -> Vec<(&'static str, Vec<u8>)> {
    // Compressible request: generator-made body (mixed runs / copies /
    // entropy), exercises the LZ path end to end.
    let mut rng = Prng::seed_from(42).stream(7);
    let body = payload::make_body(&mut rng, 256);
    let compressed_request = message::encode_request(17, 0x00C0_FFEE, 1, &body, true);

    // Incompressible request: a strictly increasing ramp has no 3-byte
    // repeats, so the wire must carry it raw with COMPRESSED clear.
    let ramp: Vec<u8> = (0..96u8).collect();
    let raw_request = message::encode_request(3, 5, 2, &ramp, true);

    // Empty-body request, compression declined.
    let empty_request = message::encode_request(250, 1, 3, b"", false);

    // Ok response with server timings and a run-heavy compressible body.
    let run_body = vec![0x52u8; 512];
    let ok_response =
        message::encode_response(17, 0x00C0_FFEE, 1, Status::Ok, 1111, 2222, &run_body, true);

    // Error response: NoSuchMethod, empty body, ERROR flag set.
    let error_response =
        message::encode_response(999, 5, 2, Status::NoSuchMethod, 40, 0, b"", false);

    // v2 traced request: TRACED flag set, payload prefixed with the
    // versioned trace-context extension block.
    let trace = TraceContext {
        trace_id: 0x0123_4567_89AB_CDEF,
        span_id: 0x0000_0000_0000_002A,
        parent_span_id: 0x0000_0000_0000_0007,
        sampled: true,
        depth: 2,
    };
    let traced_request =
        message::encode_request_traced(17, 0x00C0_FFEE, 4, b"traced body", false, Some(&trace));

    vec![
        ("compressed_request", compressed_request.to_vec()),
        ("raw_request", raw_request.to_vec()),
        ("empty_request", empty_request.to_vec()),
        ("ok_response", ok_response.to_vec()),
        ("error_response", error_response.to_vec()),
        ("traced_request", traced_request.to_vec()),
    ]
}

fn to_hex(bytes: &[u8]) -> String {
    let mut s = String::with_capacity(bytes.len() * 2);
    for b in bytes {
        write!(s, "{b:02x}").unwrap();
    }
    s
}

fn from_hex(s: &str) -> Vec<u8> {
    assert!(s.len().is_multiple_of(2), "odd hex length");
    (0..s.len() / 2)
        .map(|i| u8::from_str_radix(&s[2 * i..2 * i + 2], 16).unwrap())
        .collect()
}

fn render_fixture(datagrams: &[(&'static str, Vec<u8>)]) -> String {
    let mut out = String::from(
        "# Golden wire datagrams. One `name hex` pair per line.\n\
         # Regenerate: REGEN_WIRE_GOLDEN=1 cargo test -p rpclens-rpcwire --test golden_frames\n",
    );
    for (name, bytes) in datagrams {
        writeln!(out, "{name} {}", to_hex(bytes)).unwrap();
    }
    out
}

#[test]
fn frames_match_the_committed_fixture() {
    let datagrams = golden_datagrams();
    if std::env::var_os("REGEN_WIRE_GOLDEN").is_some() {
        std::fs::write(FIXTURE, render_fixture(&datagrams)).unwrap();
        eprintln!("regenerated {FIXTURE}");
        return;
    }
    let committed = std::fs::read_to_string(FIXTURE)
        .unwrap_or_else(|e| panic!("missing fixture {FIXTURE}: {e}"));
    let mut pinned = std::collections::BTreeMap::new();
    for line in committed.lines() {
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let (name, hex) = line.split_once(' ').expect("fixture line format");
        pinned.insert(name.to_string(), from_hex(hex));
    }
    assert_eq!(
        pinned.len(),
        datagrams.len(),
        "fixture entry count drifted from the test's datagram set"
    );
    for (name, bytes) in &datagrams {
        let want = pinned
            .get(*name)
            .unwrap_or_else(|| panic!("fixture missing entry {name}"));
        assert_eq!(
            &to_hex(bytes),
            &to_hex(want),
            "wire bytes for `{name}` drifted from the golden fixture; if the \
             format change is intentional, regenerate with REGEN_WIRE_GOLDEN=1"
        );
    }
}

#[test]
fn committed_fixture_bytes_still_decode() {
    // The fixture is also a *decoder* compatibility check: datagrams
    // produced by past builds must keep decoding, with the expected
    // identities and statuses.
    if std::env::var_os("REGEN_WIRE_GOLDEN").is_some() {
        // Regeneration runs race fixture rewriting; only the committed
        // file matters here.
        return;
    }
    let committed = std::fs::read_to_string(FIXTURE).unwrap();
    let mut decoded = 0usize;
    for line in committed.lines() {
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let (name, hex) = line.split_once(' ').unwrap();
        let bytes = from_hex(hex);
        let msg = message::decode(&bytes)
            .unwrap_or_else(|e| panic!("committed datagram `{name}` no longer decodes: {e}"));
        match (name, msg) {
            ("compressed_request", Message::Request(req)) => {
                assert_eq!(req.method, 17);
                assert_eq!(req.client_id, 0x00C0_FFEE);
                assert_eq!(req.request_id, 1);
                assert!(req.was_compressed);
                assert_eq!(req.body.len(), 256);
            }
            ("raw_request", Message::Request(req)) => {
                assert!(!req.was_compressed);
                assert_eq!(req.body.len(), 96);
            }
            ("empty_request", Message::Request(req)) => {
                assert_eq!(req.method, 250);
                assert!(req.body.is_empty());
            }
            ("ok_response", Message::Response(resp)) => {
                assert_eq!(resp.status, Status::Ok);
                assert_eq!(resp.server_decode_ns, 1111);
                assert_eq!(resp.server_exec_ns, 2222);
                assert_eq!(resp.body.len(), 512);
                assert!(resp.was_compressed);
            }
            ("error_response", Message::Response(resp)) => {
                assert_eq!(resp.status, Status::NoSuchMethod);
                assert_eq!(resp.server_decode_ns, 40);
                assert!(resp.body.is_empty());
            }
            ("traced_request", Message::Request(req)) => {
                assert_eq!(req.method, 17);
                assert_eq!(req.request_id, 4);
                assert_eq!(&req.body[..], b"traced body");
                let trace = req.trace.expect("v2 frame carries a trace context");
                assert_eq!(trace.trace_id, 0x0123_4567_89AB_CDEF);
                assert_eq!(trace.span_id, 0x2A);
                assert_eq!(trace.parent_span_id, 0x07);
                assert!(trace.sampled);
                assert_eq!(trace.depth, 2);
            }
            (name, other) => panic!("unexpected fixture entry {name}: {other:?}"),
        }
        decoded += 1;
    }
    assert_eq!(decoded, 6);
}
