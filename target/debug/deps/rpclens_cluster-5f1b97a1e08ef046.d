/root/repo/target/debug/deps/rpclens_cluster-5f1b97a1e08ef046.d: crates/cluster/src/lib.rs crates/cluster/src/accounting.rs crates/cluster/src/exogenous.rs crates/cluster/src/machine.rs crates/cluster/src/mgk.rs crates/cluster/src/pool.rs

/root/repo/target/debug/deps/librpclens_cluster-5f1b97a1e08ef046.rlib: crates/cluster/src/lib.rs crates/cluster/src/accounting.rs crates/cluster/src/exogenous.rs crates/cluster/src/machine.rs crates/cluster/src/mgk.rs crates/cluster/src/pool.rs

/root/repo/target/debug/deps/librpclens_cluster-5f1b97a1e08ef046.rmeta: crates/cluster/src/lib.rs crates/cluster/src/accounting.rs crates/cluster/src/exogenous.rs crates/cluster/src/machine.rs crates/cluster/src/mgk.rs crates/cluster/src/pool.rs

crates/cluster/src/lib.rs:
crates/cluster/src/accounting.rs:
crates/cluster/src/exogenous.rs:
crates/cluster/src/machine.rs:
crates/cluster/src/mgk.rs:
crates/cluster/src/pool.rs:
