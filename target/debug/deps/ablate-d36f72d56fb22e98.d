/root/repo/target/debug/deps/ablate-d36f72d56fb22e98.d: crates/bench/src/bin/ablate.rs Cargo.toml

/root/repo/target/debug/deps/libablate-d36f72d56fb22e98.rmeta: crates/bench/src/bin/ablate.rs Cargo.toml

crates/bench/src/bin/ablate.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
