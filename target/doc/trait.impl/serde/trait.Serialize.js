(function() {
    const implementors = Object.fromEntries([["rpclens_fleet",[["impl Serialize for <a class=\"enum\" href=\"rpclens_fleet/catalog/enum.FanoutDist.html\" title=\"enum rpclens_fleet::catalog::FanoutDist\">FanoutDist</a>",0],["impl Serialize for <a class=\"enum\" href=\"rpclens_fleet/catalog/enum.ServiceCategory.html\" title=\"enum rpclens_fleet::catalog::ServiceCategory\">ServiceCategory</a>",0]]],["rpclens_simcore",[["impl Serialize for <a class=\"struct\" href=\"rpclens_simcore/hist/struct.LogHistogram.html\" title=\"struct rpclens_simcore::hist::LogHistogram\">LogHistogram</a>",0],["impl Serialize for <a class=\"struct\" href=\"rpclens_simcore/stats/struct.QuantileSummary.html\" title=\"struct rpclens_simcore::stats::QuantileSummary\">QuantileSummary</a>",0],["impl Serialize for <a class=\"struct\" href=\"rpclens_simcore/time/struct.SimDuration.html\" title=\"struct rpclens_simcore::time::SimDuration\">SimDuration</a>",0],["impl Serialize for <a class=\"struct\" href=\"rpclens_simcore/time/struct.SimTime.html\" title=\"struct rpclens_simcore::time::SimTime\">SimTime</a>",0]]]]);
    if (window.register_implementors) {
        window.register_implementors(implementors);
    } else {
        window.pending_implementors = implementors;
    }
})()
//{"start":59,"fragment_lengths":[354,695]}