//! Pluggable span-event sinks for wire-level distributed tracing.
//!
//! The client and server runtimes emit a [`SpanEvent`] at every
//! observable point of a call's life — send, retransmit, receive, stale
//! reply, dedup hit, handler execution — into a [`SpanSink`] the caller
//! plugs in. The runtime deliberately does **not** timestamp events:
//! the sink assigns time, which is what makes capture deterministic
//! under an in-memory link (a virtual clock advancing by modeled costs
//! is a pure function of the seed) and honest under UDP (a wall clock).
//! See `docs/OBSERVABILITY.md` ("Wire tracing") for the contract.
//!
//! The default sink is [`NullSink`], a zero-sized no-op, so untraced
//! clients and servers pay nothing. [`VecSink`] records raw events for
//! tests and simple captures; the characterization pipeline's recorder
//! (which assembles `rpclens-trace` trees) lives in `rpclens-bench`.

use crate::message::{Status, TraceContext};

/// Where in a call's lifecycle a [`SpanEvent`] was emitted.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SpanEventKind {
    /// Client sent a request datagram (first transmission).
    ClientSend,
    /// Client resent an identical datagram after a timeout.
    ClientRetransmit,
    /// Client matched and decoded the response for a pending call.
    ClientRecv,
    /// Client discarded a stale or duplicate reply.
    ClientStale,
    /// Client dropped a datagram that failed to decode.
    ClientDecodeError,
    /// Client exhausted its retransmission budget.
    ClientTimeout,
    /// Server decoded an incoming request.
    ServerRecv,
    /// Server dropped a datagram that failed to decode.
    ServerDecodeError,
    /// Server answered a duplicate from the dedup cache (at-most-once).
    ServerDedupHit,
    /// Server finished executing the handler for a request.
    ServerExec,
    /// Server sent a response datagram.
    ServerSend,
}

/// One observable point in a call's life. Events carry the matching
/// identity (`client_id`, `request_id`), the propagated [`TraceContext`]
/// when the frame had one, and whatever measurements the emitting side
/// holds at that point. Fields that do not apply to a given kind are
/// zero/`None`/`true`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SpanEvent {
    /// Lifecycle point.
    pub kind: SpanEventKind,
    /// Catalog method id (0 when the emitting side does not know it).
    pub method: u64,
    /// Client identity (the request-matching namespace).
    pub client_id: u64,
    /// Per-client request id.
    pub request_id: u64,
    /// Propagated trace context, when the request carried one.
    pub context: Option<TraceContext>,
    /// Datagram bytes on the wire for this event (0 when not applicable).
    pub wire_bytes: usize,
    /// Uncompressed payload bytes (0 when the emitting side only saw the
    /// framed datagram).
    pub raw_bytes: usize,
    /// Response status (`None` before a response exists).
    pub status: Option<Status>,
    /// Server-side request-decode nanoseconds: measured on `ServerExec`,
    /// piggybacked on `ClientRecv`.
    pub server_decode_ns: u64,
    /// Server-side handler nanoseconds (same provenance).
    pub server_exec_ns: u64,
}

impl SpanEvent {
    /// A blank event of `kind` for the given call identity; builders
    /// fill in what they know.
    pub fn new(kind: SpanEventKind, method: u64, client_id: u64, request_id: u64) -> SpanEvent {
        SpanEvent {
            kind,
            method,
            client_id,
            request_id,
            context: None,
            wire_bytes: 0,
            raw_bytes: 0,
            status: None,
            server_decode_ns: 0,
            server_exec_ns: 0,
        }
    }
}

/// A consumer of span events. Implementations assign timestamps (see
/// the module docs) and decide retention — e.g. dropping events whose
/// context has `sampled == false`.
pub trait SpanSink {
    /// Records one event. Called synchronously on the runtime's thread
    /// at the moment the event happens, in causal order.
    fn record(&mut self, event: &SpanEvent);
}

/// The no-op sink: untraced runtimes compile the instrumentation away.
#[derive(Debug, Clone, Copy, Default)]
pub struct NullSink;

impl SpanSink for NullSink {
    fn record(&mut self, _event: &SpanEvent) {}
}

/// A sink that appends every event to a vector, for tests and simple
/// captures.
#[derive(Debug, Default)]
pub struct VecSink {
    /// The recorded events, in arrival order.
    pub events: Vec<SpanEvent>,
}

impl SpanSink for VecSink {
    fn record(&mut self, event: &SpanEvent) {
        self.events.push(*event);
    }
}

/// Shared-ownership adapter: a single-threaded harness can hand clones
/// of one `Rc<RefCell<Sink>>` to a client and several servers so every
/// hop records into the same causal stream.
impl<K: SpanSink> SpanSink for std::rc::Rc<std::cell::RefCell<K>> {
    fn record(&mut self, event: &SpanEvent) {
        self.borrow_mut().record(event);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn vec_sink_records_in_order() {
        let mut sink = VecSink::default();
        sink.record(&SpanEvent::new(SpanEventKind::ClientSend, 1, 2, 3));
        sink.record(&SpanEvent::new(SpanEventKind::ClientRecv, 1, 2, 3));
        assert_eq!(sink.events.len(), 2);
        assert_eq!(sink.events[0].kind, SpanEventKind::ClientSend);
        assert_eq!(sink.events[1].kind, SpanEventKind::ClientRecv);
    }

    #[test]
    fn shared_sink_aggregates_across_clones() {
        use std::cell::RefCell;
        use std::rc::Rc;
        let shared = Rc::new(RefCell::new(VecSink::default()));
        let mut a = shared.clone();
        let mut b = shared.clone();
        a.record(&SpanEvent::new(SpanEventKind::ClientSend, 1, 1, 1));
        b.record(&SpanEvent::new(SpanEventKind::ServerRecv, 1, 1, 1));
        assert_eq!(shared.borrow().events.len(), 2);
    }

    #[test]
    fn null_sink_is_zero_sized() {
        assert_eq!(std::mem::size_of::<NullSink>(), 0);
    }
}
