/root/repo/target/release/deps/ablate-bbbeaa69bd09ffbd.d: crates/bench/src/bin/ablate.rs

/root/repo/target/release/deps/ablate-bbbeaa69bd09ffbd: crates/bench/src/bin/ablate.rs

crates/bench/src/bin/ablate.rs:
