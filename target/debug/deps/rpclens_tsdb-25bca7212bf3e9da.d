/root/repo/target/debug/deps/rpclens_tsdb-25bca7212bf3e9da.d: crates/tsdb/src/lib.rs crates/tsdb/src/metric.rs crates/tsdb/src/query.rs crates/tsdb/src/store.rs

/root/repo/target/debug/deps/librpclens_tsdb-25bca7212bf3e9da.rmeta: crates/tsdb/src/lib.rs crates/tsdb/src/metric.rs crates/tsdb/src/query.rs crates/tsdb/src/store.rs

crates/tsdb/src/lib.rs:
crates/tsdb/src/metric.rs:
crates/tsdb/src/query.rs:
crates/tsdb/src/store.rs:
