//! Shard-local self-telemetry: deterministic counters and wall-clock
//! phase timers for the parallel fleet driver.
//!
//! The driver partitions workload roots into contiguous per-shard chunks
//! and each shard carries one [`ShardCounters`]. Counters are derived
//! only from simulated behaviour, so they are a pure function of the
//! master seed; after the simulation phase the driver folds them with
//! [`ShardCounters::absorb`] in **shard-id order**, which makes the
//! merged totals independent of the shard count (addition of integers is
//! associative, `max` is too, and [`LogHistogram::merge`] sums integer
//! bucket counts).
//!
//! Wall-clock measurements — [`PhaseTimings`] and the per-shard
//! [`ShardReport`] rows — are *not* deterministic and are never mixed
//! into the counters; the manifest layer emits them under a separate
//! `runtime` section.

use std::time::Instant;

use rpclens_simcore::hist::LogHistogram;

/// Queue-model telemetry: what the M/G/k wait sampler observed.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct QueueTelemetry {
    /// Wait samples drawn (one per placed sub-call).
    pub samples: u64,
    /// Samples that actually waited (the Erlang-C gate fired).
    pub waits: u64,
    /// Total simulated wait across all samples, in nanoseconds.
    pub total_wait_ns: u128,
    /// Largest single simulated wait, in nanoseconds.
    pub max_wait_ns: u64,
}

impl QueueTelemetry {
    /// Records one wait sample of `wait_ns` simulated nanoseconds.
    pub fn record(&mut self, wait_ns: u64) {
        self.samples += 1;
        if wait_ns > 0 {
            self.waits += 1;
            self.total_wait_ns += u128::from(wait_ns);
            self.max_wait_ns = self.max_wait_ns.max(wait_ns);
        }
    }

    /// Folds another shard's queue telemetry into this one.
    pub fn absorb(&mut self, other: &QueueTelemetry) {
        self.samples += other.samples;
        self.waits += other.waits;
        self.total_wait_ns += other.total_wait_ns;
        self.max_wait_ns = self.max_wait_ns.max(other.max_wait_ns);
    }
}

/// Wire telemetry: congestion-episode exposure of network traversals.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct WireTelemetry {
    /// One-way wire traversals sampled.
    pub samples: u64,
    /// Traversals that landed inside a congestion episode on their path.
    pub congested: u64,
}

impl WireTelemetry {
    /// Records one wire traversal; `congested` is whether the path's
    /// congestion process was in an episode at send time.
    pub fn record(&mut self, congested: bool) {
        self.samples += 1;
        if congested {
            self.congested += 1;
        }
    }

    /// Folds another shard's wire telemetry into this one.
    pub fn absorb(&mut self, other: &WireTelemetry) {
        self.samples += other.samples;
        self.congested += other.congested;
    }
}

/// Resilience telemetry: what the executed retry/failover loop did.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ResilienceTelemetry {
    /// Retry attempts actually issued (after budget and backoff gating).
    pub retries_issued: u64,
    /// Retry attempts denied by an exhausted [`RetryBudget`] token bucket.
    ///
    /// [`RetryBudget`]: https://sre.google/sre-book/handling-overload/
    pub retries_denied: u64,
    /// Retries that failed over to a different replica or cluster.
    pub failovers: u64,
    /// `Unavailable` errors with a causal origin (crash, drain, blackout)
    /// rather than a residual statistical draw.
    pub causal_unavailable: u64,
    /// `NoResource` errors from load-shedding queues under overload.
    pub load_sheds: u64,
    /// `DeadlineExceeded` errors from simulated latency crossing a
    /// propagated deadline.
    pub deadline_exceeded: u64,
}

impl ResilienceTelemetry {
    /// Folds another shard's resilience telemetry into this one.
    pub fn absorb(&mut self, other: &ResilienceTelemetry) {
        self.retries_issued += other.retries_issued;
        self.retries_denied += other.retries_denied;
        self.failovers += other.failovers;
        self.causal_unavailable += other.causal_unavailable;
        self.load_sheds += other.load_sheds;
        self.deadline_exceeded += other.deadline_exceeded;
    }
}

/// Control-plane telemetry: what the closed-loop controllers (load
/// balancer weight shifts and bounded admission queues) did to the
/// calls that flowed past them. Timeline-level controller state
/// (autoscaler capacity, avoided paths) is reconstructed post-run from
/// the seed instead of counted here, so these stay order-insensitive
/// per-call event counts.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ControlTelemetry {
    /// Placements re-picked because the load balancer shifted weight
    /// away from a degraded path.
    pub lb_shifts: u64,
    /// Calls offered to a bounded admission queue.
    pub admission_offered: u64,
    /// Offered calls shed at the queue (queue wait over the shed bound).
    pub admission_shed: u64,
    /// Offered calls abandoned by the client (wait over the abandon
    /// bound).
    pub admission_abandoned: u64,
}

impl ControlTelemetry {
    /// Admitted calls: offered minus shed minus abandoned.
    pub fn admitted(&self) -> u64 {
        self.admission_offered - self.admission_shed - self.admission_abandoned
    }

    /// Folds another shard's control telemetry into this one.
    pub fn absorb(&mut self, other: &ControlTelemetry) {
        self.lb_shifts += other.lb_shifts;
        self.admission_offered += other.admission_offered;
        self.admission_shed += other.admission_shed;
        self.admission_abandoned += other.admission_abandoned;
    }
}

/// Deterministic per-shard counters; a pure function of the master seed.
#[derive(Debug, Clone, Default)]
pub struct ShardCounters {
    /// Workload roots simulated.
    pub roots: u64,
    /// Spans (RPC calls) simulated, including hedges.
    pub spans: u64,
    /// Roots whose trace was admitted by the sampling collector.
    pub traces_sampled: u64,
    /// Errors injected by the fault model (all kinds).
    pub errors_injected: u64,
    /// Hedge (backup) requests issued.
    pub hedges_issued: u64,
    /// Deepest call tree observed, in edges from the root.
    pub max_depth: u64,
    /// Queue-model telemetry.
    pub queue: QueueTelemetry,
    /// Wire congestion telemetry.
    pub wire: WireTelemetry,
    /// Executed retry/failover and causal-error telemetry.
    pub resilience: ResilienceTelemetry,
    /// Closed-loop control-plane event telemetry.
    pub control: ControlTelemetry,
    /// End-to-end root latency distribution, microseconds.
    pub root_latency_us: LogHistogram,
}

impl ShardCounters {
    /// Creates zeroed counters.
    pub fn new() -> Self {
        Self::default()
    }

    /// Folds another shard's counters into this one. The driver calls
    /// this in shard-id order; every field is an order-insensitive
    /// reduction (sum, max, or integer histogram merge), so the result
    /// is identical for any shard count.
    pub fn absorb(&mut self, other: &ShardCounters) {
        self.roots += other.roots;
        self.spans += other.spans;
        self.traces_sampled += other.traces_sampled;
        self.errors_injected += other.errors_injected;
        self.hedges_issued += other.hedges_issued;
        self.max_depth = self.max_depth.max(other.max_depth);
        self.queue.absorb(&other.queue);
        self.wire.absorb(&other.wire);
        self.resilience.absorb(&other.resilience);
        self.control.absorb(&other.control);
        self.root_latency_us.merge(&other.root_latency_us);
    }
}

/// One row of per-shard execution shape. **Not deterministic**: wall
/// clock varies run to run, and roots-per-shard varies with `--shards`.
#[derive(Debug, Clone)]
pub struct ShardReport {
    /// Shard index.
    pub shard: usize,
    /// Roots this shard simulated.
    pub roots: u64,
    /// Spans this shard simulated.
    pub spans: u64,
    /// Wall-clock milliseconds this shard spent simulating.
    pub wall_ms: f64,
}

/// Wall-clock phase timer. **Not deterministic**; emitted only under the
/// manifest's `runtime` section.
#[derive(Debug, Clone, Default)]
pub struct PhaseTimings {
    phases: Vec<(String, f64)>,
}

impl PhaseTimings {
    /// Creates an empty set of phase timings.
    pub fn new() -> Self {
        Self::default()
    }

    /// Runs `f`, recording its wall-clock duration under `name`.
    pub fn time<T>(&mut self, name: &str, f: impl FnOnce() -> T) -> T {
        let start = Instant::now();
        let out = f();
        self.record(name, start.elapsed().as_secs_f64() * 1e3);
        out
    }

    /// Records an externally measured phase duration in milliseconds.
    pub fn record(&mut self, name: &str, wall_ms: f64) {
        self.phases.push((name.to_string(), wall_ms));
    }

    /// The recorded `(phase, wall_ms)` pairs, in recording order.
    pub fn phases(&self) -> &[(String, f64)] {
        &self.phases
    }

    /// Total wall-clock milliseconds across all recorded phases.
    pub fn total_ms(&self) -> f64 {
        self.phases.iter().map(|(_, ms)| ms).sum()
    }
}

/// Everything the driver observed about one run: merged deterministic
/// counters plus labeled non-deterministic execution shape.
#[derive(Debug, Clone, Default)]
pub struct RunTelemetry {
    /// Deterministic counters, folded across shards in shard-id order.
    pub counters: ShardCounters,
    /// Per-shard execution rows (non-deterministic wall clock; shape
    /// depends on `--shards`).
    pub per_shard: Vec<ShardReport>,
    /// Wall-clock phase timings (non-deterministic).
    pub phases: PhaseTimings,
    /// Number of shards the run used (execution shape, not part of the
    /// deterministic section).
    pub shards_used: usize,
    /// Number of worker-pool threads the shards executed on (execution
    /// shape, not part of the deterministic section). `0` in telemetry
    /// predating the worker pool.
    pub threads_used: usize,
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_counters(offset: u64, n: u64) -> ShardCounters {
        let mut c = ShardCounters::new();
        for i in 0..n {
            let v = offset + i;
            c.roots += 1;
            c.spans += 3;
            if v.is_multiple_of(7) {
                c.errors_injected += 1;
            }
            c.max_depth = c.max_depth.max(v % 5);
            c.queue.record((v % 11) * 100);
            c.wire.record(v.is_multiple_of(13));
            if v.is_multiple_of(3) {
                c.resilience.retries_issued += 1;
            }
            if v.is_multiple_of(17) {
                c.resilience.retries_denied += 1;
                c.resilience.load_sheds += 1;
            }
            if v.is_multiple_of(19) {
                c.resilience.failovers += 1;
                c.resilience.causal_unavailable += 1;
                c.resilience.deadline_exceeded += 1;
            }
            if v.is_multiple_of(4) {
                c.control.admission_offered += 1;
                if v.is_multiple_of(8) {
                    c.control.admission_shed += 1;
                }
                if v.is_multiple_of(16) {
                    c.control.admission_abandoned += 1;
                    c.control.admission_shed -= 1;
                }
            }
            if v.is_multiple_of(23) {
                c.control.lb_shifts += 1;
            }
            c.root_latency_us.record(1 + v * 17 % 100_000);
        }
        c
    }

    #[test]
    fn absorb_is_invariant_to_shard_count() {
        let total = 1000u64;
        let single = sample_counters(0, total);
        for shards in [2usize, 3, 8] {
            let chunk = (total as usize).div_ceil(shards) as u64;
            let mut merged = ShardCounters::new();
            let mut start = 0;
            while start < total {
                let n = chunk.min(total - start);
                merged.absorb(&sample_counters(start, n));
                start += n;
            }
            assert_eq!(merged.roots, single.roots);
            assert_eq!(merged.spans, single.spans);
            assert_eq!(merged.errors_injected, single.errors_injected);
            assert_eq!(merged.max_depth, single.max_depth);
            assert_eq!(merged.queue.samples, single.queue.samples);
            assert_eq!(merged.queue.waits, single.queue.waits);
            assert_eq!(merged.queue.total_wait_ns, single.queue.total_wait_ns);
            assert_eq!(merged.queue.max_wait_ns, single.queue.max_wait_ns);
            assert_eq!(merged.wire.samples, single.wire.samples);
            assert_eq!(merged.wire.congested, single.wire.congested);
            assert_eq!(merged.resilience, single.resilience);
            assert_eq!(merged.control, single.control);
            assert_eq!(merged.control.admitted(), single.control.admitted());
            assert_eq!(
                merged.root_latency_us.count(),
                single.root_latency_us.count()
            );
            assert_eq!(merged.root_latency_us.sum(), single.root_latency_us.sum());
            for q in [0.5, 0.9, 0.99] {
                assert_eq!(
                    merged.root_latency_us.quantile(q),
                    single.root_latency_us.quantile(q)
                );
            }
        }
    }

    #[test]
    fn queue_telemetry_counts_only_positive_waits() {
        let mut q = QueueTelemetry::default();
        q.record(0);
        q.record(500);
        q.record(200);
        assert_eq!(q.samples, 3);
        assert_eq!(q.waits, 2);
        assert_eq!(q.total_wait_ns, 700);
        assert_eq!(q.max_wait_ns, 500);
    }

    #[test]
    fn phase_timings_accumulate() {
        let mut p = PhaseTimings::new();
        let out = p.time("generate", || 41 + 1);
        assert_eq!(out, 42);
        p.record("merge", 2.5);
        assert_eq!(p.phases().len(), 2);
        assert_eq!(p.phases()[1], ("merge".to_string(), 2.5));
        assert!(p.total_ms() >= 2.5);
    }
}
