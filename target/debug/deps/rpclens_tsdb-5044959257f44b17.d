/root/repo/target/debug/deps/rpclens_tsdb-5044959257f44b17.d: crates/tsdb/src/lib.rs crates/tsdb/src/metric.rs crates/tsdb/src/query.rs crates/tsdb/src/store.rs Cargo.toml

/root/repo/target/debug/deps/librpclens_tsdb-5044959257f44b17.rmeta: crates/tsdb/src/lib.rs crates/tsdb/src/metric.rs crates/tsdb/src/query.rs crates/tsdb/src/store.rs Cargo.toml

crates/tsdb/src/lib.rs:
crates/tsdb/src/metric.rs:
crates/tsdb/src/query.rs:
crates/tsdb/src/store.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
