/root/repo/target/release/deps/shard_scaling-64e9c22d417922a4.d: crates/bench/benches/shard_scaling.rs

/root/repo/target/release/deps/shard_scaling-64e9c22d417922a4: crates/bench/benches/shard_scaling.rs

crates/bench/benches/shard_scaling.rs:
