//! Tree-shape statistics: descendants and ancestors (§2.4).
//!
//! The paper measures, per method, the number of *descendants* (how much
//! distributed work an RPC fans out to) and *ancestors* (how deep in a
//! call tree the method typically sits), concluding that hyperscale call
//! trees are much wider than they are deep.

use crate::span::TraceData;

/// Per-span tree statistics for one trace.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TreeStats {
    /// Number of descendants of each span (subtree size minus one).
    pub descendants: Vec<u32>,
    /// Number of ancestors of each span (depth; root = 0).
    pub ancestors: Vec<u32>,
    /// Number of direct children of each span.
    pub fanout: Vec<u32>,
    /// Maximum depth of the tree.
    pub max_depth: u32,
}

impl TreeStats {
    /// Computes statistics for a trace in O(n) using the invariant that
    /// parents precede children.
    pub fn compute(trace: &TraceData) -> TreeStats {
        let n = trace.spans.len();
        let mut descendants = vec![0u32; n];
        let mut ancestors = vec![0u32; n];
        let mut fanout = vec![0u32; n];
        let mut max_depth = 0;
        // Forward pass: depths and fanout (parents precede children).
        // Spans other than 0 may themselves be roots (hedged root calls
        // make the trace a forest); they stay at depth 0.
        for i in 1..n {
            if trace.spans[i].is_root() {
                continue;
            }
            let p = trace.spans[i].parent as usize;
            ancestors[i] = ancestors[p] + 1;
            fanout[p] += 1;
            max_depth = max_depth.max(ancestors[i]);
        }
        // Backward pass: subtree sizes.
        for i in (1..n).rev() {
            if trace.spans[i].is_root() {
                continue;
            }
            let p = trace.spans[i].parent as usize;
            descendants[p] += descendants[i] + 1;
        }
        TreeStats {
            descendants,
            ancestors,
            fanout,
            max_depth,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::span::{MethodId, ServiceId, SpanBuilder, SpanRecord};
    use rpclens_netsim::topology::ClusterId;
    use rpclens_simcore::time::SimTime;

    fn span(parent: Option<u32>) -> SpanRecord {
        let b = SpanBuilder::new(MethodId(0), ServiceId(0), ClusterId(0), ClusterId(0));
        match parent {
            Some(p) => b.parent(p),
            None => b,
        }
        .build()
    }

    /// Builds a trace from a parent list (index 0 must be None).
    fn trace(parents: &[Option<u32>]) -> TraceData {
        TraceData::new(SimTime::ZERO, parents.iter().map(|&p| span(p)).collect())
    }

    #[test]
    fn single_span_tree() {
        let s = TreeStats::compute(&trace(&[None]));
        assert_eq!(s.descendants, vec![0]);
        assert_eq!(s.ancestors, vec![0]);
        assert_eq!(s.fanout, vec![0]);
        assert_eq!(s.max_depth, 0);
    }

    #[test]
    fn chain_tree_is_deep() {
        // 0 -> 1 -> 2 -> 3.
        let s = TreeStats::compute(&trace(&[None, Some(0), Some(1), Some(2)]));
        assert_eq!(s.descendants, vec![3, 2, 1, 0]);
        assert_eq!(s.ancestors, vec![0, 1, 2, 3]);
        assert_eq!(s.fanout, vec![1, 1, 1, 0]);
        assert_eq!(s.max_depth, 3);
    }

    #[test]
    fn star_tree_is_wide() {
        // Root with 5 direct children.
        let s = TreeStats::compute(&trace(&[None, Some(0), Some(0), Some(0), Some(0), Some(0)]));
        assert_eq!(s.descendants[0], 5);
        assert_eq!(s.fanout[0], 5);
        assert_eq!(s.max_depth, 1);
        assert!(s.ancestors[1..].iter().all(|&a| a == 1));
    }

    #[test]
    fn mixed_tree() {
        //       0
        //      / \
        //     1   2
        //    / \   \
        //   3   4   5
        let s = TreeStats::compute(&trace(&[None, Some(0), Some(0), Some(1), Some(1), Some(2)]));
        assert_eq!(s.descendants, vec![5, 2, 1, 0, 0, 0]);
        assert_eq!(s.ancestors, vec![0, 1, 1, 2, 2, 2]);
        assert_eq!(s.fanout, vec![2, 2, 1, 0, 0, 0]);
        assert_eq!(s.max_depth, 2);
    }

    #[test]
    fn invariants_hold_on_random_trees() {
        use rpclens_simcore::rng::Prng;
        let mut rng = Prng::seed_from(1);
        for _ in 0..100 {
            let n = 2 + rng.index(200);
            let parents: Vec<Option<u32>> = (0..n)
                .map(|i| {
                    if i == 0 {
                        None
                    } else {
                        Some(rng.index(i) as u32)
                    }
                })
                .collect();
            let t = trace(&parents);
            let s = TreeStats::compute(&t);
            // The root's descendants count the whole tree.
            assert_eq!(s.descendants[0] as usize, n - 1);
            // Total fanout = number of edges.
            assert_eq!(s.fanout.iter().sum::<u32>() as usize, n - 1);
            // Each child's ancestor count is its parent's plus one.
            for (i, parent) in parents.iter().enumerate().skip(1) {
                let p = parent.unwrap() as usize;
                assert_eq!(s.ancestors[i], s.ancestors[p] + 1);
            }
            // Sum of descendants equals sum of depths (both count
            // ancestor-descendant pairs).
            let sum_desc: u64 = s.descendants.iter().map(|&d| d as u64).sum();
            let sum_depth: u64 = s.ancestors.iter().map(|&a| a as u64).sum();
            assert_eq!(sum_desc, sum_depth);
        }
    }
}
