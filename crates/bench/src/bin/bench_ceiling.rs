//! `bench-ceiling` — the gating per-RPC cost check, the gating peak-RSS
//! check, and the non-gating `fleet` trend line.
//!
//! ```text
//! bench-ceiling gate  [--baseline PATH] [--runs N]
//! bench-ceiling rss   [--baseline PATH] [--scale fleet|paper|default] [--threads N] [--shards N]
//! bench-ceiling trend [--scale fleet|paper|default] [--threads N] [--shards N]
//! ```
//!
//! **`gate`** runs the `smoke` preset sequentially (1 shard, 1 thread)
//! `N` times (default 3), takes the *best* wall clock — best-of-N is
//! far more noise-robust on shared CI runners than the mean — and
//! converts it to nanoseconds per simulated RPC (span). It exits
//! non-zero if that exceeds the committed ceiling in
//! `crates/bench/BENCH_driver.json` (`ceiling.smoke_ns_per_rpc`
//! inflated by `ceiling.regression_tolerance`). The ceiling is
//! deliberately generous — it catches order-of-magnitude regressions
//! (an accidental allocation or hash probe back on the hot path), while
//! honest between-machine variance stays inside the tolerance. Update
//! the ceiling together with the `current` results when a PR
//! intentionally changes driver cost.
//!
//! **`rss`** runs one preset (default `fleet`) once and reads the
//! process peak RSS (`VmHWM`) afterwards. When the baseline carries a
//! `ceiling.{scale}_peak_rss_mb` entry for the measured preset, the
//! check gates: it exits non-zero past the ceiling inflated by
//! `ceiling.rss_tolerance`. RSS ceilings exist because the streaming
//! window aggregation made fleet-scale peak memory a load-bearing
//! property — a dense per-shard `(service, window)` grid sneaking back
//! in shows up here long before it OOMs a runner. The high-water mark
//! is process-monotone, so this subcommand must own its process: CI
//! invokes the binary fresh, never after another in-process workload.
//! Presets without a committed ceiling report and exit zero.
//!
//! **`trend`** runs one preset (default `fleet`) at the default
//! execution shape, prints wall clock, roots/sec, peak RSS, and the
//! thread count, and always exits zero: it exists so CI logs accumulate
//! wall-clock and memory trend lines at fleet scale without gating on
//! shared-runner noise.

use rpclens_bench::peak_rss_bytes;
use rpclens_bench::run_configured;
use rpclens_bench::scale_by_name;
use rpclens_fleet::driver::SimScale;
use rpclens_fleet::faults::FaultScenario;
use rpclens_obs::json;

/// The committed baseline, resolved at compile time relative to this
/// crate; `--baseline PATH` overrides it.
const DEFAULT_BASELINE: &str = concat!(env!("CARGO_MANIFEST_DIR"), "/BENCH_driver.json");

fn usage() -> ! {
    eprintln!(
        "usage: bench-ceiling gate  [--baseline PATH] [--runs N]\n\
         \x20      bench-ceiling rss   [--baseline PATH] [--scale NAME] [--threads N] [--shards N]\n\
         \x20      bench-ceiling trend [--scale NAME] [--threads N] [--shards N]"
    );
    std::process::exit(2);
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut mode: Option<String> = None;
    let mut baseline = DEFAULT_BASELINE.to_string();
    let mut runs = 3usize;
    let mut scale: Option<SimScale> = None;
    let mut threads: Option<usize> = None;
    let mut shards: Option<usize> = None;
    let mut iter = args.iter();
    while let Some(arg) = iter.next() {
        match arg.as_str() {
            "gate" | "rss" | "trend" if mode.is_none() => mode = Some(arg.clone()),
            "--baseline" => {
                let Some(path) = iter.next() else { usage() };
                baseline = path.clone();
            }
            "--runs" => {
                let Some(n) = iter.next().and_then(|s| s.parse().ok()) else {
                    usage()
                };
                runs = n;
            }
            "--scale" => {
                let Some(name) = iter.next() else { usage() };
                let Some(s) = scale_by_name(name) else {
                    eprintln!("unknown scale {name}");
                    usage();
                };
                scale = Some(s);
            }
            "--threads" => {
                let Some(n) = iter.next().and_then(|s| s.parse().ok()) else {
                    usage()
                };
                threads = Some(n);
            }
            "--shards" => {
                let Some(n) = iter.next().and_then(|s| s.parse().ok()) else {
                    usage()
                };
                shards = Some(n);
            }
            _ => usage(),
        }
    }
    match mode.as_deref() {
        Some("gate") => gate(&baseline, runs.max(1)),
        Some("rss") => rss(
            &baseline,
            scale.unwrap_or_else(SimScale::fleet),
            shards,
            threads,
        ),
        Some("trend") => trend(scale.unwrap_or_else(SimScale::fleet), shards, threads),
        _ => usage(),
    }
}

/// Best-of-N smoke run against the committed per-RPC ceiling.
fn gate(baseline_path: &str, runs: usize) {
    let text = std::fs::read_to_string(baseline_path)
        .unwrap_or_else(|e| panic!("read baseline {baseline_path}: {e}"));
    let root =
        json::parse(&text).unwrap_or_else(|e| panic!("parse baseline {baseline_path}: {e:?}"));
    let ceiling = root
        .get("ceiling")
        .expect("baseline has a `ceiling` section");
    let ceiling_ns = ceiling
        .get("smoke_ns_per_rpc")
        .and_then(json::Json::as_f64)
        .expect("ceiling.smoke_ns_per_rpc");
    let tolerance = ceiling
        .get("regression_tolerance")
        .and_then(json::Json::as_f64)
        .expect("ceiling.regression_tolerance");
    let limit = ceiling_ns * (1.0 + tolerance);

    let mut best_ns_per_rpc = f64::INFINITY;
    let mut spans = 0u64;
    for i in 0..runs {
        let t0 = std::time::Instant::now();
        let run = run_configured(SimScale::smoke(), Some(1), Some(1), FaultScenario::none());
        let wall_ns = t0.elapsed().as_nanos() as f64;
        spans = run.total_spans;
        let ns_per_rpc = wall_ns / run.total_spans.max(1) as f64;
        eprintln!(
            "run {}/{}: {:.0} ns/RPC over {} simulated RPCs",
            i + 1,
            runs,
            ns_per_rpc,
            run.total_spans
        );
        best_ns_per_rpc = best_ns_per_rpc.min(ns_per_rpc);
    }
    println!(
        "bench-ceiling: best {best_ns_per_rpc:.0} ns/RPC ({spans} RPCs/run), \
         ceiling {ceiling_ns:.0} +{:.0}% = {limit:.0} ns/RPC",
        tolerance * 100.0
    );
    if best_ns_per_rpc > limit {
        eprintln!(
            "FAIL: per-RPC cost regressed past the committed ceiling; if the \
             regression is intentional, update `ceiling` in {baseline_path} \
             alongside the `current` results"
        );
        std::process::exit(1);
    }
    println!("PASS: within ceiling");
}

/// One run at the given preset, gated on the committed peak-RSS ceiling
/// when the baseline carries one for that preset.
fn rss(baseline_path: &str, scale: SimScale, shards: Option<usize>, threads: Option<usize>) {
    let text = std::fs::read_to_string(baseline_path)
        .unwrap_or_else(|e| panic!("read baseline {baseline_path}: {e}"));
    let root =
        json::parse(&text).unwrap_or_else(|e| panic!("parse baseline {baseline_path}: {e:?}"));
    let ceiling = root
        .get("ceiling")
        .expect("baseline has a `ceiling` section");
    let key = format!("{}_peak_rss_mb", scale.name);
    let ceiling_mb = ceiling.get(&key).and_then(json::Json::as_f64);
    let tolerance = ceiling
        .get("rss_tolerance")
        .and_then(json::Json::as_f64)
        .unwrap_or(0.25);

    let name = scale.name;
    let t0 = std::time::Instant::now();
    let run = run_configured(scale, shards, threads, FaultScenario::none());
    let secs = t0.elapsed().as_secs_f64();
    let Some(peak) = peak_rss_bytes() else {
        println!(
            "bench-ceiling rss: scale={name} wall={secs:.1}s — peak RSS unavailable \
             on this platform, skipping"
        );
        return;
    };
    let peak_mb = peak as f64 / (1024.0 * 1024.0);
    match ceiling_mb {
        Some(limit_mb) => {
            let limit = limit_mb * (1.0 + tolerance);
            println!(
                "bench-ceiling rss: scale={} wall={:.1}s peak_rss={:.0} MB, \
                 ceiling {:.0} +{:.0}% = {:.0} MB (shards={} threads={})",
                name,
                secs,
                peak_mb,
                limit_mb,
                tolerance * 100.0,
                limit,
                run.telemetry.shards_used,
                run.telemetry.threads_used,
            );
            if peak_mb > limit {
                eprintln!(
                    "FAIL: peak RSS regressed past the committed ceiling — bounded \
                     aggregation memory is a tracked property (streaming window \
                     flush, trace sampling); if the growth is intentional, update \
                     `ceiling.{key}` in {baseline_path}"
                );
                std::process::exit(1);
            }
            println!("PASS: within RSS ceiling");
        }
        None => {
            println!(
                "bench-ceiling rss: scale={} wall={:.1}s peak_rss={:.0} MB \
                 (no `ceiling.{}` committed; non-gating)",
                name, secs, peak_mb, key
            );
        }
    }
}

/// One run at the given preset, reported for the CI trend line.
fn trend(scale: SimScale, shards: Option<usize>, threads: Option<usize>) {
    let name = scale.name;
    let roots = scale.roots;
    let t0 = std::time::Instant::now();
    let run = run_configured(scale, shards, threads, FaultScenario::none());
    let secs = t0.elapsed().as_secs_f64();
    let rss = peak_rss_bytes().map_or("n/a".to_string(), |b| {
        format!("{:.0} MB", b as f64 / (1024.0 * 1024.0))
    });
    println!(
        "bench-ceiling trend: scale={} wall={:.1}s roots/sec={:.0} spans={} \
         peak_rss={} shards={} threads={} (non-gating)",
        name,
        secs,
        roots as f64 / secs,
        run.total_spans,
        rss,
        run.telemetry.shards_used,
        run.telemetry.threads_used,
    );
}
