//! Deterministic discrete-event simulation core for the `rpclens` workspace.
//!
//! This crate provides the substrate every other crate builds on:
//!
//! - [`time`]: nanosecond-resolution simulated time ([`time::SimTime`],
//!   [`time::SimDuration`]).
//! - [`event`]: a time-ordered, FIFO-stable event queue ([`event::EventQueue`]).
//! - [`rng`]: a deterministic, splittable pseudo-random number generator
//!   ([`rng::Prng`]) so that every simulation run is exactly reproducible from
//!   a single master seed, independent of platform or thread interleaving.
//! - [`dist`]: parametric distributions (log-normal, Pareto, Weibull,
//!   exponential, mixtures, ...) used to model handler times, sizes, and
//!   fan-out in the fleet.
//! - [`alias`]: O(1) categorical sampling via the Vose alias method.
//! - [`zipf`]: Zipf-distributed integer sampling.
//! - [`hist`]: a log-bucketed high-dynamic-range histogram for recording
//!   latencies spanning nanoseconds to minutes with bounded relative error.
//! - [`stats`]: exact quantiles, streaming moments, and correlation
//!   coefficients used by the characterization analyses.
//! - [`streaming`]: constant-memory estimators (P² quantiles, reservoir
//!   sampling) for monitoring-agent-style export.
//!
//! # Examples
//!
//! ```
//! use rpclens_simcore::prelude::*;
//!
//! let mut rng = Prng::seed_from(42);
//! let dist = LogNormal::from_median_sigma(10_000.0, 1.0).unwrap();
//! let mut hist = LogHistogram::new();
//! for _ in 0..10_000 {
//!     hist.record(dist.sample(&mut rng) as u64);
//! }
//! // The sampled median lands near the configured median.
//! let median = hist.quantile(0.5).unwrap();
//! assert!(median > 8_000 && median < 12_500, "median {median}");
//! ```

#![warn(missing_docs)]

pub mod alias;
pub mod dist;
pub mod event;
pub mod hist;
pub mod rng;
pub mod stats;
pub mod streaming;
pub mod time;
pub mod zipf;

/// Convenience re-exports of the most commonly used simcore types.
pub mod prelude {
    pub use crate::{
        alias::AliasTable,
        dist::{
            BoundedPareto, Constant, Exponential, LogNormal, Mixture, Pareto, Sample, Shifted,
            Uniform, Weibull,
        },
        event::EventQueue,
        hist::LogHistogram,
        rng::Prng,
        stats::{percentile, OnlineMoments},
        streaming::{P2Quantile, Reservoir},
        time::{SimDuration, SimTime},
        zipf::Zipf,
    };
}
