//! Offline stand-in for the `serde` crate.
//!
//! The rpclens workspace derives `Serialize`/`Deserialize` on its data
//! types so they stay serialization-ready, but no code path actually
//! serializes anything. This vendored crate keeps those derives compiling
//! in a network-isolated build environment: the traits are empty markers
//! and the derive macros emit empty impls.
//!
//! Swap back to the real crates-io `serde` by deleting the
//! `[patch.crates-io]` entries in the workspace `Cargo.toml`.

/// Marker for types that can be serialized.
pub trait Serialize {}

/// Marker for types that can be deserialized.
pub trait Deserialize {}

#[cfg(feature = "derive")]
pub use serde_derive::{Deserialize, Serialize};

macro_rules! impl_markers {
    ($($t:ty),* $(,)?) => {
        $(impl Serialize for $t {}
          impl Deserialize for $t {})*
    };
}

impl_markers!(
    u8, u16, u32, u64, u128, usize, i8, i16, i32, i64, i128, isize, f32, f64, bool, char, String
);

impl<T: Serialize> Serialize for Vec<T> {}
impl<T: Deserialize> Deserialize for Vec<T> {}
impl<T: Serialize> Serialize for Option<T> {}
impl<T: Deserialize> Deserialize for Option<T> {}
impl<T: Serialize> Serialize for Box<T> {}
impl<T: Deserialize> Deserialize for Box<T> {}
impl<K: Serialize, V: Serialize> Serialize for std::collections::HashMap<K, V> {}
impl<K: Deserialize, V: Deserialize> Deserialize for std::collections::HashMap<K, V> {}
impl<K: Serialize, V: Serialize> Serialize for std::collections::BTreeMap<K, V> {}
impl<K: Deserialize, V: Deserialize> Deserialize for std::collections::BTreeMap<K, V> {}
impl<A: Serialize, B: Serialize> Serialize for (A, B) {}
impl<A: Deserialize, B: Deserialize> Deserialize for (A, B) {}
impl<T: Serialize> Serialize for &T {}
impl<T: Serialize, const N: usize> Serialize for [T; N] {}
impl<T: Deserialize, const N: usize> Deserialize for [T; N] {}
