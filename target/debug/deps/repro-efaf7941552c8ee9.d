/root/repo/target/debug/deps/repro-efaf7941552c8ee9.d: crates/bench/src/bin/repro.rs Cargo.toml

/root/repo/target/debug/deps/librepro-efaf7941552c8ee9.rmeta: crates/bench/src/bin/repro.rs Cargo.toml

crates/bench/src/bin/repro.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
