/root/repo/target/release/deps/rpclens_rpcstack-d507e51ab0bf31e4.d: crates/rpcstack/src/lib.rs crates/rpcstack/src/codec.rs crates/rpcstack/src/component.rs crates/rpcstack/src/cost.rs crates/rpcstack/src/deadline.rs crates/rpcstack/src/error.rs crates/rpcstack/src/hedging.rs crates/rpcstack/src/loadbalancer.rs crates/rpcstack/src/queue.rs crates/rpcstack/src/retry.rs

/root/repo/target/release/deps/librpclens_rpcstack-d507e51ab0bf31e4.rlib: crates/rpcstack/src/lib.rs crates/rpcstack/src/codec.rs crates/rpcstack/src/component.rs crates/rpcstack/src/cost.rs crates/rpcstack/src/deadline.rs crates/rpcstack/src/error.rs crates/rpcstack/src/hedging.rs crates/rpcstack/src/loadbalancer.rs crates/rpcstack/src/queue.rs crates/rpcstack/src/retry.rs

/root/repo/target/release/deps/librpclens_rpcstack-d507e51ab0bf31e4.rmeta: crates/rpcstack/src/lib.rs crates/rpcstack/src/codec.rs crates/rpcstack/src/component.rs crates/rpcstack/src/cost.rs crates/rpcstack/src/deadline.rs crates/rpcstack/src/error.rs crates/rpcstack/src/hedging.rs crates/rpcstack/src/loadbalancer.rs crates/rpcstack/src/queue.rs crates/rpcstack/src/retry.rs

crates/rpcstack/src/lib.rs:
crates/rpcstack/src/codec.rs:
crates/rpcstack/src/component.rs:
crates/rpcstack/src/cost.rs:
crates/rpcstack/src/deadline.rs:
crates/rpcstack/src/error.rs:
crates/rpcstack/src/hedging.rs:
crates/rpcstack/src/loadbalancer.rs:
crates/rpcstack/src/queue.rs:
crates/rpcstack/src/retry.rs:
