//! The parallel driver's tentpole guarantee: shard count must not change
//! a single bit of any output.
//!
//! A sharded run partitions the root workload across worker threads, each
//! with its own network instance and accumulators, then folds the shards
//! back together in shard-id order. The determinism contract (see
//! `docs/ARCHITECTURE.md`) promises that this fold reproduces the
//! single-threaded run exactly — so every figure and table regenerated
//! from a run is bit-identical no matter how many cores were used.

use rpclens_bench::{produce, Artifact};
use rpclens_fleet::driver::{run_fleet, FleetConfig, FleetRun, SimScale};
use rpclens_simcore::time::SimDuration;

fn run_with_shards(shards: usize) -> FleetRun {
    let scale = SimScale {
        name: "determinism",
        total_methods: 320,
        roots: 4_000,
        duration: SimDuration::from_hours(24),
        trace_sample_rate: 1,
        profiler_sample_cap: 10_000,
        seed: 23,
    };
    let mut config = FleetConfig::at_scale(scale);
    config.shards = shards;
    run_fleet(config)
}

#[test]
fn figures_are_bit_identical_at_any_shard_count() {
    let base = run_with_shards(1);
    for shards in [2usize, 8] {
        let run = run_with_shards(shards);

        // Raw simulation outputs first — cheap to diagnose when they
        // differ, and they are the inputs every figure derives from.
        assert_eq!(base.total_spans, run.total_spans, "shards={shards}");
        assert_eq!(base.method_calls, run.method_calls, "shards={shards}");
        assert_eq!(base.method_bytes, run.method_bytes, "shards={shards}");
        assert_eq!(base.store.len(), run.store.len(), "shards={shards}");
        for (i, (a, b)) in base
            .store
            .traces()
            .iter()
            .zip(run.store.traces())
            .enumerate()
        {
            assert_eq!(a.root_start, b.root_start, "trace {i} at shards={shards}");
            assert_eq!(a.spans, b.spans, "trace {i} spans at shards={shards}");
        }
        assert_eq!(
            base.errors.kinds_by_count(),
            run.errors.kinds_by_count(),
            "shards={shards}"
        );
        assert_eq!(
            base.profiler.total_cycles(),
            run.profiler.total_cycles(),
            "shards={shards}"
        );

        // Then the deliverables themselves: every rendered figure and
        // table, compared as exact text.
        for artifact in Artifact::ALL {
            let (a, _) = produce(artifact, Some(&base));
            let (b, _) = produce(artifact, Some(&run));
            assert_eq!(
                a,
                b,
                "artifact {} differs at shards={shards}",
                artifact.name()
            );
        }
    }
}
