//! Pins the wire-trace capture: over `MemLink` with the virtual clock,
//! the full measured-trace export — every byte — must be a pure
//! function of the seed. CI runs this as a gate; a digest change means
//! the capture pipeline (codec, payload generator, cost model, span
//! assembly, or export format) drifted, which must be a deliberate,
//! reviewed act (regenerate with
//! `REGEN_WIRE_TRACE_DIGEST=1 cargo test -p rpclens-bench --test wire_trace_determinism`).

use rpclens_bench::wiretrace::{run_traced_memlink, TraceBenchConfig};
use std::fmt::Write as _;

const DIGEST_FILE: &str = concat!(env!("CARGO_MANIFEST_DIR"), "/WIRE_TRACE_DIGEST");

fn pinned_configs() -> Vec<TraceBenchConfig> {
    [42, 7]
        .into_iter()
        .map(|seed| TraceBenchConfig {
            requests: 48,
            seed,
            total_methods: 300,
            hops: 2,
            fanout: 2,
        })
        .collect()
}

#[test]
fn wire_trace_capture_is_deterministic_and_pinned() {
    let mut rendered = String::from(
        "# Wire-trace export digests (fnv1a of trace::export bytes).\n\
         # One `seed digest` pair per line; config: requests=48 methods=300 hops=2 fanout=2.\n\
         # Regenerate: REGEN_WIRE_TRACE_DIGEST=1 cargo test -p rpclens-bench --test wire_trace_determinism\n",
    );
    for config in pinned_configs() {
        let a = run_traced_memlink(&config).expect("traced run");
        let b = run_traced_memlink(&config).expect("traced rerun");
        assert_eq!(
            a.export, b.export,
            "seed {}: export bytes differ between identical runs",
            config.seed
        );
        assert_eq!(a.digest, b.digest);
        writeln!(rendered, "{} {:016x}", config.seed, a.digest).unwrap();
    }
    if std::env::var_os("REGEN_WIRE_TRACE_DIGEST").is_some() {
        std::fs::write(DIGEST_FILE, &rendered).unwrap();
        eprintln!("regenerated {DIGEST_FILE}");
        return;
    }
    let committed = std::fs::read_to_string(DIGEST_FILE)
        .unwrap_or_else(|e| panic!("missing digest pin {DIGEST_FILE}: {e}"));
    assert_eq!(
        committed, rendered,
        "wire-trace digest drifted from the committed pin; if the capture \
         change is intentional, regenerate with REGEN_WIRE_TRACE_DIGEST=1"
    );
}
