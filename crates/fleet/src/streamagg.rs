//! Bounded-memory streaming window aggregation.
//!
//! Until this module existed, every shard carried a dense
//! `(service, window)` counter grid — `num_services × n_windows` u64s —
//! that was written all run and read once, by the end-of-run TSDB
//! flush. That grid is O(simulated duration): small at the default
//! 30-minute cadence over a day, but the terms multiply — a week-long
//! run at minute cadence is 300× the windows, times the shard count.
//! This module replaces it with a streaming pipeline shaped like the
//! production monitoring path the paper describes (and like the
//! bounded-memory trace-characterization pipelines of PAPERS.md):
//! aggregation state resident at any instant is **one dense window
//! column** per shard, O(services), regardless of how long the
//! simulated day (or week) is, and a finalized window is in the TSDB's
//! point vectors — not in any shard — the moment no in-flight shard can
//! still touch it.
//!
//! Three pieces:
//!
//! - [`WindowAgg`] — the per-shard accumulator. Roots arrive in
//!   simulated-time order within a shard, so when a root's window index
//!   advances past the open window, the open column is *closed*: its
//!   non-zero cells are compacted into a sparse [`ClosedWindow`] and the
//!   column is re-zeroed for the next window.
//! - [`ClosedWindow`] — one finalized window: sparse `(service, calls)`
//!   pairs plus the root-keyed scalar deltas (errors, congested wire
//!   traversals, retries). Windows closed by *adjacent shards* can share
//!   one boundary window index; [`ClosedWindow::coalesce`] sums them
//!   during the shard fold, so the merged stream is identical to what a
//!   sequential run would have produced.
//! - [`WindowSink`] — the streaming TSDB frontend. Closed windows are
//!   pushed in ascending window order (shard 0 streams live while it
//!   runs; later shards' windows arrive via the ordered fold) and each
//!   push appends the *cumulative* counter points the TSDB stores — the
//!   same Monarch-style `write_cumulative` stream the dense scan used to
//!   produce, byte for byte. At run end the finished point vectors are
//!   installed into the [`TimeSeriesDb`] wholesale (one map insertion
//!   per series, no per-point lookups).
//!
//! Ordering contract, in one paragraph: a window may be flushed to the
//! sink only when no in-flight shard can still contribute to it. Shard
//! `j`'s roots are a contiguous arrival-ordered chunk, so every window it
//! touches is `>= first_window[j]`, and `first_window` is non-decreasing
//! in `j`. Therefore (a) shard 0 can stream a window the moment it closes
//! it — only its final *open* window can coalesce with shard 1; and (b)
//! after shard `j` folds into the accumulator, every accumulated window
//! strictly below `first_window[j + 1]` is final and is flushed and
//! dropped. The equivalence proptest at the bottom of this file pins the
//! whole pipeline — any shard split, any boundary coalescing — against
//! the dense-grid reference flush, point for point.

use rpclens_simcore::time::SimTime;
use rpclens_tsdb::metric::{Labels, MetricValue};
use rpclens_tsdb::store::{Series, TimeSeriesDb};
use std::sync::Mutex;

/// One finalized aggregation window.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ClosedWindow {
    /// Window index (`root.at / sample_period`).
    pub w: usize,
    /// Sparse per-service call counts: `(service index, calls)` pairs,
    /// service-ascending, zero cells omitted.
    pub calls: Vec<(u16, u64)>,
    /// Injected-error delta (keyed by root window).
    pub errors: u64,
    /// Congested-wire-traversal delta (keyed by root window).
    pub congested: u64,
    /// Retry delta (keyed by root window).
    pub retries: u64,
    /// Admission-queue shed delta (keyed by root window).
    pub admission_shed: u64,
    /// Admission-queue abandon delta (keyed by root window).
    pub admission_abandoned: u64,
    /// Total calls in the window (the sum over `calls`); always positive
    /// for a closed window, since every root expands to at least one
    /// span.
    pub rpcs: u64,
}

impl ClosedWindow {
    /// Sums `other` (the same window index, closed by the adjacent
    /// shard) into this one. Two-pointer merge over the sorted sparse
    /// rows keeps the result service-ascending.
    fn coalesce(&mut self, other: &ClosedWindow) {
        debug_assert_eq!(self.w, other.w, "coalescing different windows");
        let mut merged = Vec::with_capacity(self.calls.len().max(other.calls.len()));
        let (a, b) = (&self.calls, &other.calls);
        let (mut i, mut j) = (0, 0);
        while i < a.len() && j < b.len() {
            match a[i].0.cmp(&b[j].0) {
                std::cmp::Ordering::Less => {
                    merged.push(a[i]);
                    i += 1;
                }
                std::cmp::Ordering::Greater => {
                    merged.push(b[j]);
                    j += 1;
                }
                std::cmp::Ordering::Equal => {
                    merged.push((a[i].0, a[i].1 + b[j].1));
                    i += 1;
                    j += 1;
                }
            }
        }
        merged.extend_from_slice(&a[i..]);
        merged.extend_from_slice(&b[j..]);
        self.calls = merged;
        self.errors += other.errors;
        self.congested += other.congested;
        self.retries += other.retries;
        self.admission_shed += other.admission_shed;
        self.admission_abandoned += other.admission_abandoned;
        self.rpcs += other.rpcs;
    }
}

/// Per-shard streaming window accumulator: one dense column, O(services).
#[derive(Debug)]
pub struct WindowAgg {
    /// Dense per-service call counts of the open window.
    column: Vec<u64>,
    /// Services touched in the open window, in first-touch order; the
    /// close pass reads (and re-zeroes) only these cells instead of
    /// sweeping all `num_services` of them.
    touched: Vec<u16>,
    /// Open window index; meaningless until `started`.
    cur_w: usize,
    started: bool,
    errors: u64,
    congested: u64,
    retries: u64,
    admission_shed: u64,
    admission_abandoned: u64,
    rpcs: u64,
}

impl WindowAgg {
    /// An empty accumulator over `n_services` services.
    pub fn new(n_services: usize) -> Self {
        WindowAgg {
            column: vec![0; n_services],
            touched: Vec::new(),
            cur_w: 0,
            started: false,
            errors: 0,
            congested: 0,
            retries: 0,
            admission_shed: 0,
            admission_abandoned: 0,
            rpcs: 0,
        }
    }

    /// Moves the open window to `w`, returning the previously open
    /// window (closed and compacted) if `w` advanced past it.
    ///
    /// # Panics
    ///
    /// Panics (debug) if `w` moves backwards: roots are processed in
    /// arrival order, so window indices are non-decreasing.
    pub fn advance(&mut self, w: usize) -> Option<ClosedWindow> {
        if !self.started {
            self.started = true;
            self.cur_w = w;
            return None;
        }
        if w == self.cur_w {
            return None;
        }
        debug_assert!(
            w > self.cur_w,
            "window moved backwards: {w} < {}",
            self.cur_w
        );
        let closed = self.close();
        self.cur_w = w;
        closed
    }

    /// Records one call against service `svc` in the open window.
    #[inline]
    pub fn add_call(&mut self, svc: u16) {
        let cell = &mut self.column[svc as usize];
        if *cell == 0 {
            self.touched.push(svc);
        }
        *cell += 1;
        self.rpcs += 1;
    }

    /// Adds one root's scalar deltas to the open window.
    pub fn add_scalars(
        &mut self,
        errors: u64,
        congested: u64,
        retries: u64,
        admission_shed: u64,
        admission_abandoned: u64,
    ) {
        self.errors += errors;
        self.congested += congested;
        self.retries += retries;
        self.admission_shed += admission_shed;
        self.admission_abandoned += admission_abandoned;
    }

    /// Closes the open window (if any non-empty one exists), compacting
    /// the dense column into a sparse row and re-zeroing it.
    pub fn finish(&mut self) -> Option<ClosedWindow> {
        if !self.started {
            return None;
        }
        self.close()
    }

    fn close(&mut self) -> Option<ClosedWindow> {
        if self.rpcs == 0 {
            // A window the shard skipped over entirely; matches the
            // dense scan's skip-zero rule.
            debug_assert!(self.touched.is_empty());
            return None;
        }
        // Sparse rows are service-ascending: sort the touch list (short
        // — only services active this window) rather than sweeping the
        // full column.
        self.touched.sort_unstable();
        let calls: Vec<(u16, u64)> = self
            .touched
            .drain(..)
            .map(|svc| {
                let c = std::mem::take(&mut self.column[svc as usize]);
                (svc, c)
            })
            .collect();
        let closed = ClosedWindow {
            w: self.cur_w,
            calls,
            errors: std::mem::take(&mut self.errors),
            congested: std::mem::take(&mut self.congested),
            retries: std::mem::take(&mut self.retries),
            admission_shed: std::mem::take(&mut self.admission_shed),
            admission_abandoned: std::mem::take(&mut self.admission_abandoned),
            rpcs: std::mem::take(&mut self.rpcs),
        };
        Some(closed)
    }
}

/// Appends `other`'s closed windows (the next shard in id order) to
/// `acc`, summing the shared boundary window if the two shards split one.
///
/// # Panics
///
/// Panics (debug) if `other` starts below `acc`'s last window — shard
/// chunks are contiguous in arrival order, so that cannot happen.
pub fn absorb_closed(acc: &mut Vec<ClosedWindow>, other: Vec<ClosedWindow>) {
    let mut rest = other.into_iter();
    let Some(first) = rest.next() else {
        return;
    };
    match acc.last_mut() {
        Some(last) if last.w == first.w => last.coalesce(&first),
        Some(last) => {
            debug_assert!(last.w < first.w, "shard windows out of order");
            acc.push(first);
        }
        // `acc` was empty (fully flushed); start it from `other`.
        None => acc.push(first),
    }
    acc.extend(rest);
}

/// One cumulative counter series under construction.
#[derive(Debug, Default)]
struct Lane {
    cum: u64,
    points: Vec<(SimTime, MetricValue)>,
}

impl Lane {
    #[inline]
    fn push(&mut self, at: SimTime, delta: u64) {
        self.cum += delta;
        self.points.push((at, MetricValue::Counter(self.cum)));
    }
}

/// The streaming TSDB frontend: receives closed windows in ascending
/// window order and builds the cumulative counter series incrementally.
///
/// Wrapped in a [`Mutex`] so shard 0 (streaming live) and the ordered
/// fold (flushing merged windows) can share it; pushes are per-window —
/// a few dozen locks over a simulated day at the default 30-minute
/// cadence — so contention is nil.
#[derive(Debug)]
pub struct WindowSink {
    inner: Mutex<SinkState>,
}

#[derive(Debug)]
struct SinkState {
    /// One lane per service (`rpc/server/count{service=...}`).
    services: Vec<Lane>,
    /// The aligned driver self-telemetry lanes, in registration order:
    /// rpcs, errors, congested wire, retries, admission sheds, admission
    /// abandons.
    driver: [Lane; 6],
    period_ns: u64,
    /// Last pushed window; pushes must be strictly ascending.
    last_w: Option<usize>,
}

impl WindowSink {
    /// A sink over `n_services` services at the given sample period.
    pub fn new(n_services: usize, period_ns: u64) -> Self {
        WindowSink {
            inner: Mutex::new(SinkState {
                services: (0..n_services).map(|_| Lane::default()).collect(),
                driver: Default::default(),
                period_ns,
                last_w: None,
            }),
        }
    }

    /// Appends one closed window's points to every affected series.
    ///
    /// # Panics
    ///
    /// Panics if windows arrive out of ascending order — the ordering
    /// contract in the module docs was violated.
    pub fn push(&self, cw: &ClosedWindow) {
        let mut s = self.inner.lock().expect("window sink lock");
        assert!(
            s.last_w.is_none_or(|last| last < cw.w),
            "window {} pushed after window {:?}",
            cw.w,
            s.last_w
        );
        s.last_w = Some(cw.w);
        let at = SimTime::from_nanos(cw.w as u64 * s.period_ns);
        for &(svc, calls) in &cw.calls {
            s.services[svc as usize].push(at, calls);
        }
        // The driver streams stay aligned on the same window set: every
        // closed window has `rpcs > 0`, and zero deltas for the other
        // lanes still emit a point (exactly the old aligned scan).
        let [rpcs, errors, congested, retries, adm_shed, adm_abandoned] = &mut s.driver;
        rpcs.push(at, cw.rpcs);
        errors.push(at, cw.errors);
        congested.push(at, cw.congested);
        retries.push(at, cw.retries);
        adm_shed.push(at, cw.admission_shed);
        adm_abandoned.push(at, cw.admission_abandoned);
    }

    /// Installs every finished series into the database and consumes the
    /// sink. `service_name` maps a service index to its label value;
    /// services with no points get no series (the skip-zero rule).
    ///
    /// The metrics (`rpc/server/count`, `driver/rpcs/count`,
    /// `driver/errors/count`, `driver/wire/congested`,
    /// `driver/retries/count`, `driver/admission/shed`,
    /// `driver/admission/abandoned`) must already be registered as
    /// counters.
    ///
    /// # Errors
    ///
    /// Propagates [`TimeSeriesDb::install_series`] errors (unregistered
    /// metric, kind mismatch, duplicate series).
    pub fn install(
        self,
        tsdb: &mut TimeSeriesDb,
        service_name: impl Fn(u16) -> String,
    ) -> Result<(), String> {
        let s = self.inner.into_inner().expect("window sink lock");
        for (idx, lane) in s.services.into_iter().enumerate() {
            if lane.points.is_empty() {
                continue;
            }
            let labels = Labels::from_pairs([("service", service_name(idx as u16))]);
            tsdb.install_series("rpc/server/count", labels, Series::from_points(lane.points))?;
        }
        let names = [
            "driver/rpcs/count",
            "driver/errors/count",
            "driver/wire/congested",
            "driver/retries/count",
            "driver/admission/shed",
            "driver/admission/abandoned",
        ];
        for (name, lane) in names.into_iter().zip(s.driver) {
            if lane.points.is_empty() {
                continue;
            }
            tsdb.install_series(name, Labels::empty(), Series::from_points(lane.points))?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    use rpclens_simcore::time::SimDuration;
    use rpclens_tsdb::metric::MetricDescriptor;

    const PERIOD_NS: u64 = 60_000_000_000; // one minute

    fn fresh_tsdb() -> TimeSeriesDb {
        let mut tsdb = TimeSeriesDb::new(SimDuration::from_nanos(PERIOD_NS));
        let retention = SimDuration::from_hours(24 * 700);
        for (name, _) in METRICS {
            tsdb.register(MetricDescriptor::counter(name, retention))
                .expect("fresh tsdb");
        }
        tsdb.register(MetricDescriptor::counter("rpc/server/count", retention))
            .expect("fresh tsdb");
        tsdb
    }

    const METRICS: [(&str, usize); 6] = [
        ("driver/rpcs/count", 0),
        ("driver/errors/count", 1),
        ("driver/wire/congested", 2),
        ("driver/retries/count", 3),
        ("driver/admission/shed", 4),
        ("driver/admission/abandoned", 5),
    ];

    /// One synthetic root: window, service of each span, scalar deltas.
    #[derive(Debug, Clone)]
    struct Root {
        w: usize,
        spans: Vec<u16>,
        errors: u64,
        congested: u64,
        retries: u64,
        adm_shed: u64,
        adm_abandoned: u64,
    }

    const N_SERVICES: usize = 7;

    fn roots_strategy() -> impl Strategy<Value = Vec<Root>> {
        // Windows are produced ascending by construction: each root
        // carries a non-negative increment over the previous window.
        proptest::collection::vec(
            (
                0usize..3,
                proptest::collection::vec(0u16..(N_SERVICES as u16), 1..6),
                0u64..3,
                0u64..3,
                (0u64..3, 0u64..3, 0u64..3),
            ),
            1..60,
        )
        .prop_map(|steps| {
            let mut w = 0usize;
            steps
                .into_iter()
                .map(|(dw, spans, errors, congested, scalars)| {
                    w += dw;
                    let (retries, adm_shed, adm_abandoned) = scalars;
                    Root {
                        w,
                        spans,
                        errors,
                        congested,
                        retries,
                        adm_shed,
                        adm_abandoned,
                    }
                })
                .collect()
        })
    }

    /// The dense-grid reference: the exact end-of-run flush the driver
    /// used before streaming aggregation (dense `(service, window)`
    /// grid, skip-zero cumulative scan, aligned driver streams).
    fn reference_flush(roots: &[Root]) -> TimeSeriesDb {
        let n_windows = roots.iter().map(|r| r.w).max().unwrap_or(0) + 1;
        let mut calls = vec![0u64; N_SERVICES * n_windows];
        let mut errors = vec![0u64; n_windows];
        let mut congested = vec![0u64; n_windows];
        let mut retries = vec![0u64; n_windows];
        let mut adm_shed = vec![0u64; n_windows];
        let mut adm_abandoned = vec![0u64; n_windows];
        for r in roots {
            for &svc in &r.spans {
                calls[svc as usize * n_windows + r.w] += 1;
            }
            errors[r.w] += r.errors;
            congested[r.w] += r.congested;
            retries[r.w] += r.retries;
            adm_shed[r.w] += r.adm_shed;
            adm_abandoned[r.w] += r.adm_abandoned;
        }
        let mut tsdb = fresh_tsdb();
        for svc in 0..N_SERVICES {
            let row = &calls[svc * n_windows..(svc + 1) * n_windows];
            if row.iter().all(|&c| c == 0) {
                continue;
            }
            let labels = Labels::from_pairs([("service", format!("svc-{svc}"))]);
            tsdb.write_cumulative(
                "rpc/server/count",
                labels,
                row.iter()
                    .enumerate()
                    .filter(|(_, &c)| c != 0)
                    .map(|(w, &c)| (w, c)),
            )
            .expect("registered");
        }
        let mut rpcs = vec![0u64; n_windows];
        for row in calls.chunks_exact(n_windows) {
            for (acc, &c) in rpcs.iter_mut().zip(row) {
                *acc += c;
            }
        }
        let windows: Vec<usize> = (0..n_windows).filter(|&w| rpcs[w] > 0).collect();
        for (name, deltas) in [
            ("driver/rpcs/count", &rpcs),
            ("driver/errors/count", &errors),
            ("driver/wire/congested", &congested),
            ("driver/retries/count", &retries),
            ("driver/admission/shed", &adm_shed),
            ("driver/admission/abandoned", &adm_abandoned),
        ] {
            tsdb.write_cumulative(
                name,
                Labels::empty(),
                windows.iter().map(|&w| (w, deltas[w])),
            )
            .expect("registered");
        }
        tsdb
    }

    /// The streaming pipeline under test: split the roots into `shards`
    /// contiguous chunks, run each through its own [`WindowAgg`]
    /// (shard 0 streaming live), fold closed windows in shard order with
    /// boundary coalescing and eager flushing, and install.
    fn streaming_flush(roots: &[Root], shards: usize) -> TimeSeriesDb {
        let sink = WindowSink::new(N_SERVICES, PERIOD_NS);
        let chunk = roots.len().div_ceil(shards).max(1);
        let chunks: Vec<&[Root]> = roots.chunks(chunk).collect();
        let first_windows: Vec<usize> = chunks.iter().map(|c| c[0].w).collect();
        let mut acc: Vec<ClosedWindow> = Vec::new();
        for (j, chunk_roots) in chunks.iter().enumerate() {
            let mut agg = WindowAgg::new(N_SERVICES);
            let mut closed = Vec::new();
            for r in *chunk_roots {
                if let Some(cw) = agg.advance(r.w) {
                    if j == 0 {
                        sink.push(&cw); // shard 0 streams live
                    } else {
                        closed.push(cw);
                    }
                }
                for &svc in &r.spans {
                    agg.add_call(svc);
                }
                agg.add_scalars(
                    r.errors,
                    r.congested,
                    r.retries,
                    r.adm_shed,
                    r.adm_abandoned,
                );
            }
            if let Some(cw) = agg.finish() {
                closed.push(cw);
            }
            if j == 0 {
                acc = closed;
            } else {
                absorb_closed(&mut acc, closed);
            }
            // Eager flush: windows no later shard can touch.
            if let Some(&bound) = first_windows.get(j + 1) {
                let cut = acc.partition_point(|cw| cw.w < bound);
                for cw in acc.drain(..cut) {
                    sink.push(&cw);
                }
            }
        }
        for cw in acc.drain(..) {
            sink.push(&cw);
        }
        let mut tsdb = fresh_tsdb();
        sink.install(&mut tsdb, |svc| format!("svc-{svc}"))
            .expect("install");
        tsdb
    }

    fn assert_same_series(a: &TimeSeriesDb, b: &TimeSeriesDb) {
        assert_eq!(a.num_series(), b.num_series());
        for name in ["rpc/server/count"]
            .into_iter()
            .chain(METRICS.into_iter().map(|(n, _)| n))
        {
            let mut a_series: Vec<_> = a.series_of(name).collect();
            a_series.sort_by_key(|(l, _)| (*l).clone());
            for (labels, series) in a_series {
                let other = b
                    .series(name, labels)
                    .unwrap_or_else(|| panic!("missing series {name}{labels}"));
                let a_pts: Vec<(u64, u64)> = series
                    .points()
                    .iter()
                    .map(|(t, v)| (t.as_nanos(), v.as_counter().expect("counter")))
                    .collect();
                let b_pts: Vec<(u64, u64)> = other
                    .points()
                    .iter()
                    .map(|(t, v)| (t.as_nanos(), v.as_counter().expect("counter")))
                    .collect();
                assert_eq!(a_pts, b_pts, "series {name}{labels} diverged");
            }
        }
    }

    #[test]
    fn window_agg_closes_on_advance_and_finish() {
        let mut agg = WindowAgg::new(4);
        assert!(agg.advance(3).is_none()); // first window opens, nothing closes
        agg.add_call(2);
        agg.add_call(2);
        agg.add_call(0);
        agg.add_scalars(1, 0, 5, 2, 1);
        assert!(agg.advance(3).is_none()); // same window
        let cw = agg.advance(7).expect("window 3 closes");
        assert_eq!(cw.w, 3);
        assert_eq!(cw.calls, vec![(0, 1), (2, 2)]);
        assert_eq!((cw.errors, cw.congested, cw.retries, cw.rpcs), (1, 0, 5, 3));
        assert_eq!((cw.admission_shed, cw.admission_abandoned), (2, 1));
        // Window 7 saw nothing: closing it emits no row.
        assert!(agg.finish().is_none());
    }

    #[test]
    fn boundary_window_coalesces_across_shards() {
        let mut acc = vec![ClosedWindow {
            w: 5,
            calls: vec![(1, 2), (3, 1)],
            errors: 1,
            congested: 0,
            retries: 2,
            admission_shed: 1,
            admission_abandoned: 0,
            rpcs: 3,
        }];
        absorb_closed(
            &mut acc,
            vec![
                ClosedWindow {
                    w: 5,
                    calls: vec![(0, 4), (3, 2)],
                    errors: 0,
                    congested: 1,
                    retries: 0,
                    admission_shed: 2,
                    admission_abandoned: 3,
                    rpcs: 6,
                },
                ClosedWindow {
                    w: 6,
                    calls: vec![(2, 1)],
                    errors: 0,
                    congested: 0,
                    retries: 0,
                    admission_shed: 0,
                    admission_abandoned: 0,
                    rpcs: 1,
                },
            ],
        );
        assert_eq!(acc.len(), 2);
        assert_eq!(acc[0].calls, vec![(0, 4), (1, 2), (3, 3)]);
        assert_eq!((acc[0].errors, acc[0].congested, acc[0].retries), (1, 1, 2));
        assert_eq!((acc[0].admission_shed, acc[0].admission_abandoned), (3, 3));
        assert_eq!(acc[0].rpcs, 9);
        assert_eq!(acc[1].w, 6);
    }

    proptest! {
        /// The tentpole equivalence: the streamed per-window flush
        /// produces byte-identical TSDB series to the dense-grid
        /// end-of-run flush, at every shard split.
        #[test]
        fn streamed_flush_matches_dense_reference(
            roots in roots_strategy(),
            shards in 1usize..5,
        ) {
            let reference = reference_flush(&roots);
            let streamed = streaming_flush(&roots, shards);
            assert_same_series(&streamed, &reference);
            assert_same_series(&reference, &streamed);
        }
    }
}
