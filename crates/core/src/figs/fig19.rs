//! Fig. 19: Spanner cross-cluster latency breakdown by client distance.
//!
//! The paper issues reads to Spanner servers from clients in ~140
//! clusters and shows median latency growing with distance: same
//! datacenter ≪ different datacenter in the same country ≪ different
//! continents (~hundreds of ms), with the median closely matching wire
//! latency — congestion is a tail phenomenon, not a median one.
//!
//! This figure is a *focused probe*: the analysis replays Spanner reads
//! from every cluster in the topology against the nearest Spanner
//! deployment, reusing the run's network and cost models, so every
//! distance class is populated regardless of how much organic traffic
//! crossed continents.

use crate::check::ExpectationSet;
use crate::render::{fmt_secs, TextTable};
use rpclens_fleet::driver::FleetRun;
use rpclens_netsim::latency::Network;
use rpclens_netsim::topology::{ClusterId, PathClass};
use rpclens_rpcstack::cost::MessageClass;
use rpclens_simcore::prelude::*;
use rpclens_simcore::stats::{percentile, sorted_finite};

/// One client cluster's view of Spanner.
#[derive(Debug)]
pub struct ClientRow {
    /// The client cluster.
    pub client: ClusterId,
    /// The chosen (nearest) Spanner cluster.
    pub server: ClusterId,
    /// Distance class of the path.
    pub class: PathClass,
    /// Median completion time, seconds.
    pub median: f64,
    /// Median network-wire seconds (both directions).
    pub median_network: f64,
    /// Deterministic wire latency (RTT) for comparison, seconds.
    pub wire_rtt: f64,
}

/// The computed figure.
#[derive(Debug)]
pub struct Fig19 {
    /// One row per client cluster, sorted by distance class then median.
    pub rows: Vec<ClientRow>,
}

/// Computes the figure by probing from every cluster against the
/// data-home cluster of that client's working set.
pub fn compute(run: &FleetRun) -> Fig19 {
    let spanner = run
        .catalog
        .service_by_name("Spanner")
        .expect("Spanner exists");
    let entry = run
        .catalog
        .table1()
        .iter()
        .find(|e| e.server == "Spanner")
        .expect("Spanner is in Table 1");
    let method = run.catalog.method(entry.method).clone();
    let cost = rpclens_rpcstack::cost::StackCostModel::new(run.config.cost);
    let class_spec = MessageClass::structured();
    let mut rng = Prng::seed_from(run.config.scale.seed ^ 0x19);
    let mut rows = Vec::new();
    for client in run.topology.cluster_ids() {
        // A fresh probe network per client keeps every path's congestion
        // queries monotone in time. Two clients can land on the same
        // unordered cluster pair (client A reading from B's home, client
        // B from A's), and a shared network would re-query that path at
        // t=0 after the first client walked it 20 simulated hours ahead —
        // past the trajectory's retention window. Congestion trajectories
        // are pure functions of (seed, path label), so rebuilding the
        // network changes no sampled value.
        let mut network = Network::new(
            run.topology.clone(),
            run.config.net.clone(),
            run.config.scale.seed ^ 0xF19,
        );
        // The row the paper plots: the client reads a specific shard, and
        // the shard's home cluster is wherever the data lives — not the
        // nearest replica. A deterministic hash assigns each client's
        // working set a home, so distance classes span same-cluster to
        // intercontinental exactly as Fig. 19's x-axis does.
        let server =
            spanner.clusters[(client.0 as usize).wrapping_mul(7919) % spanner.clusters.len()];
        let site = run.site(spanner.id, server).expect("site exists");
        let mut totals = Vec::new();
        let mut networks = Vec::new();
        for i in 0..300u64 {
            let at = SimTime::ZERO + SimDuration::from_secs(i * 240);
            let req = method.sample_request_bytes(&mut rng);
            let resp = method.sample_response_bytes(&mut rng);
            let req_net = network
                .one_way_latency(client, server, cost.wire_bytes(req, true), at, &mut rng)
                .as_secs_f64();
            let resp_net = network
                .one_way_latency(server, client, cost.wire_bytes(resp, true), at, &mut rng)
                .as_secs_f64();
            let proc = cost.stack_latency(req, class_spec, 1.0).as_secs_f64()
                + cost.stack_latency(resp, class_spec, 1.0).as_secs_f64();
            let util = site.machine_util(0, at);
            let queue = site.queue.sample_wait(util, &mut rng).as_secs_f64();
            let (compute, _) = method.sample_compute(&mut rng);
            totals.push(req_net + resp_net + proc + queue + compute.as_secs_f64());
            networks.push(req_net + resp_net);
        }
        let st = sorted_finite(totals);
        let sn = sorted_finite(networks);
        rows.push(ClientRow {
            client,
            server,
            class: run.topology.path_class(client, server),
            median: percentile(&st, 0.5).expect("non-empty"),
            median_network: percentile(&sn, 0.5).expect("non-empty"),
            wire_rtt: network.base_latency(client, server, 1024).as_secs_f64() * 2.0,
        });
    }
    rows.sort_by(|a, b| {
        a.class
            .cmp(&b.class)
            .then(a.median.partial_cmp(&b.median).expect("finite"))
    });
    Fig19 { rows }
}

/// Renders the figure.
pub fn render(fig: &Fig19) -> String {
    let mut t = TextTable::new(&["client", "class", "median", "median net", "wire RTT"]);
    for r in &fig.rows {
        t.row(vec![
            r.client.0.to_string(),
            r.class.label().to_string(),
            fmt_secs(r.median),
            fmt_secs(r.median_network),
            fmt_secs(r.wire_rtt),
        ]);
    }
    format!(
        "Fig. 19 — Spanner cross-cluster latency by client cluster\n{}",
        t.render()
    )
}

/// Paper-vs-measured checks.
pub fn checks(fig: &Fig19) -> ExpectationSet {
    let mut s = ExpectationSet::new();
    let median_of = |class: PathClass| -> f64 {
        let v: Vec<f64> = fig
            .rows
            .iter()
            .filter(|r| r.class == class)
            .map(|r| r.median)
            .collect();
        if v.is_empty() {
            return f64::NAN;
        }
        v.iter().sum::<f64>() / v.len() as f64
    };
    let same = median_of(PathClass::SameCluster);
    let inter = median_of(PathClass::InterContinent);
    if inter.is_finite() && same.is_finite() {
        s.add(
            "fig19.distance_dominates",
            "cross-continent medians dwarf same-cluster medians",
            inter / same,
            5.0,
            f64::INFINITY,
        );
        s.add(
            "fig19.intercontinental_scale",
            "cross-continent latency reaches the 100ms+ regime",
            inter,
            0.05,
            0.6,
        );
    }
    // Median network closely matches deterministic wire latency for
    // distant clients (§3.3.5's cross-validation).
    let mut checked = 0;
    let mut close = 0;
    for r in &fig.rows {
        if r.class == PathClass::InterContinent || r.class == PathClass::SameContinent {
            checked += 1;
            if (r.median_network - r.wire_rtt).abs() / r.wire_rtt < 0.25 {
                close += 1;
            }
        }
    }
    if checked > 0 {
        s.add(
            "fig19.wire_dominated",
            "median network latency closely matches wire latency (congestion is tail-only)",
            close as f64 / checked as f64,
            0.7,
            1.0,
        );
    }
    s
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::common::testrun::shared;

    #[test]
    fn checks_pass_on_test_run() {
        let fig = compute(shared());
        let c = checks(&fig);
        assert!(c.all_passed(), "{c}");
    }

    #[test]
    fn every_cluster_probes() {
        let run = shared();
        let fig = compute(run);
        assert_eq!(fig.rows.len(), run.topology.num_clusters());
        // Multiple distance classes are populated.
        let classes: std::collections::BTreeSet<_> = fig.rows.iter().map(|r| r.class).collect();
        assert!(classes.len() >= 3, "{classes:?}");
    }

    #[test]
    fn rows_sorted_by_class_then_median() {
        let fig = compute(shared());
        assert!(fig.rows.windows(2).all(|w| {
            w[0].class < w[1].class || (w[0].class == w[1].class && w[0].median <= w[1].median)
        }));
    }

    #[test]
    fn deterministic() {
        let a = compute(shared());
        let b = compute(shared());
        for (x, y) in a.rows.iter().zip(b.rows.iter()) {
            assert_eq!(x.client, y.client);
            assert_eq!(x.median, y.median);
        }
    }
}
