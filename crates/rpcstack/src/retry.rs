//! Retry policies with exponential backoff and retry budgets.
//!
//! The paper's error analysis (§4.4) shows that failed RPCs waste real
//! fleet capacity, and that "unavailable"-class errors are transient by
//! nature — which is exactly what client retries exist to absorb. A naive
//! retry storm, however, amplifies overload, so production stacks pair
//! per-call backoff with a *retry budget*: retries may only consume a
//! bounded fraction of a client's successful traffic.

use crate::error::ErrorKind;
use rpclens_simcore::rng::Prng;
use rpclens_simcore::time::SimDuration;
use serde::{Deserialize, Serialize};

/// Exponential backoff with full jitter.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct BackoffPolicy {
    /// First retry delay.
    pub base: SimDuration,
    /// Multiplier applied per attempt.
    pub multiplier: f64,
    /// Cap on any single delay.
    pub max: SimDuration,
    /// Maximum number of retry attempts (0 = no retries).
    pub max_attempts: u32,
}

impl Default for BackoffPolicy {
    fn default() -> Self {
        BackoffPolicy {
            base: SimDuration::from_millis(5),
            multiplier: 2.0,
            max: SimDuration::from_secs(1),
            max_attempts: 3,
        }
    }
}

impl BackoffPolicy {
    /// The jittered delay before retry `attempt` (1-based), or `None`
    /// once attempts are exhausted.
    ///
    /// Full jitter: uniform in `[0, capped_exponential]`, the AWS
    /// recommendation that best de-synchronises retry storms.
    pub fn delay(&self, attempt: u32, rng: &mut Prng) -> Option<SimDuration> {
        if attempt == 0 || attempt > self.max_attempts {
            return None;
        }
        let exp = self.base.as_secs_f64() * self.multiplier.powi(attempt as i32 - 1);
        let capped = exp.min(self.max.as_secs_f64());
        Some(SimDuration::from_secs_f64(rng.next_f64() * capped))
    }

    /// Whether an error class is worth retrying at all: transient
    /// conditions yes; semantic failures no.
    pub fn retryable(kind: ErrorKind) -> bool {
        matches!(
            kind,
            ErrorKind::Unavailable | ErrorKind::NoResource | ErrorKind::Aborted
        )
    }
}

/// A token-bucket retry budget: retries spend tokens that successful
/// requests earn, bounding retry amplification under overload.
#[derive(Debug, Clone)]
pub struct RetryBudget {
    /// Tokens earned per successful request.
    earn_rate: f64,
    /// Tokens spent per retry.
    spend: f64,
    /// Current balance.
    balance: f64,
    /// Balance cap.
    cap: f64,
}

impl RetryBudget {
    /// Creates a budget allowing roughly `ratio` retries per success,
    /// with burst capacity `cap` retries.
    ///
    /// # Panics
    ///
    /// Panics unless `0 < ratio <= 1` and `cap > 0`.
    pub fn new(ratio: f64, cap: f64) -> Self {
        assert!(ratio > 0.0 && ratio <= 1.0, "ratio must be in (0, 1]");
        assert!(cap > 0.0, "cap must be positive");
        RetryBudget {
            earn_rate: ratio,
            spend: 1.0,
            balance: cap,
            cap,
        }
    }

    /// Credits one successful request.
    pub fn on_success(&mut self) {
        self.balance = (self.balance + self.earn_rate).min(self.cap);
    }

    /// Attempts to spend a retry token; `false` means the budget is
    /// exhausted and the caller must surface the error instead.
    pub fn try_spend(&mut self) -> bool {
        // Epsilon absorbs accumulated floating-point error from repeated
        // fractional earns (100 x 0.1 sums just below 10.0).
        if self.balance + 1e-9 >= self.spend {
            self.balance = (self.balance - self.spend).max(0.0);
            true
        } else {
            false
        }
    }

    /// The current token balance.
    pub fn balance(&self) -> f64 {
        self.balance
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn delays_grow_exponentially_up_to_the_cap() {
        let p = BackoffPolicy {
            base: SimDuration::from_millis(10),
            multiplier: 2.0,
            max: SimDuration::from_millis(60),
            max_attempts: 5,
        };
        let mut rng = Prng::seed_from(1);
        // Jitter is uniform in [0, cap]; sample many to find the maxima.
        let max_delay = |attempt: u32, rng: &mut Prng| {
            (0..2000)
                .filter_map(|_| p.delay(attempt, rng))
                .map(|d| d.as_secs_f64())
                .fold(0.0f64, f64::max)
        };
        let m1 = max_delay(1, &mut rng);
        let m2 = max_delay(2, &mut rng);
        let m3 = max_delay(3, &mut rng);
        let m4 = max_delay(4, &mut rng);
        assert!((m1 - 0.010).abs() < 0.001, "attempt 1 max {m1}");
        assert!((m2 - 0.020).abs() < 0.002, "attempt 2 max {m2}");
        assert!((m3 - 0.040).abs() < 0.004, "attempt 3 max {m3}");
        // Capped at 60 ms.
        assert!((m4 - 0.060).abs() < 0.006, "attempt 4 max {m4}");
    }

    #[test]
    fn attempts_are_bounded() {
        let p = BackoffPolicy {
            max_attempts: 2,
            ..BackoffPolicy::default()
        };
        let mut rng = Prng::seed_from(2);
        assert!(p.delay(0, &mut rng).is_none());
        assert!(p.delay(1, &mut rng).is_some());
        assert!(p.delay(2, &mut rng).is_some());
        assert!(p.delay(3, &mut rng).is_none());
    }

    #[test]
    fn only_transient_errors_are_retryable() {
        assert!(BackoffPolicy::retryable(ErrorKind::Unavailable));
        assert!(BackoffPolicy::retryable(ErrorKind::NoResource));
        assert!(BackoffPolicy::retryable(ErrorKind::Aborted));
        assert!(!BackoffPolicy::retryable(ErrorKind::EntityNotFound));
        assert!(!BackoffPolicy::retryable(ErrorKind::NoPermission));
        assert!(!BackoffPolicy::retryable(ErrorKind::Cancelled));
        assert!(!BackoffPolicy::retryable(ErrorKind::DeadlineExceeded));
        assert!(!BackoffPolicy::retryable(ErrorKind::Internal));
    }

    #[test]
    fn budget_bounds_retry_amplification() {
        // 10% retry ratio: under total outage, at most the burst cap plus
        // earned tokens are spent.
        let mut b = RetryBudget::new(0.1, 10.0);
        let mut retries = 0;
        for _ in 0..200 {
            if b.try_spend() {
                retries += 1;
            }
        }
        assert_eq!(retries, 10, "burst cap only, nothing earned");
        // A stream of successes re-earns budget at the configured ratio.
        for _ in 0..100 {
            b.on_success();
        }
        let mut earned_retries = 0;
        while b.try_spend() {
            earned_retries += 1;
        }
        assert_eq!(earned_retries, 10, "0.1 x 100 successes");
    }

    #[test]
    fn budget_balance_caps() {
        let mut b = RetryBudget::new(1.0, 5.0);
        for _ in 0..100 {
            b.on_success();
        }
        assert!((b.balance() - 5.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "ratio")]
    fn zero_ratio_panics() {
        let _ = RetryBudget::new(0.0, 1.0);
    }

    mod properties {
        use super::*;
        use proptest::prelude::*;

        proptest! {
            // The budget invariant: the balance never dips below zero and
            // never exceeds the cap, whatever the earn/spend interleaving.
            #[test]
            fn budget_balance_stays_in_bounds(
                ratio in 0.01f64..=1.0,
                cap in 0.1f64..=50.0,
                ops in proptest::collection::vec(any::<bool>(), 0..512),
            ) {
                let mut b = RetryBudget::new(ratio, cap);
                for earn in ops {
                    if earn {
                        b.on_success();
                    } else {
                        let _ = b.try_spend();
                    }
                    prop_assert!(b.balance() >= 0.0, "negative balance {}", b.balance());
                    prop_assert!(b.balance() <= cap + 1e-9, "balance {} above cap {cap}", b.balance());
                }
            }

            // Retry amplification is bounded: however adversarial the
            // request stream, granted retries never exceed the burst cap
            // plus ratio x successes (modulo the documented epsilon).
            #[test]
            fn retries_bounded_by_ratio_times_successes(
                ratio in 0.01f64..=1.0,
                cap in 0.1f64..=20.0,
                fail in proptest::collection::vec(any::<bool>(), 1..512),
            ) {
                let mut b = RetryBudget::new(ratio, cap);
                let mut successes = 0u64;
                let mut retries = 0u64;
                for failed in fail {
                    if failed {
                        if b.try_spend() {
                            retries += 1;
                        }
                    } else {
                        successes += 1;
                        b.on_success();
                    }
                }
                let bound = cap + ratio * successes as f64 + 1e-6;
                prop_assert!(
                    retries as f64 <= bound,
                    "{retries} retries exceeds cap {cap} + {ratio} x {successes}"
                );
            }

            // Backoff delays never exceed the configured cap, and retries
            // past `max_attempts` are refused outright.
            #[test]
            fn backoff_delays_respect_cap(
                base_ms in 1u64..200,
                multiplier in 1.0f64..4.0,
                max_ms in 1u64..2_000,
                max_attempts in 0u32..8,
                attempt in 0u32..12,
                seed: u64,
            ) {
                let p = BackoffPolicy {
                    base: SimDuration::from_millis(base_ms),
                    multiplier,
                    max: SimDuration::from_millis(max_ms),
                    max_attempts,
                };
                let mut rng = Prng::seed_from(seed);
                match p.delay(attempt, &mut rng) {
                    Some(d) => {
                        prop_assert!(attempt >= 1 && attempt <= max_attempts);
                        prop_assert!(
                            d <= p.max,
                            "delay {d} above cap {} at attempt {attempt}", p.max
                        );
                    }
                    None => prop_assert!(attempt == 0 || attempt > max_attempts),
                }
            }
        }
    }

    #[test]
    fn steady_state_amplification_matches_ratio() {
        // 1000 requests, 20% failing transiently once: with a 10% budget,
        // retry count stays near 100, not 200.
        let mut b = RetryBudget::new(0.1, 5.0);
        let mut rng = Prng::seed_from(3);
        let mut retries = 0;
        let mut surfaced = 0;
        for _ in 0..1000 {
            if rng.chance(0.2) {
                if b.try_spend() {
                    retries += 1;
                    b.on_success(); // The retry succeeded.
                } else {
                    surfaced += 1;
                }
            } else {
                b.on_success();
            }
        }
        assert!(retries <= 110, "retries {retries}");
        assert!(surfaced > 0, "budget must have throttled some retries");
    }
}
