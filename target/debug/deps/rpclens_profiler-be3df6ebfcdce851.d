/root/repo/target/debug/deps/rpclens_profiler-be3df6ebfcdce851.d: crates/profiler/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/librpclens_profiler-be3df6ebfcdce851.rmeta: crates/profiler/src/lib.rs Cargo.toml

crates/profiler/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
