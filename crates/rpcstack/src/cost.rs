//! Cycle cost models for the RPC stack (the *RPC cycle tax*).
//!
//! Fig. 20 of the paper attributes 7.1% of all fleet CPU cycles to the RPC
//! tax, dominated by compression (3.1%), networking (1.7%), serialization
//! (1.2%), and the RPC library itself (1.1%). The model here charges each
//! frame per-byte and per-packet costs in those categories; the fleet
//! driver feeds the resulting cycle counts both into latency (stack
//! processing time) and into the profiler (cycle accounting).

use rpclens_simcore::time::SimDuration;
use serde::{Deserialize, Serialize};

/// Cycle attribution categories used by the fleet profiler.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum CycleCategory {
    /// Application handler work (not part of the tax).
    Application,
    /// Compression and decompression.
    Compression,
    /// Serialization and deserialization (marshalling).
    Serialization,
    /// Encryption and decryption.
    Encryption,
    /// Kernel and userspace network stack (TCP, packetization, syscalls).
    Networking,
    /// The RPC library: dispatch, method lookup, buffer management.
    RpcLibrary,
    /// Memory allocation attributable to the stack.
    Allocation,
    /// Everything else (bookkeeping, stats, tracing).
    Other,
}

impl CycleCategory {
    /// All categories, tax categories first.
    pub const ALL: [CycleCategory; 8] = [
        CycleCategory::Compression,
        CycleCategory::Serialization,
        CycleCategory::Encryption,
        CycleCategory::Networking,
        CycleCategory::RpcLibrary,
        CycleCategory::Allocation,
        CycleCategory::Other,
        CycleCategory::Application,
    ];

    /// Display label.
    pub fn label(self) -> &'static str {
        match self {
            CycleCategory::Application => "Application",
            CycleCategory::Compression => "Compression",
            CycleCategory::Serialization => "Serialization",
            CycleCategory::Encryption => "Encryption",
            CycleCategory::Networking => "Networking",
            CycleCategory::RpcLibrary => "RPC Library",
            CycleCategory::Allocation => "Allocation",
            CycleCategory::Other => "Other",
        }
    }

    /// Whether the category is part of the RPC cycle tax.
    pub fn is_tax(self) -> bool {
        self != CycleCategory::Application
    }

    /// This category's position in [`CycleCategory::ALL`], the dense
    /// index used by [`CycleCost`] and the profiler's category table.
    pub const fn index(self) -> usize {
        match self {
            CycleCategory::Compression => 0,
            CycleCategory::Serialization => 1,
            CycleCategory::Encryption => 2,
            CycleCategory::Networking => 3,
            CycleCategory::RpcLibrary => 4,
            CycleCategory::Allocation => 5,
            CycleCategory::Other => 6,
            CycleCategory::Application => 7,
        }
    }
}

/// Cycles attributed per category for one operation.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct CycleCost {
    cycles: [u64; 8],
}

impl CycleCost {
    /// An all-zero cost.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds cycles to a category.
    pub fn add(&mut self, c: CycleCategory, cycles: u64) {
        self.cycles[c.index()] += cycles;
    }

    /// Reads a category's cycles.
    pub fn get(&self, c: CycleCategory) -> u64 {
        self.cycles[c.index()]
    }

    /// Total cycles across all categories.
    pub fn total(&self) -> u64 {
        self.cycles.iter().sum()
    }

    /// Total tax cycles (everything but application).
    pub fn tax(&self) -> u64 {
        CycleCategory::ALL
            .iter()
            .filter(|c| c.is_tax())
            .map(|&c| self.get(c))
            .sum()
    }

    /// Merges another cost into this one.
    pub fn merge(&mut self, other: &CycleCost) {
        for (a, b) in self.cycles.iter_mut().zip(other.cycles.iter()) {
            *a += b;
        }
    }

    /// Iterates `(category, cycles)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (CycleCategory, u64)> + '_ {
        CycleCategory::ALL.iter().map(move |&c| (c, self.get(c)))
    }

    /// The raw per-category cycle array, indexed by
    /// [`CycleCategory::index`].
    pub fn as_array(&self) -> &[u64; 8] {
        &self.cycles
    }
}

/// Per-byte and per-operation cycle coefficients.
///
/// Defaults are in line with published measurements of protobuf-style
/// serialization (a few cycles/byte), LZ-class compression (tens of
/// cycles/byte), AES-NI encryption (~1 cycle/byte), and kernel TCP
/// processing (a few thousand cycles per packet).
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct StackCostConfig {
    /// Fixed dispatch cost of the RPC library per call, cycles.
    pub library_base: u64,
    /// Library cost per byte moved (buffer management), cycles.
    pub library_per_byte: f64,
    /// Serialization cost per byte, cycles.
    pub serialize_per_byte: f64,
    /// Fixed serialization cost per message, cycles.
    pub serialize_base: u64,
    /// Compression cost per byte (when enabled), cycles.
    pub compress_per_byte: f64,
    /// Compression ratio achieved (compressed/original size).
    pub compression_ratio: f64,
    /// Encryption cost per byte (when enabled), cycles.
    pub encrypt_per_byte: f64,
    /// Network stack cost per packet, cycles.
    pub net_per_packet: u64,
    /// Network stack fixed cost per message (syscalls, epoll), cycles.
    pub net_base: u64,
    /// Allocation cost per message, cycles.
    pub alloc_base: u64,
    /// MTU used for packetization, bytes.
    pub mtu: u64,
    /// Baseline CPU clock, Hz (for converting cycles to time).
    pub clock_hz: f64,
    /// Fraction of stack cycles on the latency path: production stacks
    /// pipeline chunked compression/serialization with transmission and
    /// spread work across cores, so elapsed stack time is well below
    /// serial cycles divided by clock.
    pub pipeline_factor: f64,
    /// Serialization-rate multiplier for opaque blob payloads (storage
    /// blocks are memcpy'd, not field-by-field encoded).
    pub blob_serialize_factor: f64,
    /// Decompression cost relative to compression (LZ-class decoders are
    /// several times cheaper than encoders).
    pub decompress_factor: f64,
}

/// How a message's payload is handled by the stack.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct MessageClass {
    /// Payload is compressed on the wire.
    pub compressed: bool,
    /// Payload is encrypted on the wire.
    pub encrypted: bool,
    /// Payload is an opaque blob (cheap serialization).
    pub blob: bool,
}

impl MessageClass {
    /// The fleet-default class: compressed + encrypted structured data.
    pub fn structured() -> Self {
        MessageClass {
            compressed: true,
            encrypted: true,
            blob: false,
        }
    }

    /// Pre-compressed storage blocks: encrypted opaque blobs.
    pub fn blob() -> Self {
        MessageClass {
            compressed: false,
            encrypted: true,
            blob: true,
        }
    }
}

impl Default for StackCostConfig {
    fn default() -> Self {
        StackCostConfig {
            library_base: 42_000,
            library_per_byte: 0.3,
            serialize_per_byte: 16.0,
            serialize_base: 1_500,
            compress_per_byte: 52.0,
            compression_ratio: 0.45,
            encrypt_per_byte: 1.2,
            net_per_packet: 9_000,
            net_base: 20_000,
            alloc_base: 3_000,
            mtu: 1460,
            clock_hz: 3.0e9,
            pipeline_factor: 0.35,
            blob_serialize_factor: 0.12,
            decompress_factor: 0.33,
        }
    }
}

/// The stack cost model: maps message sizes to cycles and time.
#[derive(Debug, Clone, Copy)]
pub struct StackCostModel {
    cfg: StackCostConfig,
}

impl StackCostModel {
    /// Creates a model from a configuration.
    pub fn new(cfg: StackCostConfig) -> Self {
        StackCostModel { cfg }
    }

    /// The configuration in use.
    pub fn config(&self) -> &StackCostConfig {
        &self.cfg
    }

    /// The bytes that actually cross the wire for a payload of
    /// `payload_bytes` (after optional compression, plus framing).
    pub fn wire_bytes(&self, payload_bytes: u64, compressed: bool) -> u64 {
        let body = if compressed {
            (payload_bytes as f64 * self.cfg.compression_ratio).ceil() as u64
        } else {
            payload_bytes
        };
        // Framing overhead: header + checksum, ~48 bytes.
        body + 48
    }

    fn ser_rate(&self, class: MessageClass) -> f64 {
        if class.blob {
            self.cfg.serialize_per_byte * self.cfg.blob_serialize_factor
        } else {
            self.cfg.serialize_per_byte
        }
    }

    fn shared_path_cost(&self, payload_bytes: u64, class: MessageClass, cost: &mut CycleCost) {
        let b = payload_bytes as f64;
        let wire = self.wire_bytes(payload_bytes, class.compressed);
        if class.encrypted {
            cost.add(
                CycleCategory::Encryption,
                (self.cfg.encrypt_per_byte * wire as f64) as u64,
            );
        }
        let packets = wire.div_ceil(self.cfg.mtu).max(1);
        cost.add(
            CycleCategory::Networking,
            self.cfg.net_base + packets * self.cfg.net_per_packet,
        );
        cost.add(
            CycleCategory::RpcLibrary,
            self.cfg.library_base + (self.cfg.library_per_byte * b) as u64,
        );
        cost.add(CycleCategory::Allocation, self.cfg.alloc_base);
    }

    /// Cycles the *sender* burns on one message: serialize, compress,
    /// encrypt, transmit.
    pub fn sender_cost(&self, payload_bytes: u64, class: MessageClass) -> CycleCost {
        let mut cost = CycleCost::new();
        let b = payload_bytes as f64;
        cost.add(
            CycleCategory::Serialization,
            self.cfg.serialize_base + (self.ser_rate(class) * b) as u64,
        );
        if class.compressed {
            cost.add(
                CycleCategory::Compression,
                (self.cfg.compress_per_byte * b) as u64,
            );
        }
        self.shared_path_cost(payload_bytes, class, &mut cost);
        cost
    }

    /// Cycles the *receiver* burns on one message: receive, decrypt,
    /// decompress, parse. Parsing is cheaper than encoding and LZ-class
    /// decompression is several times cheaper than compression.
    pub fn receiver_cost(&self, payload_bytes: u64, class: MessageClass) -> CycleCost {
        let mut cost = CycleCost::new();
        let b = payload_bytes as f64;
        cost.add(
            CycleCategory::Serialization,
            self.cfg.serialize_base + (self.ser_rate(class) * 0.6 * b) as u64,
        );
        if class.compressed {
            cost.add(
                CycleCategory::Compression,
                (self.cfg.compress_per_byte * self.cfg.decompress_factor * b) as u64,
            );
        }
        self.shared_path_cost(payload_bytes, class, &mut cost);
        cost
    }

    /// Total cycles both sides spend moving one message (sender plus
    /// receiver).
    pub fn message_cost(&self, payload_bytes: u64, compressed: bool, encrypted: bool) -> CycleCost {
        let class = MessageClass {
            compressed,
            encrypted,
            blob: false,
        };
        let mut cost = self.sender_cost(payload_bytes, class);
        cost.merge(&self.receiver_cost(payload_bytes, class));
        cost
    }

    /// Converts cycles to wall time on a machine running at `slowdown`
    /// times the baseline clock (1.0 = baseline).
    pub fn cycles_to_time(&self, cycles: u64, slowdown: f64) -> SimDuration {
        SimDuration::from_secs_f64(cycles as f64 * slowdown.max(0.0) / self.cfg.clock_hz)
    }

    /// The elapsed *latency* one message direction adds for stack
    /// processing: both endpoints' tax cycles, discounted by the pipeline
    /// factor (chunked processing overlaps with transmission and spans
    /// multiple cores).
    pub fn stack_latency(
        &self,
        payload_bytes: u64,
        class: MessageClass,
        slowdown: f64,
    ) -> SimDuration {
        let cycles = self.sender_cost(payload_bytes, class).tax()
            + self.receiver_cost(payload_bytes, class).tax();
        self.cycles_to_time((cycles as f64 * self.cfg.pipeline_factor) as u64, slowdown)
    }

    /// Converts cycles to nanoseconds at the baseline clock.
    pub fn cycles_to_ns(&self, cycles: u64) -> f64 {
        cycles as f64 / self.cfg.clock_hz * 1e9
    }

    /// Modeled per-component nanoseconds for the *sender* side of one
    /// message, at the baseline clock. This is the Fig. 9/20-style
    /// breakdown the wire validation harness compares measured component
    /// timings against (see `rpclens-wire`).
    pub fn sender_component_ns(&self, payload_bytes: u64, class: MessageClass) -> ComponentNanos {
        ComponentNanos::from_cost(self, &self.sender_cost(payload_bytes, class))
    }

    /// Modeled per-component nanoseconds for the *receiver* side of one
    /// message, at the baseline clock.
    pub fn receiver_component_ns(&self, payload_bytes: u64, class: MessageClass) -> ComponentNanos {
        ComponentNanos::from_cost(self, &self.receiver_cost(payload_bytes, class))
    }

    /// Convenience: the stack processing *time* for one message direction
    /// with structured (non-blob) payloads.
    pub fn processing_time(
        &self,
        payload_bytes: u64,
        compressed: bool,
        encrypted: bool,
        slowdown: f64,
    ) -> SimDuration {
        self.stack_latency(
            payload_bytes,
            MessageClass {
                compressed,
                encrypted,
                blob: false,
            },
            slowdown,
        )
    }
}

/// A modeled per-component time breakdown for one side of one message,
/// in nanoseconds at the baseline clock. Categories follow
/// [`CycleCategory`]; `tax_ns` is the serial sum (no pipeline discount),
/// which is the right comparison target for a single-threaded
/// measurement harness.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ComponentNanos {
    /// Serialization / parsing time.
    pub serialize_ns: f64,
    /// Compression / decompression time.
    pub compress_ns: f64,
    /// Encryption / decryption time.
    pub encrypt_ns: f64,
    /// Network stack time (packetization, syscalls).
    pub network_ns: f64,
    /// RPC library dispatch and buffer management time.
    pub library_ns: f64,
    /// Allocation time.
    pub alloc_ns: f64,
    /// Total tax time (everything but application work), serial.
    pub tax_ns: f64,
}

impl ComponentNanos {
    fn from_cost(model: &StackCostModel, cost: &CycleCost) -> Self {
        ComponentNanos {
            serialize_ns: model.cycles_to_ns(cost.get(CycleCategory::Serialization)),
            compress_ns: model.cycles_to_ns(cost.get(CycleCategory::Compression)),
            encrypt_ns: model.cycles_to_ns(cost.get(CycleCategory::Encryption)),
            network_ns: model.cycles_to_ns(cost.get(CycleCategory::Networking)),
            library_ns: model.cycles_to_ns(cost.get(CycleCategory::RpcLibrary)),
            alloc_ns: model.cycles_to_ns(cost.get(CycleCategory::Allocation)),
            tax_ns: model.cycles_to_ns(cost.tax()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn model() -> StackCostModel {
        StackCostModel::new(StackCostConfig::default())
    }

    #[test]
    fn component_nanos_sum_to_the_tax() {
        let m = model();
        for bytes in [64u64, 1024, 65_536] {
            let n = m.sender_component_ns(bytes, MessageClass::structured());
            let sum = n.serialize_ns
                + n.compress_ns
                + n.encrypt_ns
                + n.network_ns
                + n.library_ns
                + n.alloc_ns;
            assert!(
                (sum - n.tax_ns).abs() < 1.0,
                "{bytes}: {sum} vs {}",
                n.tax_ns
            );
        }
    }

    #[test]
    fn cycles_to_ns_uses_the_baseline_clock() {
        // 3 GHz clock: 3 cycles = 1 ns.
        let m = model();
        assert!((m.cycles_to_ns(3_000) - 1_000.0).abs() < 1e-9);
    }

    #[test]
    fn receiver_components_are_cheaper_than_sender() {
        // Parsing < encoding, decompression < compression.
        let m = model();
        let s = m.sender_component_ns(16 * 1024, MessageClass::structured());
        let r = m.receiver_component_ns(16 * 1024, MessageClass::structured());
        assert!(r.serialize_ns < s.serialize_ns);
        assert!(r.compress_ns < s.compress_ns);
    }

    #[test]
    fn category_index_matches_position_in_all() {
        for (i, &cat) in CycleCategory::ALL.iter().enumerate() {
            assert_eq!(cat.index(), i, "{cat:?}");
        }
    }

    #[test]
    fn cost_grows_with_size() {
        let m = model();
        let small = m.message_cost(64, false, false).total();
        let large = m.message_cost(64 * 1024, false, false).total();
        assert!(large > small * 3, "small {small}, large {large}");
    }

    #[test]
    fn compression_adds_cycles_but_shrinks_wire_bytes() {
        let m = model();
        let plain = m.message_cost(32 * 1024, false, false);
        let compressed = m.message_cost(32 * 1024, true, false);
        assert!(compressed.get(CycleCategory::Compression) > 0);
        assert_eq!(plain.get(CycleCategory::Compression), 0);
        assert!(m.wire_bytes(32 * 1024, true) < m.wire_bytes(32 * 1024, false));
        // Fewer wire bytes means fewer packets, hence less networking.
        assert!(compressed.get(CycleCategory::Networking) < plain.get(CycleCategory::Networking));
    }

    #[test]
    fn encryption_charges_per_wire_byte() {
        let m = model();
        let plain = m.message_cost(4096, false, false);
        let enc = m.message_cost(4096, false, true);
        assert_eq!(plain.get(CycleCategory::Encryption), 0);
        assert!(enc.get(CycleCategory::Encryption) >= 4096);
    }

    #[test]
    fn compression_dominates_tax_for_large_compressed_messages() {
        // The fleet's biggest tax component is compression (Fig. 20b);
        // for a typical compressed KB-scale message it should dominate.
        let m = model();
        let c = m.message_cost(16 * 1024, true, true);
        assert!(c.get(CycleCategory::Compression) > c.get(CycleCategory::Serialization));
        assert!(c.get(CycleCategory::Compression) > c.get(CycleCategory::Networking));
    }

    #[test]
    fn tax_excludes_application() {
        let mut c = CycleCost::new();
        c.add(CycleCategory::Application, 1_000_000);
        c.add(CycleCategory::Serialization, 500);
        assert_eq!(c.tax(), 500);
        assert_eq!(c.total(), 1_000_500);
    }

    #[test]
    fn merge_accumulates() {
        let m = model();
        let a = m.message_cost(100, true, true);
        let b = m.message_cost(200, false, false);
        let mut merged = a;
        merged.merge(&b);
        for (cat, cycles) in merged.iter() {
            assert_eq!(cycles, a.get(cat) + b.get(cat));
        }
    }

    #[test]
    fn cycles_to_time_uses_clock_and_slowdown() {
        let m = model();
        let t = m.cycles_to_time(3_000_000, 1.0);
        assert_eq!(t, SimDuration::from_millis(1));
        let slow = m.cycles_to_time(3_000_000, 2.0);
        assert_eq!(slow, SimDuration::from_millis(2));
    }

    #[test]
    fn processing_time_is_microseconds_for_small_messages() {
        // Small-RPC stack time should be on the order of a few to tens of
        // microseconds — the regime prior RPC-acceleration work targets.
        let m = model();
        let t = m.processing_time(128, false, true, 1.0);
        let us = t.as_micros_f64();
        assert!((1.0..50.0).contains(&us), "stack time {us} us");
    }

    #[test]
    fn packetization_steps_at_mtu_boundaries() {
        let m = model();
        let one = m
            .message_cost(500, false, false)
            .get(CycleCategory::Networking);
        let two = m
            .message_cost(2000, false, false)
            .get(CycleCategory::Networking);
        // message_cost counts both endpoints, so one extra packet costs
        // one per-packet charge on each side.
        assert_eq!(
            two - one,
            2 * StackCostConfig::default().net_per_packet,
            "2000B payload (+48B framing) needs exactly one extra packet per side"
        );
    }

    proptest! {
        #[test]
        fn costs_are_monotone_in_size(a in 0u64..1_000_000, b in 0u64..1_000_000) {
            let m = model();
            let (lo, hi) = if a <= b { (a, b) } else { (b, a) };
            prop_assert!(
                m.message_cost(lo, true, true).total() <= m.message_cost(hi, true, true).total()
            );
            prop_assert!(m.wire_bytes(lo, true) <= m.wire_bytes(hi, true));
        }

        #[test]
        fn wire_bytes_include_framing(bytes in 0u64..10_000_000) {
            let m = model();
            prop_assert!(m.wire_bytes(bytes, false) >= bytes + 48);
        }
    }
}
