//! Export of the catalog as a *servable* method table.
//!
//! The wire validation harness (`rpclens-wire`) stands up a real UDP
//! server for the fleet's methods. It needs, per method, exactly what a
//! server and a load generator need — identity, payload size models, and
//! message class — without dragging in the call-graph, hedging, or
//! deployment machinery. This module flattens a [`Catalog`] into that
//! table, plus a root-weight sampler that reproduces the workload
//! generator's root-RPC mix (same weights as `workload`'s root picker).

use crate::catalog::Catalog;
use rpclens_rpcstack::cost::MessageClass;
use rpclens_simcore::alias::AliasTable;
use rpclens_simcore::dist::LogNormal;
use rpclens_simcore::rng::Prng;
use rpclens_trace::span::MethodId;

/// One servable method: everything a wire server or load generator needs.
#[derive(Debug, Clone)]
pub struct ServableMethod {
    /// Catalog method id (the wire's `method_id`).
    pub method: MethodId,
    /// Qualified `service/method` name.
    pub name: String,
    /// How the stack treats this method's payloads.
    pub class: MessageClass,
    /// Request payload size model (bytes).
    pub req_size: LogNormal,
    /// Response payload size model (bytes).
    pub resp_size: LogNormal,
    /// Weight in the root-RPC mix (0 for non-root methods).
    pub root_weight: f64,
    /// Paper Table 1 category when this method is one of the pinned
    /// archetype rows.
    pub table1_category: Option<&'static str>,
}

/// The catalog flattened for serving, with a weighted root sampler.
#[derive(Debug, Clone)]
pub struct ServableTable {
    methods: Vec<ServableMethod>,
    /// Indices (into `methods`) of root methods, matching `root_alias`.
    roots: Vec<u32>,
    root_alias: AliasTable,
}

impl ServableTable {
    /// Flattens a catalog. Methods come out in catalog (id) order, so the
    /// table is deterministic for a given catalog seed.
    pub fn from_catalog(catalog: &Catalog) -> ServableTable {
        let mut methods = Vec::with_capacity(catalog.num_methods());
        for spec in catalog.methods() {
            let service = catalog.service(spec.service);
            let table1_category = catalog
                .table1()
                .iter()
                .find(|row| row.method == spec.id)
                .map(|row| row.category);
            methods.push(ServableMethod {
                method: spec.id,
                name: format!("{}/{}", service.name, spec.name),
                class: catalog.service_hot(spec.service).class,
                req_size: spec.req_size,
                resp_size: spec.resp_size,
                root_weight: spec.root_weight,
                table1_category,
            });
        }
        let roots: Vec<u32> = methods
            .iter()
            .enumerate()
            .filter(|(_, m)| m.root_weight > 0.0)
            .map(|(i, _)| i as u32)
            .collect();
        let weights: Vec<f64> = roots
            .iter()
            .map(|&i| methods[i as usize].root_weight)
            .collect();
        let root_alias =
            AliasTable::new(&weights).expect("catalog always produces at least one root method");
        ServableTable {
            methods,
            roots,
            root_alias,
        }
    }

    /// All servable methods, in catalog order.
    pub fn methods(&self) -> &[ServableMethod] {
        &self.methods
    }

    /// Looks up a method by wire id.
    pub fn get(&self, method: MethodId) -> Option<&ServableMethod> {
        // Catalog ids are dense and in order; fall back to a scan if a
        // future catalog breaks that.
        let guess = method.0 as usize;
        match self.methods.get(guess) {
            Some(m) if m.method == method => Some(m),
            _ => self.methods.iter().find(|m| m.method == method),
        }
    }

    /// Samples a root method with the workload generator's root-RPC mix.
    pub fn sample_root(&self, rng: &mut Prng) -> &ServableMethod {
        let idx = self.roots[self.root_alias.sample(rng)];
        &self.methods[idx as usize]
    }

    /// Number of servable methods.
    pub fn len(&self) -> usize {
        self.methods.len()
    }

    /// Whether the table is empty (it never is for a generated catalog).
    pub fn is_empty(&self) -> bool {
        self.methods.is_empty()
    }

    /// Number of root methods (positive root weight).
    pub fn num_roots(&self) -> usize {
        self.roots.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::catalog::CatalogConfig;
    use rpclens_netsim::topology::Topology;
    use std::collections::HashMap;

    fn table(seed: u64) -> ServableTable {
        let topology = Topology::default_world(seed);
        let catalog = Catalog::generate(
            &CatalogConfig {
                total_methods: 400,
                seed,
            },
            &topology,
        );
        ServableTable::from_catalog(&catalog)
    }

    #[test]
    fn table_covers_the_whole_catalog() {
        let t = table(7);
        assert_eq!(t.len(), 400);
        assert!(t.num_roots() > 0);
        assert!(t.num_roots() < t.len(), "not every method is a root");
        // Ids are unique and resolvable.
        for m in t.methods() {
            assert_eq!(t.get(m.method).unwrap().name, m.name);
        }
        assert!(t.get(MethodId(1_000_000)).is_none());
    }

    #[test]
    fn table1_rows_are_pinned() {
        let t = table(7);
        let pinned: Vec<_> = t
            .methods()
            .iter()
            .filter(|m| m.table1_category.is_some())
            .collect();
        assert_eq!(pinned.len(), 8, "all eight Table 1 archetypes present");
    }

    #[test]
    fn root_sampling_follows_weights() {
        let t = table(3);
        let mut rng = Prng::seed_from(5);
        let mut counts: HashMap<u32, u32> = HashMap::new();
        for _ in 0..20_000 {
            let m = t.sample_root(&mut rng);
            *counts.entry(m.method.0).or_insert(0) += 1;
            assert!(m.root_weight > 0.0, "sampler only returns roots");
        }
        // The tier-1 hot methods carry 6x weight; the busiest sampled
        // method must out-draw the mean by a wide margin.
        let max = counts.values().copied().max().unwrap();
        let mean = 20_000 / t.num_roots() as u32;
        assert!(max > mean * 3, "max {max}, mean {mean}");
    }

    #[test]
    fn table_is_deterministic_per_seed() {
        let a = table(11);
        let b = table(11);
        assert_eq!(a.len(), b.len());
        for (x, y) in a.methods().iter().zip(b.methods()) {
            assert_eq!(x.method, y.method);
            assert_eq!(x.name, y.name);
            assert_eq!(x.root_weight, y.root_weight);
            assert_eq!(x.req_size.median(), y.req_size.median());
        }
    }
}
