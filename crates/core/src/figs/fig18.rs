//! Fig. 18: 24-hour covariation of tail latency and exogenous variables
//! for Bigtable, in a representative fast and slow cluster.
//!
//! Paper anchor: tail RPC latency fluctuates over the day following the
//! same trend as CPU utilization, memory bandwidth, wakeup rate, and CPI,
//! in both fast and slow clusters.

use crate::check::ExpectationSet;
use crate::render::TextTable;
use rpclens_fleet::driver::FleetRun;
use rpclens_netsim::topology::ClusterId;
use rpclens_simcore::stats::{pearson, percentile, sorted_finite};
use rpclens_simcore::time::SimDuration;
use rpclens_trace::query::MethodQuery;

/// One cluster's hourly series.
#[derive(Debug)]
pub struct ClusterTimeline {
    /// The cluster.
    pub cluster: ClusterId,
    /// Hourly windowed median latency, seconds; NaN for empty hours.
    pub latency: Vec<f64>,
    /// Hourly mean CPU utilization.
    pub cpu_util: Vec<f64>,
    /// Hourly mean memory bandwidth, GB/s.
    pub mem_bw: Vec<f64>,
    /// Hourly mean long-wakeup rate.
    pub long_wakeup: Vec<f64>,
    /// Hourly mean CPI.
    pub cpi: Vec<f64>,
    /// Correlation between hourly latency and hourly CPU utilization.
    pub latency_cpu_correlation: f64,
}

/// The computed figure.
#[derive(Debug)]
pub struct Fig18 {
    /// The fast (lowest overall P95) Bigtable cluster.
    pub fast: ClusterTimeline,
    /// The slow (highest overall P95) Bigtable cluster.
    pub slow: ClusterTimeline,
}

fn timeline(run: &FleetRun, cluster: ClusterId) -> Option<ClusterTimeline> {
    let entry = run
        .catalog
        .table1()
        .iter()
        .find(|e| e.server == "Bigtable")?;
    let svc = run.catalog.method(entry.method).service;
    let site = run.site(svc, cluster)?;
    let query = MethodQuery {
        intra_cluster_only: false,
        min_samples: 1,
        server_cluster: Some(cluster),
        ..MethodQuery::default()
    };
    // Hourly latency samples; the reported point is the median of a
    // 3-hour centred window — the paper plots smoothed tail RTT from
    // vastly larger sample counts; the median carries the same diurnal
    // signal at simulation scale without tail-estimator noise.
    let mut hours: Vec<Vec<f64>> = vec![Vec::new(); 24];
    run.store.for_each_span(entry.method, |trace, span| {
        if !query.accepts(span) {
            return;
        }
        let at = trace.root_start + span.start_offset();
        let hour = ((at.as_secs_f64() / 3600.0) as usize) % 24;
        hours[hour].push(span.total_latency().as_secs_f64());
    });
    let latency: Vec<f64> = (0..24)
        .map(|h| {
            let mut window = Vec::new();
            for d in [23, 0, 1] {
                window.extend_from_slice(&hours[(h + d) % 24]);
            }
            let s = sorted_finite(window);
            percentile(&s, 0.50).unwrap_or(f64::NAN)
        })
        .collect();
    let mut cpu_util = Vec::with_capacity(24);
    let mut mem_bw = Vec::with_capacity(24);
    let mut long_wakeup = Vec::with_capacity(24);
    let mut cpi = Vec::with_capacity(24);
    for h in 0..24u64 {
        let v = site.load.window_average(
            rpclens_simcore::time::SimTime::ZERO + SimDuration::from_hours(h),
            SimDuration::from_hours(1),
        );
        cpu_util.push(v.cpu_util);
        mem_bw.push(v.mem_bw_gbps);
        long_wakeup.push(v.long_wakeup_rate);
        cpi.push(v.cpi);
    }
    // Correlate only hours with data.
    let pairs: Vec<(f64, f64)> = latency
        .iter()
        .zip(cpu_util.iter())
        .filter(|(l, _)| l.is_finite())
        .map(|(&l, &u)| (l, u))
        .collect();
    let xs: Vec<f64> = pairs.iter().map(|p| p.1).collect();
    let ys: Vec<f64> = pairs.iter().map(|p| p.0).collect();
    let latency_cpu_correlation = pearson(&xs, &ys).unwrap_or(0.0);
    Some(ClusterTimeline {
        cluster,
        latency,
        cpu_util,
        mem_bw,
        long_wakeup,
        cpi,
        latency_cpu_correlation,
    })
}

/// Computes the figure: picks the fastest and slowest Bigtable clusters
/// with enough samples and builds their timelines.
pub fn compute(run: &FleetRun) -> Option<Fig18> {
    let entry = run
        .catalog
        .table1()
        .iter()
        .find(|e| e.server == "Bigtable")?;
    let svc = run.catalog.method(entry.method).service;
    // Rank clusters by overall P95.
    let mut per_cluster: std::collections::HashMap<ClusterId, Vec<f64>> =
        std::collections::HashMap::new();
    run.store.for_each_span(entry.method, |_, span| {
        if span.is_ok() {
            per_cluster
                .entry(span.server_cluster)
                .or_default()
                .push(span.total_latency().as_secs_f64());
        }
    });
    let mut ranked: Vec<(ClusterId, f64)> = per_cluster
        .into_iter()
        .filter(|(_, v)| v.len() >= 300)
        .map(|(c, v)| {
            let s = sorted_finite(v);
            // Rank by median: more stable than the P95 at modest sample
            // counts, and the paper's fast/slow pair differs in medians
            // too.
            (c, percentile(&s, 0.5).expect("non-empty"))
        })
        .collect();
    ranked.sort_by(|a, b| a.1.partial_cmp(&b.1).expect("finite"));
    if ranked.len() < 2 {
        return None;
    }
    let fast = timeline(run, ranked.first().expect("non-empty").0)?;
    let slow = timeline(run, ranked.last().expect("non-empty").0)?;
    // The slow cluster must also be deployed (site lookup succeeded).
    let _ = svc;
    Some(Fig18 { fast, slow })
}

/// Renders the two timelines.
pub fn render(fig: &Fig18) -> String {
    let mut out = String::new();
    for (name, tl) in [("fast", &fig.fast), ("slow", &fig.slow)] {
        let mut t = TextTable::new(&["hour", "P95 latency (ms)", "cpu util", "mem BW", "cpi"]);
        for h in (0..24).step_by(3) {
            t.row(vec![
                h.to_string(),
                format!("{:.2}", tl.latency[h] * 1e3),
                format!("{:.2}", tl.cpu_util[h]),
                format!("{:.1}", tl.mem_bw[h]),
                format!("{:.2}", tl.cpi[h]),
            ]);
        }
        out.push_str(&format!(
            "Fig. 18 — {name} cluster {} (latency-cpu correlation {:+.2})\n{}",
            tl.cluster.0,
            tl.latency_cpu_correlation,
            t.render()
        ));
    }
    out
}

/// Paper-vs-measured checks.
pub fn checks(fig: &Fig18) -> ExpectationSet {
    let mut s = ExpectationSet::new();
    s.add(
        "fig18.correlation",
        "latency tracks CPU utilization over the day",
        (fig.fast.latency_cpu_correlation + fig.slow.latency_cpu_correlation) / 2.0,
        0.05,
        1.0,
    );
    // The slow cluster is actually slower on average.
    let mean = |v: &[f64]| {
        let ok: Vec<f64> = v.iter().copied().filter(|x| x.is_finite()).collect();
        ok.iter().sum::<f64>() / ok.len().max(1) as f64
    };
    s.add(
        "fig18.slow_is_slower",
        "the slow cluster's tail sits above the fast cluster's",
        mean(&fig.slow.latency) / mean(&fig.fast.latency).max(1e-12),
        1.05,
        f64::INFINITY,
    );
    // Exogenous state explains it: the slow cluster runs hotter or with
    // worse CPI (machine-generation differences show up as CPI).
    let util_ratio = mean(&fig.slow.cpu_util) / mean(&fig.fast.cpu_util).max(1e-12);
    let cpi_ratio = mean(&fig.slow.cpi) / mean(&fig.fast.cpi).max(1e-12);
    s.add(
        "fig18.slow_runs_hotter",
        "the slow cluster runs hotter or at worse CPI than the fast one",
        util_ratio.max(cpi_ratio),
        0.95,
        f64::INFINITY,
    );
    s
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::common::testrun::shared;

    #[test]
    fn checks_pass_on_test_run() {
        let fig = compute(shared()).expect("enough Bigtable clusters");
        let c = checks(&fig);
        assert!(c.all_passed(), "{c}");
    }

    #[test]
    fn timelines_cover_the_day() {
        let fig = compute(shared()).expect("enough Bigtable clusters");
        for tl in [&fig.fast, &fig.slow] {
            assert_eq!(tl.latency.len(), 24);
            assert_eq!(tl.cpu_util.len(), 24);
            // Most hours have data.
            let with_data = tl.latency.iter().filter(|l| l.is_finite()).count();
            assert!(with_data >= 18, "{with_data} hours with data");
            // Utilization is diurnal: some swing across the day.
            let min = tl.cpu_util.iter().cloned().fold(f64::MAX, f64::min);
            let max = tl.cpu_util.iter().cloned().fold(f64::MIN, f64::max);
            assert!(max - min > 0.05, "flat utilization {min}..{max}");
        }
    }
}
