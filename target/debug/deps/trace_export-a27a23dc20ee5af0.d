/root/repo/target/debug/deps/trace_export-a27a23dc20ee5af0.d: tests/trace_export.rs

/root/repo/target/debug/deps/trace_export-a27a23dc20ee5af0: tests/trace_export.rs

tests/trace_export.rs:
