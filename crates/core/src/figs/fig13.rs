//! Fig. 13: per-method queueing latency.
//!
//! Paper anchors: half of methods have median queueing under 360 µs and
//! P99 under 102 ms; the worst decile sees 1.1 ms medians and 611 ms
//! P99s — tail queueing is orders of magnitude worse than the median,
//! implicating scheduling and load balancing.

use crate::check::ExpectationSet;
use crate::common::{component_sum_secs, paper_query, MethodHeatmap};
use crate::render::{fmt_secs, sketch_cdf, TextTable};
use rpclens_fleet::driver::FleetRun;
use rpclens_rpcstack::component::LatencyComponent;

/// The four queueing components.
pub const QUEUES: [LatencyComponent; 4] = [
    LatencyComponent::ClientSendQueue,
    LatencyComponent::ServerRecvQueue,
    LatencyComponent::ServerSendQueue,
    LatencyComponent::ClientRecvQueue,
];

/// The computed figure.
#[derive(Debug)]
pub struct Fig13 {
    /// Per-method queueing-latency quantiles, sorted by median.
    pub heatmap: MethodHeatmap,
}

/// Computes the figure.
pub fn compute(run: &FleetRun) -> Fig13 {
    let query = paper_query();
    Fig13 {
        heatmap: MethodHeatmap::build(run, &query, |_, s| component_sum_secs(s, &QUEUES)),
    }
}

/// Renders the figure.
pub fn render(fig: &Fig13) -> String {
    let hm = &fig.heatmap;
    let mut t = TextTable::new(&["method#", "P50", "P90", "P99"]);
    let step = (hm.len() / 15).max(1);
    for (i, row) in hm.rows.iter().enumerate().step_by(step) {
        t.row(vec![
            i.to_string(),
            fmt_secs(row.summary.p50),
            fmt_secs(row.summary.p90),
            fmt_secs(row.summary.p99),
        ]);
    }
    format!(
        "Fig. 13 — Per-method queueing latency ({} methods)\n{}\nCDF of per-method P99 queueing:\n{}",
        hm.len(),
        t.render(),
        sketch_cdf(&hm.across_methods(0.99), fmt_secs),
    )
}

/// Paper-vs-measured checks.
pub fn checks(fig: &Fig13) -> ExpectationSet {
    let hm = &fig.heatmap;
    let mut s = ExpectationSet::new();
    s.add(
        "fig13.median_queueing",
        "half of methods have median queueing under 360 us",
        hm.quantile_of_quantiles(0.5, 0.5).unwrap_or(f64::NAN),
        0.0,
        1.5e-3,
    );
    s.add(
        "fig13.p99_queueing_half",
        "half of methods have P99 queueing under 102 ms",
        hm.quantile_of_quantiles(0.99, 0.5).unwrap_or(f64::NAN),
        0.0,
        0.102,
    );
    // Heavy tail: P99 is >= 20x the median for most methods.
    let heavy = hm
        .rows
        .iter()
        .filter(|r| r.summary.p99 > r.summary.p50.max(1e-9) * 20.0)
        .count() as f64
        / hm.rows.len().max(1) as f64;
    s.add(
        "fig13.tail_vs_median",
        "tail queueing is much worse than median queueing",
        heavy,
        0.25,
        1.0,
    );
    // The worst methods see multi-ms medians.
    s.add(
        "fig13.worst_decile_median",
        "the worst decile's median queueing is ~1.1 ms",
        hm.quantile_of_quantiles(0.5, 0.9).unwrap_or(f64::NAN),
        0.1e-3,
        20e-3,
    );
    s
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::common::testrun::shared;

    #[test]
    fn checks_pass_on_test_run() {
        let fig = compute(shared());
        let c = checks(&fig);
        assert!(c.all_passed(), "{c}");
    }

    #[test]
    fn hot_services_queue_more() {
        let run = shared();
        let fig = compute(run);
        // SSD cache runs with a utilization bias; its queueing medians
        // should exceed KV-Store's (reserved cores, modest load).
        let median_of = |name: &str| -> f64 {
            let svc = run.catalog.service_by_name(name).unwrap().id;
            let rows: Vec<f64> = fig
                .heatmap
                .rows
                .iter()
                .filter(|r| run.catalog.method(r.method).service == svc)
                .map(|r| r.summary.p50)
                .collect();
            rows.iter().sum::<f64>() / rows.len().max(1) as f64
        };
        assert!(median_of("SSDCache") > median_of("KVStore"));
    }
}
