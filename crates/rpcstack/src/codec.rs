//! The binary wire format for RPC frames.
//!
//! A small, self-describing framing: fixed magic/version, LEB128 varints
//! for variable-size fields, and a CRC32 trailer over the entire frame.
//! The simulator mostly reasons about *sizes*, but the codec is real — the
//! fleet driver round-trips every traced request header through it, and
//! the serialization microbenchmarks (Fig. 20's serialization tax) measure
//! this code.

use bytes::{Buf, BufMut, Bytes, BytesMut};
use serde::{Deserialize, Serialize};

/// Frame magic: "RL".
pub const MAGIC: u16 = 0x524C;
/// Wire format version implemented by this module.
pub const VERSION: u8 = 1;

/// Frame flag bits.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct Flags(pub u8);

impl Flags {
    /// Payload is compressed.
    pub const COMPRESSED: u8 = 0b0000_0001;
    /// Payload is encrypted.
    pub const ENCRYPTED: u8 = 0b0000_0010;
    /// Frame is a response (vs. a request).
    pub const RESPONSE: u8 = 0b0000_0100;
    /// Frame carries an error status instead of a payload result.
    pub const ERROR: u8 = 0b0000_1000;
    /// Request payload begins with a versioned trace-context extension
    /// block (distributed tracing; see `rpclens-rpcwire`'s envelope).
    pub const TRACED: u8 = 0b0001_0000;

    /// Tests a flag bit.
    pub fn contains(self, bit: u8) -> bool {
        self.0 & bit != 0
    }

    /// Sets a flag bit, returning the new flags.
    pub fn with(self, bit: u8) -> Flags {
        Flags(self.0 | bit)
    }
}

/// The header carried by every frame.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct RpcHeader {
    /// Which method is being invoked.
    pub method_id: u64,
    /// Dapper-style trace id shared by the whole RPC tree.
    pub trace_id: u64,
    /// This call's span id.
    pub span_id: u64,
    /// The parent span id (0 for a root call).
    pub parent_span_id: u64,
    /// Absolute deadline in nanoseconds since epoch (0 = none).
    pub deadline_ns: u64,
    /// Frame flags.
    pub flags: Flags,
}

/// A complete frame: header plus payload.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RpcFrame {
    /// Frame header.
    pub header: RpcHeader,
    /// Payload bytes (already serialized application data).
    pub payload: Bytes,
}

/// Errors that can occur while decoding a frame.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DecodeError {
    /// Input ended before the frame was complete.
    Truncated,
    /// The magic bytes did not match.
    BadMagic,
    /// The version is not supported.
    BadVersion(u8),
    /// A varint used more than 10 bytes.
    VarintOverflow,
    /// The CRC32 trailer did not match the frame contents.
    BadChecksum {
        /// Checksum carried in the frame.
        expected: u32,
        /// Checksum computed over the received bytes.
        actual: u32,
    },
    /// The declared payload length exceeds the remaining input.
    BadLength,
}

impl std::fmt::Display for DecodeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DecodeError::Truncated => write!(f, "frame truncated"),
            DecodeError::BadMagic => write!(f, "bad magic"),
            DecodeError::BadVersion(v) => write!(f, "unsupported version {v}"),
            DecodeError::VarintOverflow => write!(f, "varint overflow"),
            DecodeError::BadChecksum { expected, actual } => {
                write!(
                    f,
                    "checksum mismatch: frame {expected:#x}, computed {actual:#x}"
                )
            }
            DecodeError::BadLength => write!(f, "payload length exceeds input"),
        }
    }
}

impl std::error::Error for DecodeError {}

/// Writes a LEB128 varint.
pub fn put_varint(buf: &mut BytesMut, mut v: u64) {
    loop {
        let byte = (v & 0x7F) as u8;
        v >>= 7;
        if v == 0 {
            buf.put_u8(byte);
            return;
        }
        buf.put_u8(byte | 0x80);
    }
}

/// Reads a LEB128 varint.
pub fn get_varint(buf: &mut &[u8]) -> Result<u64, DecodeError> {
    let mut out = 0u64;
    for i in 0..10 {
        if buf.is_empty() {
            return Err(DecodeError::Truncated);
        }
        let byte = buf.get_u8();
        if i == 9 && byte > 1 {
            return Err(DecodeError::VarintOverflow);
        }
        out |= ((byte & 0x7F) as u64) << (7 * i);
        if byte & 0x80 == 0 {
            return Ok(out);
        }
    }
    Err(DecodeError::VarintOverflow)
}

/// Encodes a frame to bytes.
pub fn encode_frame(frame: &RpcFrame) -> Bytes {
    let mut buf = BytesMut::with_capacity(48 + frame.payload.len());
    buf.put_u16(MAGIC);
    buf.put_u8(VERSION);
    buf.put_u8(frame.header.flags.0);
    put_varint(&mut buf, frame.header.method_id);
    buf.put_u64(frame.header.trace_id);
    buf.put_u64(frame.header.span_id);
    buf.put_u64(frame.header.parent_span_id);
    put_varint(&mut buf, frame.header.deadline_ns);
    put_varint(&mut buf, frame.payload.len() as u64);
    buf.put_slice(&frame.payload);
    let crc = crc32(&buf);
    buf.put_u32(crc);
    buf.freeze()
}

/// Decodes a frame from bytes, verifying the checksum.
pub fn decode_frame(mut input: &[u8]) -> Result<RpcFrame, DecodeError> {
    let full = input;
    if input.len() < 4 {
        return Err(DecodeError::Truncated);
    }
    if input.get_u16() != MAGIC {
        return Err(DecodeError::BadMagic);
    }
    let version = input.get_u8();
    if version != VERSION {
        return Err(DecodeError::BadVersion(version));
    }
    let flags = Flags(input.get_u8());
    let method_id = get_varint(&mut input)?;
    if input.len() < 24 {
        return Err(DecodeError::Truncated);
    }
    let trace_id = input.get_u64();
    let span_id = input.get_u64();
    let parent_span_id = input.get_u64();
    let deadline_ns = get_varint(&mut input)?;
    let payload_len = get_varint(&mut input)? as usize;
    if input.len() < payload_len + 4 {
        return Err(DecodeError::BadLength);
    }
    let payload = Bytes::copy_from_slice(&input[..payload_len]);
    input.advance(payload_len);
    let expected = input.get_u32();
    let actual = crc32(&full[..full.len() - input.len() - 4]);
    if expected != actual {
        return Err(DecodeError::BadChecksum { expected, actual });
    }
    Ok(RpcFrame {
        header: RpcHeader {
            method_id,
            trace_id,
            span_id,
            parent_span_id,
            deadline_ns,
            flags,
        },
        payload,
    })
}

/// CRC32 (IEEE 802.3 polynomial), table-driven.
pub fn crc32(data: &[u8]) -> u32 {
    static TABLE: std::sync::OnceLock<[u32; 256]> = std::sync::OnceLock::new();
    let table = TABLE.get_or_init(|| {
        let mut t = [0u32; 256];
        for (i, entry) in t.iter_mut().enumerate() {
            let mut c = i as u32;
            for _ in 0..8 {
                c = if c & 1 != 0 {
                    0xEDB8_8320 ^ (c >> 1)
                } else {
                    c >> 1
                };
            }
            *entry = c;
        }
        t
    });
    let mut crc = 0xFFFF_FFFFu32;
    for &b in data {
        crc = table[((crc ^ b as u32) & 0xFF) as usize] ^ (crc >> 8);
    }
    crc ^ 0xFFFF_FFFF
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn frame(payload: &[u8]) -> RpcFrame {
        RpcFrame {
            header: RpcHeader {
                method_id: 1234,
                trace_id: 0xDEAD_BEEF_CAFE_F00D,
                span_id: 7,
                parent_span_id: 3,
                deadline_ns: 5_000_000_000,
                flags: Flags::default()
                    .with(Flags::COMPRESSED)
                    .with(Flags::RESPONSE),
            },
            payload: Bytes::copy_from_slice(payload),
        }
    }

    #[test]
    fn crc32_matches_known_vectors() {
        // Standard test vector: CRC32("123456789") = 0xCBF43926.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
        assert_eq!(
            crc32(b"The quick brown fox jumps over the lazy dog"),
            0x414F_A339
        );
    }

    #[test]
    fn roundtrip_preserves_everything() {
        let f = frame(b"hello rpc world");
        let encoded = encode_frame(&f);
        let decoded = decode_frame(&encoded).unwrap();
        assert_eq!(decoded, f);
    }

    #[test]
    fn empty_payload_roundtrips() {
        let f = frame(b"");
        assert_eq!(decode_frame(&encode_frame(&f)).unwrap(), f);
    }

    #[test]
    fn varint_roundtrips_boundaries() {
        for v in [0u64, 1, 127, 128, 16_383, 16_384, u32::MAX as u64, u64::MAX] {
            let mut buf = BytesMut::new();
            put_varint(&mut buf, v);
            let mut slice = &buf[..];
            assert_eq!(get_varint(&mut slice).unwrap(), v);
            assert!(slice.is_empty());
        }
    }

    #[test]
    fn varint_overflow_is_rejected() {
        let bad = [0xFFu8; 11];
        let mut slice = &bad[..];
        assert_eq!(get_varint(&mut slice), Err(DecodeError::VarintOverflow));
    }

    #[test]
    fn truncated_frames_are_rejected_at_every_length() {
        let encoded = encode_frame(&frame(b"some payload data"));
        for cut in 0..encoded.len() {
            let result = decode_frame(&encoded[..cut]);
            assert!(result.is_err(), "decode succeeded at cut {cut}");
        }
    }

    #[test]
    fn corrupted_bytes_fail_checksum() {
        let encoded = encode_frame(&frame(b"payload-to-corrupt"));
        let mut corrupted = encoded.to_vec();
        // Flip a payload byte (past the 4-byte preamble, before the CRC).
        let idx = corrupted.len() - 10;
        corrupted[idx] ^= 0x01;
        match decode_frame(&corrupted) {
            Err(DecodeError::BadChecksum { .. }) | Err(DecodeError::BadLength) => {}
            other => panic!("expected checksum/length failure, got {other:?}"),
        }
    }

    #[test]
    fn bad_magic_and_version_are_rejected() {
        let encoded = encode_frame(&frame(b"x"));
        let mut bad_magic = encoded.to_vec();
        bad_magic[0] = 0x00;
        assert_eq!(decode_frame(&bad_magic), Err(DecodeError::BadMagic));
        let mut bad_version = encoded.to_vec();
        bad_version[2] = 99;
        assert_eq!(decode_frame(&bad_version), Err(DecodeError::BadVersion(99)));
    }

    #[test]
    fn flags_set_and_test() {
        let f = Flags::default().with(Flags::ENCRYPTED).with(Flags::ERROR);
        assert!(f.contains(Flags::ENCRYPTED));
        assert!(f.contains(Flags::ERROR));
        assert!(!f.contains(Flags::COMPRESSED));
        assert!(!f.contains(Flags::RESPONSE));
    }

    #[test]
    fn header_overhead_is_small() {
        // The paper's smallest RPC is a single cache line (64 B); the
        // framing must not dwarf it.
        let f = frame(b"");
        assert!(encode_frame(&f).len() <= 48, "header too large");
    }

    proptest! {
        #[test]
        fn roundtrip_arbitrary_frames(
            method_id: u64,
            trace_id: u64,
            span_id: u64,
            parent_span_id: u64,
            deadline_ns: u64,
            flag_bits in 0u8..16,
            payload in proptest::collection::vec(any::<u8>(), 0..2048),
        ) {
            let f = RpcFrame {
                header: RpcHeader {
                    method_id,
                    trace_id,
                    span_id,
                    parent_span_id,
                    deadline_ns,
                    flags: Flags(flag_bits),
                },
                payload: Bytes::from(payload),
            };
            let decoded = decode_frame(&encode_frame(&f)).unwrap();
            prop_assert_eq!(decoded, f);
        }

        #[test]
        fn varint_roundtrips_any_value(v: u64) {
            let mut buf = BytesMut::new();
            put_varint(&mut buf, v);
            prop_assert!(buf.len() <= 10);
            let mut slice = &buf[..];
            prop_assert_eq!(get_varint(&mut slice).unwrap(), v);
        }

        #[test]
        fn crc_detects_single_bit_flips(
            payload in proptest::collection::vec(any::<u8>(), 1..256),
            bit in 0usize..8,
        ) {
            let f = frame(&payload);
            let encoded = encode_frame(&f);
            let mut corrupted = encoded.to_vec();
            // Flip one bit somewhere in the payload region.
            let idx = 40.min(corrupted.len() - 5);
            corrupted[idx] ^= 1 << bit;
            prop_assert!(decode_frame(&corrupted).is_err());
        }
    }
}
