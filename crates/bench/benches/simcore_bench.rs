//! Microbenchmarks for the simulation core: these paths run hundreds of
//! millions of times per fleet day, so their constant factors set the
//! simulator's wall-clock budget.

use criterion::{black_box, criterion_group, criterion_main, Criterion, Throughput};
use rpclens_simcore::prelude::*;

fn bench_event_queue(c: &mut Criterion) {
    let mut g = c.benchmark_group("event_queue");
    g.throughput(Throughput::Elements(1));
    g.bench_function("schedule_pop", |b| {
        let mut q = EventQueue::with_capacity(1024);
        let mut t = 0u64;
        b.iter(|| {
            t += 17;
            q.schedule(SimTime::from_nanos(t), t);
            if q.len() > 512 {
                black_box(q.pop());
            }
        });
    });
    g.bench_function("interleaved_1k", |b| {
        b.iter(|| {
            let mut q = EventQueue::with_capacity(1024);
            for i in 0..1000u64 {
                q.schedule(SimTime::from_nanos(i * 37 % 5000), i);
            }
            let mut sum = 0u64;
            while let Some((_, e)) = q.pop() {
                sum += e;
            }
            black_box(sum)
        });
    });
    g.finish();
}

fn bench_histogram(c: &mut Criterion) {
    let mut g = c.benchmark_group("log_histogram");
    g.throughput(Throughput::Elements(1));
    g.bench_function("record", |b| {
        let mut h = LogHistogram::new();
        let mut v = 1u64;
        b.iter(|| {
            v = v.wrapping_mul(6364136223846793005).wrapping_add(1);
            h.record(black_box(v >> 32));
        });
    });
    g.bench_function("quantile", |b| {
        let mut h = LogHistogram::new();
        for i in 0..100_000u64 {
            h.record(i * 13 % 1_000_000);
        }
        b.iter(|| black_box(h.quantile(0.99)));
    });
    g.finish();
}

fn bench_rng_and_dists(c: &mut Criterion) {
    let mut g = c.benchmark_group("sampling");
    g.throughput(Throughput::Elements(1));
    let mut rng = Prng::seed_from(1);
    g.bench_function("prng_u64", |b| b.iter(|| black_box(rng.next_u64())));
    g.bench_function("gaussian", |b| b.iter(|| black_box(rng.next_gaussian())));
    let ln = LogNormal::from_median_sigma(1e-3, 1.2).expect("valid");
    g.bench_function("lognormal", |b| b.iter(|| black_box(ln.sample(&mut rng))));
    let bp = BoundedPareto::new(1.0, 1e6, 1.1).expect("valid");
    g.bench_function("bounded_pareto", |b| {
        b.iter(|| black_box(bp.sample(&mut rng)))
    });
    let weights: Vec<f64> = (1..=10_000).map(|i| 1.0 / i as f64).collect();
    let alias = AliasTable::new(&weights).expect("valid");
    g.bench_function("alias_10k", |b| {
        b.iter(|| black_box(alias.sample(&mut rng)))
    });
    let zipf = Zipf::new(10_000, 1.2).expect("valid");
    g.bench_function("zipf_10k", |b| b.iter(|| black_box(zipf.sample(&mut rng))));
    g.finish();
}

fn bench_stats(c: &mut Criterion) {
    let mut g = c.benchmark_group("stats");
    let mut rng = Prng::seed_from(2);
    let mut values: Vec<f64> = (0..10_000).map(|_| rng.next_f64()).collect();
    values.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
    g.bench_function("percentile_10k", |b| {
        b.iter(|| black_box(percentile(&values, 0.99)))
    });
    g.bench_function("quantile_summary_10k", |b| {
        b.iter(|| {
            black_box(rpclens_simcore::stats::QuantileSummary::from_samples(
                values.clone(),
            ))
        })
    });
    g.finish();
}

criterion_group!(
    benches,
    bench_event_queue,
    bench_histogram,
    bench_rng_and_dists,
    bench_stats
);
criterion_main!(benches);
