//! Pluggable datagram transports.
//!
//! The runtime's client and server are generic over [`Transport`]: an
//! unreliable, unordered, message-boundary-preserving datagram endpoint —
//! exactly UDP's contract. Three implementations:
//!
//! - [`UdpTransport`]: a std `UdpSocket`, the real loopback wire;
//! - [`MemLink`]: an in-memory endpoint pair with no timing and no
//!   threads, so invocation-semantics tests are fully deterministic;
//! - [`crate::faulty::FaultyTransport`]: a seeded fault-injecting wrapper
//!   around either.

use std::collections::VecDeque;
use std::io;
use std::net::{SocketAddr, ToSocketAddrs, UdpSocket};
use std::sync::{Arc, Mutex};
use std::time::Duration;

/// Largest datagram the runtime will send: comfortably under the 64 KiB
/// UDP limit, leaving room for framing and envelope overhead.
pub const MAX_DATAGRAM: usize = 60 * 1024;

/// An unreliable datagram endpoint.
///
/// `recv` returns `Ok(None)` when no datagram arrived within `timeout` —
/// the client treats that as a retransmission-timer tick. A zero timeout
/// means "drain what is already pending, never block", which is how the
/// poll-driven server and the deterministic tests use it.
pub trait Transport {
    /// Sends one datagram.
    fn send(&mut self, datagram: &[u8]) -> io::Result<()>;

    /// Receives one datagram into `buf`, waiting at most `timeout`.
    fn recv(&mut self, buf: &mut [u8], timeout: Duration) -> io::Result<Option<usize>>;
}

/// A connected UDP socket as a [`Transport`].
///
/// The socket is *connected* to its peer, so `send`/`recv` are
/// point-to-point and datagrams from other sources are filtered by the
/// kernel. The server side uses one `UdpTransport` per... no — the server
/// uses [`UdpServerSocket`], which tracks per-datagram peer addresses.
#[derive(Debug)]
pub struct UdpTransport {
    socket: UdpSocket,
    current_timeout: Option<Duration>,
}

impl UdpTransport {
    /// Binds an ephemeral local socket and connects it to `peer`.
    pub fn connect<A: ToSocketAddrs>(peer: A) -> io::Result<UdpTransport> {
        let socket = UdpSocket::bind("127.0.0.1:0")?;
        socket.connect(peer)?;
        Ok(UdpTransport {
            socket,
            current_timeout: None,
        })
    }

    /// The local address the socket is bound to.
    pub fn local_addr(&self) -> io::Result<SocketAddr> {
        self.socket.local_addr()
    }

    fn set_timeout(&mut self, timeout: Duration) -> io::Result<()> {
        // Zero read-timeouts are invalid on std sockets; use a short
        // floor so "drain pending" still returns promptly.
        let effective = if timeout.is_zero() {
            Duration::from_millis(1)
        } else {
            timeout
        };
        if self.current_timeout != Some(effective) {
            self.socket.set_read_timeout(Some(effective))?;
            self.current_timeout = Some(effective);
        }
        Ok(())
    }
}

impl Transport for UdpTransport {
    fn send(&mut self, datagram: &[u8]) -> io::Result<()> {
        self.socket.send(datagram).map(|_| ())
    }

    fn recv(&mut self, buf: &mut [u8], timeout: Duration) -> io::Result<Option<usize>> {
        self.set_timeout(timeout)?;
        match self.socket.recv(buf) {
            Ok(n) => Ok(Some(n)),
            Err(e)
                if e.kind() == io::ErrorKind::WouldBlock || e.kind() == io::ErrorKind::TimedOut =>
            {
                Ok(None)
            }
            Err(e) => Err(e),
        }
    }
}

/// The server side of a datagram transport: receives carry the sender's
/// identity so replies can be addressed back to it.
///
/// Every point-to-point [`Transport`] is trivially a `ServerTransport`
/// with `Peer = ()` (there is only one possible sender), which is how the
/// deterministic in-memory tests drive the server. The real UDP server
/// socket implements it with `Peer = SocketAddr` and serves any number of
/// clients.
pub trait ServerTransport {
    /// The sender identity attached to received datagrams.
    type Peer: Copy + Eq + std::fmt::Debug;

    /// Receives one datagram and its origin, waiting at most `timeout`.
    fn recv_from(
        &mut self,
        buf: &mut [u8],
        timeout: Duration,
    ) -> io::Result<Option<(usize, Self::Peer)>>;

    /// Sends a datagram to `peer`.
    fn send_to(&mut self, datagram: &[u8], peer: Self::Peer) -> io::Result<()>;
}

impl<T: Transport> ServerTransport for T {
    type Peer = ();

    fn recv_from(&mut self, buf: &mut [u8], timeout: Duration) -> io::Result<Option<(usize, ())>> {
        Ok(self.recv(buf, timeout)?.map(|n| (n, ())))
    }

    fn send_to(&mut self, datagram: &[u8], _peer: ()) -> io::Result<()> {
        self.send(datagram)
    }
}

/// An unconnected UDP socket as a [`ServerTransport`]: remembers where
/// each datagram came from and replies to that address.
#[derive(Debug)]
pub struct UdpServerSocket {
    socket: UdpSocket,
    current_timeout: Option<Duration>,
}

impl UdpServerSocket {
    /// Binds the server socket.
    pub fn bind<A: ToSocketAddrs>(addr: A) -> io::Result<UdpServerSocket> {
        Ok(UdpServerSocket {
            socket: UdpSocket::bind(addr)?,
            current_timeout: None,
        })
    }

    /// The bound address (port is ephemeral when bound to `:0`).
    pub fn local_addr(&self) -> io::Result<SocketAddr> {
        self.socket.local_addr()
    }
}

impl ServerTransport for UdpServerSocket {
    type Peer = SocketAddr;

    fn recv_from(
        &mut self,
        buf: &mut [u8],
        timeout: Duration,
    ) -> io::Result<Option<(usize, SocketAddr)>> {
        let effective = if timeout.is_zero() {
            Duration::from_millis(1)
        } else {
            timeout
        };
        if self.current_timeout != Some(effective) {
            self.socket.set_read_timeout(Some(effective))?;
            self.current_timeout = Some(effective);
        }
        match self.socket.recv_from(buf) {
            Ok((n, from)) => Ok(Some((n, from))),
            Err(e)
                if e.kind() == io::ErrorKind::WouldBlock || e.kind() == io::ErrorKind::TimedOut =>
            {
                Ok(None)
            }
            Err(e) => Err(e),
        }
    }

    fn send_to(&mut self, datagram: &[u8], peer: SocketAddr) -> io::Result<()> {
        self.socket.send_to(datagram, peer).map(|_| ())
    }
}

/// One direction of an in-memory link: a shared FIFO of datagrams.
type Queue = Arc<Mutex<VecDeque<Vec<u8>>>>;

/// An in-memory datagram endpoint, created in pairs by [`MemLink::pair`].
///
/// There is no timing: `recv` with any timeout returns immediately —
/// either the next pending datagram or `None`. Deterministic tests treat
/// each `None` as one retransmission-timer expiry, so a whole
/// client/server exchange (drops, duplicates, retries and all) runs in a
/// single thread with a fully reproducible schedule.
#[derive(Debug)]
pub struct MemLink {
    inbox: Queue,
    outbox: Queue,
}

impl MemLink {
    /// Creates a connected endpoint pair `(a, b)`: what `a` sends, `b`
    /// receives, and vice versa.
    pub fn pair() -> (MemLink, MemLink) {
        let ab: Queue = Arc::new(Mutex::new(VecDeque::new()));
        let ba: Queue = Arc::new(Mutex::new(VecDeque::new()));
        (
            MemLink {
                inbox: ba.clone(),
                outbox: ab.clone(),
            },
            MemLink {
                inbox: ab,
                outbox: ba,
            },
        )
    }

    /// Number of datagrams waiting to be received by this endpoint.
    pub fn pending(&self) -> usize {
        self.inbox.lock().unwrap().len()
    }
}

impl Transport for MemLink {
    fn send(&mut self, datagram: &[u8]) -> io::Result<()> {
        self.outbox.lock().unwrap().push_back(datagram.to_vec());
        Ok(())
    }

    fn recv(&mut self, buf: &mut [u8], _timeout: Duration) -> io::Result<Option<usize>> {
        match self.inbox.lock().unwrap().pop_front() {
            Some(datagram) => {
                let n = datagram.len().min(buf.len());
                buf[..n].copy_from_slice(&datagram[..n]);
                Ok(Some(n))
            }
            None => Ok(None),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mem_link_delivers_in_order() {
        let (mut a, mut b) = MemLink::pair();
        a.send(b"one").unwrap();
        a.send(b"two").unwrap();
        let mut buf = [0u8; 16];
        assert_eq!(b.recv(&mut buf, Duration::ZERO).unwrap(), Some(3));
        assert_eq!(&buf[..3], b"one");
        assert_eq!(b.recv(&mut buf, Duration::ZERO).unwrap(), Some(3));
        assert_eq!(&buf[..3], b"two");
        assert_eq!(b.recv(&mut buf, Duration::ZERO).unwrap(), None);
    }

    #[test]
    fn mem_link_is_bidirectional() {
        let (mut a, mut b) = MemLink::pair();
        a.send(b"ping").unwrap();
        let mut buf = [0u8; 16];
        let n = b.recv(&mut buf, Duration::ZERO).unwrap().unwrap();
        b.send(&buf[..n]).unwrap();
        let n = a.recv(&mut buf, Duration::ZERO).unwrap().unwrap();
        assert_eq!(&buf[..n], b"ping");
    }

    #[test]
    fn udp_loopback_roundtrips_if_available() {
        // Exercises the real socket path; skips (rather than flakes) in
        // sandboxes that forbid binding loopback sockets.
        let Ok(mut server) = UdpServerSocket::bind("127.0.0.1:0") else {
            eprintln!("skipping: cannot bind loopback UDP");
            return;
        };
        let addr = server.local_addr().unwrap();
        let mut client = UdpTransport::connect(addr).unwrap();
        client.send(b"hello wire").unwrap();
        let mut buf = [0u8; 64];
        let (n, from) = server
            .recv_from(&mut buf, Duration::from_secs(5))
            .unwrap()
            .expect("datagram arrives on loopback");
        server.send_to(&buf[..n], from).unwrap();
        let n = client
            .recv(&mut buf, Duration::from_secs(5))
            .unwrap()
            .expect("reply arrives");
        assert_eq!(&buf[..n], b"hello wire");
    }
}
