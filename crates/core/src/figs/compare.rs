//! §2.4's cross-study comparison of call-tree shapes.
//!
//! Regenerates the tree-shape populations of the Alibaba, Meta, and
//! DeathStarBench studies from their published parameters and compares
//! them against this fleet's measured shapes. Paper anchors: every
//! population is wider than deep; this fleet's descendant tails are the
//! largest; DSB's graphs are far smaller than production systems'.

use crate::check::ExpectationSet;
use crate::render::TextTable;
use rpclens_fleet::baselines::{BaselineGenerator, BaselineKind, ShapeSummary, TreeShape};
use rpclens_fleet::driver::FleetRun;
use rpclens_trace::tree::TreeStats;

/// One population's shape summary.
#[derive(Debug)]
pub struct PopulationRow {
    /// Population label.
    pub label: String,
    /// Shape summary.
    pub summary: ShapeSummary,
}

/// The computed comparison.
#[derive(Debug)]
pub struct Compare {
    /// This fleet first, then the three baselines.
    pub rows: Vec<PopulationRow>,
}

/// Computes the comparison (baselines sample 20,000 trees each).
pub fn compute(run: &FleetRun) -> Compare {
    // Our fleet's root-tree shapes from the trace store.
    let ours: Vec<TreeShape> = run
        .store
        .traces()
        .iter()
        .map(|t| {
            let stats = TreeStats::compute(t);
            TreeShape {
                descendants: stats.descendants[0],
                depth: stats.max_depth,
            }
        })
        .collect();
    let mut rows = vec![PopulationRow {
        label: "This fleet (measured)".to_string(),
        summary: ShapeSummary::from_shapes(&ours),
    }];
    for kind in BaselineKind::ALL {
        let mut g = BaselineGenerator::new(kind, run.config.scale.seed);
        let shapes = g.sample_n(20_000);
        rows.push(PopulationRow {
            label: kind.label().to_string(),
            summary: ShapeSummary::from_shapes(&shapes),
        });
    }
    Compare { rows }
}

/// Renders the comparison table.
pub fn render(c: &Compare) -> String {
    let mut t = TextTable::new(&[
        "population",
        "median size",
        "P99 size",
        "median depth",
        "P99 depth",
        "max depth",
    ]);
    for r in &c.rows {
        t.row(vec![
            r.label.clone(),
            format!("{:.0}", r.summary.median_size),
            format!("{:.0}", r.summary.p99_size),
            format!("{:.0}", r.summary.median_depth),
            format!("{:.0}", r.summary.p99_depth),
            r.summary.max_depth.to_string(),
        ]);
    }
    format!("§2.4 — Call-tree shapes across studies\n{}", t.render())
}

/// Paper-vs-measured checks.
pub fn checks(c: &Compare) -> ExpectationSet {
    let mut s = ExpectationSet::new();
    let get = |label_frag: &str| {
        c.rows
            .iter()
            .find(|r| r.label.contains(label_frag))
            .map(|r| &r.summary)
            .expect("population exists")
    };
    let ours = get("This fleet");
    let dsb = get("DeathStarBench");
    let alibaba = get("Alibaba");
    // Everyone is wider than deep.
    for r in &c.rows {
        s.add(
            &format!(
                "compare.{}_wider",
                r.label
                    .split_whitespace()
                    .next()
                    .unwrap_or("x")
                    .to_lowercase()
            ),
            "call graphs are wider than they are deep",
            r.summary.p99_size / r.summary.p99_depth.max(1.0),
            1.5,
            f64::INFINITY,
        );
    }
    // Our descendant tail is the biggest (the paper's key difference vs
    // Alibaba).
    s.add(
        "compare.our_tail_largest",
        "this fleet's P99 tree size exceeds the baselines'",
        ours.p99_size / alibaba.p99_size.max(1.0),
        0.8,
        f64::INFINITY,
    );
    // DSB graphs are far smaller.
    s.add(
        "compare.dsb_small",
        "DeathStarBench graphs are much smaller than production trees",
        ours.p99_size / dsb.p99_size.max(1.0),
        2.0,
        f64::INFINITY,
    );
    // Depths are similar across studies (single digits to low tens).
    s.add(
        "compare.depth_similar",
        "call depths are similar across studies",
        ours.p99_depth,
        3.0,
        20.0,
    );
    s
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::common::testrun::shared;

    #[test]
    fn checks_pass_on_test_run() {
        let c = compute(shared());
        let checks = checks(&c);
        assert!(checks.all_passed(), "{checks}");
    }

    #[test]
    fn four_populations() {
        let c = compute(shared());
        assert_eq!(c.rows.len(), 4);
        assert!(render(&c).contains("Alibaba"));
    }
}
