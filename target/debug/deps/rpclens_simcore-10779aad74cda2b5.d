/root/repo/target/debug/deps/rpclens_simcore-10779aad74cda2b5.d: crates/simcore/src/lib.rs crates/simcore/src/alias.rs crates/simcore/src/dist.rs crates/simcore/src/event.rs crates/simcore/src/hist.rs crates/simcore/src/rng.rs crates/simcore/src/stats.rs crates/simcore/src/streaming.rs crates/simcore/src/time.rs crates/simcore/src/zipf.rs

/root/repo/target/debug/deps/librpclens_simcore-10779aad74cda2b5.rlib: crates/simcore/src/lib.rs crates/simcore/src/alias.rs crates/simcore/src/dist.rs crates/simcore/src/event.rs crates/simcore/src/hist.rs crates/simcore/src/rng.rs crates/simcore/src/stats.rs crates/simcore/src/streaming.rs crates/simcore/src/time.rs crates/simcore/src/zipf.rs

/root/repo/target/debug/deps/librpclens_simcore-10779aad74cda2b5.rmeta: crates/simcore/src/lib.rs crates/simcore/src/alias.rs crates/simcore/src/dist.rs crates/simcore/src/event.rs crates/simcore/src/hist.rs crates/simcore/src/rng.rs crates/simcore/src/stats.rs crates/simcore/src/streaming.rs crates/simcore/src/time.rs crates/simcore/src/zipf.rs

crates/simcore/src/lib.rs:
crates/simcore/src/alias.rs:
crates/simcore/src/dist.rs:
crates/simcore/src/event.rs:
crates/simcore/src/hist.rs:
crates/simcore/src/rng.rs:
crates/simcore/src/stats.rs:
crates/simcore/src/streaming.rs:
crates/simcore/src/time.rs:
crates/simcore/src/zipf.rs:
