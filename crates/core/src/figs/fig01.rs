//! Fig. 1: normalized RPS per CPU cycle over 700 days.
//!
//! Paper anchors: ~30% annual growth of the RPS/CPU ratio, 64% total over
//! the measurement window, with weekly seasonality visible.

use crate::check::ExpectationSet;
use crate::render::TextTable;
use rpclens_fleet::growth::{GrowthConfig, GrowthModel};
use rpclens_simcore::time::SimDuration;
use rpclens_tsdb::metric::Labels;
use rpclens_tsdb::query::QueryEngine;
use rpclens_tsdb::store::TimeSeriesDb;

/// The computed figure.
#[derive(Debug)]
pub struct Fig01 {
    /// `(day, normalized RPS/CPU)` series.
    pub series: Vec<(u32, f64)>,
    /// Total growth over the window (final / initial).
    pub total_growth: f64,
    /// Implied annual growth rate.
    pub annual_rate: f64,
}

/// Computes the figure by generating the growth counters, storing them in
/// a TSDB, and deriving the ratio from TSDB rate queries — the same
/// pipeline a production monitoring system would run.
pub fn compute(config: &GrowthConfig) -> Fig01 {
    let model = GrowthModel::new(config.clone());
    let mut db = TimeSeriesDb::new(SimDuration::from_hours(24));
    model.populate(&mut db);
    let rpc = db
        .series("fleet/rpc/total", &Labels::empty())
        .expect("populated");
    let cycles = db
        .series("fleet/cpu/cycles", &Labels::empty())
        .expect("populated");
    let rpc_rates = QueryEngine::rate(rpc);
    let cycle_rates = QueryEngine::rate(cycles);
    let mut series = Vec::with_capacity(rpc_rates.len());
    let mut base = None;
    for (i, ((_, r), (_, c))) in rpc_rates.iter().zip(cycle_rates.iter()).enumerate() {
        if *c <= 0.0 {
            continue;
        }
        let ratio = r / c;
        let b = *base.get_or_insert(ratio);
        series.push((i as u32 + 1, ratio / b));
    }
    let total_growth = series.last().map(|&(_, v)| v).unwrap_or(f64::NAN);
    let days = series.last().map(|&(d, _)| d).unwrap_or(1) as f64;
    let annual_rate = total_growth.powf(365.25 / days) - 1.0;
    Fig01 {
        series,
        total_growth,
        annual_rate,
    }
}

/// Renders the figure as a monthly-sampled table.
pub fn render(fig: &Fig01) -> String {
    let mut t = TextTable::new(&["day", "normalized RPS/CPU"]);
    for (d, v) in fig.series.iter().step_by(30) {
        t.row(vec![d.to_string(), format!("{v:.3}")]);
    }
    if let Some(last) = fig.series.last() {
        t.row(vec![last.0.to_string(), format!("{:.3}", last.1)]);
    }
    format!(
        "Fig. 1 — Normalized RPS per CPU cycle over {} days\n{}\ntotal growth {:.2}x, annual rate {:.1}%\n",
        fig.series.len(),
        t.render(),
        fig.total_growth,
        fig.annual_rate * 100.0
    )
}

/// Paper-vs-measured checks.
pub fn checks(fig: &Fig01) -> ExpectationSet {
    let mut s = ExpectationSet::new();
    s.add(
        "fig1.total_growth",
        "64% total increase over the window",
        fig.total_growth,
        1.45,
        1.85,
    );
    s.add(
        "fig1.annual_rate",
        "~30% annual growth of RPS/CPU",
        fig.annual_rate,
        0.22,
        0.38,
    );
    // Weekly seasonality: consecutive-day ratio must wiggle.
    let wiggle = fig
        .series
        .windows(2)
        .filter(|w| (w[1].1 - w[0].1).abs() / w[0].1 > 0.005)
        .count() as f64
        / fig.series.len().max(1) as f64;
    s.add(
        "fig1.seasonality",
        "weekly seasonality visible in the daily series",
        wiggle,
        0.2,
        1.0,
    );
    s
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn checks_pass_at_default_config() {
        let fig = compute(&GrowthConfig::default());
        let checks = checks(&fig);
        assert!(checks.all_passed(), "{checks}");
    }

    #[test]
    fn series_is_normalized_to_day_one() {
        let fig = compute(&GrowthConfig::default());
        assert!((fig.series[0].1 - 1.0).abs() < 1e-9);
        assert_eq!(fig.series.len(), 699); // Rates start at day 2.
    }

    #[test]
    fn render_mentions_growth() {
        let fig = compute(&GrowthConfig::default());
        let text = render(&fig);
        assert!(text.contains("Fig. 1"));
        assert!(text.contains("annual rate"));
    }
}
