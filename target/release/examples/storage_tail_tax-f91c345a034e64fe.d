/root/repo/target/release/examples/storage_tail_tax-f91c345a034e64fe.d: examples/storage_tail_tax.rs

/root/repo/target/release/examples/storage_tail_tax-f91c345a034e64fe: examples/storage_tail_tax.rs

examples/storage_tail_tax.rs:
