//! The headline reproduction test: at the calibrated default scale,
//! every figure's paper-vs-measured shape checks must pass.
//!
//! This is the same gate `repro all --scale default` enforces; here it
//! runs as part of `cargo test --workspace` so a regression in any model
//! parameter is caught immediately.

use rpclens::core::check::ExpectationSet;
use rpclens::core::figs as f;
use rpclens::prelude::*;
use std::sync::OnceLock;

fn shared() -> &'static FleetRun {
    static RUN: OnceLock<FleetRun> = OnceLock::new();
    // The calibrated default scale, reduced in roots to keep debug-mode
    // test time reasonable while staying above every per-figure sample
    // gate.
    RUN.get_or_init(|| {
        run_fleet(FleetConfig::at_scale(SimScale {
            roots: 60_000,
            ..SimScale::default_scale()
        }))
    })
}

fn assert_all(checks: ExpectationSet) {
    assert!(checks.all_passed(), "{checks}");
}

#[test]
fn fig01_growth() {
    let fig = f::fig01::compute(&GrowthConfig::default());
    assert_all(f::fig01::checks(&fig));
}

#[test]
fn fig02_latency() {
    assert_all(f::fig02::checks(&f::fig02::compute(shared())));
}

#[test]
fn fig03_popularity() {
    assert_all(f::fig03::checks(&f::fig03::compute(shared())));
}

#[test]
fn fig04_descendants() {
    assert_all(f::fig04::checks(&f::fig04::compute(shared())));
}

#[test]
fn fig05_ancestors() {
    assert_all(f::fig05::checks(&f::fig05::compute(shared())));
}

#[test]
fn fig06_sizes() {
    assert_all(f::fig06::checks(&f::fig06::compute(shared())));
}

#[test]
fn fig07_ratio() {
    assert_all(f::fig07::checks(&f::fig07::compute(shared())));
}

#[test]
fn fig08_services() {
    assert_all(f::fig08::checks(&f::fig08::compute(shared())));
}

#[test]
fn fig10_tax() {
    assert_all(f::fig10::checks(&f::fig10::compute(shared())));
}

#[test]
fn fig11_tax_ratio() {
    assert_all(f::fig11::checks(&f::fig11::compute(shared())));
}

#[test]
fn fig12_network_stack() {
    assert_all(f::fig12::checks(&f::fig12::compute(shared())));
}

#[test]
fn fig13_queueing() {
    assert_all(f::fig13::checks(&f::fig13::compute(shared())));
}

#[test]
fn fig14_breakdowns() {
    assert_all(f::fig14::checks(&f::fig14::compute(shared())));
}

#[test]
fn fig15_whatif() {
    assert_all(f::fig15::checks(&f::fig15::compute(shared())));
}

#[test]
fn fig16_clusters() {
    assert_all(f::fig16::checks(&f::fig16::compute(shared())));
}

#[test]
fn fig17_exogenous() {
    assert_all(f::fig17::checks(&f::fig17::compute(shared())));
}

#[test]
fn fig18_timeline() {
    let fig = f::fig18::compute(shared()).expect("enough Bigtable clusters");
    assert_all(f::fig18::checks(&fig));
}

#[test]
fn fig19_crosscluster() {
    assert_all(f::fig19::checks(&f::fig19::compute(shared())));
}

#[test]
fn fig20_cycle_tax() {
    assert_all(f::fig20::checks(&f::fig20::compute(shared())));
}

#[test]
fn fig21_cpu() {
    assert_all(f::fig21::checks(&f::fig21::compute(shared())));
}

#[test]
fn fig22_load_balance() {
    assert_all(f::fig22::checks(&f::fig22::compute(shared())));
}

#[test]
fn fig23_errors() {
    assert_all(f::fig23::checks(&f::fig23::compute(shared())));
}

#[test]
fn table1_services() {
    assert_all(f::table1::checks(shared()));
}

#[test]
fn table2_variables() {
    assert_all(f::table2::checks(&f::table2::compute(shared())));
}

#[test]
fn section_2_4_comparison() {
    assert_all(f::compare::checks(&f::compare::compute(shared())));
}
