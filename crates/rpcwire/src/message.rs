//! The request/response envelope carried inside codec frames.
//!
//! Every datagram is one [`rpclens_rpcstack::codec`] frame (magic,
//! version, varint header fields, CRC32 trailer). This module defines how
//! the runtime uses the frame header for request/reply matching and what
//! the frame payload carries:
//!
//! - `header.method_id` — the catalog method being invoked;
//! - `header.trace_id`  — the client's identity (its matching namespace);
//! - `header.span_id`   — the per-client request id; a retransmission
//!   reuses it byte-for-byte, which is what lets the server's dedup cache
//!   recognise duplicates;
//! - `flags.RESPONSE`   — direction; `flags.COMPRESSED` — the body went
//!   through [`crate::compress`]; `flags.ERROR` — the response carries a
//!   [`Status`] other than [`Status::Ok`].
//!
//! Request payload: `varint(raw_len) ++ body`. Response payload:
//! `varint(status) ++ varint(decode_ns) ++ varint(exec_ns) ++
//! varint(raw_len) ++ body`. `raw_len` is the *uncompressed* body length
//! so the receiver can size (and verify) decompression; the server's
//! `decode_ns`/`exec_ns` ride back to the client so the wire validation
//! can subtract server-side work from measured round trips.

use crate::compress;
use bytes::{Bytes, BytesMut};
use rpclens_rpcstack::codec::{
    self, get_varint, put_varint, DecodeError, Flags, RpcFrame, RpcHeader,
};

/// Response status carried in the response envelope.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Status {
    /// The call executed and the body holds the result.
    Ok,
    /// The server has no handler for the requested method.
    NoSuchMethod,
    /// The request envelope or body failed to decode.
    BadRequest,
    /// The server is shedding load and refused to execute.
    Rejected,
}

impl Status {
    /// Wire code for the status.
    pub fn code(self) -> u64 {
        match self {
            Status::Ok => 0,
            Status::NoSuchMethod => 1,
            Status::BadRequest => 2,
            Status::Rejected => 3,
        }
    }

    /// Parses a wire code.
    pub fn from_code(code: u64) -> Option<Status> {
        match code {
            0 => Some(Status::Ok),
            1 => Some(Status::NoSuchMethod),
            2 => Some(Status::BadRequest),
            3 => Some(Status::Rejected),
            _ => None,
        }
    }

    /// Display label.
    pub fn label(self) -> &'static str {
        match self {
            Status::Ok => "ok",
            Status::NoSuchMethod => "no-such-method",
            Status::BadRequest => "bad-request",
            Status::Rejected => "rejected",
        }
    }
}

/// A decoded request.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Request {
    /// Catalog method id.
    pub method: u64,
    /// The calling client's identity.
    pub client_id: u64,
    /// Per-client request id (retransmissions reuse it).
    pub request_id: u64,
    /// Decompressed body bytes.
    pub body: Bytes,
    /// Whether the body crossed the wire compressed.
    pub was_compressed: bool,
    /// Body length as it crossed the wire (compressed size when
    /// `was_compressed`).
    pub wire_body_len: usize,
}

/// A decoded response.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Response {
    /// Catalog method id (echoed from the request).
    pub method: u64,
    /// The client the response addresses.
    pub client_id: u64,
    /// The request this responds to.
    pub request_id: u64,
    /// Outcome.
    pub status: Status,
    /// Nanoseconds the server spent decoding the request.
    pub server_decode_ns: u64,
    /// Nanoseconds the server spent executing the handler.
    pub server_exec_ns: u64,
    /// Decompressed body bytes.
    pub body: Bytes,
    /// Whether the body crossed the wire compressed.
    pub was_compressed: bool,
    /// Body length as it crossed the wire.
    pub wire_body_len: usize,
}

/// Errors surfaced by the wire runtime.
#[derive(Debug)]
pub enum WireError {
    /// Frame-level decode failure (bad magic/CRC/truncation).
    Frame(DecodeError),
    /// Envelope-level decode failure.
    Envelope(&'static str),
    /// Body decompression failure.
    Compress(compress::CompressError),
    /// Transport I/O failure.
    Io(std::io::Error),
    /// The call exhausted its retransmission budget.
    TimedOut {
        /// Attempts made (including the first transmission).
        attempts: u32,
    },
    /// The server answered with a non-[`Status::Ok`] status.
    Server(Status),
}

impl std::fmt::Display for WireError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WireError::Frame(e) => write!(f, "frame decode: {e}"),
            WireError::Envelope(what) => write!(f, "envelope decode: {what}"),
            WireError::Compress(e) => write!(f, "decompression: {e}"),
            WireError::Io(e) => write!(f, "transport: {e}"),
            WireError::TimedOut { attempts } => {
                write!(f, "no reply after {attempts} attempts")
            }
            WireError::Server(s) => write!(f, "server status {}", s.label()),
        }
    }
}

impl std::error::Error for WireError {}

impl From<std::io::Error> for WireError {
    fn from(e: std::io::Error) -> Self {
        WireError::Io(e)
    }
}

/// A body prepared for the wire: possibly compressed, with the metadata
/// the envelope needs. Produced by [`encode_body`].
#[derive(Debug, Clone)]
pub struct WireBody {
    /// The bytes that will cross the wire.
    pub bytes: Vec<u8>,
    /// The uncompressed length (`raw_len` in the envelope).
    pub raw_len: usize,
    /// Whether `bytes` is compressed.
    pub compressed: bool,
}

/// Runs the body through compression if requested, keeping the original
/// whenever compression does not actually shrink it.
pub fn encode_body(body: &[u8], try_compress: bool) -> WireBody {
    if try_compress {
        let packed = compress::compress(body);
        if packed.len() < body.len() {
            return WireBody {
                bytes: packed,
                raw_len: body.len(),
                compressed: true,
            };
        }
    }
    WireBody {
        bytes: body.to_vec(),
        raw_len: body.len(),
        compressed: false,
    }
}

/// Serializes a request envelope (everything but the frame) into payload
/// bytes.
pub fn serialize_request(body: &WireBody) -> Bytes {
    let mut payload = BytesMut::with_capacity(body.bytes.len() + 4);
    put_varint(&mut payload, body.raw_len as u64);
    payload.extend_from_slice(&body.bytes);
    payload.freeze()
}

/// Frames a serialized request payload into the final datagram bytes.
pub fn frame_request(
    method: u64,
    client_id: u64,
    request_id: u64,
    payload: Bytes,
    compressed: bool,
) -> Bytes {
    let mut flags = Flags::default();
    if compressed {
        flags = flags.with(Flags::COMPRESSED);
    }
    codec::encode_frame(&RpcFrame {
        header: RpcHeader {
            method_id: method,
            trace_id: client_id,
            span_id: request_id,
            parent_span_id: 0,
            deadline_ns: 0,
            flags,
        },
        payload,
    })
}

/// Convenience: encode + serialize + frame a request in one call.
pub fn encode_request(
    method: u64,
    client_id: u64,
    request_id: u64,
    body: &[u8],
    try_compress: bool,
) -> Bytes {
    let wire_body = encode_body(body, try_compress);
    let payload = serialize_request(&wire_body);
    frame_request(method, client_id, request_id, payload, wire_body.compressed)
}

/// Encodes a response datagram.
#[allow(clippy::too_many_arguments)]
pub fn encode_response(
    method: u64,
    client_id: u64,
    request_id: u64,
    status: Status,
    server_decode_ns: u64,
    server_exec_ns: u64,
    body: &[u8],
    try_compress: bool,
) -> Bytes {
    let wire_body = encode_body(body, try_compress);
    let mut payload = BytesMut::with_capacity(wire_body.bytes.len() + 16);
    put_varint(&mut payload, status.code());
    put_varint(&mut payload, server_decode_ns);
    put_varint(&mut payload, server_exec_ns);
    put_varint(&mut payload, wire_body.raw_len as u64);
    payload.extend_from_slice(&wire_body.bytes);
    let payload = payload.freeze();
    let mut flags = Flags::default().with(Flags::RESPONSE);
    if wire_body.compressed {
        flags = flags.with(Flags::COMPRESSED);
    }
    if status != Status::Ok {
        flags = flags.with(Flags::ERROR);
    }
    codec::encode_frame(&RpcFrame {
        header: RpcHeader {
            method_id: method,
            trace_id: client_id,
            span_id: request_id,
            parent_span_id: 0,
            deadline_ns: 0,
            flags,
        },
        payload,
    })
}

fn decode_wire_body(rest: &[u8], raw_len: u64, compressed: bool) -> Result<Bytes, WireError> {
    if raw_len > 64 * 1024 * 1024 {
        return Err(WireError::Envelope("declared body length implausible"));
    }
    if compressed {
        let raw = compress::decompress(rest, raw_len as usize).map_err(WireError::Compress)?;
        Ok(Bytes::from(raw))
    } else {
        if rest.len() != raw_len as usize {
            return Err(WireError::Envelope("body length mismatch"));
        }
        Ok(Bytes::copy_from_slice(rest))
    }
}

/// The direction a decoded datagram turned out to be.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Message {
    /// A request datagram.
    Request(Request),
    /// A response datagram.
    Response(Response),
}

/// Decodes one datagram: frame (CRC verified) then envelope then body.
pub fn decode(datagram: &[u8]) -> Result<Message, WireError> {
    let frame = codec::decode_frame(datagram).map_err(WireError::Frame)?;
    let compressed = frame.header.flags.contains(Flags::COMPRESSED);
    let mut cursor: &[u8] = &frame.payload;
    if frame.header.flags.contains(Flags::RESPONSE) {
        let status_code = get_varint(&mut cursor).map_err(WireError::Frame)?;
        let status =
            Status::from_code(status_code).ok_or(WireError::Envelope("unknown status code"))?;
        let server_decode_ns = get_varint(&mut cursor).map_err(WireError::Frame)?;
        let server_exec_ns = get_varint(&mut cursor).map_err(WireError::Frame)?;
        let raw_len = get_varint(&mut cursor).map_err(WireError::Frame)?;
        let wire_body_len = cursor.len();
        let body = decode_wire_body(cursor, raw_len, compressed)?;
        Ok(Message::Response(Response {
            method: frame.header.method_id,
            client_id: frame.header.trace_id,
            request_id: frame.header.span_id,
            status,
            server_decode_ns,
            server_exec_ns,
            body,
            was_compressed: compressed,
            wire_body_len,
        }))
    } else {
        let raw_len = get_varint(&mut cursor).map_err(WireError::Frame)?;
        let wire_body_len = cursor.len();
        let body = decode_wire_body(cursor, raw_len, compressed)?;
        Ok(Message::Request(Request {
            method: frame.header.method_id,
            client_id: frame.header.trace_id,
            request_id: frame.header.span_id,
            body,
            was_compressed: compressed,
            wire_body_len,
        }))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn request_roundtrips() {
        let body = b"a small structured payload, repeated: payload payload payload";
        let datagram = encode_request(42, 7, 1001, body, true);
        match decode(&datagram).unwrap() {
            Message::Request(req) => {
                assert_eq!(req.method, 42);
                assert_eq!(req.client_id, 7);
                assert_eq!(req.request_id, 1001);
                assert_eq!(&req.body[..], &body[..]);
                assert!(req.was_compressed, "repetitive body should compress");
                assert!(req.wire_body_len < body.len());
            }
            other => panic!("expected request, got {other:?}"),
        }
    }

    #[test]
    fn incompressible_body_is_sent_raw() {
        // High-entropy body: compression cannot shrink it, so the wire
        // carries the original and the COMPRESSED flag stays clear.
        let body: Vec<u8> = (0..=255u8).collect();
        let datagram = encode_request(1, 1, 1, &body, true);
        match decode(&datagram).unwrap() {
            Message::Request(req) => {
                assert!(!req.was_compressed);
                assert_eq!(req.wire_body_len, body.len());
                assert_eq!(&req.body[..], &body[..]);
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn response_roundtrips_with_timings_and_status() {
        let body = vec![9u8; 500];
        let datagram = encode_response(3, 8, 55, Status::Ok, 1234, 56789, &body, true);
        match decode(&datagram).unwrap() {
            Message::Response(resp) => {
                assert_eq!(resp.status, Status::Ok);
                assert_eq!(resp.server_decode_ns, 1234);
                assert_eq!(resp.server_exec_ns, 56789);
                assert_eq!(resp.request_id, 55);
                assert_eq!(&resp.body[..], &body[..]);
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn error_statuses_set_the_error_flag() {
        let datagram = encode_response(3, 8, 55, Status::NoSuchMethod, 0, 0, b"", false);
        let frame = rpclens_rpcstack::codec::decode_frame(&datagram).unwrap();
        assert!(frame.header.flags.contains(Flags::ERROR));
        match decode(&datagram).unwrap() {
            Message::Response(resp) => assert_eq!(resp.status, Status::NoSuchMethod),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn truncation_is_rejected_at_every_cut() {
        let datagram = encode_request(9, 9, 9, b"body bytes body bytes body bytes", true);
        for cut in 0..datagram.len() {
            assert!(decode(&datagram[..cut]).is_err(), "cut {cut} decoded");
        }
    }

    #[test]
    fn corruption_is_rejected_everywhere() {
        let datagram = encode_request(9, 9, 9, &vec![3u8; 300], true);
        for idx in 0..datagram.len() {
            let mut corrupted = datagram.to_vec();
            corrupted[idx] ^= 0x40;
            assert!(decode(&corrupted).is_err(), "flip at {idx} decoded");
        }
    }

    #[test]
    fn status_codes_roundtrip() {
        for s in [
            Status::Ok,
            Status::NoSuchMethod,
            Status::BadRequest,
            Status::Rejected,
        ] {
            assert_eq!(Status::from_code(s.code()), Some(s));
        }
        assert_eq!(Status::from_code(99), None);
    }

    proptest! {
        #[test]
        fn arbitrary_requests_roundtrip(
            method: u64,
            client_id: u64,
            request_id: u64,
            compress_it: bool,
            body in proptest::collection::vec(any::<u8>(), 0..2048),
        ) {
            let datagram = encode_request(method, client_id, request_id, &body, compress_it);
            match decode(&datagram).unwrap() {
                Message::Request(req) => {
                    prop_assert_eq!(req.method, method);
                    prop_assert_eq!(req.client_id, client_id);
                    prop_assert_eq!(req.request_id, request_id);
                    prop_assert_eq!(&req.body[..], &body[..]);
                }
                other => prop_assert!(false, "expected request, got {:?}", other),
            }
        }

        #[test]
        fn arbitrary_responses_roundtrip(
            method: u64,
            request_id: u64,
            decode_ns: u64,
            exec_ns: u64,
            status_code in 0u64..4,
            compress_it: bool,
            body in proptest::collection::vec(any::<u8>(), 0..2048),
        ) {
            let status = Status::from_code(status_code).unwrap();
            let datagram = encode_response(
                method, 77, request_id, status, decode_ns, exec_ns, &body, compress_it,
            );
            match decode(&datagram).unwrap() {
                Message::Response(resp) => {
                    prop_assert_eq!(resp.method, method);
                    prop_assert_eq!(resp.request_id, request_id);
                    prop_assert_eq!(resp.status, status);
                    prop_assert_eq!(resp.server_decode_ns, decode_ns);
                    prop_assert_eq!(resp.server_exec_ns, exec_ns);
                    prop_assert_eq!(&resp.body[..], &body[..]);
                }
                other => prop_assert!(false, "expected response, got {:?}", other),
            }
        }

        #[test]
        fn single_byte_corruption_never_decodes(
            body in proptest::collection::vec(any::<u8>(), 1..512),
            idx: usize,
            bit in 0u8..8,
        ) {
            let datagram = encode_request(5, 6, 7, &body, true);
            let mut corrupted = datagram.to_vec();
            let at = idx % corrupted.len();
            corrupted[at] ^= 1 << bit;
            prop_assert!(decode(&corrupted).is_err());
        }
    }
}
