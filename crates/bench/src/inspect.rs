//! Drill-down queries over exported trace stores and run manifests.
//!
//! The `rpclens-inspect` binary is a thin argument parser around this
//! module; the rendering functions live here so they are unit-testable
//! without spawning a process. All three query types operate on
//! artifacts a previous `repro` run persisted (`--export-store`,
//! `--telemetry`), so drilling down never re-runs the simulation.

use rpclens_fleet::control::ControlPlane;
use rpclens_fleet::faults::FaultScenario;
use rpclens_netsim::topology::Topology;
use rpclens_obs::RunManifest;
use rpclens_rpcstack::component::LatencyComponent;
use rpclens_simcore::time::SimDuration;
use rpclens_trace::collector::TraceStore;
use rpclens_trace::critical_path::CriticalPath;
use rpclens_trace::query::MethodQuery;

/// Resolves a latency component from a CLI spelling.
///
/// Matching is case- and punctuation-insensitive against both the enum
/// variant name and the display label, so `server-application`,
/// `ServerApplication`, and `"Server Application"` all resolve.
pub fn component_by_name(name: &str) -> Option<LatencyComponent> {
    let norm = |s: &str| -> String {
        s.chars()
            .filter(|c| c.is_ascii_alphanumeric())
            .map(|c| c.to_ascii_lowercase())
            .collect()
    };
    let want = norm(name);
    LatencyComponent::ALL
        .iter()
        .copied()
        .find(|&c| norm(c.label()) == want || norm(&format!("{c:?}")) == want)
}

fn percentile(sorted: &[f64], p: f64) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    let idx = ((sorted.len() as f64 - 1.0) * p).round() as usize;
    sorted[idx.min(sorted.len() - 1)]
}

fn fmt_us(secs: f64) -> String {
    format!("{:.1}", secs * 1e6)
}

/// Renders the top-`n` slowest methods by P99 of one latency component
/// (or of total completion time when `component` is `None`).
///
/// Methods need at least `min_samples` non-erroneous spans to be ranked,
/// mirroring the paper's ≥100-sample rule; pass a smaller floor for
/// small stores.
pub fn top_methods(
    store: &TraceStore,
    component: Option<LatencyComponent>,
    n: usize,
    min_samples: usize,
) -> String {
    let query = MethodQuery {
        min_samples,
        ..MethodQuery::default()
    };
    let metric_label = component.map_or("total latency", |c| c.label());
    let mut rows: Vec<(u32, usize, f64, f64, f64)> = Vec::new();
    for (method, count) in query.eligible_methods(store) {
        let samples = match component {
            Some(c) => query.component_samples(store, method, c),
            None => query.latency_samples(store, method),
        };
        let Some(mut samples) = samples else { continue };
        samples.sort_by(|a, b| a.partial_cmp(b).expect("finite latency"));
        rows.push((
            method.0,
            count,
            percentile(&samples, 0.50),
            percentile(&samples, 0.99),
            *samples.last().expect("non-empty"),
        ));
    }
    // Rank by P99 descending; method id breaks ties deterministically.
    rows.sort_by(|a, b| b.3.partial_cmp(&a.3).expect("finite").then(a.0.cmp(&b.0)));
    rows.truncate(n);

    let mut out = format!(
        "Top {} methods by P99 {metric_label} ({} traces, {} spans)\n",
        rows.len(),
        store.len(),
        store.total_spans()
    );
    out.push_str(&format!(
        "{:>8} {:>8} {:>12} {:>12} {:>12}\n",
        "method", "samples", "p50 (us)", "p99 (us)", "max (us)"
    ));
    for (method, count, p50, p99, max) in rows {
        out.push_str(&format!(
            "{:>8} {:>8} {:>12} {:>12} {:>12}\n",
            method,
            count,
            fmt_us(p50),
            fmt_us(p99),
            fmt_us(max)
        ));
    }
    out
}

/// Renders the critical path of the trace at `index` in the store.
///
/// Each hop shows the method, its exclusive (non-overlapped) wall time,
/// and a proportional bar; exclusive times always sum to the root's
/// completion time.
pub fn critical_path_text(store: &TraceStore, index: usize) -> Result<String, String> {
    let trace = store.traces().get(index).ok_or_else(|| {
        format!(
            "trace {index} out of range (store has {} traces)",
            store.len()
        )
    })?;
    let path = CriticalPath::compute(trace);
    let total_us = path.total.as_secs_f64() * 1e6;
    let mut out = format!(
        "Trace {index}: {} spans, root completion {:.1} us, critical path {} hops\n",
        trace.len(),
        total_us,
        path.len()
    );
    out.push_str(&format!(
        "{:>5} {:>8} {:>8} {:>12} {:>6}  {}\n",
        "hop", "span", "method", "excl (us)", "share", "bar"
    ));
    for (depth, hop) in path.hops.iter().enumerate() {
        let excl_us = hop.exclusive.as_secs_f64() * 1e6;
        let share = if total_us > 0.0 {
            excl_us / total_us
        } else {
            0.0
        };
        let bar_len = (share * 40.0).round() as usize;
        out.push_str(&format!(
            "{:>5} {:>8} {:>8} {:>12.1} {:>5.1}%  {}{}\n",
            depth,
            hop.span,
            hop.method.0,
            excl_us,
            share * 100.0,
            "  ".repeat(depth.min(12)),
            "#".repeat(bar_len.max(usize::from(excl_us > 0.0)))
        ));
    }
    out.push_str(&format!(
        "exclusive sum {:.1} us (= root completion)\n",
        path.exclusive_sum().as_secs_f64() * 1e6
    ));
    Ok(out)
}

/// Renders a flamegraph-style text breakdown of the cycle tax from a run
/// manifest: one full-width root frame for all cycles, with each
/// category's sub-frame scaled to its share, largest first.
pub fn cycle_tax_text(manifest: &RunManifest) -> String {
    const WIDTH: usize = 60;
    let d = &manifest.deterministic;
    let total = d.cycles_total.max(1);
    let mut out = format!(
        "Cycle tax breakdown (seed {}, scale {}): {} total cycles\n",
        d.seed, d.scale, d.cycles_total
    );
    out.push_str(&format!("{} all\n", "#".repeat(WIDTH)));
    let mut cats: Vec<(&str, u128)> = d
        .cycles_by_category
        .iter()
        .map(|(label, cycles)| (label.as_str(), *cycles))
        .collect();
    cats.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(b.0)));
    for (label, cycles) in cats {
        let share = cycles as f64 / total as f64;
        let bar = ((share * WIDTH as f64).round() as usize).max(usize::from(cycles > 0));
        out.push_str(&format!(
            "{:<width$} {} {:.2}%\n",
            "#".repeat(bar),
            label,
            share * 100.0,
            width = WIDTH
        ));
    }
    out.push_str(&format!(
        "cycle tax: {:.3}% of all cycles outside the application\n",
        d.tax_ppm as f64 / 10_000.0
    ));
    out
}

/// Renders the Fig. 23 error-class breakdown from a run manifest: per
/// class, the error count, its share of all errors, and — when the
/// manifest carries a `robustness` section — its share of wasted cycles,
/// plus the executed resilience-loop counters.
///
/// Manifests from fault-free runs have no `robustness` section; those
/// fall back to the count-only breakdown in the deterministic section so
/// the command still answers, with a note about what is missing.
pub fn errors_text(manifest: &RunManifest) -> String {
    let d = &manifest.deterministic;
    let mut out = format!(
        "Error breakdown (seed {}, scale {}): {} errors / {} spans ({:.3}%)\n",
        d.seed,
        d.scale,
        d.errors_total,
        d.spans,
        if d.spans > 0 {
            d.errors_total as f64 / d.spans as f64 * 100.0
        } else {
            0.0
        }
    );
    match &manifest.robustness {
        Some(r) => {
            out.push_str(&format!("fault scenario: {}\n\n", r.scenario));
            let total_count: u64 = r.errors.iter().map(|(_, c, _)| c).sum();
            let total_cycles: u128 = r.errors.iter().map(|(_, _, cy)| cy).sum();
            out.push_str(&format!(
                "{:<20} {:>10} {:>12} {:>14}\n",
                "error", "count", "count share", "cycle share"
            ));
            let mut rows: Vec<&(String, u64, u128)> = r.errors.iter().collect();
            rows.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
            for (label, count, cycles) in rows {
                let cs = *count as f64 / total_count.max(1) as f64;
                let cys = *cycles as f64 / total_cycles.max(1) as f64;
                out.push_str(&format!(
                    "{label:<20} {count:>10} {:>11.2}% {:>13.2}%\n",
                    cs * 100.0,
                    cys * 100.0
                ));
            }
            out.push_str(&format!(
                "\nresilience loop: {} retries issued, {} denied by budget, {} failovers\n\
                 causal errors: {} unavailable, {} load-shed, {} deadline-exceeded\n",
                r.retries_issued,
                r.retries_denied,
                r.failovers,
                r.causal_unavailable,
                r.load_sheds,
                r.deadline_exceeded
            ));
            if !r.incidents.is_empty() {
                out.push_str(&format!(
                    "\n{:<20} {:>16} {:>10}\n",
                    "incident", "entities struck", "episodes"
                ));
                for (kind, struck, episodes) in &r.incidents {
                    out.push_str(&format!("{kind:<20} {struck:>16} {episodes:>10}\n"));
                }
            }
            if !r.controllers.is_empty() {
                out.push_str(&format!("\n{:<34} {:>12}\n", "controller", "value"));
                for (name, value) in &r.controllers {
                    out.push_str(&format!("{name:<34} {value:>12}\n"));
                }
            }
        }
        None => {
            out.push_str("fault scenario: none (no robustness section in manifest)\n\n");
            let total: u64 = d.errors_by_kind.iter().map(|(_, c)| c).sum();
            out.push_str(&format!(
                "{:<20} {:>10} {:>12}\n",
                "error", "count", "count share"
            ));
            let mut rows: Vec<&(String, u64)> = d.errors_by_kind.iter().collect();
            rows.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
            for (label, count) in rows {
                out.push_str(&format!(
                    "{label:<20} {count:>10} {:>11.2}%\n",
                    *count as f64 / total.max(1) as f64 * 100.0
                ));
            }
            out.push_str(
                "\nwasted-cycle shares need a fault-scenario manifest (repro --faults ...)\n",
            );
        }
    }
    out
}

/// Renders the closed-loop controller timeline for a fault scenario:
/// one line per aggregation window with the clusters holding
/// autoscaled capacity and the degraded paths the load balancer avoids.
///
/// Controller decisions are pure functions of `(seed, scenario)` — the
/// same trajectories every fleet run at this seed executes — so the
/// timeline reconstructs exactly without re-simulating, the same way
/// the manifest's controller rows do.
pub fn controllers_text(
    scenario: &str,
    seed: u64,
    duration: SimDuration,
) -> Result<String, String> {
    let faults = FaultScenario::by_name(scenario)
        .ok_or_else(|| format!("unknown fault scenario {scenario}"))?;
    let topology = Topology::default_world(seed);
    let region_of: Vec<u16> = topology.clusters().map(|c| c.region.0).collect();
    let Some(mut cp) = ControlPlane::new(
        &faults,
        seed,
        region_of,
        rpclens_tsdb::DEFAULT_SAMPLE_PERIOD,
    ) else {
        return Err(format!(
            "scenario `{}` has no control plane; closed-loop presets: incident-smoke",
            faults.name
        ));
    };
    let mut out = format!("scenario {} at seed {seed}\n", faults.name);
    out.push_str(&cp.render_timeline(topology.num_clusters() as u16, duration));
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rpclens_netsim::topology::ClusterId;
    use rpclens_rpcstack::component::LatencyBreakdown;
    use rpclens_simcore::time::{SimDuration, SimTime};
    use rpclens_trace::span::{MethodId, ServiceId, SpanBuilder, SpanRecord, TraceData};

    fn span(
        method: u32,
        parent: Option<u32>,
        start_us: u64,
        app_us: u64,
        queue_us: u64,
    ) -> SpanRecord {
        let mut b = LatencyBreakdown::new();
        b.set(
            LatencyComponent::ServerApplication,
            SimDuration::from_micros(app_us),
        );
        b.set(
            LatencyComponent::ServerRecvQueue,
            SimDuration::from_micros(queue_us),
        );
        let builder = SpanBuilder::new(MethodId(method), ServiceId(0), ClusterId(0), ClusterId(0))
            .start_offset(SimDuration::from_micros(start_us))
            .breakdown(b);
        match parent {
            Some(p) => builder.parent(p),
            None => builder,
        }
        .build()
    }

    fn store() -> TraceStore {
        let mut store = TraceStore::new();
        for i in 0..20u64 {
            store.add(TraceData::new(
                SimTime::from_nanos(i * 1_000),
                vec![
                    // Method 1 is slow, method 2 queues heavily.
                    span(1, None, 0, 5_000 + i, 10),
                    span(2, Some(0), 100, 300, 900 + i),
                ],
            ));
        }
        store
    }

    #[test]
    fn component_names_resolve_flexibly() {
        for c in LatencyComponent::ALL {
            assert_eq!(component_by_name(c.label()), Some(c));
            assert_eq!(component_by_name(&format!("{c:?}")), Some(c));
        }
        assert_eq!(
            component_by_name("server-recv-queue"),
            Some(LatencyComponent::ServerRecvQueue)
        );
        assert_eq!(component_by_name("bogus"), None);
    }

    #[test]
    fn top_methods_ranks_by_chosen_metric() {
        let s = store();
        // By total latency, method 1 dominates.
        let text = top_methods(&s, None, 5, 1);
        let first_row = text.lines().nth(2).expect("a ranked row");
        assert!(first_row.trim_start().starts_with('1'), "{text}");
        // By server queue time, method 2 dominates.
        let text = top_methods(&s, Some(LatencyComponent::ServerRecvQueue), 5, 1);
        let first_row = text.lines().nth(2).expect("a ranked row");
        assert!(first_row.trim_start().starts_with('2'), "{text}");
    }

    #[test]
    fn top_methods_respects_sample_floor() {
        let s = store();
        let text = top_methods(&s, None, 5, 1_000);
        assert!(text.starts_with("Top 0 methods"), "{text}");
    }

    #[test]
    fn critical_path_renders_and_bounds_check() {
        let s = store();
        let text = critical_path_text(&s, 0).expect("trace 0 exists");
        assert!(text.contains("critical path 2 hops"), "{text}");
        assert!(text.contains("= root completion"), "{text}");
        assert!(critical_path_text(&s, 999).is_err());
    }

    fn manifest_with_errors() -> RunManifest {
        use rpclens_obs::telemetry::RunTelemetry;
        RunManifest::from_telemetry(
            &RunTelemetry::default(),
            11,
            "test",
            10,
            1_000,
            vec![
                ("Cancelled".to_string(), 45),
                ("Entity not found".to_string(), 20),
                ("Unavailable".to_string(), 0),
            ],
            vec![("Application".to_string(), 1_000)],
            5_000,
        )
    }

    #[test]
    fn errors_text_without_robustness_renders_counts_only() {
        let text = errors_text(&manifest_with_errors());
        assert!(text.contains("fault scenario: none"), "{text}");
        // Largest class first, with its share of the 65 total errors.
        let cancelled = text
            .lines()
            .position(|l| l.starts_with("Cancelled"))
            .unwrap();
        let nf = text
            .lines()
            .position(|l| l.starts_with("Entity not found"))
            .unwrap();
        assert!(cancelled < nf, "{text}");
        assert!(text.contains("69.23%"), "{text}");
        assert!(text.contains("wasted-cycle shares need"), "{text}");
    }

    #[test]
    fn errors_text_renders_robustness_section() {
        use rpclens_obs::RobustnessSection;
        let mut m = manifest_with_errors();
        m.robustness = Some(RobustnessSection {
            scenario: "chaos-smoke".to_string(),
            retries_issued: 7,
            retries_denied: 3,
            failovers: 5,
            causal_unavailable: 2,
            load_sheds: 1,
            deadline_exceeded: 4,
            errors: vec![
                ("Cancelled".to_string(), 45, 900),
                ("Entity not found".to_string(), 20, 100),
            ],
            incidents: vec![("cluster-drain".to_string(), 3, 14)],
            controllers: vec![("lb_shifts".to_string(), 120)],
        });
        let text = errors_text(&m);
        assert!(text.contains("fault scenario: chaos-smoke"), "{text}");
        // Cancelled: 45/65 counts, 900/1000 cycles.
        assert!(text.contains("69.23%"), "{text}");
        assert!(text.contains("90.00%"), "{text}");
        assert!(text.contains("7 retries issued"), "{text}");
        assert!(text.contains("3 denied by budget"), "{text}");
        assert!(text.contains("5 failovers"), "{text}");
        assert!(text.contains("4 deadline-exceeded"), "{text}");
        // Incident and controller tables render when populated.
        assert!(text.contains("cluster-drain"), "{text}");
        assert!(text.contains("lb_shifts"), "{text}");
        assert!(text.contains("120"), "{text}");
    }

    #[test]
    fn controllers_text_reconstructs_the_incident_smoke_timeline() {
        let day = SimDuration::from_hours(24);
        let text = controllers_text("incident-smoke", 42, day).expect("timeline");
        assert!(
            text.contains("scenario incident-smoke at seed 42"),
            "{text}"
        );
        assert!(text.contains("48 windows"), "{text}");
        // At incident-smoke eligibility something always scales or
        // degrades within a day.
        assert!(
            !text.contains("\n  0 windows with controller activity"),
            "{text}"
        );
        // Open-loop presets have no control plane to render.
        let err = controllers_text("incident-open-loop", 42, day).unwrap_err();
        assert!(err.contains("no control plane"), "{err}");
        assert!(controllers_text("nope", 42, day).is_err());
    }

    #[test]
    fn cycle_tax_renders_manifest_categories() {
        use rpclens_obs::telemetry::RunTelemetry;
        let manifest = RunManifest::from_telemetry(
            &RunTelemetry::default(),
            7,
            "test",
            10,
            0,
            vec![],
            vec![
                ("Application".to_string(), 930_000),
                ("Networking".to_string(), 50_000),
                ("Serialization".to_string(), 20_000),
            ],
            70_000,
        );
        let text = cycle_tax_text(&manifest);
        assert!(text.contains("Application"), "{text}");
        assert!(text.contains("7.000% of all cycles"), "{text}");
        // Largest category renders first among the sub-frames.
        let app_line = text
            .lines()
            .position(|l| l.contains("Application"))
            .unwrap();
        let net_line = text.lines().position(|l| l.contains("Networking")).unwrap();
        assert!(app_line < net_line, "{text}");
    }
}
