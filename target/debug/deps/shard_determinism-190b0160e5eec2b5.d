/root/repo/target/debug/deps/shard_determinism-190b0160e5eec2b5.d: crates/bench/tests/shard_determinism.rs Cargo.toml

/root/repo/target/debug/deps/libshard_determinism-190b0160e5eec2b5.rmeta: crates/bench/tests/shard_determinism.rs Cargo.toml

crates/bench/tests/shard_determinism.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
