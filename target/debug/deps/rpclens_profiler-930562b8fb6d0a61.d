/root/repo/target/debug/deps/rpclens_profiler-930562b8fb6d0a61.d: crates/profiler/src/lib.rs

/root/repo/target/debug/deps/librpclens_profiler-930562b8fb6d0a61.rmeta: crates/profiler/src/lib.rs

crates/profiler/src/lib.rs:
