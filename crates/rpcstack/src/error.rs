//! RPC error taxonomy and injection (Fig. 23).
//!
//! The paper finds 1.9% of all RPCs end in error; cancellations (mostly
//! from hedging) are 45% of errors but 55% of wasted cycles, and "entity
//! not found" is the next largest class. [`ErrorProfile`] injects errors
//! with configurable per-kind rates, and records how far through its
//! lifecycle an erroneous RPC got (which determines the cycles it wasted).

use rpclens_simcore::rng::Prng;
use serde::{Deserialize, Serialize};

/// The error classes observed in the study.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum ErrorKind {
    /// The caller cancelled the RPC (including hedging losers).
    Cancelled,
    /// The requested entity does not exist.
    EntityNotFound,
    /// The server lacked resources to serve the request.
    NoResource,
    /// The caller lacked permission.
    NoPermission,
    /// The deadline expired before completion.
    DeadlineExceeded,
    /// The target was unavailable (task restarting, connection refused).
    Unavailable,
    /// An internal server failure.
    Internal,
    /// The operation was aborted (e.g. transaction conflicts).
    Aborted,
}

impl ErrorKind {
    /// All error kinds.
    pub const ALL: [ErrorKind; 8] = [
        ErrorKind::Cancelled,
        ErrorKind::EntityNotFound,
        ErrorKind::NoResource,
        ErrorKind::NoPermission,
        ErrorKind::DeadlineExceeded,
        ErrorKind::Unavailable,
        ErrorKind::Internal,
        ErrorKind::Aborted,
    ];

    /// Display label matching Fig. 23.
    pub fn label(self) -> &'static str {
        match self {
            ErrorKind::Cancelled => "Cancelled",
            ErrorKind::EntityNotFound => "Entity not found",
            ErrorKind::NoResource => "No resource",
            ErrorKind::NoPermission => "No permission",
            ErrorKind::DeadlineExceeded => "Deadline exceeded",
            ErrorKind::Unavailable => "Unavailable",
            ErrorKind::Internal => "Internal",
            ErrorKind::Aborted => "Aborted",
        }
    }
}

/// Error injection profile: the per-RPC probability of each non-cancel
/// error kind.
///
/// Cancellations are *not* injected here — they are produced mechanically
/// by the hedging machinery (the winner cancels the loser), which is what
/// makes their wasted-cycle share larger than their count share.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ErrorProfile {
    rates: Vec<(ErrorKind, f64)>,
    total: f64,
}

impl ErrorProfile {
    /// Creates a profile from `(kind, probability)` pairs.
    ///
    /// # Errors
    ///
    /// Returns an error if any rate is negative/non-finite, the rates sum
    /// above 1, or [`ErrorKind::Cancelled`] is listed (cancellations come
    /// from hedging, not injection).
    pub fn new(rates: Vec<(ErrorKind, f64)>) -> Result<Self, &'static str> {
        let mut total = 0.0;
        for &(kind, rate) in &rates {
            if kind == ErrorKind::Cancelled {
                return Err("cancellations are produced by hedging, not injected");
            }
            if !rate.is_finite() || rate < 0.0 {
                return Err("error rates must be finite and non-negative");
            }
            total += rate;
        }
        if total > 1.0 {
            return Err("error rates must sum to at most 1");
        }
        Ok(ErrorProfile { rates, total })
    }

    /// A no-errors profile.
    pub fn none() -> Self {
        ErrorProfile {
            rates: Vec::new(),
            total: 0.0,
        }
    }

    /// The fleet-default profile, tuned so that together with
    /// hedging-driven cancellations the fleet error rate lands near the
    /// paper's 1.9%, with "entity not found" the largest injected class.
    pub fn fleet_default() -> Self {
        ErrorProfile::new(vec![
            (ErrorKind::EntityNotFound, 0.0040),
            (ErrorKind::NoResource, 0.0013),
            (ErrorKind::NoPermission, 0.0011),
            (ErrorKind::DeadlineExceeded, 0.0012),
            (ErrorKind::Unavailable, 0.0014),
            (ErrorKind::Internal, 0.0008),
            (ErrorKind::Aborted, 0.0007),
        ])
        .expect("default profile is valid")
    }

    /// The residual semantic classes left for table injection when the
    /// causal fault plane is active: entity-not-found, permission,
    /// internal, and aborted failures arise from application semantics the
    /// simulator does not model mechanically. The mechanical classes —
    /// cancellations (hedging), deadline expiry (drawn deadlines),
    /// unavailability (crash/drain/partition episodes), and resource
    /// exhaustion (load shedding under overload surges) — are produced by
    /// the fleet driver itself, so the aggregate taxonomy still
    /// reconciles with Fig. 23.
    pub fn residual_default() -> Self {
        ErrorProfile::new(vec![
            (ErrorKind::EntityNotFound, 0.0040),
            (ErrorKind::NoPermission, 0.0011),
            (ErrorKind::Internal, 0.0008),
            (ErrorKind::Aborted, 0.0007),
        ])
        .expect("residual profile is valid")
    }

    /// Total probability that an RPC draws an injected error.
    pub fn total_rate(&self) -> f64 {
        self.total
    }

    /// Draws the error outcome for one RPC: `Some(kind)` or `None` for
    /// success.
    pub fn draw(&self, rng: &mut Prng) -> Option<ErrorKind> {
        if self.total == 0.0 {
            return None;
        }
        let u = rng.next_f64();
        let mut acc = 0.0;
        for &(kind, rate) in &self.rates {
            acc += rate;
            if u < acc {
                return Some(kind);
            }
        }
        None
    }

    /// The configured `(kind, rate)` pairs.
    pub fn rates(&self) -> &[(ErrorKind, f64)] {
        &self.rates
    }

    /// The fraction of an RPC's normal work that each error kind performs
    /// before failing (determines wasted cycles).
    ///
    /// Permission and not-found errors fail early (cheap validation);
    /// deadline and abort errors burn most of the work first.
    pub fn work_fraction(kind: ErrorKind) -> f64 {
        match kind {
            // A cancelled (hedged) RPC typically runs a large fraction of
            // its work before the winner returns.
            ErrorKind::Cancelled => 0.85,
            ErrorKind::EntityNotFound => 0.7,
            ErrorKind::NoResource => 0.5,
            ErrorKind::NoPermission => 0.35,
            ErrorKind::DeadlineExceeded => 1.0,
            ErrorKind::Unavailable => 0.2,
            ErrorKind::Internal => 0.6,
            ErrorKind::Aborted => 0.8,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rejects_invalid_profiles() {
        assert!(ErrorProfile::new(vec![(ErrorKind::Cancelled, 0.1)]).is_err());
        assert!(ErrorProfile::new(vec![(ErrorKind::Internal, -0.1)]).is_err());
        assert!(ErrorProfile::new(vec![(ErrorKind::Internal, f64::NAN)]).is_err());
        assert!(
            ErrorProfile::new(vec![(ErrorKind::Internal, 0.6), (ErrorKind::Aborted, 0.6),])
                .is_err()
        );
    }

    #[test]
    fn none_profile_never_errors() {
        let p = ErrorProfile::none();
        let mut rng = Prng::seed_from(1);
        assert!((0..10_000).all(|_| p.draw(&mut rng).is_none()));
        assert_eq!(p.total_rate(), 0.0);
    }

    #[test]
    fn draw_matches_configured_rates() {
        let p = ErrorProfile::new(vec![
            (ErrorKind::EntityNotFound, 0.02),
            (ErrorKind::Unavailable, 0.01),
        ])
        .unwrap();
        let mut rng = Prng::seed_from(2);
        let n = 200_000;
        let mut nf = 0;
        let mut un = 0;
        for _ in 0..n {
            match p.draw(&mut rng) {
                Some(ErrorKind::EntityNotFound) => nf += 1,
                Some(ErrorKind::Unavailable) => un += 1,
                Some(other) => panic!("unexpected {other:?}"),
                None => {}
            }
        }
        assert!((nf as f64 / n as f64 - 0.02).abs() < 0.002);
        assert!((un as f64 / n as f64 - 0.01).abs() < 0.002);
    }

    #[test]
    fn fleet_default_rate_is_about_one_percent() {
        // Injected errors are ~1.05%; hedging cancellations add the rest
        // toward the paper's 1.9% total.
        let p = ErrorProfile::fleet_default();
        let r = p.total_rate();
        assert!((0.008..0.013).contains(&r), "rate {r}");
        // Entity-not-found is the largest injected class.
        let max = p
            .rates()
            .iter()
            .max_by(|a, b| a.1.partial_cmp(&b.1).unwrap())
            .unwrap();
        assert_eq!(max.0, ErrorKind::EntityNotFound);
    }

    #[test]
    fn residual_profile_drops_only_mechanical_classes() {
        let residual = ErrorProfile::residual_default();
        let full = ErrorProfile::fleet_default();
        // Every residual class appears in the full profile at the same
        // rate, so swapping profiles never changes semantic-error rates.
        for &(kind, rate) in residual.rates() {
            let full_rate = full
                .rates()
                .iter()
                .find(|(k, _)| *k == kind)
                .map(|(_, r)| *r)
                .expect("residual class present in fleet default");
            assert_eq!(rate, full_rate, "{kind:?}");
        }
        // The classes removed are exactly the mechanically-produced ones.
        let removed: Vec<ErrorKind> = full
            .rates()
            .iter()
            .filter(|(k, _)| residual.rates().iter().all(|(rk, _)| rk != k))
            .map(|(k, _)| *k)
            .collect();
        assert_eq!(
            removed,
            vec![
                ErrorKind::NoResource,
                ErrorKind::DeadlineExceeded,
                ErrorKind::Unavailable
            ]
        );
    }

    #[test]
    fn work_fractions_are_probabilities() {
        for kind in ErrorKind::ALL {
            let f = ErrorProfile::work_fraction(kind);
            assert!((0.0..=1.0).contains(&f), "{kind:?}: {f}");
        }
        // Cancelled work must be expensive relative to early-fail errors,
        // which is what makes its cycle share exceed its count share.
        assert!(
            ErrorProfile::work_fraction(ErrorKind::Cancelled)
                > ErrorProfile::work_fraction(ErrorKind::NoPermission)
        );
    }

    #[test]
    fn labels_are_unique() {
        let labels: std::collections::BTreeSet<_> =
            ErrorKind::ALL.iter().map(|k| k.label()).collect();
        assert_eq!(labels.len(), ErrorKind::ALL.len());
    }
}
