/root/repo/target/release/deps/repro-6c04187f644a5982.d: crates/bench/src/bin/repro.rs

/root/repo/target/release/deps/repro-6c04187f644a5982: crates/bench/src/bin/repro.rs

crates/bench/src/bin/repro.rs:
