//! Deterministic invocation-semantics tests under seeded fault schedules.
//!
//! Both directions of an in-memory link are wrapped in seeded
//! [`FaultyTransport`]s (drop / duplicate / reorder / corrupt), and the
//! client/server pair is driven step-by-step in one thread: every `None`
//! from `try_complete` models one retransmission-timer expiry. The
//! schedule is a pure function of the seeds, so the assertions are exact:
//!
//! - **at-most-once**: every completed request executed the handler
//!   *exactly once*, no matter how many duplicates the network minted or
//!   how many retransmissions the client sent;
//! - **at-least-once**: every request completes (none is ever lost) and
//!   executes *at least once*, with duplicate executions showing up
//!   exactly where the fault schedule says they should.

use rpclens_rpcwire::client::{RetryPolicy, WireClient};
use rpclens_rpcwire::faulty::{FaultConfig, FaultyTransport};
use rpclens_rpcwire::message::{Request, Status};
use rpclens_rpcwire::server::{Handler, Semantics, WireServer};
use rpclens_rpcwire::transport::MemLink;
use std::collections::HashMap;
use std::sync::{Arc, Mutex};
use std::time::Duration;

/// Handler that records how many times each `(client, request)` executed.
struct CountingHandler {
    executions: Arc<Mutex<HashMap<(u64, u64), u32>>>,
}

impl Handler for CountingHandler {
    fn handle(&mut self, request: &Request) -> (Status, Vec<u8>) {
        *self
            .executions
            .lock()
            .unwrap()
            .entry((request.client_id, request.request_id))
            .or_insert(0) += 1;
        // Echo a transformed body so the client can verify integrity.
        let mut body = request.body.to_vec();
        for b in &mut body {
            *b ^= 0x5A;
        }
        (Status::Ok, body)
    }
}

struct Outcome {
    completed: u32,
    executions: HashMap<(u64, u64), u32>,
    client_retransmissions: u64,
    server_dedup_hits: u64,
    request_faults: rpclens_rpcwire::faulty::FaultStats,
    reply_faults: rpclens_rpcwire::faulty::FaultStats,
}

/// Runs `requests` calls through a faulty link under the given semantics
/// and seed; fully deterministic.
fn run_scenario(semantics: Semantics, seed: u64, requests: u32, faults: FaultConfig) -> Outcome {
    let (client_end, server_end) = MemLink::pair();
    let client_transport = FaultyTransport::new(client_end, faults, seed);
    let server_transport = FaultyTransport::new(server_end, faults, seed ^ 0x5EED);
    let executions = Arc::new(Mutex::new(HashMap::new()));
    let handler = CountingHandler {
        executions: executions.clone(),
    };
    let mut server = WireServer::new(server_transport, handler, semantics);
    let mut client = WireClient::new(client_transport, 0xC11E17, RetryPolicy::default(), seed);

    let mut completed = 0u32;
    for i in 0..requests {
        let body = format!("request {i} payload payload payload {i}");
        let mut pending = client
            .start_call(100 + (i % 7) as u64, body.as_bytes(), true)
            .unwrap();
        // Up to 64 scheduled timer expiries per call; the lossy schedule
        // recovers within a handful.
        let mut done = false;
        for _round in 0..64 {
            server.poll().unwrap();
            // A held (reordered) reply only rides behind the next reply
            // send; flush so lone in-flight replies still arrive.
            server.transport_mut().flush_held().unwrap();
            match client.try_complete(&pending, Duration::ZERO).unwrap() {
                Some(resp) => {
                    let expected: Vec<u8> = body.bytes().map(|b| b ^ 0x5A).collect();
                    assert_eq!(&resp.body[..], &expected[..], "echo integrity");
                    done = true;
                    break;
                }
                None => {
                    client.retransmit(&mut pending).unwrap();
                    client.transport_mut().flush_held().unwrap();
                }
            }
        }
        assert!(done, "request {i} never completed under seed {seed}");
        completed += 1;
    }
    let request_faults = client.transport_mut().stats();
    let reply_faults = server.transport_mut().stats();
    let executions = executions.lock().unwrap().clone();
    Outcome {
        completed,
        executions,
        client_retransmissions: client.stats().retransmissions,
        server_dedup_hits: server.stats().dedup_hits,
        request_faults,
        reply_faults,
    }
}

#[test]
fn at_most_once_executes_each_request_exactly_once() {
    for seed in [1u64, 7, 42, 1234] {
        let outcome = run_scenario(Semantics::AtMostOnce, seed, 100, FaultConfig::lossy());
        assert_eq!(outcome.completed, 100);
        assert_eq!(
            outcome.executions.len(),
            100,
            "every request executed (seed {seed})"
        );
        for (key, count) in &outcome.executions {
            assert_eq!(
                *count, 1,
                "request {key:?} executed {count} times (seed {seed})"
            );
        }
        // The schedule actually exercised the machinery: faults fired and
        // retransmissions happened, otherwise the exactly-once claim is
        // vacuous.
        assert!(
            outcome.request_faults.dropped > 0 || outcome.reply_faults.dropped > 0,
            "seed {seed} never dropped anything"
        );
        assert!(outcome.client_retransmissions > 0, "seed {seed}");
        assert!(
            outcome.server_dedup_hits > 0,
            "seed {seed} never hit the dedup cache"
        );
    }
}

#[test]
fn at_least_once_never_loses_a_request() {
    for seed in [3u64, 9, 77, 2024] {
        let outcome = run_scenario(Semantics::AtLeastOnce, seed, 100, FaultConfig::lossy());
        assert_eq!(outcome.completed, 100, "seed {seed}");
        assert_eq!(outcome.executions.len(), 100, "seed {seed}");
        let total: u32 = outcome.executions.values().sum();
        for (key, count) in &outcome.executions {
            assert!(*count >= 1, "request {key:?} lost (seed {seed})");
        }
        // Retransmissions + duplicates re-execute under at-least-once.
        assert!(
            total > 100,
            "seed {seed}: lossy schedule should force some re-execution (got {total})"
        );
        assert_eq!(outcome.server_dedup_hits, 0, "no dedup in at-least-once");
    }
}

#[test]
fn scenarios_are_bit_deterministic_per_seed() {
    for semantics in [Semantics::AtMostOnce, Semantics::AtLeastOnce] {
        let a = run_scenario(semantics, 55, 60, FaultConfig::lossy());
        let b = run_scenario(semantics, 55, 60, FaultConfig::lossy());
        assert_eq!(a.completed, b.completed);
        assert_eq!(a.executions, b.executions);
        assert_eq!(a.client_retransmissions, b.client_retransmissions);
        assert_eq!(a.server_dedup_hits, b.server_dedup_hits);
        assert_eq!(a.request_faults, b.request_faults);
        assert_eq!(a.reply_faults, b.reply_faults);
        // A different seed shifts the schedule.
        let c = run_scenario(semantics, 56, 60, FaultConfig::lossy());
        assert!(
            c.request_faults != a.request_faults
                || c.client_retransmissions != a.client_retransmissions,
            "seed 56 produced the identical schedule"
        );
    }
}

#[test]
fn clean_link_needs_no_retransmissions() {
    let outcome = run_scenario(Semantics::AtMostOnce, 1, 50, FaultConfig::none());
    assert_eq!(outcome.completed, 50);
    assert_eq!(outcome.client_retransmissions, 0);
    assert_eq!(outcome.server_dedup_hits, 0);
    let total: u32 = outcome.executions.values().sum();
    assert_eq!(total, 50);
}
