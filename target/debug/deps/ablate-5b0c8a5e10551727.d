/root/repo/target/debug/deps/ablate-5b0c8a5e10551727.d: crates/bench/src/bin/ablate.rs

/root/repo/target/debug/deps/ablate-5b0c8a5e10551727: crates/bench/src/bin/ablate.rs

crates/bench/src/bin/ablate.rs:
