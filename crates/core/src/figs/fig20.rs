//! Fig. 20: the RPC cycle tax.
//!
//! Paper anchors: 7.1% of all fleet CPU cycles are RPC tax; the breakdown
//! is compression 3.1%, networking 1.7%, serialization 1.2%, RPC library
//! 1.1% (plus smaller categories).

use crate::check::ExpectationSet;
use crate::render::{fmt_pct, TextTable};
use rpclens_fleet::driver::FleetRun;
use rpclens_rpcstack::cost::CycleCategory;

/// The computed figure.
#[derive(Debug)]
pub struct Fig20 {
    /// Total tax fraction of all cycles.
    pub tax_fraction: f64,
    /// Per-category fraction of all cycles (tax categories).
    pub categories: Vec<(CycleCategory, f64)>,
}

/// Computes the figure from the profiler.
pub fn compute(run: &FleetRun) -> Fig20 {
    let categories = CycleCategory::ALL
        .iter()
        .filter(|c| c.is_tax())
        .map(|&c| (c, run.profiler.category_fraction(c)))
        .collect();
    Fig20 {
        tax_fraction: run.profiler.tax_fraction(),
        categories,
    }
}

/// Renders the figure.
pub fn render(fig: &Fig20) -> String {
    let mut t = TextTable::new(&["category", "share of all cycles"]);
    for (c, f) in &fig.categories {
        t.row(vec![c.label().to_string(), fmt_pct(*f)]);
    }
    format!(
        "Fig. 20 — RPC cycle tax: {} of all fleet cycles\n{}",
        fmt_pct(fig.tax_fraction),
        t.render()
    )
}

/// Paper-vs-measured checks.
pub fn checks(fig: &Fig20) -> ExpectationSet {
    let mut s = ExpectationSet::new();
    let get = |cat: CycleCategory| {
        fig.categories
            .iter()
            .find(|(c, _)| *c == cat)
            .map(|(_, f)| *f)
            .unwrap_or(0.0)
    };
    s.add(
        "fig20.tax_total",
        "the RPC cycle tax is 7.1% of all cycles",
        fig.tax_fraction,
        0.04,
        0.11,
    );
    s.add(
        "fig20.compression",
        "compression is the largest tax component (3.1%)",
        get(CycleCategory::Compression),
        0.015,
        0.05,
    );
    s.add(
        "fig20.networking",
        "networking is 1.7% of all cycles",
        get(CycleCategory::Networking),
        0.008,
        0.03,
    );
    s.add(
        "fig20.serialization",
        "serialization is 1.2% of all cycles",
        get(CycleCategory::Serialization),
        0.006,
        0.025,
    );
    s.add(
        "fig20.library",
        "the RPC library itself is only ~1.1% of all cycles",
        get(CycleCategory::RpcLibrary),
        0.004,
        0.022,
    );
    // Ordering: compression leads.
    let max = fig
        .categories
        .iter()
        .max_by(|a, b| a.1.partial_cmp(&b.1).expect("finite"))
        .map(|(c, _)| *c);
    s.add(
        "fig20.compression_leads",
        "compression is the single biggest consumer",
        (max == Some(CycleCategory::Compression)) as u8 as f64,
        1.0,
        1.0,
    );
    s
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::common::testrun::shared;

    #[test]
    fn checks_pass_on_test_run() {
        let fig = compute(shared());
        let c = checks(&fig);
        assert!(c.all_passed(), "{c}");
    }

    #[test]
    fn category_fractions_sum_to_tax() {
        let fig = compute(shared());
        let sum: f64 = fig.categories.iter().map(|(_, f)| f).sum();
        assert!((sum - fig.tax_fraction).abs() < 1e-9);
    }
}
