/root/repo/target/release/deps/rpclens_cluster-c2eba2056f9fe504.d: crates/cluster/src/lib.rs crates/cluster/src/accounting.rs crates/cluster/src/exogenous.rs crates/cluster/src/machine.rs crates/cluster/src/mgk.rs crates/cluster/src/pool.rs

/root/repo/target/release/deps/rpclens_cluster-c2eba2056f9fe504: crates/cluster/src/lib.rs crates/cluster/src/accounting.rs crates/cluster/src/exogenous.rs crates/cluster/src/machine.rs crates/cluster/src/mgk.rs crates/cluster/src/pool.rs

crates/cluster/src/lib.rs:
crates/cluster/src/accounting.rs:
crates/cluster/src/exogenous.rs:
crates/cluster/src/machine.rs:
crates/cluster/src/mgk.rs:
crates/cluster/src/pool.rs:
