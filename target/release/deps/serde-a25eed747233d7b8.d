/root/repo/target/release/deps/serde-a25eed747233d7b8.d: vendor/serde/src/lib.rs

/root/repo/target/release/deps/serde-a25eed747233d7b8: vendor/serde/src/lib.rs

vendor/serde/src/lib.rs:
