//! Fig. 22: CPU usage across clusters vs machines within a cluster.
//!
//! Paper anchors: the latency-aware balancer leaves CPU usage heavily
//! imbalanced *across clusters* (it never optimizes for CPU), while
//! usage across machines *within* a cluster is much tighter — except for
//! the data-dependent services (Spanner, F1, ML Inference), whose
//! per-machine load is skewed and approaches saturation.

use crate::check::ExpectationSet;
use crate::render::{fmt_pct, TextTable};
use rpclens_fleet::driver::FleetRun;
use rpclens_simcore::time::{SimDuration, SimTime};

/// CPU usage is reported against this allocation headroom: a site running
/// at 72% utilization against a 0.8 allocation reports 90% usage.
pub const ALLOCATION: f64 = 0.8;

/// One service's usage distributions.
#[derive(Debug)]
pub struct ServiceUsage {
    /// Service name.
    pub name: &'static str,
    /// Day-average usage ratio per cluster (sorted ascending).
    pub per_cluster: Vec<f64>,
    /// Usage ratio per machine within the median cluster (sorted).
    pub per_machine: Vec<f64>,
}

impl ServiceUsage {
    /// Spread measure: P90-ish minus P10-ish of a sorted ratio vector.
    fn spread(v: &[f64]) -> f64 {
        if v.len() < 2 {
            return 0.0;
        }
        let lo = v[v.len() / 10];
        let hi = v[v.len() - 1 - v.len() / 10];
        hi - lo
    }

    /// Cross-cluster usage spread.
    pub fn cluster_spread(&self) -> f64 {
        Self::spread(&self.per_cluster)
    }

    /// Intra-cluster (machine) usage spread.
    pub fn machine_spread(&self) -> f64 {
        Self::spread(&self.per_machine)
    }
}

/// The computed figure.
#[derive(Debug)]
pub struct Fig22 {
    /// One entry per Table 1 service.
    pub services: Vec<ServiceUsage>,
}

/// Computes day-average usage ratios from the deployment's exogenous
/// profiles (the same source the monitoring pipeline samples).
pub fn compute(run: &FleetRun) -> Fig22 {
    let day = SimDuration::from_hours(24);
    let mut services = Vec::new();
    for entry in run.catalog.table1() {
        let svc = run.catalog.method(entry.method).service;
        let sites = run.sites_of(svc);
        if sites.is_empty() {
            continue;
        }
        let mut per_cluster: Vec<f64> = sites
            .iter()
            .map(|s| s.load.window_average(SimTime::ZERO, day).cpu_util / ALLOCATION)
            .collect();
        per_cluster.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
        // Median cluster's machines.
        let median_site = sites[sites.len() / 2];
        let base = median_site.load.window_average(SimTime::ZERO, day).cpu_util;
        let mut per_machine: Vec<f64> = median_site
            .machine_offsets
            .iter()
            .map(|off| (base * off).min(0.98) / ALLOCATION)
            .collect();
        per_machine.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
        services.push(ServiceUsage {
            name: entry.server,
            per_cluster,
            per_machine,
        });
    }
    Fig22 { services }
}

/// Renders the figure.
pub fn render(fig: &Fig22) -> String {
    let mut t = TextTable::new(&[
        "service",
        "clusters",
        "cluster min..max",
        "cluster spread",
        "machine spread",
    ]);
    for s in &fig.services {
        t.row(vec![
            s.name.to_string(),
            s.per_cluster.len().to_string(),
            format!(
                "{}..{}",
                fmt_pct(*s.per_cluster.first().expect("non-empty")),
                fmt_pct(*s.per_cluster.last().expect("non-empty"))
            ),
            fmt_pct(s.cluster_spread()),
            fmt_pct(s.machine_spread()),
        ]);
    }
    format!(
        "Fig. 22 — CPU usage/allocation across clusters and machines\n{}",
        t.render()
    )
}

/// Paper-vs-measured checks.
pub fn checks(fig: &Fig22) -> ExpectationSet {
    let mut s = ExpectationSet::new();
    // Cross-cluster imbalance is large for every service.
    for svc in &fig.services {
        s.add(
            &format!("fig22.{}_cluster_imbalance", svc.name.replace(' ', "_")),
            "load is significantly imbalanced across clusters",
            svc.cluster_spread(),
            0.15,
            1.5,
        );
    }
    // Intra-cluster balance is much tighter for uniform services...
    let spread_of = |name: &str| {
        fig.services
            .iter()
            .find(|s| s.name == name)
            .map(|s| s.machine_spread())
            .unwrap_or(f64::NAN)
    };
    for tight in ["Bigtable", "Network Disk", "Video Metadata"] {
        s.add(
            &format!("fig22.{}_machines_tight", tight.replace(' ', "_")),
            "machine-level usage varies much less within a cluster",
            spread_of(tight),
            0.0,
            0.25,
        );
    }
    // ...but the data-dependent services are skewed per machine too.
    for skewed in ["Spanner", "F1", "ML Inference"] {
        s.add(
            &format!("fig22.{}_machines_skewed", skewed.replace(' ', "_")),
            "Spanner/F1/ML Inference have machines near saturation",
            spread_of(skewed),
            0.15,
            2.0,
        );
    }
    // Tail clusters approach the allocation limit somewhere.
    let max_usage = fig
        .services
        .iter()
        .filter_map(|s| s.per_cluster.last().copied())
        .fold(0.0f64, f64::max);
    s.add(
        "fig22.tail_near_limit",
        "tail utilization approaches the allocation limit",
        max_usage,
        0.85,
        1.5,
    );
    s
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::common::testrun::shared;

    #[test]
    fn checks_pass_on_test_run() {
        let fig = compute(shared());
        let c = checks(&fig);
        assert!(c.all_passed(), "{c}");
    }

    #[test]
    fn all_table1_services_present() {
        let fig = compute(shared());
        assert_eq!(fig.services.len(), 8);
        for s in &fig.services {
            assert!(!s.per_cluster.is_empty());
            assert!(!s.per_machine.is_empty());
            assert!(s.per_cluster.windows(2).all(|w| w[0] <= w[1]));
        }
    }

    #[test]
    fn cross_cluster_spread_exceeds_machine_spread_for_uniform_services() {
        let fig = compute(shared());
        let disk = fig
            .services
            .iter()
            .find(|s| s.name == "Network Disk")
            .expect("disk present");
        assert!(disk.cluster_spread() > disk.machine_spread());
    }
}
