//! `ablate` — run the design-choice ablations.
//!
//! ```text
//! ablate all | hedging | congestion | reserved-cores  [--scale smoke|default|paper]
//! ```

use rpclens_bench::ablation::{run_ablation, Ablation};
use rpclens_bench::scale_by_name;
use rpclens_fleet::driver::SimScale;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut scale = SimScale::smoke();
    let mut ablations = Vec::new();
    let mut iter = args.iter();
    while let Some(arg) = iter.next() {
        match arg.as_str() {
            "--scale" => {
                let Some(s) = iter.next().and_then(|n| scale_by_name(n)) else {
                    eprintln!("usage: ablate all|hedging|congestion|reserved-cores [--scale smoke|default|paper]");
                    std::process::exit(2);
                };
                scale = s;
            }
            "all" => ablations.extend(Ablation::ALL),
            name => match Ablation::parse(name) {
                Some(a) => ablations.push(a),
                None => {
                    eprintln!("unknown ablation {name}");
                    std::process::exit(2);
                }
            },
        }
    }
    if ablations.is_empty() {
        ablations.extend(Ablation::ALL);
    }
    for ablation in ablations {
        eprintln!(
            "running ablation {} at scale {}...",
            ablation.name(),
            scale.name
        );
        let r = run_ablation(ablation, &scale);
        println!(
            "{:>14}: {}\n{:>14}  with mechanism    {:.6}\n{:>14}  without mechanism {:.6}\n{:>14}  ratio (off/on)    {:.3}",
            ablation.name(),
            r.metric,
            "",
            r.with_mechanism,
            "",
            r.without_mechanism,
            "",
            r.improvement()
        );
    }
}
