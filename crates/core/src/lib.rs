//! The characterization suite: the paper's primary contribution.
//!
//! Every table and figure in the paper's evaluation has a module under
//! [`figs`] that (a) computes the figure's data from a completed
//! [`rpclens_fleet::driver::FleetRun`] (or, for Fig. 1, from the growth
//! model), (b) renders it as text/CSV, and (c) emits
//! [`check::Expectation`]s comparing the measured shape against the
//! paper's published anchors.
//!
//! | Module | Paper artifact |
//! |---|---|
//! | [`figs::fig01`] | Fig. 1 — RPS/CPU growth over 700 days |
//! | [`figs::fig02`] | Fig. 2 — per-method completion-time heatmap/CDF |
//! | [`figs::fig03`] | Fig. 3 — per-method popularity |
//! | [`figs::fig04`] | Fig. 4 — descendants per method |
//! | [`figs::fig05`] | Fig. 5 — ancestors per method |
//! | [`figs::fig06`] | Fig. 6 — request sizes |
//! | [`figs::fig07`] | Fig. 7 — response/request ratio |
//! | [`figs::fig08`] | Fig. 8 — service shares (calls/bytes/cycles) |
//! | [`figs::fig10`] | Fig. 10 — fleet latency-tax breakdown |
//! | [`figs::fig11`] | Fig. 11 — per-method tax ratio |
//! | [`figs::fig12`] | Fig. 12 — network + stack latency |
//! | [`figs::fig13`] | Fig. 13 — queueing latency |
//! | [`figs::fig14`] | Fig. 14 — per-service component CDFs |
//! | [`figs::fig15`] | Fig. 15 — what-if tail analysis |
//! | [`figs::fig16`] | Fig. 16 — per-cluster tail breakdowns |
//! | [`figs::fig17`] | Fig. 17 — exogenous variables vs latency |
//! | [`figs::fig18`] | Fig. 18 — 24-hour covariation |
//! | [`figs::fig19`] | Fig. 19 — Spanner cross-cluster latency |
//! | [`figs::fig20`] | Fig. 20 — RPC cycle tax |
//! | [`figs::fig21`] | Fig. 21 — per-method CPU cycles |
//! | [`figs::fig22`] | Fig. 22 — load-balancing CPU usage |
//! | [`figs::fig23`] | Fig. 23 — error types |
//! | [`figs::table1`] | Table 1 — the eight studied services |
//! | [`figs::table2`] | Table 2 — exogenous variables |
//! | [`figs::compare`] | §2.4 — tree shapes vs other studies |
//!
//! Fig. 9 is the component diagram; it is definitional and implemented by
//! `rpclens_rpcstack::component::LatencyComponent`.

pub mod check;
pub mod common;
pub mod figs;
pub mod render;
pub mod whatif;

pub use check::{Expectation, ExpectationSet};
