/root/repo/target/debug/deps/rpclens_trace-d421b8b367396dba.d: crates/trace/src/lib.rs crates/trace/src/collector.rs crates/trace/src/critical_path.rs crates/trace/src/export.rs crates/trace/src/query.rs crates/trace/src/span.rs crates/trace/src/tree.rs

/root/repo/target/debug/deps/librpclens_trace-d421b8b367396dba.rmeta: crates/trace/src/lib.rs crates/trace/src/collector.rs crates/trace/src/critical_path.rs crates/trace/src/export.rs crates/trace/src/query.rs crates/trace/src/span.rs crates/trace/src/tree.rs

crates/trace/src/lib.rs:
crates/trace/src/collector.rs:
crates/trace/src/critical_path.rs:
crates/trace/src/export.rs:
crates/trace/src/query.rs:
crates/trace/src/span.rs:
crates/trace/src/tree.rs:
