/root/repo/target/debug/deps/repro-f2f00037fb2d8085.d: crates/bench/src/bin/repro.rs

/root/repo/target/debug/deps/repro-f2f00037fb2d8085: crates/bench/src/bin/repro.rs

crates/bench/src/bin/repro.rs:
