//! Fig. 10: the fleet-wide RPC latency tax.
//!
//! Paper anchors: on average the tax is 2.0% of completion time — network
//! ~1.1%, RPC processing + stack ~0.49%, queueing ~0.43% — but for
//! P95-tail RPCs the tax share grows and skews toward the network.

use crate::check::ExpectationSet;
use crate::common::all_ok_spans;
use crate::render::{fmt_pct, TextTable};
use rpclens_fleet::driver::FleetRun;
use rpclens_rpcstack::component::TaxGroup;
use rpclens_simcore::stats::{percentile, sorted_finite};

/// One tax decomposition: total tax share plus per-group shares of
/// completion time.
#[derive(Debug, Clone, Copy)]
pub struct TaxShares {
    /// Tax as a fraction of completion time.
    pub tax: f64,
    /// Queueing share of completion time.
    pub queue: f64,
    /// Network-wire share of completion time.
    pub network: f64,
    /// Processing + stack share of completion time.
    pub processing: f64,
}

/// The computed figure.
#[derive(Debug)]
pub struct Fig10 {
    /// Time-weighted fleet averages over all OK RPCs.
    pub mean: TaxShares,
    /// The same decomposition restricted to P95-tail RPCs.
    pub tail: TaxShares,
    /// The P95 completion-time threshold used, seconds.
    pub p95_secs: f64,
}

fn shares<'a, I: Iterator<Item = &'a rpclens_trace::span::SpanRecord>>(spans: I) -> TaxShares {
    let mut total = 0.0;
    let mut tax = 0.0;
    let mut queue = 0.0;
    let mut network = 0.0;
    let mut processing = 0.0;
    for s in spans {
        let b = s.breakdown();
        total += b.total().as_secs_f64();
        tax += b.tax().as_secs_f64();
        queue += b.group(TaxGroup::Queue).as_secs_f64();
        network += b.group(TaxGroup::Network).as_secs_f64();
        processing += b.group(TaxGroup::Processing).as_secs_f64();
    }
    let total = total.max(1e-12);
    TaxShares {
        tax: tax / total,
        queue: queue / total,
        network: network / total,
        processing: processing / total,
    }
}

/// Computes the figure.
///
/// "Tail" RPCs are those above their *own method's* P95 — a tail disk
/// read is a tail disk read even though it is faster than a median
/// analytics query — matching the paper's per-RPC framing.
pub fn compute(run: &FleetRun) -> Fig10 {
    let spans = all_ok_spans(run);
    let totals = sorted_finite(spans.iter().map(|(t, _)| *t).collect());
    let p95 = percentile(&totals, 0.95).unwrap_or(f64::NAN);
    let mean = shares(spans.iter().map(|(_, s)| *s));
    // Per-method P95 thresholds.
    let mut per_method: std::collections::HashMap<u32, Vec<f64>> = std::collections::HashMap::new();
    for (t, s) in &spans {
        per_method.entry(s.method.0).or_default().push(*t);
    }
    let thresholds: std::collections::HashMap<u32, f64> = per_method
        .into_iter()
        .filter(|(_, v)| v.len() >= 100)
        .map(|(m, v)| {
            let sv = sorted_finite(v);
            (m, percentile(&sv, 0.95).expect("non-empty"))
        })
        .collect();
    let tail = shares(
        spans
            .iter()
            .filter(|(t, s)| thresholds.get(&s.method.0).is_some_and(|&p| *t > p))
            .map(|(_, s)| *s),
    );
    Fig10 {
        mean,
        tail,
        p95_secs: p95,
    }
}

/// Renders the figure.
pub fn render(fig: &Fig10) -> String {
    let mut t = TextTable::new(&["population", "tax", "queueing", "network", "proc+stack"]);
    for (name, s) in [("all RPCs", fig.mean), ("P95 tail", fig.tail)] {
        t.row(vec![
            name.to_string(),
            fmt_pct(s.tax),
            fmt_pct(s.queue),
            fmt_pct(s.network),
            fmt_pct(s.processing),
        ]);
    }
    format!(
        "Fig. 10 — RPC latency tax (share of completion time)\n{}\n(P95 threshold {:.2} ms)\n",
        t.render(),
        fig.p95_secs * 1e3
    )
}

/// Paper-vs-measured checks.
pub fn checks(fig: &Fig10) -> ExpectationSet {
    let mut s = ExpectationSet::new();
    s.add(
        "fig10.mean_tax",
        "the average tax is 2.0% of completion time (we accept < 13%)",
        fig.mean.tax,
        0.005,
        0.13,
    );
    s.add(
        "fig10.groups_sum",
        "queue + network + processing = total tax",
        (fig.mean.queue + fig.mean.network + fig.mean.processing) / fig.mean.tax.max(1e-12),
        0.999,
        1.001,
    );
    s.add(
        "fig10.app_dominates_mean",
        "application processing dominates the average RPC",
        1.0 - fig.mean.tax,
        0.85,
        1.0,
    );
    // Within the tax, the network's share grows at the tail (Fig. 10d
    // skews toward network-induced delay relative to Fig. 10b).
    let mean_net_share = fig.mean.network / fig.mean.tax.max(1e-12);
    let tail_net_share = fig.tail.network / fig.tail.tax.max(1e-12);
    s.add(
        "fig10.tail_network_skew",
        "for tail RPCs the tax skews toward the network",
        tail_net_share / mean_net_share.max(1e-12),
        1.0,
        f64::INFINITY,
    );
    s.add(
        "fig10.tail_network_dominant",
        "network is the dominant component of the tail tax",
        tail_net_share,
        0.4,
        1.0,
    );
    s
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::common::testrun::shared;

    #[test]
    fn checks_pass_on_test_run() {
        let fig = compute(shared());
        let c = checks(&fig);
        assert!(c.all_passed(), "{c}");
    }

    #[test]
    fn shares_are_fractions() {
        let fig = compute(shared());
        for s in [fig.mean, fig.tail] {
            assert!((0.0..=1.0).contains(&s.tax));
            assert!(s.queue >= 0.0 && s.network >= 0.0 && s.processing >= 0.0);
        }
        assert!(fig.p95_secs > 0.0);
    }
}
