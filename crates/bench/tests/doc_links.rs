//! Documentation link checker: every relative markdown link resolves,
//! every backtick-quoted repo path exists, and nothing references the
//! out-of-tree `/root/related/` file sets (replaced by PAPERS.md
//! citations). Runs as a tier-1 test so stale references fail CI the
//! same way a broken build does.

use std::path::{Path, PathBuf};

/// Repo root, resolved from this crate's manifest directory.
fn repo_root() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("../..")
        .canonicalize()
        .expect("repo root")
}

/// The markdown files under the link contract. `ISSUE.md`, `PAPER.md`,
/// and `SNIPPETS.md` are externally generated scratch/reference inputs
/// and exempt; everything the repo itself maintains is checked.
fn checked_files(root: &Path) -> Vec<PathBuf> {
    let mut files: Vec<PathBuf> = [
        "README.md",
        "DESIGN.md",
        "EXPERIMENTS.md",
        "ROADMAP.md",
        "CHANGES.md",
        "PAPERS.md",
    ]
    .iter()
    .map(|f| root.join(f))
    .collect();
    let docs = root.join("docs");
    let mut entries: Vec<PathBuf> = std::fs::read_dir(&docs)
        .expect("docs/ directory")
        .filter_map(Result::ok)
        .map(|e| e.path())
        .filter(|p| p.extension().is_some_and(|e| e == "md"))
        .collect();
    entries.sort();
    files.extend(entries);
    files
}

/// Extracts the targets of inline markdown links `[text](target)`.
fn link_targets(text: &str) -> Vec<String> {
    let bytes = text.as_bytes();
    let mut targets = Vec::new();
    let mut i = 0;
    while i + 1 < bytes.len() {
        if bytes[i] == b']' && bytes[i + 1] == b'(' {
            if let Some(end) = text[i + 2..].find(')') {
                targets.push(text[i + 2..i + 2 + end].to_string());
                i += 2 + end;
                continue;
            }
        }
        i += 1;
    }
    targets
}

/// Extracts backtick-quoted spans that look like in-repo paths: a known
/// top-level prefix, path-safe characters only.
fn quoted_repo_paths(text: &str) -> Vec<String> {
    const PREFIXES: [&str; 4] = ["crates/", "docs/", "vendor/", ".github/"];
    let mut paths = Vec::new();
    for span in text.split('`').skip(1).step_by(2) {
        let is_pathlike = span
            .chars()
            .all(|c| c.is_ascii_alphanumeric() || "._-/".contains(c));
        if is_pathlike && PREFIXES.iter().any(|p| span.starts_with(p)) {
            paths.push(span.to_string());
        }
    }
    paths
}

#[test]
fn relative_markdown_links_resolve() {
    let root = repo_root();
    let mut broken = Vec::new();
    for file in checked_files(&root) {
        let text = std::fs::read_to_string(&file)
            .unwrap_or_else(|e| panic!("read {}: {e}", file.display()));
        let dir = file.parent().expect("file has a parent");
        for target in link_targets(&text) {
            // External links, pure anchors, and intra-page fragments are
            // out of scope for a filesystem check.
            if target.starts_with("http") || target.starts_with('#') || target.contains("://") {
                continue;
            }
            let path_part = target.split('#').next().unwrap_or("");
            if path_part.is_empty() {
                continue;
            }
            if !dir.join(path_part).exists() {
                broken.push(format!("{}: ({target})", file.display()));
            }
        }
    }
    assert!(
        broken.is_empty(),
        "dead relative links:\n{}",
        broken.join("\n")
    );
}

#[test]
fn quoted_repo_paths_exist() {
    let root = repo_root();
    let mut missing = Vec::new();
    for file in checked_files(&root) {
        let text = std::fs::read_to_string(&file)
            .unwrap_or_else(|e| panic!("read {}: {e}", file.display()));
        for path in quoted_repo_paths(&text) {
            if !root.join(&path).exists() {
                missing.push(format!("{}: `{path}`", file.display()));
            }
        }
    }
    assert!(
        missing.is_empty(),
        "backtick-quoted repo paths that do not exist:\n{}",
        missing.join("\n")
    );
}

#[test]
fn no_references_to_out_of_tree_related_sets() {
    let root = repo_root();
    let mut offenders = Vec::new();
    for file in checked_files(&root) {
        let text = std::fs::read_to_string(&file)
            .unwrap_or_else(|e| panic!("read {}: {e}", file.display()));
        for (n, line) in text.lines().enumerate() {
            if line.contains("/root/related") {
                offenders.push(format!("{}:{}", file.display(), n + 1));
            }
        }
    }
    assert!(
        offenders.is_empty(),
        "docs must cite PAPERS.md entries, not the out-of-tree /root/related \
         file sets:\n{}",
        offenders.join("\n")
    );
}

#[test]
fn link_extractors_behave() {
    let text = "see [a](x.md) and [b](docs/y.md#frag), plus `crates/bench` and \
                `not/a/prefix` and a [web link](https://example.com).";
    assert_eq!(
        link_targets(text),
        vec!["x.md", "docs/y.md#frag", "https://example.com"]
    );
    assert_eq!(quoted_repo_paths(text), vec!["crates/bench"]);
}
