//! Compact span records.
//!
//! A fleet-scale run stores millions of spans, so the on-heap
//! representation is quantized: component latencies and start offsets in
//! 100 ns units (`u32`, max ~7 minutes per field — far above any RPC),
//! sizes saturated to `u32`, cycles in kilocycles. Accessors convert back
//! to the workspace's standard types; quantization error is below the
//! log-histogram bucket error everywhere it matters.

use rpclens_netsim::topology::ClusterId;
use rpclens_rpcstack::component::{LatencyBreakdown, LatencyComponent};
use rpclens_rpcstack::error::ErrorKind;
use rpclens_simcore::time::{SimDuration, SimTime};
use serde::{Deserialize, Serialize};

/// Identifier of an RPC method (dense index into the catalog).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct MethodId(pub u32);

/// Identifier of a service (a set of methods owned by one application).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct ServiceId(pub u16);

/// Quantum for stored durations: 100 ns.
const TICK_NS: u64 = 100;

/// Sentinel parent index marking a root span.
pub const ROOT_PARENT: u32 = u32::MAX;

fn to_ticks(d: SimDuration) -> u32 {
    (d.as_nanos() / TICK_NS).min(u32::MAX as u64) as u32
}

fn from_ticks(t: u32) -> SimDuration {
    SimDuration::from_nanos(t as u64 * TICK_NS)
}

/// One RPC within a sampled trace.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct SpanRecord {
    /// Invoked method.
    pub method: MethodId,
    /// Owning service (denormalised from the catalog).
    pub service: ServiceId,
    /// Index of the parent span within the trace, or [`ROOT_PARENT`].
    pub parent: u32,
    /// Cluster the client ran in.
    pub client_cluster: ClusterId,
    /// Cluster the server ran in.
    pub server_cluster: ClusterId,
    /// Start offset from the trace root's start, 100 ns units.
    start_ticks: u32,
    /// Per-component latency, 100 ns units, lifecycle order.
    components: [u32; 9],
    /// Request payload bytes (saturated).
    pub request_bytes: u32,
    /// Response payload bytes (saturated).
    pub response_bytes: u32,
    /// Server CPU kilocycles consumed (app + stack), or 0 if unannotated.
    pub kilocycles: u32,
    /// Error outcome, if any.
    pub error: Option<ErrorKind>,
    /// Whether this span was a hedge copy.
    pub hedged: bool,
    /// Whether this call was fire-and-forget (the parent did not block
    /// on it, so it may complete after the parent).
    pub detached: bool,
}

impl SpanRecord {
    /// Start offset from the trace root's start.
    pub fn start_offset(&self) -> SimDuration {
        from_ticks(self.start_ticks)
    }

    /// One component's latency.
    pub fn component(&self, c: LatencyComponent) -> SimDuration {
        let idx = LatencyComponent::ALL
            .iter()
            .position(|&x| x == c)
            .expect("component in ALL");
        from_ticks(self.components[idx])
    }

    /// The full latency breakdown (dequantized).
    pub fn breakdown(&self) -> LatencyBreakdown {
        let mut b = LatencyBreakdown::new();
        for (i, &c) in LatencyComponent::ALL.iter().enumerate() {
            b.set(c, from_ticks(self.components[i]));
        }
        b
    }

    /// RPC completion time (sum of all components).
    pub fn total_latency(&self) -> SimDuration {
        self.breakdown().total()
    }

    /// Whether this span is a root RPC.
    pub fn is_root(&self) -> bool {
        self.parent == ROOT_PARENT
    }

    /// Whether this span completed successfully.
    pub fn is_ok(&self) -> bool {
        self.error.is_none()
    }
}

/// Builder for a [`SpanRecord`].
#[derive(Debug, Clone)]
pub struct SpanBuilder {
    method: MethodId,
    service: ServiceId,
    parent: u32,
    client_cluster: ClusterId,
    server_cluster: ClusterId,
    start_offset: SimDuration,
    breakdown: LatencyBreakdown,
    request_bytes: u64,
    response_bytes: u64,
    cycles: u64,
    error: Option<ErrorKind>,
    hedged: bool,
    detached: bool,
}

impl SpanBuilder {
    /// Starts a builder for a call to `method` of `service` between two
    /// clusters.
    pub fn new(
        method: MethodId,
        service: ServiceId,
        client_cluster: ClusterId,
        server_cluster: ClusterId,
    ) -> Self {
        SpanBuilder {
            method,
            service,
            parent: ROOT_PARENT,
            client_cluster,
            server_cluster,
            start_offset: SimDuration::ZERO,
            breakdown: LatencyBreakdown::new(),
            request_bytes: 0,
            response_bytes: 0,
            cycles: 0,
            error: None,
            hedged: false,
            detached: false,
        }
    }

    /// Sets the parent span index within the trace.
    pub fn parent(mut self, parent_index: u32) -> Self {
        self.parent = parent_index;
        self
    }

    /// Sets the start offset from the trace root.
    pub fn start_offset(mut self, offset: SimDuration) -> Self {
        self.start_offset = offset;
        self
    }

    /// Sets the latency breakdown.
    pub fn breakdown(mut self, b: LatencyBreakdown) -> Self {
        self.breakdown = b;
        self
    }

    /// Sets request/response payload sizes.
    pub fn sizes(mut self, request_bytes: u64, response_bytes: u64) -> Self {
        self.request_bytes = request_bytes;
        self.response_bytes = response_bytes;
        self
    }

    /// Sets the server CPU cycles consumed.
    pub fn cycles(mut self, cycles: u64) -> Self {
        self.cycles = cycles;
        self
    }

    /// Marks the span as failed.
    pub fn error(mut self, kind: ErrorKind) -> Self {
        self.error = Some(kind);
        self
    }

    /// Marks the span as a hedge copy.
    pub fn hedged(mut self, hedged: bool) -> Self {
        self.hedged = hedged;
        self
    }

    /// Marks the span as fire-and-forget.
    pub fn detached(mut self, detached: bool) -> Self {
        self.detached = detached;
        self
    }

    /// Finalizes the record (quantizing durations and saturating sizes).
    pub fn build(self) -> SpanRecord {
        let mut components = [0u32; 9];
        for (i, &c) in LatencyComponent::ALL.iter().enumerate() {
            components[i] = to_ticks(self.breakdown.get(c));
        }
        SpanRecord {
            method: self.method,
            service: self.service,
            parent: self.parent,
            client_cluster: self.client_cluster,
            server_cluster: self.server_cluster,
            start_ticks: to_ticks(self.start_offset),
            components,
            request_bytes: self.request_bytes.min(u32::MAX as u64) as u32,
            response_bytes: self.response_bytes.min(u32::MAX as u64) as u32,
            kilocycles: (self.cycles / 1000).min(u32::MAX as u64) as u32,
            error: self.error,
            hedged: self.hedged,
            detached: self.detached,
        }
    }
}

/// A sampled RPC tree: the root's absolute start time plus all spans.
///
/// Span index 0 is always the root; children reference parents by index.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct TraceData {
    /// Absolute start time of the root RPC.
    pub root_start: SimTime,
    /// All spans, root first.
    pub spans: Vec<SpanRecord>,
}

impl TraceData {
    /// Creates a trace from its spans.
    ///
    /// A trace is normally a single tree, but hedged root calls make it a
    /// small forest: spans other than index 0 may also carry
    /// [`ROOT_PARENT`].
    ///
    /// # Panics
    ///
    /// Panics (in debug builds) if the first span is not a root or a
    /// parent index does not precede its child.
    pub fn new(root_start: SimTime, spans: Vec<SpanRecord>) -> Self {
        debug_assert!(!spans.is_empty(), "trace needs at least one span");
        debug_assert!(spans[0].is_root(), "span 0 must be the root");
        debug_assert!(
            spans
                .iter()
                .enumerate()
                .skip(1)
                .all(|(i, s)| s.is_root() || (s.parent as usize) < i),
            "parents must precede children"
        );
        TraceData { root_start, spans }
    }

    /// Number of spans (RPCs) in the tree.
    pub fn len(&self) -> usize {
        self.spans.len()
    }

    /// Whether the trace is empty (never true post-construction).
    pub fn is_empty(&self) -> bool {
        self.spans.is_empty()
    }

    /// The root span.
    pub fn root(&self) -> &SpanRecord {
        &self.spans[0]
    }

    /// The absolute start time of span `i`.
    pub fn span_start(&self, i: usize) -> SimTime {
        self.root_start + self.spans[i].start_offset()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cluster(n: u16) -> ClusterId {
        ClusterId(n)
    }

    fn simple_span() -> SpanRecord {
        let mut b = LatencyBreakdown::new();
        b.set(
            LatencyComponent::ServerApplication,
            SimDuration::from_millis(3),
        );
        b.set(
            LatencyComponent::RequestNetworkWire,
            SimDuration::from_micros(120),
        );
        SpanBuilder::new(MethodId(5), ServiceId(2), cluster(0), cluster(1))
            .breakdown(b)
            .sizes(1024, 2048)
            .cycles(9_000_000)
            .build()
    }

    #[test]
    fn builder_roundtrips_fields() {
        let s = simple_span();
        assert_eq!(s.method, MethodId(5));
        assert_eq!(s.service, ServiceId(2));
        assert!(s.is_root());
        assert!(s.is_ok());
        assert_eq!(s.request_bytes, 1024);
        assert_eq!(s.response_bytes, 2048);
        assert_eq!(s.kilocycles, 9_000);
        assert_eq!(
            s.component(LatencyComponent::ServerApplication),
            SimDuration::from_millis(3)
        );
        assert_eq!(
            s.component(LatencyComponent::RequestNetworkWire),
            SimDuration::from_micros(120)
        );
        assert_eq!(s.total_latency(), SimDuration::from_micros(3120));
    }

    #[test]
    fn quantization_error_is_sub_tick() {
        let mut b = LatencyBreakdown::new();
        b.set(
            LatencyComponent::ServerApplication,
            SimDuration::from_nanos(123_456_789),
        );
        let s = SpanBuilder::new(MethodId(0), ServiceId(0), cluster(0), cluster(0))
            .breakdown(b)
            .build();
        let back = s.component(LatencyComponent::ServerApplication).as_nanos();
        assert!(back.abs_diff(123_456_789) < 100, "quantized to {back}");
    }

    #[test]
    fn sizes_saturate_not_wrap() {
        let s = SpanBuilder::new(MethodId(0), ServiceId(0), cluster(0), cluster(0))
            .sizes(u64::MAX, 10)
            .cycles(u64::MAX)
            .build();
        assert_eq!(s.request_bytes, u32::MAX);
        assert_eq!(s.kilocycles, u32::MAX);
    }

    #[test]
    fn error_and_hedge_flags() {
        let s = SpanBuilder::new(MethodId(0), ServiceId(0), cluster(0), cluster(0))
            .error(ErrorKind::Cancelled)
            .hedged(true)
            .build();
        assert!(!s.is_ok());
        assert_eq!(s.error, Some(ErrorKind::Cancelled));
        assert!(s.hedged);
    }

    #[test]
    fn trace_links_spans_to_absolute_time() {
        let root = simple_span();
        let child = SpanBuilder::new(MethodId(6), ServiceId(2), cluster(1), cluster(1))
            .parent(0)
            .start_offset(SimDuration::from_micros(500))
            .build();
        let t = TraceData::new(SimTime::from_nanos(1_000_000_000), vec![root, child]);
        assert_eq!(t.len(), 2);
        assert_eq!(t.root().method, MethodId(5));
        assert_eq!(
            t.span_start(1),
            SimTime::from_nanos(1_000_000_000 + 500_000)
        );
    }

    #[test]
    #[should_panic(expected = "root")]
    #[cfg(debug_assertions)]
    fn non_root_first_span_panics() {
        let child = SpanBuilder::new(MethodId(0), ServiceId(0), cluster(0), cluster(0))
            .parent(0)
            .build();
        let _ = TraceData::new(SimTime::ZERO, vec![child]);
    }

    #[test]
    fn span_record_is_compact() {
        // The whole point of quantization: a span must stay well under
        // 100 bytes so fleet-scale runs fit in memory.
        assert!(
            std::mem::size_of::<SpanRecord>() <= 96,
            "SpanRecord is {} bytes",
            std::mem::size_of::<SpanRecord>()
        );
    }
}
