//! Shared extraction helpers used by the figure modules.

use rpclens_fleet::driver::FleetRun;
use rpclens_rpcstack::component::LatencyComponent;
use rpclens_simcore::stats::{percentile, sorted_finite, QuantileSummary};
use rpclens_trace::query::MethodQuery;
use rpclens_trace::span::{MethodId, SpanRecord, TraceData};
use serde::{Deserialize, Serialize};

/// One row of a per-method "heatmap": the method and its metric quantiles.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct MethodRow {
    /// The method.
    pub method: MethodId,
    /// Quantiles of the metric for this method.
    pub summary: QuantileSummary,
}

/// A per-method heatmap, sorted by the median of the metric — the layout
/// every per-method figure in the paper uses.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct MethodHeatmap {
    /// Rows in ascending median order.
    pub rows: Vec<MethodRow>,
}

impl MethodHeatmap {
    /// Builds a heatmap from per-method samples produced by `metric`.
    ///
    /// Methods failing the query's sample-count gate are skipped.
    pub fn build<F>(run: &FleetRun, query: &MethodQuery, metric: F) -> MethodHeatmap
    where
        F: Fn(&TraceData, &SpanRecord) -> f64,
    {
        let mut rows = Vec::new();
        for (method, _) in query.eligible_methods(&run.store) {
            if let Some(samples) = query.samples(&run.store, method, &metric) {
                if let Some(summary) = QuantileSummary::from_samples(samples) {
                    rows.push(MethodRow { method, summary });
                }
            }
        }
        rows.sort_by(|a, b| a.summary.p50.partial_cmp(&b.summary.p50).expect("finite"));
        MethodHeatmap { rows }
    }

    /// Builds a heatmap from precomputed per-method sample vectors.
    ///
    /// Input order does not matter: rows are keyed by method id before the
    /// median sort, so callers may pass samples straight out of a hash map
    /// and still get a deterministic layout.
    pub fn from_samples(samples: Vec<(MethodId, Vec<f64>)>, min_samples: usize) -> MethodHeatmap {
        let mut samples = samples;
        samples.sort_by_key(|(method, _)| *method);
        let mut rows = Vec::new();
        for (method, values) in samples {
            if values.len() < min_samples {
                continue;
            }
            if let Some(summary) = QuantileSummary::from_samples(values) {
                rows.push(MethodRow { method, summary });
            }
        }
        rows.sort_by(|a, b| a.summary.p50.partial_cmp(&b.summary.p50).expect("finite"));
        MethodHeatmap { rows }
    }

    /// Number of methods.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Whether the heatmap is empty.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// The distribution, across methods, of one per-method quantile
    /// (`q` must be one of the stored levels). This is the "CDF" panel of
    /// the paper's per-method figures.
    pub fn across_methods(&self, q: f64) -> Vec<f64> {
        sorted_finite(
            self.rows
                .iter()
                .filter_map(|r| r.summary.get(q))
                .collect::<Vec<f64>>(),
        )
    }

    /// The fraction of methods whose quantile `q` satisfies `pred`.
    pub fn fraction_where<F: Fn(f64) -> bool>(&self, q: f64, pred: F) -> f64 {
        if self.rows.is_empty() {
            return f64::NAN;
        }
        let n = self
            .rows
            .iter()
            .filter(|r| r.summary.get(q).map(&pred).unwrap_or(false))
            .count();
        n as f64 / self.rows.len() as f64
    }

    /// The value of quantile `inner` at position `outer` across methods
    /// (e.g. "the P99 latency of the method at the 10th percentile of
    /// methods").
    pub fn quantile_of_quantiles(&self, inner: f64, outer: f64) -> Option<f64> {
        let v = self.across_methods(inner);
        percentile(&v, outer)
    }
}

/// Sums a group of latency components for a span, in seconds.
pub fn component_sum_secs(span: &SpanRecord, components: &[LatencyComponent]) -> f64 {
    components
        .iter()
        .map(|&c| span.component(c).as_secs_f64())
        .sum()
}

/// The default per-method query used by the paper's analyses.
pub fn paper_query() -> MethodQuery {
    MethodQuery::default()
}

/// Collects `(total_latency_secs, span)` over all OK spans in the store.
pub fn all_ok_spans(run: &FleetRun) -> Vec<(f64, &SpanRecord)> {
    let mut out = Vec::new();
    for trace in run.store.traces() {
        for span in &trace.spans {
            if span.is_ok() {
                out.push((span.total_latency().as_secs_f64(), span));
            }
        }
    }
    out
}

#[cfg(test)]
pub(crate) mod testrun {
    //! A single shared small fleet run for the analysis tests: the
    //! simulation is deterministic, so one instance serves every module.

    use rpclens_fleet::driver::{run_fleet, FleetConfig, FleetRun, SimScale};
    use rpclens_simcore::time::SimDuration;
    use std::sync::OnceLock;

    static RUN: OnceLock<FleetRun> = OnceLock::new();

    /// The shared test run (~400 methods, 20k roots).
    pub fn shared() -> &'static FleetRun {
        RUN.get_or_init(|| {
            let scale = SimScale {
                name: "core-test",
                total_methods: 2_000,
                roots: 60_000,
                duration: SimDuration::from_hours(24),
                trace_sample_rate: 1,
                profiler_sample_cap: 10_000,
                seed: 7,
            };
            run_fleet(FleetConfig::at_scale(scale))
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use common_tests::*;

    mod common_tests {
        pub use super::super::testrun::shared;
    }

    #[test]
    fn heatmap_is_sorted_by_median() {
        let run = shared();
        let q = paper_query();
        let hm = MethodHeatmap::build(run, &q, |_, s| s.total_latency().as_secs_f64());
        assert!(hm.len() > 30, "{} methods", hm.len());
        assert!(hm
            .rows
            .windows(2)
            .all(|w| w[0].summary.p50 <= w[1].summary.p50));
    }

    #[test]
    fn across_methods_matches_rows() {
        let run = shared();
        let q = paper_query();
        let hm = MethodHeatmap::build(run, &q, |_, s| s.total_latency().as_secs_f64());
        let medians = hm.across_methods(0.5);
        assert_eq!(medians.len(), hm.len());
        // Sorted output.
        assert!(medians.windows(2).all(|w| w[0] <= w[1]));
    }

    #[test]
    fn fraction_where_counts_correctly() {
        let hm = MethodHeatmap::from_samples(
            vec![
                (rpclens_trace::span::MethodId(0), vec![1.0; 200]),
                (rpclens_trace::span::MethodId(1), vec![10.0; 200]),
            ],
            100,
        );
        assert_eq!(hm.len(), 2);
        assert_eq!(hm.fraction_where(0.5, |v| v > 5.0), 0.5);
        assert_eq!(hm.fraction_where(0.5, |v| v > 0.0), 1.0);
    }

    #[test]
    fn from_samples_enforces_min() {
        let hm = MethodHeatmap::from_samples(
            vec![(rpclens_trace::span::MethodId(0), vec![1.0; 5])],
            100,
        );
        assert!(hm.is_empty());
    }

    #[test]
    fn all_ok_spans_excludes_errors() {
        let run = shared();
        let spans = all_ok_spans(run);
        assert!(!spans.is_empty());
        assert!(spans.iter().all(|(_, s)| s.is_ok()));
        assert!((spans.len() as u64) < run.total_spans);
    }
}
