//! Table 1: the eight RPC services selected for in-depth study.

use crate::check::ExpectationSet;
use crate::render::TextTable;
use rpclens_fleet::driver::FleetRun;

/// Renders the table with measured request-size medians next to the
/// paper's nominal sizes.
pub fn render(run: &FleetRun) -> String {
    let mut t = TextTable::new(&[
        "category",
        "server",
        "client",
        "RPC size (paper)",
        "measured median req",
        "description",
    ]);
    let query = rpclens_trace::query::MethodQuery::default();
    for entry in run.catalog.table1() {
        let measured = query
            .samples(&run.store, entry.method, |_, s| s.request_bytes as f64)
            .and_then(rpclens_simcore::stats::QuantileSummary::from_samples)
            .map(|s| crate::render::fmt_bytes(s.p50))
            .unwrap_or_else(|| "n/a".to_string());
        t.row(vec![
            entry.category.to_string(),
            entry.server.to_string(),
            entry.client.to_string(),
            entry.rpc_size.to_string(),
            measured,
            entry.description.to_string(),
        ]);
    }
    format!("Table 1 — RPC services in this study\n{}", t.render())
}

/// Checks that the pinned catalog honours the table.
pub fn checks(run: &FleetRun) -> ExpectationSet {
    let mut s = ExpectationSet::new();
    s.add(
        "table1.rows",
        "eight services studied",
        run.catalog.table1().len() as f64,
        8.0,
        8.0,
    );
    // Measured request medians within ~4x of the table's nominal sizes.
    let query = rpclens_trace::query::MethodQuery::default();
    for entry in run.catalog.table1() {
        let nominal: f64 = match entry.rpc_size {
            "1 kB" => 1024.0,
            "32 kB" => 32.0 * 1024.0,
            "400 B" => 400.0,
            "800 B" => 800.0,
            "75 B" => 75.0,
            "512 B" => 512.0,
            "128 B" => 128.0,
            other => panic!("unknown nominal size {other}"),
        };
        // The table's "RPC size" names one payload direction without
        // saying which (a read's response, a write's request); compare
        // against whichever measured direction matches better.
        let req = query
            .samples(&run.store, entry.method, |_, sp| sp.request_bytes as f64)
            .and_then(rpclens_simcore::stats::QuantileSummary::from_samples);
        let resp = query
            .samples(&run.store, entry.method, |_, sp| sp.response_bytes as f64)
            .and_then(rpclens_simcore::stats::QuantileSummary::from_samples);
        if let (Some(req), Some(resp)) = (req, resp) {
            let r1 = req.p50 / nominal;
            let r2 = resp.p50 / nominal;
            let best = if r1.ln().abs() <= r2.ln().abs() {
                r1
            } else {
                r2
            };
            s.add(
                &format!("table1.{}_size", entry.server.replace(' ', "_")),
                "one measured payload direction within ~4x of the table's nominal size",
                best,
                0.25,
                6.0,
            );
        }
    }
    s
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::common::testrun::shared;

    #[test]
    fn checks_pass_on_test_run() {
        let c = checks(shared());
        assert!(c.all_passed(), "{c}");
    }

    #[test]
    fn render_contains_all_servers() {
        let text = render(shared());
        for server in [
            "Bigtable",
            "Network Disk",
            "SSD cache",
            "Video Metadata",
            "Spanner",
            "F1",
            "ML Inference",
            "KV-Store",
        ] {
            assert!(text.contains(server), "missing {server}");
        }
    }
}
