/root/repo/target/debug/examples/callgraph_shapes-dff5fa7f57e44928.d: examples/callgraph_shapes.rs

/root/repo/target/debug/examples/callgraph_shapes-dff5fa7f57e44928: examples/callgraph_shapes.rs

examples/callgraph_shapes.rs:
