/root/repo/target/debug/deps/trace_export-7491b19658f1818f.d: tests/trace_export.rs Cargo.toml

/root/repo/target/debug/deps/libtrace_export-7491b19658f1818f.rmeta: tests/trace_export.rs Cargo.toml

tests/trace_export.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
