//! An in-memory time-series monitoring database (Monarch-like).
//!
//! The paper's longitudinal results (Fig. 1's 700-day growth curve,
//! Fig. 18's 24-hour covariation) come from a monitoring database that
//! samples application-exported metrics on a fixed cadence with per-metric
//! retention. This crate implements that substrate:
//!
//! - [`metric`]: metric kinds (counter, gauge, distribution), label sets,
//!   and descriptors with retention policies.
//! - [`store`]: the time-series store with aligned sampling windows,
//!   retention enforcement, and downsampling.
//! - [`query`]: selection by name/label, rate computation for counters,
//!   alignment, and grouped aggregation.

pub mod metric;
pub mod query;
pub mod store;

/// Convenience re-exports of the most commonly used tsdb types.
pub mod tsdb_prelude {
    pub use crate::{
        metric::{Labels, MetricDescriptor, MetricKind, MetricValue},
        query::{LabelFilter, QueryEngine},
        store::{Series, TimeSeriesDb},
    };
}

/// The default sampling cadence used fleet-wide (the paper's metrics are
/// sampled every 30 minutes).
pub const DEFAULT_SAMPLE_PERIOD: rpclens_simcore::time::SimDuration =
    rpclens_simcore::time::SimDuration::from_mins(30);
