/root/repo/target/debug/deps/rpclens_fleet-58f712ddb3929ed7.d: crates/fleet/src/lib.rs crates/fleet/src/baselines.rs crates/fleet/src/catalog.rs crates/fleet/src/driver.rs crates/fleet/src/growth.rs crates/fleet/src/workload.rs

/root/repo/target/debug/deps/librpclens_fleet-58f712ddb3929ed7.rlib: crates/fleet/src/lib.rs crates/fleet/src/baselines.rs crates/fleet/src/catalog.rs crates/fleet/src/driver.rs crates/fleet/src/growth.rs crates/fleet/src/workload.rs

/root/repo/target/debug/deps/librpclens_fleet-58f712ddb3929ed7.rmeta: crates/fleet/src/lib.rs crates/fleet/src/baselines.rs crates/fleet/src/catalog.rs crates/fleet/src/driver.rs crates/fleet/src/growth.rs crates/fleet/src/workload.rs

crates/fleet/src/lib.rs:
crates/fleet/src/baselines.rs:
crates/fleet/src/catalog.rs:
crates/fleet/src/driver.rs:
crates/fleet/src/growth.rs:
crates/fleet/src/workload.rs:
