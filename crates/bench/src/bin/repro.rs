//! `repro` — regenerate every table and figure of the paper.
//!
//! ```text
//! repro all [--scale smoke|default|paper|fleet] [--seed N] [--shards N] [--threads N] [--out DIR]
//! repro fig12 fig13 table1 ... [--faults none|chaos-smoke|partition|overload-collapse]
//! repro list
//! ```
//!
//! With `--out DIR`, each artifact's rendered text is also written to
//! `DIR/<artifact>.txt`.
//!
//! Observability outputs (each may be given without any artifact — the
//! fleet still runs once and only these are produced):
//!
//! - `--telemetry FILE` writes the versioned run manifest as JSON; its
//!   `deterministic` section is byte-identical for a given seed+scale
//!   regardless of `--shards`.
//! - `--baseline FILE` reads a manifest from a previous `--telemetry`
//!   run and checks the current tail latency against it.
//! - `--export-store FILE` persists the sampled traces in the binary
//!   trace-export format for later `rpclens-inspect` queries.
//!
//! `--progress` streams per-shard completion lines to stderr (cumulative
//! roots/s and spans/s) while the fleet runs. Progress output never
//! feeds an artifact, so every digest is unaffected.
//!
//! `--shards N` splits the root workload into N deterministic chunks and
//! `--threads N` sets the worker-pool width they execute on (default for
//! both: one per available core). Both are pure wall-clock knobs —
//! every output is bit-identical at any combination. The `fleet` scale
//! (2M roots over the full catalog, 1-in-1024 trace retention) is sized
//! for multi-core runs; see `docs/PERFORMANCE.md`.
//!
//! `--faults PRESET` runs the fleet under a named fault scenario (see
//! `docs/ROBUSTNESS.md`). The default `none` keeps the run byte-identical
//! to a build without the fault plane; any other preset switches the
//! error model to causal injection, adds the `robustness` section to the
//! manifest, and swaps the Fig. 23 checks for their causal
//! reconciliation variant.
//!
//! `--ablate retry-budget` runs the selected fault scenario twice — with
//! the per-trace retry budget enforcing its ratio and with it disabled —
//! and prints the retry amplification of each arm. It needs no artifact:
//! `repro --faults overload-collapse --ablate retry-budget` is a
//! complete invocation.
//!
//! Each artifact prints its rendered data followed by the
//! paper-vs-measured expectation checks. The process exits non-zero if
//! any check misses, so CI can gate on shape fidelity.

use rpclens_bench::ablation::{render_retry_budget, run_retry_budget_ablation};
use rpclens_bench::{produce, run_configured_opts, scale_by_name, Artifact};
use rpclens_core::figs::fig23;
use rpclens_fleet::driver::SimScale;
use rpclens_fleet::faults::FaultScenario;
use rpclens_fleet::telemetry::{detector_bands, manifest_for_run, slo_findings};
use rpclens_obs::detect::render_findings;
use rpclens_obs::RunManifest;

fn usage() -> ! {
    eprintln!(
        "usage: repro <artifact>... | all | list  [--scale smoke|default|paper|fleet] [--seed N]\n\
         \x20      [--shards N] [--threads N] [--progress]\n\
         \x20      [--faults {}] [--ablate retry-budget]\n\
         \x20      [--out DIR] [--telemetry FILE] [--baseline FILE] [--export-store FILE]\n\
         artifacts: {}",
        FaultScenario::PRESETS.join("|"),
        Artifact::ALL
            .iter()
            .map(|a| a.name())
            .collect::<Vec<_>>()
            .join(" ")
    );
    std::process::exit(2);
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.is_empty() {
        usage();
    }
    let mut scale = SimScale::default_scale();
    let mut faults = FaultScenario::none();
    let mut shards: Option<usize> = None;
    let mut threads: Option<usize> = None;
    let mut out_dir: Option<std::path::PathBuf> = None;
    let mut telemetry_path: Option<std::path::PathBuf> = None;
    let mut baseline_path: Option<std::path::PathBuf> = None;
    let mut export_path: Option<std::path::PathBuf> = None;
    let mut progress = false;
    let mut ablate_retry_budget = false;
    let mut artifacts: Vec<Artifact> = Vec::new();
    let mut iter = args.iter().peekable();
    while let Some(arg) = iter.next() {
        match arg.as_str() {
            "--scale" => {
                let Some(name) = iter.next() else { usage() };
                let Some(s) = scale_by_name(name) else {
                    eprintln!("unknown scale {name}");
                    usage();
                };
                scale = s;
            }
            "--seed" => {
                let Some(seed) = iter.next().and_then(|s| s.parse().ok()) else {
                    usage()
                };
                scale.seed = seed;
            }
            "--shards" => {
                let Some(n) = iter.next().and_then(|s| s.parse().ok()) else {
                    usage()
                };
                shards = Some(n);
            }
            "--threads" => {
                let Some(n) = iter.next().and_then(|s| s.parse().ok()) else {
                    usage()
                };
                threads = Some(n);
            }
            "--faults" => {
                let Some(name) = iter.next() else { usage() };
                let Some(scenario) = FaultScenario::by_name(name) else {
                    eprintln!("unknown fault scenario {name}");
                    usage();
                };
                faults = scenario;
            }
            "--out" => {
                let Some(dir) = iter.next() else { usage() };
                out_dir = Some(std::path::PathBuf::from(dir));
            }
            "--telemetry" => {
                let Some(path) = iter.next() else { usage() };
                telemetry_path = Some(std::path::PathBuf::from(path));
            }
            "--baseline" => {
                let Some(path) = iter.next() else { usage() };
                baseline_path = Some(std::path::PathBuf::from(path));
            }
            "--export-store" => {
                let Some(path) = iter.next() else { usage() };
                export_path = Some(std::path::PathBuf::from(path));
            }
            "--ablate" => {
                let Some(name) = iter.next() else { usage() };
                if name != "retry-budget" {
                    eprintln!("unknown ablation {name} (repro only runs retry-budget; see `ablate` for the others)");
                    usage();
                }
                ablate_retry_budget = true;
            }
            "--progress" => progress = true,
            "all" => artifacts.extend(Artifact::ALL),
            "list" => {
                for a in Artifact::ALL {
                    println!("{}", a.name());
                }
                return;
            }
            name => match Artifact::parse(name) {
                Some(a) => artifacts.push(a),
                None => {
                    eprintln!("unknown artifact {name}");
                    usage();
                }
            },
        }
    }
    let observability_only =
        telemetry_path.is_some() || baseline_path.is_some() || export_path.is_some();
    if artifacts.is_empty() && !observability_only && !ablate_retry_budget {
        usage();
    }

    if ablate_retry_budget {
        eprintln!(
            "running retry-budget ablation: scale={} faults={} (two fleet runs)",
            scale.name, faults.name
        );
        let r = run_retry_budget_ablation(&scale, faults);
        println!("{}", render_retry_budget(&r));
        if artifacts.is_empty() && !observability_only {
            return;
        }
    }

    let baseline: Option<RunManifest> = baseline_path.map(|path| {
        let text = std::fs::read_to_string(&path)
            .unwrap_or_else(|e| panic!("read baseline {}: {e}", path.display()));
        RunManifest::parse(&text)
            .unwrap_or_else(|e| panic!("invalid baseline {}: {e}", path.display()))
    });

    let needs_run = observability_only || artifacts.iter().any(|a| a.needs_run());
    let run = if needs_run {
        eprintln!(
            "running fleet simulation: scale={} methods={} roots={} seed={} faults={}",
            scale.name, scale.total_methods, scale.roots, scale.seed, faults.name
        );
        let t0 = std::time::Instant::now();
        let run = run_configured_opts(scale, shards, threads, faults, progress);
        eprintln!(
            "simulated {} spans in {} traces ({:.1}s)",
            run.total_spans,
            run.store.len(),
            t0.elapsed().as_secs_f64()
        );
        Some(run)
    } else {
        None
    };

    let mut total = 0;
    let mut passed = 0;
    if let Some(run) = &run {
        if let Some(path) = &telemetry_path {
            let manifest = manifest_for_run(run);
            std::fs::write(path, manifest.to_json_string())
                .unwrap_or_else(|e| panic!("write telemetry {}: {e}", path.display()));
            eprintln!("wrote run manifest to {}", path.display());
        }
        if let Some(path) = &export_path {
            let bytes = rpclens_trace::export::export(&run.store);
            std::fs::write(path, &bytes)
                .unwrap_or_else(|e| panic!("write trace export {}: {e}", path.display()));
            eprintln!(
                "wrote {} traces ({} bytes) to {}",
                run.store.len(),
                bytes.len(),
                path.display()
            );
        }
        // End-of-run SLO report: error-budget burn always, plus tail
        // regression when a baseline manifest was supplied. Detector
        // bands are scaled to the preset so sparse smoke-scale windows
        // don't page on binomial sampling noise.
        let (slo, tail_tolerance) = detector_bands(&run.config.scale);
        let findings = slo_findings(run, baseline.as_ref(), &slo, tail_tolerance);
        println!("{}", render_findings(&findings));
        // The default chaos scenario must still reconcile with the
        // Fig. 23 taxonomy: the causal variant of the checks gates every
        // such invocation, artifact or not. Stress presets (`partition`,
        // `overload-collapse`) intentionally deviate and are exempt.
        if faults.reconciles_taxonomy() {
            let fig = fig23::compute(run);
            let causal = fig23::causal_checks(&fig);
            println!("{causal}");
            total += causal.items.len();
            passed += causal.passed();
        }
    }

    if let Some(dir) = &out_dir {
        std::fs::create_dir_all(dir).expect("create output directory");
    }
    for artifact in artifacts {
        // Under a causal fault scenario the static Fig. 23 bands no
        // longer apply; the reconciliation variant replaces them for the
        // default chaos preset, and stress presets render the figure
        // without expectations (their taxonomies deviate by design).
        let (text, checks) = if artifact == Artifact::Fig23 && faults.name != "none" {
            let fig = fig23::compute(run.as_ref().expect("fig23 needs a fleet run"));
            let checks = if faults.reconciles_taxonomy() {
                fig23::causal_checks(&fig)
            } else {
                rpclens_core::check::ExpectationSet::new()
            };
            (fig23::render(&fig), checks)
        } else {
            produce(artifact, run.as_ref())
        };
        if let Some(dir) = &out_dir {
            let path = dir.join(format!("{}.txt", artifact.name()));
            std::fs::write(
                &path,
                format!(
                    "{text}
{checks}
"
                ),
            )
            .expect("write artifact file");
        }
        println!("{}", "=".repeat(72));
        println!("{text}");
        if !checks.items.is_empty() {
            println!("{checks}");
        }
        total += checks.items.len();
        passed += checks.passed();
    }
    println!("{}", "=".repeat(72));
    println!("TOTAL: {passed}/{total} paper-shape checks passed");
    if passed != total {
        std::process::exit(1);
    }
}
