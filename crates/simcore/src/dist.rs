//! Parametric distributions for workload and cost modelling.
//!
//! The fleet model needs heavy-tailed distributions whose quantiles can be
//! set analytically, because the catalog generator calibrates per-method
//! medians and tail ratios to the statistics published in the paper. All
//! constructors are fallible and reject non-finite or out-of-domain
//! parameters.

use crate::rng::Prng;
use std::fmt;

/// Error returned when a distribution is constructed with invalid
/// parameters.
#[derive(Debug, Clone, PartialEq)]
pub struct DistError {
    what: &'static str,
}

impl DistError {
    fn new(what: &'static str) -> Self {
        DistError { what }
    }
}

impl fmt::Display for DistError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid distribution parameter: {}", self.what)
    }
}

impl std::error::Error for DistError {}

/// A distribution over `f64` that can be sampled with a [`Prng`].
pub trait Sample: Send + Sync + fmt::Debug {
    /// Draws one sample.
    fn sample(&self, rng: &mut Prng) -> f64;

    /// The distribution mean, if it exists and is finite.
    fn mean(&self) -> Option<f64> {
        None
    }
}

/// A point mass: always returns the same value.
#[derive(Debug, Clone, Copy)]
pub struct Constant(pub f64);

impl Sample for Constant {
    fn sample(&self, _rng: &mut Prng) -> f64 {
        self.0
    }

    fn mean(&self) -> Option<f64> {
        Some(self.0)
    }
}

/// Uniform distribution on `[lo, hi)`.
#[derive(Debug, Clone, Copy)]
pub struct Uniform {
    lo: f64,
    hi: f64,
}

impl Uniform {
    /// Creates a uniform distribution on `[lo, hi)`.
    ///
    /// # Errors
    ///
    /// Returns an error if the bounds are non-finite or `lo >= hi`.
    pub fn new(lo: f64, hi: f64) -> Result<Self, DistError> {
        if !lo.is_finite() || !hi.is_finite() || lo >= hi {
            return Err(DistError::new("uniform bounds"));
        }
        Ok(Uniform { lo, hi })
    }
}

impl Sample for Uniform {
    fn sample(&self, rng: &mut Prng) -> f64 {
        self.lo + (self.hi - self.lo) * rng.next_f64()
    }

    fn mean(&self) -> Option<f64> {
        Some(0.5 * (self.lo + self.hi))
    }
}

/// Exponential distribution with the given rate (1 / mean).
#[derive(Debug, Clone, Copy)]
pub struct Exponential {
    rate: f64,
}

impl Exponential {
    /// Creates an exponential distribution with rate `rate`.
    ///
    /// # Errors
    ///
    /// Returns an error unless `rate` is finite and positive.
    pub fn new(rate: f64) -> Result<Self, DistError> {
        if !rate.is_finite() || rate <= 0.0 {
            return Err(DistError::new("exponential rate"));
        }
        Ok(Exponential { rate })
    }

    /// Creates an exponential distribution with the given mean.
    ///
    /// # Errors
    ///
    /// Returns an error unless `mean` is finite and positive.
    pub fn from_mean(mean: f64) -> Result<Self, DistError> {
        if !mean.is_finite() || mean <= 0.0 {
            return Err(DistError::new("exponential mean"));
        }
        Self::new(1.0 / mean)
    }
}

impl Sample for Exponential {
    fn sample(&self, rng: &mut Prng) -> f64 {
        -rng.next_f64_open().ln() / self.rate
    }

    fn mean(&self) -> Option<f64> {
        Some(1.0 / self.rate)
    }
}

/// Log-normal distribution parameterised by `mu`/`sigma` of the underlying
/// normal.
///
/// The median is `exp(mu)` and quantile `q` is
/// `exp(mu + sigma * Phi^-1(q))`, which makes tail calibration direct: a
/// method whose P99/median latency ratio should be `r` uses
/// `sigma = ln(r) / 2.326`.
#[derive(Debug, Clone, Copy)]
pub struct LogNormal {
    mu: f64,
    sigma: f64,
}

impl LogNormal {
    /// Creates a log-normal from the underlying normal's `mu` and `sigma`.
    ///
    /// # Errors
    ///
    /// Returns an error if `mu` is non-finite or `sigma` is negative or
    /// non-finite.
    pub fn new(mu: f64, sigma: f64) -> Result<Self, DistError> {
        if !mu.is_finite() || !sigma.is_finite() || sigma < 0.0 {
            return Err(DistError::new("lognormal mu/sigma"));
        }
        Ok(LogNormal { mu, sigma })
    }

    /// Creates a log-normal with the given median (`exp(mu)`) and `sigma`.
    ///
    /// # Errors
    ///
    /// Returns an error unless `median` is finite and positive and `sigma`
    /// is finite and non-negative.
    pub fn from_median_sigma(median: f64, sigma: f64) -> Result<Self, DistError> {
        if !median.is_finite() || median <= 0.0 {
            return Err(DistError::new("lognormal median"));
        }
        Self::new(median.ln(), sigma)
    }

    /// The distribution median.
    pub fn median(&self) -> f64 {
        self.mu.exp()
    }

    /// The `sigma` of the underlying normal.
    pub fn sigma(&self) -> f64 {
        self.sigma
    }

    /// The analytic quantile function.
    pub fn quantile(&self, q: f64) -> f64 {
        (self.mu + self.sigma * inverse_normal_cdf(q)).exp()
    }
}

impl Sample for LogNormal {
    fn sample(&self, rng: &mut Prng) -> f64 {
        (self.mu + self.sigma * rng.next_gaussian()).exp()
    }

    fn mean(&self) -> Option<f64> {
        Some((self.mu + 0.5 * self.sigma * self.sigma).exp())
    }
}

/// Pareto distribution with scale `x_min` and shape `alpha`.
#[derive(Debug, Clone, Copy)]
pub struct Pareto {
    x_min: f64,
    alpha: f64,
}

impl Pareto {
    /// Creates a Pareto distribution.
    ///
    /// # Errors
    ///
    /// Returns an error unless both parameters are finite and positive.
    pub fn new(x_min: f64, alpha: f64) -> Result<Self, DistError> {
        if !x_min.is_finite() || x_min <= 0.0 || !alpha.is_finite() || alpha <= 0.0 {
            return Err(DistError::new("pareto x_min/alpha"));
        }
        Ok(Pareto { x_min, alpha })
    }
}

impl Sample for Pareto {
    fn sample(&self, rng: &mut Prng) -> f64 {
        self.x_min / rng.next_f64_open().powf(1.0 / self.alpha)
    }

    fn mean(&self) -> Option<f64> {
        (self.alpha > 1.0).then(|| self.alpha * self.x_min / (self.alpha - 1.0))
    }
}

/// Pareto distribution truncated at `x_max` (inverse-CDF sampling), used for
/// fan-out counts and message sizes where a physical cap exists.
#[derive(Debug, Clone, Copy)]
pub struct BoundedPareto {
    x_min: f64,
    x_max: f64,
    alpha: f64,
}

impl BoundedPareto {
    /// Creates a bounded Pareto distribution on `[x_min, x_max]`.
    ///
    /// # Errors
    ///
    /// Returns an error unless `0 < x_min < x_max` and `alpha > 0`, all
    /// finite.
    pub fn new(x_min: f64, x_max: f64, alpha: f64) -> Result<Self, DistError> {
        if !x_min.is_finite() || !x_max.is_finite() || !alpha.is_finite() {
            return Err(DistError::new("bounded pareto finiteness"));
        }
        if x_min <= 0.0 || x_max <= x_min || alpha <= 0.0 {
            return Err(DistError::new("bounded pareto domain"));
        }
        Ok(BoundedPareto {
            x_min,
            x_max,
            alpha,
        })
    }
}

impl Sample for BoundedPareto {
    fn sample(&self, rng: &mut Prng) -> f64 {
        let u = rng.next_f64();
        let la = self.x_min.powf(self.alpha);
        let ha = self.x_max.powf(self.alpha);
        // Inverse CDF of the truncated Pareto.
        (-(u * ha - u * la - ha) / (ha * la)).powf(-1.0 / self.alpha)
    }
}

/// Weibull distribution with scale `lambda` and shape `k`.
///
/// `k < 1` gives a heavier-than-exponential tail, a good fit for service
/// times with occasional very slow requests.
#[derive(Debug, Clone, Copy)]
pub struct Weibull {
    lambda: f64,
    k: f64,
}

impl Weibull {
    /// Creates a Weibull distribution.
    ///
    /// # Errors
    ///
    /// Returns an error unless both parameters are finite and positive.
    pub fn new(lambda: f64, k: f64) -> Result<Self, DistError> {
        if !lambda.is_finite() || lambda <= 0.0 || !k.is_finite() || k <= 0.0 {
            return Err(DistError::new("weibull lambda/k"));
        }
        Ok(Weibull { lambda, k })
    }
}

impl Sample for Weibull {
    fn sample(&self, rng: &mut Prng) -> f64 {
        self.lambda * (-rng.next_f64_open().ln()).powf(1.0 / self.k)
    }
}

/// Adds a constant offset to another distribution's samples.
#[derive(Debug)]
pub struct Shifted<D> {
    inner: D,
    offset: f64,
}

impl<D: Sample> Shifted<D> {
    /// Wraps `inner`, adding `offset` to every sample.
    pub fn new(inner: D, offset: f64) -> Self {
        Shifted { inner, offset }
    }
}

impl<D: Sample> Sample for Shifted<D> {
    fn sample(&self, rng: &mut Prng) -> f64 {
        self.inner.sample(rng) + self.offset
    }

    fn mean(&self) -> Option<f64> {
        self.inner.mean().map(|m| m + self.offset)
    }
}

/// A finite mixture of component distributions with given weights.
///
/// Mixtures let the catalog model bimodal behaviour, e.g. a database method
/// that executes either a cheap point lookup or an expensive scan
/// (the paper's F1 observation, §3.3.1).
#[derive(Debug)]
pub struct Mixture {
    components: Vec<Box<dyn Sample>>,
    cumulative: Vec<f64>,
}

impl Mixture {
    /// Creates a mixture from `(weight, component)` pairs.
    ///
    /// Weights are normalised internally.
    ///
    /// # Errors
    ///
    /// Returns an error if no components are given, or any weight is
    /// negative/non-finite, or all weights are zero.
    pub fn new(parts: Vec<(f64, Box<dyn Sample>)>) -> Result<Self, DistError> {
        if parts.is_empty() {
            return Err(DistError::new("mixture needs at least one component"));
        }
        let total: f64 = parts.iter().map(|(w, _)| *w).sum();
        if !total.is_finite() || total <= 0.0 || parts.iter().any(|(w, _)| *w < 0.0) {
            return Err(DistError::new("mixture weights"));
        }
        let mut cumulative = Vec::with_capacity(parts.len());
        let mut components = Vec::with_capacity(parts.len());
        let mut acc = 0.0;
        for (w, c) in parts {
            acc += w / total;
            cumulative.push(acc);
            components.push(c);
        }
        // Guard against floating point slack at the top.
        if let Some(last) = cumulative.last_mut() {
            *last = 1.0;
        }
        Ok(Mixture {
            components,
            cumulative,
        })
    }
}

impl Sample for Mixture {
    fn sample(&self, rng: &mut Prng) -> f64 {
        let u = rng.next_f64();
        let idx = self
            .cumulative
            .partition_point(|&c| c <= u)
            .min(self.components.len() - 1);
        self.components[idx].sample(rng)
    }
}

/// A log-normal sampler that trades two Box-Muller draws for one uniform
/// draw and a table interpolation.
///
/// The table holds the analytic quantile function evaluated on a uniform
/// grid over `(0, 1)`; sampling draws one uniform, scales it into the
/// grid, and interpolates linearly between neighbouring quantiles. With
/// 1024 cells the relative error against the exact quantile stays below
/// ~1% through the P99.9 region for the sigmas the catalog uses.
///
/// **Not part of the driver's determinism contract.** The fleet driver's
/// golden digest pins the exact Box-Muller draw sequence of
/// [`LogNormal::sample`] (two uniforms per gaussian); this sampler
/// consumes one uniform and produces different (equally distributed)
/// values, so wiring it into the simulated hot path would change every
/// trace byte. It exists for consumers outside that contract — synthetic
/// load generation, calibration sweeps — where throughput matters and
/// bit-compatibility with the driver does not. See
/// `docs/PERFORMANCE.md`.
#[derive(Debug, Clone)]
pub struct QuantizedLogNormal {
    /// `quantiles[i]` is the analytic quantile at `(i + 0.5) / cells`...
    /// extended by half a cell at each end so interpolation never leaves
    /// the table.
    quantiles: Vec<f64>,
    source: LogNormal,
}

impl QuantizedLogNormal {
    /// Default table resolution: fine enough that interpolation error is
    /// far below the sampling noise of any realistic experiment.
    pub const DEFAULT_CELLS: usize = 1024;

    /// Tabulates `source` at [`QuantizedLogNormal::DEFAULT_CELLS`]
    /// resolution.
    pub fn new(source: LogNormal) -> Self {
        Self::with_cells(source, Self::DEFAULT_CELLS)
    }

    /// Tabulates `source` with `cells` grid cells.
    ///
    /// # Panics
    ///
    /// Panics if `cells < 2`.
    pub fn with_cells(source: LogNormal, cells: usize) -> Self {
        assert!(cells >= 2, "need at least 2 grid cells, got {cells}");
        // Node i sits at probability (i + 0.5) / (cells + 1) shifted so
        // the end nodes stay strictly inside (0, 1): the table clamps
        // the extreme tails to roughly the P(0.05%) .. P(99.95%) band
        // at the default resolution.
        let n = cells + 1;
        let quantiles = (0..n)
            .map(|i| source.quantile((i as f64 + 0.5) / n as f64))
            .collect();
        QuantizedLogNormal { quantiles, source }
    }

    /// The tabulated source distribution.
    pub fn source(&self) -> LogNormal {
        self.source
    }
}

impl Sample for QuantizedLogNormal {
    fn sample(&self, rng: &mut Prng) -> f64 {
        let cells = self.quantiles.len() - 1;
        let x = rng.next_f64() * cells as f64;
        let i = (x as usize).min(cells - 1);
        let frac = x - i as f64;
        let lo = self.quantiles[i];
        let hi = self.quantiles[i + 1];
        lo + (hi - lo) * frac
    }

    fn mean(&self) -> Option<f64> {
        self.source.mean()
    }
}

/// Approximate inverse of the standard normal CDF (Acklam's algorithm,
/// relative error < 1.15e-9).
///
/// # Panics
///
/// Panics if `p` is outside `(0, 1)`.
pub fn inverse_normal_cdf(p: f64) -> f64 {
    assert!(p > 0.0 && p < 1.0, "probability must be in (0, 1), got {p}");
    const A: [f64; 6] = [
        -3.969683028665376e+01,
        2.209460984245205e+02,
        -2.759285104469687e+02,
        1.38357751867269e+02,
        -3.066479806614716e+01,
        2.506628277459239e+00,
    ];
    const B: [f64; 5] = [
        -5.447609879822406e+01,
        1.615858368580409e+02,
        -1.556989798598866e+02,
        6.680131188771972e+01,
        -1.328068155288572e+01,
    ];
    const C: [f64; 6] = [
        -7.784894002430293e-03,
        -3.223964580411365e-01,
        -2.400758277161838e+00,
        -2.549732539343734e+00,
        4.374664141464968e+00,
        2.938163982698783e+00,
    ];
    const D: [f64; 4] = [
        7.784695709041462e-03,
        3.224671290700398e-01,
        2.445134137142996e+00,
        3.754408661907416e+00,
    ];
    const P_LOW: f64 = 0.02425;

    if p < P_LOW {
        let q = (-2.0 * p.ln()).sqrt();
        (((((C[0] * q + C[1]) * q + C[2]) * q + C[3]) * q + C[4]) * q + C[5])
            / ((((D[0] * q + D[1]) * q + D[2]) * q + D[3]) * q + 1.0)
    } else if p <= 1.0 - P_LOW {
        let q = p - 0.5;
        let r = q * q;
        (((((A[0] * r + A[1]) * r + A[2]) * r + A[3]) * r + A[4]) * r + A[5]) * q
            / (((((B[0] * r + B[1]) * r + B[2]) * r + B[3]) * r + B[4]) * r + 1.0)
    } else {
        let q = (-2.0 * (1.0 - p).ln()).sqrt();
        -(((((C[0] * q + C[1]) * q + C[2]) * q + C[3]) * q + C[4]) * q + C[5])
            / ((((D[0] * q + D[1]) * q + D[2]) * q + D[3]) * q + 1.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn sample_n(dist: &dyn Sample, n: usize, seed: u64) -> Vec<f64> {
        let mut rng = Prng::seed_from(seed);
        (0..n).map(|_| dist.sample(&mut rng)).collect()
    }

    fn empirical_quantile(samples: &mut [f64], q: f64) -> f64 {
        samples.sort_by(|a, b| a.partial_cmp(b).unwrap());
        samples[((samples.len() - 1) as f64 * q) as usize]
    }

    #[test]
    fn constructors_reject_bad_parameters() {
        assert!(Uniform::new(1.0, 1.0).is_err());
        assert!(Uniform::new(f64::NAN, 2.0).is_err());
        assert!(Exponential::new(0.0).is_err());
        assert!(Exponential::from_mean(-1.0).is_err());
        assert!(LogNormal::new(f64::INFINITY, 1.0).is_err());
        assert!(LogNormal::new(0.0, -0.1).is_err());
        assert!(LogNormal::from_median_sigma(0.0, 1.0).is_err());
        assert!(Pareto::new(-1.0, 2.0).is_err());
        assert!(BoundedPareto::new(5.0, 5.0, 1.0).is_err());
        assert!(BoundedPareto::new(1.0, 10.0, 0.0).is_err());
        assert!(Weibull::new(1.0, 0.0).is_err());
        assert!(Mixture::new(vec![]).is_err());
        assert!(Mixture::new(vec![(0.0, Box::new(Constant(1.0)) as Box<dyn Sample>)]).is_err());
    }

    #[test]
    fn exponential_mean_matches() {
        let d = Exponential::from_mean(250.0).unwrap();
        let samples = sample_n(&d, 100_000, 1);
        let mean = samples.iter().sum::<f64>() / samples.len() as f64;
        assert!((mean - 250.0).abs() / 250.0 < 0.02, "mean {mean}");
        assert_eq!(d.mean(), Some(250.0));
    }

    #[test]
    fn lognormal_median_and_tail_are_calibrated() {
        let d = LogNormal::from_median_sigma(1000.0, 1.5).unwrap();
        let mut samples = sample_n(&d, 200_000, 2);
        let med = empirical_quantile(&mut samples, 0.5);
        assert!((med - 1000.0).abs() / 1000.0 < 0.05, "median {med}");
        let p99 = empirical_quantile(&mut samples, 0.99);
        let expected_p99 = d.quantile(0.99);
        assert!(
            (p99 - expected_p99).abs() / expected_p99 < 0.1,
            "p99 {p99} expected {expected_p99}"
        );
    }

    #[test]
    fn lognormal_analytic_quantiles_are_monotone() {
        let d = LogNormal::from_median_sigma(10.0, 2.0).unwrap();
        let qs: Vec<f64> = [0.01, 0.1, 0.5, 0.9, 0.99]
            .iter()
            .map(|&q| d.quantile(q))
            .collect();
        assert!(qs.windows(2).all(|w| w[0] < w[1]), "{qs:?}");
        assert!((d.quantile(0.5) - 10.0).abs() < 1e-6);
    }

    #[test]
    fn pareto_respects_minimum_and_tail_index() {
        let d = Pareto::new(64.0, 1.2).unwrap();
        let samples = sample_n(&d, 100_000, 3);
        assert!(samples.iter().all(|&x| x >= 64.0));
        // P(X > x) = (x_min / x)^alpha: check at x = 640 -> 10^-1.2 ≈ 0.063.
        let frac = samples.iter().filter(|&&x| x > 640.0).count() as f64 / samples.len() as f64;
        assert!((frac - 0.063).abs() < 0.01, "tail fraction {frac}");
    }

    #[test]
    fn bounded_pareto_stays_in_bounds() {
        let d = BoundedPareto::new(2.0, 2000.0, 0.8).unwrap();
        let samples = sample_n(&d, 50_000, 4);
        assert!(samples.iter().all(|&x| (2.0..=2000.0).contains(&x)));
        // It must actually reach toward both ends.
        assert!(samples.iter().any(|&x| x < 4.0));
        assert!(samples.iter().any(|&x| x > 1000.0));
    }

    #[test]
    fn weibull_median_matches_analytic() {
        // Median of Weibull(lambda, k) is lambda * ln(2)^(1/k).
        let d = Weibull::new(100.0, 0.7).unwrap();
        let mut samples = sample_n(&d, 100_000, 5);
        let med = empirical_quantile(&mut samples, 0.5);
        let expected = 100.0 * (2f64).ln().powf(1.0 / 0.7);
        assert!((med - expected).abs() / expected < 0.03, "median {med}");
    }

    #[test]
    fn shifted_offsets_all_samples() {
        let d = Shifted::new(Constant(5.0), 10.0);
        let mut rng = Prng::seed_from(6);
        assert_eq!(d.sample(&mut rng), 15.0);
        assert_eq!(d.mean(), Some(15.0));
    }

    #[test]
    fn mixture_honours_weights() {
        let m = Mixture::new(vec![
            (0.8, Box::new(Constant(1.0)) as Box<dyn Sample>),
            (0.2, Box::new(Constant(100.0)) as Box<dyn Sample>),
        ])
        .unwrap();
        let samples = sample_n(&m, 100_000, 7);
        let big = samples.iter().filter(|&&x| x > 50.0).count() as f64 / samples.len() as f64;
        assert!((big - 0.2).abs() < 0.01, "big fraction {big}");
    }

    #[test]
    fn quantized_lognormal_tracks_the_exact_quantiles() {
        let exact = LogNormal::from_median_sigma(1000.0, 1.5).unwrap();
        let q = QuantizedLogNormal::new(exact);
        let mut samples = sample_n(&q, 200_000, 21);
        for (p, tol) in [(0.1, 0.03), (0.5, 0.03), (0.9, 0.03), (0.99, 0.08)] {
            let got = empirical_quantile(&mut samples, p);
            let want = exact.quantile(p);
            assert!(
                (got - want).abs() / want < tol,
                "P{p}: quantized {got} vs exact {want}"
            );
        }
    }

    #[test]
    fn quantized_lognormal_uses_one_draw_per_sample() {
        let q = QuantizedLogNormal::new(LogNormal::from_median_sigma(50.0, 1.0).unwrap());
        let mut a = Prng::seed_from(9);
        let mut b = Prng::seed_from(9);
        for _ in 0..1_000 {
            let _ = q.sample(&mut a);
            let _ = b.next_f64();
        }
        // Both generators consumed the same number of draws, so they
        // stay in lockstep.
        assert_eq!(a.next_f64().to_bits(), b.next_f64().to_bits());
    }

    #[test]
    fn quantized_lognormal_differs_from_box_muller() {
        // The whole point of documenting the determinism contract: the
        // table sampler is distribution-equivalent but NOT draw-for-draw
        // compatible with the Box-Muller path.
        let exact = LogNormal::from_median_sigma(50.0, 1.0).unwrap();
        let q = QuantizedLogNormal::new(exact);
        let x = q.sample(&mut Prng::seed_from(3));
        let y = exact.sample(&mut Prng::seed_from(3));
        assert_ne!(x.to_bits(), y.to_bits());
    }

    #[test]
    fn quantized_lognormal_samples_stay_positive_and_finite() {
        let q =
            QuantizedLogNormal::with_cells(LogNormal::from_median_sigma(10.0, 2.5).unwrap(), 64);
        let samples = sample_n(&q, 20_000, 33);
        assert!(samples.iter().all(|&x| x.is_finite() && x > 0.0));
        assert_eq!(q.mean(), q.source().mean());
    }

    #[test]
    #[should_panic(expected = "at least 2 grid cells")]
    fn quantized_lognormal_rejects_degenerate_tables() {
        let _ = QuantizedLogNormal::with_cells(LogNormal::from_median_sigma(10.0, 1.0).unwrap(), 1);
    }

    #[test]
    fn inverse_normal_cdf_matches_known_points() {
        assert!(inverse_normal_cdf(0.5).abs() < 1e-8);
        assert!((inverse_normal_cdf(0.975) - 1.959964).abs() < 1e-4);
        assert!((inverse_normal_cdf(0.025) + 1.959964).abs() < 1e-4);
        assert!((inverse_normal_cdf(0.99) - 2.326348).abs() < 1e-4);
        assert!((inverse_normal_cdf(0.01) + 2.326348).abs() < 1e-4);
    }

    #[test]
    #[should_panic(expected = "probability")]
    fn inverse_normal_cdf_rejects_zero() {
        inverse_normal_cdf(0.0);
    }

    proptest! {
        #[test]
        fn samples_are_finite_and_in_domain(seed: u64) {
            let mut rng = Prng::seed_from(seed);
            let ln = LogNormal::from_median_sigma(100.0, 2.5).unwrap();
            let pa = Pareto::new(1.0, 0.5).unwrap();
            let we = Weibull::new(10.0, 0.5).unwrap();
            for _ in 0..200 {
                let a = ln.sample(&mut rng);
                prop_assert!(a.is_finite() && a > 0.0);
                let b = pa.sample(&mut rng);
                prop_assert!(b.is_finite() && b >= 1.0);
                let c = we.sample(&mut rng);
                prop_assert!(c.is_finite() && c >= 0.0);
            }
        }

        #[test]
        fn inverse_normal_cdf_is_monotone(p1 in 0.001f64..0.999, p2 in 0.001f64..0.999) {
            if p1 < p2 {
                prop_assert!(inverse_normal_cdf(p1) < inverse_normal_cdf(p2));
            }
        }

        #[test]
        fn lognormal_quantile_agrees_with_inverse_cdf(
            median in 1.0f64..1e6,
            sigma in 0.0f64..3.0,
            q in 0.01f64..0.99,
        ) {
            let d = LogNormal::from_median_sigma(median, sigma).unwrap();
            let expected = (median.ln() + sigma * inverse_normal_cdf(q)).exp();
            prop_assert!((d.quantile(q) - expected).abs() <= 1e-9 * expected.max(1.0));
        }
    }
}
