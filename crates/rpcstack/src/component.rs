//! The latency components of an RPC (Fig. 9) and per-RPC breakdowns.
//!
//! Everything except [`LatencyComponent::ServerApplication`] is the *RPC
//! latency tax*: the cost of reaching a remote service at all. The tax
//! splits further into queueing, network wire, and RPC-processing/network-
//! stack groups, which is the decomposition used by Figs. 10–13.

use rpclens_simcore::time::SimDuration;
use serde::{Deserialize, Serialize};

/// One of the nine stack components, or the server application itself.
///
/// Order follows a request's lifecycle; the `ALL` constant preserves it.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum LatencyComponent {
    /// Request waits at the client for CPU/network availability.
    ClientSendQueue,
    /// Marshalling, compression, encryption, and send-path stack work.
    RequestProcessing,
    /// Request propagation and queueing in the network.
    RequestNetworkWire,
    /// Request waits at the server for a worker thread.
    ServerRecvQueue,
    /// The RPC method handler itself (includes nested calls).
    ServerApplication,
    /// Response waits at the server for network availability.
    ServerSendQueue,
    /// Response-side marshalling and stack work.
    ResponseProcessing,
    /// Response propagation and queueing in the network.
    ResponseNetworkWire,
    /// Response waits at the client before the caller consumes it.
    ClientRecvQueue,
}

impl LatencyComponent {
    /// All components in lifecycle order.
    pub const ALL: [LatencyComponent; 9] = [
        LatencyComponent::ClientSendQueue,
        LatencyComponent::RequestProcessing,
        LatencyComponent::RequestNetworkWire,
        LatencyComponent::ServerRecvQueue,
        LatencyComponent::ServerApplication,
        LatencyComponent::ServerSendQueue,
        LatencyComponent::ResponseProcessing,
        LatencyComponent::ResponseNetworkWire,
        LatencyComponent::ClientRecvQueue,
    ];

    /// Human-readable label matching the paper's figure legends.
    pub fn label(self) -> &'static str {
        match self {
            LatencyComponent::ClientSendQueue => "Client Send Queue",
            LatencyComponent::RequestProcessing => "Request Processing+Net Stack",
            LatencyComponent::RequestNetworkWire => "Request Network Wire",
            LatencyComponent::ServerRecvQueue => "Server Recv Queue",
            LatencyComponent::ServerApplication => "Server Application",
            LatencyComponent::ServerSendQueue => "Server Send Queue",
            LatencyComponent::ResponseProcessing => "Resp Processing+Net Stack",
            LatencyComponent::ResponseNetworkWire => "Resp Network Wire",
            LatencyComponent::ClientRecvQueue => "Client Recv Queue",
        }
    }

    /// Whether this component is part of the RPC latency tax (everything
    /// but the application handler).
    pub fn is_tax(self) -> bool {
        self != LatencyComponent::ServerApplication
    }

    /// The tax group this component belongs to, or `None` for the
    /// application: `Queue`, `Network`, or `Processing` (the grouping of
    /// Fig. 10b).
    pub fn tax_group(self) -> Option<TaxGroup> {
        match self {
            LatencyComponent::ClientSendQueue
            | LatencyComponent::ServerRecvQueue
            | LatencyComponent::ServerSendQueue
            | LatencyComponent::ClientRecvQueue => Some(TaxGroup::Queue),
            LatencyComponent::RequestNetworkWire | LatencyComponent::ResponseNetworkWire => {
                Some(TaxGroup::Network)
            }
            LatencyComponent::RequestProcessing | LatencyComponent::ResponseProcessing => {
                Some(TaxGroup::Processing)
            }
            LatencyComponent::ServerApplication => None,
        }
    }

    fn index(self) -> usize {
        Self::ALL.iter().position(|&c| c == self).expect("in ALL")
    }
}

/// The three groups of the RPC latency tax (Fig. 10b).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum TaxGroup {
    /// Client/server send and receive queues.
    Queue,
    /// Network wire time (propagation plus in-network queueing).
    Network,
    /// RPC processing and network-stack computation.
    Processing,
}

impl TaxGroup {
    /// All groups.
    pub const ALL: [TaxGroup; 3] = [TaxGroup::Queue, TaxGroup::Network, TaxGroup::Processing];

    /// Display label.
    pub fn label(self) -> &'static str {
        match self {
            TaxGroup::Queue => "Queueing",
            TaxGroup::Network => "Network Wire",
            TaxGroup::Processing => "RPC Proc + Net Stack",
        }
    }
}

/// The per-component latency of one completed RPC.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct LatencyBreakdown {
    parts: [SimDuration; 9],
}

impl LatencyBreakdown {
    /// An all-zero breakdown.
    pub fn new() -> Self {
        Self::default()
    }

    /// Sets one component's latency (overwriting).
    pub fn set(&mut self, c: LatencyComponent, d: SimDuration) {
        self.parts[c.index()] = d;
    }

    /// Adds to one component's latency.
    pub fn add(&mut self, c: LatencyComponent, d: SimDuration) {
        self.parts[c.index()] = self.parts[c.index()] + d;
    }

    /// Reads one component's latency.
    pub fn get(&self, c: LatencyComponent) -> SimDuration {
        self.parts[c.index()]
    }

    /// Total RPC completion time (sum of all components).
    pub fn total(&self) -> SimDuration {
        self.parts.iter().copied().sum()
    }

    /// Total RPC latency tax (everything but the application).
    pub fn tax(&self) -> SimDuration {
        LatencyComponent::ALL
            .iter()
            .filter(|c| c.is_tax())
            .map(|&c| self.get(c))
            .sum()
    }

    /// The tax fraction of total completion time in `[0, 1]`, or `None`
    /// for a zero-length RPC.
    pub fn tax_ratio(&self) -> Option<f64> {
        let total = self.total().as_nanos();
        (total > 0).then(|| self.tax().as_nanos() as f64 / total as f64)
    }

    /// Sums the latency of one tax group.
    pub fn group(&self, g: TaxGroup) -> SimDuration {
        LatencyComponent::ALL
            .iter()
            .filter(|c| c.tax_group() == Some(g))
            .map(|&c| self.get(c))
            .sum()
    }

    /// Iterates `(component, latency)` in lifecycle order.
    pub fn iter(&self) -> impl Iterator<Item = (LatencyComponent, SimDuration)> + '_ {
        LatencyComponent::ALL.iter().map(move |&c| (c, self.get(c)))
    }

    /// Returns a copy with one component replaced — the primitive behind
    /// the paper's Fig. 15 what-if analysis.
    pub fn with_component(&self, c: LatencyComponent, d: SimDuration) -> LatencyBreakdown {
        let mut out = *self;
        out.set(c, d);
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_has_nine_unique_components() {
        let mut set = std::collections::BTreeSet::new();
        for c in LatencyComponent::ALL {
            set.insert(c);
        }
        assert_eq!(set.len(), 9);
    }

    #[test]
    fn only_application_is_not_tax() {
        let non_tax: Vec<_> = LatencyComponent::ALL
            .iter()
            .filter(|c| !c.is_tax())
            .collect();
        assert_eq!(non_tax, vec![&LatencyComponent::ServerApplication]);
    }

    #[test]
    fn tax_groups_partition_the_tax_components() {
        let mut counts = std::collections::BTreeMap::new();
        for c in LatencyComponent::ALL {
            if let Some(g) = c.tax_group() {
                *counts.entry(g).or_insert(0) += 1;
            } else {
                assert_eq!(c, LatencyComponent::ServerApplication);
            }
        }
        assert_eq!(counts[&TaxGroup::Queue], 4);
        assert_eq!(counts[&TaxGroup::Network], 2);
        assert_eq!(counts[&TaxGroup::Processing], 2);
    }

    #[test]
    fn breakdown_totals_and_tax() {
        let mut b = LatencyBreakdown::new();
        b.set(
            LatencyComponent::ServerApplication,
            SimDuration::from_millis(9),
        );
        b.set(
            LatencyComponent::RequestNetworkWire,
            SimDuration::from_micros(500),
        );
        b.set(
            LatencyComponent::ServerRecvQueue,
            SimDuration::from_micros(500),
        );
        assert_eq!(b.total(), SimDuration::from_millis(10));
        assert_eq!(b.tax(), SimDuration::from_millis(1));
        assert!((b.tax_ratio().unwrap() - 0.1).abs() < 1e-12);
        assert_eq!(b.group(TaxGroup::Network), SimDuration::from_micros(500));
        assert_eq!(b.group(TaxGroup::Queue), SimDuration::from_micros(500));
        assert_eq!(b.group(TaxGroup::Processing), SimDuration::ZERO);
    }

    #[test]
    fn empty_breakdown_has_no_tax_ratio() {
        assert_eq!(LatencyBreakdown::new().tax_ratio(), None);
    }

    #[test]
    fn add_accumulates_set_overwrites() {
        let mut b = LatencyBreakdown::new();
        b.add(
            LatencyComponent::ClientSendQueue,
            SimDuration::from_nanos(5),
        );
        b.add(
            LatencyComponent::ClientSendQueue,
            SimDuration::from_nanos(7),
        );
        assert_eq!(
            b.get(LatencyComponent::ClientSendQueue),
            SimDuration::from_nanos(12)
        );
        b.set(
            LatencyComponent::ClientSendQueue,
            SimDuration::from_nanos(1),
        );
        assert_eq!(
            b.get(LatencyComponent::ClientSendQueue),
            SimDuration::from_nanos(1)
        );
    }

    #[test]
    fn with_component_is_pure() {
        let mut b = LatencyBreakdown::new();
        b.set(
            LatencyComponent::ServerApplication,
            SimDuration::from_secs(1),
        );
        let replaced = b.with_component(
            LatencyComponent::ServerApplication,
            SimDuration::from_millis(1),
        );
        assert_eq!(
            b.get(LatencyComponent::ServerApplication),
            SimDuration::from_secs(1)
        );
        assert_eq!(replaced.total(), SimDuration::from_millis(1));
    }

    #[test]
    fn iter_visits_lifecycle_order() {
        let b = LatencyBreakdown::new();
        let order: Vec<_> = b.iter().map(|(c, _)| c).collect();
        assert_eq!(order, LatencyComponent::ALL.to_vec());
    }

    #[test]
    fn labels_match_paper_legends() {
        assert_eq!(
            LatencyComponent::RequestProcessing.label(),
            "Request Processing+Net Stack"
        );
        assert_eq!(TaxGroup::Processing.label(), "RPC Proc + Net Stack");
    }
}
