//! Fig. 15: what-if analysis — percent improvement of tail latency when
//! one component of P95-tail RPCs is replaced by its median.
//!
//! Paper anchor: the component that dominates a service's latency in
//! general is also the main cause of its tail (e.g. Server Application
//! for Network Disk/F1/ML, Server Recv Queue for SSD cache, Response
//! Processing for KV-Store).

use crate::check::ExpectationSet;
use crate::render::TextTable;
use crate::whatif::{what_if_p95, WhatIfResult};
use rpclens_fleet::driver::FleetRun;
use rpclens_rpcstack::component::LatencyComponent;
use rpclens_trace::query::MethodQuery;

/// One service's what-if row.
#[derive(Debug)]
pub struct WhatIfRow {
    /// Service name (Table 1 server).
    pub name: &'static str,
    /// The what-if result.
    pub result: WhatIfResult,
}

/// The computed figure.
#[derive(Debug)]
pub struct Fig15 {
    /// One row per Table 1 service with enough samples.
    pub rows: Vec<WhatIfRow>,
}

/// Computes the figure.
pub fn compute(run: &FleetRun) -> Fig15 {
    let query = MethodQuery {
        intra_cluster_only: true,
        min_samples: 1,
        ..MethodQuery::default()
    };
    let mut rows = Vec::new();
    for entry in run.catalog.table1() {
        let mut breakdowns = Vec::new();
        run.store.for_each_span(entry.method, |_, span| {
            if query.accepts(span) {
                breakdowns.push(span.breakdown());
            }
        });
        if let Some(result) = what_if_p95(&breakdowns) {
            rows.push(WhatIfRow {
                name: entry.server,
                result,
            });
        }
    }
    Fig15 { rows }
}

/// Renders the matrix (percent of tail RPCs cured per component).
pub fn render(fig: &Fig15) -> String {
    let mut header = vec!["service"];
    for c in LatencyComponent::ALL {
        header.push(c.label());
    }
    let mut t = TextTable::new(&header);
    for row in &fig.rows {
        let mut cells = vec![row.name.to_string()];
        for c in LatencyComponent::ALL {
            cells.push(format!("{:.1}", row.result.cured(c) * 100.0));
        }
        t.row(cells);
    }
    format!(
        "Fig. 15 — Percent of P95-tail RPCs cured by replacing one component with its median\n{}",
        t.render()
    )
}

/// Paper-vs-measured checks.
pub fn checks(fig: &Fig15) -> ExpectationSet {
    let mut s = ExpectationSet::new();
    s.add(
        "fig15.rows",
        "all Table 1 services produce a what-if row",
        fig.rows.len() as f64,
        6.0,
        8.0,
    );
    let dominant_of = |name: &str| {
        fig.rows
            .iter()
            .find(|r| r.name == name)
            .map(|r| r.result.dominant())
    };
    // Application-heavy services are cured by fixing the application.
    for name in ["Network Disk", "ML Inference", "F1"] {
        if let Some(d) = dominant_of(name) {
            s.add(
                &format!("fig15.{}_app", name.replace(' ', "_")),
                "tail cured mainly by the Server Application component",
                (d == LatencyComponent::ServerApplication) as u8 as f64,
                1.0,
                1.0,
            );
        }
    }
    // SSD cache: queue-dominated tail.
    if let Some(d) = dominant_of("SSD cache") {
        s.add(
            "fig15.ssd_queue",
            "SSD cache tail cured mainly by the Server Recv Queue",
            (d == LatencyComponent::ServerRecvQueue) as u8 as f64,
            1.0,
            1.0,
        );
    }
    // Every service: at least one component cures a nontrivial share.
    for row in &fig.rows {
        s.add(
            &format!("fig15.{}_curable", row.name.replace(' ', "_")),
            "some single component explains part of the tail",
            row.result.cured(row.result.dominant()),
            0.05,
            1.0,
        );
    }
    s
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::common::testrun::shared;

    #[test]
    fn checks_pass_on_test_run() {
        let fig = compute(shared());
        let c = checks(&fig);
        assert!(c.all_passed(), "{c}");
    }

    #[test]
    fn cured_fractions_are_valid() {
        let fig = compute(shared());
        for row in &fig.rows {
            for c in LatencyComponent::ALL {
                let f = row.result.cured(c);
                assert!((0.0..=1.0).contains(&f), "{}: {f}", row.name);
            }
            assert!(row.result.tail_count > 0);
        }
    }

    #[test]
    fn render_is_a_full_matrix() {
        let fig = compute(shared());
        let text = render(&fig);
        assert!(text.contains("Server Application"));
        assert!(text.lines().count() >= fig.rows.len() + 2);
    }
}
