//! Fig. 11: per-method ratio of latency tax to completion time.
//!
//! Paper anchors: the median-method median tax ratio is 8.6%; for the 10%
//! of methods with the highest overheads the median ratio is 38% and the
//! P90 is 96% — at the tail, entire RPCs are tax.

use crate::check::ExpectationSet;
use crate::common::{paper_query, MethodHeatmap};
use crate::render::{fmt_pct, sketch_cdf, TextTable};
use rpclens_fleet::driver::FleetRun;
use rpclens_simcore::stats::percentile;

/// The computed figure.
#[derive(Debug)]
pub struct Fig11 {
    /// Per-method tax-ratio quantiles, sorted by median.
    pub heatmap: MethodHeatmap,
}

/// Computes the figure.
pub fn compute(run: &FleetRun) -> Fig11 {
    let query = paper_query();
    Fig11 {
        heatmap: MethodHeatmap::build(run, &query, |_, s| s.breakdown().tax_ratio().unwrap_or(0.0)),
    }
}

/// Renders the figure.
pub fn render(fig: &Fig11) -> String {
    let hm = &fig.heatmap;
    let mut t = TextTable::new(&["method#", "P10", "P50", "P90", "P99"]);
    let step = (hm.len() / 15).max(1);
    for (i, row) in hm.rows.iter().enumerate().step_by(step) {
        t.row(vec![
            i.to_string(),
            fmt_pct(row.summary.p10),
            fmt_pct(row.summary.p50),
            fmt_pct(row.summary.p90),
            fmt_pct(row.summary.p99),
        ]);
    }
    format!(
        "Fig. 11 — Per-method RPC-tax / completion-time ratio ({} methods)\n{}\nCDF of per-method median tax ratios:\n{}",
        hm.len(),
        t.render(),
        sketch_cdf(&hm.across_methods(0.5), fmt_pct),
    )
}

/// Paper-vs-measured checks.
pub fn checks(fig: &Fig11) -> ExpectationSet {
    let hm = &fig.heatmap;
    let mut s = ExpectationSet::new();
    let medians = hm.across_methods(0.5);
    s.add(
        "fig11.median_method_ratio",
        "the median-method tax ratio is 8.6%",
        percentile(&medians, 0.5).unwrap_or(f64::NAN),
        0.005,
        0.30,
    );
    // Top decile of methods by overhead: their median ratio is large.
    s.add(
        "fig11.top_decile_median",
        "for the top-10% overhead methods, the median tax is 38%",
        percentile(&medians, 0.9).unwrap_or(f64::NAN),
        0.10,
        1.0,
    );
    // Tail invocations can be almost pure tax for many methods.
    s.add(
        "fig11.p99_near_total",
        "P99 tax ratio approaches 1 for a meaningful share of methods",
        hm.fraction_where(0.99, |v| v > 0.5),
        0.10,
        1.0,
    );
    s.add(
        "fig11.ratios_valid",
        "tax ratios are proper fractions",
        hm.fraction_where(0.99, |v| (0.0..=1.0).contains(&v)),
        1.0,
        1.0,
    );
    s
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::common::testrun::shared;

    #[test]
    fn checks_pass_on_test_run() {
        let fig = compute(shared());
        let c = checks(&fig);
        assert!(c.all_passed(), "{c}");
    }

    #[test]
    fn compute_heavy_methods_have_low_tax_ratio() {
        let run = shared();
        let fig = compute(run);
        let ml = run.catalog.service_by_name("MLInference").unwrap().id;
        for row in &fig.heatmap.rows {
            if run.catalog.method(row.method).service == ml {
                assert!(
                    row.summary.p50 < 0.2,
                    "ML method median tax ratio {}",
                    row.summary.p50
                );
            }
        }
    }
}
