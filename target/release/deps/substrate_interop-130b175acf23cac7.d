/root/repo/target/release/deps/substrate_interop-130b175acf23cac7.d: tests/substrate_interop.rs

/root/repo/target/release/deps/substrate_interop-130b175acf23cac7: tests/substrate_interop.rs

tests/substrate_interop.rs:
