//! Exact quantiles, streaming moments, and correlation measures.
//!
//! The characterization analyses mostly operate on per-method sample
//! vectors extracted from the trace store, so they use *exact* order
//! statistics here (as the paper's offline analysis pipeline would), while
//! online fleet aggregation uses [`crate::hist::LogHistogram`].

/// Returns the `q`-quantile of `sorted` using linear interpolation between
/// closest ranks, or `None` if the slice is empty.
///
/// # Panics
///
/// Panics if `q` is outside `[0, 1]` or the slice is not sorted in debug
/// builds.
///
/// # Examples
///
/// ```
/// use rpclens_simcore::stats::percentile;
///
/// let v = [1.0, 2.0, 3.0, 4.0];
/// assert_eq!(percentile(&v, 0.5), Some(2.5));
/// assert_eq!(percentile(&v, 1.0), Some(4.0));
/// ```
pub fn percentile(sorted: &[f64], q: f64) -> Option<f64> {
    assert!(
        (0.0..=1.0).contains(&q),
        "quantile must be in [0,1], got {q}"
    );
    debug_assert!(
        sorted.windows(2).all(|w| w[0] <= w[1]),
        "input must be sorted"
    );
    if sorted.is_empty() {
        return None;
    }
    let pos = q * (sorted.len() - 1) as f64;
    let lo = pos.floor() as usize;
    let hi = pos.ceil() as usize;
    let frac = pos - lo as f64;
    Some(sorted[lo] + (sorted[hi] - sorted[lo]) * frac)
}

/// Sorts a sample vector and returns it, dropping non-finite values.
pub fn sorted_finite(mut values: Vec<f64>) -> Vec<f64> {
    values.retain(|v| v.is_finite());
    values.sort_by(|a, b| a.partial_cmp(b).expect("finite values compare"));
    values
}

/// A compact multi-quantile summary of a sample set.
#[derive(Debug, Clone, Copy, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct QuantileSummary {
    /// Number of samples summarised.
    pub count: usize,
    /// 1st percentile.
    pub p01: f64,
    /// 10th percentile.
    pub p10: f64,
    /// Median.
    pub p50: f64,
    /// 90th percentile.
    pub p90: f64,
    /// 95th percentile.
    pub p95: f64,
    /// 99th percentile.
    pub p99: f64,
    /// Arithmetic mean.
    pub mean: f64,
}

impl QuantileSummary {
    /// Builds a summary from an unsorted sample vector, or `None` if empty
    /// after dropping non-finite values.
    pub fn from_samples(values: Vec<f64>) -> Option<Self> {
        let sorted = sorted_finite(values);
        if sorted.is_empty() {
            return None;
        }
        let mean = sorted.iter().sum::<f64>() / sorted.len() as f64;
        Some(QuantileSummary {
            count: sorted.len(),
            p01: percentile(&sorted, 0.01)?,
            p10: percentile(&sorted, 0.10)?,
            p50: percentile(&sorted, 0.50)?,
            p90: percentile(&sorted, 0.90)?,
            p95: percentile(&sorted, 0.95)?,
            p99: percentile(&sorted, 0.99)?,
            mean,
        })
    }

    /// Retrieves a named quantile; `q` must be one of the stored levels.
    pub fn get(&self, q: f64) -> Option<f64> {
        match q {
            0.01 => Some(self.p01),
            0.10 => Some(self.p10),
            0.50 => Some(self.p50),
            0.90 => Some(self.p90),
            0.95 => Some(self.p95),
            0.99 => Some(self.p99),
            _ => None,
        }
    }
}

/// Streaming mean/variance via Welford's algorithm.
#[derive(Debug, Clone, Copy, Default)]
pub struct OnlineMoments {
    n: u64,
    mean: f64,
    m2: f64,
}

impl OnlineMoments {
    /// Creates an empty accumulator.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds one observation.
    pub fn push(&mut self, x: f64) {
        self.n += 1;
        let delta = x - self.mean;
        self.mean += delta / self.n as f64;
        self.m2 += delta * (x - self.mean);
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.n
    }

    /// Mean of observations, or `None` if empty.
    pub fn mean(&self) -> Option<f64> {
        (self.n > 0).then_some(self.mean)
    }

    /// Population variance, or `None` if empty.
    pub fn variance(&self) -> Option<f64> {
        (self.n > 0).then(|| self.m2 / self.n as f64)
    }

    /// Population standard deviation, or `None` if empty.
    pub fn std_dev(&self) -> Option<f64> {
        self.variance().map(f64::sqrt)
    }

    /// Merges another accumulator into this one (Chan's parallel update).
    pub fn merge(&mut self, other: &OnlineMoments) {
        if other.n == 0 {
            return;
        }
        if self.n == 0 {
            *self = *other;
            return;
        }
        let n = self.n + other.n;
        let delta = other.mean - self.mean;
        let mean = self.mean + delta * other.n as f64 / n as f64;
        let m2 = self.m2 + other.m2 + delta * delta * (self.n as f64 * other.n as f64) / n as f64;
        *self = OnlineMoments { n, mean, m2 };
    }
}

/// A mergeable streaming summary: count, sum, min, max, mean, variance.
///
/// This is the per-shard accumulator for parallel fleet runs: each worker
/// pushes its own observations, and the coordinator folds the shard
/// accumulators together with [`StreamingStats::merge`] in shard order.
/// Count, sum, min, and max merge exactly; mean and variance merge via
/// Chan's parallel update (numerically stable, but — like any floating
/// point reduction — the last few bits can differ from a single-pass
/// computation, so anything that must be bit-identical across shard
/// counts should be recomputed from merged exact state instead).
#[derive(Debug, Clone, Copy)]
pub struct StreamingStats {
    moments: OnlineMoments,
    sum: f64,
    min: f64,
    max: f64,
}

impl Default for StreamingStats {
    /// The empty accumulator stores the fold identities (`min = +inf`,
    /// `max = -inf`, `sum = 0`), which is what lets [`StreamingStats::push`]
    /// and [`StreamingStats::merge`] update the extremes unconditionally.
    /// The identities never escape: `min()`/`max()` gate on the count.
    fn default() -> Self {
        StreamingStats {
            moments: OnlineMoments::default(),
            sum: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }
}

impl StreamingStats {
    /// Creates an empty accumulator.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds one observation; non-finite values are ignored.
    pub fn push(&mut self, x: f64) {
        if !x.is_finite() {
            return;
        }
        // No first-observation branch: the empty extremes are the fold
        // identities, so `min`/`max` fold unconditionally (cmov, not a
        // data-dependent jump).
        self.min = self.min.min(x);
        self.max = self.max.max(x);
        self.sum += x;
        self.moments.push(x);
    }

    /// Number of (finite) observations.
    pub fn count(&self) -> u64 {
        self.moments.count()
    }

    /// Sum of observations.
    pub fn sum(&self) -> f64 {
        self.sum
    }

    /// Smallest observation, or `None` if empty.
    pub fn min(&self) -> Option<f64> {
        (self.count() > 0).then_some(self.min)
    }

    /// Largest observation, or `None` if empty.
    pub fn max(&self) -> Option<f64> {
        (self.count() > 0).then_some(self.max)
    }

    /// Mean of observations, or `None` if empty.
    pub fn mean(&self) -> Option<f64> {
        self.moments.mean()
    }

    /// Population variance, or `None` if empty.
    pub fn variance(&self) -> Option<f64> {
        self.moments.variance()
    }

    /// Population standard deviation, or `None` if empty.
    pub fn std_dev(&self) -> Option<f64> {
        self.moments.std_dev()
    }

    /// Merges another accumulator into this one.
    ///
    /// Branchless at this level: the extremes and the sum fold
    /// unconditionally because the empty accumulator holds the fold
    /// identities (`+inf`/`-inf`/`0`). Only the moments update keeps its
    /// empty-side guards, inside [`OnlineMoments::merge`] — those
    /// preserve the exact bit patterns of the seeded-copy path, and in
    /// shard folds both sides are always non-empty so the guards are
    /// perfectly predicted.
    pub fn merge(&mut self, other: &StreamingStats) {
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
        self.sum += other.sum;
        self.moments.merge(&other.moments);
    }
}

/// Pearson correlation coefficient of two equal-length slices, or `None` if
/// fewer than two points or either side has zero variance.
pub fn pearson(x: &[f64], y: &[f64]) -> Option<f64> {
    if x.len() != y.len() || x.len() < 2 {
        return None;
    }
    let n = x.len() as f64;
    let mx = x.iter().sum::<f64>() / n;
    let my = y.iter().sum::<f64>() / n;
    let mut cov = 0.0;
    let mut vx = 0.0;
    let mut vy = 0.0;
    for (&a, &b) in x.iter().zip(y) {
        cov += (a - mx) * (b - my);
        vx += (a - mx) * (a - mx);
        vy += (b - my) * (b - my);
    }
    if vx <= 0.0 || vy <= 0.0 {
        return None;
    }
    Some(cov / (vx.sqrt() * vy.sqrt()))
}

/// Spearman rank correlation of two equal-length slices.
///
/// Ties receive their average rank. Returns `None` under the same
/// conditions as [`pearson`].
pub fn spearman(x: &[f64], y: &[f64]) -> Option<f64> {
    if x.len() != y.len() || x.len() < 2 {
        return None;
    }
    let rx = ranks(x);
    let ry = ranks(y);
    pearson(&rx, &ry)
}

/// Assigns average ranks (1-based) to a slice, averaging ties.
fn ranks(values: &[f64]) -> Vec<f64> {
    let mut idx: Vec<usize> = (0..values.len()).collect();
    idx.sort_by(|&a, &b| values[a].partial_cmp(&values[b]).expect("finite"));
    let mut out = vec![0.0; values.len()];
    let mut i = 0;
    while i < idx.len() {
        let mut j = i;
        while j + 1 < idx.len() && values[idx[j + 1]] == values[idx[i]] {
            j += 1;
        }
        // Average rank for the tie group [i, j].
        let avg = (i + j) as f64 / 2.0 + 1.0;
        for &k in &idx[i..=j] {
            out[k] = avg;
        }
        i = j + 1;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn percentile_interpolates() {
        let v = [10.0, 20.0, 30.0, 40.0, 50.0];
        assert_eq!(percentile(&v, 0.0), Some(10.0));
        assert_eq!(percentile(&v, 0.25), Some(20.0));
        assert_eq!(percentile(&v, 0.5), Some(30.0));
        assert_eq!(percentile(&v, 0.875), Some(45.0));
        assert_eq!(percentile(&v, 1.0), Some(50.0));
        assert_eq!(percentile(&[], 0.5), None);
    }

    #[test]
    fn sorted_finite_drops_nan_and_sorts() {
        let v = sorted_finite(vec![3.0, f64::NAN, 1.0, f64::INFINITY, 2.0]);
        assert_eq!(v, vec![1.0, 2.0, 3.0]);
    }

    #[test]
    fn quantile_summary_orders_levels() {
        let samples: Vec<f64> = (1..=1000).map(|i| i as f64).collect();
        let s = QuantileSummary::from_samples(samples).unwrap();
        assert_eq!(s.count, 1000);
        assert!(s.p01 < s.p10 && s.p10 < s.p50 && s.p50 < s.p90);
        assert!(s.p90 < s.p95 && s.p95 < s.p99);
        assert!((s.p50 - 500.5).abs() < 1e-9);
        assert!((s.mean - 500.5).abs() < 1e-9);
        assert_eq!(s.get(0.5), Some(s.p50));
        assert_eq!(s.get(0.33), None);
    }

    #[test]
    fn quantile_summary_empty_is_none() {
        assert!(QuantileSummary::from_samples(vec![]).is_none());
        assert!(QuantileSummary::from_samples(vec![f64::NAN]).is_none());
    }

    #[test]
    fn online_moments_match_direct_computation() {
        let data = [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0];
        let mut m = OnlineMoments::new();
        for &x in &data {
            m.push(x);
        }
        assert_eq!(m.count(), 8);
        assert!((m.mean().unwrap() - 5.0).abs() < 1e-12);
        assert!((m.variance().unwrap() - 4.0).abs() < 1e-12);
        assert!((m.std_dev().unwrap() - 2.0).abs() < 1e-12);
    }

    #[test]
    fn online_moments_merge_equals_sequential() {
        let data: Vec<f64> = (0..100).map(|i| (i as f64).sin() * 10.0).collect();
        let mut whole = OnlineMoments::new();
        let mut left = OnlineMoments::new();
        let mut right = OnlineMoments::new();
        for (i, &x) in data.iter().enumerate() {
            whole.push(x);
            if i < 37 {
                left.push(x);
            } else {
                right.push(x);
            }
        }
        left.merge(&right);
        assert_eq!(left.count(), whole.count());
        assert!((left.mean().unwrap() - whole.mean().unwrap()).abs() < 1e-9);
        assert!((left.variance().unwrap() - whole.variance().unwrap()).abs() < 1e-9);
    }

    #[test]
    fn pearson_detects_perfect_linearity() {
        let x: Vec<f64> = (0..50).map(|i| i as f64).collect();
        let y: Vec<f64> = x.iter().map(|v| 3.0 * v + 2.0).collect();
        assert!((pearson(&x, &y).unwrap() - 1.0).abs() < 1e-12);
        let neg: Vec<f64> = x.iter().map(|v| -v).collect();
        assert!((pearson(&x, &neg).unwrap() + 1.0).abs() < 1e-12);
    }

    #[test]
    fn pearson_rejects_degenerate_inputs() {
        assert!(pearson(&[1.0], &[2.0]).is_none());
        assert!(pearson(&[1.0, 2.0], &[5.0, 5.0]).is_none());
        assert!(pearson(&[1.0, 2.0, 3.0], &[1.0, 2.0]).is_none());
    }

    #[test]
    fn spearman_captures_monotone_nonlinear_relation() {
        let x: Vec<f64> = (1..100).map(|i| i as f64).collect();
        let y: Vec<f64> = x.iter().map(|v| v.exp().min(1e300)).collect();
        // Nonlinear but perfectly monotone.
        assert!((spearman(&x, &y).unwrap() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn ranks_average_ties() {
        let r = ranks(&[10.0, 20.0, 20.0, 30.0]);
        assert_eq!(r, vec![1.0, 2.5, 2.5, 4.0]);
    }

    #[test]
    fn streaming_stats_merge_with_empty_is_identity() {
        // The guard-free merge leans on the empty accumulator's identity
        // extremes; merging an empty side in either direction must leave
        // the populated accumulator's public view untouched.
        let mut s = StreamingStats::new();
        for x in [3.0, -1.5, 7.25] {
            s.push(x);
        }
        let mut merged = s;
        merged.merge(&StreamingStats::new());
        assert_eq!(merged.count(), s.count());
        assert_eq!(merged.sum(), s.sum());
        assert_eq!(merged.min(), s.min());
        assert_eq!(merged.max(), s.max());
        assert_eq!(merged.mean(), s.mean());
        assert_eq!(merged.variance(), s.variance());
        let mut seeded = StreamingStats::new();
        seeded.merge(&s);
        assert_eq!(seeded.count(), s.count());
        assert_eq!(seeded.min(), s.min());
        assert_eq!(seeded.max(), s.max());
        assert_eq!(seeded.mean(), s.mean());
        assert_eq!(seeded.variance(), s.variance());
        // Two empties stay empty (and keep yielding None).
        let mut e = StreamingStats::new();
        e.merge(&StreamingStats::new());
        assert_eq!(e.count(), 0);
        assert_eq!(e.min(), None);
        assert_eq!(e.max(), None);
    }

    proptest! {
        #[test]
        fn percentile_is_monotone_in_q(
            mut values in proptest::collection::vec(-1e6f64..1e6, 2..100),
            q1 in 0.0f64..=1.0,
            q2 in 0.0f64..=1.0,
        ) {
            values.sort_by(|a, b| a.partial_cmp(b).unwrap());
            let (lo, hi) = if q1 <= q2 { (q1, q2) } else { (q2, q1) };
            let a = percentile(&values, lo).unwrap();
            let b = percentile(&values, hi).unwrap();
            prop_assert!(a <= b + 1e-9);
        }

        #[test]
        fn streaming_stats_sharded_merge_equals_single_pass(
            values in proptest::collection::vec(-1e6f64..1e6, 1..200),
            shards in 1usize..8,
        ) {
            let mut single = StreamingStats::new();
            for &x in &values {
                single.push(x);
            }
            // Partition into contiguous chunks as the fleet driver does,
            // then fold shard accumulators in order.
            let chunk = values.len().div_ceil(shards);
            let mut merged = StreamingStats::new();
            for part in values.chunks(chunk) {
                let mut local = StreamingStats::new();
                for &x in part {
                    local.push(x);
                }
                merged.merge(&local);
            }
            prop_assert_eq!(merged.count(), single.count());
            prop_assert_eq!(merged.min(), single.min());
            prop_assert_eq!(merged.max(), single.max());
            prop_assert!((merged.sum() - single.sum()).abs() <= 1e-6 * single.sum().abs().max(1.0));
            let (ms, ss) = (merged.mean().unwrap(), single.mean().unwrap());
            prop_assert!((ms - ss).abs() <= 1e-9 * ss.abs().max(1.0), "{} vs {}", ms, ss);
            let (mv, sv) = (merged.variance().unwrap(), single.variance().unwrap());
            prop_assert!((mv - sv).abs() <= 1e-6 * sv.abs().max(1.0), "{} vs {}", mv, sv);
        }

        #[test]
        fn correlation_is_bounded(
            x in proptest::collection::vec(-100.0f64..100.0, 3..50),
        ) {
            let y: Vec<f64> = x.iter().map(|v| v * 2.0 + (v * 17.0).sin()).collect();
            if let Some(r) = pearson(&x, &y) {
                prop_assert!((-1.0 - 1e-9..=1.0 + 1e-9).contains(&r));
            }
            if let Some(r) = spearman(&x, &y) {
                prop_assert!((-1.0 - 1e-9..=1.0 + 1e-9).contains(&r));
            }
        }
    }
}
