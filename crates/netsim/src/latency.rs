//! The network facade: one-way message latency between clusters.
//!
//! A message's one-way latency is the sum of:
//!
//! 1. **Propagation** — speed-of-light fiber delay from geometry, plus a
//!    fixed per-hop cost for the switching tiers the path crosses.
//! 2. **Transmission** — `bytes / bandwidth` for the narrowest link class.
//! 3. **Queueing** — sampled from the path's [`crate::congestion`] process.
//!
//! The paper validates this decomposition in §3.3.5: median cross-cluster
//! latency closely tracks wire latency, while tails come from congestion.

use crate::congestion::{CongestionParams, CongestionProcess, CongestionState};
use crate::topology::{ClusterId, PathClass, Topology};
use rpclens_simcore::rng::Prng;
use rpclens_simcore::time::{SimDuration, SimTime};

/// Fixed costs and bandwidths per path class.
#[derive(Debug, Clone)]
pub struct NetworkConfig {
    /// Base one-way latency inside a cluster (ToR + fabric hops).
    pub same_cluster_base: SimDuration,
    /// Base one-way latency between clusters in one datacenter.
    pub same_dc_base: SimDuration,
    /// Additional fixed cost for leaving a datacenter (metro/WAN edge).
    pub wan_edge_cost: SimDuration,
    /// Per-flow bandwidth within a cluster, bytes/sec.
    pub cluster_bandwidth: f64,
    /// Per-flow bandwidth across the WAN, bytes/sec.
    pub wan_bandwidth: f64,
    /// Whether paths carry congestion state (disable for ablations: pure
    /// wire + transmission latency).
    pub congestion_enabled: bool,
}

impl Default for NetworkConfig {
    fn default() -> Self {
        NetworkConfig {
            same_cluster_base: SimDuration::from_micros(12),
            same_dc_base: SimDuration::from_micros(90),
            wan_edge_cost: SimDuration::from_micros(300),
            // 12.5 GB/s ≈ 100 Gbps fabric; 1.25 GB/s ≈ 10 Gbps per WAN flow.
            cluster_bandwidth: 12.5e9,
            wan_bandwidth: 1.25e9,
            congestion_enabled: true,
        }
    }
}

/// The fleet network: topology plus per-path congestion state.
///
/// Wire latency is a pure function of the topology, so the
/// `(fixed + propagation, bandwidth)` pair for every cluster pair is
/// precomputed at construction — the per-message cost is one table read
/// and one division instead of a path classification and a great-circle
/// propagation computation. Congestion processes stay lazily
/// materialised, in a dense per-pair table rather than a `HashMap`, so
/// the two wire traversals of every simulated span cost no hashing.
#[derive(Debug)]
pub struct Network {
    topo: Topology,
    cfg: NetworkConfig,
    /// Precomputed `(fixed + propagation, per-flow bandwidth)` for each
    /// `(src, dst)` pair, indexed `src * num_clusters + dst`.
    wire: Vec<(SimDuration, f64)>,
    /// Lazily created congestion state per *unordered* cluster pair,
    /// indexed `min * num_clusters + max`.
    paths: Vec<Option<CongestionProcess>>,
    active_paths: usize,
    num_clusters: usize,
    path_rng: Prng,
}

impl Network {
    /// Creates a network over `topo` with per-path congestion processes
    /// seeded from `seed`.
    pub fn new(topo: Topology, cfg: NetworkConfig, seed: u64) -> Self {
        let num_clusters = topo.num_clusters();
        let ids = topo.cluster_ids();
        // The dense tables index by raw cluster id.
        debug_assert!(ids.iter().enumerate().all(|(i, c)| c.0 as usize == i));
        let mut wire = Vec::with_capacity(num_clusters * num_clusters);
        for &src in &ids {
            for &dst in &ids {
                let class = topo.path_class(src, dst);
                let (fixed, bandwidth) = match class {
                    PathClass::SameCluster => (cfg.same_cluster_base, cfg.cluster_bandwidth),
                    PathClass::SameDatacenter => (cfg.same_dc_base, cfg.cluster_bandwidth),
                    _ => (cfg.same_dc_base + cfg.wan_edge_cost, cfg.wan_bandwidth),
                };
                let propagation = match class {
                    PathClass::SameCluster | PathClass::SameDatacenter => SimDuration::ZERO,
                    _ => topo
                        .cluster(src)
                        .location
                        .propagation_delay(&topo.cluster(dst).location),
                };
                wire.push((fixed + propagation, bandwidth));
            }
        }
        Network {
            topo,
            cfg,
            wire,
            paths: (0..num_clusters * num_clusters).map(|_| None).collect(),
            active_paths: 0,
            num_clusters,
            path_rng: Prng::seed_from(seed).stream(0x4E45_5457),
        }
    }

    /// The underlying topology.
    pub fn topology(&self) -> &Topology {
        &self.topo
    }

    /// The configured constants.
    pub fn config(&self) -> &NetworkConfig {
        &self.cfg
    }

    /// The deterministic wire-plus-transmission latency for a message of
    /// `bytes` between two clusters — no congestion, no randomness.
    ///
    /// This is what a load balancer can estimate ahead of time, and what
    /// the paper cross-validates cross-cluster medians against.
    pub fn base_latency(&self, src: ClusterId, dst: ClusterId, bytes: u64) -> SimDuration {
        let (fixed_plus_propagation, bandwidth) =
            self.wire[src.0 as usize * self.num_clusters + dst.0 as usize];
        let transmission = SimDuration::from_secs_f64(bytes as f64 / bandwidth);
        fixed_plus_propagation + transmission
    }

    /// An RTT estimate for load-balancing decisions (twice the zero-byte
    /// base latency).
    pub fn rtt_estimate(&self, a: ClusterId, b: ClusterId) -> SimDuration {
        self.base_latency(a, b, 0).mul_f64(2.0)
    }

    /// Samples the full one-way latency of a message sent at `now`,
    /// including congestion queueing.
    ///
    /// The congestion *trajectory* (when each path is calm vs congested)
    /// evolves from the path's own seed-derived stream, so it is identical
    /// across shards; the per-message jitter is drawn from `rng`, the
    /// caller's stream. Together these make the sampled latency a pure
    /// function of `(network seed, src, dst, bytes, now, caller rng)`.
    pub fn one_way_latency(
        &mut self,
        src: ClusterId,
        dst: ClusterId,
        bytes: u64,
        now: SimTime,
        rng: &mut Prng,
    ) -> SimDuration {
        self.one_way_latency_observed(src, dst, bytes, now, rng).0
    }

    /// Like [`Network::one_way_latency`], but also reports whether the
    /// path was inside a congestion episode at send time — the signal
    /// the observability plane counts as congested-wire exposure. The
    /// returned latency and the rng stream consumed are identical to
    /// the unobserved variant.
    pub fn one_way_latency_observed(
        &mut self,
        src: ClusterId,
        dst: ClusterId,
        bytes: u64,
        now: SimTime,
        rng: &mut Prng,
    ) -> (SimDuration, bool) {
        let base = self.base_latency(src, dst, bytes);
        if !self.cfg.congestion_enabled {
            return (base, false);
        }
        let key = ordered(src, dst);
        let slot = &mut self.paths[key.0 .0 as usize * self.num_clusters + key.1 .0 as usize];
        let process = match slot {
            Some(process) => process,
            None => {
                // The trajectory derives from the path's own label, not
                // from call order, so lazy creation stays deterministic.
                let params = match self.topo.path_class(src, dst) {
                    PathClass::SameCluster | PathClass::SameDatacenter => {
                        CongestionParams::fabric()
                    }
                    _ => CongestionParams::wan(),
                };
                self.active_paths += 1;
                slot.insert(CongestionProcess::new(
                    params,
                    self.path_rng.stream(path_label(key)),
                ))
            }
        };
        let congested = process.state_at(now) == CongestionState::Congested;
        (base + process.queueing_delay(now, rng), congested)
    }

    /// The path class between two clusters (delegates to the topology).
    pub fn path_class(&self, a: ClusterId, b: ClusterId) -> PathClass {
        self.topo.path_class(a, b)
    }

    /// Number of paths with materialised congestion state.
    pub fn active_paths(&self) -> usize {
        self.active_paths
    }
}

fn ordered(a: ClusterId, b: ClusterId) -> (ClusterId, ClusterId) {
    if a.0 <= b.0 {
        (a, b)
    } else {
        (b, a)
    }
}

fn path_label(key: (ClusterId, ClusterId)) -> u64 {
    ((key.0 .0 as u64) << 16) | key.1 .0 as u64
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::topology::Topology;

    fn network(seed: u64) -> Network {
        Network::new(
            Topology::default_world(seed),
            NetworkConfig::default(),
            seed,
        )
    }

    /// Finds one cluster pair of each requested class.
    fn find_pair(net: &Network, class: PathClass) -> (ClusterId, ClusterId) {
        let ids = net.topology().cluster_ids();
        for &a in &ids {
            for &b in &ids {
                if net.path_class(a, b) == class {
                    return (a, b);
                }
            }
        }
        panic!("no pair with class {class:?}");
    }

    #[test]
    fn base_latency_orders_by_distance_class() {
        let net = network(1);
        let (a1, b1) = find_pair(&net, PathClass::SameCluster);
        let (a2, b2) = find_pair(&net, PathClass::SameDatacenter);
        let (a3, b3) = find_pair(&net, PathClass::SameRegion);
        let (a4, b4) = find_pair(&net, PathClass::InterContinent);
        let l1 = net.base_latency(a1, b1, 1024);
        let l2 = net.base_latency(a2, b2, 1024);
        let l3 = net.base_latency(a3, b3, 1024);
        let l4 = net.base_latency(a4, b4, 1024);
        assert!(l1 < l2, "{l1} !< {l2}");
        assert!(l2 < l3, "{l2} !< {l3}");
        assert!(l3 < l4, "{l3} !< {l4}");
    }

    #[test]
    fn intercontinental_rtt_lands_near_paper_scale() {
        // The paper reports ~200 ms as the longest WAN RTT; our farthest
        // pair should produce triple-digit-millisecond RTTs.
        let net = network(2);
        let ids = net.topology().cluster_ids();
        let mut max_rtt = SimDuration::ZERO;
        for &a in &ids {
            for &b in &ids {
                max_rtt = max_rtt.max(net.rtt_estimate(a, b));
            }
        }
        let ms = max_rtt.as_millis_f64();
        assert!((100.0..350.0).contains(&ms), "max rtt {ms} ms");
    }

    #[test]
    fn transmission_grows_with_size() {
        let net = network(3);
        let (a, b) = find_pair(&net, PathClass::SameCluster);
        let small = net.base_latency(a, b, 64);
        let large = net.base_latency(a, b, 16 * 1024 * 1024);
        assert!(large.as_nanos() > small.as_nanos() + 1_000_000);
    }

    #[test]
    fn one_way_latency_is_at_least_base() {
        let mut net = network(4);
        let mut rng = Prng::seed_from(4);
        let ids = net.topology().cluster_ids();
        for i in 0..200 {
            let a = ids[i % ids.len()];
            let b = ids[(i * 7 + 3) % ids.len()];
            let base = net.base_latency(a, b, 512);
            let got =
                net.one_way_latency(a, b, 512, SimTime::from_nanos(i as u64 * 1000), &mut rng);
            assert!(got >= base, "{got} < {base}");
        }
        assert!(net.active_paths() > 0);
    }

    #[test]
    fn congestion_state_is_shared_across_directions() {
        let mut net = network(5);
        let (a, b) = find_pair(&net, PathClass::SameRegion);
        let mut rng = Prng::seed_from(6);
        net.one_way_latency(a, b, 64, SimTime::ZERO, &mut rng);
        net.one_way_latency(b, a, 64, SimTime::ZERO, &mut rng);
        // Both directions share one path entry.
        assert_eq!(net.active_paths(), 1);
    }

    #[test]
    fn observed_variant_matches_unobserved_latency() {
        // The observability plane must not perturb the simulation: the
        // observed call returns the same latency and consumes the same
        // rng stream as the plain one.
        let mut plain_net = network(9);
        let mut obs_net = network(9);
        let mut plain_rng = Prng::seed_from(10);
        let mut obs_rng = Prng::seed_from(10);
        let ids = plain_net.topology().cluster_ids();
        let mut saw_congested = false;
        for i in 0..5000usize {
            let s = ids[i % ids.len()];
            let d = ids[(i * 11 + 5) % ids.len()];
            let t = SimTime::from_nanos(i as u64 * 2_000_000);
            let plain = plain_net.one_way_latency(s, d, 256, t, &mut plain_rng);
            let (observed, congested) =
                obs_net.one_way_latency_observed(s, d, 256, t, &mut obs_rng);
            assert_eq!(plain, observed);
            saw_congested |= congested;
        }
        assert!(saw_congested, "expected at least one congestion episode");
        // Streams stayed in lockstep all the way through.
        assert_eq!(plain_rng.next_u64(), obs_rng.next_u64());
    }

    #[test]
    fn median_crosscluster_latency_is_wire_dominated() {
        // Cross-validation from §3.3.5: the median sampled latency should
        // sit close to the deterministic wire latency.
        let mut net = network(7);
        let (a, b) = find_pair(&net, PathClass::InterContinent);
        let base = net.base_latency(a, b, 1024).as_secs_f64();
        let mut rng = Prng::seed_from(8);
        let mut samples: Vec<f64> = (0..20_001u64)
            .map(|i| {
                net.one_way_latency(a, b, 1024, SimTime::from_nanos(i * 5_000_000), &mut rng)
                    .as_secs_f64()
            })
            .collect();
        samples.sort_by(|x, y| x.partial_cmp(y).unwrap());
        let median = samples[samples.len() / 2];
        assert!(
            (median - base) / base < 0.05,
            "median {median} too far above wire {base}"
        );
    }
}
