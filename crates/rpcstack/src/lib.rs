//! A userspace RPC stack model (Stubby/gRPC-like).
//!
//! The paper decomposes every RPC into nine stack components plus the
//! server application (Fig. 9), and separately accounts the CPU cycles the
//! stack consumes (the *RPC cycle tax*, Fig. 20). This crate implements
//! that stack:
//!
//! - [`component`]: the latency components and per-RPC breakdowns.
//! - [`codec`]: the binary wire format (framing, varints, CRC32).
//! - [`cost`]: cycle cost models for serialization, compression,
//!   encryption, networking, and library dispatch.
//! - [`deadline`]: deadline budgets and hop-by-hop propagation.
//! - [`error`]: RPC error taxonomy and injection profiles (Fig. 23).
//! - [`hedging`]: request hedging, the dominant source of cancellations.
//! - [`loadbalancer`]: pluggable load-balancing policies (§4.3).
//! - [`retry`]: backoff and retry budgets for transient errors.
//! - [`queue`]: soft client-side queue delay models.
//!
//! The stack is *driven* by the fleet simulator's event loop; this crate
//! supplies the deterministic state machines and cost computations.

pub mod codec;
pub mod component;
pub mod cost;
pub mod deadline;
pub mod error;
pub mod hedging;
pub mod loadbalancer;
pub mod queue;
pub mod retry;

/// Convenience re-exports of the most commonly used rpcstack types.
pub mod prelude {
    pub use crate::{
        codec::{decode_frame, encode_frame, DecodeError, Flags, RpcFrame, RpcHeader},
        component::{LatencyBreakdown, LatencyComponent},
        cost::{CycleCategory, CycleCost, MessageClass, StackCostConfig, StackCostModel},
        deadline::{Deadline, DeadlinePolicy},
        error::{ErrorKind, ErrorProfile},
        hedging::HedgePolicy,
        loadbalancer::{LbPolicy, LoadBalancer, TargetInfo},
        queue::SoftQueue,
        retry::{BackoffPolicy, RetryBudget},
    };
}
