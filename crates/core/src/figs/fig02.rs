//! Fig. 2: per-method RPC completion time (RCT), sorted by median.
//!
//! Paper anchors: for 90% of methods P1 ≤ 657 µs; 90% of methods have a
//! median ≥ 10.7 ms; ≥ 99.5% of methods have P99 ≥ 1 ms; 50% of methods
//! have P99 ≥ 225 ms; the slowest 5% of methods have P1 ≥ 166 ms and
//! P99 ≥ 5 s. The overall message: per-method latency spans µs to
//! seconds, with enormous within-method spread.

use crate::check::ExpectationSet;
use crate::common::{paper_query, MethodHeatmap};
use crate::render::{fmt_secs, sketch_cdf, TextTable};
use rpclens_fleet::driver::FleetRun;

/// The computed figure: the per-method latency heatmap.
#[derive(Debug)]
pub struct Fig02 {
    /// Per-method RCT quantiles, sorted by median.
    pub heatmap: MethodHeatmap,
}

/// Computes the figure from a fleet run.
pub fn compute(run: &FleetRun) -> Fig02 {
    let query = paper_query();
    Fig02 {
        heatmap: MethodHeatmap::build(run, &query, |_, s| s.total_latency().as_secs_f64()),
    }
}

/// Renders the heatmap (sampled rows) and the across-method CDFs.
pub fn render(fig: &Fig02) -> String {
    let hm = &fig.heatmap;
    let mut t = TextTable::new(&["method#", "P1", "P10", "P50", "P90", "P99"]);
    let step = (hm.len() / 20).max(1);
    for (i, row) in hm.rows.iter().enumerate().step_by(step) {
        t.row(vec![
            i.to_string(),
            fmt_secs(row.summary.p01),
            fmt_secs(row.summary.p10),
            fmt_secs(row.summary.p50),
            fmt_secs(row.summary.p90),
            fmt_secs(row.summary.p99),
        ]);
    }
    format!(
        "Fig. 2 — Per-method RPC completion time ({} methods, sorted by median)\n{}\n\
         CDF of per-method medians:\n{}\nCDF of per-method P99s:\n{}",
        hm.len(),
        t.render(),
        sketch_cdf(&hm.across_methods(0.5), fmt_secs),
        sketch_cdf(&hm.across_methods(0.99), fmt_secs),
    )
}

/// Paper-vs-measured checks.
pub fn checks(fig: &Fig02) -> ExpectationSet {
    let hm = &fig.heatmap;
    let mut s = ExpectationSet::new();
    // Fast first percentiles: most methods can complete fast sometimes.
    s.add(
        "fig2.p01_sub_3ms",
        "for 90% of methods, P1 latency is 657us or less",
        hm.fraction_where(0.01, |v| v <= 3e-3),
        0.6,
        1.0,
    );
    // Millisecond medians dominate.
    s.add(
        "fig2.median_ge_5ms",
        "90% of methods have median latency >= 10.7ms",
        hm.fraction_where(0.5, |v| v >= 5e-3),
        0.6,
        1.0,
    );
    s.add(
        "fig2.p99_ge_1ms",
        ">= 99.5% of methods have P99 >= 1ms",
        hm.fraction_where(0.99, |v| v >= 1e-3),
        0.95,
        1.0,
    );
    s.add(
        "fig2.half_p99_ge_50ms",
        "50% of methods have P99 >= 225ms",
        hm.fraction_where(0.99, |v| v >= 50e-3),
        0.35,
        1.0,
    );
    // Slowest 5% of methods: still fast sometimes, very slow at P99.
    let slow_p99 = hm.quantile_of_quantiles(0.99, 0.95).unwrap_or(f64::NAN);
    s.add(
        "fig2.slowest5pct_p99",
        "slowest 5% of methods have P99 >= 5s",
        slow_p99,
        0.5,
        f64::INFINITY,
    );
    // The full dynamic range of medians spans from sub-ms to 100ms+.
    let medians = hm.across_methods(0.5);
    let range =
        medians.last().copied().unwrap_or(f64::NAN) / medians.first().copied().unwrap_or(f64::NAN);
    s.add(
        "fig2.median_dynamic_range",
        "method medians span hundreds of us to seconds",
        range,
        50.0,
        f64::INFINITY,
    );
    s
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::common::testrun::shared;

    #[test]
    fn checks_pass_on_test_run() {
        let fig = compute(shared());
        let c = checks(&fig);
        assert!(c.all_passed(), "{c}");
    }

    #[test]
    fn heatmap_has_many_methods_and_is_sorted() {
        let fig = compute(shared());
        assert!(fig.heatmap.len() > 30, "{}", fig.heatmap.len());
        assert!(fig
            .heatmap
            .rows
            .windows(2)
            .all(|w| w[0].summary.p50 <= w[1].summary.p50));
    }

    #[test]
    fn within_method_quantiles_are_ordered() {
        let fig = compute(shared());
        for r in &fig.heatmap.rows {
            assert!(r.summary.p01 <= r.summary.p50);
            assert!(r.summary.p50 <= r.summary.p99);
        }
    }

    #[test]
    fn render_contains_cdf_panels() {
        let fig = compute(shared());
        let text = render(&fig);
        assert!(text.contains("Fig. 2"));
        assert!(text.contains("CDF of per-method P99s"));
    }
}
