//! A small, dependency-free worker pool for shard execution.
//!
//! PR 1 made the driver deterministic at any shard count; until this
//! module existed, the driver still spawned *one thread per shard*, so
//! shard count and thread count were the same knob. This module splits
//! them: **shards** stay the unit of determinism (contiguous root
//! chunks, merged in shard-id order), while **threads** become a pure
//! execution knob — a bounded pool of workers claiming shard indices
//! from a shared counter.
//!
//! Two pieces:
//!
//! - [`run_shards`] — the pool itself: `threads` scoped workers pull
//!   shard indices from an [`AtomicUsize`] until the supply is
//!   exhausted. Dynamic claiming (instead of static striping) keeps all
//!   workers busy when shards have skewed costs, which they do: root
//!   chunks are contiguous in arrival time, so diurnal-peak shards carry
//!   more spans than off-peak ones.
//! - [`OrderedFold`] — the streaming, order-restoring merge. Workers
//!   finish shards in a nondeterministic order, but every accumulator
//!   must be folded in shard-id order (the trace store is
//!   order-sensitive; see `docs/ARCHITECTURE.md`). `OrderedFold` is a
//!   reorder buffer: completed shards are pushed in any order, and the
//!   fold function is applied exactly in index order, as early as
//!   possible. Folding eagerly (instead of collecting all shards and
//!   folding after the join) bounds peak memory: at most
//!   `threads + out-of-order-window` shard accumulators are alive at
//!   once, instead of all `shards` of them — the property that lets the
//!   `fleet` preset stream hundreds of shards without hundreds of trace
//!   stores resident.
//!
//! Determinism argument, in one paragraph: the folded result is a pure
//! function of `(items, fold)` and never of completion order, because
//! `OrderedFold` releases item *i* to the fold only after items
//! `0..i` have been folded. The property test in
//! `crates/bench/tests/pool_determinism.rs` drives a real accumulator
//! (`ShardCounters`) through random completion permutations and asserts
//! the merged result equals the sequential fold; the golden-digest
//! matrix in the same file pins the end-to-end guarantee at
//! (shards, threads) ∈ {1,4}×{1,4}.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// A reorder buffer that folds out-of-order items in index order.
///
/// Push `(index, item)` pairs in any order; `fold(acc, item)` is called
/// exactly once per item, in strictly ascending index order. Items that
/// arrive ahead of their turn are parked in a `BTreeMap` until the gap
/// below them closes. Indices must form a contiguous range `0..n` with
/// no duplicates.
#[derive(Debug)]
pub struct OrderedFold<T> {
    /// The running fold; `None` until index 0 arrives.
    acc: Option<T>,
    /// Next index the fold is waiting for.
    next: usize,
    /// Items that arrived ahead of their turn, keyed by index.
    parked: BTreeMap<usize, T>,
}

impl<T> Default for OrderedFold<T> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T> OrderedFold<T> {
    /// An empty buffer waiting for index 0.
    pub fn new() -> Self {
        OrderedFold {
            acc: None,
            next: 0,
            parked: BTreeMap::new(),
        }
    }

    /// Offers item `index`, folding every item that is now unblocked.
    ///
    /// The first item (index 0) seeds the accumulator; each subsequent
    /// in-order item is merged with `fold(&mut acc, item, index)`, where
    /// `index` is the id of the item being folded. The index lets the
    /// fold make frontier decisions — the fleet driver uses it to flush
    /// every aggregation window no later shard can touch the moment
    /// shard `index` folds, which is what keeps merged window state from
    /// accumulating across the whole run.
    ///
    /// # Panics
    /// Panics if `index` was already folded or is already parked — both
    /// indicate a duplicate claim, which the pool can never produce.
    pub fn push(&mut self, index: usize, item: T, mut fold: impl FnMut(&mut T, T, usize)) {
        assert!(
            index >= self.next && !self.parked.contains_key(&index),
            "duplicate shard index {index} pushed to OrderedFold"
        );
        self.parked.insert(index, item);
        while let Some(item) = self.parked.remove(&self.next) {
            match &mut self.acc {
                None => {
                    debug_assert_eq!(self.next, 0);
                    self.acc = Some(item);
                }
                Some(acc) => fold(acc, item, self.next),
            }
            self.next += 1;
        }
    }

    /// Number of items folded so far (the length of the closed prefix).
    pub fn folded(&self) -> usize {
        self.next
    }

    /// Number of items parked ahead of the fold frontier.
    pub fn parked(&self) -> usize {
        self.parked.len()
    }

    /// Consumes the buffer, returning the fold of all pushed items.
    ///
    /// # Panics
    /// Panics if any pushed item is still parked (a gap was never
    /// filled), or if nothing was pushed.
    pub fn finish(self) -> T {
        assert!(
            self.parked.is_empty(),
            "OrderedFold finished with {} unfolded items parked above index {}",
            self.parked.len(),
            self.next
        );
        self.acc.expect("OrderedFold finished without any items")
    }
}

/// Runs `n_shards` work items on a pool of at most `threads` workers,
/// streaming completed items into an in-order fold.
///
/// - `work(shard_id)` builds and runs one shard; it is called at most
///   once per id, from whichever worker claims the id first.
/// - `fold(acc, next, id)` merges completed shard `id` into the
///   accumulator; calls are strictly in shard-id order (item 0 seeds
///   the accumulator). The fold runs under a mutex on the worker that
///   closed the gap — cheap relative to simulation, and it lets shard
///   memory be released while later shards are still running.
///
/// With `threads == 1` no threads are spawned at all: shards run on the
/// caller's thread in id order, which is exactly the sequential fold.
///
/// # Panics
/// Propagates panics from `work` (the scope join panics) and panics if
/// `n_shards == 0`.
pub fn run_shards<T: Send>(
    n_shards: usize,
    threads: usize,
    work: impl Fn(usize) -> T + Sync,
    fold: impl Fn(&mut T, T, usize) + Sync,
) -> T {
    assert!(n_shards > 0, "run_shards needs at least one shard");
    let threads = threads.clamp(1, n_shards);
    if threads == 1 {
        let mut merge = OrderedFold::new();
        for id in 0..n_shards {
            merge.push(id, work(id), &fold);
        }
        return merge.finish();
    }
    let next_shard = AtomicUsize::new(0);
    let merge = Mutex::new(OrderedFold::new());
    std::thread::scope(|s| {
        let handles: Vec<_> = (0..threads)
            .map(|_| {
                let next_shard = &next_shard;
                let merge = &merge;
                let work = &work;
                let fold = &fold;
                s.spawn(move || loop {
                    let id = next_shard.fetch_add(1, Ordering::Relaxed);
                    if id >= n_shards {
                        return;
                    }
                    let item = work(id);
                    merge.lock().expect("merge lock").push(id, item, fold);
                })
            })
            .collect();
        for h in handles {
            h.join().expect("shard worker panicked");
        }
    });
    merge.into_inner().expect("merge lock poisoned").finish()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ordered_fold_handles_reverse_order() {
        let mut f = OrderedFold::new();
        // Push 3,2,1,0: everything parks until 0 arrives, then the whole
        // chain folds at once, in index order.
        for i in (1..4).rev() {
            f.push(i, vec![i], |a: &mut Vec<usize>, b, _| a.extend(b));
            assert_eq!(f.folded(), 0);
        }
        assert_eq!(f.parked(), 3);
        f.push(0, vec![0], |a, b, _| a.extend(b));
        assert_eq!(f.folded(), 4);
        assert_eq!(f.finish(), vec![0, 1, 2, 3]);
    }

    #[test]
    fn ordered_fold_interleaved() {
        let mut f = OrderedFold::new();
        let fold = |a: &mut String, b: String, _: usize| a.push_str(&b);
        f.push(1, "b".to_string(), fold);
        f.push(0, "a".to_string(), fold);
        assert_eq!(f.folded(), 2);
        f.push(3, "d".to_string(), fold);
        f.push(2, "c".to_string(), fold);
        assert_eq!(f.finish(), "abcd");
    }

    #[test]
    fn ordered_fold_reports_folded_index() {
        // The fold sees the id of the item being merged, not the push
        // order: push 2,1,0 and the fold still observes ids 1 then 2.
        let mut seen = Vec::new();
        let mut f = OrderedFold::new();
        f.push(2, (), |_, _, id| seen.push(id));
        f.push(1, (), |_, _, id| seen.push(id));
        f.push(0, (), |_, _, id| seen.push(id));
        f.finish();
        assert_eq!(seen, vec![1, 2]);
    }

    #[test]
    #[should_panic(expected = "duplicate shard index")]
    fn ordered_fold_rejects_duplicates() {
        let mut f = OrderedFold::new();
        f.push(0, 1u64, |a, b, _| *a += b);
        f.push(0, 2u64, |a, b, _| *a += b);
    }

    #[test]
    #[should_panic(expected = "unfolded items parked")]
    fn ordered_fold_rejects_gaps() {
        let mut f = OrderedFold::new();
        f.push(1, 1u64, |a, b, _| *a += b);
        f.finish();
    }

    #[test]
    fn run_shards_matches_sequential_at_any_thread_count() {
        // Order-sensitive fold (string concat) so any ordering bug shows.
        let expect: String = (0..23).map(|i| format!("[{i}]")).collect();
        for threads in [1usize, 2, 4, 8, 23, 64] {
            let got = run_shards(
                23,
                threads,
                |id| format!("[{id}]"),
                |a, b, _| a.push_str(&b),
            );
            assert_eq!(got, expect, "threads={threads}");
        }
    }

    #[test]
    fn run_shards_single_thread_spawns_nothing() {
        // With threads=1 the closure runs on the caller's thread.
        let caller = std::thread::current().id();
        let got = run_shards(
            4,
            1,
            |id| {
                assert_eq!(std::thread::current().id(), caller);
                id as u64
            },
            |a, b, _| *a += b,
        );
        assert_eq!(got, 6);
    }
}
