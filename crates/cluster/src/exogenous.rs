//! The exogenous machine-state variables of Table 2.
//!
//! | Variable          | Description                                        |
//! |-------------------|----------------------------------------------------|
//! | CPU util          | % CPU utilized                                     |
//! | Memory BW         | total memory bandwidth utilized (GB/s)             |
//! | Long wakeup rate  | fraction of scheduling events longer than 50 µs    |
//! | Cycles per Inst.  | CPU's cycles per instruction                       |
//!
//! Each profile is a *pure function of time and seed*: a diurnal sinusoid
//! plus band-limited noise (linear interpolation between per-bucket hash
//! noise), so any component can query machine state at any instant without
//! shared mutable state, and a 24-hour query sweep (Fig. 18) is exactly
//! reproducible.

use rpclens_simcore::rng::SplitMix64;
use rpclens_simcore::time::{SimDuration, SimTime};
use serde::{Deserialize, Serialize};

/// A snapshot of the four exogenous variables at one instant.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ExogenousVars {
    /// CPU utilization in `[0, 1]`.
    pub cpu_util: f64,
    /// Memory bandwidth utilized, GB/s.
    pub mem_bw_gbps: f64,
    /// Fraction of scheduling events taking longer than 50 µs.
    pub long_wakeup_rate: f64,
    /// Cycles per instruction.
    pub cpi: f64,
}

/// Generator parameters for one machine's (or cluster's) exogenous state.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct ExogenousProfile {
    /// Mean CPU utilization (the diurnal curve oscillates around this).
    pub base_util: f64,
    /// Peak-to-mean amplitude of the diurnal utilization swing.
    pub diurnal_amp: f64,
    /// Hour of day (0-24) at which utilization peaks.
    pub peak_hour: f64,
    /// Std-dev of the band-limited utilization noise.
    pub noise: f64,
    /// Peak machine memory bandwidth, GB/s, reached at 100% utilization.
    pub mem_bw_peak_gbps: f64,
    /// Seed for this profile's noise stream.
    pub seed: u64,
}

/// Noise bucket width: one value per 5 simulated minutes, interpolated.
const NOISE_BUCKET: SimDuration = SimDuration::from_mins(5);

impl ExogenousProfile {
    /// A typical shared-machine profile with moderate load.
    pub fn shared(seed: u64) -> Self {
        ExogenousProfile {
            base_util: 0.45,
            diurnal_amp: 0.18,
            peak_hour: 14.0,
            noise: 0.06,
            mem_bw_peak_gbps: 120.0,
            seed,
        }
    }

    /// A heavily loaded profile (the paper's "slow cluster").
    pub fn busy(seed: u64) -> Self {
        ExogenousProfile {
            base_util: 0.62,
            diurnal_amp: 0.2,
            peak_hour: 14.0,
            noise: 0.07,
            mem_bw_peak_gbps: 120.0,
            seed,
        }
    }

    /// A lightly loaded profile (the paper's "fast cluster").
    pub fn light(seed: u64) -> Self {
        ExogenousProfile {
            base_util: 0.3,
            diurnal_amp: 0.12,
            peak_hour: 14.0,
            noise: 0.05,
            mem_bw_peak_gbps: 120.0,
            seed,
        }
    }

    /// Band-limited noise in `[-1, 1]`: hash noise per bucket, linearly
    /// interpolated between bucket centers.
    fn noise_at(&self, t: SimTime, stream: u64) -> f64 {
        let bucket = t.as_nanos() / NOISE_BUCKET.as_nanos();
        let frac = (t.as_nanos() % NOISE_BUCKET.as_nanos()) as f64 / NOISE_BUCKET.as_nanos() as f64;
        let a = bucket_noise(self.seed, stream, bucket);
        let b = bucket_noise(self.seed, stream, bucket + 1);
        a + (b - a) * frac
    }

    /// Samples only the CPU utilization at instant `t`.
    ///
    /// Exactly the `cpu_util` field of [`ExogenousProfile::sample`] —
    /// same operations in the same order, so the value is bit-identical —
    /// without evaluating the three other variables. The fleet driver's
    /// hot path uses this where it needs utilization alone (pool queueing
    /// input, ambient client-side load), which skips two `powf`s and six
    /// hashed noise lookups per call.
    pub fn cpu_util_at(&self, t: SimTime) -> f64 {
        let hour = (t.as_secs_f64() / 3600.0) % 24.0;
        let diurnal = (std::f64::consts::TAU * (hour - self.peak_hour + 6.0) / 24.0).sin();
        (self.base_util + self.diurnal_amp * diurnal + self.noise * self.noise_at(t, 1))
            .clamp(0.02, 0.98)
    }

    /// Samples the exogenous variables at instant `t`.
    pub fn sample(&self, t: SimTime) -> ExogenousVars {
        let cpu_util = self.cpu_util_at(t);

        // Memory bandwidth tracks utilization sublinearly with its own
        // noise component.
        let mem_frac =
            (0.25 + 0.75 * cpu_util.powf(0.8) + 0.08 * self.noise_at(t, 2)).clamp(0.05, 1.0);
        let mem_bw_gbps = self.mem_bw_peak_gbps * mem_frac;

        // Long scheduler wakeups grow superlinearly with utilization: a
        // nearly idle machine rarely preempts, a saturated one often does.
        let long_wakeup_rate =
            (0.001 + 0.02 * cpu_util.powi(3) + 0.002 * self.noise_at(t, 3).abs()).clamp(0.0, 0.15);

        // CPI degrades with memory pressure and sharing (cache/BW
        // contention), per the coupling observed in Fig. 17.
        let cpi = (0.85 + 0.35 * cpu_util + 0.25 * mem_frac + 0.04 * self.noise_at(t, 4)).max(0.7);

        ExogenousVars {
            cpu_util,
            mem_bw_gbps,
            long_wakeup_rate,
            cpi,
        }
    }

    /// Averages the variables over a window (samples every minute), as the
    /// monitoring pipeline does when correlating with latency (Fig. 17
    /// aggregates over 30 minutes).
    pub fn window_average(&self, start: SimTime, window: SimDuration) -> ExogenousVars {
        let step = SimDuration::from_mins(1);
        let steps = (window.as_nanos() / step.as_nanos()).max(1);
        let mut acc = ExogenousVars {
            cpu_util: 0.0,
            mem_bw_gbps: 0.0,
            long_wakeup_rate: 0.0,
            cpi: 0.0,
        };
        for i in 0..steps {
            let v = self.sample(start + SimDuration::from_nanos(i * step.as_nanos()));
            acc.cpu_util += v.cpu_util;
            acc.mem_bw_gbps += v.mem_bw_gbps;
            acc.long_wakeup_rate += v.long_wakeup_rate;
            acc.cpi += v.cpi;
        }
        let n = steps as f64;
        ExogenousVars {
            cpu_util: acc.cpu_util / n,
            mem_bw_gbps: acc.mem_bw_gbps / n,
            long_wakeup_rate: acc.long_wakeup_rate / n,
            cpi: acc.cpi / n,
        }
    }
}

/// Standard-normal-ish noise for a bucket: average of four uniforms,
/// rescaled — cheap, deterministic, and bounded in roughly `[-1.7, 1.7]`.
fn bucket_noise(seed: u64, stream: u64, bucket: u64) -> f64 {
    let mut sm = SplitMix64::new(
        seed ^ stream.wrapping_mul(0x9E37_79B9_7F4A_7C15)
            ^ bucket.wrapping_mul(0xD134_2543_DE82_EF95),
    );
    let mut acc = 0.0;
    for _ in 0..4 {
        acc += (sm.next_u64() >> 11) as f64 / (1u64 << 53) as f64 - 0.5;
    }
    acc * 1.7 // Variance of the sum of 4 uniforms is 1/3; scale up.
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn samples_are_deterministic() {
        let p = ExogenousProfile::shared(42);
        let t = SimTime::from_nanos(12_345_678_901);
        assert_eq!(p.sample(t), p.sample(t));
    }

    #[test]
    fn cpu_util_at_is_bit_identical_to_full_sample() {
        for seed in [1u64, 42, 9_999] {
            let p = ExogenousProfile::busy(seed);
            for i in 0..2_000u64 {
                let t = SimTime::from_nanos(i * 43_200_000_000 + 17);
                assert_eq!(p.cpu_util_at(t).to_bits(), p.sample(t).cpu_util.to_bits());
            }
        }
    }

    #[test]
    fn different_seeds_decorrelate_noise() {
        let a = ExogenousProfile::shared(1);
        let b = ExogenousProfile::shared(2);
        let mut diffs = 0;
        for i in 0..100 {
            let t = SimTime::from_nanos(i * 60_000_000_000);
            if (a.sample(t).cpu_util - b.sample(t).cpu_util).abs() > 1e-6 {
                diffs += 1;
            }
        }
        assert!(diffs > 90, "only {diffs} samples differ");
    }

    #[test]
    fn variables_stay_in_physical_ranges() {
        let p = ExogenousProfile::busy(7);
        for i in 0..2000 {
            let v = p.sample(SimTime::from_nanos(i * 43_000_000_000));
            assert!((0.0..=1.0).contains(&v.cpu_util), "{v:?}");
            assert!(v.mem_bw_gbps > 0.0 && v.mem_bw_gbps <= 120.0, "{v:?}");
            assert!((0.0..=0.15).contains(&v.long_wakeup_rate), "{v:?}");
            assert!(v.cpi >= 0.7 && v.cpi < 2.5, "{v:?}");
        }
    }

    #[test]
    fn diurnal_peak_is_near_configured_hour() {
        let p = ExogenousProfile {
            noise: 0.0,
            ..ExogenousProfile::shared(3)
        };
        let mut peak_hour = 0.0;
        let mut peak = 0.0;
        for h in 0..96 {
            let t = SimTime::from_nanos(h * 900_000_000_000); // 15-min steps.
            let u = p.sample(t).cpu_util;
            if u > peak {
                peak = u;
                peak_hour = (h as f64 * 0.25) % 24.0;
            }
        }
        assert!(
            (peak_hour - p.peak_hour).abs() < 1.5,
            "peak at {peak_hour}, expected ~{}",
            p.peak_hour
        );
    }

    #[test]
    fn busy_profile_is_busier_than_light() {
        let busy = ExogenousProfile::busy(4);
        let light = ExogenousProfile::light(4);
        let day = SimDuration::from_hours(24);
        let b = busy.window_average(SimTime::ZERO, day);
        let l = light.window_average(SimTime::ZERO, day);
        assert!(b.cpu_util > l.cpu_util + 0.2);
        assert!(b.long_wakeup_rate > l.long_wakeup_rate);
        assert!(b.cpi > l.cpi);
    }

    #[test]
    fn utilization_couples_to_wakeups_and_cpi() {
        // Across a day, high-utilization samples should show higher wakeup
        // rates and CPI than low-utilization samples.
        let p = ExogenousProfile::shared(5);
        let mut lo = Vec::new();
        let mut hi = Vec::new();
        for i in 0..1440 {
            let v = p.sample(SimTime::from_nanos(i * 60_000_000_000));
            if v.cpu_util < 0.4 {
                lo.push(v);
            } else if v.cpu_util > 0.55 {
                hi.push(v);
            }
        }
        assert!(!lo.is_empty() && !hi.is_empty());
        let avg = |vs: &[ExogenousVars], f: fn(&ExogenousVars) -> f64| {
            vs.iter().map(f).sum::<f64>() / vs.len() as f64
        };
        assert!(avg(&hi, |v| v.long_wakeup_rate) > avg(&lo, |v| v.long_wakeup_rate));
        assert!(avg(&hi, |v| v.cpi) > avg(&lo, |v| v.cpi));
        assert!(avg(&hi, |v| v.mem_bw_gbps) > avg(&lo, |v| v.mem_bw_gbps));
    }

    #[test]
    fn noise_is_continuous_across_bucket_boundaries() {
        let p = ExogenousProfile::shared(6);
        let bucket_ns = 5 * 60 * 1_000_000_000u64;
        for k in 1..20u64 {
            let before = p.sample(SimTime::from_nanos(k * bucket_ns - 1_000_000));
            let after = p.sample(SimTime::from_nanos(k * bucket_ns + 1_000_000));
            assert!(
                (before.cpu_util - after.cpu_util).abs() < 0.02,
                "jump at bucket {k}: {} -> {}",
                before.cpu_util,
                after.cpu_util
            );
        }
    }

    #[test]
    fn window_average_is_between_min_and_max() {
        let p = ExogenousProfile::shared(8);
        let w = SimDuration::from_mins(30);
        let avg = p.window_average(SimTime::ZERO, w);
        let mut min = f64::MAX;
        let mut max = f64::MIN;
        for i in 0..30 {
            let v = p.sample(SimTime::ZERO + SimDuration::from_mins(i));
            min = min.min(v.cpu_util);
            max = max.max(v.cpu_util);
        }
        assert!(avg.cpu_util >= min && avg.cpu_util <= max);
    }
}
