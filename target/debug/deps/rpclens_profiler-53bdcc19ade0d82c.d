/root/repo/target/debug/deps/rpclens_profiler-53bdcc19ade0d82c.d: crates/profiler/src/lib.rs

/root/repo/target/debug/deps/rpclens_profiler-53bdcc19ade0d82c: crates/profiler/src/lib.rs

crates/profiler/src/lib.rs:
