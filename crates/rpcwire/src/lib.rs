//! An *executable* RPC runtime over UDP loopback.
//!
//! The rest of the workspace prices the RPC stack analytically:
//! [`rpclens_rpcstack::cost`] charges cycles per byte and per packet, and
//! the fleet driver turns those charges into simulated latency. This crate
//! stands up a real wire so those models can be checked against measured
//! numbers (the ROADMAP's "real wire" item):
//!
//! - [`message`]: the request/response envelope carried inside
//!   [`rpclens_rpcstack::codec`] frames — length-prefixed, checksummed,
//!   with request/reply matching keys.
//! - [`compress`]: a small LZ-class compressor actually executed on
//!   payloads (the simulator only *prices* compression).
//! - [`transport`]: the pluggable [`transport::Transport`] trait with a
//!   std `UdpSocket` loopback implementation and an in-memory
//!   deterministic link for tests.
//! - [`faulty`]: seeded drop/duplicate/reorder/corrupt wrappers (seeded
//!   like `fleet::faults`) for exercising invocation semantics.
//! - [`client`]: a client with seeded-jitter retransmission timers.
//! - [`server`]: a poll-driven server with **at-most-once** (reply dedup
//!   cache) and **at-least-once** (re-execute every delivery) semantics.
//! - [`sink`]: pluggable [`sink::SpanSink`] span-event instrumentation —
//!   paired with [`message::TraceContext`] propagation it turns a
//!   multi-hop topology into a measured causal tree (distributed
//!   tracing; see `docs/OBSERVABILITY.md`).
//! - [`payload`]: deterministic, partially compressible synthetic payload
//!   generation mirroring the catalog's size models.
//!
//! The `rpclens-wire` binary (in `rpclens-bench`) serves the fleet
//! catalog's methods over 127.0.0.1 and emits a measured-vs-modeled
//! comparison artifact; see `docs/WIRE.md`.

#![warn(missing_docs)]

pub mod client;
pub mod compress;
pub mod faulty;
pub mod message;
pub mod payload;
pub mod server;
pub mod sink;
pub mod transport;

pub use client::{ClientStats, RetryPolicy, WireClient};
pub use faulty::{FaultConfig, FaultStats, FaultyTransport};
pub use message::{Request, Response, Status, TraceContext, WireError};
pub use server::{Handler, Semantics, ServerStats, WireServer};
pub use sink::{NullSink, SpanEvent, SpanEventKind, SpanSink, VecSink};
pub use transport::{MemLink, ServerTransport, Transport, UdpServerSocket, UdpTransport};
