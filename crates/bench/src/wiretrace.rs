//! Wire-level distributed tracing: measured causal trees from the
//! executable RPC runtime, analysed by the simulator's own pipeline.
//!
//! The fleet simulator *generates* span trees; `rpclens-rpcwire`
//! *executes* RPCs. This harness closes the loop: it runs a multi-hop
//! chain of wire servers over in-memory links, propagates a
//! [`TraceContext`] through every request envelope, and records every
//! [`SpanEvent`] into a recorder that reassembles genuine causal trees
//! as `rpclens-trace` [`TraceData`] — so `critical_path`, `query`, and
//! the checksummed `trace::export` format work unchanged on *measured*
//! traces.
//!
//! **Determinism.** The wire runtime never timestamps events; the sink
//! does (see `rpclens_rpcwire::sink`). Over [`MemLink`] this recorder
//! runs a *virtual* clock: each event advances global time by
//! [`StackCostModel`]-priced charges rounded to the span store's 100 ns
//! tick, so the entire capture — every byte of the export — is a pure
//! function of the seed. `tests/wire_trace_determinism.rs` pins the
//! export digest. Over UDP the recorder uses a wall clock and
//! reconstructs single-hop spans client-side from piggybacked server
//! timings; that capture is honest but not reproducible.
//!
//! **Component mapping (virtual mode).** Lifecycle charges telescope
//! exactly to `end - start` per span:
//!
//! | event        | component charged                                     |
//! |--------------|-------------------------------------------------------|
//! | `ClientSend` | RequestProcessing ← sender serialize+compress+library+alloc |
//! | `ServerRecv` | RequestNetworkWire ← both ends' network; RequestProcessing ← receiver serialize+compress |
//! | `ServerExec` | ServerApplication ← synthetic app charge *plus* all nested children's wall time |
//! | `ServerSend` | ResponseProcessing ← sender serialize+compress+library+alloc (response) |
//! | `ClientRecv` | ResponseNetworkWire ← both ends' network; ClientRecvQueue ← receiver serialize+compress |
//!
//! Queue components stay zero in this uncontended single-threaded
//! harness, so ClientRecvQueue is reused for client-side response
//! decode (documented in `docs/OBSERVABILITY.md`). The application
//! charge is a deterministic proxy (`2 µs + 2 ns/response byte`), not a
//! measurement — virtual mode validates the *pipeline*, UDP mode
//! measures the *wire*.

use rpclens_fleet::catalog::{Catalog, CatalogConfig};
use rpclens_fleet::servable::{ServableMethod, ServableTable};
use rpclens_netsim::topology::{ClusterId, Topology};
use rpclens_obs::detect::{self, Finding, SloConfig, WindowSample};
use rpclens_obs::manifest::{fnv1a, LatencyQuantiles};
use rpclens_rpcstack::component::{LatencyBreakdown, LatencyComponent};
use rpclens_rpcstack::cost::{MessageClass, StackCostConfig, StackCostModel};
use rpclens_rpcstack::error::ErrorKind;
use rpclens_rpcwire::client::{RetryPolicy, WireClient};
use rpclens_rpcwire::message::{Request, Status, TraceContext, WireError};
use rpclens_rpcwire::payload;
use rpclens_rpcwire::server::{Handler, Semantics, WireServer};
use rpclens_rpcwire::sink::{SpanEvent, SpanEventKind, SpanSink};
use rpclens_rpcwire::transport::{MemLink, UdpServerSocket, UdpTransport};
use rpclens_simcore::rng::Prng;
use rpclens_simcore::time::{SimDuration, SimTime};
use rpclens_trace::collector::TraceStore;
use rpclens_trace::span::{MethodId, ServiceId, SpanBuilder, TraceData};
use rpclens_tsdb::metric::{Labels, MetricDescriptor, MetricValue};
use rpclens_tsdb::store::TimeSeriesDb;
use std::cell::RefCell;
use std::collections::HashMap;
use std::rc::Rc;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// The span store's quantum; every virtual charge is a multiple so
/// quantization into [`SpanBuilder`] is lossless.
const TICK_NS: u64 = 100;

/// Client id of the root (hop-0) client; nested hops use `BASE + depth`.
const CLIENT_ID_BASE: u64 = 0xBE7C;

/// Configuration for one traced run.
#[derive(Debug, Clone, Copy)]
pub struct TraceBenchConfig {
    /// Root RPCs to issue.
    pub requests: u32,
    /// Seed for workload sampling, payloads, and jitter.
    pub seed: u64,
    /// Catalog size (methods).
    pub total_methods: usize,
    /// Server hops in the chain (≥ 1). Hop 0 serves the root client;
    /// each hop below the last fans out to the next.
    pub hops: u32,
    /// Nested calls each non-leaf hop issues per request.
    pub fanout: u32,
}

impl Default for TraceBenchConfig {
    fn default() -> Self {
        TraceBenchConfig {
            requests: 256,
            seed: 42,
            total_methods: 400,
            hops: 2,
            fanout: 2,
        }
    }
}

/// Per-method identity the recorder needs beyond [`ServableTable`]:
/// message class for pricing and the owning service for span records.
struct MethodMeta {
    classes: Vec<MessageClass>,
    services: Vec<ServiceId>,
}

impl MethodMeta {
    fn class_of(&self, method: u64) -> MessageClass {
        self.classes
            .get(method as usize)
            .copied()
            .unwrap_or_else(MessageClass::structured)
    }

    fn service_of(&self, method: u64) -> ServiceId {
        self.services
            .get(method as usize)
            .copied()
            .unwrap_or(ServiceId(0))
    }
}

/// Builds the servable table plus recorder metadata from one catalog.
fn build_catalog(config: &TraceBenchConfig) -> (ServableTable, MethodMeta) {
    let topology = Topology::default_world(config.seed);
    let catalog = Catalog::generate(
        &CatalogConfig {
            total_methods: config.total_methods,
            seed: config.seed,
        },
        &topology,
    );
    let table = ServableTable::from_catalog(&catalog);
    let services = catalog.methods().iter().map(|m| m.service).collect();
    let classes = table.methods().iter().map(|m| m.class).collect();
    (table, MethodMeta { classes, services })
}

/// How the recorder assigns time (see the module docs).
enum ClockMode {
    /// Deterministic: advance by modeled charges, tick-rounded.
    Virtual,
    /// Wall clock anchored at recorder construction (UDP runs).
    Wall(Instant),
}

/// One span currently in flight.
struct OpenSpan {
    slot: usize,
    method: u64,
    ctx: TraceContext,
    start_ns: u64,
    handler_start_ns: u64,
    /// Per-component nanoseconds in [`LatencyComponent::ALL`] order.
    components: [u64; 9],
    req_raw: u64,
    resp_raw: u64,
    status: Status,
}

/// Running wire counters, snapshotted per completed root.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct WireCounters {
    /// Root RPCs completed.
    pub roots: u64,
    /// Spans closed (all hops).
    pub spans: u64,
    /// Root RPCs that completed with a non-Ok status.
    pub errors: u64,
    /// Client retransmissions observed (all hops).
    pub retransmissions: u64,
    /// Stale replies discarded (all hops).
    pub stale_replies: u64,
    /// Server dedup-cache replays (all hops).
    pub dedup_hits: u64,
    /// Datagrams dropped on decode (either side).
    pub decode_errors: u64,
}

/// Cumulative counters at one point in (virtual or wall) time.
struct CounterSample {
    at_ns: u64,
    counters: WireCounters,
}

/// The span-sink recorder: assigns time, reassembles causal trees, and
/// accumulates the counters the tsdb streams. Share it between hops as
/// `Rc<RefCell<WireTraceRecorder>>` (which implements [`SpanSink`]).
pub struct WireTraceRecorder {
    model: StackCostModel,
    meta: MethodMeta,
    mode: ClockMode,
    now_ns: u64,
    /// In-flight spans keyed by `(trace_id, span_id)`.
    open: HashMap<(u64, u64), OpenSpan>,
    /// Current trace's spans, slotted in open order (parents precede
    /// children in the single-threaded schedule).
    slots: Vec<Option<rpclens_trace::span::SpanRecord>>,
    /// span_id → slot for the current trace (parent index lookup).
    slot_of: HashMap<u64, u32>,
    trace_start_ns: u64,
    /// Modeled stack+app nanoseconds accumulated over the current trace.
    modeled_trace_ns: u64,
    span_counter: u64,
    trace_counter: u64,
    store: TraceStore,
    counters: WireCounters,
    samples: Vec<CounterSample>,
    rtts_us: Vec<u64>,
    modeled_rtts_us: Vec<u64>,
}

impl WireTraceRecorder {
    fn new(meta: MethodMeta, mode: ClockMode) -> WireTraceRecorder {
        WireTraceRecorder {
            model: StackCostModel::new(StackCostConfig::default()),
            meta,
            mode,
            now_ns: 0,
            open: HashMap::new(),
            slots: Vec::new(),
            slot_of: HashMap::new(),
            trace_start_ns: 0,
            modeled_trace_ns: 0,
            span_counter: 0,
            trace_counter: 0,
            store: TraceStore::new(),
            counters: WireCounters::default(),
            samples: Vec::new(),
            rtts_us: Vec::new(),
            modeled_rtts_us: Vec::new(),
        }
    }

    fn now(&self) -> u64 {
        match self.mode {
            ClockMode::Virtual => self.now_ns,
            ClockMode::Wall(anchor) => {
                u64::try_from(anchor.elapsed().as_nanos()).unwrap_or(u64::MAX)
            }
        }
    }

    /// Rounds a modeled charge to the span store's tick so quantization
    /// into the trace substrate is lossless.
    fn tick(ns: f64) -> u64 {
        ((ns.max(0.0) / TICK_NS as f64).round() as u64).max(1) * TICK_NS
    }

    /// Advances the virtual clock, attributing the charge to `component`
    /// of the span keyed `key` (no-op attribution if the span is gone,
    /// e.g. a stale reply after completion). Wall mode ignores charges.
    fn charge(&mut self, key: (u64, u64), component: LatencyComponent, ns: u64) {
        if matches!(self.mode, ClockMode::Wall(_)) {
            return;
        }
        self.now_ns += ns;
        self.modeled_trace_ns += ns;
        if let Some(open) = self.open.get_mut(&key) {
            let idx = LatencyComponent::ALL
                .iter()
                .position(|&c| c == component)
                .expect("component in ALL");
            open.components[idx] += ns;
        }
    }

    /// Starts a fresh trace: hands out `(trace_id, root span id)`.
    pub fn begin_trace(&mut self) -> (u64, u64) {
        self.trace_counter += 1;
        self.span_counter = 1;
        self.slots.clear();
        self.slot_of.clear();
        self.modeled_trace_ns = 0;
        (self.trace_counter, 1)
    }

    /// Allocates the next span id within the current trace.
    pub fn next_span_id(&mut self) -> u64 {
        self.span_counter += 1;
        self.span_counter
    }

    fn open_span(&mut self, event: &SpanEvent, ctx: TraceContext) {
        let slot = self.slots.len();
        self.slots.push(None);
        self.slot_of.insert(ctx.span_id, slot as u32);
        if ctx.is_root() {
            self.trace_start_ns = self.now();
        }
        self.open.insert(
            (ctx.trace_id, ctx.span_id),
            OpenSpan {
                slot,
                method: event.method,
                ctx,
                start_ns: self.now(),
                handler_start_ns: 0,
                components: [0; 9],
                req_raw: event.raw_bytes as u64,
                resp_raw: 0,
                status: Status::Ok,
            },
        );
    }

    fn close_span(&mut self, key: (u64, u64), event: &SpanEvent) {
        // Wall mode never sees server events; reconstruct the span's
        // components from the piggybacked timings here instead.
        if matches!(self.mode, ClockMode::Wall(_)) {
            let now = self.now();
            if let Some(open) = self.open.get_mut(&key) {
                let rtt = now.saturating_sub(open.start_ns);
                let server = event.server_decode_ns + event.server_exec_ns;
                let residual = rtt.saturating_sub(server);
                let idx = |c: LatencyComponent| {
                    LatencyComponent::ALL.iter().position(|&x| x == c).unwrap()
                };
                open.components[idx(LatencyComponent::RequestProcessing)] = event.server_decode_ns;
                open.components[idx(LatencyComponent::ServerApplication)] = event.server_exec_ns;
                open.components[idx(LatencyComponent::RequestNetworkWire)] = residual / 2;
                open.components[idx(LatencyComponent::ResponseNetworkWire)] =
                    residual - residual / 2;
            }
        }
        let Some(open) = self.open.remove(&key) else {
            return;
        };
        self.counters.spans += 1;
        let mut breakdown = LatencyBreakdown::new();
        for (i, &c) in LatencyComponent::ALL.iter().enumerate() {
            breakdown.set(c, SimDuration::from_nanos(open.components[i]));
        }
        let status = event.status.unwrap_or(open.status);
        let depth = open.ctx.depth as u16;
        let mut builder = SpanBuilder::new(
            MethodId(open.method as u32),
            self.meta.service_of(open.method),
            ClusterId(depth),
            ClusterId(depth + 1),
        )
        .start_offset(SimDuration::from_nanos(
            open.start_ns.saturating_sub(self.trace_start_ns),
        ))
        .breakdown(breakdown)
        .sizes(open.req_raw, event.raw_bytes as u64);
        if !open.ctx.is_root() {
            if let Some(&parent_slot) = self.slot_of.get(&open.ctx.parent_span_id) {
                builder = builder.parent(parent_slot);
            }
        }
        if let Some(kind) = status_to_error(status) {
            builder = builder.error(kind);
        }
        self.slots[open.slot] = Some(builder.build());
        if open.ctx.is_root() {
            self.finish_trace(open.start_ns, status);
        }
    }

    fn finish_trace(&mut self, root_start_ns: u64, root_status: Status) {
        let spans: Vec<_> = self.slots.drain(..).flatten().collect();
        self.slot_of.clear();
        if spans.is_empty() {
            return;
        }
        let total_ns = spans[0].total_latency().as_nanos();
        self.rtts_us.push(total_ns / 1_000);
        self.modeled_rtts_us.push(self.modeled_trace_ns / 1_000);
        self.store
            .add(TraceData::new(SimTime::from_nanos(root_start_ns), spans));
        self.counters.roots += 1;
        if root_status != Status::Ok {
            self.counters.errors += 1;
        }
        self.samples.push(CounterSample {
            at_ns: self.now(),
            counters: self.counters,
        });
    }
}

fn status_to_error(status: Status) -> Option<ErrorKind> {
    match status {
        Status::Ok => None,
        Status::NoSuchMethod => Some(ErrorKind::EntityNotFound),
        Status::BadRequest => Some(ErrorKind::Internal),
        Status::Rejected => Some(ErrorKind::Unavailable),
    }
}

impl SpanSink for WireTraceRecorder {
    fn record(&mut self, event: &SpanEvent) {
        let Some(ctx) = event.context else {
            // Untraced traffic (or an undecodable datagram): count, but
            // no span to attribute to.
            if event.kind == SpanEventKind::ServerDecodeError
                || event.kind == SpanEventKind::ClientDecodeError
            {
                self.counters.decode_errors += 1;
            }
            return;
        };
        let key = (ctx.trace_id, ctx.span_id);
        let class = self.meta.class_of(event.method);
        let req_send = self
            .model
            .sender_component_ns(event.raw_bytes as u64, class);
        match event.kind {
            SpanEventKind::ClientSend => {
                self.open_span(event, ctx);
                let prep = req_send.serialize_ns
                    + req_send.compress_ns
                    + req_send.library_ns
                    + req_send.alloc_ns;
                self.charge(key, LatencyComponent::RequestProcessing, Self::tick(prep));
            }
            SpanEventKind::ClientRetransmit => {
                self.counters.retransmissions += 1;
                let net = self
                    .model
                    .sender_component_ns(event.wire_bytes as u64, class)
                    .network_ns;
                self.charge(key, LatencyComponent::RequestNetworkWire, Self::tick(net));
            }
            SpanEventKind::ServerRecv => {
                let req_raw = self
                    .open
                    .get(&key)
                    .map(|o| o.req_raw)
                    .unwrap_or(event.raw_bytes as u64);
                let send = self.model.sender_component_ns(req_raw, class);
                let recv = self.model.receiver_component_ns(req_raw, class);
                self.charge(
                    key,
                    LatencyComponent::RequestNetworkWire,
                    Self::tick(send.network_ns + recv.network_ns),
                );
                self.charge(
                    key,
                    LatencyComponent::RequestProcessing,
                    Self::tick(recv.serialize_ns + recv.compress_ns),
                );
                let now = self.now();
                if let Some(open) = self.open.get_mut(&key) {
                    open.handler_start_ns = now;
                }
            }
            SpanEventKind::ServerExec => {
                // Synthetic deterministic application charge; nested
                // children's time lands here too via the interval.
                let app = 2_000 + 2 * event.raw_bytes as u64;
                self.charge(
                    key,
                    LatencyComponent::ServerApplication,
                    Self::tick(app as f64),
                );
                let now = self.now();
                if let Some(open) = self.open.get_mut(&key) {
                    open.resp_raw = event.raw_bytes as u64;
                    open.status = event.status.unwrap_or(Status::Ok);
                    if matches!(self.mode, ClockMode::Virtual) {
                        // Re-point ServerApplication at the whole handler
                        // interval (covers nested calls).
                        let idx = LatencyComponent::ALL
                            .iter()
                            .position(|&c| c == LatencyComponent::ServerApplication)
                            .unwrap();
                        open.components[idx] = now.saturating_sub(open.handler_start_ns);
                    }
                }
            }
            SpanEventKind::ServerSend => {
                let resp_raw = self.open.get(&key).map(|o| o.resp_raw).unwrap_or(0);
                let send = self.model.sender_component_ns(resp_raw, class);
                let prep = send.serialize_ns + send.compress_ns + send.library_ns + send.alloc_ns;
                self.charge(key, LatencyComponent::ResponseProcessing, Self::tick(prep));
            }
            SpanEventKind::ClientRecv => {
                let resp_raw = event.raw_bytes as u64;
                let send = self.model.sender_component_ns(resp_raw, class);
                let recv = self.model.receiver_component_ns(resp_raw, class);
                self.charge(
                    key,
                    LatencyComponent::ResponseNetworkWire,
                    Self::tick(send.network_ns + recv.network_ns),
                );
                self.charge(
                    key,
                    LatencyComponent::ClientRecvQueue,
                    Self::tick(recv.serialize_ns + recv.compress_ns),
                );
                self.close_span(key, event);
            }
            SpanEventKind::ClientStale => {
                self.counters.stale_replies += 1;
                self.charge(key, LatencyComponent::ClientRecvQueue, TICK_NS);
            }
            SpanEventKind::ServerDedupHit => {
                self.counters.dedup_hits += 1;
                self.charge(key, LatencyComponent::ServerRecvQueue, TICK_NS);
            }
            SpanEventKind::ClientDecodeError | SpanEventKind::ServerDecodeError => {
                self.counters.decode_errors += 1;
            }
            SpanEventKind::ClientTimeout => {
                // The span never completed; drop it so the trace (if the
                // root survives) stays parent-consistent.
                self.open.remove(&key);
            }
        }
    }
}

/// Shared recorder handle hops clone into their clients and servers.
pub type SharedRecorder = Rc<RefCell<WireTraceRecorder>>;

/// One nested hop owned by the previous hop's handler.
struct NextHop {
    client: WireClient<MemLink, SharedRecorder>,
    server: WireServer<MemLink, HopHandler, SharedRecorder>,
}

/// A hop's handler: serves the catalog like `wire::CatalogHandler` and,
/// below the last hop, re-propagates the trace context into `fanout`
/// nested calls per request.
pub struct HopHandler {
    table: Arc<ServableTable>,
    seed: u64,
    depth: u32,
    fanout: u32,
    next: Option<Box<NextHop>>,
    recorder: SharedRecorder,
    body: Vec<u8>,
}

impl HopHandler {
    fn method(&self, wire_id: u64) -> Option<&ServableMethod> {
        u32::try_from(wire_id)
            .ok()
            .and_then(|id| self.table.get(MethodId(id)))
    }

    /// Issues one nested, traced call on the next hop and drives it to
    /// completion (the link is lossless; the poll loop mirrors
    /// `wire::run_over_memlink`).
    fn call_next(&mut self, ctx: &TraceContext, request_id_salt: u64) -> Result<(), WireError> {
        let next = self.next.as_mut().expect("call_next below the last hop");
        let mut rng = Prng::seed_from(self.seed ^ u64::from(self.depth))
            .stream(0xFA_0001)
            .substream(request_id_salt);
        let method = self.table.sample_root(&mut rng);
        let len = payload::sample_wire_len(&method.req_size, &mut rng);
        payload::fill_body(&mut rng, len, &mut self.body);
        let child_ctx = ctx.child(self.recorder.borrow_mut().next_span_id());
        let body = std::mem::take(&mut self.body);
        let mut pending = next.client.start_call_traced(
            method.method.0 as u64,
            &body,
            method.class.compressed,
            Some(child_ctx),
        )?;
        self.body = body;
        loop {
            next.server.poll().map_err(WireError::Io)?;
            match next.client.try_complete(&pending, Duration::ZERO) {
                Ok(Some(_)) => return Ok(()),
                Ok(None) => next.client.retransmit(&mut pending)?,
                // Error statuses already closed the span with the error
                // recorded; the parent proceeds.
                Err(WireError::Server(_)) => return Ok(()),
                Err(e) => return Err(e),
            }
        }
    }
}

impl Handler for HopHandler {
    fn handle(&mut self, request: &Request) -> (Status, Vec<u8>) {
        if self.method(request.method).is_none() {
            return (Status::NoSuchMethod, Vec::new());
        }
        if self.next.is_some() {
            if let Some(ctx) = request.trace {
                for f in 0..self.fanout {
                    let salt = request.request_id ^ (u64::from(f) << 48);
                    if self.call_next(&ctx, salt).is_err() {
                        return (Status::Rejected, Vec::new());
                    }
                }
            }
        }
        let mut rng = Prng::seed_from(self.seed ^ request.client_id)
            .stream(request.method)
            .substream(request.request_id);
        let method = self.method(request.method).expect("checked above");
        let resp_len = payload::sample_wire_len(&method.resp_size, &mut rng);
        payload::fill_body(&mut rng, resp_len, &mut self.body);
        (Status::Ok, std::mem::take(&mut self.body))
    }

    fn compress_response(&self, method: u64) -> bool {
        self.method(method).is_some_and(|m| m.class.compressed)
    }
}

/// Builds the hop chain recursively: the returned server serves `link`
/// at `depth` and owns (via its handler) everything below it.
fn build_hop(
    table: &Arc<ServableTable>,
    recorder: &SharedRecorder,
    config: &TraceBenchConfig,
    depth: u32,
    link: MemLink,
) -> WireServer<MemLink, HopHandler, SharedRecorder> {
    let next = if depth + 1 < config.hops {
        let (client_end, server_end) = MemLink::pair();
        let server = build_hop(table, recorder, config, depth + 1, server_end);
        let client = WireClient::new(
            client_end,
            CLIENT_ID_BASE + u64::from(depth) + 1,
            RetryPolicy::default(),
            config.seed ^ u64::from(depth),
        )
        .with_span_sink(recorder.clone());
        Some(Box::new(NextHop { client, server }))
    } else {
        None
    };
    let handler = HopHandler {
        table: table.clone(),
        seed: config.seed,
        depth,
        fanout: config.fanout,
        next,
        recorder: recorder.clone(),
        body: Vec::new(),
    };
    WireServer::new(link, handler, Semantics::AtMostOnce).with_span_sink(recorder.clone())
}

/// The outcome of a traced run.
pub struct TraceBenchReport {
    /// Config echo.
    pub config: TraceBenchConfig,
    /// Transport label (`"memlink"` or `"udp-loopback"`).
    pub transport: &'static str,
    /// The measured causal trees.
    pub store: TraceStore,
    /// The checksummed `trace::export` bytes of `store`.
    pub export: Vec<u8>,
    /// FNV-1a digest of `export` (the determinism pin).
    pub digest: u64,
    /// Final wire counters.
    pub counters: WireCounters,
    /// Measured root-RPC latency quantiles (virtual or wall ns → µs).
    pub measured: LatencyQuantiles,
    /// Modeled quantiles over the same roots (the detector baseline).
    pub modeled: LatencyQuantiles,
    /// Findings from the error-budget-burn and tail-regression
    /// detectors over the `wire/*` streams.
    pub findings: Vec<Finding>,
    /// Number of `wire/*` series streamed into the tsdb.
    pub tsdb_series: usize,
}

fn quantiles_from_us(mut us: Vec<u64>) -> LatencyQuantiles {
    us.sort_unstable();
    let pct = |p: f64| -> u64 {
        if us.is_empty() {
            0
        } else {
            us[((us.len() as f64 - 1.0) * p).round() as usize]
        }
    };
    LatencyQuantiles {
        count: us.len() as u64,
        sum_us: us.iter().map(|&v| v as u128).sum(),
        min_us: us.first().copied().unwrap_or(0),
        p50_us: pct(0.50),
        p90_us: pct(0.90),
        p99_us: pct(0.99),
        p999_us: pct(0.999),
        max_us: us.last().copied().unwrap_or(0),
    }
}

/// A `wire/*` metric name paired with its [`WireCounters`] accessor.
type WireMetric = (&'static str, fn(&WireCounters) -> u64);

/// The `wire/*` metric names streamed into the tsdb.
const WIRE_METRICS: [WireMetric; 6] = [
    ("wire/rpcs/count", |c| c.roots),
    ("wire/spans/count", |c| c.spans),
    ("wire/errors/count", |c| c.errors),
    ("wire/retransmissions/count", |c| c.retransmissions),
    ("wire/stale_replies/count", |c| c.stale_replies),
    ("wire/dedup_hits/count", |c| c.dedup_hits),
];

/// Streams the recorder's cumulative counter samples into a fresh tsdb
/// as `wire/*` series and runs the standing detectors over them,
/// exactly as the fleet telemetry path would.
fn analyse(recorder: &WireTraceRecorder) -> (Vec<Finding>, usize, TimeSeriesDb) {
    let total_ns = recorder.samples.last().map(|s| s.at_ns).unwrap_or(0).max(1);
    // 16 windows over the run, tick-aligned so virtual timestamps land
    // deterministically.
    let period = SimDuration::from_nanos(((total_ns / 16).max(TICK_NS) / TICK_NS) * TICK_NS);
    let mut db = TimeSeriesDb::new(period);
    let retention = SimDuration::from_nanos(u64::MAX / 2);
    for (name, _) in WIRE_METRICS {
        db.register(MetricDescriptor::counter(name, retention))
            .expect("fresh db registers cleanly");
    }
    for sample in &recorder.samples {
        let at = SimTime::from_nanos(sample.at_ns);
        for (name, get) in WIRE_METRICS {
            db.write(
                name,
                Labels::empty(),
                at,
                MetricValue::Counter(get(&sample.counters)),
            )
            .expect("registered metric accepts counters");
        }
    }
    // Reconstruct per-window rows from the streamed series (the same
    // delta-of-cumulative walk `QueryEngine::rate` does).
    let deltas = |name: &str| -> Vec<(u64, u64)> {
        let mut out = Vec::new();
        if let Some(series) = db.series(name, &Labels::empty()) {
            let mut prev = 0u64;
            for (t, v) in series.points() {
                if let Some(c) = v.as_counter() {
                    out.push((t.as_nanos() / period.as_nanos().max(1), c - prev));
                    prev = c;
                }
            }
        }
        out
    };
    let rpcs = deltas("wire/rpcs/count");
    let errors: HashMap<u64, u64> = deltas("wire/errors/count").into_iter().collect();
    let retries: HashMap<u64, u64> = deltas("wire/retransmissions/count").into_iter().collect();
    let windows: Vec<WindowSample> = rpcs
        .iter()
        .map(|&(w, rpcs)| WindowSample {
            window: w,
            rpcs,
            errors: errors.get(&w).copied().unwrap_or(0),
            congested_wire: 0,
            retries: retries.get(&w).copied().unwrap_or(0),
        })
        .collect();
    let mut findings = detect::error_budget_burn(&SloConfig::default(), &windows);
    let measured = quantiles_from_us(recorder.rtts_us.clone());
    let modeled = quantiles_from_us(recorder.modeled_rtts_us.clone());
    // Measured vs modeled tails: in virtual mode these agree to
    // quantization, so any finding is a real pipeline bug. Wall-clock
    // captures have no modeled baseline (charges are skipped), so the
    // comparison would be vacuous there.
    if matches!(recorder.mode, ClockMode::Virtual) {
        findings.extend(detect::tail_regression(&measured, &modeled, 0.25));
    }
    (findings, db.num_series(), db)
}

/// Runs the traced multi-hop bench over in-memory links with the
/// virtual clock: the full capture is a pure function of the config.
pub fn run_traced_memlink(config: &TraceBenchConfig) -> Result<TraceBenchReport, WireError> {
    assert!(config.hops >= 1, "need at least one hop");
    let (table, meta) = build_catalog(config);
    let table = Arc::new(table);
    let recorder: SharedRecorder = Rc::new(RefCell::new(WireTraceRecorder::new(
        meta,
        ClockMode::Virtual,
    )));
    let (client_end, server_end) = MemLink::pair();
    let mut server = build_hop(&table, &recorder, config, 0, server_end);
    let mut client = WireClient::new(
        client_end,
        CLIENT_ID_BASE,
        RetryPolicy::default(),
        config.seed,
    )
    .with_span_sink(recorder.clone());
    let mut workload_rng = Prng::seed_from(config.seed).stream(0x317E);
    let mut body = Vec::new();

    for _ in 0..config.requests {
        let method = table.sample_root(&mut workload_rng);
        let len = payload::sample_wire_len(&method.req_size, &mut workload_rng);
        payload::fill_body(&mut workload_rng, len, &mut body);
        let (trace_id, span_id) = recorder.borrow_mut().begin_trace();
        let ctx = TraceContext {
            trace_id,
            span_id,
            parent_span_id: 0,
            sampled: true,
            depth: 0,
        };
        let mut pending = client.start_call_traced(
            method.method.0 as u64,
            &body,
            method.class.compressed,
            Some(ctx),
        )?;
        loop {
            server.poll().map_err(WireError::Io)?;
            match client.try_complete(&pending, Duration::ZERO) {
                Ok(Some(_)) => break,
                Ok(None) => client.retransmit(&mut pending)?,
                Err(WireError::Server(_)) => break,
                Err(e) => return Err(e),
            }
        }
    }

    // Release the hop chain's recorder handles before unwrapping.
    drop(client);
    drop(server);
    finish_report(config, "memlink", recorder)
}

/// Runs a traced single-hop bench over real UDP loopback with a wall
/// clock: spans are reconstructed client-side from piggybacked server
/// timings (`hops` and `fanout` are ignored — the UDP server cannot
/// share the single-threaded recorder).
pub fn run_traced_udp(config: &TraceBenchConfig) -> Result<TraceBenchReport, WireError> {
    let (table, meta) = build_catalog(config);
    let table = Arc::new(table);
    let recorder: SharedRecorder = Rc::new(RefCell::new(WireTraceRecorder::new(
        meta,
        ClockMode::Wall(Instant::now()),
    )));
    let server_socket = UdpServerSocket::bind("127.0.0.1:0").map_err(WireError::Io)?;
    let server_addr = server_socket.local_addr().map_err(WireError::Io)?;
    let stop = Arc::new(AtomicBool::new(false));
    let server_thread = {
        let table = table.clone();
        let stop = stop.clone();
        let seed = config.seed;
        std::thread::spawn(move || {
            let handler = crate::wire::CatalogHandler::new(table, seed);
            let mut server = WireServer::new(server_socket, handler, Semantics::AtMostOnce);
            server
                .serve(Duration::from_millis(5), |_| stop.load(Ordering::Relaxed))
                .expect("wire server failed");
        })
    };

    let transport = UdpTransport::connect(server_addr).map_err(WireError::Io)?;
    let mut client = WireClient::new(
        transport,
        CLIENT_ID_BASE,
        RetryPolicy::default(),
        config.seed,
    )
    .with_span_sink(recorder.clone());
    let mut workload_rng = Prng::seed_from(config.seed).stream(0x317E);
    let mut body = Vec::new();
    for _ in 0..config.requests {
        let method = table.sample_root(&mut workload_rng);
        let len = payload::sample_wire_len(&method.req_size, &mut workload_rng);
        payload::fill_body(&mut workload_rng, len, &mut body);
        let (trace_id, span_id) = recorder.borrow_mut().begin_trace();
        let ctx = TraceContext {
            trace_id,
            span_id,
            parent_span_id: 0,
            sampled: true,
            depth: 0,
        };
        let mut pending = client.start_call_traced(
            method.method.0 as u64,
            &body,
            method.class.compressed,
            Some(ctx),
        )?;
        match client.drive(&mut pending) {
            Ok(_) | Err(WireError::Server(_)) => {}
            // Lost calls under loopback churn: the span stays open and
            // is dropped by the ClientTimeout event; keep going.
            Err(WireError::TimedOut { .. }) => {}
            Err(e) => return Err(e),
        }
    }
    stop.store(true, Ordering::Relaxed);
    server_thread.join().expect("server thread panicked");
    drop(client);
    finish_report(config, "udp-loopback", recorder)
}

fn finish_report(
    config: &TraceBenchConfig,
    transport: &'static str,
    recorder: SharedRecorder,
) -> Result<TraceBenchReport, WireError> {
    let recorder = Rc::try_unwrap(recorder)
        .map_err(|_| ())
        .expect("all hop handles dropped")
        .into_inner();
    let (findings, tsdb_series, _db) = analyse(&recorder);
    let export = rpclens_trace::export::export(&recorder.store);
    let digest = fnv1a(&export);
    Ok(TraceBenchReport {
        config: *config,
        transport,
        store: recorder.store,
        export,
        digest,
        counters: recorder.counters,
        measured: quantiles_from_us(recorder.rtts_us),
        modeled: quantiles_from_us(recorder.modeled_rtts_us),
        findings,
        tsdb_series,
    })
}

/// Renders one measured trace as an indented waterfall: each span's
/// bar is positioned by start offset and scaled by duration within the
/// root's interval, indented by tree depth.
pub fn waterfall_text(store: &TraceStore, index: usize) -> Result<String, String> {
    use std::fmt::Write as _;
    let traces = store.traces();
    let trace = traces
        .get(index)
        .ok_or_else(|| format!("trace {index} out of range (store has {})", traces.len()))?;
    let stats = rpclens_trace::tree::TreeStats::compute(trace);
    let total_ns = trace
        .spans
        .iter()
        .map(|s| s.start_offset().as_nanos() + s.total_latency().as_nanos())
        .max()
        .unwrap_or(1)
        .max(1);
    const WIDTH: usize = 48;
    let mut out = String::new();
    writeln!(
        out,
        "trace {index}: {} spans, {} deep, {:.1} us end to end",
        trace.len(),
        stats.max_depth + 1,
        total_ns as f64 / 1_000.0
    )
    .unwrap();
    for (i, span) in trace.spans.iter().enumerate() {
        let start = span.start_offset().as_nanos();
        let dur = span.total_latency().as_nanos();
        let lead = (start as usize * WIDTH) / total_ns as usize;
        let bar = ((dur as usize * WIDTH) / total_ns as usize).max(1);
        let bar = bar.min(WIDTH - lead.min(WIDTH - 1));
        let status = match span.error {
            None => "ok",
            Some(_) => "err",
        };
        writeln!(
            out,
            "  [{: <width$}] {:indent$}m{:<5} svc{:<4} {:>9.1} us {}",
            format!("{}{}", ".".repeat(lead), "#".repeat(bar)),
            "",
            span.method.0,
            span.service.0,
            dur as f64 / 1_000.0,
            status,
            width = WIDTH,
            indent = stats.ancestors[i] as usize * 2,
        )
        .unwrap();
    }
    Ok(out)
}

/// Renders the per-method measured-vs-modeled comparison over a whole
/// measured store: the model re-prices each span's actual request and
/// response bytes through [`StackCostModel`] (plus the deterministic
/// app proxy), so the delta isolates what the wire added beyond the
/// analytical stack.
pub fn method_delta_text(store: &TraceStore, seed: u64, total_methods: usize) -> String {
    use std::fmt::Write as _;
    let config = TraceBenchConfig {
        seed,
        total_methods,
        ..TraceBenchConfig::default()
    };
    let (_table, meta) = build_catalog(&config);
    let model = StackCostModel::new(StackCostConfig::default());
    // method → (count, measured ns sum, modeled ns sum)
    let mut rows: HashMap<u32, (u64, u64, u64)> = HashMap::new();
    for trace in store.traces() {
        for span in &trace.spans {
            let class = meta.class_of(span.method.0 as u64);
            let req = span.request_bytes as u64;
            let resp = span.response_bytes as u64;
            let s_req = model.sender_component_ns(req, class);
            let r_req = model.receiver_component_ns(req, class);
            let s_resp = model.sender_component_ns(resp, class);
            let r_resp = model.receiver_component_ns(resp, class);
            let stack = s_req.serialize_ns
                + s_req.compress_ns
                + s_req.library_ns
                + s_req.alloc_ns
                + s_req.network_ns
                + r_req.network_ns
                + r_req.serialize_ns
                + r_req.compress_ns
                + s_resp.serialize_ns
                + s_resp.compress_ns
                + s_resp.library_ns
                + s_resp.alloc_ns
                + s_resp.network_ns
                + r_resp.network_ns
                + r_resp.serialize_ns
                + r_resp.compress_ns;
            let modeled = stack as u64 + 2_000 + 2 * resp;
            let row = rows.entry(span.method.0).or_default();
            row.0 += 1;
            row.1 += span.total_latency().as_nanos();
            row.2 += modeled;
        }
    }
    let mut sorted: Vec<_> = rows.into_iter().collect();
    sorted.sort_by(|a, b| b.1 .0.cmp(&a.1 .0).then(a.0.cmp(&b.0)));
    let mut out = String::from(
        "measured vs modeled per method (spans, mean us; delta = measured - modeled)\n",
    );
    writeln!(
        out,
        "  {:>7} {:>7} {:>12} {:>12} {:>9}",
        "method", "spans", "measured", "modeled", "delta%"
    )
    .unwrap();
    for (method, (count, measured_ns, modeled_ns)) in sorted.into_iter().take(20) {
        let measured = measured_ns as f64 / count as f64 / 1_000.0;
        let modeled = modeled_ns as f64 / count as f64 / 1_000.0;
        let delta = if modeled > 0.0 {
            (measured - modeled) / modeled * 100.0
        } else {
            0.0
        };
        writeln!(
            out,
            "  {:>7} {:>7} {:>12.1} {:>12.1} {:>+9.1}",
            method, count, measured, modeled, delta
        )
        .unwrap();
    }
    out
}

/// One-paragraph run summary for the `rpclens-wire bench --trace-out`
/// stderr report.
pub fn trace_summary_text(report: &TraceBenchReport) -> String {
    use std::fmt::Write as _;
    let mut out = String::new();
    writeln!(
        out,
        "wire trace [{}]: {} traces, {} spans, digest {:016x}",
        report.transport,
        report.store.len(),
        report.store.total_spans(),
        report.digest
    )
    .unwrap();
    writeln!(
        out,
        "  counters: {} roots, {} errors, {} retransmissions, {} stale, {} dedup, {} decode errors",
        report.counters.roots,
        report.counters.errors,
        report.counters.retransmissions,
        report.counters.stale_replies,
        report.counters.dedup_hits,
        report.counters.decode_errors
    )
    .unwrap();
    writeln!(
        out,
        "  rtt us: p50 {} p99 {} max {} (modeled p50 {} p99 {}); {} wire/* series",
        report.measured.p50_us,
        report.measured.p99_us,
        report.measured.max_us,
        report.modeled.p50_us,
        report.modeled.p99_us,
        report.tsdb_series
    )
    .unwrap();
    if report.findings.is_empty() {
        writeln!(out, "  detectors: clean").unwrap();
    } else {
        for f in &report.findings {
            writeln!(
                out,
                "  finding[{}] {}: {}",
                f.severity, f.detector, f.subject
            )
            .unwrap();
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use rpclens_trace::critical_path::CriticalPath;
    use rpclens_trace::tree::TreeStats;

    fn small_config() -> TraceBenchConfig {
        TraceBenchConfig {
            requests: 24,
            seed: 42,
            total_methods: 300,
            hops: 2,
            fanout: 2,
        }
    }

    #[test]
    fn memlink_run_builds_multi_hop_trees() {
        let report = run_traced_memlink(&small_config()).unwrap();
        assert_eq!(report.counters.roots, 24);
        assert_eq!(report.store.len(), 24);
        // Every trace is root + fanout children (hops=2 → one nested
        // layer).
        for trace in report.store.traces() {
            assert_eq!(trace.len(), 3, "root + 2 children");
            let stats = TreeStats::compute(trace);
            assert_eq!(stats.max_depth, 1);
            assert_eq!(stats.fanout[0], 2);
            // Child clusters step with depth.
            assert_eq!(trace.spans[0].client_cluster, ClusterId(0));
            assert_eq!(trace.spans[1].client_cluster, ClusterId(1));
        }
        assert_eq!(report.counters.spans, 24 * 3);
        assert_eq!(report.counters.errors, 0);
    }

    #[test]
    fn children_nest_inside_the_parents_server_time() {
        let report = run_traced_memlink(&small_config()).unwrap();
        for trace in report.store.traces() {
            let root_app = trace.spans[0].component(LatencyComponent::ServerApplication);
            let children_total: u64 = trace.spans[1..]
                .iter()
                .map(|s| s.total_latency().as_nanos())
                .sum();
            assert!(
                root_app.as_nanos() >= children_total,
                "root app {} must cover nested children {}",
                root_app.as_nanos(),
                children_total
            );
            // The causal invariant: children start after the root.
            for child in &trace.spans[1..] {
                assert!(child.start_offset() > SimDuration::ZERO);
            }
        }
    }

    #[test]
    fn critical_path_works_unchanged_on_measured_trees() {
        let report = run_traced_memlink(&small_config()).unwrap();
        let trace = &report.store.traces()[0];
        let path = CriticalPath::compute(trace);
        assert!(!path.is_empty());
        // The path starts at the root and its exclusive sum telescopes
        // to the root's total latency.
        assert_eq!(path.exclusive_sum(), trace.root().total_latency());
    }

    #[test]
    fn capture_is_a_pure_function_of_the_seed() {
        let a = run_traced_memlink(&small_config()).unwrap();
        let b = run_traced_memlink(&small_config()).unwrap();
        assert_eq!(a.export, b.export);
        assert_eq!(a.digest, b.digest);
        let mut other = small_config();
        other.seed = 43;
        let c = run_traced_memlink(&other).unwrap();
        assert_ne!(a.digest, c.digest, "different seed, different capture");
    }

    #[test]
    fn export_roundtrips_through_the_checksummed_format() {
        let report = run_traced_memlink(&small_config()).unwrap();
        let imported = rpclens_trace::export::import(&report.export).unwrap();
        assert_eq!(imported.len(), report.store.len());
        assert_eq!(imported.total_spans(), report.store.total_spans());
        assert_eq!(
            rpclens_trace::export::export(&imported),
            report.export,
            "import/export is byte-stable"
        );
    }

    #[test]
    fn virtual_mode_matches_the_model_and_raises_no_findings() {
        let report = run_traced_memlink(&small_config()).unwrap();
        // In virtual mode measured == modeled up to quantization, so the
        // standing detectors stay quiet — any finding is a pipeline bug.
        assert!(
            report.findings.is_empty(),
            "unexpected findings: {:?}",
            report.findings
        );
        assert!(report.tsdb_series >= 6);
        assert!(report.measured.p50_us > 0);
    }

    #[test]
    fn renderers_produce_text_from_the_artifact_alone() {
        let report = run_traced_memlink(&small_config()).unwrap();
        // Round-trip through the export first: the inspect path renders
        // from the artifact bytes without re-running anything.
        let store = rpclens_trace::export::import(&report.export).unwrap();
        let waterfall = waterfall_text(&store, 0).unwrap();
        assert!(waterfall.contains("3 spans"));
        assert!(waterfall.contains("#"), "bars rendered");
        assert!(waterfall_text(&store, 9_999).is_err(), "range checked");
        let deltas = method_delta_text(&store, 42, 300);
        assert!(deltas.contains("measured vs modeled"));
        assert!(deltas.lines().count() > 2, "at least one method row");
        let summary = trace_summary_text(&report);
        assert!(summary.contains("digest"));
        assert!(summary.contains("detectors: clean"));
    }

    #[test]
    fn deeper_chains_and_wider_fanout_scale_the_tree() {
        let config = TraceBenchConfig {
            requests: 4,
            seed: 7,
            total_methods: 300,
            hops: 3,
            fanout: 2,
        };
        let report = run_traced_memlink(&config).unwrap();
        // hops=3, fanout=2: 1 + 2 + 4 = 7 spans per trace.
        for trace in report.store.traces() {
            assert_eq!(trace.len(), 7);
            assert_eq!(TreeStats::compute(trace).max_depth, 2);
        }
    }
}
