/root/repo/target/debug/deps/rpclens_trace-6746b8deb1f3b50b.d: crates/trace/src/lib.rs crates/trace/src/collector.rs crates/trace/src/critical_path.rs crates/trace/src/export.rs crates/trace/src/query.rs crates/trace/src/span.rs crates/trace/src/tree.rs Cargo.toml

/root/repo/target/debug/deps/librpclens_trace-6746b8deb1f3b50b.rmeta: crates/trace/src/lib.rs crates/trace/src/collector.rs crates/trace/src/critical_path.rs crates/trace/src/export.rs crates/trace/src/query.rs crates/trace/src/span.rs crates/trace/src/tree.rs Cargo.toml

crates/trace/src/lib.rs:
crates/trace/src/collector.rs:
crates/trace/src/critical_path.rs:
crates/trace/src/export.rs:
crates/trace/src/query.rs:
crates/trace/src/span.rs:
crates/trace/src/tree.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
