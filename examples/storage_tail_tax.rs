//! Storage tail tax: where does a storage RPC's tail come from?
//!
//! The paper's §3.3 workflow on one service: take the fleet's most
//! popular storage method (Network Disk `Write`), break its completion
//! time into the nine Fig. 9 components, then run the Fig. 15 what-if
//! analysis to see which component substitution cures the most tail RPCs.
//!
//! ```text
//! cargo run --release --example storage_tail_tax
//! ```

use rpclens::core::render::fmt_secs;
use rpclens::core::whatif::what_if_p95;
use rpclens::prelude::*;
use rpclens::rpcstack::component::LatencyComponent;
use rpclens::simcore::stats::{percentile, sorted_finite};

fn main() {
    let run = run_fleet(FleetConfig::at_scale(SimScale::smoke()));

    // Find Network Disk Write.
    let disk = run
        .catalog
        .service_by_name("NetworkDisk")
        .expect("catalog pins NetworkDisk");
    let write = run
        .catalog
        .methods()
        .iter()
        .find(|m| m.service == disk.id && m.name == "Write")
        .expect("catalog pins Write")
        .id;

    // Collect intra-cluster breakdowns.
    let query = MethodQuery {
        intra_cluster_only: true,
        min_samples: 1,
        ..MethodQuery::default()
    };
    let mut breakdowns = Vec::new();
    let mut totals = Vec::new();
    run.store.for_each_span(write, |_, span| {
        if query.accepts(span) {
            breakdowns.push(span.breakdown());
            totals.push(span.total_latency().as_secs_f64());
        }
    });
    let sorted = sorted_finite(totals);
    println!(
        "NetworkDisk.Write: {} intra-cluster samples, P50 {} / P95 {} / P99 {}",
        breakdowns.len(),
        fmt_secs(percentile(&sorted, 0.5).expect("samples")),
        fmt_secs(percentile(&sorted, 0.95).expect("samples")),
        fmt_secs(percentile(&sorted, 0.99).expect("samples")),
    );

    // Mean per-component breakdown.
    println!("\nmean component breakdown:");
    for c in LatencyComponent::ALL {
        let mean: f64 = breakdowns
            .iter()
            .map(|b| b.get(c).as_secs_f64())
            .sum::<f64>()
            / breakdowns.len().max(1) as f64;
        println!("  {:>28}: {}", c.label(), fmt_secs(mean));
    }

    // What-if: which single component, set to its median, cures the most
    // P95-tail writes?
    let result = what_if_p95(&breakdowns).expect("enough samples");
    println!(
        "\nwhat-if on {} tail writes (P95 = {}):",
        result.tail_count,
        fmt_secs(result.p95_secs)
    );
    for c in LatencyComponent::ALL {
        println!(
            "  fixing {:>28} cures {:>5.1}% of the tail",
            c.label(),
            result.cured(c) * 100.0
        );
    }
    println!("\ndominant tail cause: {}", result.dominant().label());
}
