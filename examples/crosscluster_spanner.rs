//! Cross-cluster Spanner reads: the Fig. 19 experiment, standalone.
//!
//! Probes a Spanner read from every cluster in the topology against the
//! data-home cluster of that client's working set and prints the median
//! latency per distance class, demonstrating that median cross-cluster
//! latency is wire-dominated while the tail is congestion.
//!
//! ```text
//! cargo run --release --example crosscluster_spanner
//! ```

use rpclens::core::figs::fig19;
use rpclens::core::render::fmt_secs;
use rpclens::prelude::*;

fn main() {
    let run = run_fleet(FleetConfig::at_scale(SimScale::smoke()));
    let fig = fig19::compute(&run);

    // Group medians per distance class.
    let mut by_class: std::collections::BTreeMap<PathClass, Vec<&fig19::ClientRow>> =
        std::collections::BTreeMap::new();
    for row in &fig.rows {
        by_class.entry(row.class).or_default().push(row);
    }
    println!("Spanner read latency by client distance class:");
    for (class, rows) in &by_class {
        let mean_median: f64 = rows.iter().map(|r| r.median).sum::<f64>() / rows.len() as f64;
        let mean_net: f64 = rows.iter().map(|r| r.median_network).sum::<f64>() / rows.len() as f64;
        let mean_wire: f64 = rows.iter().map(|r| r.wire_rtt).sum::<f64>() / rows.len() as f64;
        println!(
            "  {:>28} ({:>2} clients): median {:>9}, network {:>9}, wire RTT {:>9}",
            class.label(),
            rows.len(),
            fmt_secs(mean_median),
            fmt_secs(mean_net),
            fmt_secs(mean_wire),
        );
    }

    println!("\nper-client rows (sorted by class, then median):");
    println!("{}", fig19::render(&fig));

    let checks = fig19::checks(&fig);
    println!("{checks}");
}
