/root/repo/target/release/examples/callgraph_shapes-472c7d545e00a0bd.d: examples/callgraph_shapes.rs

/root/repo/target/release/examples/callgraph_shapes-472c7d545e00a0bd: examples/callgraph_shapes.rs

examples/callgraph_shapes.rs:
