/root/repo/target/release/examples/quickstart-bcc44f1e2a9235ca.d: examples/quickstart.rs

/root/repo/target/release/examples/quickstart-bcc44f1e2a9235ca: examples/quickstart.rs

examples/quickstart.rs:
