//! A machine whose execution speed couples to its exogenous state.
//!
//! The paper's Fig. 17 shows that per-component RPC latency tracks CPU
//! utilization, memory bandwidth, long-wakeup rate, and CPI — except for
//! services on *reserved cores* (KV-Store), which only track CPI. The
//! machine model reproduces that causal structure:
//!
//! - handler execution time = `work / (speed / slowdown)`, where the
//!   slowdown is the machine's instantaneous CPI relative to its baseline;
//! - scheduler wakeup latency is short normally but long (>50 µs) with the
//!   machine's current long-wakeup probability;
//! - a reserved-core machine bypasses the utilization-dependent part of
//!   both couplings.

use crate::exogenous::{ExogenousProfile, ExogenousVars};
use rpclens_simcore::rng::Prng;
use rpclens_simcore::time::{SimDuration, SimTime};
use serde::{Deserialize, Serialize};

/// Identifier of a machine within the fleet (dense index).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct MachineId(pub u32);

/// Static machine configuration.
#[derive(Debug, Clone)]
pub struct MachineConfig {
    /// Relative CPU speed (1.0 = fleet baseline). The fleet mixes CPU
    /// generations, which is why the profiler reports *normalized* cycles.
    pub speed: f64,
    /// Whether the studied service holds reserved cores on this machine.
    pub reserved_cores: bool,
    /// Baseline CPI at low load (denominator of the slowdown factor).
    pub baseline_cpi: f64,
}

impl Default for MachineConfig {
    fn default() -> Self {
        MachineConfig {
            speed: 1.0,
            reserved_cores: false,
            baseline_cpi: 1.0,
        }
    }
}

/// A simulated machine.
///
/// Machines hold no generator state of their own: every stochastic draw
/// (currently only [`Machine::wakeup_latency`]) samples from a caller
/// supplied [`Prng`]. This keeps a machine's behaviour a pure function of
/// `(profile, t, caller randomness)`, which is what lets the fleet driver
/// replay the same trace on any shard and get identical latencies.
#[derive(Debug, Clone)]
pub struct Machine {
    id: MachineId,
    config: MachineConfig,
    profile: ExogenousProfile,
}

/// Threshold above which a scheduling event counts as a "long wakeup"
/// (Table 2 uses 50 µs).
pub const LONG_WAKEUP_THRESHOLD: SimDuration = SimDuration::from_micros(50);

impl Machine {
    /// Creates a machine with the given profile.
    pub fn new(id: MachineId, config: MachineConfig, profile: ExogenousProfile) -> Self {
        Machine {
            id,
            config,
            profile,
        }
    }

    /// This machine's id.
    pub fn id(&self) -> MachineId {
        self.id
    }

    /// This machine's static configuration.
    pub fn config(&self) -> &MachineConfig {
        &self.config
    }

    /// The machine's exogenous state at `t`.
    pub fn exogenous(&self, t: SimTime) -> ExogenousVars {
        self.profile.sample(t)
    }

    /// The exogenous profile driving this machine.
    pub fn profile(&self) -> &ExogenousProfile {
        &self.profile
    }

    /// The multiplicative slowdown applied to compute at instant `t`.
    ///
    /// On shared machines this is the instantaneous CPI over the baseline
    /// CPI (contention raises CPI, which stretches every instruction). On
    /// reserved cores, contention from co-tenants is excluded; only a
    /// small chip-level CPI effect remains.
    pub fn slowdown(&self, t: SimTime) -> f64 {
        self.slowdown_from(&self.profile.sample(t))
    }

    /// [`Machine::slowdown`] computed from already-sampled exogenous
    /// state, for callers that need several machine quantities at the
    /// same instant and want to pay for one profile sample.
    pub fn slowdown_from(&self, vars: &ExogenousVars) -> f64 {
        if self.config.reserved_cores {
            // Reserved cores escape scheduling/bandwidth contention but
            // still see chip-wide effects (uncore frequency, LLC) that the
            // paper observes as a residual CPI correlation.
            1.0 + 0.3 * (vars.cpi / self.config.baseline_cpi - 1.0).max(0.0)
        } else {
            (vars.cpi / self.config.baseline_cpi).max(0.5)
        }
    }

    /// Converts a nominal compute requirement into wall time at `t`.
    ///
    /// `nominal` is the duration the work would take on an unloaded
    /// baseline machine.
    pub fn execute(&self, nominal: SimDuration, t: SimTime) -> SimDuration {
        nominal.mul_f64(self.slowdown(t) / self.config.speed)
    }

    /// Samples one scheduler wakeup latency at instant `t` from `rng`.
    ///
    /// Most wakeups are a few microseconds; with the machine's current
    /// long-wakeup probability the thread instead waits beyond
    /// [`LONG_WAKEUP_THRESHOLD`], with an exponential tail. Draws come
    /// from the caller's generator (in the fleet driver, the per-trace
    /// stream) so that concurrent traces touching the same machine never
    /// perturb each other's samples.
    pub fn wakeup_latency(&self, t: SimTime, rng: &mut Prng) -> SimDuration {
        self.wakeup_latency_from(&self.profile.sample(t), rng)
    }

    /// [`Machine::wakeup_latency`] computed from already-sampled
    /// exogenous state; identical draws from `rng`.
    pub fn wakeup_latency_from(&self, vars: &ExogenousVars, rng: &mut Prng) -> SimDuration {
        let long_rate = if self.config.reserved_cores {
            // Dedicated cores do not contend for runqueue slots.
            0.0005
        } else {
            vars.long_wakeup_rate
        };
        if rng.chance(long_rate) {
            // A long wakeup: threshold plus an exponential excess whose
            // mean grows with utilization.
            let mean_excess_us = 80.0 * (1.0 + 2.0 * vars.cpu_util);
            let excess = -rng.next_f64_open().ln() * mean_excess_us;
            LONG_WAKEUP_THRESHOLD + SimDuration::from_micros_f64(excess)
        } else {
            // Normal wakeup: a few microseconds, mildly load-dependent.
            let mean_us = 2.0 + 6.0 * vars.cpu_util;
            SimDuration::from_micros_f64(-rng.next_f64_open().ln() * mean_us)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn machine(reserved: bool, profile: ExogenousProfile) -> Machine {
        Machine::new(
            MachineId(1),
            MachineConfig {
                reserved_cores: reserved,
                ..MachineConfig::default()
            },
            profile,
        )
    }

    #[test]
    fn execute_scales_with_speed() {
        let profile = ExogenousProfile::light(1);
        let fast = Machine::new(
            MachineId(0),
            MachineConfig {
                speed: 2.0,
                ..MachineConfig::default()
            },
            profile,
        );
        let slow = Machine::new(MachineId(1), MachineConfig::default(), profile);
        let t = SimTime::ZERO;
        let nominal = SimDuration::from_millis(10);
        let f = fast.execute(nominal, t);
        let s = slow.execute(nominal, t);
        assert!((s.as_secs_f64() / f.as_secs_f64() - 2.0).abs() < 1e-9);
    }

    #[test]
    fn busy_machines_run_slower() {
        let busy = machine(false, ExogenousProfile::busy(2));
        let light = machine(false, ExogenousProfile::light(2));
        // Compare average slowdown across a day.
        let mut busy_sum = 0.0;
        let mut light_sum = 0.0;
        for i in 0..288 {
            let t = SimTime::ZERO + SimDuration::from_mins(i * 5);
            busy_sum += busy.slowdown(t);
            light_sum += light.slowdown(t);
        }
        assert!(busy_sum > light_sum * 1.05, "{busy_sum} vs {light_sum}");
    }

    #[test]
    fn reserved_cores_shrink_utilization_coupling() {
        let profile = ExogenousProfile::busy(3);
        let shared = machine(false, profile);
        let reserved = machine(true, profile);
        // Variance of slowdown across the day should be much lower with
        // reserved cores.
        let collect = |m: &Machine| -> Vec<f64> {
            (0..288)
                .map(|i| m.slowdown(SimTime::ZERO + SimDuration::from_mins(i * 5)))
                .collect()
        };
        let var = |v: &[f64]| {
            let mean = v.iter().sum::<f64>() / v.len() as f64;
            v.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / v.len() as f64
        };
        let vs = var(&collect(&shared));
        let vr = var(&collect(&reserved));
        assert!(vr < vs * 0.5, "reserved var {vr} vs shared var {vs}");
    }

    #[test]
    fn wakeup_latencies_have_long_tail_on_busy_machines() {
        let busy = machine(false, ExogenousProfile::busy(4));
        let mut rng = Prng::seed_from(4);
        let mut long = 0u32;
        let n = 50_000;
        for i in 0..n {
            let t = SimTime::ZERO + SimDuration::from_millis(i as u64);
            if busy.wakeup_latency(t, &mut rng) >= LONG_WAKEUP_THRESHOLD {
                long += 1;
            }
        }
        let rate = long as f64 / n as f64;
        // The busy profile's long-wakeup rate is ~0.5-2%.
        assert!(rate > 0.001 && rate < 0.1, "long rate {rate}");
    }

    #[test]
    fn reserved_cores_avoid_long_wakeups() {
        let shared = machine(false, ExogenousProfile::busy(5));
        let reserved = machine(true, ExogenousProfile::busy(5));
        let count_long = |m: &Machine, seed: u64| {
            let mut rng = Prng::seed_from(seed);
            (0..50_000u64)
                .filter(|&i| {
                    m.wakeup_latency(SimTime::ZERO + SimDuration::from_millis(i), &mut rng)
                        >= LONG_WAKEUP_THRESHOLD
                })
                .count()
        };
        let s = count_long(&shared, 5);
        let r = count_long(&reserved, 5);
        assert!(r * 4 < s, "reserved {r} vs shared {s}");
    }

    #[test]
    fn wakeups_are_positive_and_bounded_sane() {
        let m = machine(false, ExogenousProfile::shared(6));
        let mut rng = Prng::seed_from(6);
        for i in 0..10_000u64 {
            let w = m.wakeup_latency(SimTime::ZERO + SimDuration::from_millis(i), &mut rng);
            assert!(w < SimDuration::from_millis(20), "wakeup {w} implausible");
        }
    }

    #[test]
    fn wakeup_is_pure_function_of_time_and_rng() {
        // Two clones of the machine given identical caller rngs must
        // produce identical samples — the machine itself holds no
        // generator state.
        let m1 = machine(false, ExogenousProfile::busy(7));
        let m2 = m1.clone();
        let mut r1 = Prng::seed_from(7);
        let mut r2 = Prng::seed_from(7);
        for i in 0..1_000u64 {
            let t = SimTime::ZERO + SimDuration::from_millis(i);
            assert_eq!(m1.wakeup_latency(t, &mut r1), m2.wakeup_latency(t, &mut r2));
        }
    }
}
