/root/repo/target/debug/deps/paper_shapes-3d21479942e806ca.d: tests/paper_shapes.rs Cargo.toml

/root/repo/target/debug/deps/libpaper_shapes-3d21479942e806ca.rmeta: tests/paper_shapes.rs Cargo.toml

tests/paper_shapes.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
