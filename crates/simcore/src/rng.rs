//! Deterministic, splittable pseudo-random number generation.
//!
//! Reproducibility is a hard requirement for the fleet simulator: every
//! figure in the study must regenerate bit-identically from a single master
//! seed. We therefore implement the generator ourselves instead of relying
//! on an external crate whose stream could change across versions:
//!
//! - [`SplitMix64`] is used for seeding and for deriving independent
//!   sub-streams (one per method, per machine, per link, ...), following the
//!   recommendation of Blackman & Vigna.
//! - [`Prng`] is xoshiro256**, a fast all-purpose generator with a 2^256 - 1
//!   period and no known statistical failures at simulation scale.

/// The SplitMix64 generator, used to expand seeds and derive sub-streams.
///
/// # Examples
///
/// ```
/// use rpclens_simcore::rng::SplitMix64;
///
/// let mut sm = SplitMix64::new(1);
/// let a = sm.next_u64();
/// let b = sm.next_u64();
/// assert_ne!(a, b);
/// ```
#[derive(Debug, Clone)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Creates a generator from a raw seed.
    pub fn new(seed: u64) -> Self {
        SplitMix64 { state: seed }
    }

    /// Returns the next 64-bit output.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

/// A deterministic xoshiro256** PRNG with convenience sampling methods.
///
/// Cloning a `Prng` duplicates its stream; use [`Prng::split`] or
/// [`Prng::stream`] to derive *independent* sub-streams instead.
#[derive(Debug, Clone)]
pub struct Prng {
    s: [u64; 4],
}

impl Prng {
    /// Creates a generator whose state is expanded from `seed` with
    /// SplitMix64 (so similar seeds still yield decorrelated states).
    pub fn seed_from(seed: u64) -> Self {
        let mut sm = SplitMix64::new(seed);
        let mut s = [0u64; 4];
        for slot in &mut s {
            *slot = sm.next_u64();
        }
        // xoshiro's all-zero state is absorbing; SplitMix64 cannot emit four
        // consecutive zeros, but guard anyway for clarity.
        if s == [0, 0, 0, 0] {
            s[0] = 0x9E37_79B9_7F4A_7C15;
        }
        Prng { s }
    }

    /// Derives an independent sub-stream labelled by `label`.
    ///
    /// Streams with different labels (or from generators with different
    /// seeds) are statistically independent. This is how the simulator gives
    /// each entity (method, machine, link) its own reproducible randomness
    /// regardless of the order entities consume samples.
    pub fn stream(&self, label: u64) -> Prng {
        let mut sm = SplitMix64::new(
            self.s[0]
                .wrapping_mul(0xA24B_AED4_963E_E407)
                .wrapping_add(label.wrapping_mul(0x9FB2_1C65_1E98_DF25)),
        );
        let mut s = [0u64; 4];
        for slot in &mut s {
            *slot = sm.next_u64();
        }
        Prng { s }
    }

    /// Splits off an independent child generator, advancing this one.
    pub fn split(&mut self) -> Prng {
        let label = self.next_u64();
        self.stream(label)
    }

    /// Derives the `index`-th counter-based sub-stream.
    ///
    /// This is the sharding primitive: work item `i` of a partitioned
    /// computation draws from `substream(i)` regardless of which worker
    /// thread executes it, so results are identical at any shard count.
    /// Like [`Prng::stream`], derivation borrows the parent immutably and
    /// never advances it, so any number of substreams can be taken from
    /// one master generator, in any order, without perturbing it or each
    /// other. Indexes are
    /// mapped (bijectively) into a label region reserved for counter-based
    /// streams so that realistic counter values (dense indexes from zero)
    /// cannot collide with the small hand-picked labels `stream` is used
    /// with.
    pub fn substream(&self, index: u64) -> Prng {
        self.stream(index ^ 0x7200_0000)
    }

    /// Returns the next 64-bit output.
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }

    /// Returns a uniform `f64` in `[0, 1)` with 53 bits of precision.
    #[inline]
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Returns a uniform `f64` in `(0, 1]`, convenient for `ln()` transforms.
    #[inline]
    pub fn next_f64_open(&mut self) -> f64 {
        ((self.next_u64() >> 11) + 1) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Returns a uniform integer in `[0, bound)` using Lemire's method.
    ///
    /// # Panics
    ///
    /// Panics if `bound` is zero.
    #[inline]
    pub fn next_below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "bound must be positive");
        // Lemire's nearly-divisionless bounded sampling.
        let mut x = self.next_u64();
        let mut m = (x as u128) * (bound as u128);
        let mut l = m as u64;
        if l < bound {
            let t = bound.wrapping_neg() % bound;
            while l < t {
                x = self.next_u64();
                m = (x as u128) * (bound as u128);
                l = m as u64;
            }
        }
        (m >> 64) as u64
    }

    /// Returns a uniform integer in `[lo, hi)`.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    #[inline]
    pub fn gen_range(&mut self, lo: u64, hi: u64) -> u64 {
        assert!(lo < hi, "empty range [{lo}, {hi})");
        lo + self.next_below(hi - lo)
    }

    /// Returns a uniform `usize` index in `[0, len)`.
    ///
    /// # Panics
    ///
    /// Panics if `len` is zero.
    #[inline]
    pub fn index(&mut self, len: usize) -> usize {
        self.next_below(len as u64) as usize
    }

    /// Returns `true` with probability `p` (clamped to `[0, 1]`).
    #[inline]
    pub fn chance(&mut self, p: f64) -> bool {
        self.next_f64() < p
    }

    /// Returns a standard normal sample via the Box-Muller transform.
    #[inline]
    pub fn next_gaussian(&mut self) -> f64 {
        let u1 = self.next_f64_open();
        let u2 = self.next_f64();
        (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos()
    }

    /// Shuffles a slice in place (Fisher-Yates).
    pub fn shuffle<T>(&mut self, items: &mut [T]) {
        for i in (1..items.len()).rev() {
            let j = self.index(i + 1);
            items.swap(i, j);
        }
    }

    /// Picks a uniformly random element from a non-empty slice.
    ///
    /// # Panics
    ///
    /// Panics if `items` is empty.
    pub fn choose<'a, T>(&mut self, items: &'a [T]) -> &'a T {
        &items[self.index(items.len())]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn splitmix_matches_reference_vectors() {
        // Reference outputs for seed 1234567 from the canonical C
        // implementation by Sebastiano Vigna.
        let mut sm = SplitMix64::new(1234567);
        let expected = [
            6457827717110365317u64,
            3203168211198807973,
            9817491932198370423,
            4593380528125082431,
            16408922859458223821,
        ];
        for &e in &expected {
            assert_eq!(sm.next_u64(), e);
        }
    }

    #[test]
    fn same_seed_same_stream() {
        let mut a = Prng::seed_from(9);
        let mut b = Prng::seed_from(9);
        for _ in 0..1000 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = Prng::seed_from(1);
        let mut b = Prng::seed_from(2);
        let same = (0..64).filter(|_| a.next_u64() == b.next_u64()).count();
        assert_eq!(same, 0);
    }

    #[test]
    fn streams_are_label_deterministic_and_distinct() {
        let root = Prng::seed_from(7);
        let mut s1 = root.stream(42);
        let mut s1b = root.stream(42);
        let mut s2 = root.stream(43);
        assert_eq!(s1.next_u64(), s1b.next_u64());
        let mut a = root.stream(42);
        assert_ne!(a.next_u64(), s2.next_u64());
    }

    #[test]
    fn f64_in_unit_interval() {
        let mut rng = Prng::seed_from(3);
        for _ in 0..10_000 {
            let x = rng.next_f64();
            assert!((0.0..1.0).contains(&x));
            let y = rng.next_f64_open();
            assert!(y > 0.0 && y <= 1.0);
        }
    }

    #[test]
    fn uniform_mean_is_half() {
        let mut rng = Prng::seed_from(4);
        let n = 100_000;
        let mean: f64 = (0..n).map(|_| rng.next_f64()).sum::<f64>() / n as f64;
        assert!((mean - 0.5).abs() < 0.005, "mean {mean}");
    }

    #[test]
    fn gaussian_moments() {
        let mut rng = Prng::seed_from(5);
        let n = 200_000;
        let samples: Vec<f64> = (0..n).map(|_| rng.next_gaussian()).collect();
        let mean = samples.iter().sum::<f64>() / n as f64;
        let var = samples.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / n as f64;
        assert!(mean.abs() < 0.01, "mean {mean}");
        assert!((var - 1.0).abs() < 0.02, "var {var}");
    }

    #[test]
    fn bounded_sampling_is_unbiased_across_buckets() {
        let mut rng = Prng::seed_from(6);
        let mut counts = [0u32; 7];
        let n = 70_000;
        for _ in 0..n {
            counts[rng.next_below(7) as usize] += 1;
        }
        for &c in &counts {
            // Expected 10_000 per bucket; 5 sigma is ~±480.
            assert!((c as i64 - 10_000).abs() < 600, "counts {counts:?}");
        }
    }

    #[test]
    #[should_panic(expected = "bound must be positive")]
    fn zero_bound_panics() {
        Prng::seed_from(0).next_below(0);
    }

    #[test]
    fn shuffle_is_permutation() {
        let mut rng = Prng::seed_from(11);
        let mut v: Vec<u32> = (0..100).collect();
        rng.shuffle(&mut v);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<_>>());
        assert_ne!(v, (0..100).collect::<Vec<_>>());
    }

    proptest! {
        #[test]
        fn gen_range_stays_in_range(seed: u64, lo in 0u64..1000, span in 1u64..1000) {
            let mut rng = Prng::seed_from(seed);
            for _ in 0..100 {
                let x = rng.gen_range(lo, lo + span);
                prop_assert!(x >= lo && x < lo + span);
            }
        }

        #[test]
        fn substreams_are_distinct_and_derivation_is_repeatable(seed: u64) {
            let parent = Prng::seed_from(seed);
            let mut a = parent.substream(0);
            let mut b = parent.substream(1);
            prop_assert_ne!(a.next_u64(), b.next_u64());
            // Derivation never advances the parent, so taking the same
            // index again — even after deriving other substreams — yields
            // the identical child. The sharded fleet driver depends on
            // this: every shard derives per-trace substreams from one
            // shared master generator.
            let _ = parent.substream(3);
            let mut c1 = parent.substream(7);
            let mut c2 = parent.substream(7);
            prop_assert_eq!(c1.next_u64(), c2.next_u64());
        }

        #[test]
        fn split_children_are_independent_of_consumption_order(seed: u64) {
            // Deriving stream(k) must not depend on how much the parent has
            // been used when using `stream` (as opposed to `split`).
            let parent = Prng::seed_from(seed);
            let mut c1 = parent.stream(5);
            let mut throwaway = parent.clone();
            for _ in 0..17 {
                throwaway.next_u64();
            }
            let mut c2 = parent.stream(5);
            prop_assert_eq!(c1.next_u64(), c2.next_u64());
        }
    }
}
