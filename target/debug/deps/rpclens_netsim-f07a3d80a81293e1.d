/root/repo/target/debug/deps/rpclens_netsim-f07a3d80a81293e1.d: crates/netsim/src/lib.rs crates/netsim/src/congestion.rs crates/netsim/src/geo.rs crates/netsim/src/latency.rs crates/netsim/src/topology.rs

/root/repo/target/debug/deps/librpclens_netsim-f07a3d80a81293e1.rlib: crates/netsim/src/lib.rs crates/netsim/src/congestion.rs crates/netsim/src/geo.rs crates/netsim/src/latency.rs crates/netsim/src/topology.rs

/root/repo/target/debug/deps/librpclens_netsim-f07a3d80a81293e1.rmeta: crates/netsim/src/lib.rs crates/netsim/src/congestion.rs crates/netsim/src/geo.rs crates/netsim/src/latency.rs crates/netsim/src/topology.rs

crates/netsim/src/lib.rs:
crates/netsim/src/congestion.rs:
crates/netsim/src/geo.rs:
crates/netsim/src/latency.rs:
crates/netsim/src/topology.rs:
