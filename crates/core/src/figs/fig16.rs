//! Fig. 16: per-cluster P95 latency breakdown for each studied service.
//!
//! Paper anchors: the dominant component stays the same across clusters,
//! but P95 latency varies 1.24–10x between clusters of the *same*
//! service on the same platform — exogenous cluster state is the cause.

use crate::check::ExpectationSet;
use crate::render::{fmt_secs, TextTable};
use rpclens_fleet::driver::FleetRun;
use rpclens_netsim::topology::ClusterId;
use rpclens_rpcstack::component::LatencyComponent;
use rpclens_simcore::stats::{percentile, sorted_finite};
use rpclens_trace::query::MethodQuery;

/// One cluster's tail breakdown for one service.
#[derive(Debug)]
pub struct ClusterTail {
    /// The cluster.
    pub cluster: ClusterId,
    /// Sample count.
    pub samples: usize,
    /// P95 completion time, seconds.
    pub p95: f64,
    /// Mean component seconds among tail (>= P90) spans.
    pub tail_components: [f64; 9],
}

/// One service's per-cluster view.
#[derive(Debug)]
pub struct ServiceClusters {
    /// Service name.
    pub name: &'static str,
    /// Per-cluster tails, sorted by P95 ascending.
    pub clusters: Vec<ClusterTail>,
}

/// The computed figure.
#[derive(Debug)]
pub struct Fig16 {
    /// One entry per Table 1 service.
    pub services: Vec<ServiceClusters>,
}

/// Computes the figure.
pub fn compute(run: &FleetRun) -> Fig16 {
    let mut services = Vec::new();
    for entry in run.catalog.table1() {
        let base = MethodQuery {
            intra_cluster_only: true,
            min_samples: 1,
            ..MethodQuery::default()
        };
        // Group samples by server cluster.
        let mut by_cluster: std::collections::HashMap<ClusterId, Vec<(f64, [f64; 9])>> =
            std::collections::HashMap::new();
        run.store.for_each_span(entry.method, |_, span| {
            if !base.accepts(span) {
                return;
            }
            let mut comps = [0.0f64; 9];
            for (i, c) in LatencyComponent::ALL.iter().enumerate() {
                comps[i] = span.component(*c).as_secs_f64();
            }
            by_cluster
                .entry(span.server_cluster)
                .or_default()
                .push((span.total_latency().as_secs_f64(), comps));
        });
        let mut clusters = Vec::new();
        for (cluster, mut rows) in by_cluster {
            if rows.len() < 40 {
                continue;
            }
            rows.sort_by(|a, b| a.0.partial_cmp(&b.0).expect("finite"));
            let totals = sorted_finite(rows.iter().map(|r| r.0).collect());
            let p95 = percentile(&totals, 0.95).expect("non-empty");
            let p90 = percentile(&totals, 0.90).expect("non-empty");
            let tail: Vec<&(f64, [f64; 9])> = rows.iter().filter(|(t, _)| *t >= p90).collect();
            let mut tail_components = [0.0f64; 9];
            for (_, comps) in &tail {
                for i in 0..9 {
                    tail_components[i] += comps[i];
                }
            }
            for v in &mut tail_components {
                *v /= tail.len().max(1) as f64;
            }
            clusters.push(ClusterTail {
                cluster,
                samples: rows.len(),
                p95,
                tail_components,
            });
        }
        clusters.sort_by(|a, b| a.p95.partial_cmp(&b.p95).expect("finite"));
        if clusters.len() >= 2 {
            services.push(ServiceClusters {
                name: entry.server,
                clusters,
            });
        }
    }
    Fig16 { services }
}

/// The dominant tail component of a cluster entry.
pub fn dominant(tail: &ClusterTail) -> LatencyComponent {
    let mut best = 0;
    for i in 1..9 {
        if tail.tail_components[i] > tail.tail_components[best] {
            best = i;
        }
    }
    LatencyComponent::ALL[best]
}

/// Renders the figure.
pub fn render(fig: &Fig16) -> String {
    let mut t = TextTable::new(&["service", "clusters", "fastest P95", "slowest P95", "ratio"]);
    for s in &fig.services {
        let lo = s.clusters.first().expect("non-empty").p95;
        let hi = s.clusters.last().expect("non-empty").p95;
        t.row(vec![
            s.name.to_string(),
            s.clusters.len().to_string(),
            fmt_secs(lo),
            fmt_secs(hi),
            format!("{:.2}x", hi / lo.max(1e-12)),
        ]);
    }
    format!(
        "Fig. 16 — P95 latency across clusters per service\n{}",
        t.render()
    )
}

/// Paper-vs-measured checks.
pub fn checks(fig: &Fig16) -> ExpectationSet {
    let mut s = ExpectationSet::new();
    s.add(
        "fig16.services",
        "multiple services observed in several clusters each",
        fig.services.len() as f64,
        4.0,
        8.0,
    );
    for svc in &fig.services {
        let lo = svc.clusters.first().expect("non-empty").p95;
        let hi = svc.clusters.last().expect("non-empty").p95;
        s.add(
            &format!("fig16.{}_spread", svc.name.replace(' ', "_")),
            "P95 varies 1.24-10x across clusters",
            hi / lo.max(1e-12),
            1.1,
            60.0,
        );
    }
    // Dominant-component stability: the modal dominant component covers
    // most clusters of each service.
    let mut stable = 0;
    let mut total = 0;
    for svc in &fig.services {
        let mut counts = std::collections::HashMap::new();
        for c in &svc.clusters {
            *counts.entry(dominant(c)).or_insert(0usize) += 1;
        }
        let modal = counts.values().max().copied().unwrap_or(0);
        stable += modal;
        total += svc.clusters.len();
    }
    s.add(
        "fig16.dominance_stable",
        "the dominant component stays largely the same across clusters",
        stable as f64 / total.max(1) as f64,
        0.5,
        1.0,
    );
    s
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::common::testrun::shared;

    #[test]
    fn checks_pass_on_test_run() {
        let fig = compute(shared());
        let c = checks(&fig);
        assert!(c.all_passed(), "{c}");
    }

    #[test]
    fn clusters_are_sorted_by_p95() {
        let fig = compute(shared());
        for svc in &fig.services {
            assert!(svc.clusters.windows(2).all(|w| w[0].p95 <= w[1].p95));
            for c in &svc.clusters {
                assert!(c.samples >= 40);
            }
        }
    }
}
