/root/repo/target/debug/deps/rpclens_profiler-1d60135eea872a1b.d: crates/profiler/src/lib.rs

/root/repo/target/debug/deps/librpclens_profiler-1d60135eea872a1b.rlib: crates/profiler/src/lib.rs

/root/repo/target/debug/deps/librpclens_profiler-1d60135eea872a1b.rmeta: crates/profiler/src/lib.rs

crates/profiler/src/lib.rs:
