//! The wire client: request/reply matching plus seeded-jitter
//! retransmission.
//!
//! A [`WireClient`] owns a point-to-point [`Transport`] to one server and
//! a monotonically increasing request-id counter. Each call:
//!
//! 1. serializes, optionally compresses, and frames the request;
//! 2. sends it and waits up to the current retransmission timeout;
//! 3. on expiry, resends the *identical* datagram (same request id — the
//!    server's dedup cache depends on that) with exponential backoff and
//!    seeded jitter, like `rpcstack::retry`'s `BackoffPolicy`;
//! 4. on receipt, matches `(client_id, request_id)` and discards stale
//!    or duplicate replies.
//!
//! The deterministic step API ([`WireClient::start_call`] /
//! [`WireClient::try_complete`] / [`WireClient::retransmit`]) exposes the
//! same state machine without timers, so single-threaded tests can
//! interleave client and server at exact points in a fault schedule.

use crate::message::{self, Message, Response, Status, TraceContext, WireError};
use crate::sink::{NullSink, SpanEvent, SpanEventKind, SpanSink};
use crate::transport::{Transport, MAX_DATAGRAM};
use bytes::Bytes;
use rpclens_simcore::rng::Prng;
use std::time::Duration;

/// Retransmission-timer policy: exponential backoff with seeded jitter.
#[derive(Debug, Clone, Copy)]
pub struct RetryPolicy {
    /// First-attempt timeout.
    pub initial_timeout: Duration,
    /// Multiplier applied per expiry.
    pub multiplier: f64,
    /// Cap on any single timeout.
    pub max_timeout: Duration,
    /// Jitter fraction: each timeout is scaled by a seeded uniform draw
    /// from `[1 - jitter, 1 + jitter]`, decorrelating retransmission
    /// storms across clients.
    pub jitter: f64,
    /// Total transmissions allowed (first send plus retransmissions).
    pub max_attempts: u32,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            initial_timeout: Duration::from_millis(20),
            multiplier: 2.0,
            max_timeout: Duration::from_millis(500),
            jitter: 0.25,
            max_attempts: 16,
        }
    }
}

impl RetryPolicy {
    /// The timeout to arm for `attempt` (0-based), drawing jitter from
    /// `rng`. Deterministic for a given rng state.
    pub fn timeout_for(&self, attempt: u32, rng: &mut Prng) -> Duration {
        let base =
            self.initial_timeout.as_secs_f64() * self.multiplier.powi(attempt.min(24) as i32);
        let capped = base.min(self.max_timeout.as_secs_f64());
        let scale = 1.0 + self.jitter * (2.0 * rng.next_f64() - 1.0);
        Duration::from_secs_f64((capped * scale).max(1e-6))
    }
}

/// Counters for one client.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ClientStats {
    /// Calls started.
    pub calls: u64,
    /// Calls that completed with a decoded response.
    pub completed: u64,
    /// Retransmissions sent (beyond each call's first datagram).
    pub retransmissions: u64,
    /// Replies discarded as duplicates or stale (matching an old id).
    pub stale_replies: u64,
    /// Received datagrams that failed to decode.
    pub decode_errors: u64,
    /// Calls that exhausted every attempt.
    pub timeouts: u64,
}

/// An in-flight call: the immutable datagram plus matching state.
#[derive(Debug, Clone)]
pub struct PendingCall {
    /// The request id the reply must carry.
    pub request_id: u64,
    /// The exact bytes (re)transmitted.
    pub datagram: Bytes,
    /// Transmissions so far.
    pub attempts: u32,
    /// The catalog method id (0 for externally framed calls that did
    /// not declare one); carried so span events name the method.
    pub method: u64,
    /// The trace context embedded in the datagram, if any.
    pub context: Option<TraceContext>,
}

/// The wire client. See the module docs.
///
/// The `K` parameter is the [`SpanSink`] receiving span events; it
/// defaults to [`NullSink`] so untraced clients pay nothing.
pub struct WireClient<T: Transport, K: SpanSink = NullSink> {
    transport: T,
    client_id: u64,
    next_request_id: u64,
    policy: RetryPolicy,
    rng: Prng,
    stats: ClientStats,
    buf: Vec<u8>,
    sink: K,
}

impl<T: Transport> WireClient<T> {
    /// Creates a client. `client_id` namespaces its request ids on the
    /// server; `seed` drives retransmission jitter.
    pub fn new(transport: T, client_id: u64, policy: RetryPolicy, seed: u64) -> WireClient<T> {
        WireClient {
            transport,
            client_id,
            next_request_id: 1,
            policy,
            rng: Prng::seed_from(seed).stream(0x00C1_1E47),
            stats: ClientStats::default(),
            buf: vec![0u8; MAX_DATAGRAM + 4096],
            sink: NullSink,
        }
    }
}

impl<T: Transport, K: SpanSink> WireClient<T, K> {
    /// Rebinds the client to a different span sink, consuming it.
    /// Pending calls remain valid across the rebind.
    pub fn with_span_sink<K2: SpanSink>(self, sink: K2) -> WireClient<T, K2> {
        WireClient {
            transport: self.transport,
            client_id: self.client_id,
            next_request_id: self.next_request_id,
            policy: self.policy,
            rng: self.rng,
            stats: self.stats,
            buf: self.buf,
            sink,
        }
    }

    /// Counters so far.
    pub fn stats(&self) -> ClientStats {
        self.stats
    }

    /// This client's identity.
    pub fn client_id(&self) -> u64 {
        self.client_id
    }

    /// The underlying transport.
    pub fn transport_mut(&mut self) -> &mut T {
        &mut self.transport
    }

    /// Builds and sends a request datagram, returning the pending call.
    /// Part of the deterministic step API.
    pub fn start_call(
        &mut self,
        method: u64,
        body: &[u8],
        compress: bool,
    ) -> Result<PendingCall, WireError> {
        self.start_call_traced(method, body, compress, None)
    }

    /// [`WireClient::start_call`] with a trace context embedded in the
    /// request envelope; the server re-propagates it to nested calls.
    pub fn start_call_traced(
        &mut self,
        method: u64,
        body: &[u8],
        compress: bool,
        trace: Option<TraceContext>,
    ) -> Result<PendingCall, WireError> {
        let request_id = self.next_request_id;
        self.next_request_id += 1;
        let datagram = message::encode_request_traced(
            method,
            self.client_id,
            request_id,
            body,
            compress,
            trace.as_ref(),
        );
        self.transport.send(&datagram)?;
        self.stats.calls += 1;
        let mut event = SpanEvent::new(
            SpanEventKind::ClientSend,
            method,
            self.client_id,
            request_id,
        );
        event.context = trace;
        event.wire_bytes = datagram.len();
        event.raw_bytes = body.len();
        self.sink.record(&event);
        Ok(PendingCall {
            request_id,
            datagram,
            attempts: 1,
            method,
            context: trace,
        })
    }

    /// Sends a pre-framed datagram as a new call (the validation harness
    /// frames requests itself to time each encoding stage separately).
    pub fn start_prepared(
        &mut self,
        request_id: u64,
        datagram: Bytes,
    ) -> Result<PendingCall, WireError> {
        self.start_prepared_traced(request_id, datagram, 0, None)
    }

    /// [`WireClient::start_prepared`] declaring the method and the trace
    /// context the caller framed into the datagram, so span events carry
    /// them (the client does not re-decode its own frames).
    pub fn start_prepared_traced(
        &mut self,
        request_id: u64,
        datagram: Bytes,
        method: u64,
        trace: Option<TraceContext>,
    ) -> Result<PendingCall, WireError> {
        self.transport.send(&datagram)?;
        self.stats.calls += 1;
        let mut event = SpanEvent::new(
            SpanEventKind::ClientSend,
            method,
            self.client_id,
            request_id,
        );
        event.context = trace;
        event.wire_bytes = datagram.len();
        self.sink.record(&event);
        Ok(PendingCall {
            request_id,
            datagram,
            attempts: 1,
            method,
            context: trace,
        })
    }

    /// Allocates the next request id (for externally framed calls).
    pub fn allocate_request_id(&mut self) -> u64 {
        let id = self.next_request_id;
        self.next_request_id += 1;
        id
    }

    /// Resends the identical datagram. Part of the step API; the
    /// blocking loop calls it on timer expiry.
    pub fn retransmit(&mut self, call: &mut PendingCall) -> Result<(), WireError> {
        self.transport.send(&call.datagram)?;
        call.attempts += 1;
        self.stats.retransmissions += 1;
        let mut event = SpanEvent::new(
            SpanEventKind::ClientRetransmit,
            call.method,
            self.client_id,
            call.request_id,
        );
        event.context = call.context;
        event.wire_bytes = call.datagram.len();
        self.sink.record(&event);
        Ok(())
    }

    /// Drains received datagrams for up to `timeout`, returning the
    /// response matching `call` if one arrives. Stale replies and
    /// undecodable datagrams are counted and discarded.
    pub fn try_complete(
        &mut self,
        call: &PendingCall,
        timeout: Duration,
    ) -> Result<Option<Response>, WireError> {
        loop {
            let mut buf = std::mem::take(&mut self.buf);
            let received = self.transport.recv(&mut buf, timeout);
            self.buf = buf;
            let Some(len) = received? else {
                return Ok(None);
            };
            match message::decode(&self.buf[..len]) {
                Ok(Message::Response(resp))
                    if resp.client_id == self.client_id && resp.request_id == call.request_id =>
                {
                    self.stats.completed += 1;
                    let mut event = SpanEvent::new(
                        SpanEventKind::ClientRecv,
                        call.method,
                        self.client_id,
                        call.request_id,
                    );
                    event.context = call.context;
                    event.wire_bytes = len;
                    event.raw_bytes = resp.body.len();
                    event.status = Some(resp.status);
                    event.server_decode_ns = resp.server_decode_ns;
                    event.server_exec_ns = resp.server_exec_ns;
                    self.sink.record(&event);
                    if resp.status != Status::Ok {
                        return Err(WireError::Server(resp.status));
                    }
                    return Ok(Some(resp));
                }
                Ok(_) => {
                    // A duplicate of an earlier reply, or something
                    // addressed elsewhere: ignore.
                    self.stats.stale_replies += 1;
                    let mut event = SpanEvent::new(
                        SpanEventKind::ClientStale,
                        call.method,
                        self.client_id,
                        call.request_id,
                    );
                    event.context = call.context;
                    event.wire_bytes = len;
                    self.sink.record(&event);
                }
                Err(_) => {
                    self.stats.decode_errors += 1;
                    let mut event = SpanEvent::new(
                        SpanEventKind::ClientDecodeError,
                        call.method,
                        self.client_id,
                        call.request_id,
                    );
                    event.context = call.context;
                    event.wire_bytes = len;
                    self.sink.record(&event);
                }
            }
        }
    }

    /// The blocking convenience call: start, then alternate waiting and
    /// retransmitting under the retry policy until a reply or exhaustion.
    pub fn call(
        &mut self,
        method: u64,
        body: &[u8],
        compress: bool,
    ) -> Result<Response, WireError> {
        let mut pending = self.start_call(method, body, compress)?;
        self.drive(&mut pending)
    }

    /// Drives a pending call to completion under the retry policy.
    pub fn drive(&mut self, pending: &mut PendingCall) -> Result<Response, WireError> {
        loop {
            let timeout = self.policy.timeout_for(pending.attempts - 1, &mut self.rng);
            if let Some(resp) = self.try_complete(pending, timeout)? {
                return Ok(resp);
            }
            if pending.attempts >= self.policy.max_attempts {
                self.stats.timeouts += 1;
                let mut event = SpanEvent::new(
                    SpanEventKind::ClientTimeout,
                    pending.method,
                    self.client_id,
                    pending.request_id,
                );
                event.context = pending.context;
                self.sink.record(&event);
                return Err(WireError::TimedOut {
                    attempts: pending.attempts,
                });
            }
            self.retransmit(pending)?;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::server::{Semantics, WireServer};
    use crate::transport::MemLink;

    #[test]
    fn jittered_timeouts_back_off_and_stay_bounded() {
        let policy = RetryPolicy::default();
        let mut rng = Prng::seed_from(5);
        let mut previous_cap = Duration::ZERO;
        for attempt in 0..12 {
            let t = policy.timeout_for(attempt, &mut rng);
            let cap =
                Duration::from_secs_f64(policy.max_timeout.as_secs_f64() * (1.0 + policy.jitter));
            assert!(t <= cap, "attempt {attempt}: {t:?} over cap");
            let nominal = Duration::from_secs_f64(
                (policy.initial_timeout.as_secs_f64() * policy.multiplier.powi(attempt as i32))
                    .min(policy.max_timeout.as_secs_f64()),
            );
            // Within the jitter band of the nominal value.
            assert!(t.as_secs_f64() >= nominal.as_secs_f64() * (1.0 - policy.jitter) - 1e-9);
            assert!(t.as_secs_f64() <= nominal.as_secs_f64() * (1.0 + policy.jitter) + 1e-9);
            previous_cap = previous_cap.max(t);
        }
    }

    #[test]
    fn jitter_is_deterministic_per_seed() {
        let policy = RetryPolicy::default();
        let draw = |seed: u64| {
            let mut rng = Prng::seed_from(seed);
            (0..8)
                .map(|a| policy.timeout_for(a, &mut rng))
                .collect::<Vec<_>>()
        };
        assert_eq!(draw(9), draw(9));
        assert_ne!(draw(9), draw(10));
    }

    #[test]
    fn call_completes_against_a_polled_server() {
        let (client_end, server_end) = MemLink::pair();
        let mut server = WireServer::new(
            server_end,
            |req: &message::Request| (Status::Ok, req.body.to_vec()),
            Semantics::AtMostOnce,
        );
        let mut client = WireClient::new(client_end, 42, RetryPolicy::default(), 1);
        let mut pending = client.start_call(5, b"hello", true).unwrap();
        // Nothing served yet: zero-timeout completion attempt fails.
        assert!(client
            .try_complete(&pending, Duration::ZERO)
            .unwrap()
            .is_none());
        server.poll().unwrap();
        let resp = client
            .try_complete(&pending, Duration::ZERO)
            .unwrap()
            .expect("reply pending");
        assert_eq!(&resp.body[..], b"hello");
        assert_eq!(resp.request_id, pending.request_id);
        // Retransmit after completion: server dedups, client discards the
        // duplicate reply as stale for the *next* call.
        client.retransmit(&mut pending).unwrap();
        server.poll().unwrap();
        let mut second = client.start_call(5, b"again", true).unwrap();
        server.poll().unwrap();
        let resp2 = client.drive(&mut second).unwrap();
        assert_eq!(&resp2.body[..], b"again");
        assert_eq!(client.stats().stale_replies, 1);
    }

    #[test]
    fn request_ids_are_unique_and_increasing() {
        let (client_end, _server_end) = MemLink::pair();
        let mut client = WireClient::new(client_end, 1, RetryPolicy::default(), 2);
        let a = client.start_call(1, b"", false).unwrap();
        let b = client.start_call(1, b"", false).unwrap();
        assert!(b.request_id > a.request_id);
    }

    #[test]
    fn span_sink_sees_the_call_lifecycle() {
        use crate::sink::{SpanEventKind, VecSink};
        let (client_end, server_end) = MemLink::pair();
        let mut server = WireServer::new(
            server_end,
            |req: &message::Request| (Status::Ok, req.body.to_vec()),
            Semantics::AtMostOnce,
        );
        let ctx = TraceContext {
            trace_id: 0x90,
            span_id: 1,
            parent_span_id: 0,
            sampled: true,
            depth: 0,
        };
        let mut client = WireClient::new(client_end, 7, RetryPolicy::default(), 1)
            .with_span_sink(VecSink::default());
        let mut pending = client
            .start_call_traced(3, b"ping", false, Some(ctx))
            .unwrap();
        client.retransmit(&mut pending).unwrap();
        server.poll().unwrap();
        let resp = client
            .try_complete(&pending, Duration::ZERO)
            .unwrap()
            .expect("reply pending");
        assert_eq!(&resp.body[..], b"ping");
        let client = client; // end of mutation: inspect the sink
        let kinds: Vec<SpanEventKind> = client.sink.events.iter().map(|e| e.kind).collect();
        assert_eq!(
            kinds,
            vec![
                SpanEventKind::ClientSend,
                SpanEventKind::ClientRetransmit,
                SpanEventKind::ClientRecv,
            ]
        );
        for event in &client.sink.events {
            assert_eq!(event.context, Some(ctx));
            assert_eq!(event.method, 3);
            assert_eq!(event.request_id, pending.request_id);
        }
        assert_eq!(client.sink.events[2].status, Some(Status::Ok));
        assert_eq!(client.sink.events[0].raw_bytes, 4);
    }

    #[test]
    fn server_error_statuses_surface_as_errors() {
        let (client_end, server_end) = MemLink::pair();
        let mut server = WireServer::new(
            server_end,
            |_req: &message::Request| (Status::Rejected, Vec::new()),
            Semantics::AtMostOnce,
        );
        let mut client = WireClient::new(client_end, 42, RetryPolicy::default(), 1);
        let pending = client.start_call(5, b"load", false).unwrap();
        server.poll().unwrap();
        match client.try_complete(&pending, Duration::ZERO) {
            Err(WireError::Server(Status::Rejected)) => {}
            other => panic!("expected rejection, got {other:?}"),
        }
    }
}
