/root/repo/target/release/deps/trace_export-447057d15cb863b1.d: tests/trace_export.rs

/root/repo/target/release/deps/trace_export-447057d15cb863b1: tests/trace_export.rs

tests/trace_export.rs:
