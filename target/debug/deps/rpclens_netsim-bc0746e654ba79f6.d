/root/repo/target/debug/deps/rpclens_netsim-bc0746e654ba79f6.d: crates/netsim/src/lib.rs crates/netsim/src/congestion.rs crates/netsim/src/geo.rs crates/netsim/src/latency.rs crates/netsim/src/topology.rs

/root/repo/target/debug/deps/librpclens_netsim-bc0746e654ba79f6.rmeta: crates/netsim/src/lib.rs crates/netsim/src/congestion.rs crates/netsim/src/geo.rs crates/netsim/src/latency.rs crates/netsim/src/topology.rs

crates/netsim/src/lib.rs:
crates/netsim/src/congestion.rs:
crates/netsim/src/geo.rs:
crates/netsim/src/latency.rs:
crates/netsim/src/topology.rs:
