/root/repo/target/debug/examples/critical_paths-138e0669eed4f7e5.d: examples/critical_paths.rs

/root/repo/target/debug/examples/critical_paths-138e0669eed4f7e5: examples/critical_paths.rs

examples/critical_paths.rs:
