//! Offline stand-in for `parking_lot`.
//!
//! Wraps `std::sync` primitives behind the `parking_lot` API surface the
//! workspace uses: `lock()`/`read()`/`write()` return guards directly
//! (poisoning is swallowed, matching parking_lot's no-poison semantics).

use std::sync::{self, MutexGuard, RwLockReadGuard, RwLockWriteGuard};

/// A mutex whose `lock` never returns a poison error.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized> {
    inner: sync::Mutex<T>,
}

impl<T> Mutex<T> {
    /// Creates a mutex holding `value`.
    pub fn new(value: T) -> Self {
        Mutex {
            inner: sync::Mutex::new(value),
        }
    }

    /// Consumes the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.inner
            .into_inner()
            .unwrap_or_else(sync::PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, ignoring poisoning.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.inner
            .lock()
            .unwrap_or_else(sync::PoisonError::into_inner)
    }

    /// Returns a mutable reference without locking.
    pub fn get_mut(&mut self) -> &mut T {
        self.inner
            .get_mut()
            .unwrap_or_else(sync::PoisonError::into_inner)
    }
}

/// A reader-writer lock whose accessors never return poison errors.
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized> {
    inner: sync::RwLock<T>,
}

impl<T> RwLock<T> {
    /// Creates a lock holding `value`.
    pub fn new(value: T) -> Self {
        RwLock {
            inner: sync::RwLock::new(value),
        }
    }

    /// Consumes the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        self.inner
            .into_inner()
            .unwrap_or_else(sync::PoisonError::into_inner)
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires a shared read guard, ignoring poisoning.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.inner
            .read()
            .unwrap_or_else(sync::PoisonError::into_inner)
    }

    /// Acquires an exclusive write guard, ignoring poisoning.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.inner
            .write()
            .unwrap_or_else(sync::PoisonError::into_inner)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutex_guards_mutation() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        assert_eq!(m.into_inner(), 2);
    }

    #[test]
    fn rwlock_read_write() {
        let l = RwLock::new(vec![1]);
        l.write().push(2);
        assert_eq!(l.read().len(), 2);
    }
}
