//! An exact FIFO M/G/k worker pool.
//!
//! Server receive-queue latency in the paper ("Server Recv Queue", Fig. 9)
//! is the time a request waits for a worker thread. With FIFO dispatch the
//! waiting time can be computed exactly without simulating individual
//! worker threads: track the next-free instant of each of the `k` workers
//! in a min-heap; an arrival starts on the earliest-free worker.

use rpclens_simcore::time::{SimDuration, SimTime};
use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// Outcome of admitting one request to the pool.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Admission {
    /// How long the request waited for a worker.
    pub queue_delay: SimDuration,
    /// When the request began executing.
    pub start: SimTime,
    /// When the request finished executing.
    pub finish: SimTime,
}

/// A fixed-size FIFO worker pool.
///
/// # Examples
///
/// ```
/// use rpclens_cluster::pool::WorkerPool;
/// use rpclens_simcore::time::{SimDuration, SimTime};
///
/// let mut pool = WorkerPool::new(1);
/// let a = pool.admit(SimTime::ZERO, SimDuration::from_millis(10));
/// let b = pool.admit(SimTime::ZERO, SimDuration::from_millis(10));
/// assert_eq!(a.queue_delay, SimDuration::ZERO);
/// assert_eq!(b.queue_delay, SimDuration::from_millis(10));
/// ```
#[derive(Debug)]
pub struct WorkerPool {
    free_at: BinaryHeap<Reverse<SimTime>>,
    workers: usize,
    busy_ns: u128,
    admitted: u64,
    total_queue_ns: u128,
    max_backlog: SimDuration,
}

impl WorkerPool {
    /// Creates a pool with `workers` workers, all free at time zero.
    ///
    /// # Panics
    ///
    /// Panics if `workers` is zero.
    pub fn new(workers: usize) -> Self {
        assert!(workers > 0, "pool needs at least one worker");
        let mut free_at = BinaryHeap::with_capacity(workers);
        for _ in 0..workers {
            free_at.push(Reverse(SimTime::ZERO));
        }
        WorkerPool {
            free_at,
            workers,
            busy_ns: 0,
            admitted: 0,
            total_queue_ns: 0,
            max_backlog: SimDuration::ZERO,
        }
    }

    /// Admits a request arriving at `now` that needs `service` time,
    /// returning when it starts and finishes.
    pub fn admit(&mut self, now: SimTime, service: SimDuration) -> Admission {
        let Reverse(free) = self.free_at.pop().expect("pool is never empty");
        let start = now.max(free);
        let finish = start + service;
        self.free_at.push(Reverse(finish));
        let queue_delay = start.since(now);
        self.busy_ns += service.as_nanos() as u128;
        self.admitted += 1;
        self.total_queue_ns += queue_delay.as_nanos() as u128;
        self.max_backlog = self.max_backlog.max(queue_delay);
        Admission {
            queue_delay,
            start,
            finish,
        }
    }

    /// How long a request arriving at `now` would wait, without admitting
    /// it. Used by load balancers that probe queue depth.
    pub fn backlog(&self, now: SimTime) -> SimDuration {
        let Reverse(free) = *self.free_at.peek().expect("pool is never empty");
        free.since(now)
    }

    /// Number of workers.
    pub fn workers(&self) -> usize {
        self.workers
    }

    /// Total requests admitted.
    pub fn admitted(&self) -> u64 {
        self.admitted
    }

    /// Total busy worker-time accumulated.
    pub fn busy_time(&self) -> SimDuration {
        SimDuration::from_nanos(self.busy_ns.min(u64::MAX as u128) as u64)
    }

    /// Mean queueing delay over all admissions, or `None` if none.
    pub fn mean_queue_delay(&self) -> Option<SimDuration> {
        (self.admitted > 0)
            .then(|| SimDuration::from_nanos((self.total_queue_ns / self.admitted as u128) as u64))
    }

    /// The worst queueing delay seen.
    pub fn max_queue_delay(&self) -> SimDuration {
        self.max_backlog
    }

    /// Average utilization of the pool over `[0, horizon]`.
    ///
    /// # Panics
    ///
    /// Panics if `horizon` is zero.
    pub fn utilization(&self, horizon: SimDuration) -> f64 {
        assert!(horizon.as_nanos() > 0, "horizon must be positive");
        self.busy_ns as f64 / (self.workers as f64 * horizon.as_nanos() as f64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    use rpclens_simcore::rng::Prng;

    #[test]
    fn idle_pool_starts_immediately() {
        let mut p = WorkerPool::new(4);
        let a = p.admit(SimTime::from_nanos(100), SimDuration::from_nanos(50));
        assert_eq!(a.queue_delay, SimDuration::ZERO);
        assert_eq!(a.start.as_nanos(), 100);
        assert_eq!(a.finish.as_nanos(), 150);
    }

    #[test]
    fn k_parallel_requests_do_not_queue_but_k_plus_one_does() {
        let mut p = WorkerPool::new(3);
        let t = SimTime::ZERO;
        let s = SimDuration::from_millis(1);
        for _ in 0..3 {
            assert_eq!(p.admit(t, s).queue_delay, SimDuration::ZERO);
        }
        let fourth = p.admit(t, s);
        assert_eq!(fourth.queue_delay, s);
    }

    #[test]
    fn fifo_order_is_preserved() {
        let mut p = WorkerPool::new(1);
        let a = p.admit(SimTime::from_nanos(0), SimDuration::from_nanos(100));
        let b = p.admit(SimTime::from_nanos(10), SimDuration::from_nanos(100));
        let c = p.admit(SimTime::from_nanos(20), SimDuration::from_nanos(100));
        assert!(a.finish <= b.start && b.finish <= c.start);
        assert_eq!(c.queue_delay.as_nanos(), 180);
    }

    #[test]
    fn backlog_probe_matches_next_admission() {
        let mut p = WorkerPool::new(2);
        p.admit(SimTime::ZERO, SimDuration::from_millis(5));
        p.admit(SimTime::ZERO, SimDuration::from_millis(9));
        let now = SimTime::from_nanos(1_000_000);
        let predicted = p.backlog(now);
        let actual = p.admit(now, SimDuration::from_millis(1)).queue_delay;
        assert_eq!(predicted, actual);
    }

    #[test]
    fn utilization_and_busy_time_accumulate() {
        let mut p = WorkerPool::new(2);
        p.admit(SimTime::ZERO, SimDuration::from_secs(1));
        p.admit(SimTime::ZERO, SimDuration::from_secs(1));
        assert_eq!(p.busy_time(), SimDuration::from_secs(2));
        assert!((p.utilization(SimDuration::from_secs(2)) - 0.5).abs() < 1e-12);
        assert_eq!(p.admitted(), 2);
    }

    #[test]
    fn queue_delay_statistics_track_extremes() {
        let mut p = WorkerPool::new(1);
        p.admit(SimTime::ZERO, SimDuration::from_millis(10));
        p.admit(SimTime::ZERO, SimDuration::from_millis(10));
        assert_eq!(p.max_queue_delay(), SimDuration::from_millis(10));
        assert_eq!(p.mean_queue_delay().unwrap(), SimDuration::from_millis(5));
    }

    #[test]
    #[should_panic(expected = "at least one worker")]
    fn zero_workers_panics() {
        let _ = WorkerPool::new(0);
    }

    #[test]
    fn mm1_queueing_matches_theory() {
        // M/M/1 with rho = 0.7: mean wait = rho / (mu - lambda).
        let mut p = WorkerPool::new(1);
        let mut rng = Prng::seed_from(1);
        let mu = 1000.0; // services/sec
        let lambda = 700.0;
        let mut now = SimTime::ZERO;
        let n = 200_000;
        for _ in 0..n {
            let inter = -rng.next_f64_open().ln() / lambda;
            now += SimDuration::from_secs_f64(inter);
            let service = SimDuration::from_secs_f64(-rng.next_f64_open().ln() / mu);
            p.admit(now, service);
        }
        let expected_wait_s = 0.7 / (mu - lambda);
        let got = p.mean_queue_delay().unwrap().as_secs_f64();
        assert!(
            (got - expected_wait_s).abs() / expected_wait_s < 0.1,
            "mean wait {got}, theory {expected_wait_s}"
        );
    }

    proptest! {
        #[test]
        fn invariants_hold_for_random_arrivals(
            arrivals in proptest::collection::vec((0u64..1_000_000, 1u64..10_000), 1..200),
            workers in 1usize..8,
        ) {
            let mut sorted = arrivals.clone();
            sorted.sort();
            let mut p = WorkerPool::new(workers);
            let mut last_start = SimTime::ZERO;
            for (at, svc) in sorted {
                let a = p.admit(SimTime::from_nanos(at), SimDuration::from_nanos(svc));
                // Start is never before arrival; finish = start + service.
                prop_assert!(a.start >= SimTime::from_nanos(at));
                prop_assert_eq!(a.finish, a.start + SimDuration::from_nanos(svc));
                // FIFO: starts are non-decreasing when arrivals are sorted.
                prop_assert!(a.start >= last_start);
                last_start = a.start;
            }
        }
    }
}
