//! A sampling distributed tracer (Dapper-like).
//!
//! The paper's per-RPC analyses (Figs. 2–7, 10–17, 19, 21) come from a
//! tracing service that samples *entire RPC trees* and annotates every
//! span with per-component latency. This crate implements that substrate:
//!
//! - [`span`]: compact span records (one per RPC in a sampled tree) with
//!   quantized component latencies, sizes, cycles, and error status.
//! - [`collector`]: head-based trace sampling and storage.
//! - [`tree`]: tree assembly plus descendant/ancestor statistics (the
//!   "wider than deep" analysis of §2.4).
//! - [`query`]: per-method extraction with the paper's filters (≥100
//!   samples, errors excluded from latency, intra-cluster restriction).
//! - [`critical_path`]: CRISP-style critical-path extraction and
//!   per-method criticality reports (the §6-motivated extension).
//! - [`export`]: versioned, checksummed binary persistence of trace
//!   stores for offline re-analysis.
//!
//! Collection semantics follow the paper's methodology (§2.1): time spent
//! in nested calls is included in the parent's application component, and
//! erroneous RPCs are excluded from latency distributions but retained
//! for error accounting.

pub mod collector;
pub mod critical_path;
pub mod export;
pub mod query;
pub mod span;
pub mod tree;

/// Convenience re-exports of the most commonly used trace types.
pub mod trace_prelude {
    pub use crate::{
        collector::{TraceCollector, TraceStore},
        critical_path::{CriticalPath, CriticalityReport},
        query::MethodQuery,
        span::{MethodId, ServiceId, SpanBuilder, SpanRecord, TraceData},
        tree::TreeStats,
    };
}
