//! A small LZ-class compressor, executed for real on wire payloads.
//!
//! The cost model ([`rpclens_rpcstack::cost`]) *prices* compression at
//! tens of cycles per byte; this module actually runs an LZSS-style
//! encoder so the wire validation can measure the real thing. The format
//! trades ratio for simplicity and speed, in the spirit of LZ4's fast
//! path:
//!
//! - a token stream of flag bytes, each governing the next 8 items;
//! - flag bit 0: one literal byte follows;
//! - flag bit 1: a 2-byte match follows — 12-bit backward offset
//!   (1..=4095) and 4-bit length code (actual length 3..=18);
//! - matches are found with a single-probe hash table over 3-byte
//!   prefixes, so encoding is one pass, O(n), allocation-light.
//!
//! The encoder is deterministic (no randomness, no time), so identical
//! payloads always compress to identical bytes — the golden frame
//! fixture depends on that.

/// Window size: matches may reach back at most this far (12-bit offset).
pub const WINDOW: usize = 4096;
/// Shortest match worth encoding (a match token costs 2 bytes + flag).
pub const MIN_MATCH: usize = 3;
/// Longest match one token can carry (4-bit length code + MIN_MATCH).
pub const MAX_MATCH: usize = 18;

/// Errors surfaced while decompressing.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CompressError {
    /// The stream ended mid-token.
    Truncated,
    /// A match referenced bytes before the start of the output.
    BadOffset,
    /// The decompressed output did not match the declared length.
    LengthMismatch {
        /// Length the caller expected.
        expected: usize,
        /// Length the stream actually produced.
        actual: usize,
    },
}

impl std::fmt::Display for CompressError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CompressError::Truncated => write!(f, "compressed stream truncated"),
            CompressError::BadOffset => write!(f, "match offset before stream start"),
            CompressError::LengthMismatch { expected, actual } => {
                write!(f, "decompressed {actual} bytes, expected {expected}")
            }
        }
    }
}

impl std::error::Error for CompressError {}

#[inline]
fn hash3(data: &[u8], i: usize) -> usize {
    let v = (data[i] as u32) | ((data[i + 1] as u32) << 8) | ((data[i + 2] as u32) << 16);
    (v.wrapping_mul(0x9E37_79B1) >> 20) as usize & (WINDOW - 1)
}

/// Compresses `input`, appending to a fresh buffer.
///
/// The output is never guaranteed smaller than the input (incompressible
/// data grows by one flag byte per 8 literals); callers should keep the
/// original when `compress(..).len() >= input.len()`, which is exactly
/// what the wire's [`crate::message`] layer does.
pub fn compress(input: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(input.len() / 2 + 16);
    let mut table = [usize::MAX; WINDOW];
    let mut i = 0usize;
    // Pending token group: position of the current flag byte in `out`
    // and how many of its 8 slots are used.
    let mut flag_pos = usize::MAX;
    let mut flag_used = 8u8;
    let push_item = |out: &mut Vec<u8>,
                     flag_pos: &mut usize,
                     flag_used: &mut u8,
                     is_match: bool,
                     bytes: &[u8]| {
        if *flag_used == 8 {
            *flag_pos = out.len();
            out.push(0);
            *flag_used = 0;
        }
        if is_match {
            out[*flag_pos] |= 1 << *flag_used;
        }
        *flag_used += 1;
        out.extend_from_slice(bytes);
    };
    while i < input.len() {
        let mut emitted = false;
        if i + MIN_MATCH <= input.len() {
            let h = hash3(input, i);
            let candidate = table[h];
            table[h] = i;
            if candidate != usize::MAX && candidate < i && i - candidate < WINDOW {
                // Verify and extend the candidate match.
                let max_len = MAX_MATCH.min(input.len() - i);
                let mut len = 0usize;
                while len < max_len && input[candidate + len] == input[i + len] {
                    len += 1;
                }
                if len >= MIN_MATCH {
                    let offset = i - candidate;
                    let code = ((offset >> 8) as u8) << 4 | ((len - MIN_MATCH) as u8);
                    push_item(
                        &mut out,
                        &mut flag_pos,
                        &mut flag_used,
                        true,
                        &[code, (offset & 0xFF) as u8],
                    );
                    i += len;
                    emitted = true;
                }
            }
        }
        if !emitted {
            push_item(&mut out, &mut flag_pos, &mut flag_used, false, &[input[i]]);
            i += 1;
        }
    }
    out
}

/// Decompresses a stream produced by [`compress`] into exactly
/// `expected_len` bytes.
pub fn decompress(input: &[u8], expected_len: usize) -> Result<Vec<u8>, CompressError> {
    let mut out = Vec::with_capacity(expected_len);
    let mut i = 0usize;
    while i < input.len() {
        let flags = input[i];
        i += 1;
        for bit in 0..8 {
            if i >= input.len() {
                break;
            }
            if flags & (1 << bit) == 0 {
                out.push(input[i]);
                i += 1;
            } else {
                if i + 1 >= input.len() {
                    return Err(CompressError::Truncated);
                }
                let code = input[i];
                let offset = (((code >> 4) as usize) << 8) | input[i + 1] as usize;
                let len = (code & 0x0F) as usize + MIN_MATCH;
                i += 2;
                if offset == 0 || offset > out.len() {
                    return Err(CompressError::BadOffset);
                }
                let start = out.len() - offset;
                // Overlapping copies are legal (offset < len repeats).
                for k in 0..len {
                    let b = out[start + k];
                    out.push(b);
                }
            }
        }
    }
    if out.len() != expected_len {
        return Err(CompressError::LengthMismatch {
            expected: expected_len,
            actual: out.len(),
        });
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    use rpclens_simcore::rng::Prng;

    fn roundtrip(data: &[u8]) {
        let packed = compress(data);
        let restored = decompress(&packed, data.len()).unwrap();
        assert_eq!(restored, data);
    }

    #[test]
    fn empty_and_tiny_inputs_roundtrip() {
        roundtrip(b"");
        roundtrip(b"a");
        roundtrip(b"ab");
        roundtrip(b"abc");
    }

    #[test]
    fn repetitive_input_shrinks_substantially() {
        let data = b"the quick brown fox. ".repeat(200);
        let packed = compress(&data);
        assert!(
            packed.len() * 3 < data.len(),
            "ratio {} / {}",
            packed.len(),
            data.len()
        );
        roundtrip(&data);
    }

    #[test]
    fn constant_runs_compress_hard() {
        let data = vec![0x55u8; 10_000];
        let packed = compress(&data);
        assert!(packed.len() < data.len() / 5);
        roundtrip(&data);
    }

    #[test]
    fn random_input_roundtrips_with_bounded_expansion() {
        let mut rng = Prng::seed_from(11);
        let data: Vec<u8> = (0..8192).map(|_| rng.next_u64() as u8).collect();
        let packed = compress(&data);
        // Worst case: one flag byte per 8 literals.
        assert!(packed.len() <= data.len() + data.len() / 8 + 2);
        roundtrip(&data);
    }

    #[test]
    fn overlapping_matches_roundtrip() {
        // "aaaa..." forces offset-1 matches that overlap their own output.
        let data = vec![b'a'; 100];
        roundtrip(&data);
        let mut mixed = Vec::new();
        for i in 0..50 {
            mixed.extend_from_slice(b"xy");
            mixed.extend(std::iter::repeat_n(b'z', i % 7));
        }
        roundtrip(&mixed);
    }

    #[test]
    fn truncated_streams_are_rejected() {
        let data = b"compressible compressible compressible".repeat(10);
        let packed = compress(&data);
        for cut in 1..packed.len() {
            // Every prefix either errors or yields the wrong length.
            assert!(decompress(&packed[..cut], data.len()).is_err(), "cut {cut}");
        }
    }

    #[test]
    fn bad_offsets_are_rejected() {
        // Flag byte with a match token first, but nothing in the output
        // yet: the offset necessarily points before the start.
        let stream = [0b0000_0001u8, 0x10, 0x05];
        assert_eq!(decompress(&stream, 8), Err(CompressError::BadOffset));
    }

    proptest! {
        #[test]
        fn arbitrary_bytes_roundtrip(data in proptest::collection::vec(any::<u8>(), 0..4096)) {
            let packed = compress(&data);
            let restored = decompress(&packed, data.len()).unwrap();
            prop_assert_eq!(restored, data);
        }

        #[test]
        fn compressible_bytes_roundtrip(
            seed: u64,
            runs in proptest::collection::vec((any::<u8>(), 1usize..64), 1..64),
        ) {
            let _ = seed;
            let mut data = Vec::new();
            for (byte, count) in runs {
                data.extend(std::iter::repeat_n(byte, count));
            }
            let packed = compress(&data);
            let restored = decompress(&packed, data.len()).unwrap();
            prop_assert_eq!(restored, data);
        }
    }
}
