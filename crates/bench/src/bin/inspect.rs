//! `rpclens-inspect` — drill into persisted run artifacts without
//! re-simulating.
//!
//! ```text
//! rpclens-inspect top-methods   --store FILE [--component C] [--top N] [--min-samples N]
//! rpclens-inspect critical-path --store FILE --trace N
//! rpclens-inspect cycle-tax     --manifest FILE
//! rpclens-inspect errors        --manifest FILE
//! rpclens-inspect wire          --artifact FILE
//! rpclens-inspect trace         --store FILE [--trace N] [--seed S] [--methods M]
//! rpclens-inspect controllers   --faults PRESET [--scale NAME] [--seed S]
//! ```
//!
//! `--store` takes a binary trace export written by
//! `repro --export-store`; `--manifest` takes a telemetry manifest
//! written by `repro --telemetry`.

use rpclens_bench::inspect;
use rpclens_obs::RunManifest;
use rpclens_trace::collector::TraceStore;

fn usage() -> ! {
    eprintln!(
        "usage: rpclens-inspect <command> [options]\n\
         \n\
         commands:\n\
         \x20 top-methods   --store FILE [--component C] [--top N] [--min-samples N]\n\
         \x20               rank methods by P99 of one latency component (default: total)\n\
         \x20 critical-path --store FILE --trace N\n\
         \x20               render the chain of spans that gated trace N's completion\n\
         \x20 cycle-tax     --manifest FILE\n\
         \x20               flamegraph-style text breakdown of the RPC cycle tax\n\
         \x20 errors        --manifest FILE\n\
         \x20               Fig. 23 error-class / wasted-cycle breakdown and the\n\
         \x20               executed resilience counters (fault-scenario manifests)\n\
         \x20 wire          --artifact FILE\n\
         \x20               measured-vs-modeled RPC stack components from a\n\
         \x20               wire-validation artifact (written by rpclens-wire bench)\n\
         \x20 trace         --store FILE [--trace N] [--seed S] [--methods M]\n\
         \x20               waterfall + critical path + per-method measured-vs-modeled\n\
         \x20               deltas from a measured wire-trace capture\n\
         \x20               (written by rpclens-wire bench --trace-out)\n\
         \x20 controllers   --faults PRESET [--scale smoke|default|paper|fleet] [--seed S]\n\
         \x20               closed-loop controller timeline (autoscaled capacity and\n\
         \x20               avoided paths per window), reconstructed from the seed"
    );
    std::process::exit(2);
}

fn fail(msg: &str) -> ! {
    eprintln!("rpclens-inspect: {msg}");
    std::process::exit(1);
}

fn load_store(path: &str) -> TraceStore {
    let bytes =
        std::fs::read(path).unwrap_or_else(|e| fail(&format!("cannot read store {path}: {e}")));
    rpclens_trace::export::import(&bytes)
        .unwrap_or_else(|e| fail(&format!("cannot decode store {path}: {e:?}")))
}

fn load_manifest(path: &str) -> RunManifest {
    let text = std::fs::read_to_string(path)
        .unwrap_or_else(|e| fail(&format!("cannot read manifest {path}: {e}")));
    RunManifest::parse(&text).unwrap_or_else(|e| fail(&format!("invalid manifest {path}: {e}")))
}

fn next_value<'a>(iter: &mut std::slice::Iter<'a, String>, name: &str) -> &'a str {
    match iter.next() {
        Some(v) => v.as_str(),
        None => fail(&format!("{name} needs a value")),
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some(command) = args.first() else { usage() };

    let mut store_path: Option<&str> = None;
    let mut manifest_path: Option<&str> = None;
    let mut artifact_path: Option<&str> = None;
    let mut component: Option<&str> = None;
    let mut top = 20usize;
    let mut min_samples = 100usize;
    let mut trace: Option<usize> = None;
    let mut seed = 42u64;
    let mut methods = 400usize;
    let mut faults: Option<&str> = None;
    let mut scale_name = "smoke";
    let mut iter = args[1..].iter();
    while let Some(arg) = iter.next() {
        match arg.as_str() {
            "--store" => store_path = Some(next_value(&mut iter, "--store")),
            "--manifest" => manifest_path = Some(next_value(&mut iter, "--manifest")),
            "--artifact" => artifact_path = Some(next_value(&mut iter, "--artifact")),
            "--component" => component = Some(next_value(&mut iter, "--component")),
            "--top" => {
                top = next_value(&mut iter, "--top")
                    .parse()
                    .unwrap_or_else(|_| fail("--top needs an integer"));
            }
            "--min-samples" => {
                min_samples = next_value(&mut iter, "--min-samples")
                    .parse()
                    .unwrap_or_else(|_| fail("--min-samples needs an integer"));
            }
            "--trace" => {
                trace = Some(
                    next_value(&mut iter, "--trace")
                        .parse()
                        .unwrap_or_else(|_| fail("--trace needs an integer")),
                );
            }
            "--seed" => {
                seed = next_value(&mut iter, "--seed")
                    .parse()
                    .unwrap_or_else(|_| fail("--seed needs an integer"));
            }
            "--methods" => {
                methods = next_value(&mut iter, "--methods")
                    .parse()
                    .unwrap_or_else(|_| fail("--methods needs an integer"));
            }
            "--faults" => faults = Some(next_value(&mut iter, "--faults")),
            "--scale" => scale_name = next_value(&mut iter, "--scale"),
            other => fail(&format!("unknown option {other}")),
        }
    }

    match command.as_str() {
        "top-methods" => {
            let Some(path) = store_path else {
                fail("top-methods needs --store FILE")
            };
            let component = component.map(|name| {
                inspect::component_by_name(name)
                    .unwrap_or_else(|| fail(&format!("unknown component {name}")))
            });
            let store = load_store(path);
            print!(
                "{}",
                inspect::top_methods(&store, component, top, min_samples)
            );
        }
        "critical-path" => {
            let (Some(path), Some(index)) = (store_path, trace) else {
                fail("critical-path needs --store FILE and --trace N")
            };
            let store = load_store(path);
            match inspect::critical_path_text(&store, index) {
                Ok(text) => print!("{text}"),
                Err(e) => fail(&e),
            }
        }
        "cycle-tax" => {
            let Some(path) = manifest_path else {
                fail("cycle-tax needs --manifest FILE")
            };
            print!("{}", inspect::cycle_tax_text(&load_manifest(path)));
        }
        "errors" => {
            let Some(path) = manifest_path else {
                fail("errors needs --manifest FILE")
            };
            print!("{}", inspect::errors_text(&load_manifest(path)));
        }
        "trace" => {
            let Some(path) = store_path else {
                fail("trace needs --store FILE (a rpclens-wire bench --trace-out artifact)")
            };
            let store = load_store(path);
            let index = trace.unwrap_or(0);
            match rpclens_bench::wiretrace::waterfall_text(&store, index) {
                Ok(text) => print!("{text}"),
                Err(e) => fail(&e),
            }
            println!();
            match inspect::critical_path_text(&store, index) {
                Ok(text) => print!("{text}"),
                Err(e) => fail(&e),
            }
            println!();
            print!(
                "{}",
                rpclens_bench::wiretrace::method_delta_text(&store, seed, methods)
            );
        }
        "controllers" => {
            let Some(scenario) = faults else {
                fail("controllers needs --faults PRESET (e.g. incident-smoke)")
            };
            let Some(scale) = rpclens_bench::scale_by_name(scale_name) else {
                fail(&format!("unknown scale {scale_name}"))
            };
            match inspect::controllers_text(scenario, seed, scale.duration) {
                Ok(text) => print!("{text}"),
                Err(e) => fail(&e),
            }
        }
        "wire" => {
            let Some(path) = artifact_path else {
                fail("wire needs --artifact FILE")
            };
            let text = std::fs::read_to_string(path)
                .unwrap_or_else(|e| fail(&format!("cannot read artifact {path}: {e}")));
            let artifact = rpclens_obs::json::parse(&text)
                .unwrap_or_else(|e| fail(&format!("invalid artifact {path}: {e:?}")));
            match rpclens_bench::wire::wire_text(&artifact) {
                Ok(rendered) => print!("{rendered}"),
                Err(e) => fail(&e),
            }
        }
        _ => usage(),
    }
}
