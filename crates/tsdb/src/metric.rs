//! Metric kinds, values, labels, and descriptors.

use rpclens_simcore::hist::LogHistogram;
use rpclens_simcore::time::SimDuration;
use serde::{Deserialize, Serialize};
use std::fmt;

/// The kind of a metric.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum MetricKind {
    /// A monotonically non-decreasing cumulative count.
    Counter,
    /// A point-in-time measurement.
    Gauge,
    /// A histogram-valued sample (Monarch's distribution points).
    Distribution,
}

/// One sampled value.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub enum MetricValue {
    /// Cumulative counter reading.
    Counter(u64),
    /// Gauge reading.
    Gauge(f64),
    /// Distribution reading (values recorded within the window).
    Distribution(LogHistogram),
}

impl MetricValue {
    /// The kind of this value.
    pub fn kind(&self) -> MetricKind {
        match self {
            MetricValue::Counter(_) => MetricKind::Counter,
            MetricValue::Gauge(_) => MetricKind::Gauge,
            MetricValue::Distribution(_) => MetricKind::Distribution,
        }
    }

    /// The counter reading, if this is a counter.
    pub fn as_counter(&self) -> Option<u64> {
        match self {
            MetricValue::Counter(v) => Some(*v),
            _ => None,
        }
    }

    /// The gauge reading, if this is a gauge.
    pub fn as_gauge(&self) -> Option<f64> {
        match self {
            MetricValue::Gauge(v) => Some(*v),
            _ => None,
        }
    }

    /// The distribution, if this is a distribution.
    pub fn as_distribution(&self) -> Option<&LogHistogram> {
        match self {
            MetricValue::Distribution(h) => Some(h),
            _ => None,
        }
    }
}

/// A canonical (sorted, deduplicated) label set identifying one series.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Default, PartialOrd, Ord, Serialize, Deserialize)]
pub struct Labels(Vec<(String, String)>);

impl Labels {
    /// The empty label set.
    pub fn empty() -> Self {
        Labels(Vec::new())
    }

    /// Builds a canonical label set from pairs; later duplicates win.
    pub fn from_pairs<I, K, V>(pairs: I) -> Self
    where
        I: IntoIterator<Item = (K, V)>,
        K: Into<String>,
        V: Into<String>,
    {
        let mut v: Vec<(String, String)> = pairs
            .into_iter()
            .map(|(k, val)| (k.into(), val.into()))
            .collect();
        v.sort_by(|a, b| a.0.cmp(&b.0));
        v.dedup_by(|a, b| {
            if a.0 == b.0 {
                // Keep the later pair's value (which is `a` after reverse
                // iteration order of dedup_by): copy it into `b`.
                std::mem::swap(&mut a.1, &mut b.1);
                true
            } else {
                false
            }
        });
        Labels(v)
    }

    /// Looks up a label value.
    pub fn get(&self, key: &str) -> Option<&str> {
        self.0
            .binary_search_by(|(k, _)| k.as_str().cmp(key))
            .ok()
            .map(|i| self.0[i].1.as_str())
    }

    /// Iterates `(key, value)` pairs in key order.
    pub fn iter(&self) -> impl Iterator<Item = (&str, &str)> {
        self.0.iter().map(|(k, v)| (k.as_str(), v.as_str()))
    }

    /// Number of labels.
    pub fn len(&self) -> usize {
        self.0.len()
    }

    /// Whether the set is empty.
    pub fn is_empty(&self) -> bool {
        self.0.is_empty()
    }

    /// Returns a copy with one label added or replaced.
    pub fn with(&self, key: &str, value: &str) -> Labels {
        let mut pairs: Vec<(String, String)> = self.0.clone();
        match pairs.binary_search_by(|(k, _)| k.as_str().cmp(key)) {
            Ok(i) => pairs[i].1 = value.to_string(),
            Err(i) => pairs.insert(i, (key.to_string(), value.to_string())),
        }
        Labels(pairs)
    }
}

impl fmt::Display for Labels {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{{")?;
        for (i, (k, v)) in self.iter().enumerate() {
            if i > 0 {
                write!(f, ",")?;
            }
            write!(f, "{k}={v}")?;
        }
        write!(f, "}}")
    }
}

/// Static description of a metric: its name, kind, and retention.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct MetricDescriptor {
    /// Metric name, e.g. `rpc/server/latency`.
    pub name: String,
    /// Metric kind.
    pub kind: MetricKind,
    /// How long points are retained (the paper mixes 700-day and 30-day
    /// retentions).
    pub retention: SimDuration,
}

impl MetricDescriptor {
    /// A counter with the given retention.
    pub fn counter(name: &str, retention: SimDuration) -> Self {
        MetricDescriptor {
            name: name.to_string(),
            kind: MetricKind::Counter,
            retention,
        }
    }

    /// A gauge with the given retention.
    pub fn gauge(name: &str, retention: SimDuration) -> Self {
        MetricDescriptor {
            name: name.to_string(),
            kind: MetricKind::Gauge,
            retention,
        }
    }

    /// A distribution with the given retention.
    pub fn distribution(name: &str, retention: SimDuration) -> Self {
        MetricDescriptor {
            name: name.to_string(),
            kind: MetricKind::Distribution,
            retention,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn labels_canonicalize_order() {
        let a = Labels::from_pairs([("b", "2"), ("a", "1")]);
        let b = Labels::from_pairs([("a", "1"), ("b", "2")]);
        assert_eq!(a, b);
        assert_eq!(a.get("a"), Some("1"));
        assert_eq!(a.get("b"), Some("2"));
        assert_eq!(a.get("c"), None);
        assert_eq!(a.len(), 2);
    }

    #[test]
    fn labels_display_is_sorted() {
        let l = Labels::from_pairs([("zone", "us"), ("app", "x")]);
        assert_eq!(l.to_string(), "{app=x,zone=us}");
        assert_eq!(Labels::empty().to_string(), "{}");
    }

    #[test]
    fn with_adds_or_replaces() {
        let l = Labels::from_pairs([("a", "1")]);
        let l2 = l.with("b", "2").with("a", "9");
        assert_eq!(l2.get("a"), Some("9"));
        assert_eq!(l2.get("b"), Some("2"));
        // Original is untouched.
        assert_eq!(l.get("a"), Some("1"));
        assert_eq!(l.len(), 1);
    }

    #[test]
    fn value_kind_accessors() {
        let c = MetricValue::Counter(5);
        let g = MetricValue::Gauge(2.5);
        let mut h = LogHistogram::new();
        h.record(1);
        let d = MetricValue::Distribution(h);
        assert_eq!(c.kind(), MetricKind::Counter);
        assert_eq!(c.as_counter(), Some(5));
        assert_eq!(c.as_gauge(), None);
        assert_eq!(g.as_gauge(), Some(2.5));
        assert!(d.as_distribution().is_some());
        assert_eq!(d.kind(), MetricKind::Distribution);
    }

    #[test]
    fn descriptor_constructors_set_kind() {
        let r = SimDuration::from_hours(1);
        assert_eq!(MetricDescriptor::counter("c", r).kind, MetricKind::Counter);
        assert_eq!(MetricDescriptor::gauge("g", r).kind, MetricKind::Gauge);
        assert_eq!(
            MetricDescriptor::distribution("d", r).kind,
            MetricKind::Distribution
        );
    }
}
