//! Trajectory-stored failure episodes.
//!
//! The fault-injection plane models every failure source — machine
//! crash/restart churn, cluster drains, WAN partitions, CPU-overload
//! surges — as an entity alternating between a *healthy* and a *failed*
//! state with exponentially distributed holding times, exactly the
//! renewal structure `rpclens-netsim`'s `CongestionProcess` uses for
//! congestion episodes. Remembering the flip instants makes the state at
//! any instant a pure function of `(construction seed, now)`, which is
//! what keeps fault-injected runs bit-identical at any shard count: each
//! simulation shard rebuilds the same trajectories from the same seeds
//! and never consumes a caller draw to query them.

use rpclens_simcore::dist::{Exponential, Sample};
use rpclens_simcore::rng::Prng;
use rpclens_simcore::time::{SimDuration, SimTime};

/// Parameters of one failure-episode process.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EpisodeParams {
    /// Mean duration of healthy periods between episodes.
    pub up_mean: SimDuration,
    /// Mean duration of one failure episode.
    pub down_mean: SimDuration,
}

impl EpisodeParams {
    /// The long-run fraction of time the entity spends failed.
    pub fn duty_cycle(&self) -> f64 {
        let up = self.up_mean.as_secs_f64();
        let down = self.down_mean.as_secs_f64();
        down / (up + down)
    }
}

/// The lazily-evolved failure process for one entity (machine, cluster,
/// WAN pair, or service site).
///
/// # Determinism contract
///
/// The process's generator is reserved for the episode *trajectory*: it
/// is consumed exactly one draw per state flip, strictly in trajectory
/// order, and the flip instants are remembered. [`EpisodeProcess::active_at`]
/// is therefore a pure function of `(construction seed, now)` —
/// independent of who queries the entity, how often, in what order, or
/// from which simulation shard. Queries never consume caller draws.
#[derive(Debug, Clone)]
pub struct EpisodeProcess {
    params: EpisodeParams,
    /// `flip_ends[i]` is the instant interval `i` ends. Interval `i`
    /// covers `[flip_ends[i-1], flip_ends[i])` (interval 0 starts at
    /// `SimTime::ZERO`) and is healthy exactly when `i` is even. Grows
    /// monotonically; never truncated, so past intervals stay queryable.
    flip_ends: Vec<SimTime>,
    /// Interval index of the last answer; a lookup hint only, queries are
    /// near-monotone in practice. Never affects the result.
    cursor: usize,
    rng: Prng,
    up_hold: Exponential,
    down_hold: Exponential,
}

impl EpisodeProcess {
    /// Creates a process with its own random stream.
    ///
    /// # Panics
    ///
    /// Panics if either mean is non-positive.
    pub fn new(params: EpisodeParams, rng: Prng) -> Self {
        let up_hold =
            Exponential::from_mean(params.up_mean.as_secs_f64()).expect("up mean must be positive");
        let down_hold = Exponential::from_mean(params.down_mean.as_secs_f64())
            .expect("down mean must be positive");
        let mut process = EpisodeProcess {
            params,
            flip_ends: Vec::new(),
            cursor: 0,
            rng,
            up_hold,
            down_hold,
        };
        // Sample the first healthy period so nothing fails at t=0.
        let first = process.up_hold.sample(&mut process.rng);
        process
            .flip_ends
            .push(SimTime::ZERO + SimDuration::from_secs_f64(first.max(1e-6)));
        process
    }

    /// Extends the trajectory to cover `now` and returns the index of the
    /// interval containing it (even = healthy, odd = failed).
    fn interval_at(&mut self, now: SimTime) -> usize {
        while *self.flip_ends.last().expect("trajectory is never empty") <= now {
            let next = self.flip_ends.len();
            let hold = if next.is_multiple_of(2) {
                self.up_hold.sample(&mut self.rng)
            } else {
                self.down_hold.sample(&mut self.rng)
            };
            let end = *self.flip_ends.last().expect("trajectory is never empty")
                + SimDuration::from_secs_f64(hold.max(1e-6));
            self.flip_ends.push(end);
        }
        // Try the cursor hint (last answer, then its successor) before
        // binary-searching the whole trajectory; all three branches
        // compute the same index.
        let c = self.cursor;
        let i = if c < self.flip_ends.len()
            && now < self.flip_ends[c]
            && (c == 0 || self.flip_ends[c - 1] <= now)
        {
            c
        } else if c + 1 < self.flip_ends.len()
            && now < self.flip_ends[c + 1]
            && self.flip_ends[c] <= now
        {
            c + 1
        } else {
            self.flip_ends.partition_point(|&end| end <= now)
        };
        self.cursor = i;
        i
    }

    /// Whether the entity is inside a failure episode at `now`.
    pub fn active_at(&mut self, now: SimTime) -> bool {
        self.interval_at(now) % 2 == 1
    }

    /// The ordinal of the episode active at `now` (0 for the first
    /// episode of the trajectory), or `None` while healthy.
    ///
    /// Lets callers classify episodes deterministically without extra
    /// generator draws — the fleet plane alternates WAN blackouts and
    /// brownouts on the episode ordinal's parity.
    pub fn active_episode(&mut self, now: SimTime) -> Option<u64> {
        let i = self.interval_at(now);
        (i % 2 == 1).then(|| (i as u64 - 1) / 2)
    }

    /// The parameters this process was built with.
    pub fn params(&self) -> &EpisodeParams {
        &self.params
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn params() -> EpisodeParams {
        EpisodeParams {
            up_mean: SimDuration::from_secs(300),
            down_mean: SimDuration::from_secs(20),
        }
    }

    fn process(seed: u64) -> EpisodeProcess {
        EpisodeProcess::new(params(), Prng::seed_from(seed))
    }

    #[test]
    fn healthy_at_time_zero() {
        let mut p = process(1);
        assert!(!p.active_at(SimTime::ZERO));
    }

    #[test]
    fn deterministic_per_seed() {
        let mut a = process(5);
        let mut b = process(5);
        for i in 0..50_000u64 {
            let now = SimTime::from_nanos(i * 10_000_000);
            assert_eq!(a.active_at(now), b.active_at(now));
            assert_eq!(a.active_episode(now), b.active_episode(now));
        }
    }

    #[test]
    fn trajectory_is_independent_of_query_pattern() {
        // Two copies driven on completely different query patterns — one
        // dense and monotone, one advanced in a single jump and queried
        // backwards — must agree at every instant. This is the property
        // the sharded fleet driver leans on.
        let mut dense = process(9);
        let mut sparse = process(9);
        let mut recorded = Vec::new();
        for i in 0..200_000u64 {
            let now = SimTime::from_nanos(i * 500_000); // 0.5 ms grid to 100 s.
            recorded.push(dense.active_at(now));
        }
        sparse.active_at(SimTime::from_nanos(100_000_000_000)); // one jump.
        for i in (0..200_000u64).rev() {
            let now = SimTime::from_nanos(i * 500_000);
            assert_eq!(recorded[i as usize], sparse.active_at(now), "at {now}");
        }
    }

    #[test]
    fn cursor_hint_matches_partition_point() {
        // Query pattern hostile to the cursor (large forward and backward
        // jumps); the chosen interval must equal the binary search's.
        let mut p = process(7);
        let mut mix = 0x243F_6A88_85A3_08D3u64;
        for _ in 0..50_000 {
            mix = mix
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            let now = SimTime::from_nanos(mix % 2_000_000_000_000); // 0..2000 s.
            let active = p.active_at(now);
            let i = p.flip_ends.partition_point(|&end| end <= now);
            assert_eq!(p.cursor, i, "hint diverged at {now}");
            assert_eq!(active, i % 2 == 1);
        }
    }

    #[test]
    fn failed_fraction_matches_duty_cycle() {
        let mut p = process(3);
        let mut failed = 0u64;
        let n = 1_000_000u64;
        for i in 0..n {
            // 10 ms grid over 10,000 s ≫ up_mean.
            if p.active_at(SimTime::from_nanos(i * 10_000_000)) {
                failed += 1;
            }
        }
        let frac = failed as f64 / n as f64;
        let expected = params().duty_cycle();
        assert!(
            (frac - expected).abs() < expected,
            "duty cycle {frac}, expected ~{expected}"
        );
    }

    #[test]
    fn episode_ordinals_increase_over_time() {
        let mut p = process(11);
        let mut last = None;
        for i in 0..2_000_000u64 {
            if let Some(e) = p.active_episode(SimTime::from_nanos(i * 10_000_000)) {
                if let Some(prev) = last {
                    assert!(e >= prev, "ordinal went backwards: {prev} -> {e}");
                }
                last = Some(e);
            }
        }
        assert!(
            last.unwrap_or(0) >= 1,
            "fewer than two episodes in 20,000 s"
        );
    }

    #[test]
    fn time_can_jump_far_ahead() {
        let mut p = process(6);
        let _ = p.active_at(SimTime::from_nanos(3_600_000_000_000 * 24));
    }
}
