//! Analytic M/G/k queue-wait sampling.
//!
//! The fleet driver simulates a *sampled* slice of production traffic: the
//! traced RPCs are a tiny fraction of the load a real server pool carries,
//! so their queueing delay is dominated by the background traffic captured
//! in the machine's utilization. This module samples the waiting time a
//! request experiences at a pool running at utilization `rho`, using the
//! Erlang-C waiting probability and the standard exponential approximation
//! of the conditional wait (Allen-Cunneen), with a heavy-tailed correction
//! for service-time variability.

use rpclens_simcore::rng::Prng;
use rpclens_simcore::time::SimDuration;

/// Erlang-C: probability an arrival must wait in an M/M/k system with
/// `k` servers at offered utilization `rho` (per-server, in `[0, 1)`).
///
/// Returns 1.0 as `rho -> 1` and 0.0 for `rho <= 0`.
pub fn erlang_c(k: u32, rho: f64) -> f64 {
    if rho <= 0.0 {
        return 0.0;
    }
    if rho >= 1.0 {
        return 1.0;
    }
    let k = k.max(1);
    let a = rho * k as f64; // Offered load in Erlangs.
                            // Compute the Erlang-C formula in a numerically stable way via the
                            // iterative Erlang-B recursion: B(0) = 1, B(j) = a*B(j-1)/(j + a*B(j-1)).
    let mut b = 1.0;
    for j in 1..=k {
        b = a * b / (j as f64 + a * b);
    }
    // C = B / (1 - rho*(1 - B)).
    b / (1.0 - rho * (1.0 - b))
}

/// Parameters of the queue-delay model for one server pool.
#[derive(Debug, Clone, Copy)]
pub struct QueueModel {
    /// Number of workers in the pool.
    pub workers: u32,
    /// Mean service time of the background traffic.
    pub mean_service: SimDuration,
    /// Squared coefficient of variation of service times (1 =
    /// exponential; production RPC service times are much burstier).
    pub scv: f64,
}

impl QueueModel {
    /// Creates a model.
    ///
    /// # Panics
    ///
    /// Panics if `workers` is zero, the mean service time is zero, or the
    /// SCV is negative or non-finite.
    pub fn new(workers: u32, mean_service: SimDuration, scv: f64) -> Self {
        assert!(workers > 0, "queue model needs at least one worker");
        assert!(
            mean_service.as_nanos() > 0,
            "mean service time must be positive"
        );
        assert!(scv.is_finite() && scv >= 0.0, "SCV must be non-negative");
        QueueModel {
            workers,
            mean_service,
            scv,
        }
    }

    /// The mean waiting time at utilization `rho` (Allen-Cunneen
    /// approximation for M/G/k).
    pub fn mean_wait(&self, rho: f64) -> SimDuration {
        let rho = rho.clamp(0.0, 0.98);
        if rho == 0.0 {
            return SimDuration::ZERO;
        }
        let pw = erlang_c(self.workers, rho);
        let mm_k_wait = pw * self.mean_service.as_secs_f64() / (self.workers as f64 * (1.0 - rho));
        // The (1 + SCV)/2 factor extends M/M/k to M/G/k.
        SimDuration::from_secs_f64(mm_k_wait * (1.0 + self.scv) / 2.0)
    }

    /// Samples one request's waiting time at utilization `rho`.
    ///
    /// With probability Erlang-C the request waits; the conditional wait
    /// is exponential with the M/G/k conditional mean. Bursty service
    /// (SCV > 1) mixes in a longer-tailed component, reproducing the
    /// "tail queueing far above median queueing" effect of Fig. 13.
    pub fn sample_wait(&self, rho: f64, rng: &mut Prng) -> SimDuration {
        let rho = rho.clamp(0.0, 0.93);
        let pw = erlang_c(self.workers, rho);
        if !rng.chance(pw) {
            return SimDuration::ZERO;
        }
        // Conditional mean wait given waiting.
        let cond_mean = self.mean_service.as_secs_f64() / (self.workers as f64 * (1.0 - rho))
            * (1.0 + self.scv)
            / 2.0;
        let u = -rng.next_f64_open().ln();
        // With bursty service times, a minority of waits land behind an
        // in-progress elephant: stretch those by the burstiness factor.
        let stretch = if self.scv > 1.0 && rng.chance(0.1) {
            self.scv
        } else {
            1.0
        };
        SimDuration::from_secs_f64(u * cond_mean * stretch)
    }

    /// Samples one request's waiting time and records it into the
    /// observability plane's queue telemetry. Identical draw (and rng
    /// consumption) to [`QueueModel::sample_wait`]; the telemetry is an
    /// observer, never an input.
    pub fn sample_wait_observed(
        &self,
        rho: f64,
        rng: &mut Prng,
        telemetry: &mut rpclens_obs::QueueTelemetry,
    ) -> SimDuration {
        let wait = self.sample_wait(rho, rng);
        telemetry.record(wait.as_nanos());
        wait
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rpclens_simcore::stats::{percentile, sorted_finite};

    #[test]
    fn erlang_c_known_values() {
        // Single server: C = rho.
        for rho in [0.1, 0.5, 0.9] {
            assert!((erlang_c(1, rho) - rho).abs() < 1e-12, "rho {rho}");
        }
        // Limits.
        assert_eq!(erlang_c(4, 0.0), 0.0);
        assert_eq!(erlang_c(4, 1.0), 1.0);
        // M/M/2 at rho=0.5 (a=1): B(1)=1/2, B(2)=(1*0.5)/(2+0.5)=0.2,
        // C = 0.2/(1-0.5*0.8) = 1/3.
        assert!((erlang_c(2, 0.5) - 1.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn erlang_c_monotone_in_rho_and_decreasing_in_k() {
        for k in [1u32, 2, 8, 64] {
            let mut prev = 0.0;
            for i in 1..20 {
                let c = erlang_c(k, i as f64 * 0.05);
                assert!(c >= prev, "k={k} not monotone");
                prev = c;
            }
        }
        // More servers at equal utilization wait less (economy of scale).
        assert!(erlang_c(16, 0.7) < erlang_c(2, 0.7));
    }

    #[test]
    fn mean_wait_matches_mm1_theory() {
        // M/M/1 (SCV=1): W = rho/(mu(1-rho)) with E[S]=1ms, rho=0.7:
        // W = 0.7/(1000*0.3) s = 2.333 ms.
        let m = QueueModel::new(1, SimDuration::from_millis(1), 1.0);
        let w = m.mean_wait(0.7).as_secs_f64();
        assert!((w - 0.7 / (1000.0 * 0.3)).abs() < 1e-9, "wait {w}");
    }

    #[test]
    fn sampled_mean_converges_to_analytic_mean() {
        let m = QueueModel::new(4, SimDuration::from_millis(2), 1.0);
        let mut rng = Prng::seed_from(1);
        let n = 300_000;
        let mean: f64 = (0..n)
            .map(|_| m.sample_wait(0.75, &mut rng).as_secs_f64())
            .sum::<f64>()
            / n as f64;
        let analytic = m.mean_wait(0.75).as_secs_f64();
        assert!(
            (mean - analytic).abs() / analytic < 0.05,
            "sampled {mean}, analytic {analytic}"
        );
    }

    #[test]
    fn wait_grows_steeply_with_utilization() {
        let m = QueueModel::new(8, SimDuration::from_millis(1), 2.0);
        let w30 = m.mean_wait(0.3).as_secs_f64();
        let w90 = m.mean_wait(0.9).as_secs_f64();
        assert!(w90 > w30 * 30.0, "w30 {w30}, w90 {w90}");
    }

    #[test]
    fn bursty_service_has_heavier_tail() {
        let smooth = QueueModel::new(4, SimDuration::from_millis(1), 1.0);
        let bursty = QueueModel::new(4, SimDuration::from_millis(1), 25.0);
        let mut rng = Prng::seed_from(2);
        let collect = |m: &QueueModel, rng: &mut Prng| {
            sorted_finite(
                (0..100_000)
                    .map(|_| m.sample_wait(0.6, rng).as_secs_f64())
                    .collect(),
            )
        };
        let s = collect(&smooth, &mut rng);
        let b = collect(&bursty, &mut rng);
        let p99_s = percentile(&s, 0.99).unwrap();
        let p99_b = percentile(&b, 0.99).unwrap();
        assert!(p99_b > p99_s * 5.0, "smooth {p99_s}, bursty {p99_b}");
    }

    #[test]
    fn observed_variant_matches_plain_sampling() {
        let m = QueueModel::new(4, SimDuration::from_millis(2), 4.0);
        let mut plain_rng = Prng::seed_from(11);
        let mut obs_rng = Prng::seed_from(11);
        let mut telemetry = rpclens_obs::QueueTelemetry::default();
        let mut total = 0u128;
        for _ in 0..10_000 {
            let plain = m.sample_wait(0.8, &mut plain_rng);
            let observed = m.sample_wait_observed(0.8, &mut obs_rng, &mut telemetry);
            assert_eq!(plain, observed);
            total += u128::from(plain.as_nanos());
        }
        assert_eq!(telemetry.samples, 10_000);
        assert_eq!(telemetry.total_wait_ns, total);
        assert!(telemetry.waits > 0 && telemetry.waits < 10_000);
    }

    #[test]
    fn idle_pool_never_waits() {
        let m = QueueModel::new(4, SimDuration::from_millis(1), 1.0);
        let mut rng = Prng::seed_from(3);
        for _ in 0..1000 {
            assert_eq!(m.sample_wait(0.0, &mut rng), SimDuration::ZERO);
        }
    }

    #[test]
    fn overload_is_clamped_not_infinite() {
        let m = QueueModel::new(2, SimDuration::from_millis(1), 1.0);
        let w = m.mean_wait(1.5);
        assert!(w < SimDuration::from_secs(1), "clamped wait {w}");
    }

    #[test]
    #[should_panic(expected = "at least one worker")]
    fn zero_workers_panics() {
        let _ = QueueModel::new(0, SimDuration::from_millis(1), 1.0);
    }
}
