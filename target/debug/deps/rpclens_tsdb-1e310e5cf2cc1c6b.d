/root/repo/target/debug/deps/rpclens_tsdb-1e310e5cf2cc1c6b.d: crates/tsdb/src/lib.rs crates/tsdb/src/metric.rs crates/tsdb/src/query.rs crates/tsdb/src/store.rs

/root/repo/target/debug/deps/rpclens_tsdb-1e310e5cf2cc1c6b: crates/tsdb/src/lib.rs crates/tsdb/src/metric.rs crates/tsdb/src/query.rs crates/tsdb/src/store.rs

crates/tsdb/src/lib.rs:
crates/tsdb/src/metric.rs:
crates/tsdb/src/query.rs:
crates/tsdb/src/store.rs:
