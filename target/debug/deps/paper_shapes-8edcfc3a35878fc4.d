/root/repo/target/debug/deps/paper_shapes-8edcfc3a35878fc4.d: tests/paper_shapes.rs

/root/repo/target/debug/deps/paper_shapes-8edcfc3a35878fc4: tests/paper_shapes.rs

tests/paper_shapes.rs:
