//! The observability plane's own determinism guarantee: the manifest's
//! `deterministic` section must be byte-identical at any shard count.
//!
//! This is the companion to `shard_determinism.rs`. The simulation
//! outputs being bit-identical is necessary but not sufficient — the
//! telemetry layer folds per-shard counters, reservoirs, and histograms
//! on top, and any order-sensitivity there would surface here. The
//! `runtime` section (wall-clock phase timings, per-shard shapes) is
//! explicitly excluded: it is labeled non-deterministic by design.

use rpclens_fleet::driver::{run_fleet, FleetConfig, FleetRun, SimScale};
use rpclens_fleet::telemetry::manifest_for_run;
use rpclens_obs::RunManifest;
use rpclens_simcore::time::SimDuration;

/// Golden FNV-1a digest of the smoke preset's deterministic manifest
/// section, recorded from the pre-optimization driver (commit `36d1551`).
///
/// The zero-allocation hot path (catalog interning, dense site tables,
/// trace-buffer reuse) must keep every sampled value and every counter
/// bit-identical; any drift in rng consumption order, sampler math, or
/// accumulator folding moves this digest. If this test fails, the change
/// altered simulation *behaviour*, not just its speed — that requires an
/// explicit re-baseline with a changelog entry, never a silent edit.
const SMOKE_GOLDEN_DIGEST: u64 = 4965560232275073350;

#[test]
fn smoke_manifest_digest_matches_golden_at_1_and_4_shards() {
    for shards in [1usize, 4] {
        let mut config = FleetConfig::at_scale(SimScale::smoke());
        config.shards = shards;
        let run = run_fleet(config);
        let manifest = manifest_for_run(&run);
        assert_eq!(
            manifest.digest(),
            SMOKE_GOLDEN_DIGEST,
            "smoke manifest digest drifted at shards={shards}"
        );
    }
}

fn run_with_shards(shards: usize) -> FleetRun {
    let scale = SimScale {
        name: "determinism",
        total_methods: 320,
        roots: 4_000,
        duration: SimDuration::from_hours(24),
        trace_sample_rate: 1,
        profiler_sample_cap: 10_000,
        seed: 23,
    };
    let mut config = FleetConfig::at_scale(scale);
    config.shards = shards;
    run_fleet(config)
}

#[test]
fn manifest_deterministic_section_is_byte_identical_at_any_shard_count() {
    let base = run_with_shards(1);
    let base_manifest = manifest_for_run(&base);
    let base_bytes = base_manifest.deterministic_json();
    for shards in [2usize, 8] {
        let run = run_with_shards(shards);
        let manifest = manifest_for_run(&run);

        // Field-level comparison first: cheap to diagnose on failure.
        assert_eq!(
            base_manifest.deterministic, manifest.deterministic,
            "deterministic section differs at shards={shards}"
        );
        // Then the rendered bytes, which is what a user diffs on disk.
        assert_eq!(
            base_bytes,
            manifest.deterministic_json(),
            "deterministic JSON bytes differ at shards={shards}"
        );
        // The runtime section must reflect the actual execution shape —
        // it is the explicitly labeled non-deterministic remainder.
        assert_eq!(manifest.runtime.shards, shards, "shards={shards}");
        assert_eq!(manifest.runtime.per_shard.len(), shards, "shards={shards}");

        // The full manifest (runtime included) still parses, and the
        // digest binds exactly the deterministic bytes.
        let back = RunManifest::parse(&manifest.to_json_string()).expect("manifest roundtrip");
        assert_eq!(back.deterministic, base_manifest.deterministic);

        // Per-method profiler reservoirs are part of the contract too:
        // they merge via deterministic bottom-k, so capped methods keep
        // identical sample sets.
        for method in base.profiler.methods_with_samples(1) {
            assert_eq!(
                base.profiler.method_samples(method),
                run.profiler.method_samples(method),
                "method {method} samples differ at shards={shards}"
            );
        }
    }
}
