/root/repo/target/debug/deps/rpclens_bench-17887ca1c4448d02.d: crates/bench/src/lib.rs crates/bench/src/ablation.rs

/root/repo/target/debug/deps/librpclens_bench-17887ca1c4448d02.rlib: crates/bench/src/lib.rs crates/bench/src/ablation.rs

/root/repo/target/debug/deps/librpclens_bench-17887ca1c4448d02.rmeta: crates/bench/src/lib.rs crates/bench/src/ablation.rs

crates/bench/src/lib.rs:
crates/bench/src/ablation.rs:
