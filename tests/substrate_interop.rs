//! Substrate interoperability: the measurement tools compose correctly
//! outside the fleet driver too — a user can wire the tracer, TSDB, and
//! profiler to their own workload.

use rpclens::prelude::*;
use rpclens::profiler::{CycleProfiler, ErrorAccounting};
use rpclens::rpcstack::component::{LatencyBreakdown, LatencyComponent};
use rpclens::rpcstack::cost::{CycleCategory, CycleCost};
use rpclens::trace::collector::{TraceCollector, TraceStore};
use rpclens::trace::span::{SpanBuilder, TraceData};
use rpclens::trace::tree::TreeStats;

/// Builds a synthetic three-tier trace by hand: a frontend calling two
/// backends, one of which calls storage.
fn hand_built_trace(seed: u64) -> TraceData {
    let mut rng = Prng::seed_from(seed);
    let mut mk = |method: u32, parent: Option<u32>, app_us: f64| {
        let mut b = LatencyBreakdown::new();
        b.set(
            LatencyComponent::ServerApplication,
            SimDuration::from_micros_f64(app_us),
        );
        b.set(
            LatencyComponent::RequestNetworkWire,
            SimDuration::from_micros_f64(20.0 + rng.next_f64() * 30.0),
        );
        let builder = SpanBuilder::new(
            MethodId(method),
            ServiceId((method % 7) as u16),
            ClusterId(0),
            ClusterId(1),
        )
        .breakdown(b)
        .sizes(256, 1024)
        .cycles(1_000_000);
        match parent {
            Some(p) => builder.parent(p),
            None => builder,
        }
        .build()
    };
    let spans = vec![
        mk(1, None, 5_000.0),
        mk(2, Some(0), 1_000.0),
        mk(3, Some(0), 2_000.0),
        mk(4, Some(2), 300.0),
    ];
    TraceData::new(SimTime::ZERO, spans)
}

#[test]
fn tracer_tsdb_profiler_compose_by_hand() {
    let collector = TraceCollector::new(4);
    let mut store = TraceStore::new();
    let mut profiler = CycleProfiler::new();
    let mut errors = ErrorAccounting::new();
    let mut db = TimeSeriesDb::new(SimDuration::from_mins(30));
    db.register(MetricDescriptor::counter(
        "demo/rpcs",
        SimDuration::from_hours(48),
    ))
    .expect("fresh");

    let mut counter = 0u64;
    for trace_id in 0..1_000u64 {
        let trace = hand_built_trace(trace_id);
        counter += trace.len() as u64;
        for (i, span) in trace.spans.iter().enumerate() {
            errors.record_rpc();
            let mut cost = CycleCost::new();
            cost.add(CycleCategory::Application, span.kilocycles as u64 * 1000);
            cost.add(CycleCategory::Serialization, 10_000);
            profiler.record(
                span.service.0,
                span.method.0,
                &cost,
                1.0,
                rpclens_profiler::sample_tag(trace_id, i as u32),
            );
        }
        if collector.should_sample(trace_id) {
            store.add(trace);
        }
        db.write(
            "demo/rpcs",
            Labels::empty(),
            SimTime::ZERO + SimDuration::from_secs(trace_id * 60),
            MetricValue::Counter(counter),
        )
        .expect("registered");
    }

    // ~1/4 of traces sampled.
    assert!((200..=300).contains(&store.len()), "{}", store.len());
    // Per-method indexing works across hand-built traces.
    assert_eq!(store.spans_of(MethodId(1)).len(), store.len());
    // The profiler counted everything (sampling only affects the tracer).
    assert_eq!(errors.total_rpcs(), 4_000);
    assert!(profiler.total_cycles() > 0);
    assert!(profiler.tax_fraction() > 0.0 && profiler.tax_fraction() < 0.1);
    // The TSDB can answer a rate query over the synthetic counter.
    let q = QueryEngine::new(&db);
    let series = q.select("demo/rpcs", &LabelFilter::any());
    assert_eq!(series.len(), 1);
    let rates = QueryEngine::rate(series[0].1);
    assert!(!rates.is_empty());
    assert!(rates.iter().all(|(_, r)| *r > 0.0));
}

#[test]
fn tree_stats_work_on_hand_built_traces() {
    let trace = hand_built_trace(7);
    let stats = TreeStats::compute(&trace);
    assert_eq!(stats.descendants[0], 3);
    assert_eq!(stats.ancestors, vec![0, 1, 1, 2]);
    assert_eq!(stats.max_depth, 2);
}

#[test]
fn queries_respect_filters_on_hand_built_traces() {
    let mut store = TraceStore::new();
    for i in 0..200 {
        store.add(hand_built_trace(i));
    }
    let q = MethodQuery {
        min_samples: 100,
        ..MethodQuery::default()
    };
    let samples = q
        .latency_samples(&store, MethodId(1))
        .expect("root method has 200 samples");
    assert_eq!(samples.len(), 200);
    // All hand-built spans are cross-cluster, so the intra-cluster filter
    // rejects everything.
    let intra = MethodQuery {
        intra_cluster_only: true,
        min_samples: 1,
        ..MethodQuery::default()
    };
    assert!(intra.latency_samples(&store, MethodId(1)).is_none());
}
