//! O(1) categorical sampling via the Vose alias method.
//!
//! The workload generator draws the next method to invoke from a 10,000-way
//! categorical distribution billions of times per simulated day, so constant
//! time sampling matters.

use crate::rng::Prng;

/// A precomputed alias table for sampling indices with given weights.
///
/// # Examples
///
/// ```
/// use rpclens_simcore::alias::AliasTable;
/// use rpclens_simcore::rng::Prng;
///
/// let table = AliasTable::new(&[1.0, 1.0, 8.0]).unwrap();
/// let mut rng = Prng::seed_from(1);
/// let mut counts = [0u32; 3];
/// for _ in 0..10_000 {
///     counts[table.sample(&mut rng)] += 1;
/// }
/// assert!(counts[2] > counts[0] * 4);
/// ```
#[derive(Debug, Clone)]
pub struct AliasTable {
    prob: Vec<f64>,
    alias: Vec<u32>,
}

/// Error returned when an alias table cannot be built.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AliasError {
    /// The weight slice was empty.
    Empty,
    /// A weight was negative or non-finite, or all weights were zero.
    BadWeights,
    /// More than `u32::MAX` categories were requested.
    TooManyCategories,
}

impl std::fmt::Display for AliasError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            AliasError::Empty => write!(f, "alias table needs at least one weight"),
            AliasError::BadWeights => {
                write!(f, "weights must be finite, non-negative, not all zero")
            }
            AliasError::TooManyCategories => write!(f, "too many categories for alias table"),
        }
    }
}

impl std::error::Error for AliasError {}

impl AliasTable {
    /// Builds an alias table from unnormalised weights.
    ///
    /// # Errors
    ///
    /// Returns [`AliasError`] if `weights` is empty, contains a negative or
    /// non-finite weight, or sums to zero.
    pub fn new(weights: &[f64]) -> Result<Self, AliasError> {
        let n = weights.len();
        if n == 0 {
            return Err(AliasError::Empty);
        }
        if n > u32::MAX as usize {
            return Err(AliasError::TooManyCategories);
        }
        let total: f64 = weights.iter().sum();
        if !total.is_finite() || total <= 0.0 || weights.iter().any(|&w| w < 0.0 || !w.is_finite())
        {
            return Err(AliasError::BadWeights);
        }

        // Scale so the average bucket holds probability 1.
        let mut prob: Vec<f64> = weights.iter().map(|&w| w * n as f64 / total).collect();
        let mut alias = vec![0u32; n];
        let mut small: Vec<u32> = Vec::new();
        let mut large: Vec<u32> = Vec::new();
        for (i, &p) in prob.iter().enumerate() {
            if p < 1.0 {
                small.push(i as u32);
            } else {
                large.push(i as u32);
            }
        }
        while let (Some(&s), Some(&l)) = (small.last(), large.last()) {
            small.pop();
            alias[s as usize] = l;
            prob[l as usize] = (prob[l as usize] + prob[s as usize]) - 1.0;
            if prob[l as usize] < 1.0 {
                large.pop();
                small.push(l);
            }
        }
        // Remaining entries are exactly 1 up to floating error.
        for &i in small.iter().chain(large.iter()) {
            prob[i as usize] = 1.0;
        }
        Ok(AliasTable { prob, alias })
    }

    /// Draws a category index.
    #[inline]
    pub fn sample(&self, rng: &mut Prng) -> usize {
        let i = rng.index(self.prob.len());
        if rng.next_f64() < self.prob[i] {
            i
        } else {
            self.alias[i] as usize
        }
    }

    /// Number of categories.
    pub fn len(&self) -> usize {
        self.prob.len()
    }

    /// Whether the table has zero categories (never true post-construction).
    pub fn is_empty(&self) -> bool {
        self.prob.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn rejects_degenerate_inputs() {
        assert_eq!(AliasTable::new(&[]).unwrap_err(), AliasError::Empty);
        assert_eq!(
            AliasTable::new(&[0.0, 0.0]).unwrap_err(),
            AliasError::BadWeights
        );
        assert_eq!(
            AliasTable::new(&[1.0, -1.0]).unwrap_err(),
            AliasError::BadWeights
        );
        assert_eq!(
            AliasTable::new(&[f64::NAN]).unwrap_err(),
            AliasError::BadWeights
        );
    }

    #[test]
    fn single_category_always_wins() {
        let t = AliasTable::new(&[3.5]).unwrap();
        let mut rng = Prng::seed_from(0);
        for _ in 0..100 {
            assert_eq!(t.sample(&mut rng), 0);
        }
    }

    #[test]
    fn zero_weight_category_never_sampled() {
        let t = AliasTable::new(&[1.0, 0.0, 1.0]).unwrap();
        let mut rng = Prng::seed_from(1);
        for _ in 0..10_000 {
            assert_ne!(t.sample(&mut rng), 1);
        }
    }

    #[test]
    fn empirical_frequencies_match_weights() {
        let weights = [5.0, 1.0, 3.0, 1.0];
        let t = AliasTable::new(&weights).unwrap();
        let mut rng = Prng::seed_from(2);
        let n = 200_000;
        let mut counts = [0u32; 4];
        for _ in 0..n {
            counts[t.sample(&mut rng)] += 1;
        }
        let total: f64 = weights.iter().sum();
        for (i, &w) in weights.iter().enumerate() {
            let expected = w / total;
            let observed = counts[i] as f64 / n as f64;
            assert!(
                (observed - expected).abs() < 0.005,
                "category {i}: observed {observed}, expected {expected}"
            );
        }
    }

    proptest! {
        #[test]
        fn samples_always_in_range(weights in proptest::collection::vec(0.0f64..100.0, 1..64), seed: u64) {
            prop_assume!(weights.iter().sum::<f64>() > 0.0);
            let t = AliasTable::new(&weights).unwrap();
            let mut rng = Prng::seed_from(seed);
            for _ in 0..256 {
                let i = t.sample(&mut rng);
                prop_assert!(i < weights.len());
                prop_assert!(weights[i] > 0.0, "sampled zero-weight category {i}");
            }
        }
    }
}
