/root/repo/target/release/examples/loadbalancer_ablation-1bbdcca38ffe297a.d: examples/loadbalancer_ablation.rs

/root/repo/target/release/examples/loadbalancer_ablation-1bbdcca38ffe297a: examples/loadbalancer_ablation.rs

examples/loadbalancer_ablation.rs:
