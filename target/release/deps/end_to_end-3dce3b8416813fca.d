/root/repo/target/release/deps/end_to_end-3dce3b8416813fca.d: tests/end_to_end.rs

/root/repo/target/release/deps/end_to_end-3dce3b8416813fca: tests/end_to_end.rs

tests/end_to_end.rs:
