/root/repo/target/release/deps/rpclens_cluster-57a78fd064f271b1.d: crates/cluster/src/lib.rs crates/cluster/src/accounting.rs crates/cluster/src/exogenous.rs crates/cluster/src/machine.rs crates/cluster/src/mgk.rs crates/cluster/src/pool.rs

/root/repo/target/release/deps/librpclens_cluster-57a78fd064f271b1.rlib: crates/cluster/src/lib.rs crates/cluster/src/accounting.rs crates/cluster/src/exogenous.rs crates/cluster/src/machine.rs crates/cluster/src/mgk.rs crates/cluster/src/pool.rs

/root/repo/target/release/deps/librpclens_cluster-57a78fd064f271b1.rmeta: crates/cluster/src/lib.rs crates/cluster/src/accounting.rs crates/cluster/src/exogenous.rs crates/cluster/src/machine.rs crates/cluster/src/mgk.rs crates/cluster/src/pool.rs

crates/cluster/src/lib.rs:
crates/cluster/src/accounting.rs:
crates/cluster/src/exogenous.rs:
crates/cluster/src/machine.rs:
crates/cluster/src/mgk.rs:
crates/cluster/src/pool.rs:
