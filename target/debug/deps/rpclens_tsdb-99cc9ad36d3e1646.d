/root/repo/target/debug/deps/rpclens_tsdb-99cc9ad36d3e1646.d: crates/tsdb/src/lib.rs crates/tsdb/src/metric.rs crates/tsdb/src/query.rs crates/tsdb/src/store.rs Cargo.toml

/root/repo/target/debug/deps/librpclens_tsdb-99cc9ad36d3e1646.rmeta: crates/tsdb/src/lib.rs crates/tsdb/src/metric.rs crates/tsdb/src/query.rs crates/tsdb/src/store.rs Cargo.toml

crates/tsdb/src/lib.rs:
crates/tsdb/src/metric.rs:
crates/tsdb/src/query.rs:
crates/tsdb/src/store.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
