//! Fig. 5: per-method number of ancestors (call-tree depth).
//!
//! Paper anchor: half of methods have fewer than 10 ancestors at the 99th
//! percentile — trees are much wider than they are deep.

use crate::check::ExpectationSet;
use crate::common::MethodHeatmap;
use crate::render::{sketch_cdf, TextTable};
use rpclens_fleet::driver::FleetRun;
use rpclens_simcore::stats::percentile;
use rpclens_trace::query::{TreeShapeSamples, MIN_SAMPLES};

/// The computed figure: ancestor and descendant heatmaps (the latter for
/// the wider-than-deep comparison).
#[derive(Debug)]
pub struct Fig05 {
    /// Per-method ancestor-count quantiles, sorted by median.
    pub ancestors: MethodHeatmap,
    /// Per-method descendant-count quantiles (for the comparison).
    pub descendants: MethodHeatmap,
}

/// Computes the figure.
pub fn compute(run: &FleetRun) -> Fig05 {
    let shapes = TreeShapeSamples::compute(&run.store);
    Fig05 {
        ancestors: MethodHeatmap::from_samples(shapes.ancestors.into_iter().collect(), MIN_SAMPLES),
        descendants: MethodHeatmap::from_samples(
            shapes.descendants.into_iter().collect(),
            MIN_SAMPLES,
        ),
    }
}

/// Renders the figure.
pub fn render(fig: &Fig05) -> String {
    let hm = &fig.ancestors;
    let mut t = TextTable::new(&["method#", "P50", "P90", "P99"]);
    let step = (hm.len() / 15).max(1);
    for (i, row) in hm.rows.iter().enumerate().step_by(step) {
        t.row(vec![
            i.to_string(),
            format!("{:.0}", row.summary.p50),
            format!("{:.0}", row.summary.p90),
            format!("{:.0}", row.summary.p99),
        ]);
    }
    format!(
        "Fig. 5 — Per-method ancestors ({} methods)\n{}\nCDF of per-method P99 ancestors:\n{}",
        hm.len(),
        t.render(),
        sketch_cdf(&hm.across_methods(0.99), |v| format!("{v:.0}")),
    )
}

/// Paper-vs-measured checks.
pub fn checks(fig: &Fig05) -> ExpectationSet {
    let mut s = ExpectationSet::new();
    let p99s = fig.ancestors.across_methods(0.99);
    s.add(
        "fig5.half_p99_lt_10",
        "half of methods have < 10 ancestors at P99",
        percentile(&p99s, 0.5).unwrap_or(f64::NAN),
        0.0,
        10.0,
    );
    // Wider than deep: median-method P99 descendants well above
    // median-method P99 ancestors.
    let desc_p99 = percentile(&fig.descendants.across_methods(0.99), 0.5).unwrap_or(f64::NAN);
    let anc_p99 = percentile(&p99s, 0.5).unwrap_or(f64::NAN);
    s.add(
        "fig5.wider_than_deep",
        "descendant counts dwarf ancestor counts (trees wider than deep)",
        desc_p99 / anc_p99.max(1.0),
        2.0,
        f64::INFINITY,
    );
    // Depth never exceeds the driver's cap.
    let max_depth = fig
        .ancestors
        .rows
        .iter()
        .map(|r| r.summary.p99)
        .fold(0.0f64, f64::max);
    s.add(
        "fig5.max_depth_bounded",
        "maximum depths in the low tens (Meta reports 9-19)",
        max_depth,
        2.0,
        24.0,
    );
    s
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::common::testrun::shared;

    #[test]
    fn checks_pass_on_test_run() {
        let fig = compute(shared());
        let c = checks(&fig);
        assert!(c.all_passed(), "{c}");
    }

    #[test]
    fn root_only_methods_have_zero_ancestors() {
        let fig = compute(shared());
        // At least one method (a pure entry point) sits at depth 0 even
        // at P99.
        assert!(fig.ancestors.rows.iter().any(|r| r.summary.p50 == 0.0));
    }

    #[test]
    fn storage_methods_sit_deeper_than_frontends() {
        let run = shared();
        let fig = compute(run);
        let depth_of = |svc: &str| -> f64 {
            let service = run.catalog.service_by_name(svc).unwrap().id;
            let rows: Vec<f64> = fig
                .ancestors
                .rows
                .iter()
                .filter(|r| run.catalog.method(r.method).service == service)
                .map(|r| r.summary.p50)
                .collect();
            rows.iter().sum::<f64>() / rows.len().max(1) as f64
        };
        assert!(depth_of("NetworkDisk") > depth_of("WebFrontend"));
    }
}
