//! The worker pool's determinism contract: thread count is invisible.
//!
//! PR 1 pinned shard-count invariance (`shard_determinism.rs`,
//! `telemetry_determinism.rs`); the worker pool adds a second execution
//! knob, so this file pins the full (shards, threads) matrix against
//! both committed golden digests — the fault-free smoke manifest digest
//! and the chaos-smoke digest in `crates/bench/FAULT_SMOKE_DIGEST` —
//! and property-tests the order-restoring merge (`fleet::pool::OrderedFold`)
//! directly: whatever order workers *complete* shards in, the fold is
//! applied in shard-id order, so merged accumulators never depend on
//! scheduling.

use proptest::prelude::*;
use rpclens_bench::run_configured;
use rpclens_fleet::driver::SimScale;
use rpclens_fleet::faults::FaultScenario;
use rpclens_fleet::pool::OrderedFold;
use rpclens_fleet::telemetry::manifest_for_run;
use rpclens_obs::ShardCounters;

/// Golden fault-free smoke digest; must match the value pinned in
/// `telemetry_determinism.rs`.
const SMOKE_GOLDEN_DIGEST: u64 = 4965560232275073350;

/// Committed chaos-smoke digest, shared with the CI fault-smoke gate.
fn fault_smoke_digest() -> u64 {
    include_str!("../FAULT_SMOKE_DIGEST")
        .trim()
        .parse()
        .expect("FAULT_SMOKE_DIGEST holds one u64")
}

/// The acceptance matrix: every (shards, threads) combination in
/// {1,4}×{1,4} must reproduce both golden digests bit for bit, and the
/// manifest's runtime section must record the actual execution shape.
#[test]
fn golden_digests_hold_across_the_shards_threads_matrix() {
    for shards in [1usize, 4] {
        for threads in [1usize, 4] {
            let run = run_configured(
                SimScale::smoke(),
                Some(shards),
                Some(threads),
                FaultScenario::none(),
            );
            let manifest = manifest_for_run(&run);
            assert_eq!(
                manifest.digest(),
                SMOKE_GOLDEN_DIGEST,
                "smoke digest drifted at shards={shards} threads={threads}"
            );
            // Thread count is execution shape: recorded in the
            // undigested runtime section, clamped to the shard count.
            assert_eq!(manifest.runtime.shards, shards);
            assert_eq!(manifest.runtime.threads, threads.min(shards));

            let faulted = run_configured(
                SimScale::smoke(),
                Some(shards),
                Some(threads),
                FaultScenario::chaos_smoke(),
            );
            let faulted_manifest = manifest_for_run(&faulted);
            assert_eq!(
                faulted_manifest.digest(),
                fault_smoke_digest(),
                "chaos-smoke digest drifted at shards={shards} threads={threads}"
            );
            assert_eq!(
                faulted_manifest
                    .robustness
                    .as_ref()
                    .expect("chaos-smoke carries robustness")
                    .scenario,
                "chaos-smoke"
            );
        }
    }
}

/// A distinct, recognisable accumulator for shard `i`: real telemetry
/// counters plus an order-sensitive payload standing in for the trace
/// store (concatenation order must equal shard-id order).
fn shard_item(i: usize) -> (ShardCounters, Vec<u64>) {
    let mut c = ShardCounters::new();
    let i64 = i as u64;
    c.roots = 10 + i64;
    c.spans = 100 + 7 * i64;
    c.hedges_issued = i64 % 3;
    c.max_depth = i64 % 9;
    for k in 0..20u64 {
        c.root_latency_us.record(1 + (i64 * 37 + k * 11) % 5_000);
        c.queue.record((i64 + k) % 5 * 250);
        c.wire.record((i64 + k).is_multiple_of(4));
    }
    (c, vec![i64 * 3, i64 * 3 + 1, i64 * 3 + 2])
}

fn fold_items(acc: &mut (ShardCounters, Vec<u64>), next: (ShardCounters, Vec<u64>), _id: usize) {
    acc.0.absorb(&next.0);
    acc.1.extend(next.1);
}

proptest! {
    /// Merged accumulators are independent of worker completion order:
    /// pushing shards through `OrderedFold` in a random permutation
    /// yields exactly the sequential in-order fold.
    #[test]
    fn ordered_fold_is_completion_order_invariant(
        keys in proptest::collection::vec(any::<u64>(), 1..24),
    ) {
        let n = keys.len();
        // Derive a completion permutation from the random keys.
        let mut order: Vec<usize> = (0..n).collect();
        order.sort_by_key(|&i| (keys[i], i));

        let mut sequential = OrderedFold::new();
        for i in 0..n {
            sequential.push(i, shard_item(i), fold_items);
        }
        let expected = sequential.finish();

        let mut shuffled = OrderedFold::new();
        for &i in &order {
            shuffled.push(i, shard_item(i), fold_items);
        }
        prop_assert_eq!(shuffled.folded(), n);
        let got = shuffled.finish();

        // Order-sensitive payload merged in shard-id order, not
        // completion order.
        prop_assert_eq!(&got.1, &expected.1);
        let flat: Vec<u64> = (0..n as u64).flat_map(|i| [i * 3, i * 3 + 1, i * 3 + 2]).collect();
        prop_assert_eq!(&got.1, &flat);
        // Counters identical field for field (absorb is a sum/max fold,
        // but equality of the full struct also covers the histograms).
        prop_assert_eq!(format!("{:?}", got.0), format!("{:?}", expected.0));
    }
}
